// Quickstart: open a PM-Blade database, write, read, scan, inspect.
//
//   ./quickstart [db_path]
//
// Demonstrates the core public API: DB::Open with Options, Put/Get/Delete,
// WriteBatch, iterators, snapshots, manual flush/compaction and properties.

#include <cstdio>
#include <memory>

#include "core/db.h"

using namespace pmblade;  // NOLINT: example brevity

#define CHECK_OK(expr)                                        \
  do {                                                        \
    ::pmblade::Status _s = (expr);                            \
    if (!_s.ok()) {                                           \
      fprintf(stderr, "%s failed: %s\n", #expr,               \
              _s.ToString().c_str());                         \
      return 1;                                               \
    }                                                         \
  } while (0)

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "/tmp/pmblade_quickstart";

  // Start fresh for the demo.
  Options options;
  CHECK_OK(DestroyDB(options, path));

  // A small configuration: 1 MiB memtable, 64 MiB simulated PM pool for
  // level-0, four range partitions over lowercase keys.
  options.memtable_bytes = 1 << 20;
  options.pm_pool_capacity = 64 << 20;
  options.partition_boundaries = {"g", "n", "t"};

  std::unique_ptr<DB> db;
  CHECK_OK(DB::Open(options, path, &db));
  printf("opened %s\n", path.c_str());

  // ---- basic writes and reads ----
  CHECK_OK(db->Put(WriteOptions(), "apple", "red"));
  CHECK_OK(db->Put(WriteOptions(), "banana", "yellow"));
  CHECK_OK(db->Put(WriteOptions(), "plum", "purple"));

  std::string value;
  CHECK_OK(db->Get(ReadOptions(), "banana", &value));
  printf("banana -> %s\n", value.c_str());

  // ---- atomic batch ----
  WriteBatch batch;
  batch.Put("cherry", "red");
  batch.Delete("apple");
  CHECK_OK(db->Write(WriteOptions(), &batch));
  Status s = db->Get(ReadOptions(), "apple", &value);
  printf("apple after delete: %s\n", s.ToString().c_str());

  // ---- snapshot isolation ----
  uint64_t snapshot = db->GetSnapshot();
  CHECK_OK(db->Put(WriteOptions(), "banana", "brown"));
  ReadOptions at_snapshot;
  at_snapshot.snapshot = snapshot;
  CHECK_OK(db->Get(at_snapshot, "banana", &value));
  printf("banana at snapshot -> %s (now: ", value.c_str());
  CHECK_OK(db->Get(ReadOptions(), "banana", &value));
  printf("%s)\n", value.c_str());
  db->ReleaseSnapshot(snapshot);

  // ---- scan ----
  printf("full scan:\n");
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    printf("  %s -> %s\n", it->key().ToString().c_str(),
           it->value().ToString().c_str());
  }
  CHECK_OK(it->status());
  it.reset();

  // ---- maintenance: flush to PM level-0, compact, inspect ----
  CHECK_OK(db->FlushMemTable());       // memtable -> PM tables
  CHECK_OK(db->CompactLevel0());       // internal compaction (on PM)
  CHECK_OK(db->CompactToLevel1(true)); // major compaction (Eq. 3 retention)

  uint64_t l0 = 0, l1 = 0, pm_used = 0;
  db->GetProperty("pmblade.l0-bytes", &l0);
  db->GetProperty("pmblade.l1-bytes", &l1);
  db->GetProperty("pmblade.pm-used-bytes", &pm_used);
  printf("level-0: %llu B on PM (%llu B pool used), level-1: %llu B on "
         "SSD\n",
         (unsigned long long)l0, (unsigned long long)pm_used,
         (unsigned long long)l1);
  printf("stats:\n%s\n", db->statistics().ToString().c_str());

  db.reset();
  printf("done; data persists at %s (reopen with the same Options)\n",
         path.c_str());
  return 0;
}
