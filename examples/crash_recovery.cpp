// Crash recovery: demonstrate PM-Blade's durability story end to end.
//
//   ./crash_recovery [db_path]
//
// Phase 1 writes data into every layer (WAL-only, PM level-0 unsorted and
// sorted, SSD level-1), records what the database should contain, then
// closes. Phase 2 reopens — replaying the WAL, re-attaching PM tables from
// the pool's persistent object directory and level-1 SSTables from the
// manifest — and verifies every key. The PM pool is the interesting part:
// level-0 contents survive restarts *without* being rebuilt from the WAL,
// which is exactly why the paper puts level-0 on persistent memory.

#include <cstdio>
#include <map>
#include <memory>

#include "core/db.h"

using namespace pmblade;  // NOLINT: example brevity

#define CHECK_OK(expr)                                        \
  do {                                                        \
    ::pmblade::Status _s = (expr);                            \
    if (!_s.ok()) {                                           \
      fprintf(stderr, "%s failed: %s\n", #expr,               \
              _s.ToString().c_str());                         \
      return 1;                                               \
    }                                                         \
  } while (0)

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "/tmp/pmblade_recovery";
  Options options;
  options.memtable_bytes = 64 << 10;
  options.pm_pool_capacity = 32 << 20;
  options.partition_boundaries = {"m"};

  CHECK_OK(DestroyDB(options, path));
  std::map<std::string, std::string> expected;

  {
    std::unique_ptr<DB> db;
    CHECK_OK(DB::Open(options, path, &db));

    // Layer 1: level-1 on SSD.
    for (int i = 0; i < 50; ++i) {
      std::string key = "cold" + std::to_string(i);
      expected[key] = "ssd-resident";
      CHECK_OK(db->Put(WriteOptions(), key, "ssd-resident"));
    }
    CHECK_OK(db->CompactToLevel1(false));

    // Layer 2: sorted PM level-0 (flushed + internally compacted).
    for (int i = 0; i < 50; ++i) {
      std::string key = "warm" + std::to_string(i);
      expected[key] = "pm-sorted";
      CHECK_OK(db->Put(WriteOptions(), key, "pm-sorted"));
    }
    CHECK_OK(db->FlushMemTable());
    CHECK_OK(db->CompactLevel0());

    // Layer 3: unsorted PM level-0 (flushed only).
    for (int i = 0; i < 50; ++i) {
      std::string key = "recent" + std::to_string(i);
      expected[key] = "pm-unsorted";
      CHECK_OK(db->Put(WriteOptions(), key, "pm-unsorted"));
    }
    CHECK_OK(db->FlushMemTable());

    // Layer 4: WAL only (never flushed) + an overwrite and a delete for
    // spice.
    for (int i = 0; i < 50; ++i) {
      std::string key = "hot" + std::to_string(i);
      expected[key] = "wal-only";
      CHECK_OK(db->Put(WriteOptions(), key, "wal-only"));
    }
    expected["warm7"] = "overwritten-in-wal";
    CHECK_OK(db->Put(WriteOptions(), "warm7", "overwritten-in-wal"));
    expected.erase("cold13");
    CHECK_OK(db->Delete(WriteOptions(), "cold13"));

    printf("phase 1: wrote %zu live keys across WAL / PM-unsorted / "
           "PM-sorted / SSD\n",
           expected.size());
    // db closes here; a real crash would lose nothing either — the WAL
    // holds layer 4 and the PM pool + manifest hold the rest.
  }

  {
    std::unique_ptr<DB> db;
    CHECK_OK(DB::Open(options, path, &db));
    printf("phase 2: reopened; verifying...\n");

    size_t verified = 0;
    for (const auto& [key, want] : expected) {
      std::string got;
      Status s = db->Get(ReadOptions(), key, &got);
      if (!s.ok() || got != want) {
        fprintf(stderr, "MISMATCH %s: got '%s' (%s), want '%s'\n",
                key.c_str(), got.c_str(), s.ToString().c_str(),
                want.c_str());
        return 1;
      }
      ++verified;
    }
    std::string gone;
    if (!db->Get(ReadOptions(), "cold13", &gone).IsNotFound()) {
      fprintf(stderr, "deleted key resurrected!\n");
      return 1;
    }

    // Scans also see exactly the expected set.
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    size_t scanned = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) ++scanned;
    CHECK_OK(it->status());

    printf("verified %zu point reads, %zu scanned entries — all intact\n",
           verified, scanned);
    uint64_t l0 = 0, l1 = 0;
    db->GetProperty("pmblade.l0-bytes", &l0);
    db->GetProperty("pmblade.l1-bytes", &l1);
    printf("recovered layout: %llu B in PM level-0, %llu B in SSD "
           "level-1\n",
           (unsigned long long)l0, (unsigned long long)l1);
  }
  printf("OK\n");
  return 0;
}
