// Engine shootout: drive the same workload against PM-Blade and the two
// baseline engines through the common KvEngine interface, on shared device
// simulators, and compare the outcome.
//
//   ./engine_shootout [ops] [value_size]
//
// A compact, self-contained version of what the bench harnesses do — useful
// as a template for evaluating your own workload against the three engines.

#include <cstdio>
#include <memory>

#include "benchutil/reporter.h"
#include "benchutil/runner.h"
#include "benchutil/workload.h"
#include "util/clock.h"

using namespace pmblade;        // NOLINT: example brevity
using namespace pmblade::bench; // NOLINT

int main(int argc, char** argv) {
  const uint64_t ops = argc > 1 ? strtoull(argv[1], nullptr, 10) : 6000;
  const size_t value_size = argc > 2 ? strtoull(argv[2], nullptr, 10) : 256;

  TablePrinter out({"engine", "load time", "mixed-phase time", "avg get",
                    "ssd written", "pm written"});

  for (EngineConfig config :
       {EngineConfig::kRocksStyle, EngineConfig::kMatrixKvSmall,
        EngineConfig::kPmBlade}) {
    BenchEnvOptions eopts;
    eopts.root = "/tmp/pmblade_shootout";
    eopts.memtable_bytes = 256 << 10;
    KeySpec boundary_spec;
    boundary_spec.num_keys = ops;
    eopts.partition_boundaries =
        KeyGenerator(boundary_spec).PartitionBoundaries(8);

    BenchEnv env(eopts);
    KvEngine* engine = nullptr;
    Status s = env.OpenEngine(config, &engine);
    if (!s.ok()) {
      fprintf(stderr, "open %s: %s\n", EngineConfigName(config),
              s.ToString().c_str());
      return 1;
    }

    KeySpec spec;
    spec.num_keys = ops;
    spec.zipf_theta = 0.9;
    KeyGenerator keys(spec);
    ValueGenerator values(value_size);
    Clock* clock = SystemClock();

    // Load phase: populate every key once.
    uint64_t load_start = clock->NowNanos();
    for (uint64_t i = 0; i < ops; ++i) {
      s = engine->Put(keys.KeyAt(i), values.For(i));
      if (!s.ok()) {
        fprintf(stderr, "put: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    uint64_t load_nanos = clock->NowNanos() - load_start;

    // Mixed phase: zipfian 50/50 read/update.
    Random rng(11);
    uint64_t get_nanos = 0, gets = 0;
    uint64_t mixed_start = clock->NowNanos();
    for (uint64_t i = 0; i < ops; ++i) {
      uint64_t index = keys.NextIndex();
      if (rng.OneIn(2)) {
        std::string value;
        uint64_t t0 = clock->NowNanos();
        Status rs = engine->Get(keys.KeyAt(index), &value);
        get_nanos += clock->NowNanos() - t0;
        ++gets;
        if (!rs.ok() && !rs.IsNotFound()) {
          fprintf(stderr, "get: %s\n", rs.ToString().c_str());
          return 1;
        }
      } else {
        s = engine->Put(keys.KeyAt(index), values.For(index));
        if (!s.ok()) {
          fprintf(stderr, "put: %s\n", s.ToString().c_str());
          return 1;
        }
      }
    }
    uint64_t mixed_nanos = clock->NowNanos() - mixed_start;

    out.AddRow({EngineConfigName(config), TablePrinter::FmtNanos(load_nanos),
                TablePrinter::FmtNanos(mixed_nanos),
                TablePrinter::FmtNanos(gets ? double(get_nanos) / gets : 0),
                TablePrinter::FmtBytes(env.SsdBytesWritten()),
                TablePrinter::FmtBytes(env.PmBytesWritten())});
  }

  out.Print("engine shootout (same workload, shared device models)");
  return 0;
}
