// Order tracking: the paper's motivating scenario as a runnable example.
//
//   ./order_tracking [db_path]
//
// Models a slice of an online-retail backend on PM-Blade:
//   * an orders table keyed "orders|<order-id>"
//   * a secondary index "idx_user|<user-id>|<order-id>" -> order-id
//   * an order's lifecycle: placed -> paid -> packed -> delivering -> done
//     (hot data: many updates shortly after insert)
//   * queries: "latest orders of a user" = index scan + point reads
//
// Shows how the hot order rows and the small-but-hot index table stay in
// the PM level-0 while finished orders age out to the SSD.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/db.h"
#include "util/random.h"

using namespace pmblade;  // NOLINT: example brevity

#define CHECK_OK(expr)                                        \
  do {                                                        \
    ::pmblade::Status _s = (expr);                            \
    if (!_s.ok()) {                                           \
      fprintf(stderr, "%s failed: %s\n", #expr,               \
              _s.ToString().c_str());                         \
      return 1;                                               \
    }                                                         \
  } while (0)

namespace {

std::string OrderKey(uint64_t order_id) {
  char buf[40];
  snprintf(buf, sizeof(buf), "orders|%010llu",
           (unsigned long long)order_id);
  return buf;
}

std::string UserIndexKey(uint64_t user_id, uint64_t order_id) {
  char buf[64];
  snprintf(buf, sizeof(buf), "idx_user|%06llu|%010llu",
           (unsigned long long)user_id, (unsigned long long)order_id);
  return buf;
}

std::string OrderRow(uint64_t user_id, const char* status) {
  char buf[128];
  snprintf(buf, sizeof(buf),
           "user=%06llu;status=%s;items=3;total=42.50;city=shanghai",
           (unsigned long long)user_id, status);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "/tmp/pmblade_orders";
  Options options;
  CHECK_OK(DestroyDB(options, path));
  options.memtable_bytes = 256 << 10;
  options.pm_pool_capacity = 64 << 20;
  // Partition the keyspace: index table | orders table (the orders range is
  // further split so hot recent orders separate from cold old ones).
  options.partition_boundaries = {"idx_user|", "orders|",
                                  OrderKey(1500)};
  // A small PM retention budget so the demo's major compaction visibly
  // keeps only the hottest partitions in PM (Eq. 3).
  options.cost.tau_t = 96 << 10;

  std::unique_ptr<DB> db;
  CHECK_OK(DB::Open(options, path, &db));

  // ---- order lifecycle: insert + status updates (hot data) ----
  const char* kLifecycle[] = {"placed", "paid", "packed", "delivering",
                              "done"};
  Random rng(2026);
  const int kOrders = 2000;
  const int kUsers = 100;
  printf("placing %d orders for %d users...\n", kOrders, kUsers);
  for (uint64_t order = 0; order < kOrders; ++order) {
    uint64_t user = rng.Uniform(kUsers);
    WriteBatch batch;  // row + index entry commit atomically
    batch.Put(OrderKey(order), OrderRow(user, kLifecycle[0]));
    batch.Put(UserIndexKey(user, order), OrderKey(order));
    CHECK_OK(db->Write(WriteOptions(), &batch));

    // Recent orders progress through their lifecycle (frequent updates to
    // hot rows — the write-amplification hazard PM-Blade absorbs on PM).
    if (order >= 10) {
      uint64_t hot = order - rng.Uniform(10);
      std::string row;
      if (db->Get(ReadOptions(), OrderKey(hot), &row).ok()) {
        int next_stage = 1 + static_cast<int>(rng.Uniform(4));
        // The row's user id is at a fixed offset in this demo encoding.
        uint64_t hot_user = strtoull(row.c_str() + 5, nullptr, 10);
        CHECK_OK(db->Put(WriteOptions(), OrderKey(hot),
                         OrderRow(hot_user, kLifecycle[next_stage])));
      }
    }
  }

  // ---- query: a user's latest orders via the secondary index ----
  uint64_t user = 42;
  printf("\nlatest orders of user %06llu:\n", (unsigned long long)user);
  std::string prefix = "idx_user|000042|";
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  std::vector<std::string> order_keys;
  for (it->Seek(prefix); it->Valid() && it->key().starts_with(prefix);
       it->Next()) {
    order_keys.push_back(it->value().ToString());
  }
  CHECK_OK(it->status());
  it.reset();
  int shown = 0;
  for (auto rit = order_keys.rbegin();
       rit != order_keys.rend() && shown < 5; ++rit, ++shown) {
    std::string row;
    CHECK_OK(db->Get(ReadOptions(), *rit, &row));
    printf("  %s: %s\n", rit->c_str(), row.c_str());
  }
  printf("  (%zu orders total for this user)\n", order_keys.size());

  // ---- age out cold data; hot partitions stay in PM (Eq. 3) ----
  CHECK_OK(db->FlushMemTable());
  CHECK_OK(db->CompactToLevel1(/*respect_cost_model=*/true));
  uint64_t l0 = 0, l1 = 0;
  db->GetProperty("pmblade.l0-bytes", &l0);
  db->GetProperty("pmblade.l1-bytes", &l1);
  printf("\nafter cost-based major compaction: %llu B retained in PM "
         "level-0, %llu B on SSD\n",
         (unsigned long long)l0, (unsigned long long)l1);
  printf("read sources so far: %s\n",
         db->statistics().ToString().c_str());
  return 0;
}
