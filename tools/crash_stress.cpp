// crash_stress: standalone randomized crash-recovery stress runner.
//
// Drives the same model-checked harness as tests/crash_recovery_test.cc but
// as a CLI, for long scheduled runs. By default the seed is drawn from the
// clock and PRINTED FIRST THING, so any failure replays exactly:
//
//   crash_stress --seed=<printed seed> --cycles=<N> [--layout=...] ...
//
// SIGINT/SIGTERM stop the run at the next cycle boundary: the harness still
// performs its final-reopen invariant check, the partial results are printed
// and written to --json (default crash_stress_summary.json), and the exit
// status is 128+signal.
//
// Environment overrides (used by the CI stress job):
//   PMBLADE_CRASH_SEED    — same as --seed
//   PMBLADE_CRASH_CYCLES  — same as --cycles
//
// Exit status: 0 = every invariant held, 1 = loss/torn-batch/error detected,
// 2 = bad usage, 128+sig = interrupted (invariants held on what ran).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchutil/flags.h"
#include "benchutil/interrupt.h"
#include "compaction/policy/compaction_picker.h"
#include "tests/crash_harness.h"
#include "tests/sharded_crash_harness.h"
#include "util/clock.h"

namespace {

void Usage() {
  fprintf(stderr,
          "usage: crash_stress [options]\n"
          "  --cycles=N        crash/reopen cycles per configuration "
          "(default 200)\n"
          "  --seed=S          workload/crash seed (default: from clock)\n"
          "  --layout=pm|ssd   level-0 layout (default pm)\n"
          "  --policy=NAME     SSD compaction policy: leveled (default),\n"
          "                    tiered or lazy_leveling\n"
          "  --pm-crash-sim    enable PM persist-granularity faults\n"
          "  --all-layouts     run pm, ssd and pm+crash-sim configurations\n"
          "  --shards=N        drive an N-shard ShardedDB instead: random\n"
          "                    cross-shard batches, power cuts between 2PC\n"
          "                    prepare and commit, all-or-nothing reopen "
          "check\n"
          "  --max-ops=N       max operations per cycle (default 120)\n"
          "  --dir=PATH        scratch directory (default /tmp)\n"
          "  --json=PATH       summary JSON (default "
          "crash_stress_summary.json, empty disables)\n"
          "  --verbose         per-cycle crash-plan log\n");
}

struct ConfigResult {
  std::string name;
  pmblade::test::CrashHarnessResult result;
};

void WriteSummaryJson(const std::string& path, unsigned long long seed,
                      long cycles, bool interrupted,
                      const std::vector<ConfigResult>& results) {
  if (path.empty()) return;
  FILE* out = fopen(path.c_str(), "w");
  if (out == nullptr) return;
  fprintf(out,
          "{\n  \"seed\": %llu,\n  \"cycles_requested\": %ld,\n"
          "  \"interrupted\": %s,\n  \"configs\": [\n",
          seed, cycles, interrupted ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    fprintf(out,
            "    {\"name\": \"%s\", \"ok\": %s, \"cycles_run\": %d, "
            "\"syncpoint_crashes\": %d, \"between_op_crashes\": %d, "
            "\"ops\": %lld, \"failed_cycle\": %d}%s\n",
            r.name.c_str(), r.result.ok() ? "true" : "false",
            r.result.cycles_run, r.result.syncpoint_crashes,
            r.result.between_op_crashes, r.result.ops_issued,
            r.result.failed_cycle, i + 1 < results.size() ? "," : "");
  }
  fprintf(out, "  ]\n}\n");
  fclose(out);
  printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using pmblade::test::CrashHarness;
  using pmblade::test::CrashHarnessOptions;
  using pmblade::test::CrashHarnessResult;
  namespace bench = pmblade::bench;

  bench::Flags flags(argc, argv);
  std::vector<std::string> unknown = flags.Unknown(
      {"cycles", "seed", "layout", "policy", "pm-crash-sim", "all-layouts",
       "max-ops", "dir", "json", "verbose", "shards"});
  if (!unknown.empty() || !flags.positional().empty()) {
    for (const auto& f : unknown) {
      fprintf(stderr, "unknown flag --%s\n", f.c_str());
    }
    Usage();
    return 2;
  }

  long shards = static_cast<long>(flags.Int("shards", 0));
  if (flags.Has("shards") && (shards < 2 || shards > 64)) {
    fprintf(stderr, "--shards wants 2..64 (got %ld)\n", shards);
    return 2;
  }
  long cycles = static_cast<long>(flags.Int("cycles", 200));
  unsigned long long seed = static_cast<unsigned long long>(flags.Int(
      "seed",
      static_cast<int64_t>(pmblade::SystemClock()->NowNanos() / 1000000)));
  std::string layout = flags.Str("layout", "pm");
  std::string policy = flags.Str("policy", "leveled");
  if (!pmblade::IsValidCompactionPolicy(policy)) {
    fprintf(stderr,
            "unknown --policy '%s' (want leveled|tiered|lazy_leveling)\n",
            policy.c_str());
    return 2;
  }
  const bool pm_crash_sim = flags.Bool("pm-crash-sim", false);
  const bool all_layouts = flags.Bool("all-layouts", false);
  long max_ops = static_cast<long>(flags.Int("max-ops", 120));
  std::string dir = flags.Str("dir", "/tmp");
  std::string json_path = flags.Str("json", "crash_stress_summary.json");
  const bool verbose = flags.Bool("verbose", false);

  if (const char* s = getenv("PMBLADE_CRASH_SEED")) {
    seed = strtoull(s, nullptr, 10);
  }
  if (const char* s = getenv("PMBLADE_CRASH_CYCLES")) {
    long v = strtol(s, nullptr, 10);
    if (v > 0) cycles = v;
  }

  bench::InstallInterruptHandler();

  // The seed goes out first so a dead CI job still shows how to replay.
  printf("crash_stress: seed=%llu cycles=%ld (replay: crash_stress "
         "--seed=%llu --cycles=%ld%s)\n",
         seed, cycles, seed, cycles,
         shards > 0 ? (" --shards=" + std::to_string(shards)).c_str() : "");
  fflush(stdout);

  if (shards > 0) {
    // Sharded mode: power-cut a ShardedDB between 2PC prepare and commit
    // (and everywhere else) and demand every cross-shard batch reopens
    // all-or-nothing. Layout flags don't apply — each shard is a full
    // engine with the default PM layout.
    pmblade::test::ShardedCrashHarnessOptions opts;
    opts.dbname = dir + "/pmblade_crash_stress_sharded_" +
                  std::to_string(static_cast<unsigned long long>(seed));
    opts.seed = seed;
    opts.cycles = static_cast<int>(cycles);
    opts.num_shards = static_cast<uint32_t>(shards);
    opts.max_ops_per_cycle = static_cast<int>(max_ops);
    opts.compaction_policy = policy;
    opts.verbose = verbose;
    opts.stop_requested = [] { return bench::InterruptRequested(); };

    printf("== sharded x%ld: %ld cycles ==\n", shards, cycles);
    fflush(stdout);
    pmblade::test::ShardedCrashHarness harness(opts);
    pmblade::test::ShardedCrashHarnessResult result = harness.Run();
    if (result.ok()) {
      printf("   %s: %d cycles (%d syncpoint / %d between-op crashes), "
             "%lld batches (%lld cross-shard)\n",
             result.interrupted ? "INTERRUPTED (partial PASS)" : "PASS",
             result.cycles_run, result.syncpoint_crashes,
             result.between_op_crashes, result.batches_issued,
             result.cross_shard_batches);
    } else {
      printf("   FAIL at cycle %d: %s\n   replay: crash_stress --seed=%llu "
             "--cycles=%ld --shards=%ld\n",
             result.failed_cycle, result.failure.c_str(), seed, cycles,
             shards);
    }
    fflush(stdout);
    if (!json_path.empty()) {
      FILE* out = fopen(json_path.c_str(), "w");
      if (out != nullptr) {
        fprintf(out,
                "{\n  \"seed\": %llu,\n  \"cycles_requested\": %ld,\n"
                "  \"interrupted\": %s,\n  \"configs\": [\n"
                "    {\"name\": \"sharded-x%ld\", \"ok\": %s, "
                "\"cycles_run\": %d, \"syncpoint_crashes\": %d, "
                "\"between_op_crashes\": %d, \"batches\": %lld, "
                "\"cross_shard_batches\": %lld, \"failed_cycle\": %d}\n"
                "  ]\n}\n",
                seed, cycles,
                bench::InterruptRequested() ? "true" : "false", shards,
                result.ok() ? "true" : "false", result.cycles_run,
                result.syncpoint_crashes, result.between_op_crashes,
                result.batches_issued, result.cross_shard_batches,
                result.failed_cycle);
        fclose(out);
        printf("wrote %s\n", json_path.c_str());
      }
    }
    if (!result.ok()) return 1;
    if (bench::InterruptRequested()) return 128 + bench::InterruptSignal();
    return 0;
  }

  struct Config {
    const char* name;
    pmblade::L0Layout layout;
    bool pm_crash_sim;
  };
  std::vector<Config> configs;
  if (all_layouts) {
    configs = {{"pm", pmblade::L0Layout::kPmTable, false},
               {"ssd", pmblade::L0Layout::kSstable, false},
               {"pm+crash-sim", pmblade::L0Layout::kPmTable, true}};
  } else {
    configs = {{layout.c_str(),
                layout == "ssd" ? pmblade::L0Layout::kSstable
                                : pmblade::L0Layout::kPmTable,
                pm_crash_sim}};
  }

  bool ok = true;
  std::vector<ConfigResult> results;
  for (const Config& config : configs) {
    if (bench::InterruptRequested()) break;
    CrashHarnessOptions opts;
    opts.dbname = dir + "/pmblade_crash_stress_" +
                  std::to_string(static_cast<unsigned long long>(seed));
    opts.seed = seed;
    opts.cycles = static_cast<int>(cycles);
    opts.l0_layout = config.layout;
    opts.pm_crash_sim = config.pm_crash_sim;
    opts.max_ops_per_cycle = static_cast<int>(max_ops);
    opts.compaction_policy = policy;
    opts.verbose = verbose;
    opts.stop_requested = [] { return bench::InterruptRequested(); };

    printf("== %s: %ld cycles ==\n", config.name, cycles);
    fflush(stdout);
    CrashHarness harness(opts);
    CrashHarnessResult result = harness.Run();
    results.push_back({config.name, result});
    if (result.ok()) {
      printf("   %s: %d cycles (%d syncpoint / %d between-op crashes), "
             "%lld ops\n",
             result.interrupted ? "INTERRUPTED (partial PASS)" : "PASS",
             result.cycles_run, result.syncpoint_crashes,
             result.between_op_crashes, result.ops_issued);
    } else {
      printf("   FAIL at cycle %d: %s\n   replay: crash_stress --seed=%llu "
             "--cycles=%ld --layout=%s%s%s\n",
             result.failed_cycle, result.failure.c_str(), seed, cycles,
             config.layout == pmblade::L0Layout::kSstable ? "ssd" : "pm",
             config.pm_crash_sim ? " --pm-crash-sim" : "",
             policy == "leveled" ? ""
                                 : (" --policy=" + policy).c_str());
      ok = false;
    }
    fflush(stdout);
  }

  const bool interrupted = bench::InterruptRequested();
  WriteSummaryJson(json_path, seed, cycles, interrupted, results);
  if (!ok) return 1;
  if (interrupted) {
    printf("crash_stress: interrupted by signal %d, partial results above\n",
           bench::InterruptSignal());
    return 128 + bench::InterruptSignal();
  }
  return 0;
}
