// crash_stress: standalone randomized crash-recovery stress runner.
//
// Drives the same model-checked harness as tests/crash_recovery_test.cc but
// as a CLI, for long scheduled runs. By default the seed is drawn from the
// clock and PRINTED FIRST THING, so any failure replays exactly:
//
//   crash_stress --seed=<printed seed> --cycles=<N> [--layout=...] ...
//
// Environment overrides (used by the CI stress job):
//   PMBLADE_CRASH_SEED    — same as --seed
//   PMBLADE_CRASH_CYCLES  — same as --cycles
//
// Exit status: 0 = every invariant held, 1 = loss/torn-batch/error detected.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "tests/crash_harness.h"

namespace {

void Usage() {
  fprintf(stderr,
          "usage: crash_stress [options]\n"
          "  --cycles=N        crash/reopen cycles per configuration "
          "(default 200)\n"
          "  --seed=S          workload/crash seed (default: from clock)\n"
          "  --layout=pm|ssd   level-0 layout (default pm)\n"
          "  --pm-crash-sim    enable PM persist-granularity faults\n"
          "  --all-layouts     run pm, ssd and pm+crash-sim configurations\n"
          "  --max-ops=N       max operations per cycle (default 120)\n"
          "  --dir=PATH        scratch directory (default /tmp)\n"
          "  --verbose         per-cycle crash-plan log\n");
}

bool ParseInt(const char* arg, const char* flag, long* out) {
  size_t n = strlen(flag);
  if (strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  *out = strtol(arg + n + 1, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using pmblade::test::CrashHarness;
  using pmblade::test::CrashHarnessOptions;
  using pmblade::test::CrashHarnessResult;

  long cycles = 200;
  unsigned long long seed = static_cast<unsigned long long>(time(nullptr));
  std::string layout = "pm";
  bool pm_crash_sim = false;
  bool all_layouts = false;
  long max_ops = 120;
  std::string dir = "/tmp";
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long v = 0;
    if (ParseInt(arg, "--cycles", &v)) {
      cycles = v;
    } else if (strncmp(arg, "--seed=", 7) == 0) {
      seed = strtoull(arg + 7, nullptr, 10);
    } else if (strncmp(arg, "--layout=", 9) == 0) {
      layout = arg + 9;
    } else if (strcmp(arg, "--pm-crash-sim") == 0) {
      pm_crash_sim = true;
    } else if (strcmp(arg, "--all-layouts") == 0) {
      all_layouts = true;
    } else if (ParseInt(arg, "--max-ops", &v)) {
      max_ops = v;
    } else if (strncmp(arg, "--dir=", 6) == 0) {
      dir = arg + 6;
    } else if (strcmp(arg, "--verbose") == 0) {
      verbose = true;
    } else {
      Usage();
      return 2;
    }
  }
  if (const char* s = getenv("PMBLADE_CRASH_SEED")) {
    seed = strtoull(s, nullptr, 10);
  }
  if (const char* s = getenv("PMBLADE_CRASH_CYCLES")) {
    long v = strtol(s, nullptr, 10);
    if (v > 0) cycles = v;
  }

  // The seed goes out first so a dead CI job still shows how to replay.
  printf("crash_stress: seed=%llu cycles=%ld (replay: crash_stress "
         "--seed=%llu --cycles=%ld)\n",
         seed, cycles, seed, cycles);
  fflush(stdout);

  struct Config {
    const char* name;
    pmblade::L0Layout layout;
    bool pm_crash_sim;
  };
  std::vector<Config> configs;
  if (all_layouts) {
    configs = {{"pm", pmblade::L0Layout::kPmTable, false},
               {"ssd", pmblade::L0Layout::kSstable, false},
               {"pm+crash-sim", pmblade::L0Layout::kPmTable, true}};
  } else {
    configs = {{layout.c_str(),
                layout == "ssd" ? pmblade::L0Layout::kSstable
                                : pmblade::L0Layout::kPmTable,
                pm_crash_sim}};
  }

  bool ok = true;
  for (const Config& config : configs) {
    CrashHarnessOptions opts;
    opts.dbname = dir + "/pmblade_crash_stress_" +
                  std::to_string(static_cast<unsigned long long>(seed));
    opts.seed = seed;
    opts.cycles = static_cast<int>(cycles);
    opts.l0_layout = config.layout;
    opts.pm_crash_sim = config.pm_crash_sim;
    opts.max_ops_per_cycle = static_cast<int>(max_ops);
    opts.verbose = verbose;

    printf("== %s: %ld cycles ==\n", config.name, cycles);
    fflush(stdout);
    CrashHarness harness(opts);
    CrashHarnessResult result = harness.Run();
    if (result.ok()) {
      printf("   PASS: %d cycles (%d syncpoint / %d between-op crashes), "
             "%lld ops\n",
             result.cycles_run, result.syncpoint_crashes,
             result.between_op_crashes, result.ops_issued);
    } else {
      printf("   FAIL at cycle %d: %s\n   replay: crash_stress --seed=%llu "
             "--cycles=%ld --layout=%s%s\n",
             result.failed_cycle, result.failure.c_str(), seed, cycles,
             config.layout == pmblade::L0Layout::kSstable ? "ssd" : "pm",
             config.pm_crash_sim ? " --pm-crash-sim" : "");
      ok = false;
    }
    fflush(stdout);
  }
  return ok ? 0 : 1;
}
