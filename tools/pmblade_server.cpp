// pmblade_server: RESP daemon over a pmblade::DB (see src/net/).
//
// Usage:
//   pmblade_server --db=PATH [--host=127.0.0.1] [--port=6399] [--workers=2]
//                  [--memtable_bytes=N] [--layout=pm|ssd] [--shards=N]
//                  [--sync_wal] [--shed_on_slowdown]
//                  [--slowdown_watermark=0.875] [--max_output_mb=4]
//                  [--port_file=PATH] [--quiet]
//
// Binds (port 0 = ephemeral; the bound port is printed on the "ready" line
// and written to --port_file for scripts), serves until SIGINT/SIGTERM or a
// client SHUTDOWN, then drains gracefully: stop accepting, finish commands
// already received, flush replies, close, flush the memtable, close the DB.
// Every acknowledged write is WAL-durable, so a drained shutdown loses
// nothing.
//
// Exit status: 0 = clean shutdown, 1 = open/bind failure, 2 = bad usage.

#include <cstdio>
#include <memory>
#include <string>

#include "benchutil/flags.h"
#include "benchutil/interrupt.h"
#include "core/db.h"
#include "net/server.h"

namespace {

pmblade::net::Server* g_server = nullptr;

// Async-signal-safe: RequestShutdown is an atomic store + eventfd write.
void OnSignal() {
  if (g_server != nullptr) g_server->RequestShutdown();
}

void Usage() {
  fprintf(stderr,
          "usage: pmblade_server --db=PATH [options]\n"
          "  --host=ADDR            listen address (default 127.0.0.1)\n"
          "  --port=N               listen port, 0 = ephemeral (default "
          "6399)\n"
          "  --workers=N            epoll worker threads (default 2)\n"
          "  --memtable_bytes=N     engine memtable size (default 4 MiB)\n"
          "  --layout=pm|ssd        level-0 layout (default pm)\n"
          "  --shards=N             hash-partitioned engine shards, each\n"
          "                         with its own WAL/memtable/compaction\n"
          "                         (default 1; a DB dir is pinned to its\n"
          "                         creation-time shard count)\n"
          "  --sync_wal             fsync the WAL on every write group\n"
          "  --shed_on_slowdown     shed writes at the slowdown watermark,\n"
          "                         not only at a full stall\n"
          "  --slowdown_watermark=F memtable fraction that starts write\n"
          "                         slowdown (default 0.875)\n"
          "  --max_output_mb=N      per-connection reply backlog cap "
          "(default 4)\n"
          "  --port_file=PATH       write the bound port here (for "
          "scripts)\n"
          "  --quiet                no server logging to stderr\n");
}

}  // namespace

int main(int argc, char** argv) {
  namespace bench = pmblade::bench;
  namespace net = pmblade::net;

  bench::Flags flags(argc, argv);
  std::vector<std::string> unknown = flags.Unknown(
      {"db", "host", "port", "workers", "memtable_bytes", "layout", "shards",
       "sync_wal", "shed_on_slowdown", "slowdown_watermark", "max_output_mb",
       "port_file", "quiet"});
  if (!unknown.empty() || !flags.positional().empty() ||
      !flags.Has("db")) {
    for (const auto& f : unknown) {
      fprintf(stderr, "unknown flag --%s\n", f.c_str());
    }
    if (!flags.Has("db")) fprintf(stderr, "--db=PATH is required\n");
    Usage();
    return 2;
  }

  pmblade::Options options;
  options.memtable_bytes =
      static_cast<size_t>(flags.Int("memtable_bytes", 4 << 20));
  options.sync_wal = flags.Bool("sync_wal", false);
  options.write_slowdown_watermark =
      flags.Double("slowdown_watermark", options.write_slowdown_watermark);
  options.l0_layout = flags.Str("layout", "pm") == "ssd"
                          ? pmblade::L0Layout::kSstable
                          : pmblade::L0Layout::kPmTable;
  options.num_shards = static_cast<uint32_t>(flags.Int("shards", 1));
  pmblade::Logger* logger = flags.Bool("quiet", false)
                                ? pmblade::NullLogger()
                                : pmblade::StderrLogger();
  options.logger = logger;

  const std::string dbname = flags.Str("db", "");
  std::unique_ptr<pmblade::DB> db;
  pmblade::Status s = pmblade::DB::Open(options, dbname, &db);
  if (!s.ok()) {
    fprintf(stderr, "open %s: %s\n", dbname.c_str(), s.ToString().c_str());
    return 1;
  }

  net::ServerOptions sopts;
  sopts.host = flags.Str("host", "127.0.0.1");
  sopts.port = static_cast<int>(flags.Int("port", 6399));
  sopts.num_workers = static_cast<int>(flags.Int("workers", 2));
  sopts.max_output_buffer_bytes =
      static_cast<size_t>(flags.Int("max_output_mb", 4)) << 20;
  sopts.handler.shed_on_slowdown = flags.Bool("shed_on_slowdown", false);
  sopts.logger = logger;

  net::Server server(sopts, db.get());
  s = server.Start();
  if (!s.ok()) {
    fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }

  const std::string port_file = flags.Str("port_file", "");
  if (!port_file.empty()) {
    FILE* f = fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      fprintf(f, "%d\n", server.port());
      fclose(f);
    }
  }
  printf("pmblade_server: ready on %s:%d (db=%s, %d workers, %u shards)\n",
         sopts.host.c_str(), server.port(), dbname.c_str(),
         sopts.num_workers, db->num_shards());
  fflush(stdout);

  g_server = &server;
  bench::InstallInterruptHandler(&OnSignal);

  server.WaitForShutdownRequest();
  printf("pmblade_server: shutting down (%s)\n",
         bench::InterruptRequested() ? "signal" : "SHUTDOWN command");
  fflush(stdout);
  server.Stop();
  g_server = nullptr;
  db.reset();
  printf("pmblade_server: bye\n");
  return 0;
}
