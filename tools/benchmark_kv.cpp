// benchmark_kv — the paper's micro-benchmark tool (Section VI-A): a
// db_bench-style driver over the KvEngine interface, extended with record
// tables and secondary-index tables.
//
// Usage:
//   benchmark_kv [--engine=pmblade|pmblade-pm|pmblade-ssd|rocks|matrixkv]
//                [--benchmarks=fillseq,readrandom,...]
//                [--num=N] [--value_size=B] [--zipf=THETA]
//                [--scan_length=N] [--inject_latency=true|false]
//                [--writers=N] [--sync_writes=true|false]
//                [--shards=N] [--compaction_workers=N]
//                [--policy=leveled|tiered|lazy_leveling]
//                [--size_ratio=T] [--ssd_levels=L]
//                [--stats_dump=json|prometheus|both]
//
// --shards=N opens the pmblade configs as an N-way ShardedDB (hash-routed
// independent engines; see src/core/sharded_db.h). The baselines ignore it.
//
// --stats_dump prints the pmblade engine's full observability snapshot
// (metrics registry + recent trace events) after the benchmark list runs.
//
// Benchmarks:
//   fillseq      sequential inserts            fillrandom  random inserts
//   overwrite    random overwrites             readrandom  random point reads
//   readmissing  reads of absent keys          readseq     full forward scan
//   seekrandom   random seeks + short scans    deleterandom random deletes
//   indexfill    insert rows into a record table (+3 index tables)
//   indexquery   secondary-index queries (scan + verify + point reads)
//   mixed        50/50 zipfian read/update
//   write_scaling concurrent-writer sweep (1..--writers threads of random
//                puts, sync per --sync_writes); reopens the engine fresh per
//                point and emits BENCH_write_scaling.json
//   compaction_stall A/B of inline vs backgrounded major compaction: one
//                fresh engine per mode, tiny memtable + tight L0 budget to
//                force continuous flush->compaction cycles, reports write
//                p99/max and stall counters; emits BENCH_compaction_stall.json
//   compaction_parallel sweep of the parallel compaction pipeline: fresh
//                engine per point with compaction_workers =
//                max_subcompactions = 1, 2, 4 (.. --compaction_workers),
//                same randomized write stream each time, measuring the
//                wall time of forced major compactions over identical
//                level-0 state; emits BENCH_compaction_parallel.json
//   read_skew    zipfian point-read sweep over SSD-resident data (2x the
//                loaded keyspace, so half the probes are absent keys) on a
//                fresh engine per point: no_filter baseline, bloom+cache,
//                and bloom+cache+memory-arbiter; reports cold-read ops/s,
//                SSD reads per Get, bloom rejections and cache hit ratio,
//                then flips the arbiter point to a write-heavy phase to show
//                the budget shifting; emits BENCH_read_path.json
//   shard_scaling shard-count sweep (1,2,4,..,max(--shards,8)) under a fixed
//                pool of mixed read/write client threads, fresh engine per
//                point; reports ops/s and the speedup over the 1-shard
//                baseline; emits BENCH_shard_scaling.json
//   policy_sweep compaction design-space sweep: leveled vs tiered vs
//                lazy_leveling SSD shapes, one fresh engine per policy,
//                running fill-heavy, read-heavy zipfian, and 50/50 mixed
//                phases; reports ops/s, write-amp (compaction bytes over
//                user bytes, both from engine properties), space-amp, run
//                counts and SSD reads per Get; emits
//                BENCH_compaction_policy.json. Needs --engine=pmblade.
//   flush        force a memtable flush        compact     force L0->L1
//   stats        print engine statistics

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "benchutil/flags.h"
#include "benchutil/interrupt.h"
#include "benchutil/reporter.h"
#include "compaction/policy/compaction_picker.h"
#include "benchutil/runner.h"
#include "core/sharded_db.h"
#include "benchutil/table_codec.h"
#include "benchutil/workload.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/histogram.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

namespace {

struct Context {
  KvEngine* engine = nullptr;
  BenchEnv* env = nullptr;
  uint64_t num = 10000;
  size_t value_size = 256;
  double zipf = 0.99;
  int scan_length = 50;
  int writers = 1;
  int compaction_workers = 4;
  uint32_t shards = 1;
  bool sync_writes = false;
  Clock* clock = SystemClock();
};

void Report(const char* name, uint64_t ops, uint64_t nanos,
            const Histogram& latency) {
  double micros_per_op = ops > 0 ? nanos / 1000.0 / ops : 0;
  double ops_per_sec = nanos > 0 ? ops * 1e9 / nanos : 0;
  printf("%-12s : %9.3f us/op; %10.0f ops/sec; p99 %9.3f us (%llu ops)\n",
         name, micros_per_op, ops_per_sec, latency.Percentile(99) / 1000.0,
         static_cast<unsigned long long>(ops));
  fflush(stdout);
}

#define RUN_OP(expr)                                             \
  do {                                                           \
    Status _s = (expr);                                          \
    if (!_s.ok() && !_s.IsNotFound()) {                          \
      fprintf(stderr, "op failed: %s\n", _s.ToString().c_str()); \
      exit(1);                                                   \
    }                                                            \
  } while (0)

// Concurrent-writer sweep: 1, 2, 4, ... up to --writers threads of random
// puts (sync per --sync_writes). Each point reopens the engine fresh so the
// points are independent, then reads the group-commit counters to report
// how well the WAL syncs amortized. Emits BENCH_write_scaling.json.
void RunWriteScaling(Context* ctx) {
  std::vector<int> points;
  for (int t = 1; t < ctx->writers; t *= 2) points.push_back(t);
  if (ctx->writers >= 1) points.push_back(ctx->writers);

  TablePrinter table({"writers", "ops/sec", "p99(us)", "groups",
                      "writes/group", "fsyncs", "fsyncs/write"});
  std::string json = "[\n";

  for (size_t pi = 0; pi < points.size(); ++pi) {
    if (InterruptRequested()) break;  // partial JSON still written below
    const int threads = points[pi];
    KvEngine* engine = nullptr;
    Status s = ctx->env->OpenEngine(ctx->env->config(), &engine);
    if (!s.ok()) {
      fprintf(stderr, "write_scaling reopen: %s\n", s.ToString().c_str());
      exit(1);
    }
    ctx->engine = engine;
    DB* db = ctx->env->pmblade_db();

    KeySpec spec;
    spec.num_keys = ctx->num;
    KeyGenerator keys(spec);
    ValueGenerator values(ctx->value_size);
    const uint64_t per_thread = ctx->num / threads;

    Histogram latency;
    std::mutex merge_mu;
    const uint64_t start = ctx->clock->NowNanos();
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Random rng(301 + t);
        Histogram local;
        WriteOptions wopts;
        wopts.sync = ctx->sync_writes;
        for (uint64_t i = 0; i < per_thread && !InterruptRequested(); ++i) {
          uint64_t k = rng.Uniform(ctx->num);
          uint64_t t0 = ctx->clock->NowNanos();
          if (db != nullptr) {
            RUN_OP(db->Put(wopts, keys.KeyAt(k), values.For(k)));
          } else {
            RUN_OP(ctx->engine->Put(keys.KeyAt(k), values.For(k)));
          }
          local.Add(ctx->clock->NowNanos() - t0);
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        latency.Merge(local);
      });
    }
    for (auto& w : workers) w.join();
    const uint64_t nanos = ctx->clock->NowNanos() - start;

    const uint64_t ops = per_thread * threads;
    const double ops_per_sec = nanos > 0 ? ops * 1e9 / nanos : 0;
    const double p99_us = latency.Percentile(99) / 1000.0;
    uint64_t syncs = 0, groups = 0, group_writes = 0;
    if (db != nullptr) {
      db->GetProperty("pmblade.wal-syncs", &syncs);
      db->GetProperty("pmblade.write-groups", &groups);
      db->GetProperty("pmblade.write-group-writes", &group_writes);
    }
    const double writes_per_group =
        groups > 0 ? static_cast<double>(group_writes) / groups : 0;
    const double fsyncs_per_write =
        ops > 0 ? static_cast<double>(syncs) / ops : 0;

    char row[96];
    snprintf(row, sizeof(row), "%d writers", threads);
    Report(row, ops, nanos, latency);
    table.AddRow({std::to_string(threads), TablePrinter::Fmt(ops_per_sec, 0),
                  TablePrinter::Fmt(p99_us, 1), std::to_string(groups),
                  TablePrinter::Fmt(writes_per_group, 2),
                  std::to_string(syncs),
                  TablePrinter::Fmt(fsyncs_per_write, 3)});

    char point[256];
    snprintf(point, sizeof(point),
             "  {\"writers\": %d, \"ops\": %llu, \"ops_per_sec\": %.0f, "
             "\"p99_us\": %.2f, \"groups\": %llu, \"writes_per_group\": "
             "%.2f, \"fsyncs\": %llu, \"fsyncs_per_write\": %.4f}%s\n",
             threads, static_cast<unsigned long long>(ops), ops_per_sec,
             p99_us, static_cast<unsigned long long>(groups),
             writes_per_group, static_cast<unsigned long long>(syncs),
             fsyncs_per_write, pi + 1 < points.size() ? "," : "");
    json += point;
  }
  // An interrupted run stops after a point that still wrote its separator.
  if (json.size() >= 2 && json[json.size() - 2] == ',') {
    json.erase(json.size() - 2, 1);
  }
  json += "]\n";

  table.Print("write_scaling (sync=" +
              std::string(ctx->sync_writes ? "true" : "false") + ")");
  FILE* out = fopen("BENCH_write_scaling.json", "w");
  if (out != nullptr) {
    fputs(json.c_str(), out);
    fclose(out);
    printf("wrote BENCH_write_scaling.json\n");
  }
}

// A/B measurement of what backgrounding major compaction buys the write
// path. Two points, each on a fresh engine: background_compaction=false
// (the historical behaviour — the flush thread blocks until Algorithm-1
// drains, so a full memtable stalls every writer for the compaction's
// duration) and background_compaction=true (flush hands the check to the
// scheduler and returns). Memtable and level-0 budget are shrunk for the
// run so the write stream forces continuous flush->compaction cycles;
// the original options are restored (and the engine reopened with them)
// afterwards. Emits BENCH_compaction_stall.json.
void RunCompactionStall(Context* ctx) {
  const BenchEnvOptions saved = *ctx->env->mutable_options();
  BenchEnvOptions* opts = ctx->env->mutable_options();
  // Rotate the memtable every ~32 puts regardless of --value_size so the
  // flush/compaction pipeline is saturated and the inline mode's stall is
  // visible even on short runs.
  const size_t pressure = 32 * (ctx->value_size + 32);
  if (opts->memtable_bytes > pressure) opts->memtable_bytes = pressure;
  opts->l0_budget_large = opts->memtable_bytes * 8;

  struct Mode {
    const char* name;
    bool background;
  };
  const Mode modes[] = {{"inline", false}, {"background", true}};

  TablePrinter table({"compaction", "ops/sec", "p99(us)", "max(us)",
                      "stalls", "stall_ms", "compactions"});
  std::string json = "[\n";

  for (size_t mi = 0; mi < 2 && !InterruptRequested(); ++mi) {
    opts->background_compaction = modes[mi].background;
    KvEngine* engine = nullptr;
    Status s = ctx->env->OpenEngine(ctx->env->config(), &engine);
    if (!s.ok()) {
      fprintf(stderr, "compaction_stall reopen: %s\n", s.ToString().c_str());
      exit(1);
    }
    ctx->engine = engine;
    DB* db = ctx->env->pmblade_db();
    if (db == nullptr) {
      fprintf(stderr,
              "compaction_stall needs a pmblade engine "
              "(--engine=pmblade|pmblade-pm|pmblade-ssd)\n");
      exit(1);
    }

    KeySpec spec;
    spec.num_keys = ctx->num;
    KeyGenerator keys(spec);
    ValueGenerator values(ctx->value_size);
    Random rng(301);

    Histogram latency;
    const uint64_t start = ctx->clock->NowNanos();
    for (uint64_t i = 0; i < ctx->num && !InterruptRequested(); ++i) {
      uint64_t k = rng.Uniform(ctx->num);
      uint64_t t0 = ctx->clock->NowNanos();
      RUN_OP(db->Put(WriteOptions(), keys.KeyAt(k), values.For(k)));
      latency.Add(ctx->clock->NowNanos() - t0);
    }
    const uint64_t nanos = ctx->clock->NowNanos() - start;

    const double ops_per_sec = nanos > 0 ? ctx->num * 1e9 / nanos : 0;
    const double p99_us = latency.Percentile(99) / 1000.0;
    const double max_us = latency.max() / 1000.0;
    uint64_t stalls = 0, stall_nanos = 0, compactions = 0;
    db->GetProperty("pmblade.write-stalls", &stalls);
    db->GetProperty("pmblade.write-stall-nanos", &stall_nanos);
    db->GetProperty("pmblade.compactions-completed", &compactions);

    Report(modes[mi].name, ctx->num, nanos, latency);
    table.AddRow({modes[mi].name, TablePrinter::Fmt(ops_per_sec, 0),
                  TablePrinter::Fmt(p99_us, 1), TablePrinter::Fmt(max_us, 1),
                  std::to_string(stalls),
                  TablePrinter::Fmt(stall_nanos / 1e6, 1),
                  std::to_string(compactions)});

    char point[256];
    snprintf(point, sizeof(point),
             "  {\"mode\": \"%s\", \"ops\": %llu, \"ops_per_sec\": %.0f, "
             "\"p99_us\": %.2f, \"max_us\": %.2f, \"write_stalls\": %llu, "
             "\"stall_ms\": %.2f, \"compactions\": %llu}%s\n",
             modes[mi].name, static_cast<unsigned long long>(ctx->num),
             ops_per_sec, p99_us, max_us,
             static_cast<unsigned long long>(stalls), stall_nanos / 1e6,
             static_cast<unsigned long long>(compactions),
             mi + 1 < 2 ? "," : "");
    json += point;
  }
  if (json.size() >= 2 && json[json.size() - 2] == ',') {
    json.erase(json.size() - 2, 1);
  }
  json += "]\n";

  table.Print("compaction_stall (memtable=" +
              std::to_string(opts->memtable_bytes) + "B)");
  FILE* out = fopen("BENCH_compaction_stall.json", "w");
  if (out != nullptr) {
    fputs(json.c_str(), out);
    fclose(out);
    printf("wrote BENCH_compaction_stall.json\n");
  }

  // Put the engine back the way the rest of the benchmark list expects it.
  *ctx->env->mutable_options() = saved;
  KvEngine* engine = nullptr;
  Status s = ctx->env->OpenEngine(ctx->env->config(), &engine);
  if (!s.ok()) {
    fprintf(stderr, "compaction_stall restore: %s\n", s.ToString().c_str());
    exit(1);
  }
  ctx->engine = engine;
}

// Parallel-compaction sweep: the same randomized write stream is pushed
// through fresh engines with compaction_workers = max_subcompactions = 1,
// 2, 4, ... — the compactor's merge pool is widened to match (see
// BenchEnv::OpenEngine), so the sweep scales the whole pipeline width:
// scheduler workers, key-range slices per victim, and merge threads. The
// memtable is shrunk (compaction_stall's pressure trick) so level-0 piles
// up multi-table runs, and the level-0 budget is raised out of reach so no
// BACKGROUND major fires: every point reaches the timed section with the
// identical level-0 state, and the measured quantity is the wall time of
// two forced major compactions (sorted-run-only first, then sorted+level-1
// after a second fill — the stitched level-1 from round one feeds round
// two's split rule). The fill phase (4 producer threads) is reported too,
// for the tail-latency impact of the widened pipeline on the write path.
// Emits BENCH_compaction_parallel.json.
void RunCompactionParallel(Context* ctx) {
  const BenchEnvOptions saved = *ctx->env->mutable_options();
  BenchEnvOptions* opts = ctx->env->mutable_options();
  // Small fixed memtable so level-0 accumulates a multi-table sorted run
  // (internal compaction targets 4x the memtable), without flooding the PM
  // pool directory with hundreds of tiny tables.
  if (opts->memtable_bytes > (128 << 10)) opts->memtable_bytes = 128 << 10;
  // Out-of-reach budget: internal compactions still sort level-0, but the
  // cost model never schedules a background major, so the forced majors
  // below see the same input at every sweep point.
  opts->l0_budget_large = 4ull << 30;
  // Single partition: the scenario key-range subcompactions target. A
  // multi-partition major already merges its victims as concurrent
  // subtasks (one per partition) at workers=1, so the per-victim split is
  // what this sweep isolates: a hot partition's major serializes
  // S1->S2->S3 at queue depth 1 without slices, and runs --workers
  // key-range slices with them.
  opts->partition_boundaries.clear();

  std::vector<int> points;
  for (int w = 1; w < ctx->compaction_workers; w *= 2) points.push_back(w);
  if (ctx->compaction_workers >= 1) points.push_back(ctx->compaction_workers);

  TablePrinter table({"workers", "major(ms)", "fill_ops/s", "fill_p99(us)",
                      "slices", "speedup"});
  std::string json = "[\n";
  double base_major_ms = 0;

  // Best-of-3 per point, fresh engine per rep: the same convention as
  // shard_scaling — on a shared/oversubscribed host a single rep confounds
  // the pipeline with neighbour noise, and the best rep is the one least
  // perturbed by it.
  const int kReps = 3;

  for (size_t pi = 0; pi < points.size(); ++pi) {
    if (InterruptRequested()) break;  // partial JSON still written below
    const int workers = points[pi];
    opts->compaction_workers = workers;
    opts->max_subcompactions = workers;

    KeySpec spec;
    spec.num_keys = ctx->num;
    const int threads = ctx->writers > 4 ? ctx->writers : 4;
    const uint64_t per_thread = ctx->num / 2 / threads;

    Histogram fill_latency;
    uint64_t best_major_nanos = UINT64_MAX;
    uint64_t fill_nanos = 0;
    uint64_t slices = 0;

    for (int rep = 0; rep < kReps && !InterruptRequested(); ++rep) {
      KvEngine* engine = nullptr;
      Status s = ctx->env->OpenEngine(ctx->env->config(), &engine);
      if (!s.ok()) {
        fprintf(stderr, "compaction_parallel reopen: %s\n",
                s.ToString().c_str());
        exit(1);
      }
      ctx->engine = engine;
      DB* db = ctx->env->pmblade_db();
      if (db == nullptr) {
        fprintf(stderr,
                "compaction_parallel needs a pmblade engine "
                "(--engine=pmblade|pmblade-pm|pmblade-ssd)\n");
        exit(1);
      }

      // One fill (4 producers, identical streams at every point and rep)
      // followed by one forced full major; two rounds so the second major
      // also merges against the level-1 run the first one stitched.
      Histogram rep_fill_latency;
      std::mutex merge_mu;
      uint64_t rep_fill_nanos = 0;
      uint64_t rep_major_nanos = 0;
      uint64_t rep_slices = 0;
      for (int round = 0; round < 2 && !InterruptRequested(); ++round) {
        const uint64_t fill_start = ctx->clock->NowNanos();
        std::vector<std::thread> producers;
        for (int t = 0; t < threads; ++t) {
          producers.emplace_back([&, t, round] {
            KeyGenerator keys(spec);
            ValueGenerator values(ctx->value_size);
            Random rng(301 + 100 * round + t);
            Histogram local;
            for (uint64_t i = 0; i < per_thread && !InterruptRequested();
                 ++i) {
              uint64_t k = rng.Uniform(ctx->num);
              uint64_t t0 = ctx->clock->NowNanos();
              RUN_OP(db->Put(WriteOptions(), keys.KeyAt(k), values.For(k)));
              local.Add(ctx->clock->NowNanos() - t0);
            }
            std::lock_guard<std::mutex> lock(merge_mu);
            rep_fill_latency.Merge(local);
          });
        }
        for (auto& p : producers) p.join();
        // Prep (untimed): everything into sorted level-0 runs.
        RUN_OP(db->FlushMemTable());
        RUN_OP(db->CompactLevel0());
        rep_fill_nanos += ctx->clock->NowNanos() - fill_start;

        // The measured quantity: one full major compaction, split into
        // key-range slices per max_subcompactions.
        uint64_t slices_before = 0;
        db->GetProperty("pmblade.compaction-subcompactions", &slices_before);
        const uint64_t major_start = ctx->clock->NowNanos();
        RUN_OP(db->CompactToLevel1(false));
        rep_major_nanos += ctx->clock->NowNanos() - major_start;
        uint64_t slices_after = 0;
        db->GetProperty("pmblade.compaction-subcompactions", &slices_after);
        rep_slices += slices_after - slices_before;
      }
      if (rep_major_nanos < best_major_nanos) {
        best_major_nanos = rep_major_nanos;
        fill_nanos = rep_fill_nanos;
        fill_latency = rep_fill_latency;
        slices = rep_slices;
      }
    }
    const uint64_t major_nanos =
        best_major_nanos == UINT64_MAX ? 0 : best_major_nanos;

    const uint64_t fill_ops = per_thread * threads * 2;
    const double major_ms = major_nanos / 1e6;
    const double fill_ops_per_sec =
        fill_nanos > 0 ? fill_ops * 1e9 / fill_nanos : 0;
    const double fill_p99_us = fill_latency.Percentile(99) / 1000.0;
    if (pi == 0) base_major_ms = major_ms;
    const double speedup = major_ms > 0 ? base_major_ms / major_ms : 0;

    char row[96];
    snprintf(row, sizeof(row), "%d workers", workers);
    Report(row, fill_ops, fill_nanos, fill_latency);
    printf("%-12s : major compaction %.1f ms (%llu slices)\n", row,
           major_ms, static_cast<unsigned long long>(slices));
    table.AddRow({std::to_string(workers), TablePrinter::Fmt(major_ms, 1),
                  TablePrinter::Fmt(fill_ops_per_sec, 0),
                  TablePrinter::Fmt(fill_p99_us, 1), std::to_string(slices),
                  TablePrinter::Fmt(speedup, 2) + "x"});

    char point[320];
    snprintf(point, sizeof(point),
             "  {\"workers\": %d, \"major_wall_ms\": %.2f, "
             "\"subcompaction_slices\": %llu, \"fill_ops\": %llu, "
             "\"fill_ops_per_sec\": %.0f, \"fill_p99_us\": %.2f, "
             "\"speedup\": %.3f}%s\n",
             workers, major_ms, static_cast<unsigned long long>(slices),
             static_cast<unsigned long long>(fill_ops), fill_ops_per_sec,
             fill_p99_us, speedup, pi + 1 < points.size() ? "," : "");
    json += point;
  }
  if (json.size() >= 2 && json[json.size() - 2] == ',') {
    json.erase(json.size() - 2, 1);
  }
  json += "]\n";

  table.Print("compaction_parallel (memtable=" +
              std::to_string(opts->memtable_bytes) +
              "B, forced majors over identical level-0 state)");
  FILE* out = fopen("BENCH_compaction_parallel.json", "w");
  if (out != nullptr) {
    fputs(json.c_str(), out);
    fclose(out);
    printf("wrote BENCH_compaction_parallel.json\n");
  }

  // Restore the configuration the rest of the benchmark list expects.
  *ctx->env->mutable_options() = saved;
  KvEngine* engine = nullptr;
  Status s = ctx->env->OpenEngine(ctx->env->config(), &engine);
  if (!s.ok()) {
    fprintf(stderr, "compaction_parallel restore: %s\n",
            s.ToString().c_str());
    exit(1);
  }
  ctx->engine = engine;
}

// Design-space sweep over the pluggable SSD compaction policies: one fresh
// engine per policy, the same three phases against each — fill-heavy
// (sequential unique load + random overwrites), read-heavy zipfian gets,
// and a 50/50 zipfian mix. Write-amp is major-compaction bytes over user
// bytes, both read from engine properties so the CI gate can recompute it
// from BENCH_compaction_policy.json alone; space-amp is resident level-0 +
// SSD bytes over the logical dataset; read cost is the surviving run count
// (sorted runs a point lookup may probe) plus measured SSD reads per Get.
void RunPolicySweep(Context* ctx) {
  if (ctx->env->config() != EngineConfig::kPmBlade) {
    fprintf(stderr,
            "policy_sweep needs --engine=pmblade (the non-leveled policies "
            "ride the cost-model compaction scheduler)\n");
    exit(1);
  }
  const BenchEnvOptions saved = *ctx->env->mutable_options();
  BenchEnvOptions* opts = ctx->env->mutable_options();
  // Small memtable + tight level-0 budget so the cost model evicts to the
  // SSD many times over the run and the shapes actually diverge: leveled
  // rewrites its single run per eviction, tiered stacks runs until a
  // size-ratio block forms, lazy-leveling stacks above a single last level.
  if (opts->memtable_bytes > (128 << 10)) opts->memtable_bytes = 128 << 10;
  opts->l0_budget_large = 768 << 10;

  const char* kPolicies[] = {"leveled", "tiered", "lazy_leveling"};

  // Drain the background scheduler so per-policy byte counts and shapes are
  // settled before sampling properties.
  auto quiesce = [&](DB* db) {
    RUN_OP(db->FlushMemTable());
    for (int i = 0; i < 5000 && !InterruptRequested(); ++i) {
      uint64_t queued = 0, active = 0;
      db->GetProperty("pmblade.compaction-queue-depth", &queued);
      db->GetProperty("pmblade.compaction-active", &active);
      if (queued == 0 && active == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };

  TablePrinter table({"policy", "fill_ops/s", "write_amp", "space_amp",
                      "ssd_runs", "read_ops/s", "ssd_rd/get", "mixed_ops/s"});
  std::string json = "[\n";

  for (size_t pi = 0; pi < 3; ++pi) {
    if (InterruptRequested()) break;  // partial JSON still written below
    const char* policy = kPolicies[pi];
    opts->compaction_policy = policy;

    KvEngine* engine = nullptr;
    Status s = ctx->env->OpenEngine(ctx->env->config(), &engine);
    if (!s.ok()) {
      fprintf(stderr, "policy_sweep open(%s): %s\n", policy,
              s.ToString().c_str());
      exit(1);
    }
    ctx->engine = engine;
    DB* db = ctx->env->pmblade_db();
    if (db == nullptr) {
      fprintf(stderr, "policy_sweep needs a pmblade engine\n");
      exit(1);
    }

    KeySpec spec;
    spec.num_keys = ctx->num;
    KeyGenerator keys(spec);
    ValueGenerator values(ctx->value_size);
    const uint64_t key_bytes = keys.KeyAt(0).size();
    const uint64_t logical_bytes = ctx->num * (key_bytes + ctx->value_size);

    // Phase 1 — fill-heavy: every key once (so the logical dataset is
    // exactly --num keys), then --num/2 random overwrites so compactions
    // have garbage to reclaim.
    Histogram fill_latency;
    Random rng(401 + static_cast<uint32_t>(pi));
    const uint64_t overwrites = ctx->num / 2;
    const uint64_t fill_start = ctx->clock->NowNanos();
    for (uint64_t i = 0; i < ctx->num && !InterruptRequested(); ++i) {
      uint64_t t0 = ctx->clock->NowNanos();
      RUN_OP(db->Put(WriteOptions(), keys.KeyAt(i), values.For(i)));
      fill_latency.Add(ctx->clock->NowNanos() - t0);
    }
    for (uint64_t i = 0; i < overwrites && !InterruptRequested(); ++i) {
      uint64_t k = rng.Uniform(ctx->num);
      uint64_t t0 = ctx->clock->NowNanos();
      RUN_OP(db->Put(WriteOptions(), keys.KeyAt(k), values.For(k)));
      fill_latency.Add(ctx->clock->NowNanos() - t0);
    }
    const uint64_t fill_nanos = ctx->clock->NowNanos() - fill_start;
    const uint64_t fill_ops = ctx->num + overwrites;
    quiesce(db);

    // Post-fill shape + amplification, all from engine properties.
    uint64_t user_bytes = 0, comp_bytes = 0, l0_bytes = 0, ssd_bytes = 0;
    uint64_t ssd_runs = 0, max_level = 0;
    db->GetProperty("pmblade.ssd-user-bytes-written", &user_bytes);
    db->GetProperty("pmblade.ssd-bytes-written", &comp_bytes);
    db->GetProperty("pmblade.l0-bytes", &l0_bytes);
    db->GetProperty("pmblade.ssd-bytes", &ssd_bytes);
    db->GetProperty("pmblade.num-ssd-runs", &ssd_runs);
    db->GetProperty("pmblade.max-ssd-level", &max_level);
    const double write_amp =
        user_bytes > 0 ? static_cast<double>(comp_bytes) / user_bytes : 0;
    const double space_amp =
        logical_bytes > 0
            ? static_cast<double>(l0_bytes + ssd_bytes) / logical_bytes
            : 0;

    // Phase 2 — read-heavy: --num zipfian point reads against the shape the
    // fill left behind (no compaction between phases beyond the quiesce).
    KeySpec zspec;
    zspec.num_keys = ctx->num;
    zspec.zipf_theta = ctx->zipf;
    KeyGenerator zkeys(zspec);
    Histogram read_latency;
    const uint64_t ssd_reads_before = ctx->env->ssd_model()->reads();
    const uint64_t read_start = ctx->clock->NowNanos();
    uint64_t read_ops = 0;
    for (uint64_t i = 0; i < ctx->num && !InterruptRequested(); ++i) {
      uint64_t k = zkeys.NextIndex();
      uint64_t t0 = ctx->clock->NowNanos();
      std::string value;
      RUN_OP(db->Get(keys.KeyAt(k), &value));
      read_latency.Add(ctx->clock->NowNanos() - t0);
      ++read_ops;
    }
    const uint64_t read_nanos = ctx->clock->NowNanos() - read_start;
    const double ssd_reads_per_get =
        read_ops > 0 ? static_cast<double>(ctx->env->ssd_model()->reads() -
                                           ssd_reads_before) /
                           read_ops
                     : 0;

    // Phase 3 — 50/50 zipfian read/update mix.
    Histogram mixed_latency;
    const uint64_t mixed_target = ctx->num / 2;
    const uint64_t mixed_start = ctx->clock->NowNanos();
    uint64_t mixed_ops = 0;
    for (uint64_t i = 0; i < mixed_target && !InterruptRequested(); ++i) {
      uint64_t k = zkeys.NextIndex();
      uint64_t t0 = ctx->clock->NowNanos();
      if (rng.OneIn(2)) {
        std::string value;
        RUN_OP(db->Get(keys.KeyAt(k), &value));
      } else {
        RUN_OP(db->Put(WriteOptions(), keys.KeyAt(k), values.For(k)));
      }
      mixed_latency.Add(ctx->clock->NowNanos() - t0);
      ++mixed_ops;
    }
    const uint64_t mixed_nanos = ctx->clock->NowNanos() - mixed_start;

    const double fill_ops_s =
        fill_nanos > 0 ? fill_ops * 1e9 / fill_nanos : 0;
    const double read_ops_s =
        read_nanos > 0 ? read_ops * 1e9 / read_nanos : 0;
    const double mixed_ops_s =
        mixed_nanos > 0 ? mixed_ops * 1e9 / mixed_nanos : 0;

    char row[64];
    snprintf(row, sizeof(row), "%s/fill", policy);
    Report(row, fill_ops, fill_nanos, fill_latency);
    snprintf(row, sizeof(row), "%s/read", policy);
    Report(row, read_ops, read_nanos, read_latency);
    snprintf(row, sizeof(row), "%s/mixed", policy);
    Report(row, mixed_ops, mixed_nanos, mixed_latency);
    printf("%-12s : write_amp %.2f, space_amp %.2f, %llu runs (max level "
           "%llu), %.2f ssd reads/get\n",
           policy, write_amp, space_amp,
           static_cast<unsigned long long>(ssd_runs),
           static_cast<unsigned long long>(max_level), ssd_reads_per_get);
    table.AddRow({policy, TablePrinter::Fmt(fill_ops_s, 0),
                  TablePrinter::Fmt(write_amp, 2),
                  TablePrinter::Fmt(space_amp, 2), std::to_string(ssd_runs),
                  TablePrinter::Fmt(read_ops_s, 0),
                  TablePrinter::Fmt(ssd_reads_per_get, 2),
                  TablePrinter::Fmt(mixed_ops_s, 0)});

    char point[768];
    snprintf(point, sizeof(point),
             "  {\"policy\": \"%s\", "
             "\"fill\": {\"ops\": %llu, \"ops_per_sec\": %.0f, "
             "\"p99_us\": %.2f, \"write_amp\": %.4f, \"space_amp\": %.4f, "
             "\"user_bytes\": %llu, \"compaction_bytes\": %llu, "
             "\"ssd_runs\": %llu, \"max_ssd_level\": %llu}, "
             "\"read\": {\"ops\": %llu, \"ops_per_sec\": %.0f, "
             "\"p99_us\": %.2f, \"ssd_reads_per_get\": %.3f}, "
             "\"mixed\": {\"ops\": %llu, \"ops_per_sec\": %.0f, "
             "\"p99_us\": %.2f}}%s\n",
             policy, static_cast<unsigned long long>(fill_ops), fill_ops_s,
             fill_latency.Percentile(99) / 1000.0, write_amp, space_amp,
             static_cast<unsigned long long>(user_bytes),
             static_cast<unsigned long long>(comp_bytes),
             static_cast<unsigned long long>(ssd_runs),
             static_cast<unsigned long long>(max_level),
             static_cast<unsigned long long>(read_ops), read_ops_s,
             read_latency.Percentile(99) / 1000.0, ssd_reads_per_get,
             static_cast<unsigned long long>(mixed_ops), mixed_ops_s,
             mixed_latency.Percentile(99) / 1000.0, pi + 1 < 3 ? "," : "");
    json += point;
  }
  if (json.size() >= 2 && json[json.size() - 2] == ',') {
    json.erase(json.size() - 2, 1);
  }
  json += "]\n";

  table.Print("policy_sweep (memtable=" +
              std::to_string(opts->memtable_bytes) + "B, l0_budget=" +
              std::to_string(opts->l0_budget_large) + "B, size_ratio=" +
              std::to_string(opts->compaction_size_ratio) + ", zipf=" +
              TablePrinter::Fmt(ctx->zipf, 2) + ")");
  FILE* out = fopen("BENCH_compaction_policy.json", "w");
  if (out != nullptr) {
    fputs(json.c_str(), out);
    fclose(out);
    printf("wrote BENCH_compaction_policy.json\n");
  }

  // Restore the configuration the rest of the benchmark list expects.
  *ctx->env->mutable_options() = saved;
  KvEngine* engine = nullptr;
  Status s = ctx->env->OpenEngine(ctx->env->config(), &engine);
  if (!s.ok()) {
    fprintf(stderr, "policy_sweep restore: %s\n", s.ToString().c_str());
    exit(1);
  }
  ctx->engine = engine;
}

// Zipfian point-read sweep over SSD-resident keys, one fresh engine per
// point: the no-filter/no-cache baseline, blooms + block cache, and blooms
// + cache + memory arbiter. Loads EVEN key indices only and reads zipfian
// over twice the index space, so half the probes are absent keys
// INTERLEAVED with the present ones (they pass the tables' min/max range
// check and only a bloom can reject them without an SSD read). Everything
// is forced down to level-1 first, so every data-block read is an SSD read.
// The arbiter point then flips to a write-heavy phase and reports how the
// budget moved. Emits BENCH_read_path.json.
void RunReadSkew(Context* ctx) {
  const BenchEnvOptions saved = *ctx->env->mutable_options();
  BenchEnvOptions* opts = ctx->env->mutable_options();

  struct ModeCfg {
    const char* name;
    int bloom_bits;
    size_t cache_bytes;
    uint64_t budget_bytes;
  };
  const ModeCfg modes[] = {
      {"no_filter", 0, 0, 0},
      {"filter_cache", 10, saved.block_cache_bytes, 0},
      {"filter_cache_arbiter", 10, saved.block_cache_bytes, 8ull << 20},
  };
  const size_t num_modes = sizeof(modes) / sizeof(modes[0]);

  // Key space: present keys are the EVEN indices in [0, 2*num); reads draw
  // zipfian from the full range.
  KeySpec space;
  space.num_keys = ctx->num * 2;
  space.zipf_theta = ctx->zipf;

  TablePrinter table({"mode", "ops/sec", "ssd_reads/get", "bloom_neg/get",
                      "cache_hit%", "rebalances"});
  std::string json = "[\n";

  for (size_t mi = 0; mi < num_modes && !InterruptRequested(); ++mi) {
    const ModeCfg& mode = modes[mi];
    opts->bloom_bits_per_key = mode.bloom_bits;
    opts->block_cache_bytes = mode.cache_bytes;
    opts->memory_budget_bytes = mode.budget_bytes;
    opts->arbiter_interval_ms = 25;  // visible shifts within bench runtime
    opts->partition_boundaries = KeyGenerator(space).PartitionBoundaries(8);
    KvEngine* engine = nullptr;
    Status s = ctx->env->OpenEngine(ctx->env->config(), &engine);
    if (!s.ok()) {
      fprintf(stderr, "read_skew reopen: %s\n", s.ToString().c_str());
      exit(1);
    }
    ctx->engine = engine;
    DB* db = ctx->env->pmblade_db();
    if (db == nullptr) {
      fprintf(stderr,
              "read_skew needs a pmblade engine "
              "(--engine=pmblade|pmblade-pm|pmblade-ssd)\n");
      exit(1);
    }

    // Load the even indices, then force everything to SSD level-1.
    KeyGenerator keys(space);
    ValueGenerator values(ctx->value_size);
    for (uint64_t i = 0; i < ctx->num && !InterruptRequested(); ++i) {
      RUN_OP(db->Put(WriteOptions(), keys.KeyAt(2 * i), values.For(2 * i)));
    }
    RUN_OP(db->FlushMemTable());
    RUN_OP(db->CompactToLevel1(false));

    // Cold zipfian read phase over the doubled key space.
    KeyGenerator read_keys(space);
    const uint64_t gets = ctx->num;
    const uint64_t ssd_reads_before = ctx->env->ssd_model()->reads();
    uint64_t negatives_before = 0;
    db->GetProperty("pmblade.bloom-negatives", &negatives_before);
    Histogram latency;
    const uint64_t start = ctx->clock->NowNanos();
    for (uint64_t i = 0; i < gets && !InterruptRequested(); ++i) {
      uint64_t k = read_keys.NextIndex();
      uint64_t t0 = ctx->clock->NowNanos();
      std::string value;
      RUN_OP(db->Get(ReadOptions(), read_keys.KeyAt(k), &value));
      latency.Add(ctx->clock->NowNanos() - t0);
    }
    const uint64_t nanos = ctx->clock->NowNanos() - start;

    const double ops_per_sec = nanos > 0 ? gets * 1e9 / nanos : 0;
    const double ssd_reads_per_get =
        gets > 0 ? static_cast<double>(ctx->env->ssd_model()->reads() -
                                       ssd_reads_before) /
                       gets
                 : 0;
    uint64_t negatives = 0;
    db->GetProperty("pmblade.bloom-negatives", &negatives);
    const double negatives_per_get =
        gets > 0
            ? static_cast<double>(negatives - negatives_before) / gets
            : 0;
    double cache_hit_ratio = 0;
    if (mode.cache_bytes > 0) {
      obs::MetricsSnapshot snap =
          db->metrics_registry()->Snapshot(ctx->clock->NowNanos());
      const obs::MetricSample* h = snap.Find("pmblade.blockcache.hits");
      const obs::MetricSample* m = snap.Find("pmblade.blockcache.misses");
      const double hits = h != nullptr ? h->value : 0;
      const double misses = m != nullptr ? m->value : 0;
      if (hits + misses > 0) cache_hit_ratio = hits / (hits + misses);
    }

    // Arbiter point only: flip to a write-heavy phase and record the
    // budget shift (read phase should have pulled budget toward the cache;
    // write backpressure pulls it back toward the memtable).
    uint64_t rebalances = 0;
    uint64_t read_mem = 0, read_cache = 0, write_mem = 0, write_cache = 0;
    if (mode.budget_bytes > 0) {
      db->GetProperty("pmblade.memtable-limit", &read_mem);
      db->GetProperty("pmblade.blockcache-capacity", &read_cache);
      Random rng(301);
      for (uint64_t i = 0; i < ctx->num && !InterruptRequested(); ++i) {
        uint64_t k = rng.Uniform(ctx->num);
        RUN_OP(db->Put(WriteOptions(), keys.KeyAt(2 * k), values.For(k)));
      }
      db->GetProperty("pmblade.memtable-limit", &write_mem);
      db->GetProperty("pmblade.blockcache-capacity", &write_cache);
      db->GetProperty("pmblade.mem-rebalances", &rebalances);
    }

    Report(mode.name, gets, nanos, latency);
    table.AddRow({mode.name, TablePrinter::Fmt(ops_per_sec, 0),
                  TablePrinter::Fmt(ssd_reads_per_get, 3),
                  TablePrinter::Fmt(negatives_per_get, 3),
                  TablePrinter::Fmt(cache_hit_ratio * 100, 1),
                  std::to_string(rebalances)});

    char point[512];
    snprintf(point, sizeof(point),
             "  {\"mode\": \"%s\", \"gets\": %llu, \"ops_per_sec\": %.0f, "
             "\"p99_us\": %.2f, \"ssd_reads_per_get\": %.4f, "
             "\"bloom_negatives_per_get\": %.4f, \"cache_hit_ratio\": %.4f",
             mode.name, static_cast<unsigned long long>(gets), ops_per_sec,
             latency.Percentile(99) / 1000.0, ssd_reads_per_get,
             negatives_per_get, cache_hit_ratio);
    json += point;
    if (mode.budget_bytes > 0) {
      snprintf(point, sizeof(point),
               ", \"arbiter\": {\"rebalances\": %llu, \"read_phase\": "
               "{\"memtable_target\": %llu, \"block_cache_target\": %llu}, "
               "\"write_phase\": {\"memtable_target\": %llu, "
               "\"block_cache_target\": %llu}}",
               static_cast<unsigned long long>(rebalances),
               static_cast<unsigned long long>(read_mem),
               static_cast<unsigned long long>(read_cache),
               static_cast<unsigned long long>(write_mem),
               static_cast<unsigned long long>(write_cache));
      json += point;
    }
    json += mi + 1 < num_modes ? "},\n" : "}\n";
  }
  if (json.size() >= 2 && json[json.size() - 2] == ',') {
    json.erase(json.size() - 2, 1);
  }
  json += "]\n";

  table.Print("read_skew (zipf=" + TablePrinter::Fmt(ctx->zipf, 2) +
              ", 50% absent keys)");
  FILE* out = fopen("BENCH_read_path.json", "w");
  if (out != nullptr) {
    fputs(json.c_str(), out);
    fclose(out);
    printf("wrote BENCH_read_path.json\n");
  }

  // Restore the configuration the rest of the benchmark list expects.
  *ctx->env->mutable_options() = saved;
  KvEngine* engine = nullptr;
  Status s = ctx->env->OpenEngine(ctx->env->config(), &engine);
  if (!s.ok()) {
    fprintf(stderr, "read_skew restore: %s\n", s.ToString().c_str());
    exit(1);
  }
  ctx->engine = engine;
}

// Shard-count sweep: 1, 2, 4, ... up to max(--shards, 8) shards, one fresh
// engine per point, all driven by the SAME fixed pool of client threads
// running a 50/50 zipfian read/write mix. Holding the thread count constant
// isolates the engine side: at one shard every writer funnels through a
// single group-commit leader, memtable and flush thread; at N shards the
// identical offered load spreads over N independent write paths. Reports
// each point's speedup over the 1-shard baseline and emits
// BENCH_shard_scaling.json.
void RunShardScaling(Context* ctx) {
  const BenchEnvOptions saved = *ctx->env->mutable_options();
  BenchEnvOptions* opts = ctx->env->mutable_options();

  const uint32_t max_shards = ctx->shards > 1 ? ctx->shards : 8;
  std::vector<uint32_t> points;
  for (uint32_t n = 1; n < max_shards; n *= 2) points.push_back(n);
  points.push_back(max_shards);
  const int threads =
      ctx->writers > static_cast<int>(max_shards) ? ctx->writers
                                                  : static_cast<int>(max_shards);

  TablePrinter table(
      {"shards", "threads", "ops/sec", "p99(us)", "stalls", "speedup"});
  std::string json = "[\n";
  double base_ops_per_sec = 0;

  // Best-of-3 per point, fresh engine per rep: the same convention as the
  // Fig. 9 CPU-utilization cells — on a shared/oversubscribed host a single
  // rep confounds engine behaviour with neighbour noise, and the best rep is
  // the one least perturbed by it.
  const int kReps = 3;

  for (size_t pi = 0; pi < points.size(); ++pi) {
    if (InterruptRequested()) break;  // partial JSON still written below
    const uint32_t shards = points[pi];
    opts->num_shards = shards;

    Histogram best_latency;
    double best_ops_per_sec = -1;
    uint64_t best_nanos = 0, best_stalls = 0, best_slowdowns = 0;
    uint64_t best_ops = 0;

    for (int rep = 0; rep < kReps && !InterruptRequested(); ++rep) {
    KvEngine* engine = nullptr;
    Status s = ctx->env->OpenEngine(ctx->env->config(), &engine);
    if (!s.ok()) {
      fprintf(stderr, "shard_scaling reopen: %s\n", s.ToString().c_str());
      exit(1);
    }
    ctx->engine = engine;
    DB* db = ctx->env->pmblade_db();
    if (db == nullptr) {
      fprintf(stderr,
              "shard_scaling needs a pmblade engine "
              "(--engine=pmblade|pmblade-pm|pmblade-ssd)\n");
      exit(1);
    }

    KeySpec spec;
    spec.num_keys = ctx->num;
    spec.zipf_theta = ctx->zipf;
    const uint64_t per_thread = ctx->num / threads;

    // Untimed warmup (20% of the measured ops): populate the memtables and
    // prime the flush/compaction pipeline before the clock starts. The
    // 1-shard point runs first and otherwise pays the whole cold-start tax
    // (empty allocator, cold caches), skewing every speedup reported
    // against it.
    const uint64_t warm_ops = per_thread / 5;
    std::vector<std::thread> warmers;
    for (int t = 0; t < threads; ++t) {
      warmers.emplace_back([&, t] {
        KeySpec tspec = spec;
        tspec.seed = spec.seed + 1000 + t;  // distinct from the timed streams
        KeyGenerator keys(tspec);
        ValueGenerator values(ctx->value_size, 7 + t);
        Random rng(601 + t);
        for (uint64_t i = 0; i < warm_ops && !InterruptRequested(); ++i) {
          uint64_t k = keys.NextIndex();
          if (rng.OneIn(2)) {
            std::string value;
            RUN_OP(db->Get(ReadOptions(), keys.KeyAt(k), &value));
          } else {
            RUN_OP(db->Put(WriteOptions(), keys.KeyAt(k), values.For(k)));
          }
        }
      });
    }
    for (auto& w : warmers) w.join();

    Histogram latency;
    std::mutex merge_mu;
    const uint64_t start = ctx->clock->NowNanos();
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        KeySpec tspec = spec;
        tspec.seed = spec.seed + t;  // decorrelate the threads' key streams
        KeyGenerator keys(tspec);
        ValueGenerator values(ctx->value_size, 7 + t);
        Random rng(301 + t);
        Histogram local;
        for (uint64_t i = 0; i < per_thread && !InterruptRequested(); ++i) {
          uint64_t k = keys.NextIndex();
          uint64_t t0 = ctx->clock->NowNanos();
          if (rng.OneIn(2)) {
            std::string value;
            RUN_OP(db->Get(ReadOptions(), keys.KeyAt(k), &value));
          } else {
            RUN_OP(db->Put(WriteOptions(), keys.KeyAt(k), values.For(k)));
          }
          local.Add(ctx->clock->NowNanos() - t0);
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        latency.Merge(local);
      });
    }
    for (auto& w : workers) w.join();
    const uint64_t nanos = ctx->clock->NowNanos() - start;

    const uint64_t rep_ops = per_thread * threads;
    const double rep_ops_per_sec = nanos > 0 ? rep_ops * 1e9 / nanos : 0;
    if (rep_ops_per_sec > best_ops_per_sec) {
      best_ops_per_sec = rep_ops_per_sec;
      best_latency = latency;
      best_nanos = nanos;
      best_ops = rep_ops;
      best_stalls = 0;
      best_slowdowns = 0;
      db->GetProperty("pmblade.write-stalls", &best_stalls);
      db->GetProperty("pmblade.write-slowdowns", &best_slowdowns);
    }
    }  // reps

    const uint64_t ops = best_ops;
    const uint64_t nanos = best_nanos;
    const Histogram& latency = best_latency;
    const double ops_per_sec = best_ops_per_sec > 0 ? best_ops_per_sec : 0;
    if (pi == 0) base_ops_per_sec = ops_per_sec;
    const double speedup =
        base_ops_per_sec > 0 ? ops_per_sec / base_ops_per_sec : 0;
    const double p99_us = latency.Percentile(99) / 1000.0;
    const uint64_t stalls = best_stalls, slowdowns = best_slowdowns;

    char row[96];
    snprintf(row, sizeof(row), "%u shards", shards);
    Report(row, ops, nanos, latency);
    table.AddRow({std::to_string(shards), std::to_string(threads),
                  TablePrinter::Fmt(ops_per_sec, 0),
                  TablePrinter::Fmt(p99_us, 1), std::to_string(stalls),
                  TablePrinter::Fmt(speedup, 2) + "x"});

    char point[320];
    snprintf(point, sizeof(point),
             "  {\"shards\": %u, \"threads\": %d, \"ops\": %llu, "
             "\"ops_per_sec\": %.0f, \"p99_us\": %.2f, \"write_stalls\": "
             "%llu, \"write_slowdowns\": %llu, \"speedup\": %.3f}%s\n",
             shards, threads, static_cast<unsigned long long>(ops),
             ops_per_sec, p99_us, static_cast<unsigned long long>(stalls),
             static_cast<unsigned long long>(slowdowns), speedup,
             pi + 1 < points.size() ? "," : "");
    json += point;
  }
  if (json.size() >= 2 && json[json.size() - 2] == ',') {
    json.erase(json.size() - 2, 1);
  }
  json += "]";

  table.Print("shard_scaling (mixed 50/50, zipf=" +
              TablePrinter::Fmt(ctx->zipf, 2) + ")");

  // MSET fan-out A/B at the acceptance configuration (4 shards, or the
  // sweep maximum when smaller): per-batch latency of an all-shard durable
  // MSET under three dispatch modes.
  //   serial-pre2pc    the pre-parallel-dispatch behaviour, emulated by
  //                    splitting the batch per shard and writing the
  //                    sub-batches sequentially (each is single-participant,
  //                    so no 2PC records — exactly the old serial wave)
  //   legacy-parallel  one cross-shard Write with
  //                    atomic_cross_shard_batches=false: parallel per-shard
  //                    dispatch, no atomicity
  //   2pc-atomic       the default: parallel prepare+fsync wave, then the
  //                    commit wave
  // All three run sync=true so durability is equal — 2PC fsyncs its
  // prepares unconditionally, and comparing that against unsynced serial
  // writes would be apples to oranges.
  const uint32_t fan_shards = max_shards < 4 ? max_shards : 4;
  const int fan_threads = 4;
  const uint64_t fan_per_thread = 500;

  auto key_for_shard = [fan_shards](uint32_t shard, uint64_t tag) {
    for (uint64_t probe = 0;; ++probe) {
      std::string key =
          "m" + std::to_string(tag) + "p" + std::to_string(probe);
      if (ShardedDB::ShardOfKey(key, fan_shards) == shard) return key;
    }
  };

  struct FanPoint {
    const char* name;
    bool atomic_engine;
    bool serial_client;
    double p50_us = 0, p95_us = 0, msets_per_sec = 0;
    double fsyncs_per_mset = 0;
  };
  std::vector<FanPoint> fan_points = {{"serial-pre2pc", true, true},
                                      {"legacy-parallel", false, false},
                                      {"2pc-atomic", true, false}};

  TablePrinter fan_table(
      {"mode", "p50(us)", "p95(us)", "msets/sec", "fsyncs/mset"});
  for (auto& fp : fan_points) {
    if (InterruptRequested()) break;
    opts->num_shards = fan_shards;
    opts->atomic_cross_shard_batches = fp.atomic_engine;

    // Best-of-3 by p50, fresh engine per rep — the same neighbour-noise
    // convention as the shard sweep above (this host's single runs swing
    // ~2x under load).
    fp.p50_us = -1;
    for (int rep = 0; rep < kReps && !InterruptRequested(); ++rep) {
      KvEngine* engine = nullptr;
      Status s = ctx->env->OpenEngine(ctx->env->config(), &engine);
      if (!s.ok()) {
        fprintf(stderr, "shard_scaling mset reopen: %s\n",
                s.ToString().c_str());
        exit(1);
      }
      ctx->engine = engine;
      DB* db = ctx->env->pmblade_db();

      Histogram latency;
      std::mutex merge_mu;
      uint64_t syncs_before = 0;
      db->GetProperty("pmblade.wal-syncs", &syncs_before);
      const uint64_t start = ctx->clock->NowNanos();
      std::vector<std::thread> workers;
      for (int t = 0; t < fan_threads; ++t) {
        workers.emplace_back([&, t] {
          ValueGenerator values(ctx->value_size, 7 + t);
          Histogram local;
          WriteOptions wo;
          wo.sync = true;
          for (uint64_t i = 0;
               i < fan_per_thread && !InterruptRequested(); ++i) {
            const uint64_t tag = (static_cast<uint64_t>(t) << 32) | i;
            // Build the batch(es) outside the timed section: only the
            // dispatch strategy under test should differ between modes.
            std::vector<WriteBatch> subs(fp.serial_client ? fan_shards : 1);
            for (uint32_t shard = 0; shard < fan_shards; ++shard) {
              subs[fp.serial_client ? shard : 0].Put(
                  key_for_shard(shard, tag), values.For(tag ^ shard));
            }
            uint64_t t0 = ctx->clock->NowNanos();
            for (auto& sub : subs) {
              RUN_OP(db->Write(wo, &sub));
            }
            local.Add(ctx->clock->NowNanos() - t0);
          }
          std::lock_guard<std::mutex> lock(merge_mu);
          latency.Merge(local);
        });
      }
      for (auto& w : workers) w.join();
      const uint64_t nanos = ctx->clock->NowNanos() - start;

      const double p50_us = latency.Percentile(50) / 1000.0;
      if (fp.p50_us < 0 || p50_us < fp.p50_us) {
        fp.p50_us = p50_us;
        fp.p95_us = latency.Percentile(95) / 1000.0;
        const uint64_t msets = fan_per_thread * fan_threads;
        fp.msets_per_sec = nanos > 0 ? msets * 1e9 / nanos : 0;
        uint64_t syncs_after = 0;
        db->GetProperty("pmblade.wal-syncs", &syncs_after);
        fp.fsyncs_per_mset =
            msets > 0 ? double(syncs_after - syncs_before) / msets : 0;
      }
    }
    fan_table.AddRow({fp.name, TablePrinter::Fmt(fp.p50_us, 1),
                      TablePrinter::Fmt(fp.p95_us, 1),
                      TablePrinter::Fmt(fp.msets_per_sec, 0),
                      TablePrinter::Fmt(fp.fsyncs_per_mset, 2)});
  }
  fan_table.Print("mset_fanout (" + std::to_string(fan_shards) +
                  "-shard durable MSET, " + std::to_string(fan_threads) +
                  " threads)");

  std::string fan_json = "[\n";
  for (size_t i = 0; i < fan_points.size(); ++i) {
    const FanPoint& fp = fan_points[i];
    char point[256];
    snprintf(point, sizeof(point),
             "  {\"mode\": \"%s\", \"shards\": %u, \"threads\": %d, "
             "\"sync\": true, \"p50_us\": %.2f, \"p95_us\": %.2f, "
             "\"msets_per_sec\": %.0f, \"fsyncs_per_mset\": %.2f}%s\n",
             fp.name, fan_shards, fan_threads, fp.p50_us, fp.p95_us,
             fp.msets_per_sec, fp.fsyncs_per_mset,
             i + 1 < fan_points.size() ? "," : "");
    fan_json += point;
  }
  fan_json += "]";

  FILE* out = fopen("BENCH_shard_scaling.json", "w");
  if (out != nullptr) {
    fprintf(out, "{\n\"scaling\": %s,\n\"mset_fanout\": %s\n}\n",
            json.c_str(), fan_json.c_str());
    fclose(out);
    printf("wrote BENCH_shard_scaling.json\n");
  }

  // Restore the configuration the rest of the benchmark list expects.
  *ctx->env->mutable_options() = saved;
  KvEngine* engine = nullptr;
  Status s = ctx->env->OpenEngine(ctx->env->config(), &engine);
  if (!s.ok()) {
    fprintf(stderr, "shard_scaling restore: %s\n", s.ToString().c_str());
    exit(1);
  }
  ctx->engine = engine;
}

void RunBenchmark(Context* ctx, const std::string& name) {
  KeySpec spec;
  spec.num_keys = ctx->num;
  spec.zipf_theta = ctx->zipf;
  KeyGenerator keys(spec);
  ValueGenerator values(ctx->value_size);
  Random rng(301);
  Histogram latency;
  uint64_t ops = 0;
  const uint64_t start = ctx->clock->NowNanos();

  auto timed = [&](auto&& fn) {
    uint64_t t0 = ctx->clock->NowNanos();
    fn();
    latency.Add(ctx->clock->NowNanos() - t0);
    ++ops;
  };

  // Interrupted loops fall through to Report(), so a SIGINT/SIGTERM run
  // still prints the partial numbers it measured.
  auto keep_going = [&](uint64_t i, uint64_t n) {
    return i < n && !InterruptRequested();
  };

  if (name == "fillseq") {
    for (uint64_t i = 0; keep_going(i, ctx->num); ++i) {
      timed([&] { RUN_OP(ctx->engine->Put(keys.KeyAt(i), values.For(i))); });
    }
  } else if (name == "fillrandom" || name == "overwrite") {
    for (uint64_t i = 0; keep_going(i, ctx->num); ++i) {
      uint64_t k = rng.Uniform(ctx->num);
      timed([&] { RUN_OP(ctx->engine->Put(keys.KeyAt(k), values.For(k))); });
    }
  } else if (name == "readrandom") {
    for (uint64_t i = 0; keep_going(i, ctx->num); ++i) {
      uint64_t k = keys.NextIndex();
      timed([&] {
        std::string value;
        RUN_OP(ctx->engine->Get(keys.KeyAt(k), &value));
      });
    }
  } else if (name == "readmissing") {
    for (uint64_t i = 0; keep_going(i, ctx->num); ++i) {
      timed([&] {
        std::string value;
        RUN_OP(ctx->engine->Get("absent" + std::to_string(i), &value));
      });
    }
  } else if (name == "readseq") {
    std::unique_ptr<Iterator> it(ctx->engine->NewScanIterator());
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      ++ops;  // per-entry accounting; one latency sample per 1k entries
      if (ops % 1000 == 0) latency.Add(1);
    }
    RUN_OP(it->status());
  } else if (name == "seekrandom") {
    for (uint64_t i = 0; keep_going(i, ctx->num / 10 + 1); ++i) {
      uint64_t k = keys.NextIndex();
      timed([&] {
        std::unique_ptr<Iterator> it(ctx->engine->NewScanIterator());
        it->Seek(keys.KeyAt(k));
        for (int j = 0; j < ctx->scan_length && it->Valid(); ++j) {
          it->Next();
        }
        RUN_OP(it->status());
      });
    }
  } else if (name == "deleterandom") {
    for (uint64_t i = 0; keep_going(i, ctx->num / 10 + 1); ++i) {
      uint64_t k = rng.Uniform(ctx->num);
      timed([&] { RUN_OP(ctx->engine->Delete(keys.KeyAt(k))); });
    }
  } else if (name == "indexfill") {
    TableSchema schema;
    schema.table_id = 1;
    schema.num_columns = 10;
    schema.indexed_columns = {1, 4, 7};
    TableCodec codec(schema);
    for (uint64_t i = 0; keep_going(i, ctx->num); ++i) {
      timed([&] {
        std::vector<std::string> columns(schema.num_columns);
        for (uint32_t c = 0; c < schema.num_columns; ++c) {
          columns[c] = "c" + std::to_string(c) + "-" +
                       std::to_string(rng.Uniform(100));
        }
        RUN_OP(codec.InsertRow(ctx->engine, i, columns));
      });
    }
  } else if (name == "indexquery") {
    TableSchema schema;
    schema.table_id = 1;
    schema.num_columns = 10;
    schema.indexed_columns = {1, 4, 7};
    TableCodec codec(schema);
    for (uint64_t i = 0; keep_going(i, ctx->num / 10 + 1); ++i) {
      timed([&] {
        uint32_t column = schema.indexed_columns[rng.Uniform(3)];
        std::string value = "c" + std::to_string(column) + "-" +
                            std::to_string(rng.Uniform(100));
        std::vector<uint64_t> pks;
        RUN_OP(codec.IndexQuery(ctx->engine, column, value,
                                ctx->scan_length, &pks));
      });
    }
  } else if (name == "mixed") {
    for (uint64_t i = 0; keep_going(i, ctx->num); ++i) {
      uint64_t k = keys.NextIndex();
      if (rng.OneIn(2)) {
        timed([&] {
          std::string value;
          RUN_OP(ctx->engine->Get(keys.KeyAt(k), &value));
        });
      } else {
        timed(
            [&] { RUN_OP(ctx->engine->Put(keys.KeyAt(k), values.For(k))); });
      }
    }
  } else if (name == "write_scaling") {
    RunWriteScaling(ctx);
    return;
  } else if (name == "compaction_stall") {
    RunCompactionStall(ctx);
    return;
  } else if (name == "compaction_parallel") {
    RunCompactionParallel(ctx);
    return;
  } else if (name == "read_skew") {
    RunReadSkew(ctx);
    return;
  } else if (name == "shard_scaling") {
    RunShardScaling(ctx);
    return;
  } else if (name == "policy_sweep") {
    RunPolicySweep(ctx);
    return;
  } else if (name == "flush") {
    timed([&] { RUN_OP(ctx->engine->Flush()); });
  } else if (name == "compact") {
    timed([&] {
      if (ctx->env->pmblade_db() != nullptr) {
        RUN_OP(ctx->env->pmblade_db()->CompactToLevel1(true));
      } else if (ctx->env->leveled_db() != nullptr) {
        RUN_OP(ctx->env->leveled_db()->CompactAll());
      } else if (ctx->env->matrixkv_db() != nullptr) {
        RUN_OP(ctx->env->matrixkv_db()->CompactAll());
      }
    });
  } else if (name == "stats") {
    const DbStatistics* stats = ctx->env->statistics();
    printf("%s\n", stats != nullptr ? stats->ToString().c_str() : "(none)");
    printf("ssd written: %s, pm written: %s\n",
           TablePrinter::FmtBytes(ctx->env->SsdBytesWritten()).c_str(),
           TablePrinter::FmtBytes(ctx->env->PmBytesWritten()).c_str());
    return;
  } else {
    fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    exit(1);
  }

  Report(name.c_str(), ops, ctx->clock->NowNanos() - start, latency);
}

}  // namespace

int main(int argc, char** argv) {
  InstallInterruptHandler();
  Flags flags(argc, argv);

  // Strict flag parsing: a typo like --polcy= silently benchmarking the
  // default policy is worse than an error.
  std::vector<std::string> unknown = flags.Unknown(
      {"engine", "benchmarks", "num", "value_size", "zipf", "scan_length",
       "writers", "compaction_workers", "shards", "sync_writes", "db",
       "inject_latency", "memtable_bytes", "partitions", "policy",
       "size_ratio", "ssd_levels", "stats_dump"});
  if (!unknown.empty()) {
    for (const auto& f : unknown) {
      fprintf(stderr, "unknown flag --%s\n", f.c_str());
    }
    return 1;
  }

  std::string engine_name = flags.Str("engine", "pmblade");
  EngineConfig config;
  if (engine_name == "pmblade") config = EngineConfig::kPmBlade;
  else if (engine_name == "pmblade-pm") config = EngineConfig::kPmBladePm;
  else if (engine_name == "pmblade-ssd") config = EngineConfig::kPmBladeSsd;
  else if (engine_name == "rocks") config = EngineConfig::kRocksStyle;
  else if (engine_name == "matrixkv") config = EngineConfig::kMatrixKvSmall;
  else {
    fprintf(stderr, "unknown engine '%s'\n", engine_name.c_str());
    return 1;
  }

  Context ctx;
  ctx.num = flags.Int("num", 10000);
  ctx.value_size = flags.Int("value_size", 256);
  ctx.zipf = flags.Double("zipf", 0.99);
  ctx.scan_length = static_cast<int>(flags.Int("scan_length", 50));
  ctx.writers = static_cast<int>(flags.Int("writers", 1));
  if (ctx.writers < 1) ctx.writers = 1;
  ctx.compaction_workers = static_cast<int>(flags.Int("compaction_workers", 4));
  if (ctx.compaction_workers < 1) ctx.compaction_workers = 1;
  ctx.shards = static_cast<uint32_t>(flags.Int("shards", 1));
  if (ctx.shards < 1) ctx.shards = 1;
  ctx.sync_writes = flags.Bool("sync_writes", false);

  BenchEnvOptions eopts;
  eopts.root = flags.Str("db", "/tmp/pmblade_benchmark_kv");
  eopts.inject_ssd_latency = flags.Bool("inject_latency", true);
  eopts.inject_pm_latency = flags.Bool("inject_latency", true);
  eopts.memtable_bytes = flags.Int("memtable_bytes", 1 << 20);
  eopts.num_shards = ctx.shards;
  eopts.compaction_policy = flags.Str("policy", "leveled");
  if (!IsValidCompactionPolicy(eopts.compaction_policy)) {
    fprintf(stderr,
            "unknown --policy '%s' (want leveled|tiered|lazy_leveling)\n",
            eopts.compaction_policy.c_str());
    return 1;
  }
  eopts.compaction_size_ratio =
      static_cast<uint32_t>(flags.Int("size_ratio", 4));
  eopts.max_ssd_levels = static_cast<uint32_t>(flags.Int("ssd_levels", 3));
  KeySpec bspec;
  bspec.num_keys = ctx.num;
  eopts.partition_boundaries = KeyGenerator(bspec).PartitionBoundaries(
      static_cast<int>(flags.Int("partitions", 8)));

  BenchEnv env(eopts);
  Status s = env.OpenEngine(config, &ctx.engine);
  if (!s.ok()) {
    fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  ctx.env = &env;

  printf("benchmark_kv: engine=%s num=%llu value_size=%zu zipf=%.2f "
         "shards=%u\n",
         EngineConfigName(config), (unsigned long long)ctx.num,
         ctx.value_size, ctx.zipf, ctx.shards);

  std::string benchmarks =
      flags.Str("benchmarks", "fillseq,readrandom,seekrandom,mixed,stats");
  std::stringstream ss(benchmarks);
  std::string name;
  while (std::getline(ss, name, ',') && !InterruptRequested()) {
    if (!name.empty()) RunBenchmark(&ctx, name);
  }
  if (InterruptRequested()) {
    printf("benchmark_kv: interrupted by signal %d, partial results above\n",
           InterruptSignal());
  }

  // --stats_dump: after all benchmarks, dump the observability snapshot of
  // the pmblade engine ("json", "prometheus", or "both").
  std::string stats_dump = flags.Str("stats_dump", "");
  if (!stats_dump.empty()) {
    DB* db = env.pmblade_db();
    if (db == nullptr) {
      fprintf(stderr, "--stats_dump: engine '%s' has no stats exporter\n",
              engine_name.c_str());
      return 1;
    }
    std::string dump;
    if (stats_dump == "json" || stats_dump == "both") {
      if (db->GetProperty("pmblade.stats.json", &dump)) {
        printf("%s\n", dump.c_str());
      }
    }
    if (stats_dump == "prometheus" || stats_dump == "both") {
      if (db->GetProperty("pmblade.stats.prometheus", &dump)) {
        printf("%s", dump.c_str());
      }
    }
    if (stats_dump != "json" && stats_dump != "prometheus" &&
        stats_dump != "both") {
      fprintf(stderr, "--stats_dump expects json|prometheus|both\n");
      return 1;
    }
  }
  return InterruptRequested() ? 128 + InterruptSignal() : 0;
}
