// benchmark_kv — the paper's micro-benchmark tool (Section VI-A): a
// db_bench-style driver over the KvEngine interface, extended with record
// tables and secondary-index tables.
//
// Usage:
//   benchmark_kv [--engine=pmblade|pmblade-pm|pmblade-ssd|rocks|matrixkv]
//                [--benchmarks=fillseq,readrandom,...]
//                [--num=N] [--value_size=B] [--zipf=THETA]
//                [--scan_length=N] [--inject_latency=true|false]
//                [--stats_dump=json|prometheus|both]
//
// --stats_dump prints the pmblade engine's full observability snapshot
// (metrics registry + recent trace events) after the benchmark list runs.
//
// Benchmarks:
//   fillseq      sequential inserts            fillrandom  random inserts
//   overwrite    random overwrites             readrandom  random point reads
//   readmissing  reads of absent keys          readseq     full forward scan
//   seekrandom   random seeks + short scans    deleterandom random deletes
//   indexfill    insert rows into a record table (+3 index tables)
//   indexquery   secondary-index queries (scan + verify + point reads)
//   mixed        50/50 zipfian read/update
//   flush        force a memtable flush        compact     force L0->L1
//   stats        print engine statistics

#include <cstdio>
#include <memory>
#include <sstream>

#include "benchutil/reporter.h"
#include "benchutil/runner.h"
#include "benchutil/table_codec.h"
#include "benchutil/workload.h"
#include "util/clock.h"
#include "util/histogram.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

namespace {

struct Context {
  KvEngine* engine = nullptr;
  BenchEnv* env = nullptr;
  uint64_t num = 10000;
  size_t value_size = 256;
  double zipf = 0.99;
  int scan_length = 50;
  Clock* clock = SystemClock();
};

void Report(const char* name, uint64_t ops, uint64_t nanos,
            const Histogram& latency) {
  double micros_per_op = ops > 0 ? nanos / 1000.0 / ops : 0;
  double ops_per_sec = nanos > 0 ? ops * 1e9 / nanos : 0;
  printf("%-12s : %9.3f us/op; %10.0f ops/sec; p99 %9.3f us (%llu ops)\n",
         name, micros_per_op, ops_per_sec, latency.Percentile(99) / 1000.0,
         static_cast<unsigned long long>(ops));
  fflush(stdout);
}

#define RUN_OP(expr)                                             \
  do {                                                           \
    Status _s = (expr);                                          \
    if (!_s.ok() && !_s.IsNotFound()) {                          \
      fprintf(stderr, "op failed: %s\n", _s.ToString().c_str()); \
      exit(1);                                                   \
    }                                                            \
  } while (0)

void RunBenchmark(Context* ctx, const std::string& name) {
  KeySpec spec;
  spec.num_keys = ctx->num;
  spec.zipf_theta = ctx->zipf;
  KeyGenerator keys(spec);
  ValueGenerator values(ctx->value_size);
  Random rng(301);
  Histogram latency;
  uint64_t ops = 0;
  const uint64_t start = ctx->clock->NowNanos();

  auto timed = [&](auto&& fn) {
    uint64_t t0 = ctx->clock->NowNanos();
    fn();
    latency.Add(ctx->clock->NowNanos() - t0);
    ++ops;
  };

  if (name == "fillseq") {
    for (uint64_t i = 0; i < ctx->num; ++i) {
      timed([&] { RUN_OP(ctx->engine->Put(keys.KeyAt(i), values.For(i))); });
    }
  } else if (name == "fillrandom" || name == "overwrite") {
    for (uint64_t i = 0; i < ctx->num; ++i) {
      uint64_t k = rng.Uniform(ctx->num);
      timed([&] { RUN_OP(ctx->engine->Put(keys.KeyAt(k), values.For(k))); });
    }
  } else if (name == "readrandom") {
    for (uint64_t i = 0; i < ctx->num; ++i) {
      uint64_t k = keys.NextIndex();
      timed([&] {
        std::string value;
        RUN_OP(ctx->engine->Get(keys.KeyAt(k), &value));
      });
    }
  } else if (name == "readmissing") {
    for (uint64_t i = 0; i < ctx->num; ++i) {
      timed([&] {
        std::string value;
        RUN_OP(ctx->engine->Get("absent" + std::to_string(i), &value));
      });
    }
  } else if (name == "readseq") {
    std::unique_ptr<Iterator> it(ctx->engine->NewScanIterator());
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      ++ops;  // per-entry accounting; one latency sample per 1k entries
      if (ops % 1000 == 0) latency.Add(1);
    }
    RUN_OP(it->status());
  } else if (name == "seekrandom") {
    for (uint64_t i = 0; i < ctx->num / 10 + 1; ++i) {
      uint64_t k = keys.NextIndex();
      timed([&] {
        std::unique_ptr<Iterator> it(ctx->engine->NewScanIterator());
        it->Seek(keys.KeyAt(k));
        for (int j = 0; j < ctx->scan_length && it->Valid(); ++j) {
          it->Next();
        }
        RUN_OP(it->status());
      });
    }
  } else if (name == "deleterandom") {
    for (uint64_t i = 0; i < ctx->num / 10 + 1; ++i) {
      uint64_t k = rng.Uniform(ctx->num);
      timed([&] { RUN_OP(ctx->engine->Delete(keys.KeyAt(k))); });
    }
  } else if (name == "indexfill") {
    TableSchema schema;
    schema.table_id = 1;
    schema.num_columns = 10;
    schema.indexed_columns = {1, 4, 7};
    TableCodec codec(schema);
    for (uint64_t i = 0; i < ctx->num; ++i) {
      timed([&] {
        std::vector<std::string> columns(schema.num_columns);
        for (uint32_t c = 0; c < schema.num_columns; ++c) {
          columns[c] = "c" + std::to_string(c) + "-" +
                       std::to_string(rng.Uniform(100));
        }
        RUN_OP(codec.InsertRow(ctx->engine, i, columns));
      });
    }
  } else if (name == "indexquery") {
    TableSchema schema;
    schema.table_id = 1;
    schema.num_columns = 10;
    schema.indexed_columns = {1, 4, 7};
    TableCodec codec(schema);
    for (uint64_t i = 0; i < ctx->num / 10 + 1; ++i) {
      timed([&] {
        uint32_t column = schema.indexed_columns[rng.Uniform(3)];
        std::string value = "c" + std::to_string(column) + "-" +
                            std::to_string(rng.Uniform(100));
        std::vector<uint64_t> pks;
        RUN_OP(codec.IndexQuery(ctx->engine, column, value,
                                ctx->scan_length, &pks));
      });
    }
  } else if (name == "mixed") {
    for (uint64_t i = 0; i < ctx->num; ++i) {
      uint64_t k = keys.NextIndex();
      if (rng.OneIn(2)) {
        timed([&] {
          std::string value;
          RUN_OP(ctx->engine->Get(keys.KeyAt(k), &value));
        });
      } else {
        timed(
            [&] { RUN_OP(ctx->engine->Put(keys.KeyAt(k), values.For(k))); });
      }
    }
  } else if (name == "flush") {
    timed([&] { RUN_OP(ctx->engine->Flush()); });
  } else if (name == "compact") {
    timed([&] {
      if (ctx->env->pmblade_db() != nullptr) {
        RUN_OP(ctx->env->pmblade_db()->CompactToLevel1(true));
      } else if (ctx->env->leveled_db() != nullptr) {
        RUN_OP(ctx->env->leveled_db()->CompactAll());
      } else if (ctx->env->matrixkv_db() != nullptr) {
        RUN_OP(ctx->env->matrixkv_db()->CompactAll());
      }
    });
  } else if (name == "stats") {
    const DbStatistics* stats = ctx->env->statistics();
    printf("%s\n", stats != nullptr ? stats->ToString().c_str() : "(none)");
    printf("ssd written: %s, pm written: %s\n",
           TablePrinter::FmtBytes(ctx->env->SsdBytesWritten()).c_str(),
           TablePrinter::FmtBytes(ctx->env->PmBytesWritten()).c_str());
    return;
  } else {
    fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    exit(1);
  }

  Report(name.c_str(), ops, ctx->clock->NowNanos() - start, latency);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  std::string engine_name = flags.Str("engine", "pmblade");
  EngineConfig config;
  if (engine_name == "pmblade") config = EngineConfig::kPmBlade;
  else if (engine_name == "pmblade-pm") config = EngineConfig::kPmBladePm;
  else if (engine_name == "pmblade-ssd") config = EngineConfig::kPmBladeSsd;
  else if (engine_name == "rocks") config = EngineConfig::kRocksStyle;
  else if (engine_name == "matrixkv") config = EngineConfig::kMatrixKvSmall;
  else {
    fprintf(stderr, "unknown engine '%s'\n", engine_name.c_str());
    return 1;
  }

  Context ctx;
  ctx.num = flags.Int("num", 10000);
  ctx.value_size = flags.Int("value_size", 256);
  ctx.zipf = flags.Double("zipf", 0.99);
  ctx.scan_length = static_cast<int>(flags.Int("scan_length", 50));

  BenchEnvOptions eopts;
  eopts.root = flags.Str("db", "/tmp/pmblade_benchmark_kv");
  eopts.inject_ssd_latency = flags.Bool("inject_latency", true);
  eopts.inject_pm_latency = flags.Bool("inject_latency", true);
  eopts.memtable_bytes = flags.Int("memtable_bytes", 1 << 20);
  KeySpec bspec;
  bspec.num_keys = ctx.num;
  eopts.partition_boundaries = KeyGenerator(bspec).PartitionBoundaries(
      static_cast<int>(flags.Int("partitions", 8)));

  BenchEnv env(eopts);
  Status s = env.OpenEngine(config, &ctx.engine);
  if (!s.ok()) {
    fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  ctx.env = &env;

  printf("benchmark_kv: engine=%s num=%llu value_size=%zu zipf=%.2f\n",
         EngineConfigName(config), (unsigned long long)ctx.num,
         ctx.value_size, ctx.zipf);

  std::string benchmarks =
      flags.Str("benchmarks", "fillseq,readrandom,seekrandom,mixed,stats");
  std::stringstream ss(benchmarks);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (!name.empty()) RunBenchmark(&ctx, name);
  }

  // --stats_dump: after all benchmarks, dump the observability snapshot of
  // the pmblade engine ("json", "prometheus", or "both").
  std::string stats_dump = flags.Str("stats_dump", "");
  if (!stats_dump.empty()) {
    DB* db = env.pmblade_db();
    if (db == nullptr) {
      fprintf(stderr, "--stats_dump: engine '%s' has no stats exporter\n",
              engine_name.c_str());
      return 1;
    }
    std::string dump;
    if (stats_dump == "json" || stats_dump == "both") {
      if (db->GetProperty("pmblade.stats.json", &dump)) {
        printf("%s\n", dump.c_str());
      }
    }
    if (stats_dump == "prometheus" || stats_dump == "both") {
      if (db->GetProperty("pmblade.stats.prometheus", &dump)) {
        printf("%s", dump.c_str());
      }
    }
    if (stats_dump != "json" && stats_dump != "prometheus" &&
        stats_dump != "both") {
      fprintf(stderr, "--stats_dump expects json|prometheus|both\n");
      return 1;
    }
  }
  return 0;
}
