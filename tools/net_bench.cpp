// net_bench: multi-connection pipelined RESP load generator for
// pmblade_server.
//
// Sweeps a connections x pipeline-depth grid: every connection runs on its
// own thread, sends `depth` commands per window (SET/GET mix over a shared
// keyspace), then parses `depth` replies with the real RESP parser before
// sending the next window. Reports per-point throughput and p99 WINDOW
// round-trip latency (one window = depth pipelined commands), plus the
// "-BUSY" shed count so admission control is visible.
//
// With --shed a final phase hammers 100% SETs (same grid point as
// --shed_connections/--shed_pipeline) and reports the shed rate — run it
// against a server started with a tiny memtable and --shed_on_slowdown to
// see admission control engage.
//
// Emits --out (default BENCH_server_throughput.json):
//   [ {"phase":"grid","connections":C,"pipeline":P,"ops":N,
//      "ops_per_sec":T,"p99_window_us":L,"busy":B,"errors":E}, ...,
//     {"phase":"shed", ...} ]
//
// Exit: 0 = ran clean (shed replies are expected, not errors),
// 1 = connect/protocol failure, 2 = bad usage, 128+sig = interrupted
// (partial JSON written).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/flags.h"
#include "benchutil/interrupt.h"
#include "net/resp.h"
#include "util/clock.h"
#include "util/histogram.h"

namespace {

using pmblade::Histogram;
using pmblade::net::RespParser;
using pmblade::net::RespValue;
namespace bench = pmblade::bench;

// Shard count of the server under test, from --shards. net_bench never
// opens the engine itself, so this is pure recorded metadata for the JSON
// (0 = not specified); it lets BENCH comparisons tell a 1-shard server run
// from a 4-shard one.
int g_shards = 0;

struct PointResult {
  std::string phase;
  int connections = 0;
  int pipeline = 0;
  uint64_t ops = 0;
  double ops_per_sec = 0;
  double p99_window_us = 0;
  uint64_t busy = 0;    // "-BUSY" admission sheds
  uint64_t errors = 0;  // any other error reply or protocol failure
};

int Connect(const std::string& host, int port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& buf) {
  size_t sent = 0;
  while (sent < buf.size()) {
    ssize_t n = write(fd, buf.data() + sent, buf.size() - sent);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

struct WorkerStats {
  Histogram window_nanos;
  uint64_t ops = 0;
  uint64_t busy = 0;
  uint64_t errors = 0;
  bool failed = false;  // connect/protocol failure
};

/// One connection's share of a grid point: `ops` commands in windows of
/// `depth`. set_pct is the SET percentage (0-100).
void RunConnection(const std::string& host, int port, uint64_t ops,
                   int depth, int set_pct, uint64_t keys, size_t value_size,
                   uint64_t seed, WorkerStats* stats) {
  pmblade::Clock* clock = pmblade::SystemClock();
  int fd = Connect(host, port);
  if (fd < 0) {
    stats->failed = true;
    return;
  }
  const std::string value(value_size, 'v');
  RespParser parser;
  std::string request;
  char key[32];
  uint64_t state = seed * 2654435761u + 1;
  char buf[64 << 10];

  uint64_t done = 0;
  while (done < ops && !bench::InterruptRequested()) {
    const int window =
        static_cast<int>(std::min<uint64_t>(depth, ops - done));
    request.clear();
    for (int i = 0; i < window; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      snprintf(key, sizeof(key), "key:%llu",
               static_cast<unsigned long long>((state >> 33) % keys));
      const bool is_set =
          static_cast<int>((state >> 16) % 100) < set_pct;
      if (is_set) {
        pmblade::net::EncodeBulkStringArray({"SET", key, value}, &request);
      } else {
        pmblade::net::EncodeBulkStringArray({"GET", key}, &request);
      }
    }
    const uint64_t t0 = clock->NowNanos();
    if (!SendAll(fd, request)) {
      stats->failed = true;
      break;
    }
    int replies = 0;
    RespValue reply;
    while (replies < window) {
      RespParser::Result r = parser.Next(&reply);
      if (r == RespParser::Result::kValue) {
        ++replies;
        if (reply.type == RespValue::Type::kError) {
          if (reply.str.compare(0, 4, "BUSY") == 0) {
            ++stats->busy;
          } else {
            ++stats->errors;
          }
        }
        continue;
      }
      if (r == RespParser::Result::kError) {
        stats->failed = true;
        break;
      }
      ssize_t n = read(fd, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        stats->failed = true;
        break;
      }
      parser.Feed(buf, static_cast<size_t>(n));
    }
    if (stats->failed) break;
    stats->window_nanos.Add(clock->NowNanos() - t0);
    done += static_cast<uint64_t>(window);
  }
  stats->ops = done;
  close(fd);
}

bool RunPoint(const std::string& phase, const std::string& host, int port,
              int connections, int depth, uint64_t total_ops, int set_pct,
              uint64_t keys, size_t value_size, PointResult* out) {
  pmblade::Clock* clock = pmblade::SystemClock();
  std::vector<WorkerStats> stats(connections);
  std::vector<std::thread> threads;
  const uint64_t per_conn = total_ops / connections;

  const uint64_t start = clock->NowNanos();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back(RunConnection, host, port, per_conn, depth,
                         set_pct, keys, value_size,
                         static_cast<uint64_t>(c + 1), &stats[c]);
  }
  for (auto& t : threads) t.join();
  const uint64_t nanos = clock->NowNanos() - start;

  Histogram window;
  out->phase = phase;
  out->connections = connections;
  out->pipeline = depth;
  bool ok = true;
  for (const WorkerStats& s : stats) {
    out->ops += s.ops;
    out->busy += s.busy;
    out->errors += s.errors;
    window.Merge(s.window_nanos);
    if (s.failed) ok = false;
  }
  out->ops_per_sec = nanos > 0 ? out->ops * 1e9 / nanos : 0;
  out->p99_window_us = window.Percentile(99) / 1000.0;

  printf("%-5s conns=%-3d depth=%-3d : %10.0f ops/sec; p99 window %8.1f us;"
         " busy %llu; errors %llu%s\n",
         phase.c_str(), connections, depth, out->ops_per_sec,
         out->p99_window_us, static_cast<unsigned long long>(out->busy),
         static_cast<unsigned long long>(out->errors),
         ok ? "" : "  [FAILED]");
  fflush(stdout);
  return ok;
}

void WriteJson(const std::string& path,
               const std::vector<PointResult>& results) {
  if (path.empty()) return;
  FILE* out = fopen(path.c_str(), "w");
  if (out == nullptr) return;
  fprintf(out, "[\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const PointResult& r = results[i];
    fprintf(out,
            "  {\"phase\": \"%s\", \"shards\": %d, \"connections\": %d, "
            "\"pipeline\": %d, "
            "\"ops\": %llu, \"ops_per_sec\": %.0f, \"p99_window_us\": %.2f, "
            "\"busy\": %llu, \"errors\": %llu}%s\n",
            r.phase.c_str(), g_shards, r.connections, r.pipeline,
            static_cast<unsigned long long>(r.ops), r.ops_per_sec,
            r.p99_window_us, static_cast<unsigned long long>(r.busy),
            static_cast<unsigned long long>(r.errors),
            i + 1 < results.size() ? "," : "");
  }
  fprintf(out, "]\n");
  fclose(out);
  printf("wrote %s\n", path.c_str());
}

void Usage() {
  fprintf(stderr,
          "usage: net_bench --port=N [options]\n"
          "  --host=ADDR           server address (default 127.0.0.1)\n"
          "  --connections=LIST    e.g. 1,8,32 (default 1,4,16)\n"
          "  --pipeline=LIST       e.g. 1,16 (default 1,16)\n"
          "  --ops=N               commands per grid point (default "
          "50000)\n"
          "  --keys=N              keyspace size (default 10000)\n"
          "  --value_size=B        SET value bytes (default 64)\n"
          "  --set_pct=N           SET share of the mix, 0-100 (default "
          "50)\n"
          "  --shed                add a 100%%-SET shed-rate phase\n"
          "  --shed_connections=N  shed phase connections (default 4)\n"
          "  --shed_pipeline=N     shed phase depth (default 16)\n"
          "  --shed_ops=N          shed phase commands (default --ops)\n"
          "  --shards=N            shard count of the server under test,\n"
          "                        recorded in the JSON (metadata only)\n"
          "  --out=PATH            JSON output (default "
          "BENCH_server_throughput.json)\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::vector<std::string> unknown = flags.Unknown(
      {"host", "port", "connections", "pipeline", "ops", "keys",
       "value_size", "set_pct", "shed", "shed_connections", "shed_pipeline",
       "shed_ops", "shards", "out"});
  if (!unknown.empty() || !flags.positional().empty() ||
      !flags.Has("port")) {
    for (const auto& f : unknown) {
      fprintf(stderr, "unknown flag --%s\n", f.c_str());
    }
    if (!flags.Has("port")) fprintf(stderr, "--port=N is required\n");
    Usage();
    return 2;
  }

  const std::string host = flags.Str("host", "127.0.0.1");
  const int port = static_cast<int>(flags.Int("port", 6399));
  const std::vector<int64_t> connections =
      flags.IntList("connections", {1, 4, 16});
  const std::vector<int64_t> pipeline = flags.IntList("pipeline", {1, 16});
  const uint64_t ops = static_cast<uint64_t>(flags.Int("ops", 50000));
  const uint64_t keys = static_cast<uint64_t>(flags.Int("keys", 10000));
  const size_t value_size =
      static_cast<size_t>(flags.Int("value_size", 64));
  const int set_pct = static_cast<int>(flags.Int("set_pct", 50));
  g_shards = static_cast<int>(flags.Int("shards", 0));

  bench::InstallInterruptHandler();

  printf("net_bench: %s:%d ops/point=%llu keys=%llu value=%zuB set=%d%%\n",
         host.c_str(), port, static_cast<unsigned long long>(ops),
         static_cast<unsigned long long>(keys), value_size, set_pct);

  bool ok = true;
  std::vector<PointResult> results;
  for (int64_t conns : connections) {
    for (int64_t depth : pipeline) {
      if (conns < 1 || depth < 1) continue;
      if (bench::InterruptRequested()) break;
      PointResult r;
      ok &= RunPoint("grid", host, port, static_cast<int>(conns),
                     static_cast<int>(depth), ops, set_pct, keys,
                     value_size, &r);
      results.push_back(r);
    }
  }

  if (flags.Bool("shed", false) && !bench::InterruptRequested()) {
    PointResult r;
    ok &= RunPoint(
        "shed", host, port,
        static_cast<int>(flags.Int("shed_connections", 4)),
        static_cast<int>(flags.Int("shed_pipeline", 16)),
        static_cast<uint64_t>(flags.Int("shed_ops",
                                        static_cast<int64_t>(ops))),
        /*set_pct=*/100, keys, value_size, &r);
    results.push_back(r);
    const double shed_rate =
        r.ops > 0 ? static_cast<double>(r.busy) / r.ops : 0;
    printf("shed phase: %.1f%% of commands shed with -BUSY\n",
           shed_rate * 100.0);
  }

  WriteJson(flags.Str("out", "BENCH_server_throughput.json"), results);
  if (bench::InterruptRequested()) {
    printf("net_bench: interrupted by signal %d, partial JSON written\n",
           bench::InterruptSignal());
    return 128 + bench::InterruptSignal();
  }
  return ok ? 0 : 1;
}
