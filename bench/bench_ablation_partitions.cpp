// Ablation: how much does the partitioned LSM (Section III) matter?
// Sweeps the partition count under a skewed 50/50 workload and reports
// read/scan latency and the PM hit ratio after cost-based major compaction.
//
// Expectation: more partitions -> finer-grained Eq. 3 retention (hot data
// separates from cold better) and cheaper scans/seeks (a partition's worth
// of tables per probe), with diminishing returns.
//
// Flags: --ops (default 10000), --value_size (default 256).

#include <memory>

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/runner.h"
#include "benchutil/workload.h"
#include "util/clock.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t ops = flags.Int("ops", 10000);
  const size_t value_size = flags.Int("value_size", 256);

  TablePrinter out({"partitions", "avg get", "avg scan(20)", "pm hit%",
                    "major compactions"});

  for (int partitions : {1, 2, 4, 8, 16}) {
    BenchEnvOptions eopts;
    eopts.root = "/tmp/pmblade_bench_parts";
    eopts.memtable_bytes = 64 << 10;
    eopts.l0_budget_large = 512 << 10;  // tight: forces Eq. 3 decisions
    KeySpec bspec;
    bspec.num_keys = 10000;
    eopts.partition_boundaries =
        KeyGenerator(bspec).PartitionBoundaries(partitions);

    BenchEnv env(eopts);
    KvEngine* engine = nullptr;
    Status s = env.OpenEngine(EngineConfig::kPmBlade, &engine);
    if (!s.ok()) {
      fprintf(stderr, "open: %s\n", s.ToString().c_str());
      return 1;
    }

    KeySpec spec;
    spec.num_keys = 10000;
    spec.zipf_theta = 0.9;
    KeyGenerator keys(spec);
    ValueGenerator values(value_size);
    Random rng(23);
    Clock* clock = SystemClock();

    uint64_t get_nanos = 0, gets = 0, scan_nanos = 0, scans = 0;
    for (uint64_t op = 0; op < ops; ++op) {
      uint64_t index = keys.NextIndex();
      double r = rng.NextDouble();
      if (r < 0.5) {
        s = engine->Put(keys.KeyAt(index), values.For(index));
      } else if (r < 0.9) {
        std::string value;
        uint64_t t0 = clock->NowNanos();
        Status rs = engine->Get(keys.KeyAt(index), &value);
        get_nanos += clock->NowNanos() - t0;
        ++gets;
        if (!rs.ok() && !rs.IsNotFound()) s = rs;
      } else {
        uint64_t t0 = clock->NowNanos();
        std::unique_ptr<Iterator> it(engine->NewScanIterator());
        it->Seek(keys.KeyAt(index));
        for (int j = 0; j < 20 && it->Valid(); ++j) it->Next();
        s = it->status();
        scan_nanos += clock->NowNanos() - t0;
        ++scans;
      }
      if (!s.ok()) {
        fprintf(stderr, "op: %s\n", s.ToString().c_str());
        return 1;
      }
    }

    const DbStatistics* stats = env.statistics();
    out.AddRow({std::to_string(partitions),
                TablePrinter::FmtNanos(gets ? double(get_nanos) / gets : 0),
                TablePrinter::FmtNanos(scans ? double(scan_nanos) / scans
                                             : 0),
                TablePrinter::Fmt(env.PmHitRatio() * 100, 1),
                std::to_string(stats->major_compactions())});
  }

  out.Print("Ablation: partition count (partitioned LSM, Section III)");
  printf("\nexpected shape: hit ratio and latencies improve with more "
         "partitions (finer Eq. 3\nretention), flattening out past ~8\n");
  return 0;
}
