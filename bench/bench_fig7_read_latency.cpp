// Fig. 7 — read performance and internal compaction.
//
// (a) Level-0 read latency as data accumulates, under a 50/50 read/write
//     mix, for three configurations:
//       PMBlade     — internal compaction keeps level-0 sorted: flat latency
//       PMBlade-PM  — PM level-0 but no internal compaction: latency grows
//                     with the number of unsorted tables (read amp.)
//       PMBlade-SSD — conventional SSD level-0: slowest, grows too
//
// (b) Read latency while a compaction runs: average and p99.9 for PMBlade
//     (internal compaction), PMBlade-SSD (traditional compaction), and the
//     noComp variants. Paper: internal compaction raises avg ~1.7x and
//     p99.9 ~5.3x over noComp, but stays a small fraction of the SSD
//     configuration's disturbance.
//
// Flags: --rounds (default 10), --ops_per_round (default 1500),
//        --value_size (default 256).

#include <atomic>
#include <functional>
#include <thread>

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/runner.h"
#include "benchutil/workload.h"
#include "core/db_impl.h"
#include "util/clock.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

namespace {

struct SeriesPoint {
  uint64_t data_written = 0;
  double avg_read_nanos = 0;
};

std::vector<SeriesPoint> RunMixedSeries(EngineConfig config, int rounds,
                                        int ops_per_round,
                                        size_t value_size) {
  BenchEnvOptions eopts;
  eopts.root = "/tmp/pmblade_bench_fig7";
  eopts.memtable_bytes = 128 << 10;
  // Keep everything in level-0 for the read-amplification comparison.
  eopts.l0_budget_large = 1ull << 40;
  BenchEnv env(eopts);
  KvEngine* engine = nullptr;
  Status s = env.OpenEngine(config, &engine);
  if (!s.ok()) {
    fprintf(stderr, "open: %s\n", s.ToString().c_str());
    exit(1);
  }

  KeySpec spec;
  spec.num_keys = 20000;
  spec.zipf_theta = 0.8;
  spec.seed = 4;
  KeyGenerator keys(spec);
  ValueGenerator values(value_size);
  Random rng(8);
  Clock* clock = SystemClock();

  std::vector<SeriesPoint> series;
  uint64_t written = 0;
  for (int round = 0; round < rounds; ++round) {
    uint64_t read_nanos = 0;
    uint64_t reads = 0;
    for (int op = 0; op < ops_per_round; ++op) {
      uint64_t index = keys.NextIndex();
      if (rng.OneIn(2)) {
        std::string value = values.For(index);
        s = engine->Put(keys.KeyAt(index), value);
        written += value.size();
      } else {
        std::string value;
        uint64_t start = clock->NowNanos();
        Status rs = engine->Get(keys.KeyAt(index), &value);
        read_nanos += clock->NowNanos() - start;
        ++reads;
        if (!rs.ok() && !rs.IsNotFound()) s = rs;
      }
      if (!s.ok()) {
        fprintf(stderr, "op: %s\n", s.ToString().c_str());
        exit(1);
      }
    }
    series.push_back(SeriesPoint{
        written, reads > 0 ? static_cast<double>(read_nanos) / reads : 0});
  }
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int rounds = static_cast<int>(flags.Int("rounds", 10));
  const int ops = static_cast<int>(flags.Int("ops_per_round", 1500));
  const size_t value_size = flags.Int("value_size", 256);

  // ---- (a) latency vs accumulated data ----
  auto pmblade = RunMixedSeries(EngineConfig::kPmBlade, rounds, ops,
                                value_size);
  auto pm_only = RunMixedSeries(EngineConfig::kPmBladePm, rounds, ops,
                                value_size);
  auto ssd = RunMixedSeries(EngineConfig::kPmBladeSsd, rounds, ops,
                            value_size);

  TablePrinter a({"data written", "PMBlade", "PMBlade-PM", "PMBlade-SSD"});
  for (int i = 0; i < rounds; ++i) {
    a.AddRow({TablePrinter::FmtBytes(pmblade[i].data_written),
              TablePrinter::FmtNanos(pmblade[i].avg_read_nanos),
              TablePrinter::FmtNanos(pm_only[i].avg_read_nanos),
              TablePrinter::FmtNanos(ssd[i].avg_read_nanos)});
  }
  a.Print("Fig. 7(a): level-0 read latency vs data volume (50/50 mix)");
  printf("\npaper shape: PMBlade stays flat; PMBlade-PM grows (unsorted "
         "tables pile up);\nPMBlade-SSD highest\n");

  // ---- (b) reads racing a compaction ----
  struct CaseResult {
    const char* name;
    double avg = 0, p999 = 0;
  };
  std::vector<CaseResult> cases;

  auto run_case = [&](const char* name, EngineConfig config,
                      bool trigger_compaction) {
    BenchEnvOptions eopts;
    eopts.root = "/tmp/pmblade_bench_fig7b";
    eopts.memtable_bytes = 128 << 10;
    eopts.l0_budget_large = 1ull << 40;
    BenchEnv env(eopts);
    KvEngine* engine = nullptr;
    Status s = env.OpenEngine(config, &engine);
    if (!s.ok()) {
      fprintf(stderr, "open: %s\n", s.ToString().c_str());
      exit(1);
    }
    // Load ~1k entries and leave them unsorted in level-0.
    KeySpec spec;
    spec.num_keys = 4000;
    spec.seed = 5;
    KeyGenerator keys(spec);
    ValueGenerator values(value_size);
    for (uint64_t i = 0; i < spec.num_keys; ++i) {
      (void)engine->Put(keys.KeyAt(i), values.For(i));
    }
    (void)engine->Flush();

    // Reads from a second thread race the (inline, mutex-holding)
    // compaction on the main thread — reads that catch the compaction wait
    // it out, exactly the paper's "impact on ongoing reads".
    Histogram read_latency;
    std::atomic<bool> stop{false};
    std::thread reader([&] {
      Random rng(17);
      Clock* clock = SystemClock();
      while (!stop.load(std::memory_order_relaxed)) {
        std::string value;
        uint64_t start = clock->NowNanos();
        (void)engine->Get(keys.KeyAt(rng.Uniform(spec.num_keys)), &value);
        read_latency.Add(clock->NowNanos() - start);
      }
    });
    Clock* clock = SystemClock();
    uint64_t deadline = clock->NowNanos() + 50'000'000;  // 50 ms of reads
    if (trigger_compaction) {
      DB* db = env.pmblade_db();
      if (config == EngineConfig::kPmBlade) {
        (void)db->CompactLevel0();
      } else {
        (void)db->CompactToLevel1(false);
      }
    }
    while (clock->NowNanos() < deadline) {
      clock->SleepForNanos(1'000'000);
    }
    stop.store(true);
    reader.join();

    cases.push_back(CaseResult{name, read_latency.Average(),
                               read_latency.Percentile(99.9)});
  };

  run_case("PMBlade (internal comp.)", EngineConfig::kPmBlade, true);
  run_case("PMBlade-noComp", EngineConfig::kPmBlade, false);
  run_case("PMBlade-SSD (trad. comp.)", EngineConfig::kPmBladeSsd, true);
  run_case("PMBlade-SSD-noComp", EngineConfig::kPmBladeSsd, false);

  TablePrinter b({"configuration", "avg read", "p99.9 read"});
  for (const auto& c : cases) {
    b.AddRow({c.name, TablePrinter::FmtNanos(c.avg),
              TablePrinter::FmtNanos(c.p999)});
  }
  b.Print("Fig. 7(b): read latency while compaction runs");
  printf("\npaper shape: internal compaction perturbs reads (avg ~1.7x, "
         "p99.9 ~5x over noComp)\nbut stays far below the SSD "
         "configuration's compaction impact\n");
  return 0;
}
