// Table I — "Comparation of query latency": point-lookup latency of a
// binary-searchable table on PM vs an SSTable served from the DRAM block
// cache vs an SSTable read from the SSD, over 1/2/4/8 tables.
//
// Paper's shape: PM is close to the cache (3.3 vs 2.6 us at 1 table) and
// ~7x faster than the SSD (22.3 us); latency grows with the table count for
// all three since each table must be probed in turn.
//
// Flags: --entries (total entries, default 40000), --lookups (default 2000).

#include <memory>
#include <vector>

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/workload.h"
#include "compaction/minor_compaction.h"
#include "env/sim_env.h"
#include "memtable/internal_key.h"
#include "pm/pm_pool.h"
#include "pmtable/pm_table.h"
#include "pmtable/pm_table_builder.h"
#include "sstable/ssd_l0_table.h"
#include "sstable/table_builder.h"
#include "util/bloom.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq) {
  std::string out;
  AppendInternalKey(&out, user_key, seq, kTypeValue);
  return out;
}

struct Setup {
  std::unique_ptr<PmPool> pool;
  std::unique_ptr<SsdModel> model;
  std::unique_ptr<SimEnv> sim;
  std::unique_ptr<BlockCache> cache;
  InternalKeyComparator icmp{BytewiseComparator()};
  BloomFilterPolicy policy{10};
  std::string dir;
};

double MeasureLookups(const std::vector<L0TableRef>& tables,
                      const InternalKeyComparator& icmp,
                      const std::vector<std::string>& probe_keys) {
  Clock* clock = SystemClock();
  uint64_t total = 0;
  for (const auto& user_key : probe_keys) {
    LookupKey lkey(user_key, kMaxSequenceNumber);
    const uint64_t start = clock->NowNanos();
    std::string value;
    bool found = false;
    Status rs;
    for (const auto& table : tables) {
      Status s = L0TableGet(*table, icmp, lkey, &value, &found, &rs);
      if (!s.ok()) {
        fprintf(stderr, "lookup error: %s\n", s.ToString().c_str());
        exit(1);
      }
      if (found) break;
    }
    total += clock->NowNanos() - start;
  }
  return static_cast<double>(total) / probe_keys.size() / 1000.0;  // us
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t entries = flags.Int("entries", 40000);
  const uint64_t lookups = flags.Int("lookups", 2000);

  Setup setup;
  setup.dir = "/tmp/pmblade_bench_table1";
  PosixEnv()->RemoveDirRecursively(setup.dir);
  PosixEnv()->CreateDir(setup.dir);

  PmPoolOptions popts;
  popts.capacity = 512ull << 20;
  Status s = PmPool::Open(setup.dir + "/pool.pm", popts, &setup.pool);
  if (!s.ok()) {
    fprintf(stderr, "pool: %s\n", s.ToString().c_str());
    return 1;
  }

  SsdModelOptions mopts;  // defaults: ~25 us random read
  setup.model.reset(new SsdModel(mopts));
  setup.sim.reset(new SimEnv(PosixEnv(), setup.model.get()));
  setup.cache.reset(new BlockCache(256 << 20));

  TablePrinter table({"The number of tables", "1", "2", "4", "8"});
  std::vector<int> counts = {1, 2, 4, 8};

  ValueGenerator values(100);
  std::vector<std::string> pm_rows, cached_rows, ssd_rows;

  std::vector<std::string> row_pm = {"Table on PM"};
  std::vector<std::string> row_cache = {"SSTable in cache"};
  std::vector<std::string> row_ssd = {"SSTable in SSD"};

  for (int count : counts) {
    // Build `count` tables splitting `entries` keys; probe random keys.
    uint64_t per_table = entries / count;

    std::vector<L0TableRef> pm_tables, cached_tables, ssd_tables;
    Random rnd(1);
    std::vector<std::string> probe_keys;

    for (int t = 0; t < count; ++t) {
      PmTableBuilder pm_builder(setup.pool.get(), PmTableOptions{});

      L0FactoryOptions fopts;
      fopts.layout = L0Layout::kSstable;
      fopts.icmp = &setup.icmp;
      fopts.filter_policy = &setup.policy;
      fopts.block_cache = setup.cache.get();
      fopts.ssd_dir = setup.dir;
      // Two factories sharing files is fine: build once, open twice (one
      // through the cache-backed SimEnv-free path for the "cached" case and
      // one through the SSD model for the "SSD" case).
      static L0TableFactory sst_factory(fopts, nullptr, PosixEnv());

      // Interleave key indices so the tables fully overlap in range (as
      // unsorted level-0 tables do): table t holds keys i ≡ t (mod count).
      std::vector<std::pair<std::string, std::string>> rows;
      for (uint64_t i = 0; i < per_table; ++i) {
        char key[40];
        snprintf(key, sizeof(key),
                 "tbl|key%012llu",
                 static_cast<unsigned long long>(i * count + t));
        rows.emplace_back(key, values.For(i));
      }
      for (auto& [k, v] : rows) {
        pm_builder.Add(IKey(k, 10), v);
      }
      std::shared_ptr<PmTable> pm_table;
      s = pm_builder.Finish(&pm_table);
      if (!s.ok()) {
        fprintf(stderr, "pm build: %s\n", s.ToString().c_str());
        return 1;
      }
      pm_tables.push_back(pm_table);

      // SSTable file for both cached and SSD variants.
      uint64_t file_number = sst_factory.NextFileNumber();
      char name[64];
      snprintf(name, sizeof(name), "/%06llu.sst",
               static_cast<unsigned long long>(file_number));
      std::string path = setup.dir + name;
      std::unique_ptr<WritableFile> file;
      PosixEnv()->NewWritableFile(path, &file);
      TableBuilderOptions topts;
      topts.comparator = &setup.icmp;
      topts.filter_policy = &setup.policy;
      TableBuilder builder(topts, file.get());
      for (auto& [k, v] : rows) {
        builder.Add(IKey(k, 10), v);
      }
      builder.Finish();
      file->Sync();
      file->Close();

      // Cached variant: plain posix file + big block cache (warmed below).
      TableReaderOptions ropts;
      ropts.comparator = &setup.icmp;
      ropts.filter_policy = &setup.policy;
      ropts.block_cache = setup.cache.get();
      ropts.file_number = file_number;
      std::shared_ptr<SsdL0Table> cached;
      s = SsdL0Table::Open(PosixEnv(), path, file_number, ropts, &cached);
      if (!s.ok()) {
        fprintf(stderr, "cached open: %s\n", s.ToString().c_str());
        return 1;
      }
      cached_tables.push_back(cached);

      // SSD variant: reads through the latency model, no cache.
      TableReaderOptions sopts;
      sopts.comparator = &setup.icmp;
      sopts.filter_policy = &setup.policy;
      sopts.block_cache = nullptr;
      sopts.file_number = file_number + 1000000;
      std::shared_ptr<SsdL0Table> on_ssd;
      s = SsdL0Table::Open(setup.sim.get(), path, file_number, sopts,
                           &on_ssd);
      if (!s.ok()) {
        fprintf(stderr, "ssd open: %s\n", s.ToString().c_str());
        return 1;
      }
      ssd_tables.push_back(on_ssd);
    }

    probe_keys.clear();
    for (uint64_t i = 0; i < lookups; ++i) {
      char key[40];
      snprintf(key, sizeof(key), "tbl|key%012llu",
               static_cast<unsigned long long>(rnd.Uniform(entries)));
      probe_keys.push_back(key);
    }

    // Warm the cache fully for the "cache" variant.
    for (const auto& t : cached_tables) {
      std::unique_ptr<Iterator> it(t->NewIterator());
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
      }
    }

    row_pm.push_back(
        TablePrinter::Fmt(MeasureLookups(pm_tables, setup.icmp, probe_keys),
                          1) + " us");
    row_cache.push_back(
        TablePrinter::Fmt(
            MeasureLookups(cached_tables, setup.icmp, probe_keys), 1) +
        " us");
    row_ssd.push_back(
        TablePrinter::Fmt(MeasureLookups(ssd_tables, setup.icmp, probe_keys),
                          1) + " us");

    for (auto& t : pm_tables) t->Destroy();
  }

  // Assemble in paper's row order. Header already has counts; rows carry
  // the measured latencies.
  TablePrinter out({"structure", "1 table", "2 tables", "4 tables",
                    "8 tables"});
  out.AddRow(row_pm);
  out.AddRow(row_cache);
  out.AddRow(row_ssd);
  out.Print("Table I: query latency (avg per lookup)");

  printf("\npaper shape: PM ~ cache (within ~1.5x), SSD >> both; all grow "
         "with table count\n");
  PosixEnv()->RemoveDirRecursively(setup.dir);
  return 0;
}
