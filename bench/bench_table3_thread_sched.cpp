// Table III — resource utilization of thread-scheduled compaction. The
// paper runs N compaction tasks, one OS thread each, on a single core, and
// shows that threads cannot keep either the CPU or the I/O device busy:
// speedup saturates near 1.9x, both devices stay ~30-47% idle, and I/O
// latency climbs (3.9 ms -> 10.9 ms for 1 -> 5 threads) because bursty
// concurrent I/Os queue against each other.
//
// We run the thread compaction engine with N = 1..5 subtasks/threads on a
// shared SSD model and report the same four rows.
//
// Flags: --entries_per_task (default 12000), --value_size (default 256).

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/workload.h"
#include "compaction/major_compaction.h"
#include "memtable/internal_key.h"
#include "pm/pm_pool.h"
#include "pmtable/pm_table_builder.h"
#include "util/bloom.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t entries_per_task = flags.Int("entries_per_task", 12000);
  const size_t value_size = flags.Int("value_size", 256);

  std::string dir = "/tmp/pmblade_bench_table3";
  PosixEnv()->RemoveDirRecursively(dir);
  PosixEnv()->CreateDir(dir);

  PmPoolOptions popts;
  popts.capacity = 512ull << 20;
  popts.latency.inject_latency = false;  // focus on SSD behaviour
  std::unique_ptr<PmPool> pool;
  Status s = PmPool::Open(dir + "/pool.pm", popts, &pool);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  InternalKeyComparator icmp(BytewiseComparator());
  BloomFilterPolicy policy(10);
  ValueGenerator values(value_size);

  L0FactoryOptions fopts;
  fopts.layout = L0Layout::kSstable;
  fopts.icmp = &icmp;
  fopts.filter_policy = &policy;
  fopts.ssd_dir = dir;
  L0TableFactory factory(fopts, pool.get(), PosixEnv());

  // Pre-build one PM table per potential task (disjoint ranges).
  auto build_table = [&](int task) {
    PmTableBuilder builder(pool.get(), PmTableOptions{});
    for (uint64_t i = 0; i < entries_per_task; ++i) {
      char key[48];
      snprintf(key, sizeof(key), "t|task%02d|key%012llu", task,
               static_cast<unsigned long long>(i));
      std::string ikey;
      AppendInternalKey(&ikey, key, 10, kTypeValue);
      builder.Add(ikey, values.For(i));
    }
    std::shared_ptr<PmTable> table;
    Status bs = builder.Finish(&table);
    if (!bs.ok()) {
      fprintf(stderr, "build: %s\n", bs.ToString().c_str());
      exit(1);
    }
    return table;
  };
  std::vector<L0TableRef> tables;
  for (int t = 0; t < 5; ++t) tables.push_back(build_table(t));

  std::vector<std::string> row_speedup = {"Time speed up"};
  std::vector<std::string> row_cpu = {"CPU idleness"};
  std::vector<std::string> row_io = {"I/O device idleness"};
  std::vector<std::string> row_lat = {"I/O latency (avg)"};
  double wall_per_task_1thread = 0;

  for (int threads = 1; threads <= 5; ++threads) {
    SsdModelOptions mopts;  // defaults; queue penalty drives the latency row
    SsdModel model(mopts);

    MajorCompactionOptions copts;
    copts.engine = CompactionEngine::kThread;
    copts.concurrency = threads;
    copts.read_block_bytes = 32 << 10;
    copts.write_block_bytes = 32 << 10;
    MajorCompactor compactor(PosixEnv(), &model, &factory, copts);

    std::vector<CompactionSubtaskInput> subtasks;
    for (int t = 0; t < threads; ++t) {
      CompactionSubtaskInput sub;
      L0TableRef table = tables[t];
      sub.ssd_input_fraction = 0.5;  // half the input re-read from the SSD
      sub.make_input = [table]() {
        Iterator* it = table->NewIterator();
        it->SeekToFirst();
        return it;
      };
      subtasks.push_back(sub);
    }

    std::vector<CompactionOutputMeta> outputs;
    MajorCompactionStats stats;
    s = compactor.Run(subtasks, &outputs, &stats);
    if (!s.ok()) {
      fprintf(stderr, "compaction: %s\n", s.ToString().c_str());
      return 1;
    }
    for (const auto& meta : outputs) PosixEnv()->RemoveFile(meta.path);

    double wall_per_task = static_cast<double>(stats.wall_nanos) / threads;
    if (threads == 1) wall_per_task_1thread = wall_per_task;
    double speedup = wall_per_task_1thread / wall_per_task;
    double cpu_idle = 1.0 - stats.CpuUtilization(/*cores=*/1);
    double io_idle = 1.0 - stats.IoUtilization();
    if (cpu_idle < 0) cpu_idle = 0;
    if (io_idle < 0) io_idle = 0;
    double avg_latency = stats.io_latency.Average();

    row_speedup.push_back(TablePrinter::Fmt(speedup, 2) + "x");
    row_cpu.push_back(TablePrinter::Fmt(cpu_idle * 100, 1) + "%");
    row_io.push_back(TablePrinter::Fmt(io_idle * 100, 1) + "%");
    row_lat.push_back(TablePrinter::FmtNanos(avg_latency));
  }

  TablePrinter out({"The number of threads", "1", "2", "3", "4", "5"});
  out.AddRow(row_speedup);
  out.AddRow(row_cpu);
  out.AddRow(row_io);
  out.AddRow(row_lat);
  out.Print("Table III: resource utilization of compaction with threads");
  printf("\npaper shape: speedup saturates well below N; CPU and I/O stay "
         "significantly idle;\nI/O latency grows with thread count "
         "(queueing)\n");

  for (auto& t : tables) t->Destroy();
  PosixEnv()->RemoveDirRecursively(dir);
  return 0;
}
