// Fig. 10 — ablation study on the online-retail workload: how much each
// PM-Blade technique contributes.
//
//   PMBlade-SSD : no PM at all (level-0 on SSD)
//   PMB-P       : + PM level-0 (array tables), conventional compaction
//   PMB-PI      : + internal compaction & cost models
//   PMB-PIC     : + compressed PM tables
//   PMBlade     : + coroutine-based major compaction (everything)
//
// Reported per configuration: avg read / scan / write latency and
// normalized throughput (PMBlade-SSD = 1.0).
//
// Paper shape: each step helps; internal compaction is the largest
// contributor (read -29%, write -27%, scan -43%), the full system beats
// PMB-P by ~40-54% latency and +51% throughput.
//
// Flags: --load_orders (default 400), --transactions (default 1200).

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/retail_workload.h"
#include "benchutil/runner.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  RetailOptions ropts;
  ropts.load_orders = flags.Int("load_orders", 400);
  ropts.transactions = flags.Int("transactions", 1200);
  ropts.bytes_per_order = flags.Int("bytes_per_order", 8192);

  const EngineConfig configs[] = {
      EngineConfig::kPmBladeSsd, EngineConfig::kPmbP, EngineConfig::kPmbPI,
      EngineConfig::kPmbPIC, EngineConfig::kPmBlade,
  };

  TablePrinter lat({"configuration", "read avg", "scan avg", "write avg"});
  TablePrinter thr({"configuration", "tx/s", "normalized"});
  double base_throughput = 0;

  for (EngineConfig config : configs) {
    BenchEnvOptions eopts;
    eopts.root = "/tmp/pmblade_bench_fig10";
    eopts.memtable_bytes = 256 << 10;
    eopts.l0_budget_large = 24 << 20;
    RetailWorkload boundaries_probe(ropts);
    eopts.partition_boundaries = boundaries_probe.PartitionBoundaries(8);

    BenchEnv env(eopts);
    KvEngine* engine = nullptr;
    Status s = env.OpenEngine(config, &engine);
    if (!s.ok()) {
      fprintf(stderr, "open %s: %s\n", EngineConfigName(config),
              s.ToString().c_str());
      return 1;
    }

    RetailWorkload workload(ropts);
    RetailResult load_result, run_result;
    s = workload.Load(engine, &load_result);
    if (s.ok()) s = workload.Run(engine, &run_result);
    if (!s.ok()) {
      fprintf(stderr, "workload %s: %s\n", EngineConfigName(config),
              s.ToString().c_str());
      return 1;
    }

    lat.AddRow({EngineConfigName(config),
                TablePrinter::FmtNanos(run_result.read_latency.Average()),
                TablePrinter::FmtNanos(run_result.scan_latency.Average()),
                TablePrinter::FmtNanos(run_result.write_latency.Average())});
    double tps = run_result.ThroughputTxPerSec();
    if (base_throughput == 0) base_throughput = tps;
    thr.AddRow({EngineConfigName(config), TablePrinter::Fmt(tps, 0),
                TablePrinter::Fmt(tps / base_throughput, 2) + "x"});
  }

  lat.Print("Fig. 10(a): per-operation latency, retail workload ablation");
  thr.Print("Fig. 10(b): throughput, retail workload ablation");
  printf("\npaper shape: every technique helps; internal compaction "
         "contributes the most;\nPMBlade ends ~1.5x PMB-P throughput\n");
  return 0;
}
