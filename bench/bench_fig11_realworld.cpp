// Fig. 11 — full-system comparison on the online-retail workload:
// RocksDB-style baseline, MatrixKV with a small (8 GB-equivalent) and a
// large (80 GB-equivalent) PM budget, and PMBlade.
//
//   (a) write amplification (PM + SSD split)
//   (b) read latency   (c) write latency   (d) scan latency
//   (e) normalized throughput
//
// Paper's shape: PMBlade writes only ~18% of RocksDB's amplification bytes
// (and most of what remains lands on PM); it leads every latency metric and
// reaches ~3.7x RocksDB / ~2.5x MatrixKV throughput.
//
// Flags: --load_orders (default 400), --transactions (default 1200).

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/retail_workload.h"
#include "benchutil/runner.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  RetailOptions ropts;
  ropts.load_orders = flags.Int("load_orders", 400);
  ropts.transactions = flags.Int("transactions", 1200);
  ropts.bytes_per_order = flags.Int("bytes_per_order", 8192);

  const EngineConfig configs[] = {
      EngineConfig::kRocksStyle,
      EngineConfig::kMatrixKvSmall,
      EngineConfig::kMatrixKvLarge,
      EngineConfig::kPmBlade,
  };

  TablePrinter wa({"engine", "user bytes", "PM written", "SSD written",
                   "WA total", "vs RocksDB"});
  TablePrinter lat({"engine", "read avg", "write avg", "scan avg"});
  TablePrinter thr({"engine", "tx/s", "normalized"});
  double rocks_wa = 0, rocks_tps = 0;

  for (EngineConfig config : configs) {
    BenchEnvOptions eopts;
    eopts.root = "/tmp/pmblade_bench_fig11";
    eopts.memtable_bytes = 256 << 10;
    eopts.l0_budget_large = 24 << 20;
    eopts.l0_budget_small = 3 << 20;
    RetailWorkload boundaries_probe(ropts);
    eopts.partition_boundaries = boundaries_probe.PartitionBoundaries(8);

    BenchEnv env(eopts);
    KvEngine* engine = nullptr;
    Status s = env.OpenEngine(config, &engine);
    if (!s.ok()) {
      fprintf(stderr, "open %s: %s\n", EngineConfigName(config),
              s.ToString().c_str());
      return 1;
    }

    RetailWorkload workload(ropts);
    RetailResult load_result, run_result;
    s = workload.Load(engine, &load_result);
    if (s.ok()) s = workload.Run(engine, &run_result);
    if (!s.ok()) {
      fprintf(stderr, "workload %s: %s\n", EngineConfigName(config),
              s.ToString().c_str());
      return 1;
    }
    (void)env.FlushEngine();

    uint64_t user = env.UserBytesWritten();
    uint64_t pm = env.PmBytesWritten();
    uint64_t ssd = env.SsdBytesWritten();
    double wa_total = user > 0 ? static_cast<double>(pm + ssd) / user : 0;
    if (config == EngineConfig::kRocksStyle) rocks_wa = wa_total;
    wa.AddRow({EngineConfigName(config), TablePrinter::FmtBytes(user),
               TablePrinter::FmtBytes(pm), TablePrinter::FmtBytes(ssd),
               TablePrinter::Fmt(wa_total, 2) + "x",
               TablePrinter::Fmt(rocks_wa > 0 ? 100.0 * wa_total / rocks_wa
                                              : 100.0,
                                 0) +
                   "%"});

    lat.AddRow({EngineConfigName(config),
                TablePrinter::FmtNanos(run_result.read_latency.Average()),
                TablePrinter::FmtNanos(run_result.write_latency.Average()),
                TablePrinter::FmtNanos(run_result.scan_latency.Average())});

    double tps = run_result.ThroughputTxPerSec();
    if (config == EngineConfig::kRocksStyle) rocks_tps = tps;
    thr.AddRow({EngineConfigName(config), TablePrinter::Fmt(tps, 0),
                TablePrinter::Fmt(rocks_tps > 0 ? tps / rocks_tps : 1.0, 2) +
                    "x"});
  }

  wa.Print("Fig. 11(a): write amplification, retail workload");
  lat.Print("Fig. 11(b-d): operation latency, retail workload");
  thr.Print("Fig. 11(e): normalized throughput, retail workload");
  printf("\npaper shape: PMBlade ~18%% of RocksDB's WA, lowest latencies, "
         "~3.7x RocksDB and\n~2.5x MatrixKV throughput\n");
  return 0;
}
