// Fig. 8 — the compaction models' effect on write amplification and on
// keeping warm data in PM.
//
// (a) Write amplification after a fixed insert/update volume under several
//     key distributions, for RocksDB-style / PMBlade-PM / PMBlade. The
//     paper (200 GB, 1 KB values, uniform): RocksDB 2573 GB, PMBlade-PM
//     825 GB, PMBlade 359 GB of which only 158 GB hit the SSD — internal
//     compaction absorbs the redundancy on PM.
//
// (b) Fraction of reads served from PM under a 50/50 mix, by skew, for
//     PMBlade (cost-model retention, Eq. 3) vs PMBlade-PM (periodic whole-
//     level-0 compaction). Paper: the cost model keeps hot partitions in
//     PM; +34 points even at skew 0.
//
// Flags: --write_bytes (default 12 MiB), --value_size (default 512),
//        --ops (default 8000).

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/runner.h"
#include "benchutil/workload.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

namespace {

BenchEnvOptions MakeEnvOptions() {
  BenchEnvOptions eopts;
  eopts.root = "/tmp/pmblade_bench_fig8";
  eopts.memtable_bytes = 128 << 10;
  eopts.inject_ssd_latency = false;  // byte accounting only: run fast
  eopts.inject_pm_latency = false;
  eopts.l0_budget_large = 4 << 20;  // force regular major compactions
  KeySpec spec;
  spec.num_keys = 20000;
  KeyGenerator keys(spec);
  eopts.partition_boundaries = keys.PartitionBoundaries(8);
  return eopts;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t write_bytes = flags.Int("write_bytes", 12 << 20);
  const size_t value_size = flags.Int("value_size", 512);
  const uint64_t ops = flags.Int("ops", 8000);

  // ---- (a) write amplification ----
  {
    TablePrinter out({"distribution", "engine", "user bytes", "PM written",
                      "SSD written", "WA (total)", "WA (SSD)"});
    for (double skew : {0.0, 0.6, 0.99}) {
      for (EngineConfig config :
           {EngineConfig::kRocksStyle, EngineConfig::kPmBladePm,
            EngineConfig::kPmBlade}) {
        BenchEnv env(MakeEnvOptions());
        KvEngine* engine = nullptr;
        Status s = env.OpenEngine(config, &engine);
        if (!s.ok()) {
          fprintf(stderr, "open: %s\n", s.ToString().c_str());
          return 1;
        }

        KeySpec spec;
        spec.num_keys = 20000;
        spec.distribution =
            skew == 0.0 ? Distribution::kUniform : Distribution::kZipfian;
        spec.zipf_theta = skew;
        spec.seed = 31;
        KeyGenerator keys(spec);
        ValueGenerator values(value_size);

        uint64_t written = 0;
        while (written < write_bytes) {
          uint64_t index = keys.NextIndex();
          std::string value = values.For(index);
          s = engine->Put(keys.KeyAt(index), value);
          if (!s.ok()) {
            fprintf(stderr, "put: %s\n", s.ToString().c_str());
            return 1;
          }
          written += value.size() + 16;
        }
        (void)engine->Flush();

        uint64_t user = env.UserBytesWritten();
        uint64_t pm = env.PmBytesWritten();
        uint64_t ssd = env.SsdBytesWritten();
        char label[16];
        snprintf(label, sizeof(label), "%.2f", skew);
        out.AddRow({skew == 0.0 ? "uniform" : label,
                    EngineConfigName(config), TablePrinter::FmtBytes(user),
                    TablePrinter::FmtBytes(pm), TablePrinter::FmtBytes(ssd),
                    TablePrinter::Fmt(
                        static_cast<double>(pm + ssd) / user, 2) + "x",
                    TablePrinter::Fmt(static_cast<double>(ssd) / user, 2) +
                        "x"});
      }
    }
    out.Print("Fig. 8(a): write amplification by distribution and engine");
    printf("\npaper shape: PMBlade << PMBlade-PM << RocksDB in total WA, "
           "and most of PMBlade's\nremaining amplification lands on PM, not "
           "the SSD\n");
  }

  // ---- (b) PM hit ratio of reads ----
  {
    TablePrinter out({"data skew", "PMBlade-PM hit%", "PMBlade hit%"});
    for (double skew : {0.0, 0.2, 0.4, 0.6, 0.8, 0.99}) {
      std::vector<double> hits;
      for (EngineConfig config :
           {EngineConfig::kPmBladePm, EngineConfig::kPmBlade}) {
        BenchEnvOptions eopts = MakeEnvOptions();
        eopts.root = "/tmp/pmblade_bench_fig8b";
        BenchEnv env(eopts);
        KvEngine* engine = nullptr;
        Status s = env.OpenEngine(config, &engine);
        if (!s.ok()) {
          fprintf(stderr, "open: %s\n", s.ToString().c_str());
          return 1;
        }

        KeySpec spec;
        spec.num_keys = 20000;
        spec.distribution =
            skew == 0.0 ? Distribution::kUniform : Distribution::kZipfian;
        spec.zipf_theta = skew;
        spec.seed = 77;
        KeyGenerator keys(spec);
        ValueGenerator values(value_size);
        Random rng(13);

        // Preload so reads have something to find, then the mixed phase.
        for (uint64_t i = 0; i < spec.num_keys; i += 2) {
          (void)engine->Put(keys.KeyAt(i), values.For(i));
        }
        const DbStatistics* stats = env.statistics();
        const_cast<DbStatistics*>(stats)->Reset();

        for (uint64_t op = 0; op < ops; ++op) {
          uint64_t index = keys.NextIndex();
          if (rng.OneIn(2)) {
            s = engine->Put(keys.KeyAt(index), values.For(index));
          } else {
            std::string value;
            Status rs = engine->Get(keys.KeyAt(index), &value);
            if (!rs.ok() && !rs.IsNotFound()) s = rs;
          }
          if (!s.ok()) {
            fprintf(stderr, "op: %s\n", s.ToString().c_str());
            return 1;
          }
        }
        hits.push_back(env.PmHitRatio() * 100.0);
      }
      out.AddRow({TablePrinter::Fmt(skew, 2), TablePrinter::Fmt(hits[0], 1),
                  TablePrinter::Fmt(hits[1], 1)});
    }
    out.Print("Fig. 8(b): share of reads served from PM (or memtable)");
    printf("\npaper shape: the cost model (Eq. 3) retains hot partitions in "
           "PM, so PMBlade's hit\nratio beats the periodic whole-level "
           "policy at every skew and both rise with skew\n");
  }
  return 0;
}
