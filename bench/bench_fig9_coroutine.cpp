// Fig. 9 — the coroutine-based major compaction vs two baselines, across
// value sizes (small values = CPU-heavier merge, large values = I/O-heavier
// transfer):
//   (a) CPU utilization   — PMBlade > Coroutine > Thread,
//   (b) I/O utilization   — PMBlade near 100% for larger values,
//   (c) I/O latency       — PMBlade lowest (the q_flush gate avoids bursts),
//   (d) compaction duration — PMBlade shortest.
//
// Configuration mirrors the paper: 4 concurrent compaction tasks, 2 worker
// cores, max I/O concurrency q = 4. An extra sweep over q exercises the
// design-choice ablation DESIGN.md calls out.
//
// Flags: --data_bytes (default 4 MiB), --q (default 4), --workers
// (default 2), --concurrency (default 4), --sweep_q (default true).

#include <algorithm>

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/workload.h"
#include "compaction/major_compaction.h"
#include "memtable/internal_key.h"
#include "pm/pm_pool.h"
#include "pmtable/pm_table_builder.h"
#include "util/bloom.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

namespace {

struct RunResult {
  double cpu_util = 0;
  double io_util = 0;
  double io_latency_nanos = 0;
  uint64_t duration_nanos = 0;
};

RunResult RunSingle(CompactionEngine engine, int concurrency, int workers,
                    int q, const std::vector<L0TableRef>& tables,
                    L0TableFactory* factory) {
  SsdModelOptions mopts;  // fresh model per run: clean stats
  SsdModel model(mopts);

  MajorCompactionOptions copts;
  copts.engine = engine;
  copts.concurrency = concurrency;
  copts.worker_threads = workers;
  copts.max_io_q = q;
  copts.read_block_bytes = 32 << 10;
  copts.write_block_bytes = 32 << 10;
  MajorCompactor compactor(PosixEnv(), &model, factory, copts);

  std::vector<CompactionSubtaskInput> subtasks;
  for (int t = 0; t < concurrency; ++t) {
    CompactionSubtaskInput sub;
    L0TableRef table = tables[t];
    sub.ssd_input_fraction = 0.5;
    sub.make_input = [table]() {
      Iterator* it = table->NewIterator();
      it->SeekToFirst();
      return it;
    };
    subtasks.push_back(sub);
  }

  std::vector<CompactionOutputMeta> outputs;
  MajorCompactionStats stats;
  Status s = compactor.Run(subtasks, &outputs, &stats);
  if (!s.ok()) {
    fprintf(stderr, "compaction: %s\n", s.ToString().c_str());
    exit(1);
  }
  for (const auto& meta : outputs) PosixEnv()->RemoveFile(meta.path);

  RunResult result;
  result.cpu_util = std::min(stats.CpuUtilization(workers), 1.0);
  result.io_util = std::min(stats.IoUtilization(), 1.0);
  result.io_latency_nanos = stats.io_latency.Average();
  result.duration_nanos = stats.wall_nanos;
  return result;
}

/// Best of 3 runs (shortest wall time) tames OS scheduling noise on
/// low-core-count machines.
RunResult RunOnce(CompactionEngine engine, int concurrency, int workers,
                  int q, const std::vector<L0TableRef>& tables,
                  L0TableFactory* factory) {
  RunResult best;
  for (int run = 0; run < 3; ++run) {
    RunResult r =
        RunSingle(engine, concurrency, workers, q, tables, factory);
    if (run == 0 || r.duration_nanos < best.duration_nanos) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t data_bytes = flags.Int("data_bytes", 4 << 20);
  const int q = static_cast<int>(flags.Int("q", 4));
  const int workers = static_cast<int>(flags.Int("workers", 2));
  const int concurrency = static_cast<int>(flags.Int("concurrency", 4));
  const bool sweep_q = flags.Bool("sweep_q", true);

  std::string dir = "/tmp/pmblade_bench_fig9";
  PosixEnv()->RemoveDirRecursively(dir);
  PosixEnv()->CreateDir(dir);

  PmPoolOptions popts;
  popts.capacity = 1ull << 30;
  popts.latency.inject_latency = false;
  std::unique_ptr<PmPool> pool;
  Status s = PmPool::Open(dir + "/pool.pm", popts, &pool);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  InternalKeyComparator icmp(BytewiseComparator());
  BloomFilterPolicy policy(10);

  L0FactoryOptions fopts;
  fopts.layout = L0Layout::kSstable;
  fopts.icmp = &icmp;
  fopts.filter_policy = &policy;
  fopts.ssd_dir = dir;
  L0TableFactory factory(fopts, pool.get(), PosixEnv());

  struct EngineSpec {
    const char* name;
    CompactionEngine engine;
  };
  const EngineSpec engines[] = {
      {"Thread", CompactionEngine::kThread},
      {"Coroutine", CompactionEngine::kCoroutine},
      {"PMBlade", CompactionEngine::kPmBlade},
  };

  TablePrinter cpu({"value size", "Thread", "Coroutine", "PMBlade"});
  TablePrinter io({"value size", "Thread", "Coroutine", "PMBlade"});
  TablePrinter lat({"value size", "Thread", "Coroutine", "PMBlade"});
  TablePrinter dur({"value size", "Thread", "Coroutine", "PMBlade"});

  for (size_t value_size : {32, 64, 128, 256, 512}) {
    // Build `concurrency` disjoint input tables at this value size.
    uint64_t per_table_entries =
        std::max<uint64_t>(data_bytes / concurrency / (value_size + 32), 64);
    ValueGenerator values(value_size);
    std::vector<L0TableRef> tables;
    for (int t = 0; t < concurrency; ++t) {
      PmTableBuilder builder(pool.get(), PmTableOptions{});
      for (uint64_t i = 0; i < per_table_entries; ++i) {
        char key[48];
        snprintf(key, sizeof(key), "t|task%02d|key%012llu", t,
                 static_cast<unsigned long long>(i));
        std::string ikey;
        AppendInternalKey(&ikey, key, 10, kTypeValue);
        builder.Add(ikey, values.For(i));
      }
      std::shared_ptr<PmTable> table;
      s = builder.Finish(&table);
      if (!s.ok()) {
        fprintf(stderr, "build: %s\n", s.ToString().c_str());
        return 1;
      }
      tables.push_back(table);
    }

    char label[32];
    snprintf(label, sizeof(label), "%zu B", value_size);
    std::vector<std::string> cpu_row = {label}, io_row = {label},
                             lat_row = {label}, dur_row = {label};
    for (const auto& spec : engines) {
      RunResult r =
          RunOnce(spec.engine, concurrency, workers, q, tables, &factory);
      cpu_row.push_back(TablePrinter::Fmt(r.cpu_util * 100, 1) + "%");
      io_row.push_back(TablePrinter::Fmt(r.io_util * 100, 1) + "%");
      lat_row.push_back(TablePrinter::FmtNanos(r.io_latency_nanos));
      dur_row.push_back(TablePrinter::FmtNanos(r.duration_nanos));
    }
    cpu.AddRow(cpu_row);
    io.AddRow(io_row);
    lat.AddRow(lat_row);
    dur.AddRow(dur_row);

    for (auto& t : tables) t->Destroy();
  }

  cpu.Print("Fig. 9(a): CPU utilization during major compaction");
  io.Print("Fig. 9(b): I/O device utilization during major compaction");
  lat.Print("Fig. 9(c): I/O latency during major compaction");
  dur.Print("Fig. 9(d): major compaction duration");
  printf("\npaper shape: PMBlade > Coroutine > Thread on CPU util; PMBlade "
         "I/O util -> ~100%%\nfor larger values; PMBlade lowest I/O latency "
         "and shortest duration\n");

  if (sweep_q) {
    // Ablation: q sweep for the PMBlade engine at 128 B values.
    uint64_t per_table_entries =
        std::max<uint64_t>(data_bytes / concurrency / (128 + 32), 64);
    ValueGenerator values(128);
    std::vector<L0TableRef> tables;
    for (int t = 0; t < concurrency; ++t) {
      PmTableBuilder builder(pool.get(), PmTableOptions{});
      for (uint64_t i = 0; i < per_table_entries; ++i) {
        char key[48];
        snprintf(key, sizeof(key), "t|task%02d|key%012llu", t,
                 static_cast<unsigned long long>(i));
        std::string ikey;
        AppendInternalKey(&ikey, key, 10, kTypeValue);
        builder.Add(ikey, values.For(i));
      }
      std::shared_ptr<PmTable> table;
      (void)builder.Finish(&table);
      tables.push_back(table);
    }
    TablePrinter sweep({"q", "duration", "io latency", "io util"});
    for (int qv : {1, 2, 4, 8, 16}) {
      RunResult r = RunOnce(CompactionEngine::kPmBlade, concurrency, workers,
                            qv, tables, &factory);
      sweep.AddRow({std::to_string(qv), TablePrinter::FmtNanos(
                                            r.duration_nanos),
                    TablePrinter::FmtNanos(r.io_latency_nanos),
                    TablePrinter::Fmt(r.io_util * 100, 1) + "%"});
    }
    sweep.Print("Ablation: q (max concurrent I/O) sweep, PMBlade engine");
    for (auto& t : tables) t->Destroy();
  }

  PosixEnv()->RemoveDirRecursively(dir);
  return 0;
}
