// Fig. 12 — YCSB Load + A-F, normalized throughput of RocksDB-style,
// MatrixKV (small / large PM budget) and PMBlade.
//
// Paper's shape (1 KB values): PMBlade leads everywhere — Load 3.5x RocksDB
// and 1.8x MatrixKV-8 (large PM write buffer absorbs flush traffic); E (the
// scan-heavy workload) 2.0x RocksDB; A 1.5x RocksDB; MatrixKV's large-PM
// variant does not close the gap because it neither retains hot data nor
// avoids the matrix construction overhead.
//
// Flags: --records (default 3000), --ops (default 2000),
//        --value_size (default 512).

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/runner.h"
#include "benchutil/ycsb.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  YcsbOptions yopts;
  yopts.record_count = flags.Int("records", 3000);
  yopts.operation_count = flags.Int("ops", 2000);
  yopts.value_size = flags.Int("value_size", 512);

  const EngineConfig configs[] = {
      EngineConfig::kRocksStyle,
      EngineConfig::kMatrixKvSmall,
      EngineConfig::kMatrixKvLarge,
      EngineConfig::kPmBlade,
  };
  const YcsbWorkload workloads[] = {
      YcsbWorkload::kLoad, YcsbWorkload::kA, YcsbWorkload::kB,
      YcsbWorkload::kC,    YcsbWorkload::kD, YcsbWorkload::kE,
      YcsbWorkload::kF,
  };

  // ops/s per (workload, engine).
  double results[7][4] = {};

  for (int e = 0; e < 4; ++e) {
    BenchEnvOptions eopts;
    eopts.root = "/tmp/pmblade_bench_fig12";
    eopts.memtable_bytes = 256 << 10;
    eopts.l0_budget_large = 24 << 20;
    eopts.l0_budget_small = 3 << 20;
    KeySpec spec;
    spec.prefix = yopts.key_prefix;
    spec.num_keys = yopts.record_count * 2;
    KeyGenerator keys(spec);
    eopts.partition_boundaries = keys.PartitionBoundaries(8);

    BenchEnv env(eopts);
    KvEngine* engine = nullptr;
    Status s = env.OpenEngine(configs[e], &engine);
    if (!s.ok()) {
      fprintf(stderr, "open %s: %s\n", EngineConfigName(configs[e]),
              s.ToString().c_str());
      return 1;
    }

    // Load phase (measured), then workloads A-F back to back on the loaded
    // store, as the paper does.
    YcsbResult load_result;
    s = YcsbLoad(engine, yopts, &load_result);
    if (!s.ok()) {
      fprintf(stderr, "load %s: %s\n", EngineConfigName(configs[e]),
              s.ToString().c_str());
      return 1;
    }
    results[0][e] = load_result.ThroughputOpsPerSec();

    for (int w = 1; w < 7; ++w) {
      YcsbResult result;
      s = YcsbRun(engine, workloads[w], yopts, &result);
      if (!s.ok()) {
        fprintf(stderr, "run %s/%s: %s\n", YcsbName(workloads[w]),
                EngineConfigName(configs[e]), s.ToString().c_str());
        return 1;
      }
      results[w][e] = result.ThroughputOpsPerSec();
    }
  }

  TablePrinter raw({"workload", "RocksDB", "MatrixKV-8", "MatrixKV-80",
                    "PMBlade"});
  TablePrinter norm({"workload", "RocksDB", "MatrixKV-8", "MatrixKV-80",
                     "PMBlade"});
  for (int w = 0; w < 7; ++w) {
    std::vector<std::string> raw_row = {YcsbName(workloads[w])};
    std::vector<std::string> norm_row = {YcsbName(workloads[w])};
    for (int e = 0; e < 4; ++e) {
      raw_row.push_back(TablePrinter::Fmt(results[w][e], 0) + " op/s");
      norm_row.push_back(
          TablePrinter::Fmt(results[w][0] > 0
                                ? results[w][e] / results[w][0]
                                : 0,
                            2) +
          "x");
    }
    raw.AddRow(raw_row);
    norm.AddRow(norm_row);
  }
  raw.Print("Fig. 12: YCSB throughput (raw)");
  norm.Print("Fig. 12: YCSB throughput normalized to RocksDB");
  printf("\npaper shape: PMBlade leads all workloads (Load ~3.5x, E ~2.0x, "
         "A ~1.5x RocksDB);\nMatrixKV in between\n");
  return 0;
}
