// Fig. 6 — PM table structure comparison on index-table-shaped data
// (~120 B keys, short row-id values):
//   (a) minor-compaction (flush/build) duration, normalized to PM table;
//   (b) random point-read latency at several data sizes.
//
// Five structures, exactly the paper's set: PM table (three-layer prefix
// compression), Array-based (uncompressed), Array-snappy (per-pair LZ),
// Array-snappy-group (per-8-pair LZ), SSTable (RocksDB block format on SSD).
//
// Paper's shape: PM table builds ~40% faster than Array-based and ~70%
// faster than SSTable; PM table reads slightly beat Array-based;
// Array-snappy reads ~2.3x worse than Array-based and the group variant is
// worse still; SSTable reads are far slower (device latency).
//
// Extra ablation (design-choice sweep in DESIGN.md): PM table group size
// 8 vs 16.
//
// Flags: --entries (default 20000), --lookups (default 2000).

#include <algorithm>
#include <memory>
#include <vector>

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/workload.h"
#include "compaction/minor_compaction.h"
#include "env/sim_env.h"
#include "memtable/internal_key.h"
#include "pm/pm_pool.h"
#include "pmtable/array_table.h"
#include "pmtable/pm_table_builder.h"
#include "pmtable/snappy_table.h"
#include "util/bloom.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

namespace {

struct BuildResult {
  L0TableRef table;
  uint64_t build_nanos = 0;
  uint64_t image_bytes = 0;
};

// Index-table keys: "idx_orders_by_user|<user>|<order>" ~ 40-120 B once
// padded; the paper's index column size is 120 B.
std::string IndexKey(uint64_t i) {
  char buf[160];
  snprintf(buf, sizeof(buf),
           "idx_orders_by_user_and_city_and_status|user%016llu|"
           "city%08llu|status%02llu|order%016llu",
           static_cast<unsigned long long>(i / 4),
           static_cast<unsigned long long>(i % 97),
           static_cast<unsigned long long>(i % 8),
           static_cast<unsigned long long>(i));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t entries = flags.Int("entries", 20000);
  const uint64_t lookups = flags.Int("lookups", 2000);

  std::string dir = "/tmp/pmblade_bench_fig6";
  PosixEnv()->RemoveDirRecursively(dir);
  PosixEnv()->CreateDir(dir);

  PmPoolOptions popts;
  popts.capacity = 512ull << 20;
  std::unique_ptr<PmPool> pool;
  Status s = PmPool::Open(dir + "/pool.pm", popts, &pool);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  SsdModel model{SsdModelOptions{}};
  SimEnv sim(PosixEnv(), &model);
  InternalKeyComparator icmp(BytewiseComparator());
  BloomFilterPolicy policy(10);
  Clock* clock = SystemClock();

  // Input rows, sorted as a memtable would deliver them (the index key's
  // city/status components are not monotonic in i).
  std::vector<std::pair<std::string, std::string>> rows;
  rows.reserve(entries);
  for (uint64_t i = 0; i < entries; ++i) {
    std::string ikey;
    AppendInternalKey(&ikey, IndexKey(i), 10, kTypeValue);
    char rowid[24];
    snprintf(rowid, sizeof(rowid), "o%016llu",
             static_cast<unsigned long long>(i));
    rows.emplace_back(ikey, rowid);
  }
  std::sort(rows.begin(), rows.end());

  struct StructureSpec {
    const char* name;
    L0Layout layout;
    PmTableOptions pm_opts;
  };
  std::vector<StructureSpec> structures = {
      {"PM table (g=16)", L0Layout::kPmTable, {.group_size = 16}},
      {"PM table (g=8)", L0Layout::kPmTable, {.group_size = 8}},
      {"Array-based", L0Layout::kArrayTable, {}},
      {"Array-snappy", L0Layout::kSnappyTable, {}},
      {"Array-snappy-group", L0Layout::kSnappyGroupTable, {}},
      {"SSTable", L0Layout::kSstable, {}},
  };

  std::vector<BuildResult> results;
  for (const auto& spec : structures) {
    L0FactoryOptions fopts;
    fopts.layout = spec.layout;
    fopts.pm_table = spec.pm_opts;
    fopts.icmp = &icmp;
    fopts.filter_policy = &policy;
    fopts.ssd_dir = dir;
    L0TableFactory factory(fopts, pool.get(), &sim);

    class VectorIter final : public Iterator {
     public:
      explicit VectorIter(
          const std::vector<std::pair<std::string, std::string>>* rows)
          : rows_(rows) {}
      bool Valid() const override { return pos_ < rows_->size(); }
      void SeekToFirst() override { pos_ = 0; }
      void SeekToLast() override { pos_ = rows_->size() - 1; }
      void Seek(const Slice&) override {}
      void Next() override { ++pos_; }
      void Prev() override { --pos_; }
      Slice key() const override { return (*rows_)[pos_].first; }
      Slice value() const override { return (*rows_)[pos_].second; }
      Status status() const override { return Status::OK(); }

     private:
      const std::vector<std::pair<std::string, std::string>>* rows_;
      size_t pos_ = 0;
    } input(&rows);
    input.SeekToFirst();

    pool->set_inject_latency(true);
    BuildResult result;
    uint64_t start = clock->NowNanos();
    s = factory.BuildFrom(&input, &result.table);
    result.build_nanos = clock->NowNanos() - start;
    pool->set_inject_latency(false);
    if (!s.ok()) {
      fprintf(stderr, "build %s: %s\n", spec.name, s.ToString().c_str());
      return 1;
    }
    result.image_bytes = result.table->size_bytes();
    results.push_back(std::move(result));
  }

  // (a) build duration, normalized to PM table (g=16).
  {
    TablePrinter out({"structure", "build time", "normalized",
                      "image size", "compression vs array"});
    double base = static_cast<double>(results[0].build_nanos);
    double array_size = static_cast<double>(results[2].image_bytes);
    for (size_t i = 0; i < structures.size(); ++i) {
      out.AddRow({structures[i].name,
                  TablePrinter::FmtNanos(results[i].build_nanos),
                  TablePrinter::Fmt(results[i].build_nanos / base, 2) + "x",
                  TablePrinter::FmtBytes(results[i].image_bytes),
                  TablePrinter::Fmt(results[i].image_bytes / array_size, 2) +
                      "x"});
    }
    out.Print("Fig. 6(a): minor compaction duration by structure");
  }

  // (b) random point reads.
  {
    TablePrinter out({"structure", "avg read latency", "normalized"});
    Random rnd(3);
    std::vector<double> latencies;
    for (size_t si = 0; si < structures.size(); ++si) {
      pool->set_inject_latency(true);
      uint64_t total = 0;
      for (uint64_t q = 0; q < lookups; ++q) {
        std::string user_key = IndexKey(rnd.Uniform(entries));
        LookupKey lkey(user_key, kMaxSequenceNumber);
        uint64_t start = clock->NowNanos();
        std::string value;
        bool found = false;
        Status rs;
        s = L0TableGet(*results[si].table, icmp, lkey, &value, &found, &rs);
        total += clock->NowNanos() - start;
        if (!s.ok() || !found) {
          fprintf(stderr, "read %s: lost key (%s)\n", structures[si].name,
                  s.ToString().c_str());
          return 1;
        }
      }
      pool->set_inject_latency(false);
      latencies.push_back(static_cast<double>(total) / lookups);
    }
    for (size_t i = 0; i < structures.size(); ++i) {
      out.AddRow({structures[i].name, TablePrinter::FmtNanos(latencies[i]),
                  TablePrinter::Fmt(latencies[i] / latencies[0], 2) + "x"});
    }
    out.Print("Fig. 6(b): random read latency by structure");
  }

  printf("\npaper shape: PM table fastest build (~40%% under Array, ~70%% "
         "under SSTable);\nPM table reads <= Array-based; Array-snappy ~2.3x "
         "Array reads; SSTable reads slowest\n");

  for (auto& r : results) r.table->Destroy();
  PosixEnv()->RemoveDirRecursively(dir);
  return 0;
}
