// Fig. 2(a) — time breakdown of flushing an array-based table to the PM
// level-0, by entry payload size. The paper's observation: once entries are
// >= ~40 B, more than half of the minor-compaction time is spent writing to
// the PM device — which is why compression (a smaller image) speeds up
// flushes.
//
// We build the same array table at several entry sizes and split the flush
// wall time into CPU (serialize/sort bookkeeping) vs PM-write (the injected
// device cost of landing + persisting the image).
//
// Flags: --entries (default 20000).

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/workload.h"
#include "memtable/internal_key.h"
#include "pm/pm_pool.h"
#include "pmtable/array_table.h"
#include "util/clock.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t entries = flags.Int("entries", 20000);

  std::string pool_path = "/tmp/pmblade_bench_fig2.pm";
  ::remove(pool_path.c_str());
  PmPoolOptions popts;
  popts.capacity = 512ull << 20;
  std::unique_ptr<PmPool> pool;
  Status s = PmPool::Open(pool_path, popts, &pool);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Clock* clock = SystemClock();

  TablePrinter out({"entry size", "total flush", "cpu (build)",
                    "pm write", "pm-write share"});

  for (size_t value_size : {8, 16, 40, 64, 128, 256}) {
    ValueGenerator values(value_size);

    // Pre-generate sorted input (the immutable memtable's contents).
    std::vector<std::pair<std::string, std::string>> rows;
    rows.reserve(entries);
    for (uint64_t i = 0; i < entries; ++i) {
      char key[40];
      snprintf(key, sizeof(key), "tbl|key%012llu",
               static_cast<unsigned long long>(i));
      std::string ikey;
      AppendInternalKey(&ikey, key, 10, kTypeValue);
      rows.emplace_back(ikey, values.For(i));
    }

    // Flush with the PM device model on; the PM-write component is the
    // model's deterministic cost for the bytes landed (bandwidth + persist
    // barrier), the CPU component is the remainder. Best of 3 runs tames
    // allocator warmup noise.
    pool->set_inject_latency(true);
    uint64_t full_nanos = UINT64_MAX;
    uint64_t image_bytes = 0;
    for (int run = 0; run < 3; ++run) {
      uint64_t start = clock->NowNanos();
      ArrayTableBuilder builder(pool.get());
      for (auto& [k, v] : rows) builder.Add(k, v);
      std::shared_ptr<ArrayTable> table;
      s = builder.Finish(&table);
      if (!s.ok()) {
        fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      full_nanos = std::min(full_nanos, clock->NowNanos() - start);
      image_bytes = table->size_bytes();
      table->Destroy();
    }
    pool->set_inject_latency(false);

    const auto& lat = pool->latency_options();
    uint64_t pm_nanos =
        static_cast<uint64_t>(lat.write_nanos_per_byte * image_bytes) +
        lat.persist_nanos;
    if (pm_nanos > full_nanos) pm_nanos = full_nanos;
    uint64_t cpu_nanos = full_nanos - pm_nanos;
    double share = full_nanos > 0 ? 100.0 * pm_nanos / full_nanos : 0;
    char label[32];
    snprintf(label, sizeof(label), "%zu B", value_size);
    out.AddRow({label, TablePrinter::FmtNanos(full_nanos),
                TablePrinter::FmtNanos(cpu_nanos),
                TablePrinter::FmtNanos(pm_nanos),
                TablePrinter::Fmt(share, 1) + "%"});
  }

  out.Print("Fig. 2(a): flush (minor compaction) time breakdown, "
            "array-based PM table");
  printf("\npaper shape: PM-write share exceeds ~50%% for entries >= 40 B\n");
  ::remove(pool_path.c_str());
  return 0;
}
