// Table IV — PM space released by internal compaction, by data skew. The
// paper writes a fixed volume of updates (20 GB), triggers internal
// compaction manually, and measures the space freed: 11.6 GB at uniform
// (skew 0.0) rising to 16.2 GB (~80% of the used PM) at skew 1.0, because
// skewed updates concentrate redundancy in the unsorted PM tables.
//
// Scaled run: fixed write volume through pmblade::DB (internal compaction
// disabled during the load), then DB::CompactLevel0() and the PM-usage
// delta.
//
// Flags: --write_bytes (default 8 MiB), --value_size (default 256).

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/workload.h"
#include "core/db.h"
#include "core/db_impl.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t write_bytes = flags.Int("write_bytes", 8 << 20);
  const size_t value_size = flags.Int("value_size", 256);

  TablePrinter out({"Data skew", "PM used before", "PM used after",
                    "Space released", "released %"});

  for (double skew : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    std::string dbname = "/tmp/pmblade_bench_table4";
    Options options;
    DestroyDB(options, dbname);
    options.memtable_bytes = 256 << 10;
    options.pm_pool_capacity = 256ull << 20;
    options.pm_latency.inject_latency = false;
    // Hold everything in level-0: no automatic compaction of any kind.
    options.enable_internal_compaction = false;
    options.enable_cost_model = false;
    options.l0_table_trigger = 1u << 30;
    options.cost.tau_m = 1ull << 40;

    std::unique_ptr<DB> db;
    Status s = DB::Open(options, dbname, &db);
    if (!s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }

    // Update-only load: fixed byte volume, skew-controlled key choice.
    const uint64_t num_keys = 20000;
    KeySpec spec;
    spec.prefix = "k";
    spec.num_keys = num_keys;
    spec.distribution =
        skew == 0.0 ? Distribution::kUniform : Distribution::kZipfian;
    spec.zipf_theta = skew;
    spec.seed = 99;
    KeyGenerator keys(spec);
    ValueGenerator values(value_size);

    uint64_t written = 0;
    while (written < write_bytes) {
      uint64_t index = keys.NextIndex();
      std::string value = values.For(index);
      s = db->Put(WriteOptions(), keys.KeyAt(index), value);
      if (!s.ok()) {
        fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      written += value.size() + 16;
    }
    s = db->FlushMemTable();
    if (!s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }

    auto* impl = static_cast<DBImpl*>(db.get());
    uint64_t before = impl->pm_pool()->UsedBytes();
    s = db->CompactLevel0();  // manual internal compaction
    if (!s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    uint64_t after = impl->pm_pool()->UsedBytes();
    uint64_t released = before > after ? before - after : 0;

    out.AddRow({TablePrinter::Fmt(skew, 1), TablePrinter::FmtBytes(before),
                TablePrinter::FmtBytes(after),
                TablePrinter::FmtBytes(released),
                TablePrinter::Fmt(100.0 * released / std::max<uint64_t>(
                                                         before, 1),
                                  1) +
                    "%"});

    db.reset();
    DestroyDB(options, dbname);
  }

  out.Print("Table IV: PM space released by internal compaction vs skew");
  printf("\npaper shape: released space grows with skew (more duplicate "
         "versions to merge away);\n~80%% of used PM released at skew 1.0\n");
  return 0;
}
