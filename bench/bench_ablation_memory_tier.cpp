// Ablation (the paper's future-work direction, Section VII): re-run the
// level-0 read/write experiment with the PM pool modeling different
// high-capacity memory tiers — Optane DCPMM (the paper's device),
// CXL-attached memory, and local DRAM as an upper bound.
//
// Expectation: the PM-Blade design transfers — every tier keeps the same
// orderings, with absolute level-0 latencies scaling with the tier's
// latency, and the SSD-side write savings unchanged (they come from the
// compaction models, not the device).
//
// Flags: --ops (default 8000), --value_size (default 256).

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/workload.h"
#include "core/db.h"
#include "core/db_impl.h"
#include "util/clock.h"

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t ops = flags.Int("ops", 8000);
  const size_t value_size = flags.Int("value_size", 256);

  struct Tier {
    const char* name;
    PmLatencyOptions latency;
  };
  const Tier tiers[] = {
      {"Optane DCPMM", PmLatencyOptions::Optane()},
      {"CXL memory", PmLatencyOptions::CxlMemory()},
      {"local DRAM", PmLatencyOptions::LocalDram()},
  };

  TablePrinter out({"level-0 tier", "avg get", "avg put", "flush total",
                    "ssd written"});

  for (const Tier& tier : tiers) {
    std::string dbname = "/tmp/pmblade_bench_tier";
    Options options;
    DestroyDB(options, dbname);
    options.memtable_bytes = 128 << 10;
    options.pm_pool_capacity = 128ull << 20;
    options.pm_latency = tier.latency;
    options.cost.tau_m = 1ull << 40;  // stay in level-0: isolate the tier

    std::unique_ptr<DB> db;
    Status s = DB::Open(options, dbname, &db);
    if (!s.ok()) {
      fprintf(stderr, "open: %s\n", s.ToString().c_str());
      return 1;
    }

    KeySpec spec;
    spec.num_keys = 10000;
    spec.zipf_theta = 0.8;
    KeyGenerator keys(spec);
    ValueGenerator values(value_size);
    Random rng(19);
    Clock* clock = SystemClock();

    uint64_t get_nanos = 0, put_nanos = 0, gets = 0, puts = 0;
    for (uint64_t op = 0; op < ops; ++op) {
      uint64_t index = keys.NextIndex();
      if (rng.OneIn(2)) {
        uint64_t t0 = clock->NowNanos();
        s = db->Put(WriteOptions(), keys.KeyAt(index), values.For(index));
        put_nanos += clock->NowNanos() - t0;
        ++puts;
      } else {
        std::string value;
        uint64_t t0 = clock->NowNanos();
        Status rs = db->Get(ReadOptions(), keys.KeyAt(index), &value);
        get_nanos += clock->NowNanos() - t0;
        ++gets;
        if (!rs.ok() && !rs.IsNotFound()) s = rs;
      }
      if (!s.ok()) {
        fprintf(stderr, "op: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    uint64_t ssd_written =
        static_cast<DBImpl*>(db.get())->ssd_model()->bytes_written();

    out.AddRow({tier.name,
                TablePrinter::FmtNanos(gets ? double(get_nanos) / gets : 0),
                TablePrinter::FmtNanos(puts ? double(put_nanos) / puts : 0),
                std::to_string(db->statistics().flushes()),
                TablePrinter::FmtBytes(ssd_written)});
    db.reset();
    DestroyDB(options, dbname);
  }

  out.Print("Ablation: PM-Blade level-0 on different memory tiers "
            "(paper Section VII future work)");
  printf("\nexpected shape: latencies scale with the tier (DRAM < CXL < "
         "Optane); SSD traffic\nis tier-independent (the compaction models "
         "decide what reaches the SSD)\n");
  return 0;
}
