// Table V — internal (PM) compaction duration vs a traditional SSD-based
// level-0 compaction of the same data, across value sizes. Paper: the PM
// compaction is roughly 2x faster (2.1 s vs 4 s at 512 B values, 1.4 s vs
// 2.8 s at 64 KB) because PM has no per-I/O base cost and far better
// latency than the SSD.
//
// Both sides compact the same 8 overlapping update-heavy tables through the
// same merge machinery (RunInternalCompaction); only the table medium
// differs: PM tables in the pool vs SSTables through the SSD model.
//
// Flags: --data_bytes (default 4194304).

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/workload.h"
#include "compaction/internal_compaction.h"
#include "env/sim_env.h"
#include "memtable/internal_key.h"
#include "pm/pm_pool.h"
#include "util/bloom.h"
#include "util/zipfian.h"

#include <algorithm>

using namespace pmblade;        // NOLINT
using namespace pmblade::bench; // NOLINT

namespace {

// Builds `num_tables` overlapping tables of ~data_bytes/num_tables each,
// zipfian-updated keys, through `factory`. Keys within a table are sorted.
std::vector<L0TableRef> BuildInputs(L0TableFactory* factory,
                                    uint64_t data_bytes, size_t value_size,
                                    int num_tables) {
  uint64_t entries =
      data_bytes / (value_size + 32);  // ~32 B of key + metadata
  uint64_t per_table = std::max<uint64_t>(entries / num_tables, 16);
  ZipfianGenerator zipf(per_table * num_tables, 0.8, 7);
  ValueGenerator values(value_size);
  SequenceNumber seq = 1;

  std::vector<L0TableRef> tables;
  for (int t = 0; t < num_tables; ++t) {
    std::vector<std::pair<std::string, std::string>> rows;
    for (uint64_t i = 0; i < per_table; ++i) {
      char key[48];
      snprintf(key, sizeof(key), "t|key%012llu",
               static_cast<unsigned long long>(zipf.Next()));
      std::string ikey;
      AppendInternalKey(&ikey, key, seq++, kTypeValue);
      rows.emplace_back(ikey, values.For(i));
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) {
                Slice ua = ExtractUserKey(a.first);
                Slice ub = ExtractUserKey(b.first);
                int c = ua.compare(ub);
                if (c != 0) return c < 0;
                return ExtractTag(a.first) > ExtractTag(b.first);
              });
    class VectorIter final : public Iterator {
     public:
      explicit VectorIter(
          const std::vector<std::pair<std::string, std::string>>* rows)
          : rows_(rows) {}
      bool Valid() const override { return pos_ < rows_->size(); }
      void SeekToFirst() override { pos_ = 0; }
      void SeekToLast() override {}
      void Seek(const Slice&) override {}
      void Next() override { ++pos_; }
      void Prev() override {}
      Slice key() const override { return (*rows_)[pos_].first; }
      Slice value() const override { return (*rows_)[pos_].second; }
      Status status() const override { return Status::OK(); }

     private:
      const std::vector<std::pair<std::string, std::string>>* rows_;
      size_t pos_ = 0;
    } input(&rows);
    input.SeekToFirst();
    L0TableRef table;
    Status s = factory->BuildFrom(&input, &table);
    if (!s.ok() || table == nullptr) {
      fprintf(stderr, "build input: %s\n", s.ToString().c_str());
      exit(1);
    }
    tables.push_back(std::move(table));
  }
  // Newest first for the merge.
  std::reverse(tables.begin(), tables.end());
  return tables;
}

uint64_t CompactAndTime(const InternalKeyComparator& icmp,
                        const std::vector<L0TableRef>& inputs,
                        L0TableFactory* factory) {
  InternalCompactionOptions copts;
  copts.target_table_bytes = 64ull << 20;  // single output
  std::vector<L0TableRef> outputs;
  InternalCompactionStats stats;
  Status s =
      RunInternalCompaction(copts, icmp, inputs, factory, &outputs, &stats);
  if (!s.ok()) {
    fprintf(stderr, "compaction: %s\n", s.ToString().c_str());
    exit(1);
  }
  for (auto& out : outputs) out->Destroy();
  return stats.duration_nanos;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t data_bytes = flags.Int("data_bytes", 4 << 20);

  std::string dir = "/tmp/pmblade_bench_table5";
  PosixEnv()->RemoveDirRecursively(dir);
  PosixEnv()->CreateDir(dir);

  PmPoolOptions popts;
  popts.capacity = 1ull << 30;
  std::unique_ptr<PmPool> pool;
  Status s = PmPool::Open(dir + "/pool.pm", popts, &pool);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  SsdModel model{SsdModelOptions{}};
  SimEnv sim(PosixEnv(), &model);
  InternalKeyComparator icmp(BytewiseComparator());
  BloomFilterPolicy policy(10);

  std::vector<std::string> row_pm = {"PMBlade (internal, on PM)"};
  std::vector<std::string> row_ssd = {"PMBlade-SSD (on SSD)"};
  std::vector<std::string> header = {"Value size"};

  for (size_t value_size : {512, 1024, 4096, 16384, 65536}) {
    char label[32];
    if (value_size >= 1024) {
      snprintf(label, sizeof(label), "%zuKB", value_size / 1024);
    } else {
      snprintf(label, sizeof(label), "%zuB", value_size);
    }
    header.push_back(label);

    // PM side.
    {
      L0FactoryOptions fopts;
      fopts.layout = L0Layout::kPmTable;
      fopts.icmp = &icmp;
      L0TableFactory factory(fopts, pool.get(), nullptr);
      pool->set_inject_latency(false);
      auto inputs = BuildInputs(&factory, data_bytes, value_size, 8);
      pool->set_inject_latency(true);
      uint64_t nanos = CompactAndTime(icmp, inputs, &factory);
      pool->set_inject_latency(false);
      for (auto& t : inputs) t->Destroy();
      row_pm.push_back(TablePrinter::FmtNanos(nanos));
    }
    // SSD side.
    {
      L0FactoryOptions fopts;
      fopts.layout = L0Layout::kSstable;
      fopts.icmp = &icmp;
      fopts.filter_policy = &policy;
      fopts.ssd_dir = dir;
      L0TableFactory factory(fopts, pool.get(), &sim);
      auto inputs = BuildInputs(&factory, data_bytes, value_size, 8);
      uint64_t nanos = CompactAndTime(icmp, inputs, &factory);
      for (auto& t : inputs) t->Destroy();
      row_ssd.push_back(TablePrinter::FmtNanos(nanos));
    }
  }

  TablePrinter out(header);
  out.AddRow(row_pm);
  out.AddRow(row_ssd);
  out.Print("Table V: compaction duration, PM level-0 vs SSD level-0");
  printf("\npaper shape: the PM-side compaction runs ~2x faster across all "
         "value sizes\n");
  PosixEnv()->RemoveDirRecursively(dir);
  return 0;
}
