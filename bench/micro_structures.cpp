// google-benchmark microbenchmarks for the storage primitives: table
// builds and point lookups across L0 structures (short DB-style keys and
// long index-style keys), plus the foundational codecs (CRC32C, LZ,
// varints, skiplist, zipfian sampling).
//
// Latency injection is OFF here: these measure pure CPU costs of the
// implementations, complementing the bench_* harnesses which measure
// modeled device behaviour.

#include <benchmark/benchmark.h>

#include <map>

#include "compress/lz.h"
#include "memtable/skiplist_memtable.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "pm/pm_pool.h"
#include "pmtable/array_table.h"
#include "pmtable/pm_table_builder.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "util/zipfian.h"

namespace pmblade {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq) {
  std::string out;
  AppendInternalKey(&out, user_key, seq, kTypeValue);
  return out;
}

std::string ShortKey(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "t00|o%010llu",
           static_cast<unsigned long long>(i));
  return buf;
}

std::string LongKey(uint64_t i) {
  char buf[128];
  snprintf(buf, sizeof(buf),
           "idx_orders_by_user_city_status|user%016llu|city%08llu|o%012llu",
           static_cast<unsigned long long>(i / 4),
           static_cast<unsigned long long>(i % 97),
           static_cast<unsigned long long>(i));
  return buf;
}

class PoolFixture {
 public:
  PoolFixture() {
    path_ = "/tmp/pmblade_micro.pm";
    ::remove(path_.c_str());
    PmPoolOptions opts;
    opts.capacity = 512ull << 20;
    opts.latency.inject_latency = false;
    Status s = PmPool::Open(path_, opts, &pool_);
    if (!s.ok()) abort();
  }
  ~PoolFixture() { ::remove(path_.c_str()); }
  PmPool* pool() { return pool_.get(); }

 private:
  std::string path_;
  std::unique_ptr<PmPool> pool_;
};

PoolFixture* Fixture() {
  static PoolFixture fixture;
  return &fixture;
}

template <typename Builder, typename TableType>
std::shared_ptr<TableType> BuildSorted(Builder& builder, bool long_keys,
                                       int n) {
  std::map<std::string, std::string> sorted;
  for (int i = 0; i < n; ++i) {
    sorted[long_keys ? LongKey(i) : ShortKey(i)] = "value-" +
                                                   std::to_string(i);
  }
  for (auto& [k, v] : sorted) builder.Add(IKey(k, 10), v);
  std::shared_ptr<TableType> table;
  Status s = builder.Finish(&table);
  if (!s.ok()) abort();
  return table;
}

void BM_PmTableBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PmTableBuilder builder(Fixture()->pool(), PmTableOptions{});
    auto table = BuildSorted<PmTableBuilder, PmTable>(builder, false, n);
    benchmark::DoNotOptimize(table);
    table->Destroy();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PmTableBuild)->Arg(1000)->Arg(10000);

void BM_ArrayTableBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ArrayTableBuilder builder(Fixture()->pool());
    auto table = BuildSorted<ArrayTableBuilder, ArrayTable>(builder, false,
                                                            n);
    benchmark::DoNotOptimize(table);
    table->Destroy();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ArrayTableBuild)->Arg(1000)->Arg(10000);

template <typename TableType>
void SeekLoop(benchmark::State& state, const TableType& table, bool long_keys,
              int n) {
  InternalKeyComparator icmp(BytewiseComparator());
  Random rnd(7);
  for (auto _ : state) {
    uint64_t i = rnd.Uniform(n);
    LookupKey lkey(long_keys ? LongKey(i) : ShortKey(i),
                   kMaxSequenceNumber);
    std::string value;
    bool found = false;
    Status rs;
    Status s = L0TableGet(*table, icmp, lkey, &value, &found, &rs);
    if (!s.ok() || !found) abort();
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PmTableGetShortKeys(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PmTableBuilder builder(Fixture()->pool(), PmTableOptions{});
  auto table = BuildSorted<PmTableBuilder, PmTable>(builder, false, n);
  SeekLoop(state, table, false, n);
  table->Destroy();
}
BENCHMARK(BM_PmTableGetShortKeys)->Arg(10000)->Arg(100000);

void BM_PmTableGetLongKeys(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PmTableBuilder builder(Fixture()->pool(), PmTableOptions{});
  auto table = BuildSorted<PmTableBuilder, PmTable>(builder, true, n);
  SeekLoop(state, table, true, n);
  table->Destroy();
}
BENCHMARK(BM_PmTableGetLongKeys)->Arg(10000)->Arg(100000);

void BM_ArrayTableGetShortKeys(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ArrayTableBuilder builder(Fixture()->pool());
  auto table =
      BuildSorted<ArrayTableBuilder, ArrayTable>(builder, false, n);
  SeekLoop(state, table, false, n);
  table->Destroy();
}
BENCHMARK(BM_ArrayTableGetShortKeys)->Arg(10000)->Arg(100000);

void BM_ArrayTableGetLongKeys(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ArrayTableBuilder builder(Fixture()->pool());
  auto table = BuildSorted<ArrayTableBuilder, ArrayTable>(builder, true, n);
  SeekLoop(state, table, true, n);
  table->Destroy();
}
BENCHMARK(BM_ArrayTableGetLongKeys)->Arg(10000)->Arg(100000);

void BM_Crc32c(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_LzCompress(benchmark::State& state) {
  Random rnd(5);
  std::string data;
  for (int i = 0; i < state.range(0) / 32; ++i) {
    data += "order-status:paid;rider:assigned;";
    rnd.RandomBytes(8, &data);
  }
  for (auto _ : state) {
    std::string out;
    lz::Compress(data, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_LzCompress)->Arg(4096)->Arg(65536);

void BM_LzDecompress(benchmark::State& state) {
  Random rnd(5);
  std::string data;
  for (int i = 0; i < state.range(0) / 32; ++i) {
    data += "order-status:paid;rider:assigned;";
    rnd.RandomBytes(8, &data);
  }
  std::string compressed;
  lz::Compress(data, &compressed);
  for (auto _ : state) {
    std::string out;
    if (!lz::Decompress(compressed, &out).ok()) abort();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_LzDecompress)->Arg(4096)->Arg(65536);

void BM_MemTableAdd(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  uint64_t seq = 1;
  Random rnd(3);
  std::string key;
  for (auto _ : state) {
    rnd.RandomString(16, &key);
    mem->Add(seq++, kTypeValue, key, "value");
  }
  state.SetItemsProcessed(state.iterations());
  mem->Unref();
}
BENCHMARK(BM_MemTableAdd);

void BM_MemTableGet(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  for (uint64_t i = 0; i < 100000; ++i) {
    mem->Add(i + 1, kTypeValue, ShortKey(i), "value");
  }
  Random rnd(9);
  for (auto _ : state) {
    std::string value;
    Status s;
    LookupKey lkey(ShortKey(rnd.Uniform(100000)), kMaxSequenceNumber);
    if (!mem->Get(lkey, &value, &s)) abort();
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations());
  mem->Unref();
}
BENCHMARK(BM_MemTableGet);

void BM_ZipfianNext(benchmark::State& state) {
  ScrambledZipfianGenerator gen(1'000'000, 0.99, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext);

// ---- observability hot paths ----
// These bound the overhead instrumentation adds to Get/Put: a counter
// increment, a sharded-histogram observation, and the inactive-bus check an
// emission site pays when nothing listens.

void BM_ObsCounterInc(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Inc();
  }
  benchmark::DoNotOptimize(counter->Value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  ShardedHistogram hist;
  uint64_t v = 1;
  for (auto _ : state) {
    hist.Add(v);
    v = v * 1664525 + 1013904223;  // LCG; spread across buckets
    v &= 0xFFFFF;
  }
  benchmark::DoNotOptimize(hist.Merged().count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsEventBusInactive(benchmark::State& state) {
  obs::EventBus bus;
  // The emission-site pattern: check active(), skip building the event.
  for (auto _ : state) {
    if (bus.active()) {
      bus.Emit(obs::Event(obs::EventType::kFlushBegin, 0));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsEventBusInactive);

void BM_ObsTraceRecord(benchmark::State& state) {
  obs::EventBus bus;
  obs::TraceRecorder trace(256);
  bus.Subscribe(&trace);
  obs::Event event(obs::EventType::kWalSync, 1);
  event.With("bytes", 4096).With("duration_nanos", 12345);
  for (auto _ : state) {
    bus.Emit(event);
  }
  benchmark::DoNotOptimize(trace.recorded());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsTraceRecord);

}  // namespace
}  // namespace pmblade

BENCHMARK_MAIN();
