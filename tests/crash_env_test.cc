// Unit tests for the crash-simulation primitives: CrashEnv power cuts
// (unsynced-data loss, torn tails, dead-state semantics, journaled
// metadata) and PmPool persist-granularity crash mode.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "env/crash_env.h"
#include "pm/pm_pool.h"
#include "util/sync_point.h"

namespace pmblade {
namespace {

class CrashEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "pmblade_crash_env_test";
    PosixEnv()->RemoveDirRecursively(dir_);
    ASSERT_TRUE(PosixEnv()->CreateDir(dir_).ok());
    env_.reset(new CrashEnv(PosixEnv(), 1234));
  }
  void TearDown() override { PosixEnv()->RemoveDirRecursively(dir_); }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::string ReadAll(const std::string& name) {
    std::string data;
    EXPECT_TRUE(ReadFileToString(PosixEnv(), Path(name), &data).ok());
    return data;
  }

  std::string dir_;
  std::unique_ptr<CrashEnv> env_;
};

TEST_F(CrashEnvTest, UnsyncedDataVanishesAtPowerCut) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile(Path("a"), &f).ok());
  ASSERT_TRUE(f->Append("hello world").ok());
  ASSERT_TRUE(f->Flush().ok());  // flushed but NOT synced
  env_->PowerCut();
  EXPECT_EQ(ReadAll("a"), "");
}

TEST_F(CrashEnvTest, SyncedPrefixAlwaysSurvives) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile(Path("a"), &f).ok());
  ASSERT_TRUE(f->Append("durable|").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("volatile").ok());
  env_->PowerCut();
  EXPECT_EQ(ReadAll("a"), "durable|");
}

TEST_F(CrashEnvTest, KeepUnsyncedCutsFilesMidWrite) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile(Path("a"), &f).ok());
  ASSERT_TRUE(f->Append("sync|").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append(std::string(1000, 'x')).ok());
  PowerCutOptions cut;
  cut.keep_unsynced = true;
  env_->PowerCut(cut);
  std::string data = ReadAll("a");
  // The synced prefix is intact; some random amount of the tail survives.
  ASSERT_GE(data.size(), 5u);
  EXPECT_LE(data.size(), 1005u);
  EXPECT_EQ(data.substr(0, 5), "sync|");
}

TEST_F(CrashEnvTest, TornTailNeverDamagesSyncedBytes) {
  for (int trial = 0; trial < 20; ++trial) {
    std::string name = "torn" + std::to_string(trial);
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env_->NewWritableFile(Path(name), &f).ok());
    ASSERT_TRUE(f->Append("SYNCED-PREFIX:").ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Append(std::string(600, 'u')).ok());
    f.reset();
    PowerCutOptions cut;
    cut.keep_unsynced = true;
    cut.tear_last_block = true;
    env_->PowerCut(cut);
    std::string data = ReadAll(name);
    ASSERT_GE(data.size(), 14u);
    EXPECT_EQ(data.substr(0, 14), "SYNCED-PREFIX:");
    env_->ResetState();
  }
}

TEST_F(CrashEnvTest, DeadEnvFailsEveryMutation) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile(Path("a"), &f).ok());
  env_->PowerCut();
  EXPECT_TRUE(env_->dead());
  EXPECT_TRUE(f->Append("x").IsIOError());
  EXPECT_TRUE(f->Sync().IsIOError());
  std::unique_ptr<WritableFile> g;
  EXPECT_TRUE(env_->NewWritableFile(Path("b"), &g).IsIOError());
  EXPECT_TRUE(env_->RemoveFile(Path("a")).IsIOError());
  EXPECT_TRUE(env_->RenameFile(Path("a"), Path("b")).IsIOError());
  EXPECT_TRUE(env_->CreateDir(Path("d")).IsIOError());
  // Reads still work: the "disk" survived, the machine died.
  std::unique_ptr<SequentialFile> r;
  EXPECT_TRUE(env_->NewSequentialFile(Path("a"), &r).ok());
  // Reboot.
  env_->ResetState();
  EXPECT_FALSE(env_->dead());
  EXPECT_TRUE(env_->NewWritableFile(Path("b"), &g).ok());
}

TEST_F(CrashEnvTest, RenameTransfersSyncedState) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile(Path("tmp"), &f).ok());
  ASSERT_TRUE(f->Append("manifest-body").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Close().ok());
  // Journaled metadata: the rename is durable the moment it is issued.
  ASSERT_TRUE(env_->RenameFile(Path("tmp"), Path("final")).ok());
  env_->PowerCut();
  EXPECT_FALSE(PosixEnv()->FileExists(Path("tmp")));
  EXPECT_EQ(ReadAll("final"), "manifest-body");
}

TEST_F(CrashEnvTest, RenameOverUnsyncedTargetDropsItsTracking) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile(Path("target"), &f).ok());
  ASSERT_TRUE(f->Append("old-unsynced").ok());
  f.reset();
  std::unique_ptr<WritableFile> g;
  ASSERT_TRUE(env_->NewWritableFile(Path("src"), &g).ok());
  ASSERT_TRUE(g->Append("new-synced").ok());
  ASSERT_TRUE(g->Sync().ok());
  g.reset();
  ASSERT_TRUE(env_->RenameFile(Path("src"), Path("target")).ok());
  env_->PowerCut();
  EXPECT_EQ(ReadAll("target"), "new-synced");
}

// ---------------------------------------------------------------------------
// PmPool persist-granularity crash mode
// ---------------------------------------------------------------------------

class PmCrashSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "pmblade_crash_pool.pm";
    ::remove(path_.c_str());
  }
  void TearDown() override { ::remove(path_.c_str()); }

  PmPoolOptions CrashOptions() {
    PmPoolOptions popts;
    popts.capacity = 4 << 20;
    popts.latency.inject_latency = false;
    popts.crash_sim = true;
    return popts;
  }

  std::string path_;
};

TEST_F(PmCrashSimTest, OnlyPersistedWordsSurviveTheCrash) {
  uint64_t id = 0;
  {
    std::unique_ptr<PmPool> pool;
    ASSERT_TRUE(PmPool::Open(path_, CrashOptions(), &pool).ok());
    PmPool::ObjectInfo info;
    char* data = nullptr;
    ASSERT_TRUE(pool->Allocate(256, 1, &info, &data).ok());
    id = info.id;
    memset(data, 0xAB, 256);
    pool->Persist(data, 128);  // first half explicitly persisted
    // Survival probability 0: every unpersisted word reverts.
    pool->SimulateCrash(/*seed=*/7, /*unpersisted_survival_prob=*/0.0);
    EXPECT_TRUE(pool->crash_sim_dead());
    // Dead pool refuses new work.
    PmPool::ObjectInfo info2;
    char* data2 = nullptr;
    EXPECT_TRUE(pool->Allocate(64, 1, &info2, &data2).IsIOError());
  }
  // Reopen the durable image (plain mode: read what the "device" kept).
  PmPoolOptions verify;
  verify.capacity = 4 << 20;
  verify.latency.inject_latency = false;
  std::unique_ptr<PmPool> pool;
  ASSERT_TRUE(PmPool::Open(path_, verify, &pool).ok());
  char* data = pool->DataFor(id);
  ASSERT_NE(data, nullptr);
  for (int i = 0; i < 128; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(data[i]), 0xABu) << "offset " << i;
  }
  for (int i = 128; i < 256; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(data[i]), 0u) << "offset " << i;
  }
}

TEST_F(PmCrashSimTest, SurvivalProbabilityOneKeepsEverything) {
  uint64_t id = 0;
  {
    std::unique_ptr<PmPool> pool;
    ASSERT_TRUE(PmPool::Open(path_, CrashOptions(), &pool).ok());
    PmPool::ObjectInfo info;
    char* data = nullptr;
    ASSERT_TRUE(pool->Allocate(256, 1, &info, &data).ok());
    id = info.id;
    memset(data, 0xCD, 256);  // never persisted
    pool->SimulateCrash(/*seed=*/9, /*unpersisted_survival_prob=*/1.0);
  }
  PmPoolOptions verify;
  verify.capacity = 4 << 20;
  verify.latency.inject_latency = false;
  std::unique_ptr<PmPool> pool;
  ASSERT_TRUE(PmPool::Open(path_, verify, &pool).ok());
  char* data = pool->DataFor(id);
  ASSERT_NE(data, nullptr);
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(data[i]), 0xCDu) << "offset " << i;
  }
}

TEST_F(PmCrashSimTest, StoresWithoutPersistAreNotDurable) {
  // The MAP_PRIVATE mapping must keep plain stores out of the file even
  // across a clean close: only Persist() writes through.
  uint64_t id = 0;
  {
    std::unique_ptr<PmPool> pool;
    ASSERT_TRUE(PmPool::Open(path_, CrashOptions(), &pool).ok());
    PmPool::ObjectInfo info;
    char* data = nullptr;
    ASSERT_TRUE(pool->Allocate(64, 1, &info, &data).ok());
    id = info.id;
    memset(data, 0xEE, 64);
    // No crash, clean close — but also no Persist of the data.
  }
  PmPoolOptions verify;
  verify.capacity = 4 << 20;
  verify.latency.inject_latency = false;
  std::unique_ptr<PmPool> pool;
  ASSERT_TRUE(PmPool::Open(path_, verify, &pool).ok());
  char* data = pool->DataFor(id);
  ASSERT_NE(data, nullptr);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(data[i]), 0u) << "offset " << i;
  }
}

#ifdef PMBLADE_SYNC_POINTS
TEST_F(PmCrashSimTest, CrashBeforeCommitGarbageCollectsTheAllocation) {
  // Power fails between persisting an allocation's directory fields and
  // persisting its state=live commit word: recovery must not see the object.
  std::unique_ptr<PmPool> pool;
  ASSERT_TRUE(PmPool::Open(path_, CrashOptions(), &pool).ok());
  SyncPoint::GetInstance()->SetCallBack(
      "PmPool::Allocate:BeforeCommit",
      [&](void*) { pool->SimulateCrash(11, 0.0); });
  SyncPoint::GetInstance()->EnableProcessing();
  PmPool::ObjectInfo info;
  char* data = nullptr;
  (void)pool->Allocate(64, 1, &info, &data);
  SyncPoint::GetInstance()->Reset();
  pool.reset();

  PmPoolOptions verify;
  verify.capacity = 4 << 20;
  verify.latency.inject_latency = false;
  ASSERT_TRUE(PmPool::Open(path_, verify, &pool).ok());
  EXPECT_TRUE(pool->ListObjects().empty());
}
#endif  // PMBLADE_SYNC_POINTS

}  // namespace
}  // namespace pmblade
