// Tests for the version helpers (run iterator, run point lookup), Options
// sanitization and DB statistics accounting.

#include <gtest/gtest.h>

#include "core/options.h"
#include "core/statistics.h"
#include "core/version.h"
#include "pm/pm_pool.h"
#include "pmtable/pm_table_builder.h"

namespace pmblade {
namespace {

class RunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "pmblade_run_test.pm";
    ::remove(path_.c_str());
    PmPoolOptions popts;
    popts.capacity = 32 << 20;
    popts.latency.inject_latency = false;
    ASSERT_TRUE(PmPool::Open(path_, popts, &pool_).ok());
  }
  void TearDown() override {
    pool_.reset();
    ::remove(path_.c_str());
  }

  /// Builds one table with keys [lo, hi), all at `seq`.
  L0TableRef Build(int lo, int hi, SequenceNumber seq = 10) {
    PmTableBuilder builder(pool_.get(), PmTableOptions{});
    for (int i = lo; i < hi; ++i) {
      char key[24];
      snprintf(key, sizeof(key), "key%05d", i);
      std::string ikey;
      AppendInternalKey(&ikey, key, seq, kTypeValue);
      builder.Add(ikey, "v" + std::to_string(i));
    }
    std::shared_ptr<PmTable> t;
    EXPECT_TRUE(builder.Finish(&t).ok());
    return t;
  }

  std::string path_;
  std::unique_ptr<PmPool> pool_;
  InternalKeyComparator icmp_{BytewiseComparator()};
};

TEST_F(RunTest, RunIteratorConcatenatesTables) {
  std::vector<L0TableRef> run = {Build(0, 100), Build(100, 200),
                                 Build(200, 300)};
  std::unique_ptr<Iterator> it(NewRunIterator(&icmp_, run));
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) ++count;
  EXPECT_EQ(count, 300);
  EXPECT_TRUE(it->status().ok());
}

TEST_F(RunTest, RunIteratorSeekBinarySearchesBoundaries) {
  std::vector<L0TableRef> run = {Build(0, 100), Build(100, 200),
                                 Build(200, 300)};
  std::unique_ptr<Iterator> it(NewRunIterator(&icmp_, run));
  std::string seek;
  AppendInternalKey(&seek, "key00150", kMaxSequenceNumber,
                    kValueTypeForSeek);
  it->Seek(seek);
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "key00150");
  // Before everything / after everything.
  seek.clear();
  AppendInternalKey(&seek, "a", kMaxSequenceNumber, kValueTypeForSeek);
  it->Seek(seek);
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "key00000");
  seek.clear();
  AppendInternalKey(&seek, "z", kMaxSequenceNumber, kValueTypeForSeek);
  it->Seek(seek);
  EXPECT_FALSE(it->Valid());
}

TEST_F(RunTest, RunIteratorBackwardAcrossTables) {
  std::vector<L0TableRef> run = {Build(0, 5), Build(5, 10)};
  std::unique_ptr<Iterator> it(NewRunIterator(&icmp_, run));
  it->SeekToLast();
  for (int i = 9; i >= 0; --i) {
    ASSERT_TRUE(it->Valid()) << i;
    char key[24];
    snprintf(key, sizeof(key), "key%05d", i);
    EXPECT_EQ(ExtractUserKey(it->key()).ToString(), key);
    it->Prev();
  }
  EXPECT_FALSE(it->Valid());
}

TEST_F(RunTest, RunGetFindsCorrectTable) {
  std::vector<L0TableRef> run = {Build(0, 100), Build(100, 200)};
  LookupKey lkey("key00150", kMaxSequenceNumber);
  std::string value;
  bool found = false;
  Status result;
  ASSERT_TRUE(RunGet(run, icmp_, lkey, &value, &found, &result).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(value, "v150");
  // Key between tables' ranges but absent.
  LookupKey absent("key00099x", kMaxSequenceNumber);
  found = true;
  ASSERT_TRUE(RunGet(run, icmp_, absent, &value, &found, &result).ok());
  EXPECT_FALSE(found);
  // Empty run.
  ASSERT_TRUE(RunGet({}, icmp_, lkey, &value, &found, &result).ok());
  EXPECT_FALSE(found);
}

TEST(OptionsTest, SanitizeFillsDefaults) {
  Options options;
  ASSERT_TRUE(options.Sanitize().ok());
  EXPECT_NE(options.env, nullptr);
  EXPECT_NE(options.raw_env, nullptr);
  EXPECT_NE(options.logger, nullptr);
  EXPECT_NE(options.clock, nullptr);
}

TEST(OptionsTest, SanitizeRejectsBadValues) {
  Options options;
  options.memtable_bytes = 16;
  EXPECT_TRUE(options.Sanitize().IsInvalidArgument());

  options = Options();
  options.pm_pool_capacity = 1024;
  EXPECT_TRUE(options.Sanitize().IsInvalidArgument());

  options = Options();
  options.partition_boundaries = {"b", "b"};
  EXPECT_TRUE(options.Sanitize().IsInvalidArgument());

  options = Options();
  options.partition_boundaries = {"c", "a"};
  EXPECT_TRUE(options.Sanitize().IsInvalidArgument());
}

TEST(OptionsTest, SanitizeClampsCompactionKnobs) {
  Options options;
  options.major.concurrency = 0;
  options.major.worker_threads = -3;
  options.major.max_io_q = 0;
  ASSERT_TRUE(options.Sanitize().ok());
  EXPECT_GE(options.major.concurrency, 1);
  EXPECT_GE(options.major.worker_threads, 1);
  EXPECT_GE(options.major.max_io_q, 1);
}

TEST(DbStatisticsTest, ReadSourceAccounting) {
  DbStatistics stats;
  stats.RecordRead(ReadSource::kMemtable, 100);
  stats.RecordRead(ReadSource::kPmLevel0, 200);
  stats.RecordRead(ReadSource::kPmLevel0, 300);
  stats.RecordRead(ReadSource::kSsdLevel1, 400);
  stats.RecordRead(ReadSource::kNotFound, 500);
  EXPECT_EQ(stats.reads(ReadSource::kMemtable), 1u);
  EXPECT_EQ(stats.reads(ReadSource::kPmLevel0), 2u);
  EXPECT_EQ(stats.total_reads(), 5u);
  // Hit ratio counts only successful reads: 3 fast / 4 answered.
  EXPECT_DOUBLE_EQ(stats.PmHitRatio(), 3.0 / 4.0);
  EXPECT_EQ(stats.GetLatencyHistogram().count(), 5u);
}

TEST(DbStatisticsTest, WriteAndCompactionAccounting) {
  DbStatistics stats;
  stats.RecordWrite(1000, 50);
  stats.RecordWrite(2000, 60);
  stats.AddFlush();
  stats.AddInternalCompaction(5000, 3000);
  stats.AddMajorCompaction(9000);
  EXPECT_EQ(stats.writes(), 2u);
  EXPECT_EQ(stats.user_bytes_written(), 3000u);
  EXPECT_EQ(stats.flushes(), 1u);
  EXPECT_EQ(stats.internal_compactions(), 1u);
  EXPECT_EQ(stats.major_compactions(), 1u);
  stats.Reset();
  EXPECT_EQ(stats.writes(), 0u);
  EXPECT_EQ(stats.total_reads(), 0u);
}

TEST(DbStatisticsTest, ToStringContainsKeyFields) {
  DbStatistics stats;
  stats.RecordRead(ReadSource::kMemtable, 10);
  std::string s = stats.ToString();
  EXPECT_NE(s.find("mem=1"), std::string::npos);
  EXPECT_NE(s.find("flushes=0"), std::string::npos);
}

}  // namespace
}  // namespace pmblade
