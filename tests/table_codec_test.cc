// Tests for the record/index-table codec layered over KvEngine.

#include <gtest/gtest.h>

#include "benchutil/table_codec.h"
#include "core/db.h"

namespace pmblade {
namespace bench {
namespace {

class TableCodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_codec_test";
    Options options;
    DestroyDB(options, dbname_);
    options.memtable_bytes = 64 << 10;
    options.pm_pool_capacity = 32 << 20;
    options.pm_latency.inject_latency = false;
    options_ = options;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dbname_, &db).ok());
    db_ = std::move(db);

    schema_.table_id = 3;
    schema_.num_columns = 5;
    schema_.indexed_columns = {1, 3};
    codec_.reset(new TableCodec(schema_));
  }
  void TearDown() override {
    db_.reset();
    DestroyDB(options_, dbname_);
  }

  std::vector<std::string> Row(const std::string& tag) {
    return {"pkcol", "city-" + tag, "payload-" + tag, "status-" + tag,
            "extra"};
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
  TableSchema schema_;
  std::unique_ptr<TableCodec> codec_;
};

TEST_F(TableCodecTest, RowEncodeDecodeRoundTrip) {
  std::vector<std::string> columns = Row("x");
  std::string encoded;
  codec_->EncodeRow(columns, &encoded);
  std::vector<std::string> decoded;
  ASSERT_TRUE(codec_->DecodeRow(encoded, &decoded));
  EXPECT_EQ(decoded, columns);
}

TEST_F(TableCodecTest, DecodeRejectsTruncation) {
  std::string encoded;
  codec_->EncodeRow(Row("x"), &encoded);
  std::vector<std::string> decoded;
  EXPECT_FALSE(codec_->DecodeRow(
      Slice(encoded.data(), encoded.size() - 3), &decoded));
  // Trailing garbage also rejected.
  encoded += "junk";
  EXPECT_FALSE(codec_->DecodeRow(encoded, &decoded));
}

TEST_F(TableCodecTest, KeysEmbedTableAndPrimaryKey) {
  EXPECT_EQ(codec_->RowKey(0x1f), "r003|000000000000001f");
  std::string ikey = codec_->IndexKey(1, "city-a", 0x1f);
  EXPECT_TRUE(Slice(ikey).starts_with("i003_01|city-a|"));
  uint64_t pk = 0;
  ASSERT_TRUE(TableCodec::ParsePrimaryKey(ikey, &pk));
  EXPECT_EQ(pk, 0x1fu);
  ASSERT_TRUE(TableCodec::ParsePrimaryKey(codec_->RowKey(77), &pk));
  EXPECT_EQ(pk, 77u);
  EXPECT_FALSE(TableCodec::ParsePrimaryKey("short", &pk));
  EXPECT_FALSE(TableCodec::ParsePrimaryKey("zzzzzzzzzzzzzzzzzzzz", &pk));
}

TEST_F(TableCodecTest, InsertAndGetRow) {
  ASSERT_TRUE(codec_->InsertRow(db_.get(), 7, Row("seven")).ok());
  std::vector<std::string> columns;
  ASSERT_TRUE(codec_->GetRow(db_.get(), 7, &columns).ok());
  EXPECT_EQ(columns[1], "city-seven");
  EXPECT_TRUE(codec_->GetRow(db_.get(), 8, &columns).IsNotFound());
}

TEST_F(TableCodecTest, InsertRejectsWrongArity) {
  std::vector<std::string> too_few = {"a", "b"};
  EXPECT_TRUE(
      codec_->InsertRow(db_.get(), 1, too_few).IsInvalidArgument());
}

TEST_F(TableCodecTest, IndexQueryFindsMatchingRows) {
  for (uint64_t pk = 0; pk < 30; ++pk) {
    auto columns = Row(pk % 3 == 0 ? "hot" : "cold" + std::to_string(pk));
    ASSERT_TRUE(codec_->InsertRow(db_.get(), pk, columns).ok());
  }
  std::vector<uint64_t> pks;
  ASSERT_TRUE(
      codec_->IndexQuery(db_.get(), 1, "city-hot", 100, &pks).ok());
  EXPECT_EQ(pks.size(), 10u);  // every third row
  for (uint64_t pk : pks) EXPECT_EQ(pk % 3, 0u);
  // Limit respected.
  ASSERT_TRUE(codec_->IndexQuery(db_.get(), 1, "city-hot", 4, &pks).ok());
  EXPECT_EQ(pks.size(), 4u);
  // Unindexed column rejected.
  EXPECT_TRUE(codec_->IndexQuery(db_.get(), 2, "x", 10, &pks)
                  .IsInvalidArgument());
}

TEST_F(TableCodecTest, UpdateColumnRefreshesIndex) {
  ASSERT_TRUE(codec_->InsertRow(db_.get(), 5, Row("old")).ok());
  ASSERT_TRUE(codec_->UpdateColumn(db_.get(), 5, 1, "city-new").ok());

  // New value matches; stale index entry for the old value must NOT match
  // (index entries are verified through the row).
  std::vector<uint64_t> pks;
  ASSERT_TRUE(codec_->IndexQuery(db_.get(), 1, "city-new", 10, &pks).ok());
  EXPECT_EQ(pks, (std::vector<uint64_t>{5}));
  ASSERT_TRUE(codec_->IndexQuery(db_.get(), 1, "city-old", 10, &pks).ok());
  EXPECT_TRUE(pks.empty());
}

TEST_F(TableCodecTest, IndexSurvivesFlushAndCompaction) {
  for (uint64_t pk = 0; pk < 50; ++pk) {
    ASSERT_TRUE(codec_->InsertRow(db_.get(), pk, Row("flushme")).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactToLevel1(false).ok());
  std::vector<uint64_t> pks;
  ASSERT_TRUE(
      codec_->IndexQuery(db_.get(), 1, "city-flushme", 100, &pks).ok());
  EXPECT_EQ(pks.size(), 50u);
}

}  // namespace
}  // namespace bench
}  // namespace pmblade
