// Tests for the SSTable stack: block builder/reader, filter block, table
// builder/reader, block cache.

#include <gtest/gtest.h>

#include <map>

#include "env/env.h"
#include "memtable/internal_key.h"
#include "sstable/block.h"
#include "sstable/block_builder.h"
#include "sstable/block_cache.h"
#include "sstable/filter_block.h"
#include "sstable/table_builder.h"
#include "sstable/table_reader.h"
#include "util/bloom.h"
#include "util/random.h"

namespace pmblade {
namespace {

BlockContents Contents(const Slice& data) {
  // Copy into heap so Block takes ownership (mirrors the read path).
  char* buf = new char[data.size()];
  memcpy(buf, data.data(), data.size());
  BlockContents contents;
  contents.data = Slice(buf, data.size());
  contents.heap_allocated = true;
  contents.cachable = true;
  return contents;
}

TEST(BlockTest, BuildAndScan) {
  BlockBuilder builder(4);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 100; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%04d", i);
    std::string value = "value" + std::to_string(i);
    model[key] = value;
    builder.Add(key, value);
  }
  Block block(Contents(builder.Finish()));
  std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
  it->SeekToFirst();
  for (auto& [k, v] : model) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), k);
    EXPECT_EQ(it->value().ToString(), v);
    it->Next();
  }
  EXPECT_FALSE(it->Valid());
}

TEST(BlockTest, SeekFindsFirstGreaterOrEqual) {
  BlockBuilder builder(16);
  for (int i = 0; i < 100; i += 2) {
    char key[16];
    snprintf(key, sizeof(key), "key%04d", i);
    builder.Add(key, "v");
  }
  Block block(Contents(builder.Finish()));
  std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
  it->Seek("key0031");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "key0032");
  it->Seek("key0000");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "key0000");
  it->Seek("key9999");
  EXPECT_FALSE(it->Valid());
}

TEST(BlockTest, PrevWalksBackward) {
  BlockBuilder builder(4);
  for (int i = 0; i < 20; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%02d", i);
    builder.Add(key, "v");
  }
  Block block(Contents(builder.Finish()));
  std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
  it->SeekToLast();
  for (int i = 19; i >= 0; --i) {
    ASSERT_TRUE(it->Valid());
    char key[16];
    snprintf(key, sizeof(key), "k%02d", i);
    EXPECT_EQ(it->key().ToString(), key);
    it->Prev();
  }
  EXPECT_FALSE(it->Valid());
}

TEST(BlockTest, PrefixCompressionSavesSpace) {
  // Keys sharing long prefixes should compress well vs raw concatenation.
  BlockBuilder builder(16);
  size_t raw = 0;
  for (int i = 0; i < 1000; ++i) {
    char key[64];
    snprintf(key, sizeof(key), "table_orders|user_%08d|order", i);
    raw += strlen(key) + 1;
    builder.Add(key, "v");
  }
  Slice finished = builder.Finish();
  EXPECT_LT(finished.size(), raw * 2 / 3);
}

TEST(FilterBlockTest, SingleBlockFilter) {
  BloomFilterPolicy policy(10);
  FilterBlockBuilder builder(&policy);
  builder.StartBlock(0);
  builder.AddKey("foo");
  builder.AddKey("bar");
  Slice contents = builder.Finish();
  FilterBlockReader reader(&policy, contents);
  EXPECT_TRUE(reader.KeyMayMatch(0, "foo"));
  EXPECT_TRUE(reader.KeyMayMatch(0, "bar"));
  EXPECT_FALSE(reader.KeyMayMatch(0, "definitely-not-present-xyz"));
}

TEST(FilterBlockTest, MultipleBlockRanges) {
  BloomFilterPolicy policy(10);
  FilterBlockBuilder builder(&policy);
  builder.StartBlock(0);
  builder.AddKey("block0-key");
  builder.StartBlock(5000);
  builder.AddKey("block1-key");
  Slice contents = builder.Finish();
  FilterBlockReader reader(&policy, contents);
  EXPECT_TRUE(reader.KeyMayMatch(0, "block0-key"));
  EXPECT_TRUE(reader.KeyMayMatch(5000, "block1-key"));
  EXPECT_FALSE(reader.KeyMayMatch(5000, "block0-key"));
}

class TableTest : public ::testing::TestWithParam<CompressionType> {
 protected:
  void SetUp() override {
    env_ = PosixEnv();
    fname_ = ::testing::TempDir() + "pmblade_table_test.sst";
    env_->RemoveFile(fname_);
    icmp_.reset(new InternalKeyComparator(BytewiseComparator()));
    policy_.reset(new BloomFilterPolicy(10));
  }
  void TearDown() override { env_->RemoveFile(fname_); }

  // Builds a table with `n` entries "key%06d" -> "value-i" and opens it.
  void BuildAndOpen(int n, BlockCache* cache = nullptr) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname_, &file).ok());
    TableBuilderOptions opts;
    opts.comparator = icmp_.get();
    opts.filter_policy = policy_.get();
    opts.block_size = 1024;
    opts.compression = GetParam();
    TableBuilder builder(opts, file.get());
    for (int i = 0; i < n; ++i) {
      std::string ikey;
      AppendInternalKey(&ikey, KeyOf(i), 10, kTypeValue);
      builder.Add(ikey, "value-" + std::to_string(i));
    }
    ASSERT_TRUE(builder.Finish().ok()) << builder.status().ToString();
    ASSERT_TRUE(file->Sync().ok());
    ASSERT_TRUE(file->Close().ok());

    uint64_t size = 0;
    ASSERT_TRUE(env_->GetFileSize(fname_, &size).ok());
    std::unique_ptr<RandomAccessFile> rfile;
    ASSERT_TRUE(env_->NewRandomAccessFile(fname_, &rfile).ok());
    TableReaderOptions ropts;
    ropts.comparator = icmp_.get();
    ropts.filter_policy = policy_.get();
    ropts.block_cache = cache;
    ropts.file_number = 1;
    ASSERT_TRUE(
        TableReader::Open(ropts, std::move(rfile), size, &table_).ok());
  }

  static std::string KeyOf(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  Env* env_;
  std::string fname_;
  std::unique_ptr<InternalKeyComparator> icmp_;
  std::unique_ptr<BloomFilterPolicy> policy_;
  std::unique_ptr<TableReader> table_;
};

TEST_P(TableTest, FullScanMatchesInput) {
  BuildAndOpen(2000);
  std::unique_ptr<Iterator> it(table_->NewIterator());
  it->SeekToFirst();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(it->Valid()) << i;
    EXPECT_EQ(ExtractUserKey(it->key()).ToString(), KeyOf(i));
    EXPECT_EQ(it->value().ToString(), "value-" + std::to_string(i));
    it->Next();
  }
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());
}

TEST_P(TableTest, SeekWorks) {
  BuildAndOpen(1000);
  std::unique_ptr<Iterator> it(table_->NewIterator());
  LookupKey lk(KeyOf(457), kMaxSequenceNumber);
  it->Seek(lk.internal_key());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), KeyOf(457));
}

TEST_P(TableTest, InternalGetFindsKeys) {
  BuildAndOpen(500);
  struct Result {
    bool called = false;
    std::string key, value;
  } result;
  LookupKey lk(KeyOf(123), kMaxSequenceNumber);
  ASSERT_TRUE(table_
                  ->InternalGet(lk.internal_key(), &result,
                                [](void* arg, const Slice& k,
                                   const Slice& v) {
                                  auto* r = static_cast<Result*>(arg);
                                  r->called = true;
                                  r->key = k.ToString();
                                  r->value = v.ToString();
                                })
                  .ok());
  ASSERT_TRUE(result.called);
  EXPECT_EQ(ExtractUserKey(result.key).ToString(), KeyOf(123));
  EXPECT_EQ(result.value, "value-123");
}

TEST_P(TableTest, BloomFilterSkipsAbsentKeys) {
  BuildAndOpen(500);
  // An absent key between existing ones: the filter should usually keep the
  // callback from firing (false positives are permitted but rare).
  int called = 0;
  for (int probe = 0; probe < 100; ++probe) {
    std::string ikey;
    AppendInternalKey(&ikey, "absent" + std::to_string(probe), 10,
                      kTypeValue);
    ASSERT_TRUE(table_
                    ->InternalGet(ikey, &called,
                                  [](void* arg, const Slice& k, const Slice&) {
                                    // Only count callbacks whose user key is
                                    // one of ours (a real hit would be a bug;
                                    // a neighbor key callback means the
                                    // filter passed).
                                    (void)k;
                                    ++*static_cast<int*>(arg);
                                  })
                    .ok());
  }
  EXPECT_LT(called, 10);
}

TEST_P(TableTest, BlockCacheServesRepeatReads) {
  BlockCache cache(1 << 20);
  BuildAndOpen(2000, &cache);
  for (int round = 0; round < 3; ++round) {
    std::unique_ptr<Iterator> it(table_->NewIterator());
    it->SeekToFirst();
    int count = 0;
    while (it->Valid()) {
      ++count;
      it->Next();
    }
    EXPECT_EQ(count, 2000);
  }
  EXPECT_GT(cache.hits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Compression, TableTest,
                         ::testing::Values(kNoCompression, kLzCompression));

TEST(BlockCacheTest, InsertLookupEvict) {
  BlockCache cache(1000, 1);  // single shard, tiny
  BlockBuilder builder(4);
  builder.Add("a", "value");
  std::string data = builder.Finish().ToString();
  auto make_block = [&]() {
    char* buf = new char[data.size()];
    memcpy(buf, data.data(), data.size());
    BlockContents contents;
    contents.data = Slice(buf, data.size());
    contents.heap_allocated = true;
    return std::make_shared<Block>(contents);
  };
  cache.Insert(1, 0, make_block(), 600);
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  // Inserting another large entry evicts the first (capacity 1000).
  cache.Insert(1, 100, make_block(), 600);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_NE(cache.Lookup(1, 100), nullptr);
}

TEST(BlockCacheTest, EvictTableDropsAllItsBlocks) {
  BlockCache cache(1 << 20, 2);
  BlockBuilder builder(4);
  builder.Add("k", "v");
  Slice data = builder.Finish();
  for (uint64_t off = 0; off < 10; ++off) {
    char* buf = new char[data.size()];
    memcpy(buf, data.data(), data.size());
    BlockContents contents;
    contents.data = Slice(buf, data.size());
    contents.heap_allocated = true;
    cache.Insert(7, off, std::make_shared<Block>(contents), data.size());
  }
  EXPECT_GT(cache.TotalCharge(), 0u);
  cache.EvictTable(7);
  EXPECT_EQ(cache.TotalCharge(), 0u);
  EXPECT_EQ(cache.Lookup(7, 3), nullptr);
}

}  // namespace
}  // namespace pmblade
