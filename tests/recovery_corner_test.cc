// Recovery corner cases: a final WAL record cut mid-write, a manifest whose
// replay floor names a log that no longer exists, reopen-after-reopen
// idempotence, and the WAL-file-number reuse hazard after a crash that left
// the manifest's next_file_number stale.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/db.h"
#include "env/crash_env.h"
#include "tests/test_model.h"
#include "util/sync_point.h"

namespace pmblade {
namespace test {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%04d", i);
  return buf;
}

Options BaseOptions() {
  Options options;
  options.env = PosixEnv();
  options.memtable_bytes = 32 << 10;
  options.pm_pool_capacity = 32 << 20;
  options.pm_latency.inject_latency = false;
  return options;
}

std::vector<std::string> WalFiles(Env* env, const std::string& dbname) {
  std::vector<std::string> children;
  EXPECT_TRUE(env->GetChildren(dbname, &children).ok());
  std::vector<std::string> wals;
  for (const auto& c : children) {
    if (c.size() > 8 && c.compare(0, 4, "wal-") == 0) wals.push_back(c);
  }
  return wals;
}

TEST(RecoveryCornerTest, TruncatedFinalWalRecordDropsOnlyThatRecord) {
  const std::string dbname =
      ::testing::TempDir() + "pmblade_corner_truncated_wal";
  Options options = BaseOptions();
  DestroyDB(options, dbname);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  WriteOptions sync_opts;
  sync_opts.sync = true;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->Put(sync_opts, Key(i), "value" + std::to_string(i)).ok());
  }
  db.reset();

  // Chop a few bytes off the live log: the final record's checksum no
  // longer covers its payload, exactly as if power failed mid-write.
  std::vector<std::string> wals = WalFiles(options.env, dbname);
  ASSERT_FALSE(wals.empty());
  std::string last = dbname + "/" + wals.back();
  uint64_t size = 0;
  ASSERT_TRUE(options.env->GetFileSize(last, &size).ok());
  ASSERT_GT(size, 4u);
  ASSERT_EQ(::truncate(last.c_str(), static_cast<off_t>(size - 4)), 0);

  // Recovery must drop ONLY the damaged final record and open cleanly.
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  std::string value;
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(db->Get(ReadOptions(), Key(i), &value).ok()) << Key(i);
  }
  EXPECT_TRUE(db->Get(ReadOptions(), Key(9), &value).IsNotFound());

  // And the recovered DB keeps working.
  ASSERT_TRUE(db->Put(sync_opts, Key(9), "rewritten").ok());
  ASSERT_TRUE(db->FlushMemTable().ok());
  EXPECT_TRUE(db->Get(ReadOptions(), Key(9), &value).ok());
  EXPECT_EQ(value, "rewritten");
  db.reset();
  DestroyDB(options, dbname);
}

TEST(RecoveryCornerTest, ManifestPointingAtDeletedWalStillOpens) {
  const std::string dbname = ::testing::TempDir() + "pmblade_corner_no_wal";
  Options options = BaseOptions();
  DestroyDB(options, dbname);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "flushed", "safe").ok());
  ASSERT_TRUE(db->FlushMemTable().ok());
  db.reset();

  // Delete every log. The manifest's replay floor now names a WAL that does
  // not exist — recovery must treat the missing log as empty (its contents
  // were flushed) rather than refuse to open.
  for (const auto& wal : WalFiles(options.env, dbname)) {
    ASSERT_TRUE(options.env->RemoveFile(dbname + "/" + wal).ok());
  }

  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "flushed", &value).ok());
  EXPECT_EQ(value, "safe");

  WriteOptions sync_opts;
  sync_opts.sync = true;
  ASSERT_TRUE(db->Put(sync_opts, "after", "reopen").ok());
  db.reset();
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  EXPECT_TRUE(db->Get(ReadOptions(), "after", &value).ok());
  db.reset();
  DestroyDB(options, dbname);
}

TEST(RecoveryCornerTest, ReopenAfterReopenIsIdempotent) {
  const std::string dbname = ::testing::TempDir() + "pmblade_corner_reopen";
  Options options = BaseOptions();
  DestroyDB(options, dbname);

  KvMap expected = {{"a", "1"}, {"b", "2"}, {"c", "3"}};
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  for (const auto& kv : expected) {
    ASSERT_TRUE(db->Put(WriteOptions(), kv.first, kv.second).ok());
  }
  db.reset();

  // Replaying the same logs on every reopen must be idempotent: no lost
  // keys, no phantom keys, no double-application.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok()) << "round " << round;
    KvMap recovered;
    ASSERT_TRUE(DumpDb(db.get(), &recovered).ok());
    EXPECT_EQ(recovered, expected) << "round " << round;
    db.reset();
  }

  // Same once a flush has moved the data into level-0 tables.
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  ASSERT_TRUE(db->FlushMemTable().ok());
  db.reset();
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
    KvMap recovered;
    ASSERT_TRUE(DumpDb(db.get(), &recovered).ok());
    EXPECT_EQ(recovered, expected) << "flushed round " << round;
    db.reset();
  }
  DestroyDB(options, dbname);
}

#ifdef PMBLADE_SYNC_POINTS

// Deterministic reproduction of the WAL-number reuse hazard: crash after a
// rotation but before the flush commits the manifest, so the on-disk
// next_file_number is STALE — at or below the rotated-to log's number. The
// recovering Init must bump its allocator past every replayed live log;
// allocating from the stale counter would hand the new WAL an existing
// log's number and O_TRUNC acknowledged-durable data away. (The randomized
// harness can hit this window too, but only on lucky seeds — this pins it.)
TEST(RecoveryCornerTest, RecoveryDoesNotReuseLiveWalNumbers) {
  const std::string dbname = ::testing::TempDir() + "pmblade_corner_wal_reuse";
  CrashEnv crash_env(PosixEnv(), 7);
  Options options = BaseOptions();
  options.env = &crash_env;
  options.raw_env = &crash_env;
  options.memtable_bytes = 16 << 10;
  // SSD level-0: a flush racing teardown dies instantly on the dead env
  // instead of leaving tables in the PM pool.
  options.l0_layout = L0Layout::kSstable;
  DestroyDB(options, dbname);

  KvMap expected;
  WriteOptions sync_opts;
  sync_opts.sync = true;

  // Phase 1: fill past the memtable limit so a rotation fires, while the
  // flush is held at its first sync point — the manifest commit that would
  // refresh next_file_number never happens. The tail writes after the
  // rotation land in the rotated-to log, acknowledged and synced.
  auto* sp = SyncPoint::GetInstance();
  std::atomic<bool> rotated{false};
  sp->LoadDependency(
      {{"RecoveryCornerTest::Never", "DBImpl::BackgroundFlush:Start"}});
  sp->SetCallBack("DBImpl::SwitchMemTable:AfterNewWal",
                  [&](void*) { rotated.store(true); });
  sp->EnableProcessing();

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  const std::string big(1024, 'x');
  for (int i = 0; i < 40 && !rotated.load(); ++i) {
    ASSERT_TRUE(db->Put(sync_opts, Key(i), big).ok());
    expected[Key(i)] = big;
  }
  ASSERT_TRUE(rotated.load()) << "workload never rotated the memtable";
  for (int i = 0; i < 3; ++i) {
    std::string key = "tail" + std::to_string(i);
    ASSERT_TRUE(db->Put(sync_opts, key, "tail-value").ok());
    expected[key] = "tail-value";
  }
  crash_env.PowerCut();
  sp->DisableProcessing();
  db.reset();
  sp->Reset();

  // Phase 2: recover (replaying the rotated-to log) and crash again before
  // any flush. With a reused number, Init itself already truncated that log
  // and the tail keys now exist only in DRAM — gone after this cut.
  crash_env.ResetState();
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  crash_env.PowerCut();
  db.reset();

  // Phase 3: every acknowledged key must still be there.
  crash_env.ResetState();
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  KvMap recovered;
  ASSERT_TRUE(DumpDb(db.get(), &recovered).ok());
  EXPECT_EQ(recovered, expected);
  db.reset();
  DestroyDB(options, dbname);
}

#endif  // PMBLADE_SYNC_POINTS

}  // namespace
}  // namespace test
}  // namespace pmblade
