// Tests for the coroutine scheduler, awaitables and the I/O gate.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coro/io_gate.h"
#include "coro/scheduler.h"
#include "coro/task.h"

namespace pmblade {
namespace {

Task AppendLetters(CoroScheduler* scheduler, std::string* log, char letter,
                   int count) {
  for (int i = 0; i < count; ++i) {
    log->push_back(letter);
    co_await scheduler->Yield();
  }
}

TEST(CoroSchedulerTest, RunsSingleTaskToCompletion) {
  CoroScheduler scheduler;
  std::string log;
  scheduler.Spawn(AppendLetters(&scheduler, &log, 'a', 3));
  scheduler.Run();
  EXPECT_EQ(log, "aaa");
}

TEST(CoroSchedulerTest, YieldInterleavesTasks) {
  CoroScheduler scheduler;
  std::string log;
  scheduler.Spawn(AppendLetters(&scheduler, &log, 'a', 3));
  scheduler.Spawn(AppendLetters(&scheduler, &log, 'b', 3));
  scheduler.Run();
  EXPECT_EQ(log, "ababab");
}

Task SleepThenLog(CoroScheduler* scheduler, std::vector<int>* log, int id,
                  uint64_t sleep_nanos) {
  co_await scheduler->SleepFor(sleep_nanos);
  log->push_back(id);
}

TEST(CoroSchedulerTest, SleepersWakeInDeadlineOrder) {
  MockClock clock;
  CoroScheduler scheduler(&clock);
  std::vector<int> log;
  scheduler.Spawn(SleepThenLog(&scheduler, &log, 1, 3000));
  scheduler.Spawn(SleepThenLog(&scheduler, &log, 2, 1000));
  scheduler.Spawn(SleepThenLog(&scheduler, &log, 3, 2000));
  scheduler.Run();
  EXPECT_EQ(log, (std::vector<int>{2, 3, 1}));
  EXPECT_GE(clock.NowNanos(), 3000u);
}

Task WaitOnEvent(CoroScheduler* scheduler, CoroScheduler::Event* event,
                 bool* flag, std::string* log) {
  (void)scheduler;
  while (!*flag) {
    co_await *event;
  }
  log->push_back('W');
}

Task SetFlagAfterYields(CoroScheduler* scheduler, CoroScheduler::Event* event,
                        bool* flag, std::string* log) {
  co_await scheduler->Yield();
  co_await scheduler->Yield();
  *flag = true;
  log->push_back('S');
  event->NotifyAll();
}

TEST(CoroSchedulerTest, EventWakesWaiter) {
  CoroScheduler scheduler;
  CoroScheduler::Event event(&scheduler);
  bool flag = false;
  std::string log;
  scheduler.Spawn(WaitOnEvent(&scheduler, &event, &flag, &log));
  scheduler.Spawn(SetFlagAfterYields(&scheduler, &event, &flag, &log));
  scheduler.Run();
  EXPECT_EQ(log, "SW");
}

TEST(CoroSchedulerTest, CpuBusyTimeIsTracked) {
  MockClock clock;
  CoroScheduler scheduler(&clock);
  // A task that "computes" by advancing the mock clock inside its frame.
  struct Helper {
    static Task Busy(CoroScheduler* s, MockClock* c) {
      c->Advance(500);  // 500 ns of "CPU work"
      co_await s->SleepFor(10'000);  // then a long I/O wait
      c->Advance(300);
    }
  };
  scheduler.Spawn(Helper::Busy(&scheduler, &clock));
  scheduler.Run();
  EXPECT_EQ(scheduler.cpu_busy_nanos(), 800u);
  EXPECT_GE(scheduler.wall_nanos(), 10'000u);
}

TEST(IoGateTest, BudgetFollowsPolicy) {
  SsdModelOptions opts;
  opts.inject_latency = false;
  SsdModel model(opts);
  IoGate gate(&model, 4);
  // Empty device: full budget.
  EXPECT_EQ(gate.FlushBudget(), 4);

  // q_comp = 2, q_cli = 1 -> q_flush = max(4-2-1, 0) = 1.
  auto c1 = model.BeginIo(false, 100, IoClass::kCompaction);
  auto c2 = model.BeginIo(false, 100, IoClass::kCompaction);
  auto r1 = model.BeginIo(false, 100, IoClass::kClient);
  EXPECT_EQ(gate.FlushBudget(), 1);

  // One flush in flight consumes the budget.
  auto f1 = model.BeginIo(true, 100, IoClass::kFlush);
  EXPECT_EQ(gate.FlushBudget(), 0);

  // Oversubscribed: clamped at zero.
  auto c3 = model.BeginIo(false, 100, IoClass::kCompaction);
  auto c4 = model.BeginIo(false, 100, IoClass::kCompaction);
  EXPECT_EQ(gate.FlushBudget(), 0);

  model.EndIo(c1);
  model.EndIo(c2);
  model.EndIo(c3);
  model.EndIo(c4);
  model.EndIo(r1);
  EXPECT_EQ(gate.FlushBudget(), 3);  // q=4 minus 1 flush inflight
  model.EndIo(f1);
  EXPECT_EQ(gate.FlushBudget(), 4);
}

TEST(IoGateTest, ReadAllowedBoundsTotal) {
  SsdModelOptions opts;
  opts.inject_latency = false;
  SsdModel model(opts);
  IoGate gate(&model, 2);
  EXPECT_TRUE(gate.ReadAllowed());
  auto t1 = model.BeginIo(false, 10, IoClass::kCompaction);
  auto t2 = model.BeginIo(false, 10, IoClass::kClient);
  EXPECT_FALSE(gate.ReadAllowed());
  model.EndIo(t1);
  EXPECT_TRUE(gate.ReadAllowed());
  model.EndIo(t2);
}

}  // namespace
}  // namespace pmblade
