// Tests for the compaction module: merging iterator, internal compaction
// (dedup, tombstones, space release), cost models (Eqs. 1-3), the L0 table
// factory, and all three major-compaction engines.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "compaction/cost_model.h"
#include "compaction/internal_compaction.h"
#include "compaction/major_compaction.h"
#include "compaction/merging_iterator.h"
#include "compaction/minor_compaction.h"
#include "memtable/skiplist_memtable.h"
#include "pmtable/pm_table.h"
#include "pmtable/pm_table_builder.h"
#include "sstable/ssd_l0_table.h"
#include "util/random.h"
#include "util/zipfian.h"

namespace pmblade {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq,
                 ValueType type = kTypeValue) {
  std::string out;
  AppendInternalKey(&out, user_key, seq, type);
  return out;
}

TEST(MergingIteratorTest, MergesSortedStreams) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* m1 = new MemTable(icmp);
  MemTable* m2 = new MemTable(icmp);
  m1->Ref();
  m2->Ref();
  for (int i = 0; i < 100; i += 2) {
    m1->Add(i + 1, kTypeValue, "k" + std::to_string(1000 + i), "a");
  }
  for (int i = 1; i < 100; i += 2) {
    m2->Add(i + 1, kTypeValue, "k" + std::to_string(1000 + i), "b");
  }
  std::unique_ptr<Iterator> merged(NewMergingIterator(
      &icmp, {m1->NewIterator(), m2->NewIterator()}));
  merged->SeekToFirst();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(merged->Valid()) << i;
    EXPECT_EQ(ExtractUserKey(merged->key()).ToString(),
              "k" + std::to_string(1000 + i));
    merged->Next();
  }
  EXPECT_FALSE(merged->Valid());
  m1->Unref();
  m2->Unref();
}

TEST(MergingIteratorTest, NewerChildWinsTies) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* newer = new MemTable(icmp);
  MemTable* older = new MemTable(icmp);
  newer->Ref();
  older->Ref();
  older->Add(5, kTypeValue, "dup", "old");
  newer->Add(9, kTypeValue, "dup", "new");
  // Internal comparator orders by seq within a user key, so the merged
  // stream yields seq 9 then seq 5.
  std::unique_ptr<Iterator> merged(NewMergingIterator(
      &icmp, {newer->NewIterator(), older->NewIterator()}));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "new");
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "old");
  newer->Unref();
  older->Unref();
}

TEST(MergingIteratorTest, SeekAndBackward) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* m1 = new MemTable(icmp);
  MemTable* m2 = new MemTable(icmp);
  m1->Ref();
  m2->Ref();
  m1->Add(1, kTypeValue, "a", "1");
  m1->Add(2, kTypeValue, "c", "3");
  m2->Add(3, kTypeValue, "b", "2");
  m2->Add(4, kTypeValue, "d", "4");
  std::unique_ptr<Iterator> merged(NewMergingIterator(
      &icmp, {m1->NewIterator(), m2->NewIterator()}));
  merged->Seek(IKey("b", kMaxSequenceNumber));
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), "b");
  merged->Prev();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), "a");
  merged->SeekToLast();
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), "d");
  m1->Unref();
  m2->Unref();
}

// ---------------------------------------------------------------------------
// Internal compaction
// ---------------------------------------------------------------------------

class InternalCompactionTest : public ::testing::Test {
 protected:
  InternalCompactionTest() : icmp_(BytewiseComparator()) {}

  void SetUp() override {
    path_ = ::testing::TempDir() + "pmblade_ic_test.pm";
    ::remove(path_.c_str());
    PmPoolOptions popts;
    popts.capacity = 128 << 20;
    popts.latency.inject_latency = false;
    ASSERT_TRUE(PmPool::Open(path_, popts, &pool_).ok());
    L0FactoryOptions fopts;
    fopts.layout = L0Layout::kPmTable;
    factory_.reset(new L0TableFactory(fopts, pool_.get(), nullptr));
  }
  void TearDown() override {
    factory_.reset();
    pool_.reset();
    ::remove(path_.c_str());
  }

  /// Builds a PM table from (user key -> value) at a given base sequence.
  L0TableRef BuildTable(const std::map<std::string, std::string>& data,
                        SequenceNumber seq) {
    PmTableBuilder builder(pool_.get(), PmTableOptions{});
    for (auto& [k, v] : data) builder.Add(IKey(k, seq), v);
    std::shared_ptr<PmTable> t;
    EXPECT_TRUE(builder.Finish(&t).ok());
    return t;
  }

  InternalKeyComparator icmp_;
  std::string path_;
  std::unique_ptr<PmPool> pool_;
  std::unique_ptr<L0TableFactory> factory_;
};

TEST_F(InternalCompactionTest, MergesAndDeduplicates) {
  // Two overlapping tables; newer (seq 20) shadows older (seq 10).
  std::map<std::string, std::string> older, newer;
  for (int i = 0; i < 100; ++i) {
    older["t|k" + std::to_string(1000 + i)] = "old";
  }
  for (int i = 50; i < 150; ++i) {
    newer["t|k" + std::to_string(1000 + i)] = "new";
  }
  std::vector<L0TableRef> inputs = {BuildTable(newer, 20),
                                    BuildTable(older, 10)};

  InternalCompactionOptions opts;
  opts.oldest_snapshot = kMaxSequenceNumber;
  std::vector<L0TableRef> outputs;
  InternalCompactionStats stats;
  ASSERT_TRUE(RunInternalCompaction(opts, icmp_, inputs, factory_.get(),
                                    &outputs, &stats)
                  .ok());
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(stats.input_records, 200u);
  EXPECT_EQ(stats.output_records, 150u);  // 50 duplicates removed
  EXPECT_GT(stats.bytes_released(), 0);

  // Overlap region must hold the newer values.
  std::unique_ptr<Iterator> it(outputs[0]->NewIterator());
  it->Seek(IKey("t|k1075", kMaxSequenceNumber));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->value().ToString(), "new");
  it->Seek(IKey("t|k1010", kMaxSequenceNumber));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->value().ToString(), "old");
}

TEST_F(InternalCompactionTest, SnapshotKeepsOlderVersions) {
  std::map<std::string, std::string> older{{"t|k", "old"}};
  std::map<std::string, std::string> newer{{"t|k", "new"}};
  std::vector<L0TableRef> inputs = {BuildTable(newer, 20),
                                    BuildTable(older, 10)};

  InternalCompactionOptions opts;
  opts.oldest_snapshot = 15;  // a snapshot at 15 must still see "old"
  std::vector<L0TableRef> outputs;
  InternalCompactionStats stats;
  ASSERT_TRUE(RunInternalCompaction(opts, icmp_, inputs, factory_.get(),
                                    &outputs, &stats)
                  .ok());
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(stats.output_records, 2u);  // both versions survive
}

TEST_F(InternalCompactionTest, TombstonesDroppedWhenAllowed) {
  PmTableBuilder builder(pool_.get(), PmTableOptions{});
  builder.Add(IKey("t|dead", 20, kTypeDeletion), "");
  builder.Add(IKey("t|dead", 10), "value");
  builder.Add(IKey("t|live", 10), "value");
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());

  InternalCompactionOptions opts;
  opts.drop_tombstones = true;
  std::vector<L0TableRef> outputs;
  InternalCompactionStats stats;
  ASSERT_TRUE(RunInternalCompaction(opts, icmp_, {table}, factory_.get(),
                                    &outputs, &stats)
                  .ok());
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(stats.output_records, 1u);
  std::unique_ptr<Iterator> it(outputs[0]->NewIterator());
  it->SeekToFirst();
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "t|live");
}

TEST_F(InternalCompactionTest, TombstonesKeptWhenNotBottom) {
  PmTableBuilder builder(pool_.get(), PmTableOptions{});
  builder.Add(IKey("t|dead", 20, kTypeDeletion), "");
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());

  InternalCompactionOptions opts;
  opts.drop_tombstones = false;  // L1 may hold older data
  std::vector<L0TableRef> outputs;
  InternalCompactionStats stats;
  ASSERT_TRUE(RunInternalCompaction(opts, icmp_, {table}, factory_.get(),
                                    &outputs, &stats)
                  .ok());
  ASSERT_EQ(stats.output_records, 1u);  // tombstone preserved
}

TEST_F(InternalCompactionTest, SplitsIntoTargetSizedTables) {
  std::map<std::string, std::string> data;
  for (int i = 0; i < 2000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "t|key%05d", i);
    data[key] = std::string(500, 'v');
  }
  std::vector<L0TableRef> inputs = {BuildTable(data, 10)};
  InternalCompactionOptions opts;
  opts.target_table_bytes = 200 << 10;  // ~1 MB of data -> ~5 tables
  std::vector<L0TableRef> outputs;
  InternalCompactionStats stats;
  ASSERT_TRUE(RunInternalCompaction(opts, icmp_, inputs, factory_.get(),
                                    &outputs, &stats)
                  .ok());
  EXPECT_GE(outputs.size(), 4u);
  uint64_t total = 0;
  for (auto& t : outputs) total += t->num_entries();
  EXPECT_EQ(total, 2000u);
}

TEST_F(InternalCompactionTest, SkewedUpdatesReleaseMoreSpace) {
  // Mirrors Table IV's mechanism: higher skew -> more duplicate user keys
  // across unsorted tables -> more space released.
  auto run = [&](double theta) {
    ZipfianGenerator gen(2000, theta, 17);
    SequenceNumber seq = 1;
    std::vector<L0TableRef> inputs;
    for (int t = 0; t < 8; ++t) {
      // Fixed write volume per table (Table IV fixes total data written):
      // duplicate user keys stay as distinct versions within the table.
      std::vector<std::pair<std::string, SequenceNumber>> draws;
      for (int i = 0; i < 500; ++i) {
        char key[32];
        snprintf(key, sizeof(key), "t|key%06llu",
                 static_cast<unsigned long long>(gen.Next()));
        draws.emplace_back(key, seq++);
      }
      std::sort(draws.begin(), draws.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first < b.first;
        return a.second > b.second;  // newer version first
      });
      PmTableBuilder builder(pool_.get(), PmTableOptions{});
      for (auto& [k, s] : draws) {
        builder.Add(IKey(k, s), std::string(100, 'v'));
      }
      std::shared_ptr<PmTable> table;
      EXPECT_TRUE(builder.Finish(&table).ok());
      inputs.push_back(table);
    }
    InternalCompactionOptions opts;
    std::vector<L0TableRef> outputs;
    InternalCompactionStats stats;
    EXPECT_TRUE(RunInternalCompaction(opts, icmp_, inputs, factory_.get(),
                                      &outputs, &stats)
                    .ok());
    for (auto& in : inputs) in->Destroy();
    for (auto& out : outputs) out->Destroy();
    return stats.bytes_released();
  };
  int64_t low_skew = run(0.1);
  int64_t high_skew = run(0.99);
  EXPECT_GT(high_skew, low_skew);
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(CostModelTest, Eq1TriggersOnHotUnsortedPartitions) {
  CostModelParams params;
  params.i_b = 1.0;
  params.i_p = 4.0;
  params.t_p = 1.0;
  CostModel model(params);

  PartitionCounters cold;
  cold.unsorted_tables = 10;
  cold.reads_per_sec = 0.0;  // nobody reads: no benefit
  EXPECT_FALSE(model.ShouldCompactForReads(cold));

  PartitionCounters hot = cold;
  hot.reads_per_sec = 100.0;  // 100 * (10/2) * 1 = 500 > 4
  EXPECT_TRUE(model.ShouldCompactForReads(hot));

  PartitionCounters single = hot;
  single.unsorted_tables = 1;  // below min threshold
  EXPECT_FALSE(model.ShouldCompactForReads(single));
}

TEST(CostModelTest, Eq2RequiresSizeGateAndUpdates) {
  CostModelParams params;
  params.tau_w = 1000;
  params.i_s = 40.0;
  params.i_p = 4.0;
  CostModel model(params);

  PartitionCounters p;
  p.unsorted_tables = 4;
  p.size_bytes = 500;  // below tau_w
  p.writes = 1000;
  p.updates = 900;
  EXPECT_FALSE(model.ShouldCompactForWrites(p));

  p.size_bytes = 2000;  // passes gate: 900*40 > 1000*4
  EXPECT_TRUE(model.ShouldCompactForWrites(p));

  p.updates = 50;  // 50*40 = 2000 < 4000
  EXPECT_FALSE(model.ShouldCompactForWrites(p));
}

TEST(CostModelTest, Eq3GreedyKeepsHottestPerByte) {
  CostModelParams params;
  params.tau_t = 100;
  CostModel model(params);

  std::vector<PartitionCounters> parts(3);
  parts[0].partition_id = 0;
  parts[0].size_bytes = 60;
  parts[0].reads = 600;  // 10 reads/byte
  parts[1].partition_id = 1;
  parts[1].size_bytes = 60;
  parts[1].reads = 6000;  // 100 reads/byte (hottest)
  parts[2].partition_id = 2;
  parts[2].size_bytes = 40;
  parts[2].reads = 80;  // 2 reads/byte

  auto retained = model.SelectRetained(parts);
  // Greedy: keep partition 1 (60), then partition 0 does not fit (120 > 100)
  // but partition 2 does (100 exactly).
  ASSERT_EQ(retained.size(), 2u);
  EXPECT_EQ(retained[0], 1u);
  EXPECT_EQ(retained[1], 2u);
}

TEST(CostModelTest, AdaptiveTauTScalesWithReadShare) {
  CostModelParams params;
  params.tau_t = 1000;
  CostModel model(params);
  // Write-dominated or balanced traffic keeps the base budget.
  EXPECT_EQ(model.AdaptiveTauT(0, 100, 2.0), 1000u);
  EXPECT_EQ(model.AdaptiveTauT(50, 50, 2.0), 1000u);
  // Read-dominated traffic scales up, reaching max_factor at 100% reads.
  EXPECT_EQ(model.AdaptiveTauT(75, 25, 2.0), 1500u);
  EXPECT_EQ(model.AdaptiveTauT(100, 0, 2.0), 2000u);
  // No traffic at all: base budget; factor < 1 clamped to 1.
  EXPECT_EQ(model.AdaptiveTauT(0, 0, 2.0), 1000u);
  EXPECT_EQ(model.AdaptiveTauT(100, 0, 0.5), 1000u);
}

TEST(CostModelTest, SelectRetainedHonorsOverrideBudget) {
  CostModelParams params;
  params.tau_t = 100;
  CostModel model(params);
  std::vector<PartitionCounters> parts(2);
  parts[0].partition_id = 0;
  parts[0].size_bytes = 80;
  parts[0].reads = 800;
  parts[1].partition_id = 1;
  parts[1].size_bytes = 80;
  parts[1].reads = 400;
  // Default budget fits one partition; a doubled override fits both.
  EXPECT_EQ(model.SelectRetained(parts).size(), 1u);
  EXPECT_EQ(model.SelectRetained(parts, 200).size(), 2u);
}

TEST(CostModelTest, MajorCompactionGate) {
  CostModelParams params;
  params.tau_m = 1 << 20;
  CostModel model(params);
  EXPECT_FALSE(model.MajorCompactionDue(1 << 19));
  EXPECT_TRUE(model.MajorCompactionDue(1 << 20));
}

// ---------------------------------------------------------------------------
// Major compaction engines
// ---------------------------------------------------------------------------

class MajorCompactionTest
    : public ::testing::TestWithParam<CompactionEngine> {
 protected:
  MajorCompactionTest() : icmp_(BytewiseComparator()), policy_(10) {}

  void SetUp() override {
    dir_ = ::testing::TempDir() + "pmblade_major_test";
    PosixEnv()->RemoveDirRecursively(dir_);
    ASSERT_TRUE(PosixEnv()->CreateDir(dir_).ok());
    pool_path_ = dir_ + "/pool.pm";

    PmPoolOptions popts;
    popts.capacity = 64 << 20;
    popts.latency.inject_latency = false;
    ASSERT_TRUE(PmPool::Open(pool_path_, popts, &pool_).ok());

    SsdModelOptions mopts;
    // Keep latencies tiny so tests are fast but the machinery is exercised.
    mopts.read_base_nanos = 2'000;
    mopts.write_base_nanos = 2'000;
    mopts.read_nanos_per_byte = 0.01;
    mopts.write_nanos_per_byte = 0.01;
    mopts.queue_penalty_nanos = 500;
    model_.reset(new SsdModel(mopts));

    L0FactoryOptions fopts;
    fopts.layout = L0Layout::kPmTable;
    fopts.icmp = &icmp_;
    fopts.filter_policy = &policy_;
    fopts.ssd_dir = dir_;
    factory_.reset(new L0TableFactory(fopts, pool_.get(), PosixEnv()));
  }
  void TearDown() override {
    factory_.reset();
    pool_.reset();
    PosixEnv()->RemoveDirRecursively(dir_);
  }

  L0TableRef BuildTable(int lo, int hi, SequenceNumber seq,
                        const std::string& value) {
    PmTableBuilder builder(pool_.get(), PmTableOptions{});
    for (int i = lo; i < hi; ++i) {
      char key[32];
      snprintf(key, sizeof(key), "t|key%06d", i);
      std::string ikey;
      AppendInternalKey(&ikey, key, seq, kTypeValue);
      builder.Add(ikey, value);
    }
    std::shared_ptr<PmTable> t;
    EXPECT_TRUE(builder.Finish(&t).ok());
    return t;
  }

  InternalKeyComparator icmp_;
  BloomFilterPolicy policy_;
  std::string dir_, pool_path_;
  std::unique_ptr<PmPool> pool_;
  std::unique_ptr<SsdModel> model_;
  std::unique_ptr<L0TableFactory> factory_;
};

TEST_P(MajorCompactionTest, CompactsRangePartitionedSubtasks) {
  // Two overlapping input tables; four key-range subtasks.
  L0TableRef newer = BuildTable(0, 4000, 20, "new");
  L0TableRef older = BuildTable(2000, 6000, 10, "old");

  MajorCompactionOptions opts;
  opts.engine = GetParam();
  opts.concurrency = 4;
  opts.worker_threads = 2;
  opts.max_io_q = 4;
  opts.read_block_bytes = 8 << 10;
  opts.write_block_bytes = 8 << 10;

  MajorCompactor compactor(PosixEnv(), model_.get(), factory_.get(), opts);

  auto make_range_input = [&](int lo, int hi) {
    return [this, &newer, &older, lo, hi]() -> Iterator* {
      char lo_key[32], hi_key[32];
      snprintf(lo_key, sizeof(lo_key), "t|key%06d", lo);
      snprintf(hi_key, sizeof(hi_key), "t|key%06d", hi);
      // Bounded view: Seek to lo, stop at hi (wrap with a range limiter).
      class RangeIter final : public Iterator {
       public:
        RangeIter(Iterator* base, std::string lo, std::string hi)
            : base_(base), lo_(std::move(lo)), hi_(std::move(hi)) {
          std::string seek_key;
          AppendInternalKey(&seek_key, lo_, kMaxSequenceNumber,
                            kValueTypeForSeek);
          base_->Seek(seek_key);
        }
        bool Valid() const override {
          return base_->Valid() &&
                 ExtractUserKey(base_->key()).compare(Slice(hi_)) < 0;
        }
        void SeekToFirst() override {}
        void SeekToLast() override {}
        void Seek(const Slice&) override {}
        void Next() override { base_->Next(); }
        void Prev() override {}
        Slice key() const override { return base_->key(); }
        Slice value() const override { return base_->value(); }
        Status status() const override { return base_->status(); }

       private:
        std::unique_ptr<Iterator> base_;
        std::string lo_, hi_;
      };
      Iterator* merged = NewMergingIterator(
          &icmp_, {newer->NewIterator(), older->NewIterator()});
      return new RangeIter(merged, lo_key, hi_key);
    };
  };

  std::vector<CompactionSubtaskInput> subtasks;
  for (int i = 0; i < 4; ++i) {
    CompactionSubtaskInput sub;
    sub.make_input = make_range_input(i * 1500, (i + 1) * 1500);
    sub.ssd_input_fraction = 0.3;
    subtasks.push_back(sub);
  }

  std::vector<CompactionOutputMeta> outputs;
  MajorCompactionStats stats;
  ASSERT_TRUE(compactor.Run(subtasks, &outputs, &stats).ok());

  // 6000 distinct user keys, 2000 overlapping -> 8000 input, 6000 output.
  EXPECT_EQ(stats.input_records, 8000u);
  EXPECT_EQ(stats.output_records, 6000u);
  EXPECT_GT(stats.s1_reads, 0u);
  EXPECT_GT(stats.s3_writes, 0u);
  EXPECT_GT(stats.ssd_bytes_written, 0u);
  EXPECT_GT(stats.wall_nanos, 0u);
  ASSERT_EQ(outputs.size(), 4u);

  // Verify output contents: open each SSTable and check the overlap region
  // holds "new" values and totals match.
  uint64_t total_entries = 0;
  for (const auto& meta : outputs) {
    std::shared_ptr<SsdL0Table> table;
    TableReaderOptions ropts;
    ropts.comparator = &icmp_;
    ropts.filter_policy = &policy_;
    ropts.file_number = meta.file_number;
    ASSERT_TRUE(SsdL0Table::Open(PosixEnv(), meta.path, meta.file_number,
                                 ropts, &table)
                    .ok());
    std::unique_ptr<Iterator> it(table->NewIterator());
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      ++total_entries;
      ParsedInternalKey parsed;
      ASSERT_TRUE(ParseInternalKey(it->key(), &parsed));
      std::string uk = parsed.user_key.ToString();
      int keynum = atoi(uk.substr(5).c_str());
      if (keynum < 4000) {
        EXPECT_EQ(it->value().ToString(), "new") << uk;
      } else {
        EXPECT_EQ(it->value().ToString(), "old") << uk;
      }
    }
  }
  EXPECT_EQ(total_entries, 6000u);
}

TEST_P(MajorCompactionTest, EmptyInputProducesNoOutput) {
  MajorCompactionOptions opts;
  opts.engine = GetParam();
  opts.concurrency = 2;
  MajorCompactor compactor(PosixEnv(), model_.get(), factory_.get(), opts);
  std::vector<CompactionSubtaskInput> subtasks(2);
  for (auto& sub : subtasks) {
    sub.make_input = []() { return NewEmptyIterator(); };
  }
  std::vector<CompactionOutputMeta> outputs;
  MajorCompactionStats stats;
  ASSERT_TRUE(compactor.Run(subtasks, &outputs, &stats).ok());
  EXPECT_TRUE(outputs.empty());
  EXPECT_EQ(stats.input_records, 0u);
}

INSTANTIATE_TEST_SUITE_P(Engines, MajorCompactionTest,
                         ::testing::Values(CompactionEngine::kThread,
                                           CompactionEngine::kCoroutine,
                                           CompactionEngine::kPmBlade));

}  // namespace
}  // namespace pmblade
