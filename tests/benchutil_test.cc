// Tests for the benchmark substrate: key/value/op generators, the YCSB
// workload driver, the online-retail workload and the engine runner.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "benchutil/flags.h"
#include "benchutil/reporter.h"
#include "benchutil/retail_workload.h"
#include "benchutil/runner.h"
#include "benchutil/workload.h"
#include "benchutil/ycsb.h"

namespace pmblade {
namespace bench {
namespace {

TEST(KeyGeneratorTest, FormatsKeysWithPrefixAndPadding) {
  KeySpec spec;
  spec.prefix = "user";
  spec.digits = 8;
  spec.num_keys = 100;
  KeyGenerator gen(spec);
  EXPECT_EQ(gen.KeyAt(0), "user00000000");
  EXPECT_EQ(gen.KeyAt(99), "user00000099");
}

TEST(KeyGeneratorTest, SequentialCycles) {
  KeySpec spec;
  spec.num_keys = 3;
  spec.distribution = Distribution::kSequential;
  KeyGenerator gen(spec);
  EXPECT_EQ(gen.NextIndex(), 0u);
  EXPECT_EQ(gen.NextIndex(), 1u);
  EXPECT_EQ(gen.NextIndex(), 2u);
  EXPECT_EQ(gen.NextIndex(), 0u);
}

TEST(KeyGeneratorTest, AllDistributionsStayInRange) {
  for (Distribution d : {Distribution::kUniform, Distribution::kZipfian,
                         Distribution::kLatest, Distribution::kSequential}) {
    KeySpec spec;
    spec.num_keys = 500;
    spec.distribution = d;
    KeyGenerator gen(spec);
    for (int i = 0; i < 5000; ++i) {
      EXPECT_LT(gen.NextIndex(), 500u);
    }
  }
}

TEST(KeyGeneratorTest, PartitionBoundariesAreAscending) {
  KeySpec spec;
  spec.num_keys = 100000;
  KeyGenerator gen(spec);
  auto boundaries = gen.PartitionBoundaries(8);
  ASSERT_EQ(boundaries.size(), 7u);
  for (size_t i = 1; i < boundaries.size(); ++i) {
    EXPECT_LT(boundaries[i - 1], boundaries[i]);
  }
}

TEST(ValueGeneratorTest, ExactSizeAndDeterministic) {
  ValueGenerator gen(137);
  std::string a = gen.For(42);
  std::string b = gen.For(42);
  std::string c = gen.For(43);
  EXPECT_EQ(a.size(), 137u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(OpChooserTest, RespectsMixProportions) {
  OpMix mix;
  mix.read = 0.7;
  mix.update = 0.3;
  OpChooser chooser(mix, 5);
  int reads = 0, updates = 0, other = 0;
  for (int i = 0; i < 10000; ++i) {
    switch (chooser.Next()) {
      case OpType::kRead: ++reads; break;
      case OpType::kUpdate: ++updates; break;
      default: ++other; break;
    }
  }
  EXPECT_NEAR(reads, 7000, 300);
  EXPECT_NEAR(updates, 3000, 300);
  EXPECT_EQ(other, 0);
}

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    BenchEnvOptions eopts;
    eopts.root = ::testing::TempDir() + "pmblade_benchutil_test";
    eopts.inject_ssd_latency = false;
    eopts.inject_pm_latency = false;
    eopts.memtable_bytes = 64 << 10;
    env_.reset(new BenchEnv(eopts));
  }

  std::unique_ptr<BenchEnv> env_;
};

TEST_F(EngineFixture, RunnerOpensEveryConfig) {
  for (EngineConfig config :
       {EngineConfig::kPmBlade, EngineConfig::kPmBladePm,
        EngineConfig::kPmBladeSsd, EngineConfig::kPmbP,
        EngineConfig::kPmbPI, EngineConfig::kPmbPIC,
        EngineConfig::kRocksStyle, EngineConfig::kMatrixKvSmall,
        EngineConfig::kMatrixKvLarge}) {
    KvEngine* engine = nullptr;
    ASSERT_TRUE(env_->OpenEngine(config, &engine).ok())
        << EngineConfigName(config);
    ASSERT_NE(engine, nullptr);
    ASSERT_TRUE(engine->Put("smoke", "test").ok());
    std::string value;
    ASSERT_TRUE(engine->Get("smoke", &value).ok());
    EXPECT_EQ(value, "test");
    EXPECT_GT(env_->UserBytesWritten(), 0u);
  }
}

TEST_F(EngineFixture, YcsbLoadAndAllWorkloads) {
  KvEngine* engine = nullptr;
  ASSERT_TRUE(env_->OpenEngine(EngineConfig::kPmBlade, &engine).ok());

  YcsbOptions yopts;
  yopts.record_count = 500;
  yopts.operation_count = 300;
  yopts.value_size = 64;

  YcsbResult load;
  ASSERT_TRUE(YcsbLoad(engine, yopts, &load).ok());
  EXPECT_EQ(load.operations, 500u);
  EXPECT_GT(load.ThroughputOpsPerSec(), 0.0);
  EXPECT_EQ(load.insert_latency.count(), 500u);

  for (YcsbWorkload w : {YcsbWorkload::kA, YcsbWorkload::kB,
                         YcsbWorkload::kC, YcsbWorkload::kD,
                         YcsbWorkload::kE, YcsbWorkload::kF}) {
    YcsbResult result;
    ASSERT_TRUE(YcsbRun(engine, w, yopts, &result).ok()) << YcsbName(w);
    EXPECT_EQ(result.operations, 300u) << YcsbName(w);
  }

  // Loaded records are actually present.
  KeySpec spec;
  spec.prefix = yopts.key_prefix;
  spec.num_keys = yopts.record_count;
  KeyGenerator keys(spec);
  std::string value;
  ASSERT_TRUE(engine->Get(keys.KeyAt(123), &value).ok());
  EXPECT_EQ(value.size(), 64u);
}

TEST_F(EngineFixture, YcsbWorkloadMixesDiffer) {
  KvEngine* engine = nullptr;
  ASSERT_TRUE(env_->OpenEngine(EngineConfig::kPmBlade, &engine).ok());
  YcsbOptions yopts;
  yopts.record_count = 300;
  yopts.operation_count = 400;
  yopts.value_size = 32;
  YcsbResult load;
  ASSERT_TRUE(YcsbLoad(engine, yopts, &load).ok());

  YcsbResult c_result, e_result;
  ASSERT_TRUE(YcsbRun(engine, YcsbWorkload::kC, yopts, &c_result).ok());
  ASSERT_TRUE(YcsbRun(engine, YcsbWorkload::kE, yopts, &e_result).ok());
  // C is read-only; E is scan-dominated.
  EXPECT_EQ(c_result.read_latency.count(), 400u);
  EXPECT_EQ(c_result.scan_latency.count(), 0u);
  EXPECT_GT(e_result.scan_latency.count(), 300u);
}

TEST_F(EngineFixture, RetailWorkloadLoadsAndRuns) {
  KvEngine* engine = nullptr;
  ASSERT_TRUE(env_->OpenEngine(EngineConfig::kPmBlade, &engine).ok());

  RetailOptions ropts;
  ropts.load_orders = 40;
  ropts.transactions = 120;
  ropts.bytes_per_order = 2048;
  RetailWorkload workload(ropts);

  RetailResult load, run;
  ASSERT_TRUE(workload.Load(engine, &load).ok());
  EXPECT_EQ(load.transactions, 40u);
  EXPECT_EQ(load.write_latency.count(), 40u);

  ASSERT_TRUE(workload.Run(engine, &run).ok());
  EXPECT_EQ(run.transactions, 120u);
  // All transaction classes executed.
  EXPECT_GT(run.read_latency.count(), 0u);
  EXPECT_GT(run.scan_latency.count(), 0u);
  EXPECT_GT(run.write_latency.count(), 0u);
  EXPECT_GT(workload.next_order(), 40u);  // new orders placed during Run
}

TEST_F(EngineFixture, RetailBoundariesAscending) {
  RetailOptions ropts;
  RetailWorkload workload(ropts);
  auto boundaries = workload.PartitionBoundaries(8);
  EXPECT_GE(boundaries.size(), 3u);
  for (size_t i = 1; i < boundaries.size(); ++i) {
    EXPECT_LT(boundaries[i - 1], boundaries[i]);
  }
}

TEST(FlagsTest, ParsesTypes) {
  const char* argv[] = {"prog", "--count=42", "--rate=2.5", "--on",
                        "--name=zipf"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.Int("count", 0), 42);
  EXPECT_DOUBLE_EQ(flags.Double("rate", 0), 2.5);
  EXPECT_TRUE(flags.Bool("on", false));
  EXPECT_EQ(flags.Str("name", ""), "zipf");
  EXPECT_EQ(flags.Int("absent", 7), 7);
}

TEST(FlagsTest, HasListsUnknownAndPositional) {
  const char* argv[] = {"prog", "--conns=1,8,32", "--typo=x", "seedfile"};
  Flags flags(4, const_cast<char**>(argv));
  EXPECT_TRUE(flags.Has("conns"));
  EXPECT_FALSE(flags.Has("absent"));

  std::vector<int64_t> conns = flags.IntList("conns", {});
  ASSERT_EQ(conns.size(), 3u);
  EXPECT_EQ(conns[0], 1);
  EXPECT_EQ(conns[2], 32);
  std::vector<int64_t> fallback = flags.IntList("absent", {2, 4});
  ASSERT_EQ(fallback.size(), 2u);
  EXPECT_EQ(fallback[1], 4);

  std::vector<std::string> unknown = flags.Unknown({"conns"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");

  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "seedfile");
}

TEST(TablePrinterTest, FormatsUnits) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FmtBytes(512), "512 B");
  EXPECT_EQ(TablePrinter::FmtBytes(2048), "2.00 KiB");
  EXPECT_EQ(TablePrinter::FmtBytes(3 << 20), "3.00 MiB");
  EXPECT_EQ(TablePrinter::FmtNanos(500), "500 ns");
  EXPECT_EQ(TablePrinter::FmtNanos(1500), "1.50 us");
  EXPECT_EQ(TablePrinter::FmtNanos(2.5e6), "2.50 ms");
}

}  // namespace
}  // namespace bench
}  // namespace pmblade
