// Tests for the src/mem subsystem: MemoryBudget invariants (sum
// conservation, floors) and the MemoryArbiter feedback loop (convergence
// under read-heavy / write-heavy / shifting synthetic workloads,
// hysteresis, idle-window gating), plus a DB-level test that exercises
// rebalances racing concurrent Get/Put/flush traffic (run under TSan in
// CI).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/db.h"
#include "core/db_impl.h"
#include "mem/arbiter.h"
#include "mem/memory_budget.h"

namespace pmblade {
namespace mem {
namespace {

constexpr uint64_t kMiB = 1ull << 20;

MemoryBudget MakeBudget(uint64_t total = 32 * kMiB) {
  uint64_t floors[kNumComponents] = {kMiB, kMiB, 4096};
  uint64_t initial[kNumComponents] = {8 * kMiB, 8 * kMiB, 16 * kMiB};
  return MemoryBudget(total, floors, initial);
}

uint64_t SumTargets(const MemoryBudget& b) {
  uint64_t sum = 0;
  for (int i = 0; i < kNumComponents; ++i) sum += b.target(i);
  return sum;
}

TEST(MemoryBudgetTest, SeedsConfiguredSplit) {
  MemoryBudget b = MakeBudget();
  EXPECT_EQ(b.total(), 32 * kMiB);
  EXPECT_EQ(b.target(kMemtable), 8 * kMiB);
  EXPECT_EQ(b.target(kBlockCache), 8 * kMiB);
  EXPECT_EQ(b.target(kKeepSet), 16 * kMiB);
  EXPECT_EQ(SumTargets(b), b.total());
}

TEST(MemoryBudgetTest, SurplusLandsOnKeepSet) {
  uint64_t floors[kNumComponents] = {kMiB, kMiB, 4096};
  uint64_t initial[kNumComponents] = {2 * kMiB, 2 * kMiB, kMiB};
  MemoryBudget b(32 * kMiB, floors, initial);
  EXPECT_EQ(b.target(kMemtable), 2 * kMiB);
  EXPECT_EQ(b.target(kBlockCache), 2 * kMiB);
  EXPECT_EQ(b.target(kKeepSet), 28 * kMiB);
  EXPECT_EQ(SumTargets(b), b.total());
}

TEST(MemoryBudgetTest, DeficitShavedFromLargestHeadroom) {
  uint64_t floors[kNumComponents] = {kMiB, kMiB, 4096};
  uint64_t initial[kNumComponents] = {16 * kMiB, 16 * kMiB, 32 * kMiB};
  MemoryBudget b(32 * kMiB, floors, initial);
  EXPECT_EQ(SumTargets(b), b.total());
  for (int i = 0; i < kNumComponents; ++i) {
    EXPECT_GE(b.target(i), b.floor(i)) << MemComponentName(i);
  }
}

TEST(MemoryBudgetTest, TransferConservesSumAndRespectsFloor) {
  MemoryBudget b = MakeBudget();
  EXPECT_EQ(b.Transfer(kKeepSet, kBlockCache, 4 * kMiB), 4 * kMiB);
  EXPECT_EQ(b.target(kBlockCache), 12 * kMiB);
  EXPECT_EQ(b.target(kKeepSet), 12 * kMiB);
  EXPECT_EQ(SumTargets(b), b.total());

  // Draining past the floor is clamped to the available headroom.
  uint64_t headroom = b.target(kMemtable) - b.floor(kMemtable);
  EXPECT_EQ(b.Transfer(kMemtable, kBlockCache, 100 * kMiB), headroom);
  EXPECT_EQ(b.target(kMemtable), b.floor(kMemtable));
  EXPECT_EQ(b.Transfer(kMemtable, kBlockCache, 1), 0u);
  EXPECT_EQ(SumTargets(b), b.total());

  // Degenerate arguments.
  EXPECT_EQ(b.Transfer(kKeepSet, kKeepSet, kMiB), 0u);
  EXPECT_EQ(b.Transfer(kKeepSet, kBlockCache, 0), 0u);
}

// -- Arbiter convergence on synthetic workloads ----------------------------

/// Cumulative synthetic counters a test bumps between RebalanceOnce calls.
struct SyntheticLoad {
  ArbiterInputs cum;

  /// Read-heavy window with a cold cache and SSD fall-through.
  void ReadHeavy(uint64_t n = 1000) {
    cum.reads += n;
    cum.reads_ssd_l1 += n / 4;
    cum.cache_misses += (n * 3) / 4;
    cum.cache_hits += n / 4;
    cum.bloom_checks += n;
  }
  /// Write-heavy window with flush churn and backpressure.
  void WriteHeavy(uint64_t n = 1000) {
    cum.writes += n;
    cum.slowdowns += n / 4;
    cum.stalls += n / 50;
    cum.flushes += n / 100;
  }
  /// Balanced, pressure-free window.
  void Calm(uint64_t n = 1000) {
    cum.reads += n / 2;
    cum.writes += n / 2;
    cum.cache_hits += n / 2;
  }
};

class ArbiterTest : public ::testing::Test {
 protected:
  void Build(double hysteresis = 1.3) {
    uint64_t floors[kNumComponents] = {kMiB, kMiB, 4096};
    uint64_t initial[kNumComponents] = {8 * kMiB, 8 * kMiB, 16 * kMiB};
    budget_.reset(new MemoryBudget(32 * kMiB, floors, initial));
    ArbiterOptions opts;
    opts.hysteresis = hysteresis;
    arbiter_.reset(new MemoryArbiter(
        opts, budget_.get(), [this] { return load_.cum; },
        [this](int component, uint64_t target) {
          applied_[component] = target;
          ++applies_;
        }));
    // First tick only records the baseline snapshot.
    EXPECT_FALSE(arbiter_->RebalanceOnce());
  }

  SyntheticLoad load_;
  std::unique_ptr<MemoryBudget> budget_;
  std::unique_ptr<MemoryArbiter> arbiter_;
  uint64_t applied_[kNumComponents] = {0, 0, 0};
  int applies_ = 0;
};

TEST_F(ArbiterTest, ReadHeavyColdCacheGrowsBlockCache) {
  Build();
  uint64_t before = budget_->target(kBlockCache);
  for (int i = 0; i < 10; ++i) {
    load_.ReadHeavy();
    arbiter_->RebalanceOnce();
  }
  EXPECT_GT(budget_->target(kBlockCache), before);
  EXPECT_GT(arbiter_->rebalances(), 0u);
  EXPECT_EQ(SumTargets(*budget_), budget_->total());
  // The apply callback saw the winner's new target.
  EXPECT_EQ(applied_[kBlockCache], budget_->target(kBlockCache));
  EXPECT_GT(applies_, 0);
}

TEST_F(ArbiterTest, WriteHeavyBackpressureGrowsMemtable) {
  Build();
  uint64_t before = budget_->target(kMemtable);
  for (int i = 0; i < 10; ++i) {
    load_.WriteHeavy();
    arbiter_->RebalanceOnce();
  }
  EXPECT_GT(budget_->target(kMemtable), before);
  EXPECT_EQ(SumTargets(*budget_), budget_->total());
}

TEST_F(ArbiterTest, ShiftingWorkloadReversesTheFlow) {
  Build();
  for (int i = 0; i < 12; ++i) {
    load_.ReadHeavy();
    arbiter_->RebalanceOnce();
  }
  uint64_t cache_peak = budget_->target(kBlockCache);
  uint64_t mem_low = budget_->target(kMemtable);
  // Flip to write-heavy: budget must flow back toward the memtable.
  for (int i = 0; i < 12; ++i) {
    load_.WriteHeavy();
    arbiter_->RebalanceOnce();
  }
  EXPECT_GT(budget_->target(kMemtable), mem_low);
  EXPECT_LT(budget_->target(kBlockCache), cache_peak);
  EXPECT_EQ(SumTargets(*budget_), budget_->total());
}

TEST_F(ArbiterTest, FloorsHoldUnderSustainedPressure) {
  Build();
  for (int i = 0; i < 200; ++i) {
    load_.ReadHeavy();
    arbiter_->RebalanceOnce();
  }
  for (int i = 0; i < kNumComponents; ++i) {
    EXPECT_GE(budget_->target(i), budget_->floor(i)) << MemComponentName(i);
  }
  EXPECT_EQ(SumTargets(*budget_), budget_->total());
}

TEST_F(ArbiterTest, CalmWindowsDoNotDrift) {
  Build();
  uint64_t before[kNumComponents];
  for (int i = 0; i < kNumComponents; ++i) before[i] = budget_->target(i);
  for (int i = 0; i < 20; ++i) {
    load_.Calm();
    EXPECT_FALSE(arbiter_->RebalanceOnce());
  }
  for (int i = 0; i < kNumComponents; ++i) {
    EXPECT_EQ(budget_->target(i), before[i]) << MemComponentName(i);
  }
  EXPECT_EQ(arbiter_->rebalances(), 0u);
}

TEST_F(ArbiterTest, IdleWindowsAreSkipped) {
  Build();
  // Fewer than min_ops_per_tick operations: the tick is skipped and the
  // pressure math never runs.
  load_.cum.reads += 10;
  load_.cum.cache_misses += 10;
  EXPECT_FALSE(arbiter_->RebalanceOnce());
  EXPECT_EQ(arbiter_->rebalances(), 0u);
}

TEST_F(ArbiterTest, ToJsonReflectsState) {
  Build();
  for (int i = 0; i < 5; ++i) {
    load_.ReadHeavy();
    arbiter_->RebalanceOnce();
  }
  std::string json = arbiter_->ToJson();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"block_cache\""), std::string::npos);
  EXPECT_NE(json.find("\"last_move\""), std::string::npos);
}

// -- DB-level: rebalances racing live traffic ------------------------------

TEST(MemArbiterDbTest, ConcurrentTrafficDuringRebalances) {
  std::string dbname = ::testing::TempDir() + "pmblade_mem_arbiter_test";
  Options options;
  DestroyDB(options, dbname);
  options.memtable_bytes = 64 << 10;
  options.block_cache_bytes = 256 << 10;
  options.pm_pool_capacity = 64 << 20;
  options.pm_latency.inject_latency = false;
  options.memory_budget_bytes = 8ull << 20;
  options.arbiter_interval_ms = 1;  // hammer rebalances under TSan

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::string key = "key" + std::to_string(i % 4096);
      if (!db->Put(WriteOptions(), key, std::string(128, 'v')).ok()) {
        failures.fetch_add(1);
      }
      ++i;
    }
  });
  std::thread reader([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::string value;
      Status s =
          db->Get(ReadOptions(), "key" + std::to_string(i % 8192), &value);
      if (!s.ok() && !s.IsNotFound()) failures.fetch_add(1);
      ++i;
    }
  });
  std::thread flusher([&] {
    for (int i = 0; i < 5; ++i) {
      db->FlushMemTable();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  flusher.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  reader.join();
  EXPECT_EQ(failures.load(), 0);

  std::string json;
  ASSERT_TRUE(db->GetProperty("pmblade.mem.json", &json));
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  uint64_t limit = 0;
  ASSERT_TRUE(db->GetProperty("pmblade.memtable-limit", &limit));
  EXPECT_GT(limit, 0u);

  db.reset();
  DestroyDB(options, dbname);
}

TEST(MemArbiterDbTest, DisabledArbiterReportsSo) {
  std::string dbname = ::testing::TempDir() + "pmblade_mem_arbiter_off_test";
  Options options;
  DestroyDB(options, dbname);
  options.pm_latency.inject_latency = false;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  std::string json;
  ASSERT_TRUE(db->GetProperty("pmblade.mem.json", &json));
  EXPECT_EQ(json, "{\"enabled\":false}");
  db.reset();
  DestroyDB(options, dbname);
}

}  // namespace
}  // namespace mem
}  // namespace pmblade
