// Reference model for crash-recovery checking.
//
// The harness mirrors every write batch it issues into a CrashModel. After a
// simulated power cut and reopen, the recovered database must equal SOME
// batch-boundary prefix of the acknowledged history that is at least as long
// as the durable mark (the last point where durability was promised: a
// synced write acked, or FlushMemTable returned OK). This single check
// enforces both crash-consistency invariants at once:
//
//   * no acknowledged-durable data is lost (prefix >= durable mark), and
//   * no torn group is visible (the state matches at a BATCH boundary —
//     a half-applied batch matches no prefix).
//
// The prefix search is incremental: one merge-walk to diff the base state
// against the recovered state, then O(1) diff-count updates per replayed
// operation, so a check is linear in history size regardless of where the
// matching prefix lies.

#ifndef PMBLADE_TESTS_TEST_MODEL_H_
#define PMBLADE_TESTS_TEST_MODEL_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/db.h"
#include "util/iterator.h"
#include "util/status.h"

namespace pmblade {
namespace test {

struct ModelOp {
  bool is_delete = false;
  std::string key;
  std::string value;  // empty for deletes
};
using ModelBatch = std::vector<ModelOp>;

using KvMap = std::map<std::string, std::string>;

/// Scans a DB's live keys into `out` through a fresh iterator.
inline Status DumpDb(DB* db, KvMap* out) {
  out->clear();
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    (*out)[it->key().ToString()] = it->value().ToString();
  }
  return it->status();
}

class CrashModel {
 public:
  /// Records a batch the harness is about to issue. Batches recorded but
  /// never acknowledged (the op failed because the power went out mid-call)
  /// simply stay below the durable mark: the prefix check then accepts the
  /// recovered state with or without them.
  void RecordBatch(ModelBatch batch) { history_.push_back(std::move(batch)); }

  /// Promotes everything recorded so far to "must survive any crash". Call
  /// after a sync-write acks (group commit syncs the whole log prefix) or
  /// after FlushMemTable returns OK (flush + manifest commit cover every
  /// acknowledged write that preceded the call).
  void MarkDurable() { durable_mark_ = history_.size(); }

  size_t durable_mark() const { return durable_mark_; }
  size_t history_size() const { return history_.size(); }

  /// Expected state if every recorded batch (acked or not) applied.
  KvMap FullState() const {
    KvMap state = base_;
    for (const ModelBatch& b : history_) ApplyBatch(b, &state);
    return state;
  }

  /// Verifies `recovered` equals some prefix history_[0..k) applied to the
  /// base state with k >= durable_mark. On success, collapses the model to
  /// the recovered reality (base = recovered, history cleared) so the
  /// harness can keep writing against the reopened DB; on failure, leaves
  /// the model untouched and explains the mismatch in `*why`.
  bool CheckRecovered(const KvMap& recovered, std::string* why) {
    KvMap state = base_;
    // diff = number of keys on which `state` and `recovered` disagree.
    size_t diff = 0;
    {
      auto a = state.begin();
      auto b = recovered.begin();
      while (a != state.end() || b != recovered.end()) {
        if (b == recovered.end() || (a != state.end() && a->first < b->first)) {
          ++diff;
          ++a;
        } else if (a == state.end() || b->first < a->first) {
          ++diff;
          ++b;
        } else {
          if (a->second != b->second) ++diff;
          ++a;
          ++b;
        }
      }
    }

    size_t best_k = kNoMatch;
    size_t first_match = kNoMatch;  // any k, even below the durable mark
    for (size_t k = 0; k <= history_.size(); ++k) {
      if (diff == 0) {
        if (first_match == kNoMatch) first_match = k;
        if (k >= durable_mark_) {
          best_k = k;
          break;
        }
      }
      if (k == history_.size()) break;
      for (const ModelOp& op : history_[k]) {
        bool was = KeyMatches(state, recovered, op.key);
        ApplyOp(op, &state);
        bool now = KeyMatches(state, recovered, op.key);
        if (was && !now) {
          ++diff;
        } else if (!was && now) {
          --diff;
        }
      }
    }

    if (best_k == kNoMatch) {
      if (why != nullptr) {
        char buf[160];
        if (first_match != kNoMatch) {
          snprintf(buf, sizeof(buf),
                   "acknowledged-durable data lost: recovered state matches "
                   "prefix %zu but the durable mark is %zu (of %zu batches)",
                   first_match, durable_mark_, history_.size());
        } else {
          snprintf(buf, sizeof(buf),
                   "recovered state matches NO batch-boundary prefix of the "
                   "%zu-batch history (durable mark %zu) — torn batch or "
                   "phantom/corrupt data",
                   history_.size(), durable_mark_);
        }
        *why = buf;
        AppendDiffSample(FullState(), recovered, why);
      }
      return false;
    }

    base_ = recovered;
    history_.clear();
    durable_mark_ = 0;
    return true;
  }

 private:
  static constexpr size_t kNoMatch = static_cast<size_t>(-1);

  static void ApplyOp(const ModelOp& op, KvMap* state) {
    if (op.is_delete) {
      state->erase(op.key);
    } else {
      (*state)[op.key] = op.value;
    }
  }
  static void ApplyBatch(const ModelBatch& batch, KvMap* state) {
    for (const ModelOp& op : batch) ApplyOp(op, state);
  }

  /// Appends the first few keys where `recovered` disagrees with the
  /// expected full-history state — the raw material for diagnosing a
  /// failure (the prefix check itself says only that none matched).
  static void AppendDiffSample(const KvMap& expected, const KvMap& recovered,
                               std::string* why) {
    int shown = 0;
    auto a = expected.begin();
    auto b = recovered.begin();
    while ((a != expected.end() || b != recovered.end()) && shown < 4) {
      if (b == recovered.end() ||
          (a != expected.end() && a->first < b->first)) {
        *why += "\n  vs full state: missing key '" + a->first + "'";
        ++a;
        ++shown;
      } else if (a == expected.end() || b->first < a->first) {
        *why += "\n  vs full state: phantom key '" + b->first + "' = '" +
                b->second.substr(0, 32) + "'";
        ++b;
        ++shown;
      } else {
        if (a->second != b->second) {
          *why += "\n  vs full state: key '" + a->first + "' = '" +
                  b->second.substr(0, 32) + "' want '" +
                  a->second.substr(0, 32) + "'";
          ++shown;
        }
        ++a;
        ++b;
      }
    }
  }

  static bool KeyMatches(const KvMap& a, const KvMap& b,
                         const std::string& key) {
    auto ia = a.find(key);
    auto ib = b.find(key);
    if (ia == a.end()) return ib == b.end();
    return ib != b.end() && ia->second == ib->second;
  }

  KvMap base_;
  std::vector<ModelBatch> history_;
  size_t durable_mark_ = 0;
};

}  // namespace test
}  // namespace pmblade

#endif  // PMBLADE_TESTS_TEST_MODEL_H_
