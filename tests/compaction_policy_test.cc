// Tests for the pluggable compaction-policy framework: unit tests over the
// pickers as pure functions (hand-built PickContexts, no engine), a
// differential test driving identical workloads into leveled / tiered /
// lazy-leveling DBs and demanding identical logical contents, the
// policy-switch-across-reopen guarantee, and Options sanitization.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compaction/cost_model.h"
#include "compaction/policy/pickers.h"
#include "core/db.h"
#include "util/random.h"

namespace pmblade {
namespace {

// ---------------------------------------------------------------------------
// Picker unit tests: pure functions over hand-built contexts.
// ---------------------------------------------------------------------------

CompactionPolicyOptions PolicyOpts(const std::string& name,
                                   uint32_t ratio = 3,
                                   uint32_t levels = 3) {
  CompactionPolicyOptions opts;
  opts.policy = name;
  opts.size_ratio = ratio;
  opts.max_ssd_levels = levels;
  return opts;
}

// One partition whose run stack carries the given level tags (newest
// first), 1 KB per run.
PartitionView MakeView(const std::vector<uint32_t>& levels,
                       uint64_t l0_bytes = 0) {
  PartitionView view;
  view.l0_bytes = l0_bytes;
  view.counters.size_bytes = l0_bytes;
  for (uint32_t level : levels) {
    PartitionView::RunView run;
    run.level = level;
    run.bytes = 1024;
    view.runs.push_back(run);
  }
  return view;
}

PickContext MakeContext(const std::vector<PartitionView>& views) {
  PickContext ctx;
  ctx.partitions = views;
  for (const PartitionView& v : views) ctx.total_l0_bytes += v.l0_bytes;
  return ctx;
}

// Cost model whose Eq. 3 gate always fires and whose keep-set budget
// retains nothing, so PickEviction victimizes every claimable partition
// with level-0 data — isolating the per-policy job shape.
CostModelParams EagerParams() {
  CostModelParams params;
  params.tau_m = 1;
  params.tau_t = 1;  // every partition is bigger than the keep budget
  return params;
}

std::unique_ptr<CompactionPicker> MakePicker(const CompactionPolicyOptions& o,
                                             const CostModel* model) {
  std::unique_ptr<CompactionPicker> picker;
  EXPECT_TRUE(NewCompactionPicker(o, model, &picker).ok());
  return picker;
}

TEST(CompactionPickerTest, FactoryAcceptsKnownNamesOnly) {
  EXPECT_TRUE(IsValidCompactionPolicy("leveled"));
  EXPECT_TRUE(IsValidCompactionPolicy("tiered"));
  EXPECT_TRUE(IsValidCompactionPolicy("lazy_leveling"));
  EXPECT_FALSE(IsValidCompactionPolicy("universal"));
  EXPECT_FALSE(IsValidCompactionPolicy("Leveled"));
  EXPECT_FALSE(IsValidCompactionPolicy(""));

  CostModel model(EagerParams());
  std::unique_ptr<CompactionPicker> picker;
  Status s = NewCompactionPicker(PolicyOpts("universal"), &model, &picker);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  ASSERT_TRUE(
      NewCompactionPicker(PolicyOpts("lazy_leveling"), &model, &picker).ok());
  EXPECT_STREQ(picker->name(), "lazy_leveling");
  EXPECT_EQ(picker->kind(), CompactionPolicyKind::kLazyLeveling);
}

TEST(CompactionPickerTest, EvictionJobShapesPerPolicy) {
  CostModel model(EagerParams());
  PickContext ctx = MakeContext({MakeView({1, 1}, /*l0_bytes=*/4096)});

  // Leveled: level-0 merges with the whole stack into one level-1 run.
  EvictionPick pick =
      MakePicker(PolicyOpts("leveled"), &model)->PickEviction(ctx);
  ASSERT_TRUE(pick.evaluated);
  ASSERT_EQ(pick.jobs.size(), 1u);
  EXPECT_TRUE(pick.jobs[0].include_l0);
  EXPECT_EQ(pick.jobs[0].run_begin, 0u);
  EXPECT_EQ(pick.jobs[0].run_end, 2u);
  EXPECT_EQ(pick.jobs[0].output_level, 1u);

  // Tiered: a fresh level-1 run stacks on top; nothing is rewritten.
  pick = MakePicker(PolicyOpts("tiered"), &model)->PickEviction(ctx);
  ASSERT_EQ(pick.jobs.size(), 1u);
  EXPECT_TRUE(pick.jobs[0].include_l0);
  EXPECT_EQ(pick.jobs[0].run_begin, 0u);
  EXPECT_EQ(pick.jobs[0].run_end, 0u);
  EXPECT_EQ(pick.jobs[0].output_level, 1u);

  // Lazy leveling stacks like tiered while the tree has upper levels...
  pick = MakePicker(PolicyOpts("lazy_leveling"), &model)->PickEviction(ctx);
  ASSERT_EQ(pick.jobs.size(), 1u);
  EXPECT_EQ(pick.jobs[0].run_end, 0u);

  // ...but a one-level tree is all last level, which is leveled.
  pick = MakePicker(PolicyOpts("lazy_leveling", 3, /*levels=*/1), &model)
             ->PickEviction(ctx);
  ASSERT_EQ(pick.jobs.size(), 1u);
  EXPECT_EQ(pick.jobs[0].run_end, 2u);
  EXPECT_EQ(pick.jobs[0].output_level, 1u);
}

TEST(CompactionPickerTest, EvictionSkipsUnclaimableAndEmptyPartitions) {
  CostModel model(EagerParams());
  PartitionView claimed = MakeView({}, 4096);
  claimed.claimable = false;
  PickContext ctx =
      MakeContext({claimed, MakeView({}, 0), MakeView({}, 4096)});
  EvictionPick pick =
      MakePicker(PolicyOpts("tiered"), &model)->PickEviction(ctx);
  ASSERT_TRUE(pick.evaluated);
  ASSERT_EQ(pick.jobs.size(), 1u);
  EXPECT_EQ(pick.jobs[0].partition_index, 2u);
}

TEST(LeveledPickerTest, MaintenanceOnlyFiresOnForeignShapes) {
  CostModel model(EagerParams());
  std::unique_ptr<CompactionPicker> picker =
      MakePicker(PolicyOpts("leveled"), &model);

  // Steady-state leveled shapes: nothing to do.
  EXPECT_TRUE(picker->PickMaintenance(MakeContext({MakeView({})})).empty());
  EXPECT_TRUE(picker->PickMaintenance(MakeContext({MakeView({1})})).empty());

  // A stack inherited from a tiered run collapses to one level-1 run.
  std::vector<CompactionJob> jobs =
      picker->PickMaintenance(MakeContext({MakeView({1, 1, 2, 2})}));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_FALSE(jobs[0].include_l0);
  EXPECT_EQ(jobs[0].run_begin, 0u);
  EXPECT_EQ(jobs[0].run_end, 4u);
  EXPECT_EQ(jobs[0].output_level, 1u);

  // A single run tagged deeper than level 1 is foreign too.
  jobs = picker->PickMaintenance(MakeContext({MakeView({2})}));
  ASSERT_EQ(jobs.size(), 1u);

  // Unclaimable partitions are off limits.
  PartitionView claimed = MakeView({1, 1});
  claimed.claimable = false;
  EXPECT_TRUE(picker->PickMaintenance(MakeContext({claimed})).empty());
}

TEST(TieredPickerTest, DeepestOversizedBlockMergesDown) {
  CostModel model(EagerParams());
  std::unique_ptr<CompactionPicker> picker =
      MakePicker(PolicyOpts("tiered", /*ratio=*/3, /*levels=*/3), &model);

  // Below the ratio: stacks are left alone.
  EXPECT_TRUE(
      picker->PickMaintenance(MakeContext({MakeView({1, 1})})).empty());

  // A full level-1 block merges to level 2.
  std::vector<CompactionJob> jobs =
      picker->PickMaintenance(MakeContext({MakeView({1, 1, 1})}));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_FALSE(jobs[0].include_l0);
  EXPECT_EQ(jobs[0].run_begin, 0u);
  EXPECT_EQ(jobs[0].run_end, 3u);
  EXPECT_EQ(jobs[0].output_level, 2u);

  // Two oversized blocks: the DEEPEST one goes first, so cascades settle
  // bottom-up.
  jobs = picker->PickMaintenance(
      MakeContext({MakeView({1, 1, 1, 2, 2, 2})}));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].run_begin, 3u);
  EXPECT_EQ(jobs[0].run_end, 6u);
  EXPECT_EQ(jobs[0].output_level, 3u);

  // At the deepest level the block merges in place.
  jobs = picker->PickMaintenance(MakeContext({MakeView({3, 3, 3})}));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].output_level, 3u);
  EXPECT_EQ(jobs[0].run_begin, 0u);
  EXPECT_EQ(jobs[0].run_end, 3u);

  // At most one job per partition per round; independent partitions each
  // get theirs.
  jobs = picker->PickMaintenance(
      MakeContext({MakeView({1, 1, 1}), MakeView({2, 2, 2})}));
  EXPECT_EQ(jobs.size(), 2u);
}

TEST(LazyLevelingPickerTest, LastLevelStaysSingleRun) {
  CostModel model(EagerParams());
  std::unique_ptr<CompactionPicker> picker = MakePicker(
      PolicyOpts("lazy_leveling", /*ratio=*/3, /*levels=*/3), &model);

  // Invariant 1: two runs tagged at (or beyond) the last level merge back
  // into one, before any upper-level work.
  std::vector<CompactionJob> jobs =
      picker->PickMaintenance(MakeContext({MakeView({1, 3, 3})}));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].run_begin, 1u);
  EXPECT_EQ(jobs[0].run_end, 3u);
  EXPECT_EQ(jobs[0].output_level, 3u);

  // Invariant 2: a full upper block merges one level down, tiered-style.
  jobs = picker->PickMaintenance(MakeContext({MakeView({1, 1, 1, 3})}));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].run_begin, 0u);
  EXPECT_EQ(jobs[0].run_end, 3u);
  EXPECT_EQ(jobs[0].output_level, 2u);

  // A block landing ON the last level absorbs the existing last-level run,
  // keeping the bottom single-run.
  jobs = picker->PickMaintenance(MakeContext({MakeView({2, 2, 2, 3})}));
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].run_begin, 0u);
  EXPECT_EQ(jobs[0].run_end, 4u);
  EXPECT_EQ(jobs[0].output_level, 3u);

  // A legal lazy-leveling shape is left alone.
  EXPECT_TRUE(
      picker->PickMaintenance(MakeContext({MakeView({1, 1, 3})})).empty());
}

// ---------------------------------------------------------------------------
// Engine-level tests.
// ---------------------------------------------------------------------------

Options SmallDbOptions() {
  Options options;
  options.memtable_bytes = 16 << 10;
  options.pm_pool_capacity = 64 << 20;
  options.pm_latency.inject_latency = false;
  options.partition_boundaries = {"key25", "key5", "key75"};
  // Tight budgets so evictions (and thus the SSD shapes) happen many times
  // over a small workload.
  options.cost.tau_m = 64 << 10;
  options.cost.tau_t = 16 << 10;
  options.cost.tau_w = 8 << 10;
  return options;
}

// The shared deterministic workload: multi-wave puts / overwrites /
// deletes over keys that straddle every partition boundary, with flushes
// and forced evictions between waves. Returns the expected final contents.
std::map<std::string, std::string> RunDifferentialWorkload(DB* db) {
  std::map<std::string, std::string> model;
  Random rnd(20230615);
  std::string filler(96, 'x');
  for (int wave = 0; wave < 6; ++wave) {
    for (int op = 0; op < 250; ++op) {
      std::string key = "key" + std::to_string(rnd.Uniform(400));
      if (rnd.Uniform(10) < 2) {
        model.erase(key);
        EXPECT_TRUE(db->Delete(WriteOptions(), key).ok());
      } else {
        std::string value =
            "w" + std::to_string(wave) + "-" + std::to_string(op) + filler;
        model[key] = value;
        EXPECT_TRUE(db->Put(WriteOptions(), key, value).ok());
      }
    }
    EXPECT_TRUE(db->FlushMemTable().ok());
    if (wave % 2 == 1) {
      EXPECT_TRUE(db->CompactToLevel1(/*respect_cost_model=*/true).ok());
    }
  }
  return model;
}

void CheckContents(DB* db, const std::map<std::string, std::string>& model,
                   const std::string& label) {
  // Full scan matches the model exactly.
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  auto expect = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expect) {
    ASSERT_NE(expect, model.end())
        << label << ": surplus key " << it->key().ToString();
    ASSERT_EQ(it->key().ToString(), expect->first) << label;
    ASSERT_EQ(it->value().ToString(), expect->second) << label;
  }
  ASSERT_EQ(expect, model.end()) << label << ": scan ended early";

  // Point reads agree, including deleted keys staying dead.
  for (int i = 0; i < 400; ++i) {
    std::string key = "key" + std::to_string(i);
    std::string value;
    Status s = db->Get(ReadOptions(), key, &value);
    auto hit = model.find(key);
    if (hit == model.end()) {
      ASSERT_TRUE(s.IsNotFound()) << label << ": " << key;
    } else {
      ASSERT_TRUE(s.ok()) << label << ": " << key << " " << s.ToString();
      ASSERT_EQ(value, hit->second) << label << ": " << key;
    }
  }
}

TEST(CompactionPolicyDifferentialTest, PoliciesAgreeOnContents) {
  for (const char* policy : {"leveled", "tiered", "lazy_leveling"}) {
    std::string dbname =
        ::testing::TempDir() + "pmblade_policy_diff_" + policy;
    Options options = SmallDbOptions();
    options.compaction_policy = policy;
    DestroyDB(options, dbname);

    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok()) << policy;
    std::map<std::string, std::string> model =
        RunDifferentialWorkload(db.get());
    CheckContents(db.get(), model, policy);

    std::string name;
    ASSERT_TRUE(db->GetProperty("pmblade.compaction-policy", &name));
    EXPECT_EQ(name, policy);

    // Same policy across a reopen: recovery rebuilds the run stacks from
    // the manifest and the contents survive.
    db.reset();
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok()) << policy;
    CheckContents(db.get(), model, std::string(policy) + "/reopened");
    db.reset();
    DestroyDB(options, dbname);
  }
}

// Options under which EVERY flush-completion check evicts everything: the
// Eq. 3 gate is a few KB and the keep-set budget retains nothing, so the
// background scheduler (drained by FlushMemTable) pushes level-0 to the
// SSD once per wave and the per-policy shapes diverge deterministically.
Options EagerEvictionOptions() {
  Options options = SmallDbOptions();
  options.cost.tau_m = 8 << 10;
  options.cost.tau_t = 1 << 10;
  return options;
}

// Six waves of puts covering all four partitions, flushed (and therefore
// evicted, under EagerEvictionOptions) per wave. No forced CompactToLevel1:
// that API flattens any policy's stack by contract.
std::map<std::string, std::string> BuildStackedTree(DB* db) {
  std::map<std::string, std::string> model;
  std::string filler(96, 'x');
  for (int wave = 0; wave < 6; ++wave) {
    for (int op = 0; op < 200; ++op) {
      std::string key = "key" + std::to_string((wave * 200 + op) % 400);
      std::string value = "s" + std::to_string(wave) + filler;
      model[key] = value;
      EXPECT_TRUE(db->Put(WriteOptions(), key, value).ok());
    }
    EXPECT_TRUE(db->FlushMemTable().ok());
  }
  return model;
}

TEST(CompactionPolicyTest, TieredStacksRunsWhereLeveledCollapses) {
  uint64_t runs_by_policy[2] = {0, 0};
  const char* policies[2] = {"leveled", "tiered"};
  for (int i = 0; i < 2; ++i) {
    std::string dbname =
        ::testing::TempDir() + "pmblade_policy_shape_" + policies[i];
    Options options = EagerEvictionOptions();
    options.compaction_policy = policies[i];
    DestroyDB(options, dbname);
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

    std::map<std::string, std::string> model = BuildStackedTree(db.get());
    ASSERT_TRUE(db->GetProperty("pmblade.num-ssd-runs", &runs_by_policy[i]));

    uint64_t max_level = 0;
    ASSERT_TRUE(db->GetProperty("pmblade.max-ssd-level", &max_level));
    if (i == 0) {
      // Leveled: one run per non-empty partition, all tagged level 1.
      EXPECT_LE(runs_by_policy[0], 4u);
      EXPECT_LE(max_level, 1u);
    }
    CheckContents(db.get(), model, policies[i]);
    db.reset();
    DestroyDB(options, dbname);
  }
  // Tiered defers merges, so it ends the identical eviction schedule with
  // strictly more runs than leveled's one-per-partition.
  EXPECT_GT(runs_by_policy[1], runs_by_policy[0]);
}

TEST(CompactionPolicyTest, SwitchingPolicyAcrossReopenConverges) {
  std::string dbname = ::testing::TempDir() + "pmblade_policy_switch";
  Options options = EagerEvictionOptions();
  options.compaction_policy = "tiered";
  DestroyDB(options, dbname);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  std::map<std::string, std::string> model = BuildStackedTree(db.get());
  db.reset();

  // Reopen the tiered-built tree as leveled: every run stack is
  // self-describing in the manifest, so the leveled picker inherits it and
  // a forced compaction converges it to the leveled single-run shape.
  options.compaction_policy = "leveled";
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  CheckContents(db.get(), model, "tiered->leveled");
  ASSERT_TRUE(db->CompactToLevel1(/*respect_cost_model=*/false).ok());
  uint64_t runs = 0, max_level = 0;
  ASSERT_TRUE(db->GetProperty("pmblade.num-ssd-runs", &runs));
  ASSERT_TRUE(db->GetProperty("pmblade.max-ssd-level", &max_level));
  EXPECT_LE(runs, 4u);       // <= one run per partition
  EXPECT_LE(max_level, 1u);  // all level-1
  CheckContents(db.get(), model, "tiered->leveled/compacted");

  // And back onto a stacking policy: the leveled shape is a legal (if
  // shallow) lazy-leveling shape, so nothing breaks.
  db.reset();
  options.compaction_policy = "lazy_leveling";
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  CheckContents(db.get(), model, "leveled->lazy_leveling");
  db.reset();
  DestroyDB(options, dbname);
}

TEST(CompactionPolicyTest, OpenRejectsBadPolicyConfigurations) {
  std::string dbname = ::testing::TempDir() + "pmblade_policy_sanitize";
  std::unique_ptr<DB> db;

  Options options = SmallDbOptions();
  options.compaction_policy = "universal";
  Status s = DB::Open(options, dbname, &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  // Non-leveled policies need the cost-model scheduler.
  options = SmallDbOptions();
  options.compaction_policy = "tiered";
  options.enable_cost_model = false;
  s = DB::Open(options, dbname, &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  options = SmallDbOptions();
  options.compaction_size_ratio = 1;
  s = DB::Open(options, dbname, &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  options = SmallDbOptions();
  options.max_ssd_levels = 0;
  s = DB::Open(options, dbname, &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

}  // namespace
}  // namespace pmblade
