// Randomized crash-recovery driver for the SHARDED engine's cross-shard
// atomicity, shared by tests/crash_recovery_test.cc and tools/crash_stress.
//
// Each cycle: open a 4-shard ShardedDB under a CrashEnv, verify every
// batch the model remembers is ALL-or-NOTHING in the recovered state, run
// a workload of cross-shard and single-shard WriteBatches (unique,
// never-reused keys, so presence is unambiguous) with occasional facade
// flushes, then power-cut the machine — between operations or from a
// SyncPoint callback inside the two-phase commit (after a shard's prepare
// fsync, between the prepare and commit waves, after a commit append,
// before publish, at WAL-rotation carry-forward) — and loop.
//
// The invariants, checked against the recovered state after every reopen:
//   * NO batch may ever be partially present — a cross-shard batch whose
//     keys straddle shard WALs must recover either whole or not at all
//     (this is the property 2PC exists to provide; the legacy independent
//     commits fail it at the first cut between two shards' appends);
//   * an ACKNOWLEDGED cross-shard batch must be fully present: phase-1
//     prepares are always fsynced, so the ack implies durability even for
//     sync=false writes (upgraded durability);
//   * an acknowledged sync=true batch of any shape must be fully present.
//
// Unlike tests/crash_harness.h there is no global-prefix write model: each
// shard's WAL tears independently, so "visible state is a prefix of the
// issued writes" does not hold across shards — all-or-nothing per batch is
// the sharded contract. PM persist-granularity simulation is also out of
// scope (it needs per-shard pool handles; the single-shard harness covers
// that axis).

#ifndef PMBLADE_TESTS_SHARDED_CRASH_HARNESS_H_
#define PMBLADE_TESTS_SHARDED_CRASH_HARNESS_H_

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/db.h"
#include "core/sharded_db.h"
#include "env/crash_env.h"
#include "memtable/write_batch.h"
#include "util/random.h"
#include "util/sync_point.h"

namespace pmblade {
namespace test {

struct ShardedCrashHarnessOptions {
  std::string dbname;
  uint64_t seed = 0xb1adeu;  // fixed default: CI failures replay exactly
  int cycles = 100;
  uint32_t num_shards = 4;
  int max_ops_per_cycle = 40;
  /// Start from a fresh DB every this many cycles so the model (and the
  /// per-reopen check cost) stays bounded.
  int fresh_db_period = 20;
  /// Exercise the legacy non-atomic path instead (expected to FAIL the
  /// all-or-nothing check under cross-shard cuts — used by the meta-test
  /// that proves the checker has teeth).
  bool atomic_cross_shard_batches = true;
  /// SSD compaction shape for every shard (Options::compaction_policy).
  std::string compaction_policy = "leveled";
  bool verbose = false;
  std::function<bool()> stop_requested;
};

struct ShardedCrashHarnessResult {
  int cycles_run = 0;
  int syncpoint_crashes = 0;
  int between_op_crashes = 0;
  long long batches_issued = 0;
  long long cross_shard_batches = 0;
  int failed_cycle = -1;
  bool interrupted = false;
  std::string failure;  // empty = every invariant held
  bool ok() const { return failure.empty(); }
};

class ShardedCrashHarness {
 public:
  explicit ShardedCrashHarness(const ShardedCrashHarnessOptions& opts)
      : opts_(opts), rnd_(opts.seed), crash_env_(PosixEnv(), opts.seed) {}

  ShardedCrashHarnessResult Run() {
    ShardedCrashHarnessResult result;
    Options options = MakeOptions();
    for (int cycle = 0; cycle < opts_.cycles; ++cycle) {
      if (opts_.stop_requested && opts_.stop_requested()) {
        result.interrupted = true;
        break;
      }
      if (cycle % opts_.fresh_db_period == 0) {
        crash_env_.ResetState();
        DestroyDB(options, opts_.dbname);
        batches_.clear();
      }
      if (!RunCycle(options, cycle, &result)) {
        result.failed_cycle = cycle;
        return result;
      }
      ++result.cycles_run;
    }
    // Final reopen: the last crash's image must also check out.
    crash_env_.ResetState();
    std::unique_ptr<DB> db;
    Status s = DB::Open(options, opts_.dbname, &db);
    if (!s.ok()) {
      result.failure = "final reopen failed: " + s.ToString();
      return result;
    }
    std::string why;
    if (!CheckBatches(db.get(), &why)) {
      result.failure = "final check: " + why;
      return result;
    }
    db.reset();
    DestroyDB(options, opts_.dbname);
    return result;
  }

 private:
  /// One issued WriteBatch the checker replays: unique keys with their
  /// unique values, whether it spanned shards, and how it was acked.
  struct BatchRecord {
    std::vector<std::pair<std::string, std::string>> kvs;
    bool multi_shard = false;
    bool acked = false;
    bool synced = false;
  };

  struct CrashSite {
    const char* point;
    bool needs_flush;  // workload must flush to reach it
  };
  static const std::vector<CrashSite>& Sites() {
    static const std::vector<CrashSite> sites = {
        // The 2PC seams: after one participant's prepare is durable (its
        // siblings may not be), between the prepare and commit waves, after
        // a commit marker hits a WAL (unsynced), just before publish.
        {"DBImpl::PrepareTxn:AfterSync", false},
        {"ShardedDB::Write:AfterPrepare", false},
        {"DBImpl::CommitTxn:AfterAppend", false},
        {"DBImpl::CommitTxn:BeforePublish", false},
        // Retained-fence carry-forward at WAL rotation, and the plain
        // write-path/flush cuts on whichever shard trips them first.
        {"DBImpl::NewWal:TxnRecordsCarried", true},
        {"DBImpl::Write:AfterWalAppend", false},
        {"DBImpl::Write:AfterWalSync", false},
        {"DBImpl::SwitchMemTable:AfterNewWal", true},
        {"DBImpl::BackgroundFlush:Installed", true},
        {"DBImpl::BackgroundFlush:WalsDeleted", true},
    };
    return sites;
  }

  Options MakeOptions() {
    Options options;
    options.env = &crash_env_;
    options.raw_env = &crash_env_;
    options.num_shards = opts_.num_shards;
    options.atomic_cross_shard_batches = opts_.atomic_cross_shard_batches;
    options.memtable_bytes = 16 << 10;  // rotate + flush often (per shard)
    options.pm_pool_capacity = 16 << 20;  // per shard
    options.pm_latency.inject_latency = false;
    options.compaction_policy = opts_.compaction_policy;
    return options;
  }

  /// A fresh, never-before-used key routed to `shard`. Unique keys make
  /// the all-or-nothing check unambiguous: a key is either this batch's
  /// write or absent — no overwrite can mask a torn batch.
  std::string FreshKeyFor(uint32_t shard) {
    for (uint64_t probe = 0;; ++probe) {
      std::string key = "u" + std::to_string(next_key_id_) + "x" +
                        std::to_string(probe);
      if (ShardedDB::ShardOfKey(key, opts_.num_shards) == shard) {
        ++next_key_id_;
        return key;
      }
    }
  }

  bool CheckBatches(DB* db, std::string* why) {
    for (size_t i = 0; i < batches_.size(); ++i) {
      const BatchRecord& batch = batches_[i];
      size_t present = 0;
      for (const auto& kv : batch.kvs) {
        std::string value;
        Status s = db->Get(ReadOptions(), kv.first, &value);
        if (s.ok()) {
          if (value != kv.second) {
            *why = "batch " + std::to_string(i) + ": key " + kv.first +
                   " has foreign value";
            return false;
          }
          ++present;
        } else if (!s.IsNotFound()) {
          *why = "read error on " + kv.first + ": " + s.ToString();
          return false;
        }
      }
      if (present != 0 && present != batch.kvs.size()) {
        *why = "batch " + std::to_string(i) + " recovered TORN: " +
               std::to_string(present) + "/" +
               std::to_string(batch.kvs.size()) + " keys present" +
               (batch.multi_shard ? " (cross-shard)" : "");
        return false;
      }
      const bool must_survive =
          batch.acked && (batch.synced || batch.multi_shard);
      if (must_survive && present != batch.kvs.size()) {
        *why = "batch " + std::to_string(i) + " was acked" +
               (batch.multi_shard ? " (cross-shard => prepares fsynced)"
                                  : " (sync=true)") +
               " but lost after reopen";
        return false;
      }
    }
    return true;
  }

  bool RunCycle(const Options& options, int cycle,
                ShardedCrashHarnessResult* result) {
    crash_env_.ResetState();
    std::unique_ptr<DB> db;
    Status s = DB::Open(options, opts_.dbname, &db);
    if (!s.ok()) {
      result->failure = "reopen failed: " + s.ToString();
      return false;
    }
    std::string why;
    if (!CheckBatches(db.get(), &why)) {
      result->failure = why;
      Teardown(&db);
      return false;
    }

    // ---- crash plan ----
    PowerCutOptions cut;
    cut.keep_unsynced = rnd_.Uniform(2) == 0;
    cut.tear_last_block = cut.keep_unsynced && rnd_.Uniform(2) == 0;
#ifdef PMBLADE_SYNC_POINTS
    const bool use_syncpoint = rnd_.Uniform(10) < 6;
#else
    const bool use_syncpoint = false;
#endif
    const CrashSite* site = nullptr;
    std::atomic<int> countdown{0};
    std::atomic<bool> crash_fired{false};
    auto fire = [&] {
      if (crash_fired.exchange(true)) return;
      crash_env_.PowerCut(cut);
    };
#ifdef PMBLADE_SYNC_POINTS
    if (use_syncpoint) {
      site = &Sites()[rnd_.Uniform(static_cast<uint32_t>(Sites().size()))];
      // 2PC sites fire once per participant, so a small countdown lands the
      // cut on different shards of the same batch across cycles.
      countdown.store(static_cast<int>(rnd_.Uniform(6)));
      SyncPoint::GetInstance()->SetCallBack(site->point, [&](void*) {
        if (countdown.fetch_sub(1) <= 0) fire();
      });
      SyncPoint::GetInstance()->EnableProcessing();
    }
#endif
    const int planned_ops =
        1 + static_cast<int>(
                rnd_.Uniform(static_cast<uint32_t>(opts_.max_ops_per_cycle)));

    // ---- workload ----
    for (int op = 0; op < planned_ops; ++op) {
      const uint32_t roll = rnd_.Uniform(100);
      if (roll < 5 || (site != nullptr && site->needs_flush && roll < 20)) {
        // Facade flush (all shards): exercises fence retention across
        // memtable flushes and the carry-forward path at WAL rotation.
        Status flush_status = db->FlushMemTable();
        if (!flush_status.ok() &&
            !(crash_fired.load() || crash_env_.dead())) {
          result->failure = "unexpected flush error (cycle " +
                            std::to_string(cycle) +
                            "): " + flush_status.ToString();
          Teardown(&db);
          return false;
        }
        if (crash_fired.load() || crash_env_.dead()) break;
        continue;
      }

      // 70% cross-shard batches (the protocol under test), 30% single-shard
      // (the fast path must coexist in the same WALs).
      BatchRecord record;
      std::vector<uint32_t> shards;
      if (rnd_.Uniform(10) < 7 && opts_.num_shards > 1) {
        const uint32_t n_shards =
            2 + rnd_.Uniform(opts_.num_shards - 1);  // 2..num_shards
        uint32_t first = rnd_.Uniform(opts_.num_shards);
        for (uint32_t i = 0; i < n_shards; ++i) {
          shards.push_back((first + i) % opts_.num_shards);
        }
        record.multi_shard = true;
      } else {
        shards.push_back(rnd_.Uniform(opts_.num_shards));
      }
      WriteBatch wb;
      const std::string token = "v" + std::to_string(next_key_id_);
      for (uint32_t shard : shards) {
        // 1-2 keys per participating shard.
        const int keys = 1 + static_cast<int>(rnd_.Uniform(2));
        for (int k = 0; k < keys; ++k) {
          std::string key = FreshKeyFor(shard);
          wb.Put(key, token);
          record.kvs.emplace_back(std::move(key), token);
        }
      }
      record.synced = rnd_.Uniform(4) == 0;
      WriteOptions wopts;
      wopts.sync = record.synced;
      Status op_status = db->Write(wopts, &wb);
      record.acked = op_status.ok();
      batches_.push_back(std::move(record));
      ++result->batches_issued;
      if (batches_.back().multi_shard) ++result->cross_shard_batches;
      if (!op_status.ok()) {
        if (crash_fired.load() || crash_env_.dead()) break;
        result->failure = "unexpected write error (cycle " +
                          std::to_string(cycle) + ", op " +
                          std::to_string(op) + "): " + op_status.ToString();
        Teardown(&db);
        return false;
      }
    }

    const bool was_syncpoint_crash = crash_fired.load();
    fire();
    if (was_syncpoint_crash) {
      ++result->syncpoint_crashes;
    } else {
      ++result->between_op_crashes;
    }
    if (opts_.verbose) {
      fprintf(stderr,
              "sharded cycle %d: %s crash (%s) keep_unsynced=%d tear=%d "
              "batches=%zu\n",
              cycle, was_syncpoint_crash ? "syncpoint" : "between-op",
              site != nullptr ? site->point : "-", cut.keep_unsynced ? 1 : 0,
              cut.tear_last_block ? 1 : 0, batches_.size());
    }
    Teardown(&db);
    return true;
  }

  void Teardown(std::unique_ptr<DB>* db) {
#ifdef PMBLADE_SYNC_POINTS
    SyncPoint::GetInstance()->DisableProcessing();
#endif
    db->reset();
#ifdef PMBLADE_SYNC_POINTS
    SyncPoint::GetInstance()->Reset();
#endif
  }

  ShardedCrashHarnessOptions opts_;
  Random rnd_;
  CrashEnv crash_env_;
  uint64_t next_key_id_ = 0;
  std::vector<BatchRecord> batches_;
};

}  // namespace test
}  // namespace pmblade

#endif  // PMBLADE_TESTS_SHARDED_CRASH_HARNESS_H_
