// Randomized property tests for pmblade::DB: a model-checked workload with
// mixed mutations, maintenance operations and bidirectional iterator walks,
// swept over several seeds via TEST_P; plus targeted tests for the
// partition-concat iterator, recovery garbage collection and the Eq. 3
// retention behaviour observable through the public API.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "core/db.h"
#include "core/db_impl.h"
#include "core/version.h"
#include "obs/event.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "pmtable/pm_table_builder.h"
#include "util/random.h"

namespace pmblade {
namespace {

class DbModelTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_model_test";
    options_ = Options();
    DestroyDB(options_, dbname_);
    options_.memtable_bytes = 32 << 10;
    options_.pm_pool_capacity = 64 << 20;
    options_.pm_latency.inject_latency = false;
    options_.cost.tau_m = 2 << 20;
    options_.cost.tau_t = 1 << 20;
    options_.cost.tau_w = 64 << 10;
    options_.partition_boundaries = {"key25", "key5", "key75"};
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
    db_ = std::move(db);
  }
  void TearDown() override {
    db_.reset();
    DestroyDB(options_, dbname_);
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_P(DbModelTest, MixedWorkloadWithIteratorWalks) {
  Random rnd(GetParam());
  std::map<std::string, std::string> model;

  auto check_iterator_from = [&](const std::string& seek_key) {
    std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
    it->Seek(seek_key);
    auto expect = model.lower_bound(seek_key);
    // Walk forward a few steps.
    int steps = 1 + static_cast<int>(rnd.Uniform(20));
    for (int i = 0; i < steps; ++i) {
      if (expect == model.end()) {
        ASSERT_FALSE(it->Valid());
        return;
      }
      ASSERT_TRUE(it->Valid()) << "missing " << expect->first;
      ASSERT_EQ(it->key().ToString(), expect->first);
      ASSERT_EQ(it->value().ToString(), expect->second);
      it->Next();
      ++expect;
    }
    // Then walk backward a few steps.
    int back = 1 + static_cast<int>(rnd.Uniform(5));
    for (int i = 0; i < back; ++i) {
      if (expect == model.begin()) return;
      --expect;
      if (it->Valid()) {
        it->Prev();
      } else {
        it->SeekToLast();
      }
      if (expect == model.end()) continue;
      ASSERT_TRUE(it->Valid()) << "backward missing " << expect->first;
      ASSERT_EQ(it->key().ToString(), expect->first);
    }
  };

  for (int op = 0; op < 4000; ++op) {
    double r = rnd.NextDouble();
    std::string key = "key" + std::to_string(rnd.Uniform(500));
    if (r < 0.55) {
      std::string value;
      rnd.RandomBytes(rnd.Uniform(128), &value);
      model[key] = value;
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    } else if (r < 0.70) {
      model.erase(key);
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
    } else if (r < 0.90) {
      std::string value;
      Status s = db_->Get(ReadOptions(), key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(s.IsNotFound()) << key;
      } else {
        ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
        ASSERT_EQ(value, it->second);
      }
    } else if (r < 0.96) {
      check_iterator_from(key);
    } else if (r < 0.98) {
      ASSERT_TRUE(db_->FlushMemTable().ok());
    } else if (r < 0.99) {
      ASSERT_TRUE(db_->CompactLevel0().ok());
    } else {
      ASSERT_TRUE(db_->CompactToLevel1(true).ok());
    }
  }

  // Final exhaustive comparisons.
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  for (auto& [k, v] : model) {
    ASSERT_TRUE(it->Valid()) << "missing " << k;
    ASSERT_EQ(it->key().ToString(), k);
    ASSERT_EQ(it->value().ToString(), v);
    it->Next();
  }
  ASSERT_FALSE(it->Valid());
  // And the reverse direction.
  it->SeekToLast();
  for (auto rit = model.rbegin(); rit != model.rend(); ++rit) {
    ASSERT_TRUE(it->Valid()) << "reverse missing " << rit->first;
    ASSERT_EQ(it->key().ToString(), rit->first);
    it->Prev();
  }
  ASSERT_FALSE(it->Valid());
}

TEST_P(DbModelTest, ModelSurvivesReopen) {
  Random rnd(GetParam() * 31 + 7);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 1500; ++op) {
    std::string key = "key" + std::to_string(rnd.Uniform(200));
    if (rnd.OneIn(8)) {
      model.erase(key);
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
    } else {
      std::string value = "v" + std::to_string(op);
      model[key] = value;
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    }
    if (op % 400 == 399) ASSERT_TRUE(db_->FlushMemTable().ok());
    if (op % 700 == 699) ASSERT_TRUE(db_->CompactToLevel1(true).ok());
  }

  db_.reset();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
  db_ = std::move(db);

  for (auto& [k, v] : model) {
    std::string value;
    Status s = db_->Get(ReadOptions(), k, &value);
    ASSERT_TRUE(s.ok()) << k << ": " << s.ToString();
    ASSERT_EQ(value, v);
  }
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  size_t count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) ++count;
  ASSERT_EQ(count, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbModelTest,
                         ::testing::Values(1, 42, 1337, 0xdecafbad));

// ---------------------------------------------------------------------------
// PartitionConcatIterator
// ---------------------------------------------------------------------------

class PartitionConcatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "pmblade_concat_test.pm";
    ::remove(path_.c_str());
    PmPoolOptions popts;
    popts.capacity = 32 << 20;
    popts.latency.inject_latency = false;
    ASSERT_TRUE(PmPool::Open(path_, popts, &pool_).ok());
  }
  void TearDown() override {
    pool_.reset();
    ::remove(path_.c_str());
  }

  L0TableRef Build(const std::vector<std::string>& user_keys,
                   SequenceNumber seq) {
    PmTableBuilder builder(pool_.get(), PmTableOptions{});
    for (const auto& k : user_keys) {
      std::string ikey;
      AppendInternalKey(&ikey, k, seq, kTypeValue);
      builder.Add(ikey, "v-" + k);
    }
    std::shared_ptr<PmTable> t;
    EXPECT_TRUE(builder.Finish(&t).ok());
    return t;
  }

  std::string path_;
  std::unique_ptr<PmPool> pool_;
  InternalKeyComparator icmp_{BytewiseComparator()};
};

TEST_F(PartitionConcatTest, WalksAcrossPartitionsInOrder) {
  std::vector<PartitionSnapshot> parts(3);
  parts[0].end_key = "h";
  parts[0].unsorted.push_back(Build({"apple", "fig"}, 10));
  parts[1].begin_key = "h";
  parts[1].end_key = "p";
  parts[1].sorted_run.push_back(Build({"kiwi", "mango"}, 10));
  parts[2].begin_key = "p";
  parts[2].ssd_runs.push_back({Build({"pear", "plum"}, 10)});

  std::unique_ptr<Iterator> it(
      NewPartitionConcatIterator(&icmp_, parts));
  std::vector<std::string> forward;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    forward.push_back(ExtractUserKey(it->key()).ToString());
  }
  EXPECT_EQ(forward, (std::vector<std::string>{"apple", "fig", "kiwi",
                                               "mango", "pear", "plum"}));
  // Backward.
  std::vector<std::string> backward;
  for (it->SeekToLast(); it->Valid(); it->Prev()) {
    backward.push_back(ExtractUserKey(it->key()).ToString());
  }
  EXPECT_EQ(backward, (std::vector<std::string>{"plum", "pear", "mango",
                                                "kiwi", "fig", "apple"}));
}

TEST_F(PartitionConcatTest, SeekLandsInRightPartition) {
  std::vector<PartitionSnapshot> parts(3);
  parts[0].end_key = "h";
  parts[0].unsorted.push_back(Build({"apple"}, 10));
  parts[1].begin_key = "h";
  parts[1].end_key = "p";
  parts[1].unsorted.push_back(Build({"kiwi"}, 10));
  parts[2].begin_key = "p";
  parts[2].unsorted.push_back(Build({"plum"}, 10));

  std::unique_ptr<Iterator> it(
      NewPartitionConcatIterator(&icmp_, parts));
  std::string seek;
  AppendInternalKey(&seek, "j", kMaxSequenceNumber, kValueTypeForSeek);
  it->Seek(seek);
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "kiwi");

  // Seek into an empty middle partition falls through to the next.
  std::vector<PartitionSnapshot> sparse(3);
  sparse[0].end_key = "h";
  sparse[0].unsorted.push_back(Build({"apple"}, 10));
  sparse[1].begin_key = "h";
  sparse[1].end_key = "p";  // empty partition
  sparse[2].begin_key = "p";
  sparse[2].unsorted.push_back(Build({"plum"}, 10));
  it.reset(NewPartitionConcatIterator(&icmp_, sparse));
  it->Seek(seek);
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "plum");
  // Past everything.
  std::string big;
  AppendInternalKey(&big, "zzz", kMaxSequenceNumber, kValueTypeForSeek);
  it->Seek(big);
  EXPECT_FALSE(it->Valid());
}

TEST_F(PartitionConcatTest, EmptySnapshotListIsEmptyIterator) {
  std::unique_ptr<Iterator> it(
      NewPartitionConcatIterator(&icmp_, {}));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->SeekToLast();
  EXPECT_FALSE(it->Valid());
}

// ---------------------------------------------------------------------------
// Recovery garbage collection & retention
// ---------------------------------------------------------------------------

TEST(DbRecoveryGcTest, OrphanPoolObjectsAndFilesCollected) {
  std::string dbname = ::testing::TempDir() + "pmblade_gc_test";
  Options options;
  DestroyDB(options, dbname);
  options.memtable_bytes = 32 << 10;
  options.pm_pool_capacity = 32 << 20;
  options.pm_latency.inject_latency = false;

  uint64_t orphan_pool_id;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          db->Put(WriteOptions(), "key" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE(db->FlushMemTable().ok());

    // Simulate an interrupted compaction: an allocated-but-unreferenced
    // pool object and an orphan .sst file.
    auto* impl = static_cast<DBImpl*>(db.get());
    PmPool::ObjectInfo info;
    char* data;
    ASSERT_TRUE(
        impl->pm_pool()->Allocate(4096, kPmTableObject, &info, &data).ok());
    orphan_pool_id = info.id;
    ASSERT_TRUE(
        WriteStringToFile(PosixEnv(), "junk", dbname + "/999999.sst").ok());
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  auto* impl = static_cast<DBImpl*>(db.get());
  // Orphan pool object freed, orphan file removed, data intact.
  EXPECT_EQ(impl->pm_pool()->DataFor(orphan_pool_id), nullptr);
  EXPECT_FALSE(PosixEnv()->FileExists(dbname + "/999999.sst"));
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "key50", &value).ok());
  db.reset();
  DestroyDB(options, dbname);
}

TEST(DbRetentionTest, HotPartitionStaysInPmAfterMajorCompaction) {
  std::string dbname = ::testing::TempDir() + "pmblade_retention_test";
  Options options;
  DestroyDB(options, dbname);
  options.memtable_bytes = 32 << 10;
  options.pm_pool_capacity = 64 << 20;
  options.pm_latency.inject_latency = false;
  options.partition_boundaries = {"m"};      // [.., m) and [m, ..)
  options.cost.tau_t = 20 << 10;             // room for only one partition

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  // Equal data in both partitions.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), "a-key" + std::to_string(i),
                        std::string(100, 'x'))
                    .ok());
    ASSERT_TRUE(db->Put(WriteOptions(), "z-key" + std::to_string(i),
                        std::string(100, 'x'))
                    .ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  // Heat up the 'a' partition with reads.
  for (int round = 0; round < 50; ++round) {
    std::string value;
    ASSERT_TRUE(
        db->Get(ReadOptions(), "a-key" + std::to_string(round % 100), &value)
            .ok());
  }
  ASSERT_TRUE(db->CompactToLevel1(/*respect_cost_model=*/true).ok());

  // The hot partition's data must still answer from PM; the cold one from
  // the SSD.
  auto& stats = db->statistics();
  stats.Reset();
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "a-key5", &value).ok());
  EXPECT_EQ(stats.reads(ReadSource::kPmLevel0), 1u)
      << "hot partition should be retained in PM";
  ASSERT_TRUE(db->Get(ReadOptions(), "z-key5", &value).ok());
  EXPECT_EQ(stats.reads(ReadSource::kSsdLevel1), 1u)
      << "cold partition should have moved to the SSD";
  db.reset();
  DestroyDB(options, dbname);
}

// ---------------------------------------------------------------------------
// Observability: string-property exporters (pmblade.stats.json /
// pmblade.stats.prometheus / pmblade.trace.json) after real engine activity.
// ---------------------------------------------------------------------------

class DbObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_obs_prop_test";
    options_ = Options();
    DestroyDB(options_, dbname_);
    options_.memtable_bytes = 32 << 10;
    options_.pm_pool_capacity = 64 << 20;
    options_.pm_latency.inject_latency = false;
    options_.cost.tau_m = 2 << 20;
    // Keep-set budget below any partition's size: CompactToLevel1 always
    // has victims, so the workload reliably reaches SSD level-1.
    options_.cost.tau_t = 1 << 10;
    options_.cost.tau_w = 64 << 10;
    options_.partition_boundaries = {"key25", "key5", "key75"};
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
    db_ = std::move(db);
  }
  void TearDown() override {
    db_.reset();
    DestroyDB(options_, dbname_);
  }

  // Drives the engine through >= 1 flush, >= 1 internal compaction (via the
  // cost-model decision path and the forced path) and >= 1 major
  // compaction, with reads from memtable, PM level-0 and SSD level-1.
  void RunWorkload() {
    Random rnd(17);
    std::string value(128, 'v');
    for (int round = 0; round < 6; ++round) {
      for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(db_->Put(WriteOptions(),
                             "key" + std::to_string(rnd.Uniform(400)), value)
                        .ok());
      }
      ASSERT_TRUE(db_->FlushMemTable().ok());
      std::string out;
      for (int i = 0; i < 20; ++i) {
        (void)db_->Get(ReadOptions(), "key" + std::to_string(i), &out);
      }
    }
    ASSERT_TRUE(db_->CompactLevel0().ok());            // internal, forced
    ASSERT_TRUE(db_->CompactToLevel1(true).ok());      // major + Eq. 3
    std::string out;
    for (int i = 0; i < 20; ++i) {
      (void)db_->Get(ReadOptions(), "key" + std::to_string(i), &out);
    }
  }

  // Value of "name":<number> in a flat JSON metrics map, or -1.
  static double MetricValue(const std::string& json, const std::string& name) {
    std::string needle = "\"" + name + "\":";
    size_t pos = json.find(needle);
    if (pos == std::string::npos) return -1;
    return strtod(json.c_str() + pos + needle.size(), nullptr);
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbObservabilityTest, StatsJsonCoversAcceptanceCriteria) {
  RunWorkload();
  std::string json;
  ASSERT_TRUE(db_->GetProperty("pmblade.stats.json", &json));
  size_t pos = 0;
  ASSERT_TRUE(obs::JsonLint(json, &pos))
      << "error at " << pos << " in " << json.substr(0, 200);

  // Per-source read counts: the workload read from the memtable, PM L0 and
  // (after major compaction) SSD L1.
  ASSERT_GE(MetricValue(json, "pmblade.reads.memtable"), 0.0);
  ASSERT_GT(MetricValue(json, "pmblade.reads.pm_l0"), 0.0);
  ASSERT_GT(MetricValue(json, "pmblade.reads.ssd_l1"), 0.0);
  ASSERT_GE(MetricValue(json, "pmblade.reads.miss"), 0.0);

  // Flush / compaction activity.
  ASSERT_GE(MetricValue(json, "pmblade.flush.count"), 6.0);
  ASSERT_GT(MetricValue(json, "pmblade.compaction.internal.count"), 0.0);
  ASSERT_GT(MetricValue(json, "pmblade.compaction.major.count"), 0.0);

  // Eq. 1/Eq. 2 evaluations happened (one per touched partition per flush)
  // and the Eq. 3 keep-set ran.
  ASSERT_GT(MetricValue(json, "pmblade.cost.decisions"), 0.0);
  ASSERT_GE(MetricValue(json, "pmblade.cost.keep_set_selections"), 1.0);

  // The q_flush gauge is exported (idle engine => full budget, >= 0).
  ASSERT_GE(MetricValue(json, "pmblade.io.q_flush"), 0.0);

  // At least one internal_decision event with its Eq. 1/Eq. 2 inputs rode
  // along in the trace.
  ASSERT_NE(json.find("\"internal_decision\""), std::string::npos);
  ASSERT_NE(json.find("\"n_r_hat\""), std::string::npos);
  ASSERT_NE(json.find("\"eq1_benefit_rate\""), std::string::npos);
  ASSERT_NE(json.find("\"eq2_ssd_savings\""), std::string::npos);
}

TEST_F(DbObservabilityTest, PrometheusDumpIsLineParseable) {
  RunWorkload();
  std::string text;
  ASSERT_TRUE(db_->GetProperty("pmblade.stats.prometheus", &text));
  ASSERT_FALSE(text.empty());

  std::stringstream ss(text);
  std::string line;
  int samples = 0;
  std::set<std::string> typed;
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      ASSERT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      std::stringstream ts(line.substr(7));
      std::string name, kind;
      ts >> name >> kind;
      ASSERT_TRUE(kind == "counter" || kind == "gauge" ||
                  kind == "histogram")
          << line;
      typed.insert(name);
      continue;
    }
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* end = nullptr;
    strtod(line.c_str() + space + 1, &end);
    ASSERT_EQ(*end, '\0') << line;
    ++samples;
  }
  ASSERT_GT(samples, 0);
  // One # TYPE per registered metric.
  auto* impl = static_cast<DBImpl*>(db_.get());
  ASSERT_EQ(typed.size(), impl->metrics()->NumMetrics());
  ASSERT_TRUE(typed.count("pmblade_reads_pm_l0")) << text.substr(0, 400);
  ASSERT_TRUE(typed.count("pmblade_io_q_flush"));
}

TEST_F(DbObservabilityTest, TraceJsonLinesEachValid) {
  RunWorkload();
  std::string dump;
  ASSERT_TRUE(db_->GetProperty("pmblade.trace.json", &dump));
  ASSERT_FALSE(dump.empty());
  std::stringstream ss(dump);
  std::string line;
  int lines = 0;
  std::set<std::string> types;
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    size_t pos = 0;
    ASSERT_TRUE(obs::JsonLint(line, &pos)) << line << " error at " << pos;
    size_t tpos = line.find("\"type\":\"");
    ASSERT_NE(tpos, std::string::npos) << line;
    tpos += strlen("\"type\":\"");
    types.insert(line.substr(tpos, line.find('"', tpos) - tpos));
    ++lines;
  }
  ASSERT_GT(lines, 0);
  // The workload exercises the full event vocabulary minus splits.
  ASSERT_TRUE(types.count("flush_begin"));
  ASSERT_TRUE(types.count("flush_end"));
  ASSERT_TRUE(types.count("internal_decision"));
  ASSERT_TRUE(types.count("major_compaction_begin"));
}

TEST_F(DbObservabilityTest, DecisionCountersAfterForcedInternalCompaction) {
  auto* impl = static_cast<DBImpl*>(db_.get());
  std::string value(128, 'v');
  // Several flushes so MaybeScheduleCompactions evaluates Eqs. 1-2.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 150; ++i) {
      ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i), value)
                      .ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
  }
  ASSERT_TRUE(db_->CompactLevel0().ok());

  obs::MetricsSnapshot snap = impl->metrics()->Snapshot();
  const obs::MetricSample* decisions = snap.Find("pmblade.cost.decisions");
  ASSERT_NE(decisions, nullptr);
  ASSERT_GT(decisions->value, 0.0);
  const obs::MetricSample* internal =
      snap.Find("pmblade.compaction.internal.count");
  ASSERT_NE(internal, nullptr);
  ASSERT_GT(internal->value, 0.0);
  // Trigger counters never exceed evaluations.
  const obs::MetricSample* eq1 = snap.Find("pmblade.cost.eq1_triggered");
  const obs::MetricSample* eq2 = snap.Find("pmblade.cost.eq2_triggered");
  ASSERT_NE(eq1, nullptr);
  ASSERT_NE(eq2, nullptr);
  ASSERT_LE(eq1->value, decisions->value);
  ASSERT_LE(eq2->value, decisions->value);
}

TEST_F(DbObservabilityTest, UnknownStringPropertyReturnsFalse) {
  std::string out = "untouched";
  ASSERT_FALSE(db_->GetProperty("pmblade.no.such.property", &out));
  ASSERT_EQ(out, "untouched");
}

TEST_F(DbObservabilityTest, TracingDisabledWithZeroRingCapacity) {
  db_.reset();
  DestroyDB(options_, dbname_);
  options_.trace_ring_capacity = 0;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
  db_ = std::move(db);
  ASSERT_TRUE(db_->Put(WriteOptions(), "key1", "v").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  std::string dump;
  ASSERT_TRUE(db_->GetProperty("pmblade.trace.json", &dump));
  ASSERT_TRUE(dump.empty());
  // Metrics still work without the trace ring.
  std::string json;
  ASSERT_TRUE(db_->GetProperty("pmblade.stats.json", &json));
  ASSERT_TRUE(obs::JsonLint(json));
  ASSERT_NE(json.find("\"events\":[]"), std::string::npos);
}

}  // namespace
}  // namespace pmblade
