// Randomized property tests for pmblade::DB: a model-checked workload with
// mixed mutations, maintenance operations and bidirectional iterator walks,
// swept over several seeds via TEST_P; plus targeted tests for the
// partition-concat iterator, recovery garbage collection and the Eq. 3
// retention behaviour observable through the public API.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "core/db.h"
#include "core/db_impl.h"
#include "core/version.h"
#include "pmtable/pm_table_builder.h"
#include "util/random.h"

namespace pmblade {
namespace {

class DbModelTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_model_test";
    options_ = Options();
    DestroyDB(options_, dbname_);
    options_.memtable_bytes = 32 << 10;
    options_.pm_pool_capacity = 64 << 20;
    options_.pm_latency.inject_latency = false;
    options_.cost.tau_m = 2 << 20;
    options_.cost.tau_t = 1 << 20;
    options_.cost.tau_w = 64 << 10;
    options_.partition_boundaries = {"key25", "key5", "key75"};
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
    db_ = std::move(db);
  }
  void TearDown() override {
    db_.reset();
    DestroyDB(options_, dbname_);
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_P(DbModelTest, MixedWorkloadWithIteratorWalks) {
  Random rnd(GetParam());
  std::map<std::string, std::string> model;

  auto check_iterator_from = [&](const std::string& seek_key) {
    std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
    it->Seek(seek_key);
    auto expect = model.lower_bound(seek_key);
    // Walk forward a few steps.
    int steps = 1 + static_cast<int>(rnd.Uniform(20));
    for (int i = 0; i < steps; ++i) {
      if (expect == model.end()) {
        ASSERT_FALSE(it->Valid());
        return;
      }
      ASSERT_TRUE(it->Valid()) << "missing " << expect->first;
      ASSERT_EQ(it->key().ToString(), expect->first);
      ASSERT_EQ(it->value().ToString(), expect->second);
      it->Next();
      ++expect;
    }
    // Then walk backward a few steps.
    int back = 1 + static_cast<int>(rnd.Uniform(5));
    for (int i = 0; i < back; ++i) {
      if (expect == model.begin()) return;
      --expect;
      if (it->Valid()) {
        it->Prev();
      } else {
        it->SeekToLast();
      }
      if (expect == model.end()) continue;
      ASSERT_TRUE(it->Valid()) << "backward missing " << expect->first;
      ASSERT_EQ(it->key().ToString(), expect->first);
    }
  };

  for (int op = 0; op < 4000; ++op) {
    double r = rnd.NextDouble();
    std::string key = "key" + std::to_string(rnd.Uniform(500));
    if (r < 0.55) {
      std::string value;
      rnd.RandomBytes(rnd.Uniform(128), &value);
      model[key] = value;
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    } else if (r < 0.70) {
      model.erase(key);
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
    } else if (r < 0.90) {
      std::string value;
      Status s = db_->Get(ReadOptions(), key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(s.IsNotFound()) << key;
      } else {
        ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
        ASSERT_EQ(value, it->second);
      }
    } else if (r < 0.96) {
      check_iterator_from(key);
    } else if (r < 0.98) {
      ASSERT_TRUE(db_->FlushMemTable().ok());
    } else if (r < 0.99) {
      ASSERT_TRUE(db_->CompactLevel0().ok());
    } else {
      ASSERT_TRUE(db_->CompactToLevel1(true).ok());
    }
  }

  // Final exhaustive comparisons.
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  for (auto& [k, v] : model) {
    ASSERT_TRUE(it->Valid()) << "missing " << k;
    ASSERT_EQ(it->key().ToString(), k);
    ASSERT_EQ(it->value().ToString(), v);
    it->Next();
  }
  ASSERT_FALSE(it->Valid());
  // And the reverse direction.
  it->SeekToLast();
  for (auto rit = model.rbegin(); rit != model.rend(); ++rit) {
    ASSERT_TRUE(it->Valid()) << "reverse missing " << rit->first;
    ASSERT_EQ(it->key().ToString(), rit->first);
    it->Prev();
  }
  ASSERT_FALSE(it->Valid());
}

TEST_P(DbModelTest, ModelSurvivesReopen) {
  Random rnd(GetParam() * 31 + 7);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 1500; ++op) {
    std::string key = "key" + std::to_string(rnd.Uniform(200));
    if (rnd.OneIn(8)) {
      model.erase(key);
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
    } else {
      std::string value = "v" + std::to_string(op);
      model[key] = value;
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    }
    if (op % 400 == 399) ASSERT_TRUE(db_->FlushMemTable().ok());
    if (op % 700 == 699) ASSERT_TRUE(db_->CompactToLevel1(true).ok());
  }

  db_.reset();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
  db_ = std::move(db);

  for (auto& [k, v] : model) {
    std::string value;
    Status s = db_->Get(ReadOptions(), k, &value);
    ASSERT_TRUE(s.ok()) << k << ": " << s.ToString();
    ASSERT_EQ(value, v);
  }
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  size_t count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) ++count;
  ASSERT_EQ(count, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbModelTest,
                         ::testing::Values(1, 42, 1337, 0xdecafbad));

// ---------------------------------------------------------------------------
// PartitionConcatIterator
// ---------------------------------------------------------------------------

class PartitionConcatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "pmblade_concat_test.pm";
    ::remove(path_.c_str());
    PmPoolOptions popts;
    popts.capacity = 32 << 20;
    popts.latency.inject_latency = false;
    ASSERT_TRUE(PmPool::Open(path_, popts, &pool_).ok());
  }
  void TearDown() override {
    pool_.reset();
    ::remove(path_.c_str());
  }

  L0TableRef Build(const std::vector<std::string>& user_keys,
                   SequenceNumber seq) {
    PmTableBuilder builder(pool_.get(), PmTableOptions{});
    for (const auto& k : user_keys) {
      std::string ikey;
      AppendInternalKey(&ikey, k, seq, kTypeValue);
      builder.Add(ikey, "v-" + k);
    }
    std::shared_ptr<PmTable> t;
    EXPECT_TRUE(builder.Finish(&t).ok());
    return t;
  }

  std::string path_;
  std::unique_ptr<PmPool> pool_;
  InternalKeyComparator icmp_{BytewiseComparator()};
};

TEST_F(PartitionConcatTest, WalksAcrossPartitionsInOrder) {
  std::vector<PartitionSnapshot> parts(3);
  parts[0].end_key = "h";
  parts[0].unsorted.push_back(Build({"apple", "fig"}, 10));
  parts[1].begin_key = "h";
  parts[1].end_key = "p";
  parts[1].sorted_run.push_back(Build({"kiwi", "mango"}, 10));
  parts[2].begin_key = "p";
  parts[2].l1_run.push_back(Build({"pear", "plum"}, 10));

  std::unique_ptr<Iterator> it(
      NewPartitionConcatIterator(&icmp_, parts));
  std::vector<std::string> forward;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    forward.push_back(ExtractUserKey(it->key()).ToString());
  }
  EXPECT_EQ(forward, (std::vector<std::string>{"apple", "fig", "kiwi",
                                               "mango", "pear", "plum"}));
  // Backward.
  std::vector<std::string> backward;
  for (it->SeekToLast(); it->Valid(); it->Prev()) {
    backward.push_back(ExtractUserKey(it->key()).ToString());
  }
  EXPECT_EQ(backward, (std::vector<std::string>{"plum", "pear", "mango",
                                                "kiwi", "fig", "apple"}));
}

TEST_F(PartitionConcatTest, SeekLandsInRightPartition) {
  std::vector<PartitionSnapshot> parts(3);
  parts[0].end_key = "h";
  parts[0].unsorted.push_back(Build({"apple"}, 10));
  parts[1].begin_key = "h";
  parts[1].end_key = "p";
  parts[1].unsorted.push_back(Build({"kiwi"}, 10));
  parts[2].begin_key = "p";
  parts[2].unsorted.push_back(Build({"plum"}, 10));

  std::unique_ptr<Iterator> it(
      NewPartitionConcatIterator(&icmp_, parts));
  std::string seek;
  AppendInternalKey(&seek, "j", kMaxSequenceNumber, kValueTypeForSeek);
  it->Seek(seek);
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "kiwi");

  // Seek into an empty middle partition falls through to the next.
  std::vector<PartitionSnapshot> sparse(3);
  sparse[0].end_key = "h";
  sparse[0].unsorted.push_back(Build({"apple"}, 10));
  sparse[1].begin_key = "h";
  sparse[1].end_key = "p";  // empty partition
  sparse[2].begin_key = "p";
  sparse[2].unsorted.push_back(Build({"plum"}, 10));
  it.reset(NewPartitionConcatIterator(&icmp_, sparse));
  it->Seek(seek);
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "plum");
  // Past everything.
  std::string big;
  AppendInternalKey(&big, "zzz", kMaxSequenceNumber, kValueTypeForSeek);
  it->Seek(big);
  EXPECT_FALSE(it->Valid());
}

TEST_F(PartitionConcatTest, EmptySnapshotListIsEmptyIterator) {
  std::unique_ptr<Iterator> it(
      NewPartitionConcatIterator(&icmp_, {}));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->SeekToLast();
  EXPECT_FALSE(it->Valid());
}

// ---------------------------------------------------------------------------
// Recovery garbage collection & retention
// ---------------------------------------------------------------------------

TEST(DbRecoveryGcTest, OrphanPoolObjectsAndFilesCollected) {
  std::string dbname = ::testing::TempDir() + "pmblade_gc_test";
  Options options;
  DestroyDB(options, dbname);
  options.memtable_bytes = 32 << 10;
  options.pm_pool_capacity = 32 << 20;
  options.pm_latency.inject_latency = false;

  uint64_t orphan_pool_id;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          db->Put(WriteOptions(), "key" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE(db->FlushMemTable().ok());

    // Simulate an interrupted compaction: an allocated-but-unreferenced
    // pool object and an orphan .sst file.
    auto* impl = static_cast<DBImpl*>(db.get());
    PmPool::ObjectInfo info;
    char* data;
    ASSERT_TRUE(
        impl->pm_pool()->Allocate(4096, kPmTableObject, &info, &data).ok());
    orphan_pool_id = info.id;
    ASSERT_TRUE(
        WriteStringToFile(PosixEnv(), "junk", dbname + "/999999.sst").ok());
  }

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  auto* impl = static_cast<DBImpl*>(db.get());
  // Orphan pool object freed, orphan file removed, data intact.
  EXPECT_EQ(impl->pm_pool()->DataFor(orphan_pool_id), nullptr);
  EXPECT_FALSE(PosixEnv()->FileExists(dbname + "/999999.sst"));
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "key50", &value).ok());
  db.reset();
  DestroyDB(options, dbname);
}

TEST(DbRetentionTest, HotPartitionStaysInPmAfterMajorCompaction) {
  std::string dbname = ::testing::TempDir() + "pmblade_retention_test";
  Options options;
  DestroyDB(options, dbname);
  options.memtable_bytes = 32 << 10;
  options.pm_pool_capacity = 64 << 20;
  options.pm_latency.inject_latency = false;
  options.partition_boundaries = {"m"};      // [.., m) and [m, ..)
  options.cost.tau_t = 20 << 10;             // room for only one partition

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  // Equal data in both partitions.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), "a-key" + std::to_string(i),
                        std::string(100, 'x'))
                    .ok());
    ASSERT_TRUE(db->Put(WriteOptions(), "z-key" + std::to_string(i),
                        std::string(100, 'x'))
                    .ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  // Heat up the 'a' partition with reads.
  for (int round = 0; round < 50; ++round) {
    std::string value;
    ASSERT_TRUE(
        db->Get(ReadOptions(), "a-key" + std::to_string(round % 100), &value)
            .ok());
  }
  ASSERT_TRUE(db->CompactToLevel1(/*respect_cost_model=*/true).ok());

  // The hot partition's data must still answer from PM; the cold one from
  // the SSD.
  auto& stats = db->statistics();
  stats.Reset();
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "a-key5", &value).ok());
  EXPECT_EQ(stats.reads(ReadSource::kPmLevel0), 1u)
      << "hot partition should be retained in PM";
  ASSERT_TRUE(db->Get(ReadOptions(), "z-key5", &value).ok());
  EXPECT_EQ(stats.reads(ReadSource::kSsdLevel1), 1u)
      << "cold partition should have moved to the SSD";
  db.reset();
  DestroyDB(options, dbname);
}

}  // namespace
}  // namespace pmblade
