// Cost-model edge cases (Eqs. 1-3): zero read frequency, empty partition
// sets, zero-size partitions, and counters near the uint64 range where the
// naive arithmetic used to wrap. The overflow cases pin down two real fixes
// in src/compaction/cost_model.cc: SelectRetained's knapsack admission test
// and AdaptiveTauT's read-share computation.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "compaction/cost_model.h"

namespace pmblade {
namespace {

constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();

PartitionCounters Counters(uint64_t id, uint64_t size, uint64_t reads) {
  PartitionCounters p;
  p.partition_id = id;
  p.unsorted_tables = 8;
  p.size_bytes = size;
  p.reads = reads;
  p.reads_per_sec = static_cast<double>(reads);
  return p;
}

// ---------------------------------------------------------------------------
// Eq. 1 / Eq. 2: zero read frequency and zero activity
// ---------------------------------------------------------------------------

TEST(CostModelEdgeTest, Eq1NeverFiresWithZeroReadFrequency) {
  CostModel model{CostModelParams{}};
  PartitionCounters p = Counters(1, 16 << 20, 0);
  p.reads_per_sec = 0.0;  // n̂ᵢʳ = 0 ⇒ benefit side of Eq. 1 is exactly 0
  CostDecision d = model.EvaluateInternal(p);
  EXPECT_TRUE(d.gate_passed);
  EXPECT_EQ(d.eq1_benefit_rate, 0.0);
  EXPECT_FALSE(d.eq1_triggered);
  EXPECT_FALSE(model.ShouldCompactForReads(p));
}

TEST(CostModelEdgeTest, Eq2NeverFiresWithZeroUpdates) {
  CostModelParams params;
  params.tau_w = 1;  // size gate wide open
  CostModel model(params);
  PartitionCounters p = Counters(1, 16 << 20, 100);
  p.writes = 1000;
  p.updates = 0;  // no duplicates ⇒ zero SSD savings
  CostDecision d = model.EvaluateInternal(p);
  EXPECT_EQ(d.eq2_ssd_savings, 0.0);
  EXPECT_FALSE(d.eq2_triggered);
}

TEST(CostModelEdgeTest, GateBlocksBothEquationsOnColdPartition) {
  CostModel model{CostModelParams{}};
  PartitionCounters p = Counters(1, 64 << 20, 1 << 20);
  p.unsorted_tables = 0;  // below min_unsorted_for_internal
  p.updates = 1 << 20;
  CostDecision d = model.EvaluateInternal(p);
  EXPECT_FALSE(d.gate_passed);
  EXPECT_FALSE(d.triggered());
}

// ---------------------------------------------------------------------------
// Eq. 3 knapsack: empty inputs, zero sizes, overflow admission
// ---------------------------------------------------------------------------

TEST(CostModelEdgeTest, SelectRetainedOnEmptyPartitionSetIsEmpty) {
  CostModel model{CostModelParams{}};
  EXPECT_TRUE(model.SelectRetained({}).empty());
}

TEST(CostModelEdgeTest, ZeroSizePartitionsAreAlwaysRetained) {
  CostModelParams params;
  params.tau_t = 100;
  CostModel model(params);
  // Zero-byte partitions cost nothing and must never evict a sized one.
  std::vector<PartitionCounters> parts = {
      Counters(0, 0, 0),
      Counters(1, 100, 50),
      Counters(2, 0, 0),
  };
  std::vector<size_t> retained = model.SelectRetained(parts);
  EXPECT_EQ(retained, (std::vector<size_t>{0, 1, 2}));
}

TEST(CostModelEdgeTest, HugePartitionCannotWrapIntoTheBudget) {
  CostModelParams params;
  params.tau_t = 1 << 20;
  CostModel model(params);
  // size_bytes near UINT64_MAX: with wrapping arithmetic `used + s` came
  // out tiny and the monster partition was "retained" inside a 1 MiB
  // budget. It must be sent to major compaction instead.
  std::vector<PartitionCounters> parts = {
      Counters(0, 512 << 10, 1000),      // hot, fits
      Counters(1, kU64Max - 8, 999999),  // hotter per byte ratio irrelevant
  };
  parts[1].reads_per_sec = 1e18;  // sorted first: max stress on the check
  std::vector<size_t> retained = model.SelectRetained(parts);
  EXPECT_EQ(retained, (std::vector<size_t>{0}));
}

TEST(CostModelEdgeTest, BudgetExactlyConsumedAdmitsBoundaryPartition) {
  CostModelParams params;
  params.tau_t = 100;
  CostModel model(params);
  std::vector<PartitionCounters> parts = {
      Counters(0, 60, 600),  // hottest per byte
      Counters(1, 40, 100),  // exactly fills the remainder
      Counters(2, 1, 0),     // over budget by one byte
  };
  std::vector<size_t> retained = model.SelectRetained(parts);
  EXPECT_EQ(retained, (std::vector<size_t>{0, 1}));
}

TEST(CostModelEdgeTest, MaxBudgetRetainsEverything) {
  CostModelParams params;
  params.tau_t = kU64Max;
  CostModel model(params);
  std::vector<PartitionCounters> parts = {
      Counters(0, kU64Max - 1, 10),
      Counters(1, 1, 10),
  };
  // used reaches exactly UINT64_MAX without wrapping.
  EXPECT_EQ(model.SelectRetained(parts), (std::vector<size_t>{0, 1}));
}

// ---------------------------------------------------------------------------
// Adaptive τ_t: counters near overflow and cast saturation
// ---------------------------------------------------------------------------

TEST(CostModelEdgeTest, AdaptiveTauTZeroTrafficKeepsBase) {
  CostModel model{CostModelParams{}};
  EXPECT_EQ(model.AdaptiveTauT(0, 0, 4.0), model.params().tau_t);
}

TEST(CostModelEdgeTest, AdaptiveTauTPureReadsHitsMaxFactor) {
  CostModel model{CostModelParams{}};
  EXPECT_EQ(model.AdaptiveTauT(1000, 0, 4.0), model.params().tau_t * 4);
}

TEST(CostModelEdgeTest, AdaptiveTauTNearOverflowCountersStayWriteDominated) {
  CostModel model{CostModelParams{}};
  // reads + writes wraps in uint64 (sum = 2^64 + 2^62): the wrapped total
  // made the read share bogus. Write share is 2/3 here, so τ_t must stay at
  // its base value.
  uint64_t reads = 1ull << 63;
  uint64_t writes = (1ull << 63) + (1ull << 62);
  EXPECT_EQ(model.AdaptiveTauT(reads, writes, 4.0), model.params().tau_t);
}

TEST(CostModelEdgeTest, AdaptiveTauTNearOverflowCountersScaleForReads) {
  CostModel model{CostModelParams{}};
  // Same magnitude, reversed mix: read share 3/4 ⇒ scale 1 + 0.25*2*3 = 2.5.
  uint64_t reads = (1ull << 63) + (1ull << 62);
  uint64_t writes = 1ull << 62;
  EXPECT_EQ(model.AdaptiveTauT(reads, writes, 4.0),
            static_cast<uint64_t>(model.params().tau_t * 2.5));
}

TEST(CostModelEdgeTest, AdaptiveTauTSaturatesInsteadOfOverflowingCast) {
  CostModelParams params;
  params.tau_t = kU64Max / 2;
  CostModel model(params);
  // tau_t * 4.0 exceeds the uint64 range; the cast used to be undefined
  // behaviour. It must saturate.
  EXPECT_EQ(model.AdaptiveTauT(1000, 0, 4.0), kU64Max);
}

TEST(CostModelEdgeTest, AdaptiveTauTClampsSubUnityMaxFactor) {
  CostModel model{CostModelParams{}};
  // max_factor < 1 would SHRINK τ_t on a read-heavy mix; it is clamped.
  EXPECT_EQ(model.AdaptiveTauT(1000, 0, 0.25), model.params().tau_t);
}

}  // namespace
}  // namespace pmblade
