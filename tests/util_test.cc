// Unit tests for the util module: Status, Slice, coding, CRC32C, Random,
// Zipfian, Histogram, Arena, Bloom, Comparator, Clock.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "util/arena.h"
#include "util/bloom.h"
#include "util/clock.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/crc32c.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/zipfian.h"

namespace pmblade {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.IsCorruption());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
  EXPECT_EQ(s.message(), "missing key");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::IOError("disk gone");
  Status copy = s;
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_TRUE(s.IsIOError());
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIOError());
  EXPECT_EQ(moved.message(), "disk gone");
}

TEST(StatusTest, AllCodesDistinct) {
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("").IsNotSupported());
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::Busy("").IsBusy());
  EXPECT_TRUE(Status::Aborted("").IsAborted());
}

TEST(SliceTest, BasicOps) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_FALSE(s.empty());
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(SliceTest, CompareIsLexicographic) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  // Prefix sorts first.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
}

TEST(SliceTest, StartsWithAndDifferenceOffset) {
  Slice s("tableA|row17");
  EXPECT_TRUE(s.starts_with("tableA|"));
  EXPECT_FALSE(s.starts_with("tableB"));
  EXPECT_EQ(s.difference_offset(Slice("tableA|row99")), 10u);
}

TEST(CodingTest, FixedRoundTrip) {
  std::string s;
  PutFixed32(&s, 0xdeadbeefu);
  PutFixed64(&s, 0x0123456789abcdefull);
  EXPECT_EQ(DecodeFixed32(s.data()), 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed64(s.data() + 4), 0x0123456789abcdefull);
}

TEST(CodingTest, Varint32RoundTripBoundaries) {
  std::vector<uint32_t> values = {0, 1, 127, 128, 16383, 16384,
                                  (1u << 21) - 1, 1u << 21, UINT32_MAX};
  std::string s;
  for (uint32_t v : values) PutVarint32(&s, v);
  Slice in(s);
  for (uint32_t v : values) {
    uint32_t got = 0;
    ASSERT_TRUE(GetVarint32(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint64RoundTripBoundaries) {
  std::vector<uint64_t> values = {0, 1, 127, 128, (1ull << 35),
                                  (1ull << 56) - 1, UINT64_MAX};
  std::string s;
  for (uint64_t v : values) PutVarint64(&s, v);
  Slice in(s);
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
}

TEST(CodingTest, VarintRejectsTruncation) {
  std::string s;
  PutVarint32(&s, UINT32_MAX);
  for (size_t keep = 0; keep + 1 < s.size(); ++keep) {
    Slice in(s.data(), keep);
    uint32_t v;
    EXPECT_FALSE(GetVarint32(&in, &v)) << "kept " << keep;
  }
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{1} << 40, UINT64_MAX}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
  }
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string s;
  PutLengthPrefixedSlice(&s, "alpha");
  PutLengthPrefixedSlice(&s, "");
  PutLengthPrefixedSlice(&s, std::string(5000, 'x'));
  Slice in(s), out;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &out));
  EXPECT_EQ(out.ToString(), "alpha");
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &out));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &out));
  EXPECT_EQ(out.size(), 5000u);
}

TEST(Crc32cTest, KnownValues) {
  // CRC of 32 zero bytes (standard test vector for crc32c).
  char zeros[32] = {0};
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8a9136aau);
  char ones[32];
  memset(ones, 0xff, sizeof(ones));
  EXPECT_EQ(crc32c::Value(ones, sizeof(ones)), 0x62a8ab43u);
}

TEST(Crc32cTest, ExtendEqualsWholeBuffer) {
  const char* data = "hello world, this is a crc test buffer";
  size_t n = strlen(data);
  for (size_t split = 0; split <= n; ++split) {
    uint32_t partial = crc32c::Value(data, split);
    EXPECT_EQ(crc32c::Extend(partial, data + split, n - split),
              crc32c::Value(data, n));
  }
}

TEST(Crc32cTest, MaskUnmaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, UINT32_MAX}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
    EXPECT_NE(crc32c::Mask(crc), crc);
  }
}

TEST(RandomTest, DeterministicFromSeed) {
  Random a(42), b(42), c(43);
  EXPECT_EQ(a.Next64(), b.Next64());
  EXPECT_NE(a.Next64(), c.Next64());
}

TEST(RandomTest, UniformWithinRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(17), 17u);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, RandomStringHasRequestedLength) {
  Random r(1);
  std::string s;
  r.RandomString(33, &s);
  EXPECT_EQ(s.size(), 33u);
}

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator gen(1000, 0.99, 5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.Next(), 1000u);
  }
}

TEST(ZipfianTest, SkewConcentratesMass) {
  // With theta=0.99 over 1000 items, rank 0 should receive far more draws
  // than the median item.
  ZipfianGenerator gen(1000, 0.99, 11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[gen.Next()]++;
  EXPECT_GT(counts[0], 2500);  // > 5% of draws on the hottest item
}

TEST(ZipfianTest, LowThetaIsNearUniform) {
  ZipfianGenerator gen(100, 0.01, 3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[gen.Next()]++;
  // No item should exceed ~3x the uniform share.
  for (auto& [item, count] : counts) {
    EXPECT_LT(count, 3000) << "item " << item;
  }
}

TEST(ScrambledZipfianTest, HotItemsAreScattered) {
  ScrambledZipfianGenerator gen(100000, 0.99, 13);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[gen.Next()]++;
  // Collect the 10 hottest items; they should not be adjacent ranks.
  std::vector<std::pair<int, uint64_t>> by_count;
  for (auto& [item, count] : counts) by_count.emplace_back(count, item);
  std::sort(by_count.rbegin(), by_count.rend());
  std::set<uint64_t> hot;
  for (int i = 0; i < 10 && i < static_cast<int>(by_count.size()); ++i) {
    hot.insert(by_count[i].second);
  }
  // Max pairwise adjacency count among hot items must be small.
  int adjacent = 0;
  for (uint64_t h : hot) {
    if (hot.count(h + 1)) ++adjacent;
  }
  EXPECT_LE(adjacent, 3);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Average(), 50.5);
  // Median should be around 50 (bucketized estimate).
  EXPECT_NEAR(h.Percentile(50), 50, 15);
  EXPECT_NEAR(h.Percentile(99), 99, 20);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

// Pull a numeric field out of a flat JSON object: ..."key":<number>...
double JsonField(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << json;
  if (pos == std::string::npos) return -1;
  return strtod(json.c_str() + pos + needle.size(), nullptr);
}

TEST(HistogramTest, ToJsonRoundTripsSummaryStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  std::string json = h.ToJson();
  EXPECT_EQ(JsonField(json, "count"), 100.0);
  EXPECT_EQ(JsonField(json, "sum"), h.sum());
  EXPECT_EQ(JsonField(json, "min"), 1.0);
  EXPECT_EQ(JsonField(json, "max"), 100.0);
  EXPECT_DOUBLE_EQ(JsonField(json, "avg"), 50.5);
  EXPECT_NEAR(JsonField(json, "p50"), h.Percentile(50), 1e-6);
  EXPECT_NEAR(JsonField(json, "p99"), h.Percentile(99), 1e-6);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
}

TEST(HistogramTest, ToJsonBucketsMatchCounts) {
  Histogram h;
  h.Add(1);
  h.Add(1);
  h.Add(1000000);
  std::string json = h.ToJson();
  // Only non-empty buckets appear; their counts sum to count().
  size_t pos = json.find("\"buckets\":[");
  ASSERT_NE(pos, std::string::npos) << json;
  uint64_t total = 0;
  int buckets = 0;
  pos += strlen("\"buckets\":[");
  while (json[pos] == '[') {
    const char* p = json.c_str() + pos + 1;
    char* end = nullptr;
    uint64_t limit = strtoull(p, &end, 10);
    ASSERT_EQ(*end, ',') << json.substr(pos, 40);
    uint64_t count = strtoull(end + 1, &end, 10);
    ASSERT_EQ(*end, ']') << json.substr(pos, 40);
    EXPECT_GT(count, 0u);
    EXPECT_GT(limit, 0u);
    total += count;
    ++buckets;
    pos = (end - json.c_str()) + 1;
    if (json[pos] == ',') ++pos;
  }
  EXPECT_EQ(json[pos], ']');
  EXPECT_EQ(buckets, 2);
  EXPECT_EQ(total, h.count());
}

TEST(HistogramTest, ToJsonEmptyHistogram) {
  Histogram h;
  std::string json = h.ToJson();
  EXPECT_EQ(JsonField(json, "count"), 0.0);
  EXPECT_EQ(JsonField(json, "min"), 0.0);
  EXPECT_EQ(JsonField(json, "max"), 0.0);
  EXPECT_NE(json.find("\"buckets\":[]"), std::string::npos);
}

TEST(ArenaTest, AllocatesUsableMemory) {
  Arena arena;
  Random r(19);
  std::vector<std::pair<char*, size_t>> allocs;
  for (int i = 0; i < 200; ++i) {
    size_t n = 1 + r.Uniform(3000);
    char* p = arena.Allocate(n);
    memset(p, static_cast<int>(i & 0xff), n);
    allocs.emplace_back(p, n);
  }
  // Earlier writes must be intact (no overlap).
  for (size_t i = 0; i < allocs.size(); ++i) {
    for (size_t j = 0; j < allocs[i].second; ++j) {
      ASSERT_EQ(static_cast<unsigned char>(allocs[i].first[j]), i & 0xff);
    }
  }
  EXPECT_GT(arena.MemoryUsage(), 0u);
}

TEST(ArenaTest, AlignedAllocationIsAligned) {
  Arena arena;
  for (int i = 0; i < 50; ++i) {
    arena.Allocate(1);  // misalign the bump pointer
    char* p = arena.AllocateAligned(16);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
  }
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterPolicy policy(10);
  std::vector<std::string> key_storage;
  std::vector<Slice> keys;
  for (int i = 0; i < 1000; ++i) {
    key_storage.push_back("key" + std::to_string(i));
  }
  for (auto& k : key_storage) keys.emplace_back(k);
  std::string filter;
  policy.CreateFilter(keys, &filter);
  for (auto& k : key_storage) {
    EXPECT_TRUE(policy.KeyMayMatch(k, filter)) << k;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilterPolicy policy(10);
  std::vector<std::string> key_storage;
  std::vector<Slice> keys;
  for (int i = 0; i < 1000; ++i) {
    key_storage.push_back("key" + std::to_string(i));
  }
  for (auto& k : key_storage) keys.emplace_back(k);
  std::string filter;
  policy.CreateFilter(keys, &filter);
  int false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    std::string probe = "absent" + std::to_string(i);
    if (policy.KeyMayMatch(probe, filter)) ++false_positives;
  }
  // ~1% expected at 10 bits/key; allow generous margin.
  EXPECT_LT(false_positives, 300);
}

TEST(ComparatorTest, BytewiseOrder) {
  const Comparator* cmp = BytewiseComparator();
  EXPECT_LT(cmp->Compare("a", "b"), 0);
  EXPECT_EQ(cmp->Compare("same", "same"), 0);
}

TEST(ComparatorTest, ShortestSeparatorShortens) {
  const Comparator* cmp = BytewiseComparator();
  std::string start = "abcdefghij";
  cmp->FindShortestSeparator(&start, "abcdzzzz");
  EXPECT_LT(start.size(), 10u);
  EXPECT_GT(start.compare("abcdefghij"), 0);
  EXPECT_LT(Slice(start).compare("abcdzzzz"), 0);
}

TEST(ComparatorTest, ShortSuccessorIsGreaterOrEqual) {
  const Comparator* cmp = BytewiseComparator();
  std::string key = "hello";
  cmp->FindShortSuccessor(&key);
  EXPECT_GE(Slice(key).compare("hello"), 0);
  EXPECT_LE(key.size(), 5u);
}

TEST(ClockTest, SystemClockMonotonic) {
  Clock* c = SystemClock();
  uint64_t a = c->NowNanos();
  uint64_t b = c->NowNanos();
  EXPECT_LE(a, b);
}

TEST(ClockTest, SleepInjectsAtLeastRequested) {
  Clock* c = SystemClock();
  uint64_t start = c->NowNanos();
  c->SleepForNanos(20'000);  // 20 us
  EXPECT_GE(c->NowNanos() - start, 20'000u);
}

TEST(ClockTest, MockClockAdvancesManually) {
  MockClock mc(100);
  EXPECT_EQ(mc.NowNanos(), 100u);
  mc.SleepForNanos(50);
  EXPECT_EQ(mc.NowNanos(), 150u);
  mc.Advance(10);
  EXPECT_EQ(mc.NowNanos(), 160u);
}

TEST(ScopedTimerTest, AccumulatesElapsed) {
  MockClock mc;
  uint64_t total = 0;
  {
    ScopedTimer t(&mc, &total);
    mc.Advance(123);
  }
  EXPECT_EQ(total, 123u);
}

}  // namespace
}  // namespace pmblade
