// Tests for the observability subsystem (src/obs): MetricsRegistry
// semantics, EventBus fan-out and ordering, TraceRecorder ring behaviour,
// the Prometheus/JSON exporters, and the JSON validator they are checked
// with.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/event.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "util/histogram.h"

namespace pmblade {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, GetCounterReturnsStablePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("pmblade.test.counter");
  ASSERT_NE(a, nullptr);
  a->Inc();
  a->Inc(41);
  Counter* b = registry.GetCounter("pmblade.test.counter");
  ASSERT_EQ(a, b);
  ASSERT_EQ(b->Value(), 42u);
  ASSERT_EQ(registry.NumMetrics(), 1u);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("m"), nullptr);
  ASSERT_EQ(registry.GetGauge("m"), nullptr);
  ASSERT_EQ(registry.GetHistogram("m"), nullptr);
  // The original instrument is untouched.
  ASSERT_NE(registry.GetCounter("m"), nullptr);
  ASSERT_EQ(registry.NumMetrics(), 1u);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("pmblade.test.gauge");
  ASSERT_NE(g, nullptr);
  g->Set(7);
  g->Add(-3);
  ASSERT_EQ(g->Value(), 4);
  MetricsSnapshot snap = registry.Snapshot();
  const MetricSample* sample = snap.Find("pmblade.test.gauge");
  ASSERT_NE(sample, nullptr);
  ASSERT_EQ(sample->kind, MetricKind::kGauge);
  ASSERT_EQ(sample->value, 4.0);
}

TEST(MetricsRegistryTest, HistogramMetricObserves) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.GetHistogram("pmblade.test.hist");
  ASSERT_NE(h, nullptr);
  for (uint64_t v = 1; v <= 100; ++v) h->Observe(v);
  Histogram merged = h->Snapshot();
  ASSERT_EQ(merged.count(), 100u);
  ASSERT_EQ(merged.min(), 1u);
  ASSERT_EQ(merged.max(), 100u);
  MetricsSnapshot snap = registry.Snapshot();
  const MetricSample* sample = snap.Find("pmblade.test.hist");
  ASSERT_NE(sample, nullptr);
  ASSERT_EQ(sample->kind, MetricKind::kHistogram);
  ASSERT_EQ(sample->hist.count(), 100u);
}

TEST(MetricsRegistryTest, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.GetCounter("z.last");
  registry.GetCounter("a.first");
  registry.GetGauge("m.middle");
  MetricsSnapshot snap = registry.Snapshot(12345);
  ASSERT_EQ(snap.taken_at_nanos, 12345u);
  ASSERT_EQ(snap.samples.size(), 3u);
  for (size_t i = 1; i < snap.samples.size(); ++i) {
    ASSERT_LT(snap.samples[i - 1].name, snap.samples[i].name);
  }
}

TEST(MetricsRegistryTest, CounterCallbackEvaluatedAtSnapshot) {
  MetricsRegistry registry;
  uint64_t source = 5;
  registry.RegisterCounterCallback("pmblade.test.cb",
                                   [&source] { return source; });
  ASSERT_EQ(registry.Snapshot().Find("pmblade.test.cb")->value, 5.0);
  source = 99;
  ASSERT_EQ(registry.Snapshot().Find("pmblade.test.cb")->value, 99.0);
}

TEST(MetricsRegistryTest, GaugeCallback) {
  MetricsRegistry registry;
  registry.RegisterGaugeCallback("pmblade.test.g", [] { return 2.5; });
  MetricsSnapshot snap = registry.Snapshot();
  const MetricSample* sample = snap.Find("pmblade.test.g");
  ASSERT_NE(sample, nullptr);
  ASSERT_EQ(sample->kind, MetricKind::kGauge);
  ASSERT_EQ(sample->value, 2.5);
}

TEST(MetricsRegistryTest, HistogramCallback) {
  MetricsRegistry registry;
  registry.RegisterHistogramCallback("pmblade.test.h", [] {
    Histogram h;
    h.Add(10);
    h.Add(20);
    return h;
  });
  MetricsSnapshot snap = registry.Snapshot();
  const MetricSample* sample = snap.Find("pmblade.test.h");
  ASSERT_NE(sample, nullptr);
  ASSERT_EQ(sample->kind, MetricKind::kHistogram);
  ASSERT_EQ(sample->hist.count(), 2u);
  ASSERT_EQ(sample->hist.max(), 20u);
}

TEST(MetricsRegistryTest, CallbackTakesPrecedenceOverInstrument) {
  // Registering a callback over an existing instrument must not invalidate
  // cached instrument pointers, and the callback wins at snapshot time.
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("pmblade.test.dual");
  c->Inc(3);
  registry.RegisterCounterCallback("pmblade.test.dual", [] {
    return uint64_t{1000};
  });
  c->Inc(4);  // cached pointer still safe to use
  ASSERT_EQ(c->Value(), 7u);
  ASSERT_EQ(registry.Snapshot().Find("pmblade.test.dual")->value, 1000.0);
}

TEST(MetricsRegistryTest, SnapshotToleratesReentrantCallback) {
  // A callback that calls back into the registry (as DB code does when a
  // gauge callback locks a mutex whose holders call GetCounter) must not
  // deadlock: callbacks are evaluated after the registry lock is dropped.
  MetricsRegistry registry;
  registry.GetCounter("pmblade.test.inner")->Inc(11);
  registry.RegisterGaugeCallback("pmblade.test.reentrant", [&registry] {
    return static_cast<double>(
        registry.GetCounter("pmblade.test.inner")->Value());
  });
  MetricsSnapshot snap = registry.Snapshot();
  const MetricSample* sample = snap.Find("pmblade.test.reentrant");
  ASSERT_NE(sample, nullptr);
  ASSERT_EQ(sample->value, 11.0);
}

TEST(MetricsRegistryTest, ConcurrentCounterIncrements) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("pmblade.test.mt");
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncsPerThread; ++i) counter->Inc();
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kIncsPerThread);
}

// ---------------------------------------------------------------------------
// Event / EventBus
// ---------------------------------------------------------------------------

TEST(EventTest, WithAppendsFieldsAndFieldOrReads) {
  Event e(EventType::kFlushEnd, 77);
  e.With("tables", 3).With("duration_nanos", 1500);
  ASSERT_EQ(e.num_fields, 2);
  ASSERT_EQ(e.FieldOr("tables", -1), 3.0);
  ASSERT_EQ(e.FieldOr("duration_nanos", -1), 1500.0);
  ASSERT_EQ(e.FieldOr("absent", -1), -1.0);
}

TEST(EventTest, WithDropsFieldsPastMax) {
  Event e(EventType::kFlushBegin, 0);
  for (int i = 0; i < Event::kMaxFields + 5; ++i) e.With("k", i);
  ASSERT_EQ(e.num_fields, Event::kMaxFields);
}

TEST(EventTest, ToJsonIsValidJson) {
  Event e(EventType::kInternalDecision, 42);
  e.With("partition", 1)
      .With("eq1_benefit_rate", 0.5)
      .With("eq1", 1)
      .WithDetail("[{\"partition\":1,\"kept\":true}]");
  std::string json = e.ToJson();
  size_t pos = 0;
  ASSERT_TRUE(JsonLint(json, &pos)) << json << " error at " << pos;
  ASSERT_NE(json.find("\"internal_decision\""), std::string::npos);
  ASSERT_NE(json.find("\"detail\""), std::string::npos);
}

class RecordingListener : public EventListener {
 public:
  explicit RecordingListener(std::vector<std::string>* log,
                             const std::string& name)
      : log_(log), name_(name) {}
  void OnEvent(const Event& event) override {
    log_->push_back(name_ + ":" + EventTypeName(event.type));
  }

 private:
  std::vector<std::string>* log_;
  std::string name_;
};

TEST(EventBusTest, InactiveWithoutListeners) {
  EventBus bus;
  ASSERT_FALSE(bus.active());
  // Emitting with no listeners is allowed and counts nothing delivered.
  bus.Emit(Event(EventType::kWalSync, 0));
  ASSERT_EQ(bus.emitted(), 0u);
}

TEST(EventBusTest, ListenersInvokedInSubscriptionOrder) {
  EventBus bus;
  std::vector<std::string> log;
  RecordingListener first(&log, "first");
  RecordingListener second(&log, "second");
  bus.Subscribe(&first);
  bus.Subscribe(&second);
  ASSERT_TRUE(bus.active());
  bus.Emit(Event(EventType::kFlushBegin, 0));
  bus.Emit(Event(EventType::kFlushEnd, 1));
  ASSERT_EQ(log.size(), 4u);
  ASSERT_EQ(log[0], "first:flush_begin");
  ASSERT_EQ(log[1], "second:flush_begin");
  ASSERT_EQ(log[2], "first:flush_end");
  ASSERT_EQ(log[3], "second:flush_end");
}

TEST(EventBusTest, UnsubscribeStopsDelivery) {
  EventBus bus;
  std::vector<std::string> log;
  RecordingListener a(&log, "a");
  RecordingListener b(&log, "b");
  bus.Subscribe(&a);
  bus.Subscribe(&b);
  bus.Unsubscribe(&a);
  ASSERT_TRUE(bus.active());
  bus.Emit(Event(EventType::kWalSync, 0));
  ASSERT_EQ(log.size(), 1u);
  ASSERT_EQ(log[0], "b:wal_sync");
  bus.Unsubscribe(&b);
  ASSERT_FALSE(bus.active());
  bus.Emit(Event(EventType::kWalSync, 1));
  ASSERT_EQ(log.size(), 1u);
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, KeepsEventsUnderCapacity) {
  TraceRecorder trace(8);
  for (int i = 0; i < 5; ++i) {
    Event e(EventType::kWalSync, static_cast<uint64_t>(i));
    e.With("bytes", i * 100);
    trace.OnEvent(e);
  }
  ASSERT_EQ(trace.recorded(), 5u);
  std::vector<Event> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(events[i].timestamp_nanos, static_cast<uint64_t>(i));
    ASSERT_EQ(events[i].FieldOr("bytes", -1), i * 100.0);
  }
}

TEST(TraceRecorderTest, RingWrapsKeepingNewestOldestFirst) {
  constexpr size_t kCapacity = 8;
  TraceRecorder trace(kCapacity);
  constexpr int kTotal = 27;
  for (int i = 0; i < kTotal; ++i) {
    trace.OnEvent(Event(EventType::kFlushBegin, static_cast<uint64_t>(i)));
  }
  ASSERT_EQ(trace.recorded(), static_cast<uint64_t>(kTotal));
  std::vector<Event> events = trace.Snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  // The last kCapacity events, oldest first.
  for (size_t i = 0; i < kCapacity; ++i) {
    ASSERT_EQ(events[i].timestamp_nanos,
              static_cast<uint64_t>(kTotal - kCapacity + i));
  }
}

TEST(TraceRecorderTest, DumpJsonLinesEachLineValid) {
  TraceRecorder trace(4);
  for (int i = 0; i < 6; ++i) {
    Event e(EventType::kSsdQueueDepth, static_cast<uint64_t>(i));
    e.With("depth", i);
    trace.OnEvent(e);
  }
  std::string dump = trace.DumpJsonLines();
  std::stringstream ss(dump);
  std::string line;
  int lines = 0;
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    size_t pos = 0;
    ASSERT_TRUE(JsonLint(line, &pos)) << line << " error at " << pos;
    ++lines;
  }
  ASSERT_EQ(lines, 4);
}

TEST(TraceRecorderTest, ConcurrentRecordingLosesNothingInTotal) {
  constexpr size_t kCapacity = 64;
  TraceRecorder trace(kCapacity);
  EventBus bus;
  bus.Subscribe(&trace);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bus, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Event e(EventType::kIoGateChange,
                static_cast<uint64_t>(t) * kPerThread + i);
        e.With("budget", i);
        bus.Emit(e);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(trace.recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  // Every surviving slot holds a distinct ticket from the final window; the
  // snapshot never exceeds capacity and timestamps are unique.
  std::vector<Event> events = trace.Snapshot();
  ASSERT_LE(events.size(), kCapacity);
  std::set<uint64_t> stamps;
  for (const auto& e : events) stamps.insert(e.timestamp_nanos);
  ASSERT_EQ(stamps.size(), events.size());
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ExporterTest, ToPrometheusNameMapsIllegalChars) {
  ASSERT_EQ(ToPrometheusName("pmblade.reads.memtable"),
            "pmblade_reads_memtable");
  ASSERT_EQ(ToPrometheusName("a-b.c:d_e9"), "a_b_c:d_e9");
  ASSERT_EQ(ToPrometheusName("plain"), "plain");
}

TEST(ExporterTest, PrometheusEmitsTypeAndSampleLines) {
  MetricsRegistry registry;
  registry.GetCounter("pmblade.x.count")->Inc(12);
  registry.GetGauge("pmblade.x.gauge")->Set(-3);
  std::string text = ExportPrometheus(registry.Snapshot());
  ASSERT_NE(text.find("# TYPE pmblade_x_count counter"), std::string::npos);
  ASSERT_NE(text.find("pmblade_x_count 12"), std::string::npos);
  ASSERT_NE(text.find("# TYPE pmblade_x_gauge gauge"), std::string::npos);
  ASSERT_NE(text.find("pmblade_x_gauge -3"), std::string::npos);
}

TEST(ExporterTest, PrometheusHistogramHasBucketsSumCount) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.GetHistogram("pmblade.x.lat");
  h->Observe(1);
  h->Observe(100);
  h->Observe(100000);
  std::string text = ExportPrometheus(registry.Snapshot());
  ASSERT_NE(text.find("# TYPE pmblade_x_lat histogram"), std::string::npos);
  ASSERT_NE(text.find("pmblade_x_lat_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  ASSERT_NE(text.find("pmblade_x_lat_count 3"), std::string::npos);
  ASSERT_NE(text.find("pmblade_x_lat_sum"), std::string::npos);
}

TEST(ExporterTest, PrometheusLinesAreParseable) {
  MetricsRegistry registry;
  registry.GetCounter("pmblade.a")->Inc();
  registry.GetGauge("pmblade.b")->Set(5);
  registry.GetHistogram("pmblade.c")->Observe(42);
  std::string text = ExportPrometheus(registry.Snapshot());
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      ASSERT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    // "name[{labels}] value"
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    char* end = nullptr;
    strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << line;
    std::string name = line.substr(0, space);
    for (char c : name.substr(0, name.find('{'))) {
      bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                   (c >= '0' && c <= '9') || c == '_' || c == ':';
      ASSERT_TRUE(legal) << line;
    }
  }
}

TEST(ExporterTest, JsonExportIsValidAndCarriesEvents) {
  MetricsRegistry registry;
  registry.GetCounter("pmblade.j.count")->Inc(9);
  registry.GetHistogram("pmblade.j.hist")->Observe(10);
  Event e(EventType::kFlushEnd, 5);
  e.With("tables", 2);
  std::string json = ExportJson(registry.Snapshot(123), {e});
  size_t pos = 0;
  ASSERT_TRUE(JsonLint(json, &pos)) << json << " error at " << pos;
  ASSERT_NE(json.find("\"ts\":123"), std::string::npos);
  ASSERT_NE(json.find("\"pmblade.j.count\":9"), std::string::npos);
  ASSERT_NE(json.find("\"pmblade.j.hist\""), std::string::npos);
  ASSERT_NE(json.find("\"flush_end\""), std::string::npos);
}

TEST(ExporterTest, JsonExportEmptyRegistryStillValid) {
  MetricsRegistry registry;
  std::string json = ExportJson(registry.Snapshot(), {});
  size_t pos = 0;
  ASSERT_TRUE(JsonLint(json, &pos)) << json << " error at " << pos;
  ASSERT_NE(json.find("\"events\":[]"), std::string::npos);
}

TEST(JsonLintTest, AcceptsValidDocuments) {
  for (const char* doc : {
           "{}",
           "[]",
           "null",
           "true",
           "-12.5e3",
           "\"str with \\\" escape\"",
           "{\"a\":[1,2,{\"b\":null}],\"c\":\"\\u0041\"}",
           "[1, 2, 3]",
       }) {
    ASSERT_TRUE(JsonLint(doc)) << doc;
  }
}

TEST(JsonLintTest, RejectsInvalidDocuments) {
  for (const char* doc : {
           "",
           "{",
           "[1,]",
           "{\"a\":}",
           "{'a':1}",
           "nul",
           "01",
           "{} extra",
           "\"unterminated",
           "{\"a\" 1}",
       }) {
    size_t pos = 0;
    ASSERT_FALSE(JsonLint(doc, &pos)) << doc;
  }
}

// ---------------------------------------------------------------------------
// ShardedHistogram
// ---------------------------------------------------------------------------

TEST(ShardedHistogramTest, MergedCombinesAllShards) {
  ShardedHistogram hist(4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 1; i <= kPerThread; ++i) {
        hist.Add(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  Histogram merged = hist.Merged();
  ASSERT_EQ(merged.count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(merged.min(), 1u);
  ASSERT_EQ(merged.max(), static_cast<uint64_t>(kPerThread));
}

TEST(ShardedHistogramTest, ClearResetsEveryShard) {
  ShardedHistogram hist;
  hist.Add(5);
  hist.Add(50);
  ASSERT_EQ(hist.Merged().count(), 2u);
  hist.Clear();
  ASSERT_EQ(hist.Merged().count(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace pmblade
