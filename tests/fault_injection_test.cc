// Failure-injection tests: a faulty Env that fails writes/syncs on command,
// corrupted on-media images, and the engine's behaviour under both. The
// engine must surface Status errors — never crash, never silently lose
// acknowledged data.

#include <gtest/gtest.h>

#include "core/db.h"
#include "core/manifest.h"
#include "memtable/wal.h"
#include "pm/pm_pool.h"
#include "pmtable/pm_table.h"
#include "pmtable/pm_table_builder.h"
#include "tests/fault_env.h"
#include "util/random.h"

namespace pmblade {
namespace {

using test::FaultyEnv;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_fault_test";
    env_.reset(new FaultyEnv(PosixEnv()));
    options_ = Options();
    options_.env = env_.get();
    options_.memtable_bytes = 32 << 10;
    options_.pm_pool_capacity = 32 << 20;
    options_.pm_latency.inject_latency = false;
    DestroyDB(options_, dbname_);
  }
  void TearDown() override {
    db_.reset();
    env_->fail_writes = false;
    env_->fail_new_files = false;
    DestroyDB(options_, dbname_);
  }

  std::string dbname_;
  std::unique_ptr<FaultyEnv> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(FaultInjectionTest, WalWriteFailureSurfacesToPut) {
  ASSERT_TRUE(DB::Open(options_, dbname_, &db_).ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "before", "v").ok());
  env_->fail_writes = true;
  Status s = db_->Put(WriteOptions(), "during", "v");
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  env_->fail_writes = false;
  // Earlier acknowledged data still readable.
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "before", &value).ok());
}

TEST_F(FaultInjectionTest, SyncFailureSurfacesOnSyncedWrite) {
  ASSERT_TRUE(DB::Open(options_, dbname_, &db_).ok());
  env_->fail_writes = true;
  WriteOptions wopts;
  wopts.sync = true;
  Status s = db_->Put(wopts, "k", "v");
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

TEST_F(FaultInjectionTest, RecoveryAfterMidFlushFailure) {
  ASSERT_TRUE(DB::Open(options_, dbname_, &db_).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "key" + std::to_string(i), "v").ok());
  }
  // Fail after a handful more writes; the flush (WAL rotation + manifest)
  // will hit the fault.
  env_->writes_until_failure = 5;
  Status s = db_->FlushMemTable();
  env_->writes_until_failure = -1;
  // The flush may or may not have failed depending on where the countdown
  // landed; either way reopening must recover all acknowledged writes.
  (void)s;
  db_.reset();

  ASSERT_TRUE(DB::Open(options_, dbname_, &db_).ok());
  for (int i = 0; i < 100; ++i) {
    std::string value;
    Status rs = db_->Get(ReadOptions(), "key" + std::to_string(i), &value);
    EXPECT_TRUE(rs.ok()) << "key" << i << ": " << rs.ToString();
  }
}

TEST_F(FaultInjectionTest, OpenFailsCleanlyWhenFilesCannotBeCreated) {
  env_->fail_new_files = true;
  Status s = DB::Open(options_, dbname_, &db_);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(db_, nullptr);
}

// ---------------------------------------------------------------------------
// Media corruption
// ---------------------------------------------------------------------------

TEST(CorruptionTest, ManifestCrcDetectsBitFlips) {
  std::string dir = ::testing::TempDir() + "pmblade_corrupt_manifest";
  PosixEnv()->RemoveDirRecursively(dir);
  ASSERT_TRUE(PosixEnv()->CreateDir(dir).ok());

  ManifestState state;
  state.next_file_number = 7;
  state.last_sequence = 99;
  ManifestPartition part;
  part.id = 1;
  part.unsorted_pm_ids = {3, 2, 1};
  state.partitions.push_back(part);
  ASSERT_TRUE(WriteManifest(PosixEnv(), dir, &state ? state : state).ok());

  // Round-trips intact...
  ManifestState loaded;
  ASSERT_TRUE(ReadManifest(PosixEnv(), dir, &loaded).ok());
  EXPECT_EQ(loaded.next_file_number, 7u);
  ASSERT_EQ(loaded.partitions.size(), 1u);
  EXPECT_EQ(loaded.partitions[0].unsorted_pm_ids,
            (std::vector<uint64_t>{3, 2, 1}));

  // ...and any flipped byte is caught by the CRC.
  std::string contents;
  ASSERT_TRUE(
      ReadFileToString(PosixEnv(), dir + "/MANIFEST", &contents).ok());
  Random rnd(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::string damaged = contents;
    damaged[rnd.Uniform(damaged.size())] ^= 0x40;
    ASSERT_TRUE(
        WriteStringToFile(PosixEnv(), damaged, dir + "/MANIFEST").ok());
    Status s = ReadManifest(PosixEnv(), dir, &loaded);
    EXPECT_FALSE(s.ok()) << "trial " << trial;
  }
  PosixEnv()->RemoveDirRecursively(dir);
}

TEST(CorruptionTest, PmTableHeaderCrcDetectsBitFlips) {
  std::string path = ::testing::TempDir() + "pmblade_corrupt_pmtable.pm";
  ::remove(path.c_str());
  PmPoolOptions popts;
  popts.capacity = 16 << 20;
  popts.latency.inject_latency = false;
  std::unique_ptr<PmPool> pool;
  ASSERT_TRUE(PmPool::Open(path, popts, &pool).ok());

  PmTableBuilder builder(pool.get(), PmTableOptions{});
  for (int i = 0; i < 100; ++i) {
    std::string ikey;
    AppendInternalKey(&ikey, "t|key" + std::to_string(1000 + i), 5,
                      kTypeValue);
    builder.Add(ikey, "value");
  }
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());
  uint64_t id = table->id();
  table.reset();

  // Flip a header byte in place; reopening must fail with Corruption.
  char* data = pool->DataFor(id);
  ASSERT_NE(data, nullptr);
  data[8] ^= 0x1;  // num_groups field
  std::shared_ptr<PmTable> reopened;
  Status s = PmTable::Open(pool.get(), id, &reopened);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  data[8] ^= 0x1;  // restore
  EXPECT_TRUE(PmTable::Open(pool.get(), id, &reopened).ok());

  pool.reset();
  ::remove(path.c_str());
}

TEST(CorruptionTest, PoolHeaderCorruptionDetectedAtOpen) {
  std::string path = ::testing::TempDir() + "pmblade_corrupt_pool.pm";
  ::remove(path.c_str());
  PmPoolOptions popts;
  popts.capacity = 4 << 20;
  {
    std::unique_ptr<PmPool> pool;
    ASSERT_TRUE(PmPool::Open(path, popts, &pool).ok());
  }
  // Damage the magic.
  FILE* f = fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  fputc('X', f);
  fclose(f);
  std::unique_ptr<PmPool> pool;
  Status s = PmPool::Open(path, popts, &pool);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  ::remove(path.c_str());
}

}  // namespace
}  // namespace pmblade
