// Tests for src/net: the RESP parser (incremental feeds, pipelining, limits,
// inline commands), the command handler (semantics + admission control), and
// the epoll server end to end over real loopback sockets — pipelined
// ordering, concurrent clients checked against direct DB reads, INFO through
// a real client-side parse, exporter wiring, admission shed, and
// graceful-drain-loses-no-acked-writes with a reopen.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "net/commands.h"
#include "net/resp.h"
#include "net/server.h"

namespace pmblade {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// RESP parser
// ---------------------------------------------------------------------------

std::vector<RespValue> ParseAll(RespParser* parser) {
  std::vector<RespValue> out;
  RespValue v;
  while (parser->Next(&v) == RespParser::Result::kValue) {
    out.push_back(v);
  }
  return out;
}

TEST(RespParserTest, SimpleTypes) {
  RespParser parser;
  const char* wire = "+OK\r\n-ERR boom\r\n:42\r\n$5\r\nhello\r\n$-1\r\n";
  parser.Feed(wire, strlen(wire));
  std::vector<RespValue> values = ParseAll(&parser);
  ASSERT_EQ(values.size(), 5u);
  EXPECT_EQ(values[0].type, RespValue::Type::kSimpleString);
  EXPECT_EQ(values[0].str, "OK");
  EXPECT_EQ(values[1].type, RespValue::Type::kError);
  EXPECT_EQ(values[1].str, "ERR boom");
  EXPECT_EQ(values[2].type, RespValue::Type::kInteger);
  EXPECT_EQ(values[2].integer, 42);
  EXPECT_EQ(values[3].type, RespValue::Type::kBulkString);
  EXPECT_EQ(values[3].str, "hello");
  EXPECT_EQ(values[4].type, RespValue::Type::kNull);
}

TEST(RespParserTest, ByteAtATimeFeedMatchesOneShot) {
  const char* wire =
      "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$4\r\nv\r\n1\r\n"
      "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n";
  RespParser parser;
  std::vector<RespValue> values;
  RespValue v;
  for (size_t i = 0; i < strlen(wire); ++i) {
    parser.Feed(wire + i, 1);
    while (parser.Next(&v) == RespParser::Result::kValue) {
      values.push_back(v);
    }
  }
  ASSERT_EQ(values.size(), 2u);
  ASSERT_EQ(values[0].array.size(), 3u);
  EXPECT_EQ(values[0].array[0].str, "SET");
  EXPECT_EQ(values[0].array[2].str, "v\r\n1");  // CRLF inside a bulk is data
  ASSERT_EQ(values[1].array.size(), 2u);
  EXPECT_EQ(values[1].array[1].str, "k");
}

TEST(RespParserTest, PipelinedBurst) {
  RespParser parser;
  std::string wire;
  for (int i = 0; i < 100; ++i) {
    EncodeBulkStringArray({"SET", "k" + std::to_string(i), "v"}, &wire);
  }
  parser.Feed(wire.data(), wire.size());
  std::vector<RespValue> values = ParseAll(&parser);
  ASSERT_EQ(values.size(), 100u);
  EXPECT_EQ(values[99].array[1].str, "k99");
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(RespParserTest, InlineCommands) {
  RespParser parser;
  const char* wire = "PING\r\nSET key value\r\n\r\n  GET   key  \r\n";
  parser.Feed(wire, strlen(wire));
  std::vector<RespValue> values = ParseAll(&parser);
  // The empty line parses to an empty array (ignored by the handler).
  ASSERT_EQ(values.size(), 4u);
  ASSERT_EQ(values[0].array.size(), 1u);
  EXPECT_EQ(values[0].array[0].str, "PING");
  ASSERT_EQ(values[1].array.size(), 3u);
  EXPECT_EQ(values[1].array[2].str, "value");
  EXPECT_EQ(values[2].array.size(), 0u);
  ASSERT_EQ(values[3].array.size(), 2u);
  EXPECT_EQ(values[3].array[0].str, "GET");
}

TEST(RespParserTest, OversizedBulkRejected) {
  RespParser::Limits limits;
  limits.max_bulk_bytes = 16;
  RespParser parser(limits);
  const char* wire = "$1000\r\n";
  parser.Feed(wire, strlen(wire));
  RespValue v;
  EXPECT_EQ(parser.Next(&v), RespParser::Result::kError);
  EXPECT_NE(parser.error().find("bulk"), std::string::npos);
}

TEST(RespParserTest, OversizedArrayRejected) {
  RespParser::Limits limits;
  limits.max_array_elements = 4;
  RespParser parser(limits);
  const char* wire = "*100\r\n";
  parser.Feed(wire, strlen(wire));
  RespValue v;
  EXPECT_EQ(parser.Next(&v), RespParser::Result::kError);
}

TEST(RespParserTest, OversizedInlineRejected) {
  RespParser::Limits limits;
  limits.max_inline_bytes = 8;
  RespParser parser(limits);
  std::string wire(100, 'x');  // no newline in sight, line keeps growing
  parser.Feed(wire.data(), wire.size());
  RespValue v;
  EXPECT_EQ(parser.Next(&v), RespParser::Result::kError);
}

TEST(RespParserTest, GarbageInsideArrayIsFatal) {
  RespParser parser;
  const char* wire = "*2\r\n$3\r\nGET\r\nnot-a-type\r\n";
  parser.Feed(wire, strlen(wire));
  RespValue v;
  EXPECT_EQ(parser.Next(&v), RespParser::Result::kError);
  // The parser stays latched in the error state.
  parser.Feed("+OK\r\n", 5);
  EXPECT_EQ(parser.Next(&v), RespParser::Result::kError);
}

TEST(RespParserTest, BulkMissingTerminatorIsFatal) {
  RespParser parser;
  const char* wire = "$3\r\nabcXY";  // XY where CRLF must be
  parser.Feed(wire, strlen(wire));
  RespValue v;
  EXPECT_EQ(parser.Next(&v), RespParser::Result::kError);
}

TEST(RespParserTest, NeedMoreThenValue) {
  RespParser parser;
  RespValue v;
  parser.Feed("*1\r\n$4\r\nPI", 10);
  EXPECT_EQ(parser.Next(&v), RespParser::Result::kNeedMore);
  parser.Feed("NG\r\n", 4);
  ASSERT_EQ(parser.Next(&v), RespParser::Result::kValue);
  EXPECT_EQ(v.array[0].str, "PING");
}

TEST(GlobMatchTest, Patterns) {
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("key:*", "key:42"));
  EXPECT_FALSE(GlobMatch("key:*", "other:42"));
  EXPECT_TRUE(GlobMatch("k?y", "key"));
  EXPECT_FALSE(GlobMatch("k?y", "kezy"));
  EXPECT_TRUE(GlobMatch("a*b*c", "axxbyyc"));
  EXPECT_FALSE(GlobMatch("a*b*c", "axxbyy"));
  EXPECT_TRUE(GlobMatch("\\*", "*"));
  EXPECT_FALSE(GlobMatch("\\*", "x"));
  EXPECT_TRUE(GlobMatch("", ""));
  EXPECT_FALSE(GlobMatch("", "x"));
}

// ---------------------------------------------------------------------------
// Command handler (no sockets)
// ---------------------------------------------------------------------------

class CommandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_net_command_test";
    options_ = Options();
    DestroyDB(options_, dbname_);
    options_.pm_latency.inject_latency = false;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
    db_ = std::move(db);
    metrics_.Register(db_->metrics_registry());
    handler_.reset(new CommandHandler(db_.get(), handler_options_,
                                      &metrics_, SystemClock()));
  }
  void TearDown() override {
    handler_.reset();
    db_.reset();
    DestroyDB(options_, dbname_);
  }

  /// Runs one command through parse + dispatch, returns the parsed reply.
  /// `session` is forwarded to the handler (nullptr = stateless, as the
  /// plain overload always was).
  RespValue Call(const std::vector<std::string>& args,
                 CommandHandler::Result* result = nullptr,
                 CommandHandler::Session* session = nullptr) {
    std::string wire;
    EncodeBulkStringArray(args, &wire);
    RespParser parser;
    parser.Feed(wire.data(), wire.size());
    RespValue command;
    EXPECT_EQ(parser.Next(&command), RespParser::Result::kValue);

    std::string out;
    CommandHandler::Result r = handler_->Execute(command, session, &out);
    if (result != nullptr) *result = r;
    RespParser reply_parser;
    reply_parser.Feed(out.data(), out.size());
    RespValue reply;
    EXPECT_EQ(reply_parser.Next(&reply), RespParser::Result::kValue)
        << "no reply for " << args[0];
    return reply;
  }

  uint64_t OpenSnapshots() {
    uint64_t value = 0;
    EXPECT_TRUE(db_->GetProperty("pmblade.open-snapshots", &value));
    return value;
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
  ServerMetrics metrics_;
  CommandHandlerOptions handler_options_;
  std::unique_ptr<CommandHandler> handler_;
};

TEST_F(CommandTest, SetGetDelRoundTrip) {
  EXPECT_EQ(Call({"SET", "a", "1"}).type, RespValue::Type::kSimpleString);
  RespValue got = Call({"GET", "a"});
  EXPECT_EQ(got.type, RespValue::Type::kBulkString);
  EXPECT_EQ(got.str, "1");
  EXPECT_EQ(Call({"GET", "missing"}).type, RespValue::Type::kNull);
  RespValue del = Call({"DEL", "a", "missing"});
  EXPECT_EQ(del.type, RespValue::Type::kInteger);
  EXPECT_EQ(del.integer, 1);  // only "a" existed
  EXPECT_EQ(Call({"GET", "a"}).type, RespValue::Type::kNull);
}

TEST_F(CommandTest, CaseInsensitiveAndArity) {
  EXPECT_EQ(Call({"set", "a", "1"}).type, RespValue::Type::kSimpleString);
  EXPECT_EQ(Call({"gEt", "a"}).str, "1");
  RespValue err = Call({"SET", "a"});
  EXPECT_EQ(err.type, RespValue::Type::kError);
  EXPECT_NE(err.str.find("wrong number"), std::string::npos);
  EXPECT_EQ(Call({"NOSUCH", "x"}).type, RespValue::Type::kError);
}

TEST_F(CommandTest, MSetMGetExists) {
  RespValue ok = Call({"MSET", "a", "1", "b", "2", "c", "3"});
  EXPECT_EQ(ok.type, RespValue::Type::kSimpleString);
  RespValue got = Call({"MGET", "a", "missing", "c"});
  ASSERT_EQ(got.array.size(), 3u);
  EXPECT_EQ(got.array[0].str, "1");
  EXPECT_EQ(got.array[1].type, RespValue::Type::kNull);
  EXPECT_EQ(got.array[2].str, "3");
  EXPECT_EQ(Call({"EXISTS", "a", "b", "missing"}).integer, 2);
  EXPECT_EQ(Call({"MSET", "a", "1", "b"}).type, RespValue::Type::kError);
}

TEST_F(CommandTest, ScanPagesEntireKeyspace) {
  for (int i = 0; i < 25; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%02d", i);
    Call({"SET", key, "v"});
  }
  std::vector<std::string> seen;
  std::string cursor = "0";
  int pages = 0;
  do {
    RespValue page = Call({"SCAN", cursor, "COUNT", "7"});
    ASSERT_EQ(page.array.size(), 2u);
    cursor = page.array[0].str;
    for (const RespValue& k : page.array[1].array) {
      seen.push_back(k.str);
    }
    ++pages;
    ASSERT_LE(pages, 20) << "cursor failed to terminate";
  } while (cursor != "0");
  ASSERT_EQ(seen.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%02d", i);
    EXPECT_EQ(seen[i], key);  // pages arrive in key order, no dup/loss
  }
  EXPECT_GE(pages, 4);
}

TEST_F(CommandTest, ScanMatchAndDbSize) {
  Call({"MSET", "user:1", "a", "user:2", "b", "other:1", "c"});
  RespValue page = Call({"SCAN", "0", "MATCH", "user:*", "COUNT", "100"});
  ASSERT_EQ(page.array.size(), 2u);
  EXPECT_EQ(page.array[0].str, "0");
  ASSERT_EQ(page.array[1].array.size(), 2u);
  EXPECT_EQ(page.array[1].array[0].str, "user:1");
  EXPECT_EQ(Call({"DBSIZE"}).integer, 3);
}

TEST_F(CommandTest, PingEchoInfo) {
  EXPECT_EQ(Call({"PING"}).str, "PONG");
  EXPECT_EQ(Call({"PING", "hi"}).str, "hi");
  EXPECT_EQ(Call({"ECHO", "yo"}).str, "yo");
  RespValue info = Call({"INFO"});
  ASSERT_EQ(info.type, RespValue::Type::kBulkString);
  EXPECT_NE(info.str.find("# Server"), std::string::npos);
  EXPECT_NE(info.str.find("# Engine"), std::string::npos);
  EXPECT_NE(info.str.find("# Memory"), std::string::npos);
  EXPECT_NE(info.str.find("mem_arbiter:{"), std::string::npos);
  EXPECT_NE(info.str.find("write_pressure:none"), std::string::npos);
  EXPECT_NE(info.str.find("pmblade.server.commands"), std::string::npos);

  // Section filtering: INFO memory returns only the arbiter state.
  RespValue mem = Call({"INFO", "memory"});
  ASSERT_EQ(mem.type, RespValue::Type::kBulkString);
  EXPECT_EQ(mem.str.find("# Engine"), std::string::npos);
  EXPECT_NE(mem.str.find("mem_arbiter:{"), std::string::npos);
}

TEST_F(CommandTest, QuitAndShutdownSignalTheServer) {
  CommandHandler::Result result;
  EXPECT_EQ(Call({"QUIT"}, &result).type, RespValue::Type::kSimpleString);
  EXPECT_TRUE(result.close_connection);
  EXPECT_FALSE(result.shutdown_server);

  std::string wire, out;
  EncodeBulkStringArray({"SHUTDOWN"}, &wire);
  RespParser parser;
  parser.Feed(wire.data(), wire.size());
  RespValue command;
  ASSERT_EQ(parser.Next(&command), RespParser::Result::kValue);
  result = handler_->Execute(command, &out);
  EXPECT_TRUE(out.empty());  // SHUTDOWN sends no reply, like Redis
  EXPECT_TRUE(result.close_connection);
  EXPECT_TRUE(result.shutdown_server);
}

TEST_F(CommandTest, NonArrayCommandIsFatal) {
  RespValue bogus;
  bogus.type = RespValue::Type::kInteger;
  bogus.integer = 7;
  std::string out;
  CommandHandler::Result result = handler_->Execute(bogus, &out);
  EXPECT_TRUE(result.close_connection);
  EXPECT_EQ(out[0], '-');
}

TEST_F(CommandTest, AdmissionShedsWritesUnderStall) {
  handler_options_.pressure_probe = [](const Slice&) { return WritePressure::kStall; };
  handler_.reset(new CommandHandler(db_.get(), handler_options_, &metrics_,
                                    SystemClock()));
  const uint64_t sheds_before = metrics_.sheds->Value();
  RespValue reply = Call({"SET", "a", "1"});
  EXPECT_EQ(reply.type, RespValue::Type::kError);
  EXPECT_EQ(reply.str.compare(0, 4, "BUSY"), 0);
  EXPECT_EQ(Call({"MSET", "a", "1"}).type, RespValue::Type::kError);
  EXPECT_EQ(Call({"DEL", "a"}).type, RespValue::Type::kError);
  EXPECT_EQ(metrics_.sheds->Value(), sheds_before + 3);
  // Reads are never shed.
  EXPECT_EQ(Call({"PING"}).str, "PONG");
  EXPECT_EQ(Call({"GET", "a"}).type, RespValue::Type::kNull);
}

TEST_F(CommandTest, SlowdownShedsOnlyWhenConfigured) {
  handler_options_.pressure_probe = [](const Slice&) {
    return WritePressure::kSlowdown;
  };
  handler_.reset(new CommandHandler(db_.get(), handler_options_, &metrics_,
                                    SystemClock()));
  EXPECT_EQ(Call({"SET", "a", "1"}).type, RespValue::Type::kSimpleString);

  handler_options_.shed_on_slowdown = true;
  handler_.reset(new CommandHandler(db_.get(), handler_options_, &metrics_,
                                    SystemClock()));
  EXPECT_EQ(Call({"SET", "a", "2"}).type, RespValue::Type::kError);
}

TEST_F(CommandTest, ErrorRepliesCountedExactlyOnce) {
  const uint64_t errors_base = metrics_.error_replies->Value();
  const uint64_t parse_base = metrics_.parse_errors->Value();

  Call({"SET", "a"});                 // wrong arity
  Call({"NOSUCH", "x"});              // unknown command
  Call({"SCAN", "0", "BOGUS", "x"});  // unknown SCAN option
  Call({"SCAN", "0", "COUNT", "0"});  // bad COUNT
  Call({"SCAN", "0", "MATCH"});       // dangling option value
  EXPECT_EQ(metrics_.error_replies->Value(), errors_base + 5);

  // Success and null replies add nothing.
  Call({"SET", "a", "1"});
  Call({"GET", "a"});
  Call({"GET", "missing"});
  Call({"PING"});
  EXPECT_EQ(metrics_.error_replies->Value(), errors_base + 5);
  EXPECT_EQ(metrics_.parse_errors->Value(), parse_base);

  // A protocol error sends one -ERR: it counts once in error_replies (the
  // census of error replies sent) AND once in parse_errors (the fatal
  // subset) — previously it was missing from error_replies entirely.
  RespValue bogus;
  bogus.type = RespValue::Type::kInteger;
  bogus.integer = 7;
  std::string out;
  handler_->Execute(bogus, &out);
  EXPECT_EQ(metrics_.error_replies->Value(), errors_base + 6);
  EXPECT_EQ(metrics_.parse_errors->Value(), parse_base + 1);

  // Sheds: -BUSY is an error reply too, counted exactly once per shed.
  handler_options_.pressure_probe = [](const Slice&) {
    return WritePressure::kStall;
  };
  handler_.reset(new CommandHandler(db_.get(), handler_options_, &metrics_,
                                    SystemClock()));
  Call({"SET", "a", "1"});
  EXPECT_EQ(metrics_.error_replies->Value(), errors_base + 7);
}

TEST_F(CommandTest, ScanSessionPinsOneSnapshotPerWalk) {
  for (int i = 0; i < 20; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%02d", i);
    Call({"SET", key, "v"});
  }
  ASSERT_EQ(OpenSnapshots(), 0u);

  CommandHandler::Session session;
  RespValue page = Call({"SCAN", "0", "COUNT", "5"}, nullptr, &session);
  ASSERT_EQ(page.array.size(), 2u);
  std::string cursor = page.array[0].str;
  ASSERT_NE(cursor, "0");
  EXPECT_EQ(OpenSnapshots(), 1u);  // the walk pinned exactly one

  // A key written after the pin sorts past every unvisited key; a
  // per-page latest read would surface it, the pinned walk must not.
  Call({"SET", "zzzz-late", "v"});

  std::vector<std::string> seen;
  for (const RespValue& k : page.array[1].array) seen.push_back(k.str);
  while (cursor != "0") {
    page = Call({"SCAN", cursor, "COUNT", "5"}, nullptr, &session);
    ASSERT_EQ(page.array.size(), 2u);
    cursor = page.array[0].str;
    for (const RespValue& k : page.array[1].array) seen.push_back(k.str);
    EXPECT_LE(OpenSnapshots(), 1u);  // never more than the walk's one pin
  }
  EXPECT_EQ(seen.size(), 20u) << "walk saw a post-pin write";
  EXPECT_EQ(OpenSnapshots(), 0u);  // released when the walk finished

  // Restarting with "0" replaces the pin instead of stacking pins, and a
  // cursor we never handed out drops it (no stale view for foreign walks).
  Call({"SCAN", "0", "COUNT", "5"}, nullptr, &session);
  EXPECT_EQ(OpenSnapshots(), 1u);
  Call({"SCAN", "0", "COUNT", "5"}, nullptr, &session);
  EXPECT_EQ(OpenSnapshots(), 1u);
  Call({"SCAN", "never-handed-out", "COUNT", "5"}, nullptr, &session);
  EXPECT_EQ(OpenSnapshots(), 0u);

  // The teardown path: an abandoned walk is released by Session::Release
  // (what the server calls when a connection closes).
  Call({"SCAN", "0", "COUNT", "5"}, nullptr, &session);
  EXPECT_EQ(OpenSnapshots(), 1u);
  session.Release();
  EXPECT_EQ(OpenSnapshots(), 0u);
}

// ---------------------------------------------------------------------------
// Server over real loopback sockets
// ---------------------------------------------------------------------------

/// Minimal blocking RESP client: sends command arrays, parses replies with
/// the real parser (the INFO/exporter round-trip the issue asks for — no
/// regex anywhere near the server path).
class RespTestClient {
 public:
  bool Connect(int port) {
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    timeval tv{10, 0};
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }
  ~RespTestClient() {
    if (fd_ >= 0) close(fd_);
  }

  bool Send(const std::vector<std::string>& args) {
    std::string wire;
    EncodeBulkStringArray(args, &wire);
    return SendRaw(wire);
  }

  bool SendRaw(const std::string& wire) {
    size_t sent = 0;
    while (sent < wire.size()) {
      ssize_t n = write(fd_, wire.data() + sent, wire.size() - sent);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocks until one reply is parsed. Returns false on EOF/timeout/parse
  /// error.
  bool ReadReply(RespValue* reply) {
    char buf[4096];
    while (true) {
      RespParser::Result r = parser_.Next(reply);
      if (r == RespParser::Result::kValue) return true;
      if (r == RespParser::Result::kError) return false;
      ssize_t n = read(fd_, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      parser_.Feed(buf, static_cast<size_t>(n));
    }
  }

  RespValue Command(const std::vector<std::string>& args) {
    RespValue reply;
    if (!Send(args) || !ReadReply(&reply)) {
      reply.type = RespValue::Type::kError;
      reply.str = "CLIENT transport failure";
    }
    return reply;
  }

  /// Reads until the server closes the connection; returns parsed replies.
  std::vector<RespValue> DrainUntilClose() {
    std::vector<RespValue> replies;
    RespValue reply;
    while (ReadReply(&reply)) replies.push_back(reply);
    return replies;
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  RespParser parser_;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_net_server_test";
    options_ = Options();
    DestroyDB(options_, dbname_);
    options_.pm_latency.inject_latency = false;
  }
  void TearDown() override {
    server_.reset();
    db_.reset();
    DestroyDB(options_, dbname_);
  }

  void OpenDb() {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
    db_ = std::move(db);
  }

  void StartServer() {
    if (db_ == nullptr) OpenDb();
    server_options_.port = 0;  // ephemeral
    server_options_.num_workers = 2;
    server_.reset(new Server(server_options_, db_.get()));
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  std::string dbname_;
  Options options_;
  ServerOptions server_options_;
  std::unique_ptr<DB> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, SetGetScanOverSocket) {
  StartServer();
  RespTestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  EXPECT_EQ(client.Command({"SET", "a", "hello"}).str, "OK");
  RespValue got = client.Command({"GET", "a"});
  EXPECT_EQ(got.type, RespValue::Type::kBulkString);
  EXPECT_EQ(got.str, "hello");

  client.Command({"MSET", "b", "1", "c", "2"});
  RespValue scan = client.Command({"SCAN", "0", "COUNT", "100"});
  ASSERT_EQ(scan.array.size(), 2u);
  EXPECT_EQ(scan.array[0].str, "0");
  EXPECT_EQ(scan.array[1].array.size(), 3u);

  // The write went through the real engine, not some server-side cache.
  std::string direct;
  ASSERT_TRUE(db_->Get(ReadOptions(), "a", &direct).ok());
  EXPECT_EQ(direct, "hello");
}

TEST_F(ServerTest, PipelinedRepliesArriveInOrder) {
  StartServer();
  RespTestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  constexpr int kN = 500;
  std::string wire;
  for (int i = 0; i < kN; ++i) {
    EncodeBulkStringArray({"SET", "k" + std::to_string(i), std::to_string(i)},
                          &wire);
    EncodeBulkStringArray({"GET", "k" + std::to_string(i)}, &wire);
  }
  ASSERT_TRUE(client.SendRaw(wire));
  for (int i = 0; i < kN; ++i) {
    RespValue set_reply, get_reply;
    ASSERT_TRUE(client.ReadReply(&set_reply)) << "at " << i;
    ASSERT_TRUE(client.ReadReply(&get_reply)) << "at " << i;
    EXPECT_EQ(set_reply.str, "OK");
    ASSERT_EQ(get_reply.type, RespValue::Type::kBulkString);
    EXPECT_EQ(get_reply.str, std::to_string(i));
  }
}

TEST_F(ServerTest, InlineCommandsWork) {
  StartServer();
  RespTestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  ASSERT_TRUE(client.SendRaw("SET inline works\r\nGET inline\r\nPING\r\n"));
  RespValue reply;
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.str, "OK");
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.str, "works");
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.str, "PONG");
}

TEST_F(ServerTest, ProtocolErrorGetsReplyThenClose) {
  StartServer();
  RespTestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  ASSERT_TRUE(client.SendRaw("*2\r\n$3\r\nGET\r\n:666\r\n"));  // int in cmd
  std::vector<RespValue> replies = client.DrainUntilClose();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, RespValue::Type::kError);
  EXPECT_NE(replies[0].str.find("Protocol error"), std::string::npos);
  EXPECT_GE(server_->metrics().parse_errors->Value(), 1u);
}

TEST_F(ServerTest, ConcurrentClientsMatchDirectReads) {
  StartServer();
  constexpr int kClients = 4;
  constexpr int kPerClient = 250;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      RespTestClient client;
      if (!client.Connect(server_->port())) {
        ++failures;
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const std::string key =
            "c" + std::to_string(c) + ":" + std::to_string(i);
        if (client.Command({"SET", key, key + "-value"}).str != "OK") {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Every acked write must be visible through the engine directly.
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      const std::string key =
          "c" + std::to_string(c) + ":" + std::to_string(i);
      std::string value;
      ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
      EXPECT_EQ(value, key + "-value");
    }
  }
  EXPECT_GE(server_->metrics().connections_accepted->Value(),
            static_cast<uint64_t>(kClients));
}

TEST_F(ServerTest, InfoAndExportersRoundTrip) {
  StartServer();
  RespTestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  client.Command({"SET", "a", "1"});

  RespValue info = client.Command({"INFO"});
  ASSERT_EQ(info.type, RespValue::Type::kBulkString);
  EXPECT_NE(info.str.find("tcp_port:" + std::to_string(server_->port())),
            std::string::npos);
  EXPECT_NE(info.str.find("connected_clients:1"), std::string::npos);
  EXPECT_NE(info.str.find("pmblade.server.commands"), std::string::npos);
  EXPECT_NE(info.str.find("pmblade.flush.count"), std::string::npos);

  // The same instruments must flow through both existing exporters.
  std::string json, prom;
  ASSERT_TRUE(db_->GetProperty("pmblade.stats.json", &json));
  EXPECT_NE(json.find("pmblade.server.commands"), std::string::npos);
  EXPECT_NE(json.find("pmblade.server.cmd.set"), std::string::npos);
  ASSERT_TRUE(db_->GetProperty("pmblade.stats.prometheus", &prom));
  EXPECT_NE(prom.find("pmblade_server_commands"), std::string::npos);
  EXPECT_NE(prom.find("pmblade_server_connections"), std::string::npos);
}

TEST_F(ServerTest, AdmissionShedOverSocket) {
  server_options_.handler.pressure_probe = [](const Slice&) {
    return WritePressure::kStall;
  };
  StartServer();
  RespTestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  RespValue reply = client.Command({"SET", "a", "1"});
  ASSERT_EQ(reply.type, RespValue::Type::kError);
  EXPECT_EQ(reply.str.compare(0, 4, "BUSY"), 0);
  EXPECT_EQ(client.Command({"PING"}).str, "PONG");
  EXPECT_GE(server_->metrics().sheds->Value(), 1u);
}

TEST_F(ServerTest, ShutdownCommandStopsTheServer) {
  StartServer();
  RespTestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  ASSERT_TRUE(client.Send({"SHUTDOWN"}));
  server_->WaitForShutdownRequest();  // unblocked by the command
  server_->Stop();
  EXPECT_FALSE(server_->running());
  EXPECT_TRUE(client.DrainUntilClose().empty());  // no reply, clean close
}

TEST_F(ServerTest, GracefulDrainLosesNoAckedWrites) {
  options_.memtable_bytes = 16 << 10;  // force flushes during the workload
  StartServer();

  constexpr int kWrites = 400;
  {
    RespTestClient client;
    ASSERT_TRUE(client.Connect(server_->port()));
    for (int i = 0; i < kWrites; ++i) {
      const std::string key = "persist:" + std::to_string(i);
      ASSERT_EQ(client.Command({"SET", key, key}).str, "OK");
    }
    // Last batch rides pipelined and UNREAD: the server owes us replies at
    // drain time and must still execute + flush them out.
    std::string wire;
    for (int i = 0; i < 50; ++i) {
      EncodeBulkStringArray({"SET", "tail:" + std::to_string(i), "t"},
                            &wire);
    }
    ASSERT_TRUE(client.SendRaw(wire));
    // Give the worker a moment to read the burst off the socket.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    server_->Stop();  // graceful drain

    std::vector<RespValue> tail = client.DrainUntilClose();
    EXPECT_EQ(tail.size(), 50u) << "drain dropped buffered commands";
    for (const RespValue& r : tail) EXPECT_EQ(r.str, "OK");
  }
  server_.reset();

  // Reopen from disk: every acked write must still be there.
  db_.reset();
  OpenDb();
  for (int i = 0; i < kWrites; ++i) {
    const std::string key = "persist:" + std::to_string(i);
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
    EXPECT_EQ(value, key);
  }
  for (int i = 0; i < 50; ++i) {
    std::string value;
    ASSERT_TRUE(
        db_->Get(ReadOptions(), "tail:" + std::to_string(i), &value).ok());
  }
}

class ServerScanLeakTest : public ServerTest {
 protected:
  uint64_t OpenSnapshots() {
    uint64_t value = 0;
    EXPECT_TRUE(db_->GetProperty("pmblade.open-snapshots", &value));
    return value;
  }

  /// Starts a SCAN walk, abandons it by disconnecting, and asserts the
  /// pinned snapshot is released once the worker reaps the connection.
  void RunDisconnectMidScan() {
    StartServer();
    for (int i = 0; i < 50; ++i) {
      char key[16];
      snprintf(key, sizeof(key), "k%02d", i);
      ASSERT_TRUE(db_->Put(WriteOptions(), key, "v").ok());
    }
    {
      RespTestClient client;
      ASSERT_TRUE(client.Connect(server_->port()));
      RespValue page = client.Command({"SCAN", "0", "COUNT", "5"});
      ASSERT_EQ(page.array.size(), 2u);
      ASSERT_NE(page.array[0].str, "0");  // walk left in flight
      EXPECT_EQ(OpenSnapshots(), 1u);
    }  // client gone; cursor abandoned mid-walk
    // The worker notices the hangup asynchronously; poll for the release.
    for (int i = 0; i < 500 && OpenSnapshots() != 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(OpenSnapshots(), 0u)
        << "abandoned SCAN cursor leaked its snapshot";
  }
};

TEST_F(ServerScanLeakTest, DisconnectMidScanReleasesSnapshot) {
  RunDisconnectMidScan();
}

TEST_F(ServerScanLeakTest, ShardedDisconnectMidScanReleasesSnapshot) {
  // The sharded facade keeps a handle->per-shard-sequences map
  // (ShardedDB::snapshots_); this is the regression test that abandoned
  // cursors cannot grow it forever.
  options_.num_shards = 4;
  RunDisconnectMidScan();
}

TEST_F(ServerTest, StopIsIdempotentAndRestartableDb) {
  StartServer();
  server_->Stop();
  server_->Stop();  // second call is a no-op
  EXPECT_FALSE(server_->running());

  // The DB stays usable after the server detaches.
  ASSERT_TRUE(db_->Put(WriteOptions(), "after", "stop").ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "after", &value).ok());
}

}  // namespace
}  // namespace net
}  // namespace pmblade
