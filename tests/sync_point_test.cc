// Unit tests for the SyncPoint facility itself: callback injection,
// enable/disable gating, payload forwarding, happens-before dependencies,
// and teardown safety.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/sync_point.h"

#ifdef PMBLADE_SYNC_POINTS

namespace pmblade {
namespace {

class SyncPointTest : public ::testing::Test {
 protected:
  void TearDown() override { SyncPoint::GetInstance()->Reset(); }
};

TEST_F(SyncPointTest, DisabledIsANoOp) {
  int calls = 0;
  SyncPoint::GetInstance()->SetCallBack("t:point",
                                        [&](void*) { ++calls; });
  // Not enabled: Process must return immediately without running callbacks.
  SyncPoint::GetInstance()->Process("t:point");
  EXPECT_EQ(calls, 0);
}

TEST_F(SyncPointTest, CallbackFiresWithPayload) {
  int calls = 0;
  void* seen = nullptr;
  SyncPoint::GetInstance()->SetCallBack("t:point", [&](void* arg) {
    ++calls;
    seen = arg;
  });
  SyncPoint::GetInstance()->EnableProcessing();
  int payload = 7;
  SyncPoint::GetInstance()->Process("t:point", &payload);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, &payload);
  // Other points are unaffected.
  SyncPoint::GetInstance()->Process("t:other");
  EXPECT_EQ(calls, 1);
}

TEST_F(SyncPointTest, ClearCallBackStopsFiring) {
  int calls = 0;
  SyncPoint::GetInstance()->SetCallBack("t:point",
                                        [&](void*) { ++calls; });
  SyncPoint::GetInstance()->EnableProcessing();
  SyncPoint::GetInstance()->Process("t:point");
  SyncPoint::GetInstance()->ClearCallBack("t:point");
  SyncPoint::GetInstance()->Process("t:point");
  EXPECT_EQ(calls, 1);
}

TEST_F(SyncPointTest, DependencyImposesCrossThreadOrder) {
  SyncPoint::GetInstance()->LoadDependency({{"t:first", "t:second"}});
  SyncPoint::GetInstance()->EnableProcessing();

  std::atomic<bool> first_fired{false};
  std::atomic<bool> second_returned{false};
  std::thread blocked([&] {
    SyncPoint::GetInstance()->Process("t:second");  // must wait for t:first
    EXPECT_TRUE(first_fired.load());
    second_returned.store(true);
  });
  // Give the blocked thread a chance to (incorrectly) run ahead.
  for (int i = 0; i < 100 && !second_returned.load(); ++i) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(second_returned.load());
  first_fired.store(true);
  SyncPoint::GetInstance()->Process("t:first");
  blocked.join();
  EXPECT_TRUE(second_returned.load());
}

TEST_F(SyncPointTest, ClearTraceRearmsDependencies) {
  SyncPoint::GetInstance()->LoadDependency({{"t:a", "t:b"}});
  SyncPoint::GetInstance()->EnableProcessing();
  SyncPoint::GetInstance()->Process("t:a");
  SyncPoint::GetInstance()->Process("t:b");  // a already fired: no blocking

  SyncPoint::GetInstance()->ClearTrace();
  std::atomic<bool> done{false};
  std::thread blocked([&] {
    SyncPoint::GetInstance()->Process("t:b");
    done.store(true);
  });
  for (int i = 0; i < 100 && !done.load(); ++i) std::this_thread::yield();
  EXPECT_FALSE(done.load());  // history cleared: b blocks again
  SyncPoint::GetInstance()->Process("t:a");
  blocked.join();
}

TEST_F(SyncPointTest, DisableProcessingUnblocksWaiters) {
  SyncPoint::GetInstance()->LoadDependency({{"t:never", "t:waiter"}});
  SyncPoint::GetInstance()->EnableProcessing();
  std::thread blocked(
      [] { SyncPoint::GetInstance()->Process("t:waiter"); });
  std::this_thread::yield();
  // Teardown must never deadlock on a waiter whose predecessor won't come.
  SyncPoint::GetInstance()->DisableProcessing();
  blocked.join();
  SUCCEED();
}

TEST_F(SyncPointTest, CallbacksRunOutsideTheRegistryLock) {
  // A callback that itself hits another sync point must not self-deadlock.
  int inner_calls = 0;
  SyncPoint::GetInstance()->SetCallBack("t:outer", [&](void*) {
    SyncPoint::GetInstance()->Process("t:inner");
  });
  SyncPoint::GetInstance()->SetCallBack("t:inner",
                                        [&](void*) { ++inner_calls; });
  SyncPoint::GetInstance()->EnableProcessing();
  SyncPoint::GetInstance()->Process("t:outer");
  EXPECT_EQ(inner_calls, 1);
}

}  // namespace
}  // namespace pmblade

#else  // !PMBLADE_SYNC_POINTS

TEST(SyncPointTest, CompiledOut) {
  GTEST_SKIP() << "built without PMBLADE_SYNC_POINTS";
}

#endif  // PMBLADE_SYNC_POINTS
