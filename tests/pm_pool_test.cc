// Tests for the simulated persistent-memory pool: allocation, free-space
// reuse, persistence/recovery, latency accounting.

#include <gtest/gtest.h>

#include <cstring>

#include "pm/pm_pool.h"

namespace pmblade {
namespace {

class PmPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "pmblade_pool_test.pm";
    ::remove(path_.c_str());
    opts_.capacity = 4 << 20;  // 4 MiB
    opts_.latency.inject_latency = false;
    ASSERT_TRUE(PmPool::Open(path_, opts_, &pool_).ok());
  }
  void TearDown() override {
    pool_.reset();
    ::remove(path_.c_str());
  }

  std::string path_;
  PmPoolOptions opts_;
  std::unique_ptr<PmPool> pool_;
};

TEST_F(PmPoolTest, AllocateAndReadBack) {
  PmPool::ObjectInfo info;
  char* data = nullptr;
  ASSERT_TRUE(pool_->Allocate(100, 7, &info, &data).ok());
  ASSERT_NE(data, nullptr);
  memcpy(data, "persistent-memory", 17);
  pool_->Persist(data, 17);

  EXPECT_EQ(info.kind, 7u);
  EXPECT_EQ(info.size, 100u);
  char* again = pool_->DataFor(info.id);
  ASSERT_EQ(again, data);
  EXPECT_EQ(memcmp(again, "persistent-memory", 17), 0);
}

TEST_F(PmPoolTest, IdsAreMonotonic) {
  PmPool::ObjectInfo a, b;
  char* p;
  ASSERT_TRUE(pool_->Allocate(10, 1, &a, &p).ok());
  ASSERT_TRUE(pool_->Allocate(10, 1, &b, &p).ok());
  EXPECT_GT(b.id, a.id);
}

TEST_F(PmPoolTest, FreeReturnsSpace) {
  uint64_t before = pool_->FreeBytes();
  PmPool::ObjectInfo info;
  char* p;
  ASSERT_TRUE(pool_->Allocate(1000, 1, &info, &p).ok());
  EXPECT_LT(pool_->FreeBytes(), before);
  ASSERT_TRUE(pool_->Free(info.id).ok());
  EXPECT_EQ(pool_->FreeBytes(), before);
  EXPECT_EQ(pool_->DataFor(info.id), nullptr);
}

TEST_F(PmPoolTest, FreeUnknownIdFails) {
  EXPECT_TRUE(pool_->Free(424242).IsNotFound());
}

TEST_F(PmPoolTest, ExhaustionReturnsBusy) {
  PmPool::ObjectInfo info;
  char* p;
  Status s;
  int allocations = 0;
  while ((s = pool_->Allocate(1 << 20, 1, &info, &p)).ok()) {
    ++allocations;
    ASSERT_LT(allocations, 100);
  }
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_GE(allocations, 3);  // ~4 MiB capacity, 1 MiB objects
}

TEST_F(PmPoolTest, FreeCoalescingAllowsLargeRealloc) {
  // Allocate three adjacent 1 MiB objects, free them all, then allocate
  // 3 MiB: only possible if extents coalesce.
  PmPool::ObjectInfo a, b, c;
  char* p;
  ASSERT_TRUE(pool_->Allocate(1 << 20, 1, &a, &p).ok());
  ASSERT_TRUE(pool_->Allocate(1 << 20, 1, &b, &p).ok());
  ASSERT_TRUE(pool_->Allocate(1 << 20, 1, &c, &p).ok());
  ASSERT_TRUE(pool_->Free(b.id).ok());
  ASSERT_TRUE(pool_->Free(a.id).ok());
  ASSERT_TRUE(pool_->Free(c.id).ok());
  PmPool::ObjectInfo big;
  EXPECT_TRUE(pool_->Allocate(3 << 20, 1, &big, &p).ok());
}

TEST_F(PmPoolTest, ListObjectsReturnsLive) {
  PmPool::ObjectInfo a, b;
  char* p;
  ASSERT_TRUE(pool_->Allocate(10, 1, &a, &p).ok());
  ASSERT_TRUE(pool_->Allocate(20, 2, &b, &p).ok());
  ASSERT_TRUE(pool_->Free(a.id).ok());
  auto objects = pool_->ListObjects();
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].id, b.id);
  EXPECT_EQ(objects[0].kind, 2u);
}

TEST_F(PmPoolTest, SurvivesReopen) {
  PmPool::ObjectInfo info;
  char* data;
  ASSERT_TRUE(pool_->Allocate(64, 9, &info, &data).ok());
  memcpy(data, "durable!", 8);
  pool_->Persist(data, 8);
  uint64_t id = info.id;
  pool_.reset();  // close

  ASSERT_TRUE(PmPool::Open(path_, opts_, &pool_).ok());
  auto objects = pool_->ListObjects();
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].id, id);
  EXPECT_EQ(objects[0].kind, 9u);
  char* recovered = pool_->DataFor(id);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(memcmp(recovered, "durable!", 8), 0);
}

TEST_F(PmPoolTest, ReopenKeepsIdsUnique) {
  PmPool::ObjectInfo a;
  char* p;
  ASSERT_TRUE(pool_->Allocate(10, 1, &a, &p).ok());
  pool_.reset();
  ASSERT_TRUE(PmPool::Open(path_, opts_, &pool_).ok());
  PmPool::ObjectInfo b;
  ASSERT_TRUE(pool_->Allocate(10, 1, &b, &p).ok());
  EXPECT_GT(b.id, a.id);
}

TEST_F(PmPoolTest, CapacityMismatchRejected) {
  pool_.reset();
  PmPoolOptions other = opts_;
  other.capacity = 8 << 20;
  std::unique_ptr<PmPool> p2;
  Status s = PmPool::Open(path_, other, &p2);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(PmPoolTest, StatsTrackTraffic) {
  pool_->InjectRead(1000, 3);
  pool_->InjectWrite(500);
  EXPECT_EQ(pool_->stats().bytes_read(), 1000u);
  EXPECT_EQ(pool_->stats().read_accesses(), 3u);
  EXPECT_EQ(pool_->stats().bytes_written(), 500u);
  EXPECT_GT(pool_->stats().persists(), 0u);  // directory persists count too
}

TEST_F(PmPoolTest, LatencyInjectionSleeps) {
  pool_->set_inject_latency(true);
  Clock* clock = SystemClock();
  uint64_t start = clock->NowNanos();
  pool_->InjectRead(0, 300);  // 300 accesses * 300 ns = 90 us
  EXPECT_GE(clock->NowNanos() - start, 80'000u);
  pool_->set_inject_latency(false);
}

TEST_F(PmPoolTest, UsedPlusFreeEqualsCapacity) {
  PmPool::ObjectInfo info;
  char* p;
  ASSERT_TRUE(pool_->Allocate(777, 1, &info, &p).ok());
  // Alignment rounds used space up; used + free always equals capacity.
  EXPECT_EQ(pool_->UsedBytes() + pool_->FreeBytes(), pool_->capacity());
}

TEST_F(PmPoolTest, ZeroSizeAllocationRejected) {
  PmPool::ObjectInfo info;
  char* p;
  EXPECT_TRUE(pool_->Allocate(0, 1, &info, &p).IsInvalidArgument());
}

}  // namespace
}  // namespace pmblade
