// Integration tests for pmblade::DB: CRUD, snapshots, iterators, flush,
// internal/major compaction, recovery, properties, and the paper's
// configuration matrix (PM table / array / SSD level-0 layouts).

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/db.h"
#include "core/db_impl.h"
#include "util/random.h"
#include "util/zipfian.h"

namespace pmblade {
namespace {

class DBTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_db_test";
    Options defaults;
    DestroyDB(defaults, dbname_);
    options_ = Options();
    options_.memtable_bytes = 64 << 10;  // small: frequent flushes
    options_.pm_pool_capacity = 64 << 20;
    options_.pm_latency.inject_latency = false;
    options_.cost.tau_m = 16 << 20;
    options_.cost.tau_t = 8 << 20;
    options_.cost.tau_w = 256 << 10;
    options_.partition_boundaries = {"g", "n", "t"};  // 4 partitions
  }

  void TearDown() override {
    db_.reset();
    DestroyDB(options_, dbname_);
  }

  void Open() {
    db_.reset();
    std::unique_ptr<DB> db;
    Status s = DB::Open(options_, dbname_, &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_ = std::move(db);
  }

  void Reopen() { Open(); }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERROR: " + s.ToString();
    return value;
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(DBTest, PutGetDelete) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "key1", "value1").ok());
  EXPECT_EQ(Get("key1"), "value1");
  ASSERT_TRUE(db_->Put(WriteOptions(), "key1", "value2").ok());
  EXPECT_EQ(Get("key1"), "value2");
  ASSERT_TRUE(db_->Delete(WriteOptions(), "key1").ok());
  EXPECT_EQ(Get("key1"), "NOT_FOUND");
  EXPECT_EQ(Get("never-written"), "NOT_FOUND");
}

TEST_F(DBTest, WriteBatchIsAtomicallyVisible) {
  Open();
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ(Get("a"), "NOT_FOUND");
  EXPECT_EQ(Get("b"), "2");
}

TEST_F(DBTest, GetAfterFlush) {
  Open();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                         "value" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(Get("key" + std::to_string(i)), "value" + std::to_string(i));
  }
  uint64_t unsorted = 0;
  ASSERT_TRUE(db_->GetProperty("pmblade.num-unsorted-tables", &unsorted));
  EXPECT_GT(unsorted, 0u);
}

TEST_F(DBTest, FlushRoutesAcrossPartitions) {
  Open();
  // Keys hitting all four partitions (boundaries g, n, t).
  ASSERT_TRUE(db_->Put(WriteOptions(), "apple", "1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "grape", "2").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "peach", "3").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "zebra", "4").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  uint64_t unsorted = 0;
  ASSERT_TRUE(db_->GetProperty("pmblade.num-unsorted-tables", &unsorted));
  EXPECT_EQ(unsorted, 4u);  // one table per touched partition
  EXPECT_EQ(Get("apple"), "1");
  EXPECT_EQ(Get("grape"), "2");
  EXPECT_EQ(Get("peach"), "3");
  EXPECT_EQ(Get("zebra"), "4");
}

TEST_F(DBTest, UpdatesAcrossFlushesReturnNewest) {
  Open();
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                           "round" + std::to_string(round))
                      .ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(Get("key" + std::to_string(i)), "round4");
  }
}

TEST_F(DBTest, DeleteShadowsFlushedValue) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "doomed", "v").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "doomed").ok());
  EXPECT_EQ(Get("doomed"), "NOT_FOUND");
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_EQ(Get("doomed"), "NOT_FOUND");
}

TEST_F(DBTest, SnapshotIsolation) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "old").ok());
  uint64_t snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "new").ok());

  ReadOptions at_snap;
  at_snap.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(at_snap, "k", &value).ok());
  EXPECT_EQ(value, "old");
  ASSERT_TRUE(db_->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ(value, "new");
  db_->ReleaseSnapshot(snap);
}

TEST_F(DBTest, SnapshotSurvivesFlushAndInternalCompaction) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "old").ok());
  uint64_t snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "new").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactLevel0().ok());

  ReadOptions at_snap;
  at_snap.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(at_snap, "k", &value).ok());
  EXPECT_EQ(value, "old");
  db_->ReleaseSnapshot(snap);
}

TEST_F(DBTest, IteratorFullScan) {
  Open();
  std::map<std::string, std::string> model;
  Random rnd(301);
  for (int i = 0; i < 500; ++i) {
    std::string key;
    rnd.RandomString(10, &key);
    std::string value = "v" + std::to_string(i);
    model[key] = value;
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    if (i % 100 == 99) ASSERT_TRUE(db_->FlushMemTable().ok());
  }
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  for (auto& [k, v] : model) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), k);
    EXPECT_EQ(it->value().ToString(), v);
    it->Next();
  }
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());
}

TEST_F(DBTest, IteratorSkipsDeletedAndOldVersions) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "b", "old").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "c", "3").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "b", "new").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "c").ok());

  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "a");
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "b");
  EXPECT_EQ(it->value().ToString(), "new");
  it->Next();
  EXPECT_FALSE(it->Valid());
}

TEST_F(DBTest, IteratorSeekAndRange) {
  Open();
  for (int i = 0; i < 100; i += 2) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, "v").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->Seek("k0031");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "k0032");
  int count = 0;
  for (; it->Valid() && it->key().ToString() < "k0050"; it->Next()) ++count;
  EXPECT_EQ(count, 9);  // k0032..k0048
}

TEST_F(DBTest, IteratorBackward) {
  Open();
  for (int i = 0; i < 20; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%02d", i);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  // Add some overwrites + a delete to exercise version skipping.
  ASSERT_TRUE(db_->Put(WriteOptions(), "k05", "fresh").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "k06").ok());

  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToLast();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "k19");
  int seen = 0;
  std::string prev = "zzz";
  for (; it->Valid(); it->Prev()) {
    EXPECT_LT(it->key().ToString(), prev);
    prev = it->key().ToString();
    if (prev == "k05") EXPECT_EQ(it->value().ToString(), "fresh");
    EXPECT_NE(prev, "k06");  // deleted
    ++seen;
  }
  EXPECT_EQ(seen, 19);  // 20 keys - 1 deleted
}

TEST_F(DBTest, InternalCompactionPreservesData) {
  Open();
  std::map<std::string, std::string> model;
  Random rnd(7);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 80; ++i) {
      std::string key = "key" + std::to_string(rnd.Uniform(200));
      std::string value = "r" + std::to_string(round) + "-" +
                          std::to_string(i);
      model[key] = value;
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
  }
  ASSERT_TRUE(db_->CompactLevel0().ok());
  uint64_t unsorted = 0;
  ASSERT_TRUE(db_->GetProperty("pmblade.num-unsorted-tables", &unsorted));
  EXPECT_EQ(unsorted, 0u);
  for (auto& [k, v] : model) {
    EXPECT_EQ(Get(k), v) << k;
  }
}

TEST_F(DBTest, MajorCompactionMovesDataToL1) {
  Open();
  std::map<std::string, std::string> model;
  for (int i = 0; i < 400; ++i) {
    std::string key = "key" + std::to_string(1000 + i);
    std::string value(200, 'a' + (i % 26));
    model[key] = value;
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
  }
  ASSERT_TRUE(db_->CompactToLevel1(/*respect_cost_model=*/false).ok());

  uint64_t l0 = 1, l1 = 0;
  ASSERT_TRUE(db_->GetProperty("pmblade.l0-bytes", &l0));
  ASSERT_TRUE(db_->GetProperty("pmblade.l1-bytes", &l1));
  EXPECT_EQ(l0, 0u);
  EXPECT_GT(l1, 0u);
  for (auto& [k, v] : model) {
    EXPECT_EQ(Get(k), v) << k;
  }
  // Scans still work across L1.
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  size_t count = 0;
  for (; it->Valid(); it->Next()) ++count;
  EXPECT_EQ(count, model.size());
}

TEST_F(DBTest, UpdatesAfterMajorCompactionWin) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "in-l1").ok());
  ASSERT_TRUE(db_->CompactToLevel1(false).ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "in-l0").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_EQ(Get("k"), "in-l0");
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "in-mem").ok());
  EXPECT_EQ(Get("k"), "in-mem");
}

TEST_F(DBTest, RecoveryFromWal) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "durable", "yes").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "volatile", "maybe").ok());
  Reopen();  // destructor closes cleanly; WAL replays unflushed writes
  EXPECT_EQ(Get("durable"), "yes");
  EXPECT_EQ(Get("volatile"), "maybe");
}

TEST_F(DBTest, RecoveryFromPmLevel0) {
  Open();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "pm" + std::to_string(i),
                         "v" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  Reopen();
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(Get("pm" + std::to_string(i)), "v" + std::to_string(i));
  }
}

TEST_F(DBTest, RecoveryFromL1AndSequenceContinues) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "deep", "l1-value").ok());
  ASSERT_TRUE(db_->CompactToLevel1(false).ok());
  Reopen();
  EXPECT_EQ(Get("deep"), "l1-value");
  // New writes after recovery must shadow recovered data.
  ASSERT_TRUE(db_->Put(WriteOptions(), "deep", "newer").ok());
  EXPECT_EQ(Get("deep"), "newer");
  Reopen();
  EXPECT_EQ(Get("deep"), "newer");
}

TEST_F(DBTest, RecoveryAfterMixedState) {
  Open();
  // L1 data, sorted L0, unsorted L0 and WAL data all at once.
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "l1").ok());
  ASSERT_TRUE(db_->CompactToLevel1(false).ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "b", "sorted").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactLevel0().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "c", "unsorted").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "d", "wal-only").ok());
  Reopen();
  EXPECT_EQ(Get("a"), "l1");
  EXPECT_EQ(Get("b"), "sorted");
  EXPECT_EQ(Get("c"), "unsorted");
  EXPECT_EQ(Get("d"), "wal-only");
}

TEST_F(DBTest, AutomaticFlushOnMemtableFull) {
  Open();
  std::string big_value(4096, 'x');
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "big" + std::to_string(i), big_value).ok());
  }
  EXPECT_GT(db_->statistics().flushes(), 0u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(Get("big" + std::to_string(i)), big_value);
  }
}

TEST_F(DBTest, StatisticsTrackReadSources) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "memkey", "1").ok());
  (void)Get("memkey");
  EXPECT_EQ(db_->statistics().reads(ReadSource::kMemtable), 1u);

  ASSERT_TRUE(db_->FlushMemTable().ok());
  (void)Get("memkey");
  EXPECT_EQ(db_->statistics().reads(ReadSource::kPmLevel0), 1u);

  ASSERT_TRUE(db_->CompactToLevel1(false).ok());
  (void)Get("memkey");
  EXPECT_EQ(db_->statistics().reads(ReadSource::kSsdLevel1), 1u);

  (void)Get("missing");
  EXPECT_EQ(db_->statistics().reads(ReadSource::kNotFound), 1u);
}

TEST_F(DBTest, PropertiesExist) {
  Open();
  uint64_t value = 0;
  EXPECT_TRUE(db_->GetProperty("pmblade.num-partitions", &value));
  EXPECT_EQ(value, 4u);
  EXPECT_TRUE(db_->GetProperty("pmblade.l0-bytes", &value));
  EXPECT_TRUE(db_->GetProperty("pmblade.l1-bytes", &value));
  EXPECT_TRUE(db_->GetProperty("pmblade.pm-used-bytes", &value));
  EXPECT_FALSE(db_->GetProperty("pmblade.nonsense", &value));
}

TEST_F(DBTest, EmptyDbIteratorAndGet) {
  Open();
  EXPECT_EQ(Get("anything"), "NOT_FOUND");
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->SeekToLast();
  EXPECT_FALSE(it->Valid());
}

// ---------------------------------------------------------------------------
// Configuration matrix: the paper's ablation configurations must all pass
// the same correctness battery.
// ---------------------------------------------------------------------------

struct ConfigCase {
  const char* name;
  L0Layout layout;
  bool internal_compaction;
  bool cost_model;
};

class DBConfigTest : public ::testing::TestWithParam<ConfigCase> {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_dbcfg_test";
    Options defaults;
    DestroyDB(defaults, dbname_);
    options_ = Options();
    options_.memtable_bytes = 32 << 10;
    options_.pm_pool_capacity = 64 << 20;
    options_.pm_latency.inject_latency = false;
    options_.l0_layout = GetParam().layout;
    options_.enable_internal_compaction = GetParam().internal_compaction;
    options_.enable_cost_model = GetParam().cost_model;
    options_.l0_table_trigger = 6;
    options_.cost.tau_w = 64 << 10;
    options_.partition_boundaries = {"key3", "key6"};
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
    db_ = std::move(db);
  }
  void TearDown() override {
    db_.reset();
    DestroyDB(options_, dbname_);
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_P(DBConfigTest, RandomWorkloadAgainstModel) {
  Random rnd(GetParam().layout == L0Layout::kSstable ? 11 : 13);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 3000; ++op) {
    int key_num = static_cast<int>(rnd.Uniform(300));
    std::string key = "key" + std::to_string(key_num);
    if (rnd.OneIn(10)) {
      model.erase(key);
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
    } else {
      std::string value;
      rnd.RandomBytes(rnd.Uniform(256), &value);
      model[key] = value;
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    }
    if (op % 500 == 499) {
      ASSERT_TRUE(db_->FlushMemTable().ok());
    }
    if (op % 1100 == 1099) {
      ASSERT_TRUE(db_->CompactToLevel1(true).ok());
    }
  }
  // Point reads match the model.
  for (int i = 0; i < 300; ++i) {
    std::string key = "key" + std::to_string(i);
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(s.IsNotFound()) << key;
    } else {
      ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
      EXPECT_EQ(value, it->second) << key;
    }
  }
  // Scan matches the model exactly.
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  for (auto& [k, v] : model) {
    ASSERT_TRUE(it->Valid()) << "missing " << k;
    EXPECT_EQ(it->key().ToString(), k);
    EXPECT_EQ(it->value().ToString(), v);
    it->Next();
  }
  EXPECT_FALSE(it->Valid());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DBConfigTest,
    ::testing::Values(
        ConfigCase{"PMBlade", L0Layout::kPmTable, true, true},
        ConfigCase{"PMB_PI_array", L0Layout::kArrayTable, true, true},
        ConfigCase{"PMB_P_no_internal", L0Layout::kArrayTable, false, false},
        ConfigCase{"PMBlade_SSD", L0Layout::kSstable, true, true},
        ConfigCase{"PMBlade_PM_conventional", L0Layout::kPmTable, false,
                   false}),
    [](const ::testing::TestParamInfo<ConfigCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace pmblade
