// Tests for the PM table family: the three-layer prefix-compressed PM table
// (the paper's core structure), the array-based table, and the two
// LZ-compressed baselines. Includes parameterized cross-structure property
// tests: every structure must agree with an in-memory model.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "memtable/internal_key.h"
#include "pm/pm_pool.h"
#include "pmtable/array_table.h"
#include "pmtable/l0_table.h"
#include "pmtable/pm_table.h"
#include "pmtable/pm_table_builder.h"
#include "pmtable/snappy_table.h"
#include "util/random.h"

namespace pmblade {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq,
                 ValueType type = kTypeValue) {
  std::string out;
  AppendInternalKey(&out, user_key, seq, type);
  return out;
}

class PmTableEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "pmblade_pmtable_test.pm";
    ::remove(path_.c_str());
    PmPoolOptions opts;
    opts.capacity = 64 << 20;
    opts.latency.inject_latency = false;
    ASSERT_TRUE(PmPool::Open(path_, opts, &pool_).ok());
  }
  void TearDown() override {
    pool_.reset();
    ::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<PmPool> pool_;
};

TEST_F(PmTableEnv, BuildEmptyTable) {
  PmTableBuilder builder(pool_.get(), PmTableOptions{});
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());
  EXPECT_EQ(table->num_entries(), 0u);
  std::unique_ptr<Iterator> it(table->NewIterator());
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
}

TEST_F(PmTableEnv, SingleEntry) {
  PmTableBuilder builder(pool_.get(), PmTableOptions{});
  builder.Add(IKey("orders|row1", 5), "hello");
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());
  EXPECT_EQ(table->num_entries(), 1u);
  EXPECT_EQ(table->num_metas(), 1u);

  std::unique_ptr<Iterator> it(table->NewIterator());
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "orders|row1");
  EXPECT_EQ(it->value().ToString(), "hello");
}

TEST_F(PmTableEnv, MetaLayerExtractsTableIds) {
  PmTableBuilder builder(pool_.get(), PmTableOptions{});
  // Three database tables; the meta layer should hold exactly 3 components.
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 50; ++i) {
      char key[64];
      snprintf(key, sizeof(key), "table%c|row%04d", 'A' + t, i);
      builder.Add(IKey(key, 10), "v");
    }
  }
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());
  EXPECT_EQ(table->num_metas(), 3u);
  EXPECT_EQ(table->num_entries(), 150u);
}

TEST_F(PmTableEnv, PrefixCompressionShrinksTable) {
  // Long shared prefixes: the PM table image should be much smaller than an
  // array table over the same data.
  PmTableBuilder pm_builder(pool_.get(), PmTableOptions{});
  ArrayTableBuilder array_builder(pool_.get());
  for (int i = 0; i < 2000; ++i) {
    char key[80];
    snprintf(key, sizeof(key),
             "orders_index_by_user|user%06d|order%06d", i / 4, i);
    std::string ikey = IKey(key, 10);
    pm_builder.Add(ikey, "v");
    array_builder.Add(ikey, "v");
  }
  std::shared_ptr<PmTable> pm_table;
  std::shared_ptr<ArrayTable> array_table;
  ASSERT_TRUE(pm_builder.Finish(&pm_table).ok());
  ASSERT_TRUE(array_builder.Finish(&array_table).ok());
  EXPECT_LT(pm_table->size_bytes(), array_table->size_bytes());
}

TEST_F(PmTableEnv, SeekAcrossMetaBoundaries) {
  PmTableBuilder builder(pool_.get(), PmTableOptions{});
  for (char t : {'A', 'C', 'E'}) {
    for (int i = 0; i < 40; ++i) {
      char key[32];
      snprintf(key, sizeof(key), "t%c|k%03d", t, i);
      builder.Add(IKey(key, 10), std::string(1, t));
    }
  }
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());

  std::unique_ptr<Iterator> it(table->NewIterator());
  // Seek to a meta that does not exist ("tB|...") lands on first tC key.
  it->Seek(IKey("tB|k999", kMaxSequenceNumber));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "tC|k000");
  // Seek past everything.
  it->Seek(IKey("tZ|k000", kMaxSequenceNumber));
  EXPECT_FALSE(it->Valid());
  // Seek before everything.
  it->Seek(IKey("t0|k000", kMaxSequenceNumber));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "tA|k000");
}

TEST_F(PmTableEnv, SeekWithinGroupsExactAndBetween) {
  PmTableBuilder builder(pool_.get(), PmTableOptions{.group_size = 8});
  for (int i = 0; i < 200; i += 2) {
    char key[32];
    snprintf(key, sizeof(key), "tbl|key%05d", i);
    builder.Add(IKey(key, 10), "v" + std::to_string(i));
  }
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());

  std::unique_ptr<Iterator> it(table->NewIterator());
  for (int i = 0; i < 200; i += 2) {
    char key[32];
    snprintf(key, sizeof(key), "tbl|key%05d", i);
    it->Seek(IKey(key, kMaxSequenceNumber));
    ASSERT_TRUE(it->Valid()) << key;
    EXPECT_EQ(ExtractUserKey(it->key()).ToString(), key);
    // Seek between keys finds the next one.
    char between[32];
    snprintf(between, sizeof(between), "tbl|key%05d", i + 1);
    it->Seek(IKey(between, kMaxSequenceNumber));
    if (i + 2 < 200) {
      char next[32];
      snprintf(next, sizeof(next), "tbl|key%05d", i + 2);
      ASSERT_TRUE(it->Valid());
      EXPECT_EQ(ExtractUserKey(it->key()).ToString(), next);
    } else {
      EXPECT_FALSE(it->Valid());
    }
  }
}

TEST_F(PmTableEnv, MultipleVersionsNewestFirst) {
  PmTableBuilder builder(pool_.get(), PmTableOptions{});
  // Internal order: same user key, descending seq.
  builder.Add(IKey("tbl|k", 30), "v30");
  builder.Add(IKey("tbl|k", 20), "v20");
  builder.Add(IKey("tbl|k", 10, kTypeDeletion), "");
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());

  std::unique_ptr<Iterator> it(table->NewIterator());
  it->Seek(IKey("tbl|k", 25));  // snapshot 25 sees seq 20
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(UnpackSequence(ExtractTag(it->key())), 20u);
  EXPECT_EQ(it->value().ToString(), "v20");
}

TEST_F(PmTableEnv, ReopenFromPool) {
  uint64_t id;
  {
    PmTableBuilder builder(pool_.get(), PmTableOptions{});
    for (int i = 0; i < 100; ++i) {
      char key[32];
      snprintf(key, sizeof(key), "tbl|key%04d", i);
      builder.Add(IKey(key, 5), "val" + std::to_string(i));
    }
    std::shared_ptr<PmTable> table;
    ASSERT_TRUE(builder.Finish(&table).ok());
    id = table->id();
  }
  // Reopen by id (simulates recovery).
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(PmTable::Open(pool_.get(), id, &table).ok());
  EXPECT_EQ(table->num_entries(), 100u);
  std::unique_ptr<Iterator> it(table->NewIterator());
  it->Seek(IKey("tbl|key0042", kMaxSequenceNumber));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->value().ToString(), "val42");
}

TEST_F(PmTableEnv, DestroyFreesPoolSpace) {
  uint64_t before = pool_->FreeBytes();
  PmTableBuilder builder(pool_.get(), PmTableOptions{});
  for (int i = 0; i < 1000; ++i) {
    builder.Add(IKey("t|" + std::to_string(1000 + i), 5),
                std::string(100, 'x'));
  }
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());
  EXPECT_LT(pool_->FreeBytes(), before);
  ASSERT_TRUE(table->Destroy().ok());
  // The free is deferred until the last reference drops, so concurrent
  // readers holding a ref never observe freed storage.
  EXPECT_LT(pool_->FreeBytes(), before);
  table.reset();
  EXPECT_EQ(pool_->FreeBytes(), before);
}

TEST_F(PmTableEnv, BoundariesCached) {
  PmTableBuilder builder(pool_.get(), PmTableOptions{});
  builder.Add(IKey("t|aaa", 5), "v");
  builder.Add(IKey("t|mmm", 5), "v");
  builder.Add(IKey("t|zzz", 5), "v");
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());
  EXPECT_EQ(ExtractUserKey(table->smallest()).ToString(), "t|aaa");
  EXPECT_EQ(ExtractUserKey(table->largest()).ToString(), "t|zzz");
}

TEST_F(PmTableEnv, KeysWithoutSeparator) {
  // Keys with no '|' have an empty meta component; the table must still
  // function.
  PmTableBuilder builder(pool_.get(), PmTableOptions{});
  for (int i = 0; i < 50; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "plain%04d", i);
    builder.Add(IKey(key, 5), "v");
  }
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());
  EXPECT_EQ(table->num_metas(), 1u);
  std::unique_ptr<Iterator> it(table->NewIterator());
  it->Seek(IKey("plain0025", kMaxSequenceNumber));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "plain0025");
}

TEST_F(PmTableEnv, PmReadTrafficIsAccounted) {
  PmTableBuilder builder(pool_.get(), PmTableOptions{});
  for (int i = 0; i < 500; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "t|key%05d", i);
    builder.Add(IKey(key, 5), std::string(64, 'v'));
  }
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());
  EXPECT_GT(pool_->stats().bytes_written(), 0u);

  pool_->stats().Reset();
  std::unique_ptr<Iterator> it(table->NewIterator());
  it->Seek(IKey("t|key00250", kMaxSequenceNumber));
  EXPECT_GT(pool_->stats().read_accesses(), 0u);
}

// ---------------------------------------------------------------------------
// Cross-structure property tests: each L0 structure vs an in-memory model.
// ---------------------------------------------------------------------------

enum class Structure { kPmTable, kPmTableGroup8, kArray, kSnappy, kSnappyGroup };

class L0StructureTest : public PmTableEnv,
                        public ::testing::WithParamInterface<Structure> {
 protected:
  // The param interface clashes with PmTableEnv's Test base; re-declare.
};

class L0PropertyTest : public ::testing::TestWithParam<Structure> {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "pmblade_l0prop_test.pm";
    ::remove(path_.c_str());
    PmPoolOptions opts;
    opts.capacity = 64 << 20;
    opts.latency.inject_latency = false;
    ASSERT_TRUE(PmPool::Open(path_, opts, &pool_).ok());
  }
  void TearDown() override {
    pool_.reset();
    ::remove(path_.c_str());
  }

  L0TableRef Build(const std::map<std::string, std::string>& model) {
    // model maps internal key -> value, already in internal order because
    // we use a single seq per user key.
    switch (GetParam()) {
      case Structure::kPmTable: {
        PmTableBuilder b(pool_.get(), PmTableOptions{.group_size = 16});
        for (auto& [k, v] : model) b.Add(k, v);
        std::shared_ptr<PmTable> t;
        EXPECT_TRUE(b.Finish(&t).ok());
        return t;
      }
      case Structure::kPmTableGroup8: {
        PmTableBuilder b(pool_.get(),
                         PmTableOptions{.group_size = 8, .prefix_width = 12});
        for (auto& [k, v] : model) b.Add(k, v);
        std::shared_ptr<PmTable> t;
        EXPECT_TRUE(b.Finish(&t).ok());
        return t;
      }
      case Structure::kArray: {
        ArrayTableBuilder b(pool_.get());
        for (auto& [k, v] : model) b.Add(k, v);
        std::shared_ptr<ArrayTable> t;
        EXPECT_TRUE(b.Finish(&t).ok());
        return t;
      }
      case Structure::kSnappy: {
        SnappyTableBuilder b(pool_.get(), 1);
        for (auto& [k, v] : model) b.Add(k, v);
        std::shared_ptr<SnappyTable> t;
        EXPECT_TRUE(b.Finish(&t).ok());
        return t;
      }
      case Structure::kSnappyGroup: {
        SnappyTableBuilder b(pool_.get(), 8);
        for (auto& [k, v] : model) b.Add(k, v);
        std::shared_ptr<SnappyTable> t;
        EXPECT_TRUE(b.Finish(&t).ok());
        return t;
      }
    }
    return nullptr;
  }

  static std::map<std::string, std::string> MakeModel(int n, uint64_t seed) {
    Random r(seed);
    std::map<std::string, std::string> model;
    const char* tables[] = {"orders|", "users|", "idx_user_orders|"};
    while (static_cast<int>(model.size()) < n) {
      std::string user_key = tables[r.Uniform(3)];
      std::string suffix;
      r.RandomString(4 + r.Uniform(20), &suffix);
      user_key += suffix;
      std::string value;
      r.RandomBytes(r.Uniform(120), &value);
      model[IKey(user_key, 7)] = value;
    }
    return model;
  }

  std::string path_;
  std::unique_ptr<PmPool> pool_;
};

TEST_P(L0PropertyTest, FullScanMatchesModel) {
  auto model = MakeModel(800, 42);
  L0TableRef table = Build(model);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->num_entries(), model.size());

  std::unique_ptr<Iterator> it(table->NewIterator());
  it->SeekToFirst();
  // Model keys sort by raw bytes; internal order for distinct user keys with
  // equal seq is the same as byte order of (user_key ++ tag).
  for (auto& [k, v] : model) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), k);
    EXPECT_EQ(it->value().ToString(), v);
    it->Next();
  }
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());
}

TEST_P(L0PropertyTest, SeekEveryKeyFindsIt) {
  auto model = MakeModel(400, 99);
  L0TableRef table = Build(model);
  std::unique_ptr<Iterator> it(table->NewIterator());
  for (auto& [k, v] : model) {
    std::string seek_key =
        IKey(ExtractUserKey(k).ToString(), kMaxSequenceNumber);
    it->Seek(seek_key);
    ASSERT_TRUE(it->Valid()) << ExtractUserKey(k).ToString();
    EXPECT_EQ(ExtractUserKey(it->key()).ToString(),
              ExtractUserKey(k).ToString());
    EXPECT_EQ(it->value().ToString(), v);
  }
}

TEST_P(L0PropertyTest, GenericGetAgainstModel) {
  auto model = MakeModel(300, 7);
  L0TableRef table = Build(model);
  InternalKeyComparator icmp(BytewiseComparator());
  for (auto& [k, v] : model) {
    LookupKey lkey(ExtractUserKey(k), kMaxSequenceNumber);
    std::string value;
    bool found = false;
    Status result;
    ASSERT_TRUE(
        L0TableGet(*table, icmp, lkey, &value, &found, &result).ok());
    ASSERT_TRUE(found) << ExtractUserKey(k).ToString();
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(value, v);
  }
  // Absent keys.
  LookupKey absent("zzzz|not-there", kMaxSequenceNumber);
  std::string value;
  bool found = true;
  Status result;
  ASSERT_TRUE(
      L0TableGet(*table, icmp, absent, &value, &found, &result).ok());
  EXPECT_FALSE(found);
}

TEST_P(L0PropertyTest, BackwardScanMatchesModel) {
  auto model = MakeModel(200, 13);
  L0TableRef table = Build(model);
  std::unique_ptr<Iterator> it(table->NewIterator());
  it->SeekToLast();
  for (auto rit = model.rbegin(); rit != model.rend(); ++rit) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), rit->first);
    it->Prev();
  }
  EXPECT_FALSE(it->Valid());
}

INSTANTIATE_TEST_SUITE_P(Structures, L0PropertyTest,
                         ::testing::Values(Structure::kPmTable,
                                           Structure::kPmTableGroup8,
                                           Structure::kArray,
                                           Structure::kSnappy,
                                           Structure::kSnappyGroup));

}  // namespace
}  // namespace pmblade
