// Differential correctness for the parallel compaction pipeline: the same
// randomized workload is driven through a workers=1 engine (the historical
// single-worker scheduler, no subcompactions) and a workers=4 engine (pool
// scheduler + key-range subcompactions), and after every compaction wave —
// and after a full reopen — the two must agree byte-for-byte: identical
// iterator views and identical per-key Get results, both also checked
// against an in-memory shadow oracle. Plus a deterministic unit test that
// a single victim really is split into multiple slices and stitched back
// into one sorted level-1 run.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/db.h"

namespace pmblade {
namespace {

uint64_t Prop(DB* db, const std::string& name) {
  uint64_t value = 0;
  EXPECT_TRUE(db->GetProperty(name, &value)) << name;
  return value;
}

Options MakeOptions(int workers) {
  Options options;
  options.memtable_bytes = 8 << 10;
  options.pm_pool_capacity = 64 << 20;
  options.pm_latency.inject_latency = false;
  options.enable_cost_model = false;  // deterministic victim selection
  options.l0_table_trigger = 3;
  options.internal_table_target_bytes = 8 << 10;  // multi-table sorted runs
  options.partition_boundaries = {"f", "m", "t"};  // 4 partitions
  options.compaction_workers = workers;
  options.max_subcompactions = workers;
  return options;
}

// Deterministic key spread across the partition boundaries.
std::string KeyForId(int id) {
  char prefix = static_cast<char>('a' + (id * 7) % 26);
  char buf[16];
  snprintf(buf, sizeof(buf), "%c%05d", prefix, id);
  return buf;
}

std::vector<std::pair<std::string, std::string>> Dump(DB* db) {
  std::vector<std::pair<std::string, std::string>> out;
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out.emplace_back(it->key().ToString(), it->value().ToString());
  }
  EXPECT_TRUE(it->status().ok());
  return out;
}

// The differential oracle: two live engines plus the shadow map that every
// applied operation also updates.
class CompactionParallelTest : public ::testing::Test {
 protected:
  static constexpr int kNumKeys = 1000;

  void SetUp() override {
    base_ = ::testing::TempDir() + "pmblade_compaction_parallel_";
    for (int w : {1, 4}) {
      DestroyDB(MakeOptions(w), Dir(w));
    }
    Open(1);
    Open(4);
  }

  void TearDown() override {
    db1_.reset();
    db4_.reset();
    DestroyDB(MakeOptions(1), Dir(1));
    DestroyDB(MakeOptions(4), Dir(4));
  }

  std::string Dir(int workers) {
    return base_ + "w" + std::to_string(workers);
  }

  void Open(int workers) {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(MakeOptions(workers), Dir(workers), &db).ok());
    (workers == 1 ? db1_ : db4_) = std::move(db);
  }

  void ApplyPut(const std::string& key, const std::string& value) {
    ASSERT_TRUE(db1_->Put(WriteOptions(), key, value).ok());
    ASSERT_TRUE(db4_->Put(WriteOptions(), key, value).ok());
    shadow_[key] = value;
  }

  void ApplyDelete(const std::string& key) {
    ASSERT_TRUE(db1_->Delete(WriteOptions(), key).ok());
    ASSERT_TRUE(db4_->Delete(WriteOptions(), key).ok());
    shadow_.erase(key);
  }

  // Full equivalence: iterator views byte-identical to each other AND to
  // the shadow, and per-key Get agreement (presence and bytes) over the
  // whole keyspace.
  void CheckEquivalence(const std::string& when) {
    std::vector<std::pair<std::string, std::string>> d1 = Dump(db1_.get());
    std::vector<std::pair<std::string, std::string>> d4 = Dump(db4_.get());
    std::vector<std::pair<std::string, std::string>> want(shadow_.begin(),
                                                          shadow_.end());
    ASSERT_EQ(d1.size(), want.size()) << when;
    ASSERT_EQ(d4.size(), want.size()) << when;
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(d1[i], want[i]) << when << ": workers=1 diverges at " << i;
      ASSERT_EQ(d4[i], want[i]) << when << ": workers=4 diverges at " << i;
    }
    for (int id = 0; id < kNumKeys; ++id) {
      std::string key = KeyForId(id);
      std::string v1, v4;
      Status s1 = db1_->Get(ReadOptions(), key, &v1);
      Status s4 = db4_->Get(ReadOptions(), key, &v4);
      auto it = shadow_.find(key);
      if (it != shadow_.end()) {
        ASSERT_TRUE(s1.ok()) << when << " " << key << ": " << s1.ToString();
        ASSERT_TRUE(s4.ok()) << when << " " << key << ": " << s4.ToString();
        ASSERT_EQ(v1, it->second) << when << " " << key;
        ASSERT_EQ(v4, it->second) << when << " " << key;
      } else {
        ASSERT_TRUE(s1.IsNotFound()) << when << " " << key;
        ASSERT_TRUE(s4.IsNotFound()) << when << " " << key;
      }
    }
  }

  std::string base_;
  std::unique_ptr<DB> db1_;
  std::unique_ptr<DB> db4_;
  std::map<std::string, std::string> shadow_;
};

TEST_F(CompactionParallelTest, DifferentialOracleAcrossCompactionWaves) {
  std::mt19937 rng(20260808);  // fixed seed: the sweep is reproducible
  std::uniform_int_distribution<int> key_dist(0, kNumKeys - 1);
  std::uniform_int_distribution<int> op_dist(0, 99);
  std::uniform_int_distribution<int> len_dist(20, 300);

  const int kWaves = 5;
  const int kOpsPerWave = 400;
  for (int wave = 0; wave < kWaves; ++wave) {
    for (int op = 0; op < kOpsPerWave; ++op) {
      int id = key_dist(rng);
      std::string key = KeyForId(id);
      if (op_dist(rng) < 15) {
        ApplyDelete(key);
      } else {
        // Value depends on (key, wave, op): overwrites change bytes, so a
        // dedup bug that keeps the wrong version changes the dump.
        std::string value = key + "#" + std::to_string(wave) + "." +
                            std::to_string(op) + "/" +
                            std::string(len_dist(rng), 'v');
        ApplyPut(key, value);
      }
    }

    // Compaction wave: drain the memtables, force level-0 sorting, then a
    // full major compaction through the (possibly parallel) pipeline.
    ASSERT_TRUE(db1_->FlushMemTable().ok());
    ASSERT_TRUE(db4_->FlushMemTable().ok());
    if (wave % 2 == 0) {
      ASSERT_TRUE(db1_->CompactLevel0().ok());
      ASSERT_TRUE(db4_->CompactLevel0().ok());
    }
    ASSERT_TRUE(db1_->CompactToLevel1(false).ok());
    ASSERT_TRUE(db4_->CompactToLevel1(false).ok());

    CheckEquivalence("after wave " + std::to_string(wave));
  }

  // Both engines must also agree after recovery.
  db1_.reset();
  db4_.reset();
  Open(1);
  Open(4);
  CheckEquivalence("after reopen");
}

// Deterministic split/stitch check: one victim whose sorted run spans
// several tables is compacted with max_subcompactions=4; the subcompaction
// counter must show the victim was really sliced (and the stitched level-1
// run must read back complete and sorted).
TEST(CompactionSubcompactionTest, SingleVictimIsSplitAndStitched) {
  Options options;
  options.memtable_bytes = 8 << 10;
  options.pm_pool_capacity = 64 << 20;
  options.pm_latency.inject_latency = false;
  options.enable_cost_model = false;
  options.l0_table_trigger = 1000;  // no background majors: only manual ones
  options.internal_table_target_bytes = 8 << 10;
  options.compaction_workers = 2;
  options.max_subcompactions = 4;
  std::string dbname =
      ::testing::TempDir() + "pmblade_subcompaction_split_test";
  DestroyDB(options, dbname);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  auto fill = [&](int begin, int end) {
    const std::string value(300, 'v');
    for (int i = begin; i < end; ++i) {
      char key[16];
      snprintf(key, sizeof(key), "k%05d", i);
      ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
    }
  };
  auto check_scan = [&](size_t expect) {
    std::vector<std::pair<std::string, std::string>> dump = Dump(db.get());
    ASSERT_EQ(dump.size(), expect);
    for (size_t i = 1; i < dump.size(); ++i) {
      ASSERT_LT(dump[i - 1].first, dump[i].first);
    }
  };

  // Round 1: the split boundaries come from the multi-table SORTED run
  // (level-1 is still empty).
  fill(0, 200);
  ASSERT_TRUE(db->FlushMemTable().ok());
  ASSERT_TRUE(db->CompactLevel0().ok());
  uint64_t base = Prop(db.get(), "pmblade.compaction-subcompactions");
  ASSERT_TRUE(db->CompactToLevel1(false).ok());
  uint64_t slices = Prop(db.get(), "pmblade.compaction-subcompactions") - base;
  EXPECT_GE(slices, 2u) << "single victim was not sliced";
  EXPECT_LE(slices, 4u) << "more slices than max_subcompactions";
  check_scan(200);

  // Round 2: level-1 now spans several stitched tables, so the next major
  // splits at LEVEL-1 table boundaries.
  fill(200, 400);
  ASSERT_TRUE(db->FlushMemTable().ok());
  ASSERT_TRUE(db->CompactLevel0().ok());
  base = Prop(db.get(), "pmblade.compaction-subcompactions");
  ASSERT_TRUE(db->CompactToLevel1(false).ok());
  slices = Prop(db.get(), "pmblade.compaction-subcompactions") - base;
  EXPECT_GE(slices, 2u);
  EXPECT_LE(slices, 4u);
  check_scan(400);

  // Stitched state survives recovery.
  db.reset();
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());
  check_scan(400);
  std::string got;
  ASSERT_TRUE(db->Get(ReadOptions(), "k00000", &got).ok());
  ASSERT_TRUE(db->Get(ReadOptions(), "k00399", &got).ok());

  db.reset();
  DestroyDB(options, dbname);
}

}  // namespace
}  // namespace pmblade
