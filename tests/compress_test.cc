// Tests for the LZ compressor and prefix helpers.

#include <gtest/gtest.h>

#include <string>

#include "compress/lz.h"
#include "compress/prefix.h"
#include "util/random.h"

namespace pmblade {
namespace {

std::string RoundTrip(const std::string& input) {
  std::string compressed;
  lz::Compress(input, &compressed);
  std::string output;
  Status s = lz::Decompress(compressed, &output);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return output;
}

TEST(LzTest, EmptyInput) { EXPECT_EQ(RoundTrip(""), ""); }

TEST(LzTest, ShortLiteral) { EXPECT_EQ(RoundTrip("ab"), "ab"); }

TEST(LzTest, RepetitiveInputCompresses) {
  std::string input;
  for (int i = 0; i < 500; ++i) input += "tableA|order12345|status=";
  std::string compressed;
  lz::Compress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 3);
  std::string out;
  ASSERT_TRUE(lz::Decompress(compressed, &out).ok());
  EXPECT_EQ(out, input);
}

TEST(LzTest, RunLengthOverlappingCopy) {
  // 'aaaa...' forces overlapping back-references.
  EXPECT_EQ(RoundTrip(std::string(10000, 'a')), std::string(10000, 'a'));
}

TEST(LzTest, RandomDataRoundTrips) {
  Random r(77);
  for (int len : {1, 10, 100, 1000, 65536}) {
    std::string input;
    r.RandomBytes(len, &input);
    EXPECT_EQ(RoundTrip(input), input) << "len=" << len;
  }
}

TEST(LzTest, MixedCompressibleAndRandom) {
  Random r(5);
  std::string input;
  for (int i = 0; i < 50; ++i) {
    input += "prefix-shared-by-all-records|";
    r.RandomBytes(40, &input);
  }
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzTest, DecompressRejectsGarbage) {
  std::string out;
  // Length header says 100 bytes, body is garbage tags.
  std::string bad;
  bad.push_back(100);
  bad += "\x03zz";
  Status s = lz::Decompress(bad, &out);
  EXPECT_FALSE(s.ok());
}

TEST(LzTest, DecompressRejectsTruncatedLiteral) {
  std::string input(100, 'q');
  std::string compressed;
  lz::Compress(input, &compressed);
  std::string out;
  Status s = lz::Decompress(
      Slice(compressed.data(), compressed.size() / 2), &out);
  EXPECT_FALSE(s.ok());
}

TEST(LzTest, MaxCompressedLengthIsUpperBound) {
  Random r(123);
  for (int len : {0, 1, 100, 10000}) {
    std::string input;
    r.RandomBytes(len, &input);
    std::string compressed;
    lz::Compress(input, &compressed);
    EXPECT_LE(compressed.size(), lz::MaxCompressedLength(len));
  }
}

class LzSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(LzSweepTest, RoundTripAtSize) {
  Random r(GetParam());
  std::string input;
  // Semi-compressible payload: repeated dictionary words + random bytes.
  static const char* kWords[] = {"order", "status", "paid", "delivery",
                                 "tableID", "meituan"};
  for (int i = 0; i < GetParam(); ++i) {
    input += kWords[r.Uniform(6)];
    if (r.OneIn(3)) r.RandomBytes(8, &input);
  }
  EXPECT_EQ(RoundTrip(input), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzSweepTest,
                         ::testing::Values(1, 7, 64, 513, 4096, 20000));

TEST(PrefixTest, CommonPrefixLength) {
  EXPECT_EQ(prefix::CommonPrefixLength("abcde", "abxyz"), 2u);
  EXPECT_EQ(prefix::CommonPrefixLength("", "abc"), 0u);
  EXPECT_EQ(prefix::CommonPrefixLength("same", "same"), 4u);
  EXPECT_EQ(prefix::CommonPrefixLength("ab", "abcd"), 2u);
}

TEST(PrefixTest, CommonPrefixLengthAll) {
  std::vector<Slice> keys = {"table|a1", "table|a2", "table|b9"};
  EXPECT_EQ(prefix::CommonPrefixLengthAll(keys), 6u);
  EXPECT_EQ(prefix::CommonPrefixLengthAll({}), 0u);
  EXPECT_EQ(prefix::CommonPrefixLengthAll({Slice("solo")}), 4u);
}

TEST(PrefixTest, TableIdComponent) {
  EXPECT_EQ(prefix::TableIdComponent("orders|row1").ToString(), "orders|");
  EXPECT_EQ(prefix::TableIdComponent("noseparator").ToString(), "");
  EXPECT_EQ(prefix::TableIdComponent("|leading").ToString(), "|");
}

TEST(PrefixTest, FixedWidthSlotPadsAndTruncates) {
  char slot[8];
  prefix::FixedWidthSlot("abc", 8, slot);
  EXPECT_EQ(memcmp(slot, "abc\0\0\0\0\0", 8), 0);
  prefix::FixedWidthSlot("abcdefghij", 8, slot);
  EXPECT_EQ(memcmp(slot, "abcdefgh", 8), 0);
}

TEST(PrefixTest, CompareToSlotOrdersLikeTruncatedKeys) {
  char slot[8];
  prefix::FixedWidthSlot("mmmm", 8, slot);
  EXPECT_LT(prefix::CompareToSlot("aaaa", slot, 8), 0);
  EXPECT_GT(prefix::CompareToSlot("zzzz", slot, 8), 0);
  EXPECT_EQ(prefix::CompareToSlot("mmmm", slot, 8), 0);
  // Longer key equal on the slot width compares equal (truncation).
  EXPECT_EQ(prefix::CompareToSlot("mmmm\0\0\0\0extra", slot, 8), 0);
}

}  // namespace
}  // namespace pmblade
