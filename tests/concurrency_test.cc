// Concurrency tests: readers and scanners racing writers (with background
// flushes and compactions), plus the group-commit write pipeline itself —
// multi-writer stress, torn-group detection, fsync amortization and
// backpressure. Verifies the snapshot-consistency contract: every read
// observes some prefix-consistent state, iterators stay valid across
// version changes, and nothing crashes or corrupts.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/db.h"
#include "memtable/write_batch.h"
#include "util/random.h"

namespace pmblade {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_concurrency_test";
    options_ = Options();
    DestroyDB(options_, dbname_);
    options_.memtable_bytes = 32 << 10;
    options_.pm_pool_capacity = 64 << 20;
    options_.pm_latency.inject_latency = false;
    options_.cost.tau_m = 1 << 20;
    options_.cost.tau_t = 512 << 10;
    options_.partition_boundaries = {"key3", "key6"};
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
    db_ = std::move(db);
  }
  void TearDown() override {
    db_.reset();
    DestroyDB(options_, dbname_);
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(ConcurrencyTest, ReadersRaceWriterWithCompactions) {
  // The writer monotonically increases each key's version number; readers
  // must only ever observe monotonic versions (per their own reads) and
  // well-formed values.
  constexpr int kKeys = 200;
  constexpr int kWrites = 6000;
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};

  auto reader_fn = [&](uint64_t seed) {
    Random rnd(seed);
    std::vector<uint64_t> last_seen(kKeys, 0);
    while (!stop.load(std::memory_order_acquire)) {
      int k = static_cast<int>(rnd.Uniform(kKeys));
      std::string value;
      Status s = db_->Get(ReadOptions(), "key" + std::to_string(k), &value);
      if (s.IsNotFound()) continue;
      if (!s.ok()) {
        ++reader_errors;
        continue;
      }
      uint64_t version = strtoull(value.c_str(), nullptr, 10);
      if (version < last_seen[k]) {
        ++reader_errors;  // went back in time!
      }
      last_seen[k] = version;
    }
  };

  auto scanner_fn = [&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
      std::string prev;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        std::string key = it->key().ToString();
        if (!prev.empty() && key <= prev) {
          ++reader_errors;  // out of order
        }
        prev = std::move(key);
      }
      if (!it->status().ok()) ++reader_errors;
    }
  };

  std::thread reader1(reader_fn, 11);
  std::thread reader2(reader_fn, 22);
  std::thread scanner(scanner_fn);

  Random rnd(33);
  for (int i = 1; i <= kWrites; ++i) {
    int k = static_cast<int>(rnd.Uniform(kKeys));
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(k),
                         std::to_string(i) + "-" + std::string(64, 'x'))
                    .ok());
    if (i % 2000 == 0) {
      ASSERT_TRUE(db_->CompactToLevel1(true).ok());
    }
  }
  stop.store(true, std::memory_order_release);
  reader1.join();
  reader2.join();
  scanner.join();
  EXPECT_EQ(reader_errors.load(), 0);
}

TEST_F(ConcurrencyTest, SnapshotReadersSeeFrozenState) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "key" + std::to_string(i), "frozen").ok());
  }
  uint64_t snap = db_->GetSnapshot();

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread reader([&] {
    Random rnd(7);
    ReadOptions at_snap;
    at_snap.snapshot = snap;
    while (!stop.load()) {
      std::string value;
      int k = static_cast<int>(rnd.Uniform(100));
      Status s = db_->Get(at_snap, "key" + std::to_string(k), &value);
      if (!s.ok() || value != "frozen") ++errors;
    }
  });

  // Overwrite everything (with flushes + internal compactions racing the
  // snapshot reader).
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          db_->Put(WriteOptions(), "key" + std::to_string(i), "thawed").ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
    ASSERT_TRUE(db_->CompactLevel0().ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(errors.load(), 0);
  db_->ReleaseSnapshot(snap);

  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "key50", &value).ok());
  EXPECT_EQ(value, "thawed");
}

TEST_F(ConcurrencyTest, MultiWriterStress) {
  // N writers on disjoint key ranges, mixed sync/async. Every write is a
  // single-entry batch, so after the dust settles last_sequence must equal
  // the total write count exactly: sequences were assigned monotonically
  // with no loss and no duplication.
  constexpr int kWriters = 8;
  constexpr int kWritesPerThread = 500;
  std::atomic<int> write_errors{0};

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kWritesPerThread; ++i) {
        WriteOptions wopts;
        wopts.sync = (i % 7 == 0);  // mixed durability within groups
        std::string key =
            "w" + std::to_string(t) + "-k" + std::to_string(i);
        if (!db_->Put(wopts, key, "v" + std::to_string(i)).ok()) {
          ++write_errors;
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  ASSERT_EQ(write_errors.load(), 0);

  // Sequence accounting: no lost or duplicated writes.
  uint64_t snap = db_->GetSnapshot();
  EXPECT_EQ(snap, static_cast<uint64_t>(kWriters * kWritesPerThread));
  db_->ReleaseSnapshot(snap);
  uint64_t group_writes = 0;
  ASSERT_TRUE(db_->GetProperty("pmblade.write-group-writes", &group_writes));
  EXPECT_EQ(group_writes, static_cast<uint64_t>(kWriters * kWritesPerThread));

  // Full readback: every write landed with its final value.
  for (int t = 0; t < kWriters; ++t) {
    for (int i = 0; i < kWritesPerThread; ++i) {
      std::string key = "w" + std::to_string(t) + "-k" + std::to_string(i);
      std::string value;
      ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
      EXPECT_EQ(value, "v" + std::to_string(i)) << key;
    }
  }
}

TEST_F(ConcurrencyTest, NoTornGroups) {
  // Each writer repeatedly commits a two-key batch carrying the same
  // version. Readers pin a snapshot and read both keys at it: because
  // last_sequence_ is published only after the whole group is in the
  // memtable, the two versions must always match.
  constexpr int kWriters = 2;
  constexpr int kRounds = 1500;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      std::string ka = "torn-a-" + std::to_string(t);
      std::string kb = "torn-b-" + std::to_string(t);
      for (int i = 1; i <= kRounds; ++i) {
        WriteBatch batch;
        batch.Put(ka, std::to_string(i));
        batch.Put(kb, std::to_string(i));
        ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Random rnd(100 + r);
      while (!stop.load(std::memory_order_acquire)) {
        int t = static_cast<int>(rnd.Uniform(kWriters));
        uint64_t snap = db_->GetSnapshot();
        ReadOptions at_snap;
        at_snap.snapshot = snap;
        std::string va, vb;
        Status sa = db_->Get(at_snap, "torn-a-" + std::to_string(t), &va);
        Status sb = db_->Get(at_snap, "torn-b-" + std::to_string(t), &vb);
        if (sa.ok() != sb.ok() || (sa.ok() && va != vb)) {
          ++torn;  // observed half a commit group
        }
        db_->ReleaseSnapshot(snap);
      }
    });
  }

  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_EQ(torn.load(), 0);
}

TEST_F(ConcurrencyTest, GroupCommitAmortizesSyncs) {
  // 8 writers all demanding durability: the leader syncs once per group, so
  // the engine must issue strictly fewer fsyncs than writes.
  constexpr int kWriters = 8;
  constexpr int kWritesPerThread = 300;

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      WriteOptions sync_opts;
      sync_opts.sync = true;
      for (int i = 0; i < kWritesPerThread; ++i) {
        std::string key =
            "sync" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(db_->Put(sync_opts, key, "payload").ok());
      }
    });
  }
  for (auto& w : writers) w.join();

  constexpr uint64_t kTotal = kWriters * kWritesPerThread;
  uint64_t syncs = 0, groups = 0, group_writes = 0;
  ASSERT_TRUE(db_->GetProperty("pmblade.wal-syncs", &syncs));
  ASSERT_TRUE(db_->GetProperty("pmblade.write-groups", &groups));
  ASSERT_TRUE(db_->GetProperty("pmblade.write-group-writes", &group_writes));
  EXPECT_EQ(group_writes, kTotal);
  EXPECT_GT(syncs, 0u);
  EXPECT_LT(syncs, kTotal);  // at least one multi-member group synced once
  EXPECT_EQ(syncs, groups);  // every group was a sync group here
}

TEST(WriteBackpressureTest, SlowFlushTriggersSlowdownsAndStalls) {
  // A tiny memtable plus heavily slowed PM writes makes the background
  // flush the bottleneck: the writer must hit the soft slowdown and then
  // the hard stall, and every acknowledged write must still be readable.
  std::string dbname = ::testing::TempDir() + "pmblade_backpressure_test";
  Options options;
  DestroyDB(options, dbname);
  options.memtable_bytes = 8 << 10;
  options.pm_pool_capacity = 64 << 20;
  options.pm_latency.inject_latency = true;
  options.pm_latency.write_nanos_per_byte = 200.0;  // ~5 MB/s PM "device"
  options.pm_latency.persist_nanos = 100000;
  options.write_slowdown_nanos = 100000;  // keep the test fast
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  constexpr int kWrites = 400;
  const std::string value(256, 'p');
  for (int i = 0; i < kWrites; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), "bp" + std::to_string(i), value).ok());
  }

  uint64_t slowdowns = 0, stalls = 0, flushes = 0;
  ASSERT_TRUE(db->GetProperty("pmblade.write-slowdowns", &slowdowns));
  ASSERT_TRUE(db->GetProperty("pmblade.write-stalls", &stalls));
  ASSERT_TRUE(db->GetProperty("pmblade.bg-flushes", &flushes));
  EXPECT_GT(flushes, 0u);
  EXPECT_GT(slowdowns + stalls, 0u);

  for (int i = 0; i < kWrites; ++i) {
    std::string got;
    ASSERT_TRUE(db->Get(ReadOptions(), "bp" + std::to_string(i), &got).ok())
        << i;
    EXPECT_EQ(got, value) << i;
  }
  db.reset();
  DestroyDB(options, dbname);
}

TEST(WriteBackpressureTest, ReadersProgressDuringForegroundFlush) {
  // Regression test for the read-side lock diet: a FlushMemTable in flight
  // (slowed via injected PM latency) must not block concurrent Gets.
  std::string dbname = ::testing::TempDir() + "pmblade_flush_readers_test";
  Options options;
  DestroyDB(options, dbname);
  options.pm_pool_capacity = 64 << 20;
  options.pm_latency.inject_latency = true;
  options.pm_latency.write_nanos_per_byte = 500.0;
  options.pm_latency.persist_nanos = 200000;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  constexpr int kKeys = 300;
  const std::string value(512, 'r');
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put(WriteOptions(), "rk" + std::to_string(i), value).ok());
  }

  std::atomic<bool> flush_done{false};
  std::thread flusher([&] {
    ASSERT_TRUE(db->FlushMemTable().ok());
    flush_done.store(true, std::memory_order_release);
  });

  // Count reads that COMPLETED strictly while the flush was still running.
  int reads_during_flush = 0;
  Random rnd(55);
  while (!flush_done.load(std::memory_order_acquire)) {
    std::string got;
    int k = static_cast<int>(rnd.Uniform(kKeys));
    ASSERT_TRUE(db->Get(ReadOptions(), "rk" + std::to_string(k), &got).ok());
    if (!flush_done.load(std::memory_order_acquire)) ++reads_during_flush;
  }
  flusher.join();
  EXPECT_GT(reads_during_flush, 0);

  db.reset();
  DestroyDB(options, dbname);
}

TEST_F(ConcurrencyTest, IteratorSeesOneAtomicVersionUnderChurn) {
  // A writer thread updates EVERY key to the same version in one atomic
  // WriteBatch, over and over (with flushes and compactions triggered by the
  // tiny fixture memtable). Any iterator must therefore observe a single
  // uniform version across the whole keyspace: mixed versions in one scan
  // would mean the iterator's snapshot cut through a batch or drifted across
  // a version change.
  constexpr int kKeys = 60;
  constexpr int kRounds = 150;
  auto key_at = [](int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    return std::string(buf);
  };

  {
    WriteBatch seed;
    for (int i = 0; i < kKeys; ++i) seed.Put(key_at(i), "1");
    ASSERT_TRUE(db_->Write(WriteOptions(), &seed).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> scan_errors{0};
  std::thread writer([&] {
    for (int v = 2; v <= kRounds && !stop.load(std::memory_order_acquire);
         ++v) {
      WriteBatch batch;
      const std::string version = std::to_string(v);
      for (int i = 0; i < kKeys; ++i) batch.Put(key_at(i), version);
      ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
    }
    stop.store(true, std::memory_order_release);
  });

  while (!stop.load(std::memory_order_acquire)) {
    std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
    std::string uniform;
    int seen = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      const std::string value = it->value().ToString();
      if (seen == 0) {
        uniform = value;
      } else if (value != uniform) {
        ++scan_errors;  // torn batch or drifting snapshot
      }
      ++seen;
    }
    if (!it->status().ok() || seen != kKeys) ++scan_errors;
  }
  writer.join();
  EXPECT_EQ(scan_errors.load(), 0);
}

TEST_F(ConcurrencyTest, ChunkedScanAtSnapshotIgnoresLaterWrites) {
  // SCAN-style paging: every page opens a FRESH iterator pinned to the same
  // snapshot and Seeks to the cursor (exactly what the RESP server's SCAN
  // does). While pages are being fetched, writers overwrite the existing
  // keys and wedge brand-new keys between them; the union of the pages must
  // still be exactly the snapshot's keyspace and values.
  constexpr int kKeys = 100;
  auto key_at = [](int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    return std::string(buf);
  };
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), key_at(i), "frozen").ok());
  }
  const uint64_t snap = db_->GetSnapshot();

  std::atomic<bool> stop{false};
  std::atomic<int> rounds{0};
  std::thread writer([&] {
    int round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ++round;
      rounds.store(round, std::memory_order_release);
      for (int i = 0; i < kKeys; ++i) {
        ASSERT_TRUE(db_->Put(WriteOptions(), key_at(i), "thawed").ok());
        // A key that sorts BETWEEN existing keys, born after the snapshot.
        ASSERT_TRUE(db_->Put(WriteOptions(),
                             key_at(i) + "-intruder" + std::to_string(round),
                             "new")
                        .ok());
      }
      if (round % 3 == 0) ASSERT_TRUE(db_->FlushMemTable().ok());
    }
  });

  // Keep paging until the writer has demonstrably churned the keyspace
  // underneath us at least a few times (flushes included).
  ReadOptions at_snap;
  at_snap.snapshot = snap;
  for (int repeat = 0;
       repeat < 20 || rounds.load(std::memory_order_acquire) < 4;
       ++repeat) {
    ASSERT_LT(repeat, 10000) << "writer thread made no progress";
    std::vector<std::string> keys;
    std::string cursor;  // empty = start from the beginning
    while (true) {
      std::unique_ptr<Iterator> it(db_->NewIterator(at_snap));
      if (cursor.empty()) {
        it->SeekToFirst();
      } else {
        it->Seek(cursor);
      }
      int in_page = 0;
      for (; it->Valid() && in_page < 9; it->Next(), ++in_page) {
        keys.push_back(it->key().ToString());
        ASSERT_EQ(it->value().ToString(), "frozen") << keys.back();
      }
      ASSERT_TRUE(it->status().ok());
      if (!it->Valid() && in_page < 9) break;
      cursor = keys.back() + std::string(1, '\0');  // exclusive successor
    }
    ASSERT_EQ(keys.size(), static_cast<size_t>(kKeys));
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_EQ(keys[i], key_at(i));  // ordered, no dup, no intruder
    }
  }

  stop.store(true, std::memory_order_release);
  writer.join();
  db_->ReleaseSnapshot(snap);
}

TEST_F(ConcurrencyTest, IteratorSurvivesFlushAndCompactionMidScan) {
  // An open iterator must keep returning its pinned version even when the
  // tables it is reading get flushed, compacted and superseded mid-scan.
  constexpr int kKeys = 80;
  auto key_at = [](int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%03d", i);
    return std::string(buf);
  };
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), key_at(i), "before").ok());
  }

  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  int seen = 0;
  for (; it->Valid() && seen < kKeys / 2; it->Next(), ++seen) {
    ASSERT_EQ(it->value().ToString(), "before");
  }

  // Rip the ground out from under the iterator.
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), key_at(i), "after").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactLevel0().ok());
  ASSERT_TRUE(db_->CompactToLevel1(false).ok());

  for (; it->Valid(); it->Next(), ++seen) {
    ASSERT_EQ(it->value().ToString(), "before") << it->key().ToString();
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(seen, kKeys);
  it.reset();

  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), key_at(0), &value).ok());
  EXPECT_EQ(value, "after");
}

}  // namespace
}  // namespace pmblade
