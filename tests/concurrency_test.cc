// Concurrency tests: readers and scanners racing a writer (with its inline
// flushes and compactions). Verifies the snapshot-consistency contract —
// every read observes some prefix-consistent state, iterators stay valid
// across version changes, and nothing crashes or corrupts.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/db.h"
#include "util/random.h"

namespace pmblade {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_concurrency_test";
    options_ = Options();
    DestroyDB(options_, dbname_);
    options_.memtable_bytes = 32 << 10;
    options_.pm_pool_capacity = 64 << 20;
    options_.pm_latency.inject_latency = false;
    options_.cost.tau_m = 1 << 20;
    options_.cost.tau_t = 512 << 10;
    options_.partition_boundaries = {"key3", "key6"};
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
    db_ = std::move(db);
  }
  void TearDown() override {
    db_.reset();
    DestroyDB(options_, dbname_);
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(ConcurrencyTest, ReadersRaceWriterWithCompactions) {
  // The writer monotonically increases each key's version number; readers
  // must only ever observe monotonic versions (per their own reads) and
  // well-formed values.
  constexpr int kKeys = 200;
  constexpr int kWrites = 6000;
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};

  auto reader_fn = [&](uint64_t seed) {
    Random rnd(seed);
    std::vector<uint64_t> last_seen(kKeys, 0);
    while (!stop.load(std::memory_order_acquire)) {
      int k = static_cast<int>(rnd.Uniform(kKeys));
      std::string value;
      Status s = db_->Get(ReadOptions(), "key" + std::to_string(k), &value);
      if (s.IsNotFound()) continue;
      if (!s.ok()) {
        ++reader_errors;
        continue;
      }
      uint64_t version = strtoull(value.c_str(), nullptr, 10);
      if (version < last_seen[k]) {
        ++reader_errors;  // went back in time!
      }
      last_seen[k] = version;
    }
  };

  auto scanner_fn = [&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
      std::string prev;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        std::string key = it->key().ToString();
        if (!prev.empty() && key <= prev) {
          ++reader_errors;  // out of order
        }
        prev = std::move(key);
      }
      if (!it->status().ok()) ++reader_errors;
    }
  };

  std::thread reader1(reader_fn, 11);
  std::thread reader2(reader_fn, 22);
  std::thread scanner(scanner_fn);

  Random rnd(33);
  for (int i = 1; i <= kWrites; ++i) {
    int k = static_cast<int>(rnd.Uniform(kKeys));
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(k),
                         std::to_string(i) + "-" + std::string(64, 'x'))
                    .ok());
    if (i % 2000 == 0) {
      ASSERT_TRUE(db_->CompactToLevel1(true).ok());
    }
  }
  stop.store(true, std::memory_order_release);
  reader1.join();
  reader2.join();
  scanner.join();
  EXPECT_EQ(reader_errors.load(), 0);
}

TEST_F(ConcurrencyTest, SnapshotReadersSeeFrozenState) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "key" + std::to_string(i), "frozen").ok());
  }
  uint64_t snap = db_->GetSnapshot();

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread reader([&] {
    Random rnd(7);
    ReadOptions at_snap;
    at_snap.snapshot = snap;
    while (!stop.load()) {
      std::string value;
      int k = static_cast<int>(rnd.Uniform(100));
      Status s = db_->Get(at_snap, "key" + std::to_string(k), &value);
      if (!s.ok() || value != "frozen") ++errors;
    }
  });

  // Overwrite everything (with flushes + internal compactions racing the
  // snapshot reader).
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          db_->Put(WriteOptions(), "key" + std::to_string(i), "thawed").ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
    ASSERT_TRUE(db_->CompactLevel0().ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(errors.load(), 0);
  db_->ReleaseSnapshot(snap);

  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "key50", &value).ok());
  EXPECT_EQ(value, "thawed");
}

}  // namespace
}  // namespace pmblade
