// Tests for cross-shard two-phase commit (src/core/sharded_db.cc,
// src/core/db_impl.cc txn path, src/memtable/txn_record.h):
//   * the txn record codec round-trips and rejects garbage,
//   * the fast-path exemption, PROVEN BY WAL INSPECTION: a num_shards=1
//     engine and single-shard batches on a sharded engine write zero txn
//     records — their WALs are byte-for-byte plain batch reps,
//   * cross-shard batches write prepare + commit records on every
//     participant and survive clean reopens intact,
//   * recovery resolution: all prepares durable and no commit marker =>
//     COMMIT; a missing participant prepare => ROLL BACK — reopen is
//     all-or-nothing either way,
//   * the legacy escape hatch (atomic_cross_shard_batches = false) writes
//     no txn records,
//   * the pmblade.txn.* metrics move.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/db.h"
#include "core/db_impl.h"
#include "core/sharded_db.h"
#include "env/env.h"
#include "memtable/txn_record.h"
#include "memtable/wal.h"
#include "memtable/write_batch.h"

namespace pmblade {
namespace {

constexpr uint32_t kShards = 4;

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(TxnRecordTest, PrepareRoundTrip) {
  WriteBatch batch;
  batch.Put("alpha", "1");
  batch.Delete("beta");
  std::string encoded;
  EncodePrepareRecord(42, {0, 2, 3}, batch.rep(), &encoded);
  ASSERT_TRUE(IsTxnRecord(encoded));

  TxnRecord record;
  ASSERT_TRUE(DecodeTxnRecord(encoded, &record).ok());
  EXPECT_EQ(record.type, TxnRecordType::kPrepare);
  EXPECT_EQ(record.txn_id, 42u);
  EXPECT_EQ(record.participants, (std::vector<uint32_t>{0, 2, 3}));
  EXPECT_EQ(record.payload.ToString(), batch.rep());
}

TEST(TxnRecordTest, CommitAndRollbackRoundTrip) {
  std::string commit, rollback;
  EncodeCommitRecord(7, 123456, &commit);
  EncodeRollbackRecord(7, &rollback);
  ASSERT_TRUE(IsTxnRecord(commit));
  ASSERT_TRUE(IsTxnRecord(rollback));

  TxnRecord record;
  ASSERT_TRUE(DecodeTxnRecord(commit, &record).ok());
  EXPECT_EQ(record.type, TxnRecordType::kCommit);
  EXPECT_EQ(record.txn_id, 7u);
  EXPECT_EQ(record.base_seq, 123456u);
  ASSERT_TRUE(DecodeTxnRecord(rollback, &record).ok());
  EXPECT_EQ(record.type, TxnRecordType::kRollback);
  EXPECT_EQ(record.txn_id, 7u);
}

TEST(TxnRecordTest, BatchRepsAreNeverMistakenForTxnRecords) {
  // A rep's first 8 bytes are its base sequence, bounded well below the
  // all-ones magic — the discriminator the WAL replay relies on.
  WriteBatch batch;
  batch.Put("k", "v");
  EXPECT_FALSE(IsTxnRecord(batch.rep()));

  TxnRecord record;
  EXPECT_FALSE(DecodeTxnRecord(batch.rep(), &record).ok());
  std::string truncated(8, '\xff');
  EXPECT_FALSE(DecodeTxnRecord(truncated, &record).ok());
  std::string bad_tag(8, '\xff');
  bad_tag.push_back('\x09');
  EXPECT_FALSE(DecodeTxnRecord(bad_tag, &record).ok());
}

// ---------------------------------------------------------------------------
// WAL inspection fixture
// ---------------------------------------------------------------------------

class Txn2pcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_txn_2pc_test";
    options_ = Options();
    options_.num_shards = kShards;
    options_.pm_pool_capacity = 8 << 20;
    options_.pm_latency.inject_latency = false;
    DestroyDB(options_, dbname_);
  }

  void TearDown() override {
    db_.reset();
    DestroyDB(options_, dbname_);
  }

  void Open() {
    db_.reset();
    std::unique_ptr<DB> db;
    Status s = DB::Open(options_, dbname_, &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_ = std::move(db);
  }

  ShardedDB* sharded() { return static_cast<ShardedDB*>(db_.get()); }

  static std::string KeyForShard(uint32_t shard, int salt) {
    for (int i = 0;; ++i) {
      std::string key = "t" + std::to_string(salt) + "-" + std::to_string(i);
      if (ShardedDB::ShardOfKey(key, kShards) == shard) return key;
    }
  }

  /// Every logical record in every "wal-*.log" under `dir`.
  std::vector<std::string> WalRecords(const std::string& dir) {
    Env* env = PosixEnv();
    std::vector<std::string> children;
    EXPECT_TRUE(env->GetChildren(dir, &children).ok()) << dir;
    std::vector<std::string> records;
    for (const std::string& child : children) {
      if (child.size() <= 8 || child.compare(0, 4, "wal-") != 0 ||
          child.compare(child.size() - 4, 4, ".log") != 0) {
        continue;
      }
      std::unique_ptr<SequentialFile> file;
      if (!env->NewSequentialFile(dir + "/" + child, &file).ok()) {
        ADD_FAILURE() << "cannot open " << child;
        continue;
      }
      wal::Reader reader(file.get(), nullptr);
      Slice record;
      std::string scratch;
      while (reader.ReadRecord(&record, &scratch)) {
        records.push_back(record.ToString());
      }
    }
    return records;
  }

  struct TxnRecordCensus {
    int prepares = 0;
    int commits = 0;
    int rollbacks = 0;
    int plain_batches = 0;
    int total() const { return prepares + commits + rollbacks; }
  };

  TxnRecordCensus CountShardWalRecords(uint32_t shard) {
    TxnRecordCensus census;
    const std::string dir = ShardedDB::ShardDirName(dbname_, shard);
    for (const std::string& record : WalRecords(dir)) {
      if (!IsTxnRecord(record)) {
        ++census.plain_batches;
        continue;
      }
      TxnRecord txn;
      EXPECT_TRUE(DecodeTxnRecord(record, &txn).ok());
      switch (txn.type) {
        case TxnRecordType::kPrepare: ++census.prepares; break;
        case TxnRecordType::kCommit: ++census.commits; break;
        case TxnRecordType::kRollback: ++census.rollbacks; break;
      }
    }
    return census;
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
};

// ---------------------------------------------------------------------------
// Fast-path exemption, verified by reading the WAL bytes back
// ---------------------------------------------------------------------------

TEST_F(Txn2pcTest, SingleShardEngineWritesNoTxnRecords) {
  options_.num_shards = 1;
  Open();
  for (int i = 0; i < 32; ++i) {
    WriteBatch batch;
    batch.Put("a" + std::to_string(i), "1");
    batch.Put("b" + std::to_string(i), "2");
    batch.Delete("a" + std::to_string(i / 2));
    ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  }
  db_.reset();  // settle the WAL before reading it

  int plain = 0;
  for (const std::string& record : WalRecords(dbname_)) {
    EXPECT_FALSE(IsTxnRecord(record))
        << "num_shards=1 must never pay for 2PC records";
    ++plain;
  }
  EXPECT_GT(plain, 0) << "expected the batches in the WAL";
}

TEST_F(Txn2pcTest, SingleParticipantBatchesSkip2pcOnShardedEngine) {
  Open();
  // Every batch lands wholly on one shard: the facade must route it down
  // the plain group-commit path, leaving zero txn records anywhere.
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    for (int i = 0; i < 8; ++i) {
      WriteBatch batch;
      batch.Put(KeyForShard(shard, 100 + i), "v");
      batch.Put(KeyForShard(shard, 200 + i), "w");
      ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
    }
  }
  db_.reset();

  for (uint32_t shard = 0; shard < kShards; ++shard) {
    TxnRecordCensus census = CountShardWalRecords(shard);
    EXPECT_EQ(census.total(), 0)
        << "shard " << shard << " paid 2PC for single-shard batches";
    EXPECT_GT(census.plain_batches, 0) << "shard " << shard;
  }
}

TEST_F(Txn2pcTest, CrossShardBatchWritesPrepareAndCommitEverywhere) {
  Open();
  WriteBatch batch;
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    batch.Put(KeyForShard(shard, 7), "x" + std::to_string(shard));
  }
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  db_.reset();

  for (uint32_t shard = 0; shard < kShards; ++shard) {
    TxnRecordCensus census = CountShardWalRecords(shard);
    EXPECT_GE(census.prepares, 1) << "shard " << shard;
    EXPECT_GE(census.commits, 1) << "shard " << shard;
    EXPECT_EQ(census.rollbacks, 0) << "shard " << shard;
  }

  // And the data is all there after reopen (recovery replays the fences).
  Open();
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    std::string value;
    ASSERT_TRUE(
        db_->Get(ReadOptions(), KeyForShard(shard, 7), &value).ok());
    EXPECT_EQ(value, "x" + std::to_string(shard));
  }
}

TEST_F(Txn2pcTest, LegacyModeWritesNoTxnRecords) {
  options_.atomic_cross_shard_batches = false;
  Open();
  WriteBatch batch;
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    batch.Put(KeyForShard(shard, 9), "y");
  }
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  db_.reset();

  for (uint32_t shard = 0; shard < kShards; ++shard) {
    EXPECT_EQ(CountShardWalRecords(shard).total(), 0) << "shard " << shard;
  }
}

// ---------------------------------------------------------------------------
// Clean-reopen correctness and recovery resolution
// ---------------------------------------------------------------------------

TEST_F(Txn2pcTest, CrossShardBatchesSurviveReopenIntact) {
  Open();
  std::map<std::string, std::string> model;
  for (int round = 0; round < 30; ++round) {
    WriteBatch batch;
    for (uint32_t shard = 0; shard < kShards; ++shard) {
      const std::string key = KeyForShard(shard, 1000 + round);
      const std::string value = "r" + std::to_string(round);
      batch.Put(key, value);
      model[key] = value;
    }
    ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
    if (round == 15) ASSERT_TRUE(db_->FlushMemTable().ok());
  }
  Open();  // clean reopen, including post-flush WAL carry-forward state
  for (const auto& kv : model) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), kv.first, &value).ok()) << kv.first;
    EXPECT_EQ(value, kv.second);
  }
}

TEST_F(Txn2pcTest, AllPreparesDurableResolvesToCommitOnReopen) {
  Open();
  // Simulate a crash between phase 1 and phase 2: every participant holds
  // a durable prepare, none holds a commit marker. Resolution must COMMIT.
  const uint64_t txn_id = 999;
  const std::vector<uint32_t> participants{0, 1};
  for (uint32_t shard : participants) {
    WriteBatch sub;
    sub.Put(KeyForShard(shard, 5000), "resolved");
    ASSERT_TRUE(sharded()
                    ->shard(shard)
                    ->PrepareTxn(WriteOptions(), txn_id, participants, &sub)
                    .ok());
  }
  db_.reset();  // no commit phase — the "crash"

  Open();
  for (uint32_t shard : participants) {
    std::string value;
    ASSERT_TRUE(
        db_->Get(ReadOptions(), KeyForShard(shard, 5000), &value).ok())
        << "shard " << shard << " lost its resolved-commit half";
    EXPECT_EQ(value, "resolved");
  }
  uint64_t resolved = 0;
  ASSERT_TRUE(
      db_->GetProperty("pmblade.txn-resolved-commit", &resolved));
  EXPECT_GE(resolved, 1u);
}

TEST_F(Txn2pcTest, MissingPrepareResolvesToRollbackOnReopen) {
  Open();
  // Crash mid-phase-1: shard 0 prepared, shard 1 (a named participant)
  // never did. Resolution must ROLL BACK — neither half may surface.
  const uint64_t txn_id = 1000;
  const std::vector<uint32_t> participants{0, 1};
  WriteBatch sub;
  sub.Put(KeyForShard(0, 6000), "half");
  ASSERT_TRUE(sharded()
                  ->shard(0)
                  ->PrepareTxn(WriteOptions(), txn_id, participants, &sub)
                  .ok());
  db_.reset();

  Open();
  std::string value;
  EXPECT_TRUE(
      db_->Get(ReadOptions(), KeyForShard(0, 6000), &value).IsNotFound())
      << "half-prepared txn leaked into the keyspace";
  uint64_t rolled_back = 0;
  ASSERT_TRUE(
      db_->GetProperty("pmblade.txn-resolved-rollback", &rolled_back));
  EXPECT_GE(rolled_back, 1u);

  // The facade swept the retained state: a fresh reopen sees nothing
  // in doubt and new txn ids stay above the replayed maximum.
  db_.reset();
  Open();
  uint64_t in_doubt = 0;
  ASSERT_TRUE(db_->GetProperty("pmblade.txn-in-doubt", &in_doubt));
  EXPECT_EQ(in_doubt, 0u);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST_F(Txn2pcTest, TxnMetricsMove) {
  Open();
  uint64_t prepared = 0, committed = 0;
  ASSERT_TRUE(db_->GetProperty("pmblade.txn-prepared", &prepared));
  ASSERT_TRUE(db_->GetProperty("pmblade.txn-committed", &committed));
  EXPECT_EQ(prepared, 0u);
  EXPECT_EQ(committed, 0u);

  WriteBatch batch;
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    batch.Put(KeyForShard(shard, 77), "m");
  }
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());

  ASSERT_TRUE(db_->GetProperty("pmblade.txn-prepared", &prepared));
  ASSERT_TRUE(db_->GetProperty("pmblade.txn-committed", &committed));
  EXPECT_EQ(prepared, kShards);   // one prepare per participant
  EXPECT_EQ(committed, kShards);  // one commit marker per participant

  // Single-shard writes leave the txn counters alone.
  ASSERT_TRUE(db_->Put(WriteOptions(), "solo", "s").ok());
  uint64_t prepared_after = 0;
  ASSERT_TRUE(db_->GetProperty("pmblade.txn-prepared", &prepared_after));
  EXPECT_EQ(prepared_after, prepared);
}

}  // namespace
}  // namespace pmblade
