// Additional WAL and edge-case coverage: appending to an existing log
// (writer resumed mid-block), records exactly at block boundaries, and
// PM-table geometry extremes.

#include <gtest/gtest.h>

#include "env/env.h"
#include "memtable/wal.h"
#include "pm/pm_pool.h"
#include "pmtable/pm_table_builder.h"

namespace pmblade {
namespace {

class WalExtraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fname_ = ::testing::TempDir() + "pmblade_wal_extra.log";
    PosixEnv()->RemoveFile(fname_);
  }
  void TearDown() override { PosixEnv()->RemoveFile(fname_); }

  std::vector<std::string> Replay() {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(PosixEnv()->NewSequentialFile(fname_, &file).ok());
    wal::Reader reader(file.get(), nullptr);
    std::vector<std::string> records;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    return records;
  }

  std::string fname_;
};

TEST_F(WalExtraTest, RecordExactlyFillingBlockTail) {
  // First record sized so the second lands exactly at the block boundary
  // padding path (leftover < kHeaderSize).
  size_t first = wal::kBlockSize - wal::kHeaderSize * 2 - 3;
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(PosixEnv()->NewWritableFile(fname_, &file).ok());
    wal::Writer writer(file.get());
    ASSERT_TRUE(writer.AddRecord(std::string(first, 'a')).ok());
    ASSERT_TRUE(writer.AddRecord("tail-record").ok());
    ASSERT_TRUE(file->Close().ok());
  }
  auto records = Replay();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].size(), first);
  EXPECT_EQ(records[1], "tail-record");
}

TEST_F(WalExtraTest, ZeroAndOneBytePayloads) {
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(PosixEnv()->NewWritableFile(fname_, &file).ok());
    wal::Writer writer(file.get());
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(writer.AddRecord(i % 2 == 0 ? "" : "x").ok());
    }
    ASSERT_TRUE(file->Close().ok());
  }
  auto records = Replay();
  ASSERT_EQ(records.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(records[i], i % 2 == 0 ? "" : "x");
  }
}

TEST(PmTableGeometryTest, ExtremeGroupAndPrefixSettings) {
  std::string path = ::testing::TempDir() + "pmblade_geometry.pm";
  ::remove(path.c_str());
  PmPoolOptions popts;
  popts.capacity = 32 << 20;
  popts.latency.inject_latency = false;
  std::unique_ptr<PmPool> pool;
  ASSERT_TRUE(PmPool::Open(path, popts, &pool).ok());

  struct Geometry {
    uint32_t group_size;
    uint32_t prefix_width;
  };
  for (Geometry g : {Geometry{1, 1}, Geometry{2, 64}, Geometry{128, 4},
                     Geometry{16, 0} /* width 0 clamps to default */}) {
    PmTableOptions opts;
    opts.group_size = g.group_size;
    opts.prefix_width = g.prefix_width;
    PmTableBuilder builder(pool.get(), opts);
    for (int i = 0; i < 300; ++i) {
      char key[32];
      snprintf(key, sizeof(key), "tbl|key%05d", i);
      std::string ikey;
      AppendInternalKey(&ikey, key, 9, kTypeValue);
      builder.Add(ikey, "value" + std::to_string(i));
    }
    std::shared_ptr<PmTable> table;
    ASSERT_TRUE(builder.Finish(&table).ok())
        << "g=" << g.group_size << " w=" << g.prefix_width;
    EXPECT_EQ(table->num_entries(), 300u);

    std::unique_ptr<Iterator> it(table->NewIterator());
    // Every key findable; full scan intact.
    for (int i = 0; i < 300; i += 37) {
      char key[32];
      snprintf(key, sizeof(key), "tbl|key%05d", i);
      std::string seek;
      AppendInternalKey(&seek, key, kMaxSequenceNumber, kValueTypeForSeek);
      it->Seek(seek);
      ASSERT_TRUE(it->Valid()) << key;
      EXPECT_EQ(ExtractUserKey(it->key()).ToString(), key);
    }
    int count = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) ++count;
    EXPECT_EQ(count, 300);
    table->Destroy();
  }
  pool.reset();
  ::remove(path.c_str());
}

TEST(PmTableGeometryTest, LargeValuesAndEmptyValues) {
  std::string path = ::testing::TempDir() + "pmblade_values.pm";
  ::remove(path.c_str());
  PmPoolOptions popts;
  popts.capacity = 64 << 20;
  popts.latency.inject_latency = false;
  std::unique_ptr<PmPool> pool;
  ASSERT_TRUE(PmPool::Open(path, popts, &pool).ok());

  PmTableBuilder builder(pool.get(), PmTableOptions{});
  std::string huge(256 * 1024, 'H');
  std::string ikey;
  AppendInternalKey(&ikey, "t|empty", 5, kTypeValue);
  builder.Add(ikey, "");
  ikey.clear();
  AppendInternalKey(&ikey, "t|huge", 5, kTypeValue);
  builder.Add(ikey, huge);
  std::shared_ptr<PmTable> table;
  ASSERT_TRUE(builder.Finish(&table).ok());

  std::unique_ptr<Iterator> it(table->NewIterator());
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->value().size(), 0u);
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->value().size(), huge.size());
  EXPECT_EQ(it->value().ToString(), huge);
  pool.reset();
  ::remove(path.c_str());
}

}  // namespace
}  // namespace pmblade
