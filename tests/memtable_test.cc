// Tests for internal keys, the skiplist memtable, WriteBatch and the WAL.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "env/env.h"
#include "memtable/internal_key.h"
#include "memtable/skiplist_memtable.h"
#include "memtable/wal.h"
#include "memtable/write_batch.h"
#include "util/random.h"

namespace pmblade {
namespace {

TEST(InternalKeyTest, PackUnpackRoundTrip) {
  uint64_t packed = PackSequenceAndType(12345, kTypeValue);
  EXPECT_EQ(UnpackSequence(packed), 12345u);
  EXPECT_EQ(UnpackType(packed), kTypeValue);
  packed = PackSequenceAndType(kMaxSequenceNumber, kTypeDeletion);
  EXPECT_EQ(UnpackSequence(packed), kMaxSequenceNumber);
  EXPECT_EQ(UnpackType(packed), kTypeDeletion);
}

TEST(InternalKeyTest, AppendParseRoundTrip) {
  std::string encoded;
  AppendInternalKey(&encoded, "user-key", 77, kTypeValue);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(encoded, &parsed));
  EXPECT_EQ(parsed.user_key.ToString(), "user-key");
  EXPECT_EQ(parsed.sequence, 77u);
  EXPECT_EQ(parsed.type, kTypeValue);
}

TEST(InternalKeyTest, ParseRejectsShortKeys) {
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey(Slice("short"), &parsed));
}

TEST(InternalKeyComparatorTest, OrdersByUserKeyThenSeqDescending) {
  InternalKeyComparator icmp(BytewiseComparator());
  std::string a, b, c;
  AppendInternalKey(&a, "apple", 5, kTypeValue);
  AppendInternalKey(&b, "apple", 9, kTypeValue);
  AppendInternalKey(&c, "banana", 1, kTypeValue);
  EXPECT_GT(icmp.Compare(a, b), 0);  // lower seq sorts after
  EXPECT_LT(icmp.Compare(b, a), 0);
  EXPECT_LT(icmp.Compare(a, c), 0);  // user key dominates
}

TEST(InternalKeyComparatorTest, SeparatorStillOrdersCorrectly) {
  InternalKeyComparator icmp(BytewiseComparator());
  std::string start, limit;
  AppendInternalKey(&start, "abcdefgh", 3, kTypeValue);
  AppendInternalKey(&limit, "abcz", 8, kTypeValue);
  std::string sep = start;
  icmp.FindShortestSeparator(&sep, limit);
  EXPECT_GE(icmp.Compare(Slice(sep), Slice(start)), 0);
  EXPECT_LT(icmp.Compare(Slice(sep), Slice(limit)), 0);
}

TEST(LookupKeyTest, FormsSeekableKey) {
  LookupKey lkey("target", 100);
  EXPECT_EQ(lkey.user_key().ToString(), "target");
  EXPECT_EQ(lkey.internal_key().size(), 6u + 8u);
  EXPECT_EQ(UnpackSequence(ExtractTag(lkey.internal_key())), 100u);
}

class MemTableTest : public ::testing::Test {
 protected:
  MemTableTest() : icmp_(BytewiseComparator()), mem_(new MemTable(icmp_)) {
    mem_->Ref();
  }
  ~MemTableTest() override { mem_->Unref(); }

  InternalKeyComparator icmp_;
  MemTable* mem_;
};

TEST_F(MemTableTest, PutThenGet) {
  mem_->Add(1, kTypeValue, "k1", "v1");
  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get(LookupKey("k1", 10), &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(value, "v1");
}

TEST_F(MemTableTest, SnapshotIsolation) {
  mem_->Add(5, kTypeValue, "k", "old");
  mem_->Add(9, kTypeValue, "k", "new");
  std::string value;
  Status s;
  // Snapshot at seq 7 sees the old value.
  ASSERT_TRUE(mem_->Get(LookupKey("k", 7), &value, &s));
  EXPECT_EQ(value, "old");
  // Snapshot at 9+ sees the new one.
  ASSERT_TRUE(mem_->Get(LookupKey("k", 100), &value, &s));
  EXPECT_EQ(value, "new");
  // Snapshot before either sees nothing.
  EXPECT_FALSE(mem_->Get(LookupKey("k", 3), &value, &s));
}

TEST_F(MemTableTest, TombstoneYieldsNotFound) {
  mem_->Add(1, kTypeValue, "gone", "v");
  mem_->Add(2, kTypeDeletion, "gone", "");
  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get(LookupKey("gone", 10), &value, &s));
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(MemTableTest, MissingKeyNotAnswered) {
  mem_->Add(1, kTypeValue, "present", "v");
  std::string value;
  Status s;
  EXPECT_FALSE(mem_->Get(LookupKey("absent", 10), &value, &s));
}

TEST_F(MemTableTest, IteratorSortedOrder) {
  Random r(3);
  std::set<std::string> keys;
  for (int i = 0; i < 500; ++i) {
    std::string k;
    r.RandomString(12, &k);
    keys.insert(k);
    mem_->Add(i + 1, kTypeValue, k, "v");
  }
  std::unique_ptr<Iterator> it(mem_->NewIterator());
  it->SeekToFirst();
  auto expect = keys.begin();
  while (it->Valid()) {
    ASSERT_NE(expect, keys.end());
    EXPECT_EQ(ExtractUserKey(it->key()).ToString(), *expect);
    ++expect;
    it->Next();
  }
  EXPECT_EQ(expect, keys.end());
}

TEST_F(MemTableTest, IteratorSeekAndPrev) {
  for (int i = 0; i < 100; i += 2) {
    char buf[8];
    snprintf(buf, sizeof(buf), "k%03d", i);
    mem_->Add(i + 1, kTypeValue, buf, "v");
  }
  std::unique_ptr<Iterator> it(mem_->NewIterator());
  LookupKey lk("k031", kMaxSequenceNumber);
  it->Seek(lk.internal_key());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k032");
  it->Prev();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k030");
  it->SeekToLast();
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k098");
}

TEST_F(MemTableTest, MemoryUsageGrows) {
  size_t before = mem_->ApproximateMemoryUsage();
  for (int i = 0; i < 1000; ++i) {
    mem_->Add(i + 1, kTypeValue, "key" + std::to_string(i),
              std::string(100, 'v'));
  }
  EXPECT_GT(mem_->ApproximateMemoryUsage(), before + 100'000);
  EXPECT_EQ(mem_->num_entries(), 1000u);
}

TEST(WriteBatchTest, CountAndIterate) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Delete("b");
  batch.Put("c", "3");
  EXPECT_EQ(batch.Count(), 3u);

  struct Collector : WriteBatch::Handler {
    std::string log;
    void Put(const Slice& k, const Slice& v) override {
      log += "P(" + k.ToString() + "," + v.ToString() + ")";
    }
    void Delete(const Slice& k) override {
      log += "D(" + k.ToString() + ")";
    }
  } collector;
  ASSERT_TRUE(batch.Iterate(&collector).ok());
  EXPECT_EQ(collector.log, "P(a,1)D(b)P(c,3)");
}

TEST(WriteBatchTest, SequencePlumbing) {
  WriteBatch batch;
  batch.SetSequence(900);
  EXPECT_EQ(batch.Sequence(), 900u);
  batch.Put("x", "y");

  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  ASSERT_TRUE(batch.InsertInto(mem).ok());
  std::string value;
  Status s;
  ASSERT_TRUE(mem->Get(LookupKey("x", 900), &value, &s));
  EXPECT_EQ(value, "y");
  EXPECT_FALSE(mem->Get(LookupKey("x", 899), &value, &s));
  mem->Unref();
}

TEST(WriteBatchTest, RoundTripThroughContents) {
  WriteBatch batch;
  batch.SetSequence(5);
  batch.Put("k", "v");
  batch.Delete("d");
  WriteBatch copy;
  copy.SetContentsFrom(batch.rep());
  EXPECT_EQ(copy.Count(), 2u);
  EXPECT_EQ(copy.Sequence(), 5u);
}

TEST(WriteBatchTest, CorruptContentsDetected) {
  WriteBatch batch;
  batch.SetContentsFrom(std::string(12, '\0') + "\x07garbage");
  struct Nop : WriteBatch::Handler {
    void Put(const Slice&, const Slice&) override {}
    void Delete(const Slice&) override {}
  } nop;
  EXPECT_TRUE(batch.Iterate(&nop).IsCorruption());
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = PosixEnv();
    fname_ = ::testing::TempDir() + "pmblade_wal_test.log";
    env_->RemoveFile(fname_);
  }
  void TearDown() override { env_->RemoveFile(fname_); }

  std::vector<std::string> Replay() {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile(fname_, &file).ok());
    wal::Reader reader(file.get(), nullptr);
    std::vector<std::string> records;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    return records;
  }

  Env* env_;
  std::string fname_;
};

TEST_F(WalTest, WriteReadSmallRecords) {
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname_, &file).ok());
    wal::Writer writer(file.get());
    ASSERT_TRUE(writer.AddRecord("one").ok());
    ASSERT_TRUE(writer.AddRecord("two").ok());
    ASSERT_TRUE(writer.AddRecord("").ok());
    ASSERT_TRUE(file->Close().ok());
  }
  auto records = Replay();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "one");
  EXPECT_EQ(records[1], "two");
  EXPECT_EQ(records[2], "");
}

TEST_F(WalTest, RecordSpanningBlocks) {
  std::string big(100'000, 'B');  // spans multiple 32 KiB blocks
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname_, &file).ok());
    wal::Writer writer(file.get());
    ASSERT_TRUE(writer.AddRecord("head").ok());
    ASSERT_TRUE(writer.AddRecord(big).ok());
    ASSERT_TRUE(writer.AddRecord("tail").ok());
    ASSERT_TRUE(file->Close().ok());
  }
  auto records = Replay();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1], big);
  EXPECT_EQ(records[2], "tail");
}

TEST_F(WalTest, ManyRecordsRoundTrip) {
  Random r(21);
  std::vector<std::string> originals;
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname_, &file).ok());
    wal::Writer writer(file.get());
    for (int i = 0; i < 500; ++i) {
      std::string rec;
      r.RandomBytes(r.Uniform(2000), &rec);
      originals.push_back(rec);
      ASSERT_TRUE(writer.AddRecord(rec).ok());
    }
    ASSERT_TRUE(file->Close().ok());
  }
  auto records = Replay();
  ASSERT_EQ(records.size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    ASSERT_EQ(records[i], originals[i]) << "record " << i;
  }
}

TEST_F(WalTest, TruncatedTailIsDropped) {
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname_, &file).ok());
    wal::Writer writer(file.get());
    ASSERT_TRUE(writer.AddRecord("complete").ok());
    ASSERT_TRUE(writer.AddRecord(std::string(500, 'x')).ok());
    ASSERT_TRUE(file->Close().ok());
  }
  // Truncate mid-way through the second record.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, fname_, &contents).ok());
  contents.resize(contents.size() - 400);
  ASSERT_TRUE(WriteStringToFile(env_, contents, fname_).ok());

  auto records = Replay();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "complete");
}

TEST_F(WalTest, CorruptRecordSkippedWithReport) {
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname_, &file).ok());
    wal::Writer writer(file.get());
    ASSERT_TRUE(writer.AddRecord("first").ok());
    ASSERT_TRUE(writer.AddRecord("second").ok());
    ASSERT_TRUE(file->Close().ok());
  }
  // Flip a byte inside the first record's payload.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, fname_, &contents).ok());
  contents[wal::kHeaderSize] ^= 0x1;
  ASSERT_TRUE(WriteStringToFile(env_, contents, fname_).ok());

  struct CountingReporter : wal::Reader::Reporter {
    int corruptions = 0;
    void Corruption(size_t, const Status&) override { ++corruptions; }
  } reporter;

  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(env_->NewSequentialFile(fname_, &file).ok());
  wal::Reader reader(file.get(), &reporter);
  Slice record;
  std::string scratch;
  std::vector<std::string> records;
  while (reader.ReadRecord(&record, &scratch)) {
    records.push_back(record.ToString());
  }
  EXPECT_GT(reporter.corruptions, 0);
  // CRC failure drops the whole 32 KiB block, taking "second" with it; what
  // matters is that no corrupt data is returned.
  for (const auto& r : records) {
    EXPECT_TRUE(r == "first" || r == "second");
  }
}

}  // namespace
}  // namespace pmblade
