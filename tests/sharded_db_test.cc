// Tests for ShardedDB (src/core/sharded_db.h): hash routing, per-shard
// WriteBatch split semantics, the merged cross-shard iterator behind SCAN
// (ordering, cursor resume, MATCH), snapshot handles, crash/reopen WAL
// recovery of every shard, the SHARDS marker pin, property/metric
// aggregation, per-shard -BUSY admission (a stalled shard must not shed
// idle-shard traffic) and a multi-writer stress run for TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <chrono>
#include <thread>
#include <vector>

#include "core/db.h"
#include "core/sharded_db.h"
#include "env/env.h"
#include "net/commands.h"
#include "net/resp.h"
#include "util/random.h"

namespace pmblade {
namespace {

using net::RespValue;

constexpr uint32_t kShards = 4;

class ShardedDBTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_sharded_db_test";
    options_ = Options();
    options_.num_shards = kShards;
    options_.memtable_bytes = 64 << 10;
    options_.pm_pool_capacity = 8 << 20;  // per shard
    options_.pm_latency.inject_latency = false;
    DestroyDB(options_, dbname_);
  }

  void TearDown() override {
    db_.reset();
    DestroyDB(options_, dbname_);
  }

  void Open() {
    db_.reset();
    std::unique_ptr<DB> db;
    Status s = DB::Open(options_, dbname_, &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_ = std::move(db);
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERROR: " + s.ToString();
    return value;
  }

  ShardedDB* sharded() { return static_cast<ShardedDB*>(db_.get()); }

  /// A key that routes to `shard` under kShards (linear probe, so tests can
  /// aim writes at a specific shard deterministically).
  static std::string KeyForShard(uint32_t shard, int salt) {
    for (int i = 0;; ++i) {
      std::string key = "s" + std::to_string(salt) + "-" + std::to_string(i);
      if (ShardedDB::ShardOfKey(key, kShards) == shard) return key;
    }
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
  // A test-body Env must outlive TearDown (its DestroyDB dereferences
  // options_.env), so tests park custom Envs here: fixture members are
  // destroyed after TearDown runs.
  std::unique_ptr<Env> owned_env_;
};

TEST_F(ShardedDBTest, RoutedCrudAcrossAllShards) {
  Open();
  EXPECT_EQ(db_->num_shards(), kShards);
  uint64_t n = 0;
  EXPECT_TRUE(db_->GetProperty("pmblade.num-shards", &n));
  EXPECT_EQ(n, kShards);

  std::map<std::string, std::string> model;
  for (int i = 0; i < 400; ++i) {
    std::string key = "key" + std::to_string(i);
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    model[key] = value;
  }
  // Every shard received some share of a 400-key uniform workload.
  for (uint32_t i = 0; i < kShards; ++i) {
    uint64_t writes = sharded()->shard(i)->statistics().writes();
    EXPECT_GT(writes, 0u) << "shard " << i << " got no writes";
  }
  for (const auto& kv : model) {
    EXPECT_EQ(Get(kv.first), kv.second);
    // The key lives in exactly its routed shard.
    const uint32_t home = ShardedDB::ShardOfKey(kv.first, kShards);
    for (uint32_t i = 0; i < kShards; ++i) {
      std::string value;
      Status s = sharded()->shard(i)->Get(ReadOptions(), kv.first, &value);
      if (i == home) {
        EXPECT_TRUE(s.ok()) << kv.first;
      } else {
        EXPECT_TRUE(s.IsNotFound()) << kv.first << " leaked to shard " << i;
      }
    }
  }
  ASSERT_TRUE(db_->Delete(WriteOptions(), "key7").ok());
  EXPECT_EQ(Get("key7"), "NOT_FOUND");
}

TEST_F(ShardedDBTest, WriteBatchSplitsAndAppliesPerShard) {
  Open();
  WriteBatch batch;
  std::vector<std::string> keys;
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    keys.push_back(KeyForShard(shard, 1));
    batch.Put(keys.back(), "batched-" + std::to_string(shard));
  }
  batch.Put("overwritten", "first");
  batch.Put("overwritten", "second");  // later op in the batch wins
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());

  for (uint32_t shard = 0; shard < kShards; ++shard) {
    EXPECT_EQ(Get(keys[shard]), "batched-" + std::to_string(shard));
  }
  EXPECT_EQ(Get("overwritten"), "second");

  WriteBatch deletes;
  for (const std::string& key : keys) deletes.Delete(key);
  ASSERT_TRUE(db_->Write(WriteOptions(), &deletes).ok());
  for (const std::string& key : keys) EXPECT_EQ(Get(key), "NOT_FOUND");

  // A null batch is rejected, not crashed on.
  EXPECT_FALSE(db_->Write(WriteOptions(), nullptr).ok());
}

TEST_F(ShardedDBTest, MergedIteratorIsGloballySorted) {
  Open();
  std::map<std::string, std::string> model;
  Random rng(42);
  for (int i = 0; i < 500; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(100000));
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    model[key] = value;
  }
  // Push some of it through flush so the merge spans memtables AND level-0.
  ASSERT_TRUE(db_->FlushMemTable().ok());
  std::string late_key = "k00late";
  ASSERT_TRUE(db_->Put(WriteOptions(), late_key, "late").ok());
  model[late_key] = "late";

  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  auto expect = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expect) {
    ASSERT_NE(expect, model.end());
    EXPECT_EQ(it->key().ToString(), expect->first);
    EXPECT_EQ(it->value().ToString(), expect->second);
  }
  EXPECT_EQ(expect, model.end());
  EXPECT_TRUE(it->status().ok());

  // Seek lands on the first key >= target across every shard.
  auto mid = model.begin();
  std::advance(mid, model.size() / 2);
  it->Seek(mid->first);
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), mid->first);

  // Backward traversal too (the merge is bidirectional).
  it->SeekToLast();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), model.rbegin()->first);
}

TEST_F(ShardedDBTest, SnapshotHandleGivesPerShardStableReads) {
  Open();
  std::vector<std::string> keys;
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    keys.push_back(KeyForShard(shard, 2));
    ASSERT_TRUE(db_->Put(WriteOptions(), keys.back(), "old").ok());
  }
  const uint64_t snap = db_->GetSnapshot();
  for (const std::string& key : keys) {
    ASSERT_TRUE(db_->Put(WriteOptions(), key, "new").ok());
  }

  ReadOptions at_snap;
  at_snap.snapshot = snap;
  for (const std::string& key : keys) {
    std::string value;
    ASSERT_TRUE(db_->Get(at_snap, key, &value).ok());
    EXPECT_EQ(value, "old") << key;
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok());
    EXPECT_EQ(value, "new") << key;
  }
  std::unique_ptr<Iterator> it(db_->NewIterator(at_snap));
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(it->value().ToString(), "old");
  }
  db_->ReleaseSnapshot(snap);

  // An unknown handle surfaces as an error iterator, not silent latest.
  ReadOptions bogus;
  bogus.snapshot = snap + 1000;
  std::unique_ptr<Iterator> bad(db_->NewIterator(bogus));
  bad->SeekToFirst();
  EXPECT_FALSE(bad->Valid());
  EXPECT_FALSE(bad->status().ok());
}

TEST_F(ShardedDBTest, ReopenRecoversEveryShardsWal) {
  Open();
  std::map<std::string, std::string> model;
  for (int i = 0; i < 200; ++i) {
    std::string key = "wal" + std::to_string(i);
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    model[key] = value;
  }
  // No flush: the close leaves everything in the shards' WALs, so the
  // reopen below replays all four (the destructor does not flush).
  Open();
  EXPECT_EQ(db_->num_shards(), kShards);
  for (const auto& kv : model) EXPECT_EQ(Get(kv.first), kv.second);

  // And the recovered data is still routed correctly.
  for (const auto& kv : model) {
    const uint32_t home = ShardedDB::ShardOfKey(kv.first, kShards);
    std::string value;
    EXPECT_TRUE(
        sharded()->shard(home)->Get(ReadOptions(), kv.first, &value).ok());
  }
}

TEST_F(ShardedDBTest, ShardCountIsPinnedByMarker) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "pinned", "v").ok());
  db_.reset();

  // Reopening with a different shard count must fail loudly...
  Options two = options_;
  two.num_shards = 2;
  std::unique_ptr<DB> db;
  Status s = DB::Open(two, dbname_, &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  // ...as must a single-shard open of the sharded directory.
  Options one = options_;
  one.num_shards = 1;
  s = DB::Open(one, dbname_, &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  // The pinned count still works.
  Open();
  EXPECT_EQ(Get("pinned"), "v");
}

TEST_F(ShardedDBTest, PropertiesAggregateAndBreakOutPerShard) {
  options_.block_cache_bytes = 64 << 10;
  Open();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "agg" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  // Summed property == the sum of the per-shard breakdown properties.
  uint64_t total = 0;
  ASSERT_TRUE(db_->GetProperty("pmblade.l0-bytes", &total));
  uint64_t summed = 0;
  for (uint32_t i = 0; i < kShards; ++i) {
    uint64_t one = 0;
    ASSERT_TRUE(db_->GetProperty(
        "pmblade.shard." + std::to_string(i) + ".l0-bytes", &one));
    summed += one;
  }
  EXPECT_EQ(total, summed);
  EXPECT_GT(total, 0u);

  // Aggregated statistics() sums the shards.
  uint64_t shard_writes = 0;
  for (uint32_t i = 0; i < kShards; ++i) {
    shard_writes += sharded()->shard(i)->statistics().writes();
  }
  EXPECT_EQ(db_->statistics().writes(), shard_writes);
  EXPECT_EQ(db_->statistics().writes(), 200u);

  // The metrics snapshot carries both the summed aggregate and the
  // pmblade.shard.<i>.* breakdown, without double-counting the shared cache.
  std::string json;
  ASSERT_TRUE(db_->GetProperty("pmblade.stats.json", &json));
  EXPECT_NE(json.find("pmblade.shard.0."), std::string::npos);
  EXPECT_NE(json.find("pmblade.flush.count"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-shard admission: a stalled shard must not shed idle-shard traffic.
// ---------------------------------------------------------------------------

// Env that delegates to PosixEnv but can hold SSTable writes of shard 0
// hostage: Append on any ".sst" path under a "/shard-0/" directory blocks
// until Unblock(). With the flush thread stuck there, shard 0's immutable
// memtable never drains and its write pressure climbs to kStall while every
// other shard stays at kNone.
class Shard0FlushBlockingEnv : public Env {
 public:
  Shard0FlushBlockingEnv() : base_(PosixEnv()) {}

  void Unblock() {
    std::lock_guard<std::mutex> lock(mu_);
    blocked_ = false;
    cv_.notify_all();
  }
  bool SawBlockedWrite() const {
    std::lock_guard<std::mutex> lock(mu_);
    return saw_blocked_write_;
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    std::unique_ptr<WritableFile> file;
    PMBLADE_RETURN_IF_ERROR(base_->NewWritableFile(fname, &file));
    if (fname.find("/shard-0/") != std::string::npos &&
        fname.size() > 4 &&
        fname.compare(fname.size() - 4, 4, ".sst") == 0) {
      result->reset(new BlockingFile(this, std::move(file)));
    } else {
      *result = std::move(file);
    }
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* r) override {
    return base_->NewSequentialFile(fname, r);
  }
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* r) override {
    return base_->NewRandomAccessFile(fname, r);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }

 private:
  class BlockingFile : public WritableFile {
   public:
    BlockingFile(Shard0FlushBlockingEnv* env,
                 std::unique_ptr<WritableFile> base)
        : env_(env), base_(std::move(base)) {}
    Status Append(const Slice& data) override {
      env_->WaitUntilUnblocked();
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override { return base_->Sync(); }
    Status Close() override { return base_->Close(); }

   private:
    Shard0FlushBlockingEnv* env_;
    std::unique_ptr<WritableFile> base_;
  };

  void WaitUntilUnblocked() {
    std::unique_lock<std::mutex> lock(mu_);
    saw_blocked_write_ = true;
    cv_.wait(lock, [this] { return !blocked_; });
  }

  Env* base_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_ = true;
  bool saw_blocked_write_ = false;
};

TEST_F(ShardedDBTest, StalledShardDoesNotShedIdleShardTraffic) {
  // Owned by the fixture, not the test body: the DB's Options copy and the
  // fixture's TearDown DestroyDB both keep pointing at this Env after the
  // test body returns.
  owned_env_ = std::make_unique<Shard0FlushBlockingEnv>();
  auto* blocking_env = static_cast<Shard0FlushBlockingEnv*>(owned_env_.get());
  // Whatever path exits the test (including a failed ASSERT), release the
  // hostage flush so the DB close in TearDown can drain instead of hanging.
  struct UnblockOnExit {
    Shard0FlushBlockingEnv* env;
    ~UnblockOnExit() { env->Unblock(); }
  } unblock_guard{blocking_env};
  options_.env = blocking_env;
  options_.l0_layout = L0Layout::kSstable;  // flushes go through the Env
  // Small memtable, but a few arena blocks worth: the arena allocates in
  // 4 KiB blocks, so the limit must sit several blocks up or the very first
  // put of a fresh memtable already reads as "full" and hard-stalls inside
  // the write instead of surfacing through GetWritePressure first.
  options_.memtable_bytes = 16 << 10;
  options_.write_slowdown_nanos = 1000;  // keep the slowdown phase quick
  Open();

  // Fill shard 0 until it reports a hard stall. Pressure is checked BEFORE
  // each put: the put after kStall would block inside the writer queue, so
  // the loop must never issue it.
  const std::string value(2048, 'x');
  bool stalled = false;
  for (int i = 0; i < 200 && !stalled; ++i) {
    if (db_->GetWritePressure(KeyForShard(0, 3)) == WritePressure::kStall) {
      stalled = true;
      break;
    }
    ASSERT_TRUE(
        db_->Put(WriteOptions(), KeyForShard(0, 100 + i), value).ok());
  }
  ASSERT_TRUE(stalled) << "shard 0 never reached kStall";
  // kStall is observable as soon as the immutable memtable exists; the flush
  // thread may not have reached the (blocked) SST write yet. It must get
  // there, so wait rather than assert the instantaneous state.
  for (int i = 0; i < 500 && !blocking_env->SawBlockedWrite(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(blocking_env->SawBlockedWrite());

  // The stall is confined to shard 0: keyed pressure for the other shards
  // is clean, the per-shard probe agrees, and the global (unkeyed) view
  // reports the worst shard.
  EXPECT_EQ(db_->GetShardWritePressure(0), WritePressure::kStall);
  for (uint32_t shard = 1; shard < kShards; ++shard) {
    EXPECT_EQ(db_->GetWritePressure(KeyForShard(shard, 3)),
              WritePressure::kNone)
        << "idle shard " << shard << " reports pressure";
    EXPECT_EQ(db_->GetShardWritePressure(shard), WritePressure::kNone);
  }
  EXPECT_EQ(db_->GetWritePressure(), WritePressure::kStall);

  // The RESP handler's default (keyed) admission: a SET bound for the
  // stalled shard is shed with -BUSY, the same SET bound for an idle shard
  // goes through. Before the keyed probe, the global kStall would have shed
  // both.
  net::ServerMetrics metrics;
  metrics.Register(db_->metrics_registry());
  net::CommandHandler handler(db_.get(), net::CommandHandlerOptions(),
                              &metrics, SystemClock());
  auto call = [&](const std::vector<std::string>& args) {
    std::string wire;
    net::EncodeBulkStringArray(args, &wire);
    net::RespParser parser;
    parser.Feed(wire.data(), wire.size());
    RespValue command;
    EXPECT_EQ(parser.Next(&command), net::RespParser::Result::kValue);
    std::string out;
    handler.Execute(command, &out);
    return out;
  };
  EXPECT_EQ(call({"SET", KeyForShard(0, 3), "v"}).substr(0, 5), "-BUSY");
  EXPECT_EQ(call({"SET", KeyForShard(1, 3), "v"}), "+OK\r\n");
  EXPECT_EQ(call({"GET", KeyForShard(1, 3)}), "$1\r\nv\r\n");
  // MSET sheds on the WORST pressure over its keys: mixing in one stalled-
  // shard key sheds the whole batch (it is atomic per shard, so admitting
  // half would be worse).
  EXPECT_EQ(call({"MSET", KeyForShard(1, 3), "v", KeyForShard(0, 3), "v"})
                .substr(0, 5),
            "-BUSY");
  // INFO surfaces the per-shard breakdown.
  std::string info = call({"INFO", "shards"});
  EXPECT_NE(info.find("# Shards"), std::string::npos);
  EXPECT_NE(info.find("shard0:write_pressure=stall"), std::string::npos);
  EXPECT_NE(info.find("shard1:write_pressure=none"), std::string::npos);

  // Let the hostage flush finish so the close can drain.
  blocking_env->Unblock();
  db_.reset();
}

// ---------------------------------------------------------------------------
// SCAN through the RESP handler: cross-shard merge, cursor resume, MATCH.
// ---------------------------------------------------------------------------

class ShardedCommandTest : public ShardedDBTest {
 protected:
  void SetUp() override {
    ShardedDBTest::SetUp();
    Open();
    metrics_.Register(db_->metrics_registry());
    handler_.reset(new net::CommandHandler(db_.get(), handler_options_,
                                           &metrics_, SystemClock()));
  }
  void TearDown() override {
    handler_.reset();
    ShardedDBTest::TearDown();
  }

  RespValue Call(const std::vector<std::string>& args) {
    std::string wire;
    net::EncodeBulkStringArray(args, &wire);
    net::RespParser parser;
    parser.Feed(wire.data(), wire.size());
    RespValue command;
    EXPECT_EQ(parser.Next(&command), net::RespParser::Result::kValue);
    std::string out;
    handler_->Execute(command, &out);
    net::RespParser reply_parser;
    reply_parser.Feed(out.data(), out.size());
    RespValue reply;
    EXPECT_EQ(reply_parser.Next(&reply), net::RespParser::Result::kValue)
        << "no reply for " << args[0];
    return reply;
  }

  net::ServerMetrics metrics_;
  net::CommandHandlerOptions handler_options_;
  std::unique_ptr<net::CommandHandler> handler_;
};

TEST_F(ShardedCommandTest, MGetMSetFanOutAcrossShards) {
  RespValue reply = Call({"MSET", "a", "1", "b", "2", "c", "3", "d", "4"});
  EXPECT_EQ(reply.type, RespValue::Type::kSimpleString);
  reply = Call({"MGET", "a", "missing", "c", "d"});
  ASSERT_EQ(reply.array.size(), 4u);
  EXPECT_EQ(reply.array[0].str, "1");
  EXPECT_EQ(reply.array[1].type, RespValue::Type::kNull);
  EXPECT_EQ(reply.array[2].str, "3");
  EXPECT_EQ(reply.array[3].str, "4");
  EXPECT_EQ(Call({"DEL", "a", "b", "nope"}).integer, 2);
  EXPECT_EQ(Call({"EXISTS", "a", "c"}).integer, 1);
}

TEST_F(ShardedCommandTest, ScanPagesTheMergedKeyspaceInOrder) {
  for (int i = 0; i < 60; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%02d", i);
    Call({"SET", key, "v"});
  }
  // Keys this dense spread over every shard; the pages must still arrive
  // globally sorted with no duplicate or dropped key at page boundaries
  // (the cursor is the exclusive successor of the last returned key).
  std::vector<std::string> seen;
  std::string cursor = "0";
  int pages = 0;
  do {
    RespValue page = Call({"SCAN", cursor, "COUNT", "7"});
    ASSERT_EQ(page.array.size(), 2u);
    cursor = page.array[0].str;
    for (const RespValue& k : page.array[1].array) seen.push_back(k.str);
    ++pages;
    ASSERT_LE(pages, 30) << "cursor failed to terminate";
  } while (cursor != "0");
  ASSERT_EQ(seen.size(), 60u);
  for (int i = 0; i < 60; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%02d", i);
    EXPECT_EQ(seen[i], key);
  }
  EXPECT_GE(pages, 8);

  // MATCH filters the merged stream, and writes racing the scan are fine.
  Call({"MSET", "user:1", "a", "user:2", "b"});
  RespValue page = Call({"SCAN", "0", "MATCH", "user:*", "COUNT", "100"});
  ASSERT_EQ(page.array.size(), 2u);
  EXPECT_EQ(page.array[0].str, "0");
  ASSERT_EQ(page.array[1].array.size(), 2u);
  EXPECT_EQ(page.array[1].array[0].str, "user:1");
  EXPECT_EQ(page.array[1].array[1].str, "user:2");
  EXPECT_EQ(Call({"DBSIZE"}).integer, 62);
}

// ---------------------------------------------------------------------------
// Multi-writer stress (TSan coverage for the sharded write/read/scan paths).
// ---------------------------------------------------------------------------

TEST_F(ShardedDBTest, ConcurrentWritersReadersAndScansAreClean) {
  options_.memtable_bytes = 16 << 10;  // force flushes under the race
  Open();
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  std::atomic<bool> stop{false};

  // Each writer owns a disjoint key range; mixed puts, batches and deletes.
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Random rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key =
            "w" + std::to_string(t) + "-" + std::to_string(rng.Uniform(100));
        if (i % 7 == 6) {
          ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
        } else if (i % 5 == 4) {
          WriteBatch batch;
          batch.Put(key, "batch");
          batch.Put(key + "-b", "batch");
          ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
        } else {
          ASSERT_TRUE(db_->Put(WriteOptions(), key, "v").ok());
        }
      }
    });
  }
  // Readers + a scanner race the writers across every shard.
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Random rng(2000 + t);
      while (!stop.load(std::memory_order_acquire)) {
        std::string key = "w" + std::to_string(rng.Uniform(kThreads)) + "-" +
                          std::to_string(rng.Uniform(100));
        std::string value;
        Status s = db_->Get(ReadOptions(), key, &value);
        ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
      }
    });
  }
  readers.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
      std::string prev;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        std::string key = it->key().ToString();
        ASSERT_LT(prev, key) << "merged scan out of order";
        prev = std::move(key);
      }
      ASSERT_TRUE(it->status().ok());
    }
  });

  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  // Survivors are exactly what a serial replay of each thread's ops gives
  // (ranges are disjoint, so per-thread replay is the global truth).
  for (int t = 0; t < kThreads; ++t) {
    std::map<std::string, bool> alive;  // key -> present
    Random rng(1000 + t);
    for (int i = 0; i < kOpsPerThread; ++i) {
      std::string key =
          "w" + std::to_string(t) + "-" + std::to_string(rng.Uniform(100));
      if (i % 7 == 6) {
        alive[key] = false;
      } else if (i % 5 == 4) {
        alive[key] = true;
        alive[key + "-b"] = true;
      } else {
        alive[key] = true;
      }
    }
    for (const auto& kv : alive) {
      std::string value;
      Status s = db_->Get(ReadOptions(), kv.first, &value);
      if (kv.second) {
        EXPECT_TRUE(s.ok()) << kv.first << ": " << s.ToString();
      } else {
        EXPECT_TRUE(s.IsNotFound()) << kv.first;
      }
    }
  }
}

}  // namespace
}  // namespace pmblade
