// Tests for the baseline engines: the conventional leveled LSM and the
// MatrixKV-style store, plus the shared LeveledStore.

#include <gtest/gtest.h>

#include <map>

#include "baseline/leveled_db.h"
#include "baseline/matrixkv_db.h"
#include "env/sim_env.h"
#include "env/ssd_model.h"
#include "util/random.h"

namespace pmblade {
namespace {

class LeveledDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_leveled_test";
    PosixEnv()->RemoveDirRecursively(dbname_);
    options_ = LeveledDbOptions();
    options_.memtable_bytes = 16 << 10;
    options_.levels.level1_target_bytes = 64 << 10;
    options_.levels.level_multiplier = 4;
    options_.levels.target_file_bytes = 32 << 10;
    ASSERT_TRUE(LeveledDb::Open(options_, dbname_, &db_).ok());
  }
  void TearDown() override {
    db_.reset();
    PosixEnv()->RemoveDirRecursively(dbname_);
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(key, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERROR";
    return value;
  }

  std::string dbname_;
  LeveledDbOptions options_;
  std::unique_ptr<LeveledDb> db_;
};

TEST_F(LeveledDbTest, PutGetDelete) {
  ASSERT_TRUE(db_->Put("k", "v").ok());
  EXPECT_EQ(Get("k"), "v");
  ASSERT_TRUE(db_->Delete("k").ok());
  EXPECT_EQ(Get("k"), "NOT_FOUND");
}

TEST_F(LeveledDbTest, L0CompactionTriggersAtFour) {
  for (int flush = 0; flush < 4; ++flush) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db_->Put("f" + std::to_string(flush) + "k" +
                               std::to_string(i),
                           "v")
                      .ok());
    }
    ASSERT_TRUE(db_->Flush().ok());
  }
  // Fourth flush triggered L0 -> L1.
  EXPECT_EQ(db_->l0_files(), 0u);
  EXPECT_GT(db_->store().TotalBytes(), 0u);
  EXPECT_EQ(Get("f0k5"), "v");
  EXPECT_EQ(Get("f3k19"), "v");
}

TEST_F(LeveledDbTest, RandomWorkloadAgainstModel) {
  Random rnd(55);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 4000; ++op) {
    std::string key = "key" + std::to_string(rnd.Uniform(400));
    if (rnd.OneIn(12)) {
      model.erase(key);
      ASSERT_TRUE(db_->Delete(key).ok());
    } else {
      std::string value = "v" + std::to_string(op);
      model[key] = value;
      ASSERT_TRUE(db_->Put(key, value).ok());
    }
  }
  for (auto& [k, v] : model) {
    EXPECT_EQ(Get(k), v) << k;
  }
  std::unique_ptr<Iterator> it(db_->NewScanIterator());
  it->SeekToFirst();
  for (auto& [k, v] : model) {
    ASSERT_TRUE(it->Valid()) << "missing " << k;
    EXPECT_EQ(it->key().ToString(), k);
    EXPECT_EQ(it->value().ToString(), v);
    it->Next();
  }
  EXPECT_FALSE(it->Valid());
}

TEST_F(LeveledDbTest, CascadeCreatesMultipleLevels) {
  Random rnd(66);
  std::string value(256, 'x');
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(
        db_->Put("key" + std::to_string(rnd.Uniform(100000)), value).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  // With ~1 MB of data, L1 target 64 KiB and multiplier 4, data must have
  // cascaded past L1.
  int populated_levels = 0;
  for (int level = 0; level < db_->store().NumLevels(); ++level) {
    if (db_->store().LevelBytes(level) > 0) ++populated_levels;
  }
  EXPECT_GE(populated_levels, 2);
}

TEST_F(LeveledDbTest, WriteAmplificationExceedsUserBytes) {
  SsdModelOptions mopts;
  mopts.inject_latency = false;
  SsdModel model(mopts);
  SimEnv sim(PosixEnv(), &model);
  LeveledDbOptions opts = options_;
  opts.env = &sim;
  std::string dbname2 = ::testing::TempDir() + "pmblade_leveled_wa";
  PosixEnv()->RemoveDirRecursively(dbname2);
  std::unique_ptr<LeveledDb> db;
  ASSERT_TRUE(LeveledDb::Open(opts, dbname2, &db).ok());

  Random rnd(1);
  std::string value(128, 'y');
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(db->Put("key" + std::to_string(rnd.Uniform(500)), value).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  uint64_t user = db->statistics().user_bytes_written();
  uint64_t device = model.bytes_written();
  EXPECT_GT(device, user);  // WAL + flush + multi-level rewrites
  db.reset();
  PosixEnv()->RemoveDirRecursively(dbname2);
}

class MatrixKvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_matrixkv_test";
    PosixEnv()->RemoveDirRecursively(dbname_);
    options_ = MatrixKvOptions();
    options_.memtable_bytes = 16 << 10;
    options_.pm_budget_bytes = 128 << 10;  // small budget: force columns
    options_.pm_pool_capacity = 32 << 20;
    options_.pm_latency.inject_latency = false;
    options_.levels.level1_target_bytes = 64 << 10;
    options_.levels.level_multiplier = 4;
    options_.levels.target_file_bytes = 32 << 10;
    ASSERT_TRUE(MatrixKvDb::Open(options_, dbname_, &db_).ok());
  }
  void TearDown() override {
    db_.reset();
    PosixEnv()->RemoveDirRecursively(dbname_);
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(key, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERROR";
    return value;
  }

  std::string dbname_;
  MatrixKvOptions options_;
  std::unique_ptr<MatrixKvDb> db_;
};

TEST_F(MatrixKvTest, PutGetDelete) {
  ASSERT_TRUE(db_->Put("k", "v").ok());
  EXPECT_EQ(Get("k"), "v");
  ASSERT_TRUE(db_->Delete("k").ok());
  EXPECT_EQ(Get("k"), "NOT_FOUND");
}

TEST_F(MatrixKvTest, RowsAccumulateInPm) {
  for (int flush = 0; flush < 3; ++flush) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          db_->Put("f" + std::to_string(flush) + "-" + std::to_string(i), "v")
              .ok());
    }
    ASSERT_TRUE(db_->Flush().ok());
  }
  EXPECT_EQ(db_->matrix_rows(), 3u);
  EXPECT_GT(db_->pm_pool()->UsedBytes(), 0u);
  EXPECT_EQ(Get("f1-5"), "v");
}

TEST_F(MatrixKvTest, ColumnCompactionBoundsPmUsage) {
  std::string value(512, 'z');
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(db_->Put("key" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  // The matrix never exceeds the budget (after flush-time enforcement).
  EXPECT_LE(db_->matrix_bytes(), options_.pm_budget_bytes);
  // Data pushed down is still readable.
  EXPECT_EQ(Get("key0"), value);
  EXPECT_EQ(Get("key1999"), value);
}

TEST_F(MatrixKvTest, RandomWorkloadAgainstModel) {
  Random rnd(77);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 4000; ++op) {
    std::string key = "key" + std::to_string(rnd.Uniform(300));
    if (rnd.OneIn(15)) {
      model.erase(key);
      ASSERT_TRUE(db_->Delete(key).ok());
    } else {
      std::string value = "v" + std::to_string(op);
      model[key] = value;
      ASSERT_TRUE(db_->Put(key, value).ok());
    }
  }
  for (auto& [k, v] : model) {
    EXPECT_EQ(Get(k), v) << k;
  }
  std::unique_ptr<Iterator> it(db_->NewScanIterator());
  it->SeekToFirst();
  size_t count = 0;
  for (; it->Valid(); it->Next()) ++count;
  EXPECT_EQ(count, model.size());
}

TEST_F(MatrixKvTest, CompactAllEmptiesMatrix) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put("key" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_EQ(db_->matrix_rows(), 0u);
  EXPECT_EQ(Get("key50"), "v");
}

}  // namespace
}  // namespace pmblade
