// FaultyEnv: an Env decorator that fails writable-file operations on
// command. Shared by the fault-injection and recovery-corner tests.
//
//   fail_writes          — every Append/Sync fails until cleared
//   fail_new_files       — NewWritableFile fails until cleared
//   writes_until_failure — countdown: the Nth write-side operation from now
//                          (and every one after it) fails; -1 disarms.
//   random_opens_until_failure — countdown on NewRandomAccessFile: the Nth
//                          open from now (and every one after it) fails;
//                          -1 disarms. Targets SSTable opens (table installs
//                          read the file back through this path).
//   fail_removes         — every RemoveFile fails until cleared (stuck WAL /
//                          obsolete-file GC).

#ifndef PMBLADE_TESTS_FAULT_ENV_H_
#define PMBLADE_TESTS_FAULT_ENV_H_

#include <atomic>
#include <memory>
#include <string>

#include "env/env.h"

namespace pmblade {
namespace test {

class FaultyEnv final : public Env {
 public:
  explicit FaultyEnv(Env* base) : base_(base) {}

  std::atomic<bool> fail_writes{false};
  std::atomic<bool> fail_new_files{false};
  std::atomic<bool> fail_removes{false};
  std::atomic<int> writes_until_failure{-1};        // -1 = no countdown
  std::atomic<int> random_opens_until_failure{-1};  // -1 = no countdown

  bool ShouldFail() { return fail_writes.load() ||
                             CountdownHit(&writes_until_failure); }

  /// Claims a countdown slot with one atomic CAS loop. The old
  /// load-check-fetch_sub version raced: two threads could both read
  /// remaining==1, both decrement, and the counter would sail past zero
  /// without either of them failing.
  static bool CountdownHit(std::atomic<int>* counter) {
    int remaining = counter->load();
    while (true) {
      if (remaining < 0) return false;  // disarmed
      if (remaining == 0) return true;  // exhausted: fail from here on
      if (counter->compare_exchange_weak(remaining, remaining - 1)) {
        return false;  // successfully consumed one pre-failure slot
      }
      // CAS failed: `remaining` was reloaded; re-evaluate.
    }
  }

  class FaultyWritableFile final : public WritableFile {
   public:
    FaultyWritableFile(std::unique_ptr<WritableFile> base, FaultyEnv* env)
        : base_(std::move(base)), env_(env) {}
    Status Append(const Slice& data) override {
      if (env_->ShouldFail()) return Status::IOError("injected write fault");
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override {
      if (env_->ShouldFail()) return Status::IOError("injected sync fault");
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }

   private:
    std::unique_ptr<WritableFile> base_;
    FaultyEnv* env_;
  };

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    if (fail_new_files.load()) {
      return Status::IOError("injected create fault");
    }
    std::unique_ptr<WritableFile> base_file;
    PMBLADE_RETURN_IF_ERROR(base_->NewWritableFile(fname, &base_file));
    result->reset(new FaultyWritableFile(std::move(base_file), this));
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    if (CountdownHit(&random_opens_until_failure)) {
      return Status::IOError("injected open fault: " + fname);
    }
    return base_->NewRandomAccessFile(fname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    if (fail_removes.load()) {
      return Status::IOError("injected remove fault: " + fname);
    }
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }

 private:
  Env* base_;
};

}  // namespace test
}  // namespace pmblade

#endif  // PMBLADE_TESTS_FAULT_ENV_H_
