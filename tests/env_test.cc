// Tests for the Env abstraction, the SSD model and the SimEnv decorator.

#include <gtest/gtest.h>

#include <thread>

#include "env/env.h"
#include "env/sim_env.h"
#include "env/ssd_model.h"

namespace pmblade {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = PosixEnv();
    dir_ = ::testing::TempDir() + "pmblade_env_test";
    env_->RemoveDirRecursively(dir_);
    ASSERT_TRUE(env_->CreateDir(dir_).ok());
  }
  void TearDown() override { env_->RemoveDirRecursively(dir_); }

  Env* env_;
  std::string dir_;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  std::string fname = dir_ + "/file";
  ASSERT_TRUE(WriteStringToFile(env_, "hello pm-blade", fname).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, fname, &data).ok());
  EXPECT_EQ(data, "hello pm-blade");
}

TEST_F(EnvTest, AppendAccumulates) {
  std::string fname = dir_ + "/appended";
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile(fname, &f).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f->Append("0123456789").ok());
  }
  ASSERT_TRUE(f->Close().ok());
  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(fname, &size).ok());
  EXPECT_EQ(size, 1000u);
}

TEST_F(EnvTest, RandomAccessReadsAtOffset) {
  std::string fname = dir_ + "/random";
  ASSERT_TRUE(WriteStringToFile(env_, "abcdefghijklmnop", fname).ok());
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &f).ok());
  char scratch[8];
  Slice result;
  ASSERT_TRUE(f->Read(4, 4, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "efgh");
  // Read past EOF returns short result, not an error.
  ASSERT_TRUE(f->Read(14, 8, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "op");
}

TEST_F(EnvTest, MissingFileIsNotFound) {
  std::unique_ptr<SequentialFile> f;
  Status s = env_->NewSequentialFile(dir_ + "/nope", &f);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_FALSE(env_->FileExists(dir_ + "/nope"));
}

TEST_F(EnvTest, GetChildrenAndRename) {
  ASSERT_TRUE(WriteStringToFile(env_, "x", dir_ + "/a").ok());
  ASSERT_TRUE(WriteStringToFile(env_, "y", dir_ + "/b").ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  EXPECT_EQ(children.size(), 2u);
  ASSERT_TRUE(env_->RenameFile(dir_ + "/a", dir_ + "/c").ok());
  EXPECT_TRUE(env_->FileExists(dir_ + "/c"));
  EXPECT_FALSE(env_->FileExists(dir_ + "/a"));
}

TEST_F(EnvTest, SequentialSkip) {
  ASSERT_TRUE(WriteStringToFile(env_, "0123456789", dir_ + "/skip").ok());
  std::unique_ptr<SequentialFile> f;
  ASSERT_TRUE(env_->NewSequentialFile(dir_ + "/skip", &f).ok());
  ASSERT_TRUE(f->Skip(4).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(f->Read(16, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "456789");
}

TEST(SsdModelTest, CountsBytesAndOps) {
  SsdModelOptions opts;
  opts.inject_latency = false;
  SsdModel model(opts);
  model.OnRead(4096);
  model.OnWrite(8192);
  model.OnWrite(100);
  EXPECT_EQ(model.bytes_read(), 4096u);
  EXPECT_EQ(model.bytes_written(), 8292u);
  EXPECT_EQ(model.reads(), 1u);
  EXPECT_EQ(model.writes(), 2u);
}

TEST(SsdModelTest, LatencyGrowsWithSize) {
  SsdModelOptions opts;
  opts.inject_latency = false;
  SsdModel model(opts);
  uint64_t small = model.OnRead(512);
  uint64_t big = model.OnRead(64 * 1024);
  EXPECT_GT(big, small);
}

TEST(SsdModelTest, QueuePenaltyRaisesLatency) {
  SsdModelOptions opts;
  opts.inject_latency = false;
  SsdModel model(opts);
  uint64_t solo = model.OnRead(4096);
  // Hold tickets open to simulate queue depth.
  auto t1 = model.BeginIo(false, 4096, IoClass::kCompaction);
  auto t2 = model.BeginIo(false, 4096, IoClass::kCompaction);
  uint64_t queued = model.OnRead(4096);
  EXPECT_GT(queued, solo);
  EXPECT_EQ(queued - solo, 2 * opts.queue_penalty_nanos);
  model.EndIo(t1);
  model.EndIo(t2);
}

TEST(SsdModelTest, InflightPerClassTracking) {
  SsdModelOptions opts;
  opts.inject_latency = false;
  SsdModel model(opts);
  auto t1 = model.BeginIo(false, 100, IoClass::kCompaction);
  auto t2 = model.BeginIo(true, 100, IoClass::kFlush);
  auto t3 = model.BeginIo(false, 100, IoClass::kClient);
  EXPECT_EQ(model.Inflight(IoClass::kCompaction), 1);
  EXPECT_EQ(model.Inflight(IoClass::kFlush), 1);
  EXPECT_EQ(model.Inflight(IoClass::kClient), 1);
  EXPECT_EQ(model.InflightTotal(), 3);
  model.EndIo(t1);
  model.EndIo(t2);
  model.EndIo(t3);
  EXPECT_EQ(model.InflightTotal(), 0);
}

TEST(SsdModelTest, BusyTimeAccumulatesWithMockClock) {
  MockClock clock;
  SsdModelOptions opts;
  opts.inject_latency = false;
  opts.clock = &clock;
  SsdModel model(opts);
  auto t = model.BeginIo(false, 4096, IoClass::kClient);
  clock.Advance(1000);
  model.EndIo(t);
  EXPECT_EQ(model.BusyNanos(), 1000u);
  clock.Advance(5000);  // idle time does not count
  EXPECT_EQ(model.BusyNanos(), 1000u);
}

TEST(SsdModelTest, OverlappingIosBusyIsUnion) {
  MockClock clock;
  SsdModelOptions opts;
  opts.inject_latency = false;
  opts.clock = &clock;
  SsdModel model(opts);
  auto t1 = model.BeginIo(false, 100, IoClass::kClient);
  clock.Advance(500);
  auto t2 = model.BeginIo(false, 100, IoClass::kClient);
  clock.Advance(500);
  model.EndIo(t1);
  clock.Advance(500);
  model.EndIo(t2);
  EXPECT_EQ(model.BusyNanos(), 1500u);  // union of [0,1000] and [500,1500]
}

TEST(SsdModelTest, ResetStatsZeroes) {
  SsdModelOptions opts;
  opts.inject_latency = false;
  SsdModel model(opts);
  model.OnWrite(1000);
  model.ResetStats();
  EXPECT_EQ(model.bytes_written(), 0u);
  EXPECT_EQ(model.LatencySnapshot().count(), 0u);
}

TEST(SsdModelTest, InjectionActuallySleeps) {
  SsdModelOptions opts;
  opts.read_base_nanos = 200'000;  // 200 us
  opts.read_nanos_per_byte = 0;
  opts.queue_penalty_nanos = 0;
  SsdModel model(opts);
  Clock* clock = SystemClock();
  uint64_t start = clock->NowNanos();
  model.OnRead(1);
  EXPECT_GE(clock->NowNanos() - start, 200'000u);
}

class SimEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "pmblade_simenv_test";
    PosixEnv()->RemoveDirRecursively(dir_);
    ASSERT_TRUE(PosixEnv()->CreateDir(dir_).ok());
    SsdModelOptions opts;
    opts.inject_latency = false;
    model_.reset(new SsdModel(opts));
    env_.reset(new SimEnv(PosixEnv(), model_.get()));
  }
  void TearDown() override { PosixEnv()->RemoveDirRecursively(dir_); }

  std::string dir_;
  std::unique_ptr<SsdModel> model_;
  std::unique_ptr<SimEnv> env_;
};

TEST_F(SimEnvTest, WritesAreAccounted) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile(dir_ + "/f", &f).ok());
  ASSERT_TRUE(f->Append(std::string(5000, 'z')).ok());
  ASSERT_TRUE(f->Close().ok());
  EXPECT_EQ(model_->bytes_written(), 5000u);
}

TEST_F(SimEnvTest, ReadsAreAccountedWithClass) {
  ASSERT_TRUE(
      WriteStringToFile(env_.get(), std::string(1000, 'a'), dir_ + "/f")
          .ok());
  model_->ResetStats();
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env_
                  ->NewRandomAccessFileWithClass(dir_ + "/f",
                                                 IoClass::kCompaction, &f)
                  .ok());
  char scratch[256];
  Slice result;
  ASSERT_TRUE(f->Read(0, 256, &result, scratch).ok());
  EXPECT_EQ(model_->bytes_read(), 256u);
}

TEST_F(SimEnvTest, PassesThroughMetadataOps) {
  ASSERT_TRUE(WriteStringToFile(env_.get(), "x", dir_ + "/meta").ok());
  EXPECT_TRUE(env_->FileExists(dir_ + "/meta"));
  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(dir_ + "/meta", &size).ok());
  EXPECT_EQ(size, 1u);
  ASSERT_TRUE(env_->RemoveFile(dir_ + "/meta").ok());
  EXPECT_FALSE(env_->FileExists(dir_ + "/meta"));
}

}  // namespace
}  // namespace pmblade
