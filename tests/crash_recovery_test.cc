// Model-checked crash-recovery tests.
//
// The randomized cycles (tests/crash_harness.h) power-cut the simulated
// machine at every sync boundary and at randomized SyncPoints inside the
// write path, flush, manifest commit and compaction, reopen, and verify the
// recovered state against a reference model: every acknowledged-durable key
// must survive and the visible state must sit on a write-batch boundary (no
// torn groups). Defaults: fixed seed, 700 crash/reopen cycles across the
// five configurations. Override with PMBLADE_CRASH_SEED /
// PMBLADE_CRASH_CYCLES (the latter scales each test's cycle count).
//
// The final test deliberately reintroduces a classic recovery bug —
// deleting a flushed WAL BEFORE the manifest commit that makes it
// redundant — and asserts the harness catches the resulting loss, which is
// the meta-test that the checker has teeth.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "tests/crash_harness.h"
#include "tests/sharded_crash_harness.h"

namespace pmblade {
namespace test {
namespace {

uint64_t SeedFromEnv() {
  const char* s = getenv("PMBLADE_CRASH_SEED");
  return s != nullptr ? strtoull(s, nullptr, 10) : 0xb1adeu;
}

int CyclesFromEnv(int default_cycles) {
  const char* s = getenv("PMBLADE_CRASH_CYCLES");
  if (s == nullptr) return default_cycles;
  long v = strtol(s, nullptr, 10);
  return v > 0 ? static_cast<int>(v) : default_cycles;
}

void RunHarness(const std::string& name, L0Layout layout, bool pm_crash_sim,
                int default_cycles, int compaction_workers = 1,
                int max_subcompactions = 1,
                const std::string& compaction_policy = "leveled") {
#ifndef PMBLADE_SYNC_POINTS
  GTEST_SKIP() << "built without PMBLADE_SYNC_POINTS";
#endif
  CrashHarnessOptions opts;
  opts.dbname = ::testing::TempDir() + "pmblade_crash_" + name;
  opts.seed = SeedFromEnv();
  opts.cycles = CyclesFromEnv(default_cycles);
  opts.l0_layout = layout;
  opts.pm_crash_sim = pm_crash_sim;
  opts.compaction_workers = compaction_workers;
  opts.max_subcompactions = max_subcompactions;
  opts.compaction_policy = compaction_policy;
  fprintf(stderr, "[crash harness] %s: seed=%llu cycles=%d\n", name.c_str(),
          static_cast<unsigned long long>(opts.seed), opts.cycles);

  CrashHarness harness(opts);
  CrashHarnessResult result = harness.Run();
  EXPECT_TRUE(result.ok())
      << "cycle " << result.failed_cycle << ": " << result.failure
      << "\nreplay: PMBLADE_CRASH_SEED=" << opts.seed
      << " PMBLADE_CRASH_CYCLES=" << opts.cycles;
  EXPECT_EQ(result.cycles_run, opts.cycles);
  // The plan mix must actually exercise both crash styles.
  EXPECT_GT(result.syncpoint_crashes, 0);
  EXPECT_GT(result.between_op_crashes, 0);
  fprintf(stderr,
          "[crash harness] %s: %d cycles (%d syncpoint, %d between-op), "
          "%lld ops\n",
          name.c_str(), result.cycles_run, result.syncpoint_crashes,
          result.between_op_crashes, result.ops_issued);
}

// 300 + 120 + 100 + 120 + 60 + 100 + 100 = 900 crash/reopen cycles by
// default.

TEST(CrashRecoveryTest, PmLayoutRandomizedCycles) {
  RunHarness("pm", L0Layout::kPmTable, false, 300);
}

TEST(CrashRecoveryTest, SsdLayoutRandomizedCycles) {
  RunHarness("ssd", L0Layout::kSstable, false, 120);
}

TEST(CrashRecoveryTest, PmPersistGranularityCycles) {
  RunHarness("pm_granularity", L0Layout::kPmTable, true, 100);
}

// The parallel-pipeline sweeps: 4 scheduler workers and 4-way subcompactions
// add the BeforeRun / OutputsOpened cut sites between subcompaction
// output-open, stitch, and manifest install, with sibling workers racing the
// crash. CheckNoOrphanSstFiles runs after every reopen inside the harness.

TEST(CrashRecoveryTest, ParallelCompactionRandomizedCycles) {
  RunHarness("parallel_pm", L0Layout::kPmTable, false, 120,
             /*compaction_workers=*/4, /*max_subcompactions=*/4);
}

TEST(CrashRecoveryTest, ParallelCompactionSsdRandomizedCycles) {
  RunHarness("parallel_ssd", L0Layout::kSstable, false, 60,
             /*compaction_workers=*/4, /*max_subcompactions=*/4);
}

// Non-leveled compaction policies: run stacks mean the manifest carries
// multiple level-tagged runs per partition and maintenance replaces blocks
// MID-stack, so power cuts around the install/manifest commit exercise
// recovery paths the leveled policy never reaches. CheckNoOrphanSstFiles
// still runs after every reopen inside the harness.

TEST(CrashRecoveryTest, TieredPolicyRandomizedCycles) {
  RunHarness("tiered", L0Layout::kPmTable, false, 100,
             /*compaction_workers=*/1, /*max_subcompactions=*/1, "tiered");
}

TEST(CrashRecoveryTest, LazyLevelingPolicyRandomizedCycles) {
  RunHarness("lazy_leveling", L0Layout::kPmTable, false, 100,
             /*compaction_workers=*/1, /*max_subcompactions=*/1,
             "lazy_leveling");
}

// ---------------------------------------------------------------------------
// Sharded engine: cross-shard WriteBatch atomicity under power cuts landed
// between the 2PC phases (tests/sharded_crash_harness.h). 500 + 200
// sharded cycles by default; every remembered batch must recover
// all-or-nothing, and acked cross-shard batches must recover whole.
// ---------------------------------------------------------------------------

ShardedCrashHarnessResult RunShardedHarness(const std::string& name,
                                            uint32_t num_shards, bool atomic,
                                            int default_cycles) {
  ShardedCrashHarnessOptions opts;
  opts.dbname = ::testing::TempDir() + "pmblade_crash_" + name;
  opts.seed = SeedFromEnv();
  opts.cycles = CyclesFromEnv(default_cycles);
  opts.num_shards = num_shards;
  opts.atomic_cross_shard_batches = atomic;
  opts.verbose = getenv("PMBLADE_CRASH_VERBOSE") != nullptr;
  fprintf(stderr, "[sharded crash harness] %s: seed=%llu cycles=%d\n",
          name.c_str(), static_cast<unsigned long long>(opts.seed),
          opts.cycles);
  ShardedCrashHarness harness(opts);
  ShardedCrashHarnessResult result = harness.Run();
  fprintf(stderr,
          "[sharded crash harness] %s: %d cycles (%d syncpoint, %d "
          "between-op), %lld batches (%lld cross-shard)\n",
          name.c_str(), result.cycles_run, result.syncpoint_crashes,
          result.between_op_crashes, result.batches_issued,
          result.cross_shard_batches);
  return result;
}

TEST(ShardedCrashRecoveryTest, CrossShardAtomicityRandomizedCycles) {
#ifndef PMBLADE_SYNC_POINTS
  GTEST_SKIP() << "built without PMBLADE_SYNC_POINTS";
#endif
  ShardedCrashHarnessResult result =
      RunShardedHarness("sharded_2pc", /*num_shards=*/4, /*atomic=*/true,
                        /*default_cycles=*/500);
  EXPECT_TRUE(result.ok())
      << "cycle " << result.failed_cycle << ": " << result.failure
      << "\nreplay: PMBLADE_CRASH_SEED=" << SeedFromEnv();
  EXPECT_GT(result.syncpoint_crashes, 0);
  EXPECT_GT(result.between_op_crashes, 0);
  EXPECT_GT(result.cross_shard_batches, 0);
}

TEST(ShardedCrashRecoveryTest, TwoShardAtomicityRandomizedCycles) {
#ifndef PMBLADE_SYNC_POINTS
  GTEST_SKIP() << "built without PMBLADE_SYNC_POINTS";
#endif
  // Two shards is the tightest topology: every cross-shard batch has
  // exactly one sibling to leave in doubt.
  ShardedCrashHarnessResult result =
      RunShardedHarness("sharded_2pc_2", /*num_shards=*/2, /*atomic=*/true,
                        /*default_cycles=*/200);
  EXPECT_TRUE(result.ok())
      << "cycle " << result.failed_cycle << ": " << result.failure
      << "\nreplay: PMBLADE_CRASH_SEED=" << SeedFromEnv();
  EXPECT_GT(result.cross_shard_batches, 0);
}

// Meta-test: with 2PC disabled (the legacy independent commits) the same
// harness must CATCH the atomicity violation — a power cut between two
// shards' WAL appends leaves a torn batch, or drops an acked cross-shard
// batch whose durability the legacy path never upgraded. If the legacy run
// survives every cycle, the checker has no teeth.
TEST(ShardedCrashRecoveryTest, HarnessCatchesLegacyNonAtomicBatches) {
#ifndef PMBLADE_SYNC_POINTS
  GTEST_SKIP() << "built without PMBLADE_SYNC_POINTS";
#endif
  ShardedCrashHarnessResult result =
      RunShardedHarness("sharded_legacy", /*num_shards=*/4,
                        /*atomic=*/false, /*default_cycles=*/250);
  EXPECT_FALSE(result.ok())
      << "legacy non-atomic cross-shard writes survived every power cut — "
         "the sharded checker has no teeth";
}

// ---------------------------------------------------------------------------
// Meta-test: the harness must CATCH a reintroduced early-WAL-delete bug.
// ---------------------------------------------------------------------------

TEST(CrashRecoveryTest, HarnessCatchesEarlyWalDelete) {
#ifndef PMBLADE_SYNC_POINTS
  GTEST_SKIP() << "built without PMBLADE_SYNC_POINTS";
#else
  const std::string dbname =
      ::testing::TempDir() + "pmblade_crash_early_wal_delete";
  CrashEnv crash_env(PosixEnv(), 42);
  Options options;
  options.env = &crash_env;
  options.raw_env = &crash_env;
  options.memtable_bytes = 16 << 10;
  options.pm_pool_capacity = 32 << 20;
  options.pm_latency.inject_latency = false;
  DestroyDB(options, dbname);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dbname, &db).ok());

  // Acknowledge 50 batches as durable (synced). They live only in the WAL.
  CrashModel model;
  WriteOptions sync_opts;
  sync_opts.sync = true;
  for (int i = 0; i < 50; ++i) {
    ModelBatch batch;
    batch.push_back({false, "key" + std::to_string(i), "durable-value"});
    WriteBatch wb;
    wb.Put(batch[0].key, batch[0].value);
    model.RecordBatch(std::move(batch));
    ASSERT_TRUE(db->Write(sync_opts, &wb).ok());
    model.MarkDurable();
  }

  // The reintroduced bug: when the flush reaches its install point — BEFORE
  // PersistManifest commits the new replay floor — delete the flushed WALs,
  // then the power fails. The surviving (old) manifest still points at the
  // deleted log, whose content exists nowhere else.
  SyncPoint::GetInstance()->SetCallBack(
      "DBImpl::BackgroundFlush:Installed", [&](void*) {
        std::vector<std::string> children;
        EXPECT_TRUE(crash_env.GetChildren(dbname, &children).ok());
        uint64_t newest = 0;
        for (const auto& c : children) {
          if (c.compare(0, 4, "wal-") == 0) {
            newest = std::max<uint64_t>(
                newest, strtoull(c.c_str() + 4, nullptr, 10));
          }
        }
        for (const auto& c : children) {
          if (c.compare(0, 4, "wal-") == 0 &&
              strtoull(c.c_str() + 4, nullptr, 10) != newest) {
            crash_env.RemoveFile(dbname + "/" + c);
          }
        }
        crash_env.PowerCut();
      });
  SyncPoint::GetInstance()->EnableProcessing();

  Status flush_status = db->FlushMemTable();
  EXPECT_FALSE(flush_status.ok()) << "manifest commit after the cut?";

  SyncPoint::GetInstance()->DisableProcessing();
  db.reset();
  SyncPoint::GetInstance()->Reset();

  // Reopen. Either the engine refuses to open, or it opens with the
  // acknowledged-durable keys missing — the model checker must flag it.
  crash_env.ResetState();
  bool caught = false;
  std::string why;
  Status s = DB::Open(options, dbname, &db);
  if (!s.ok()) {
    caught = true;
    why = "open failed: " + s.ToString();
  } else {
    KvMap recovered;
    ASSERT_TRUE(DumpDb(db.get(), &recovered).ok());
    caught = !model.CheckRecovered(recovered, &why);
    if (caught) {
      EXPECT_NE(why.find("lost"), std::string::npos) << why;
    }
  }
  EXPECT_TRUE(caught)
      << "early WAL delete went undetected — the harness has no teeth";

  db.reset();
  DestroyDB(options, dbname);
#endif  // PMBLADE_SYNC_POINTS
}

}  // namespace
}  // namespace test
}  // namespace pmblade
