// Randomized crash-recovery driver shared by tests/crash_recovery_test.cc
// and tools/crash_stress.
//
// Each cycle: open the DB under a CrashEnv, verify the recovered state
// against the CrashModel (tests/test_model.h), run a random Put/Delete/
// write-batch workload with occasional flushes and compactions, then kill
// the "machine" — either between operations or from a callback on a
// randomly chosen SyncPoint inside the write path, flush, manifest commit,
// or compaction — and loop. The power cut drops unsynced file data (with
// optional torn last block) and, in PM mode, scrambles every 8-byte word
// that was stored but never explicitly persisted.
//
// Everything is driven by one seed: the same seed replays the same
// workloads and crash plans (background-thread timing can shift WHERE a
// sync-point countdown lands, but never what the checker accepts).

#ifndef PMBLADE_TESTS_CRASH_HARNESS_H_
#define PMBLADE_TESTS_CRASH_HARNESS_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/db.h"
#include "core/db_impl.h"
#include "core/manifest.h"
#include "env/crash_env.h"
#include "tests/test_model.h"
#include "util/random.h"
#include "util/sync_point.h"

namespace pmblade {
namespace test {

struct CrashHarnessOptions {
  std::string dbname;
  uint64_t seed = 0xb1adeu;   // fixed default: CI failures replay exactly
  int cycles = 100;
  L0Layout l0_layout = L0Layout::kPmTable;
  /// PM persist-granularity faults (Options::pm_crash_sim). Only meaningful
  /// with a PM level-0 layout.
  bool pm_crash_sim = false;
  int max_ops_per_cycle = 120;
  /// Parallel compaction pipeline under test: pool width and key-range
  /// slices per victim (1/1 = the historical single-worker pipeline).
  int compaction_workers = 1;
  int max_subcompactions = 1;
  /// SSD compaction shape under test (Options::compaction_policy): the
  /// tiered/lazy-leveling run stacks put multi-run manifests and mid-stack
  /// block replacement under power cuts.
  std::string compaction_policy = "leveled";
  /// Start from a fresh DB every this many cycles, so state (and dump cost)
  /// stays bounded and empty-DB recovery is exercised too.
  int fresh_db_period = 25;
  bool verbose = false;
  /// Polled between cycles; returning true ends the run early at a cycle
  /// boundary with CrashHarnessResult::interrupted set (the final-reopen
  /// invariants are still checked). Lets crash_stress finish cleanly on
  /// SIGINT/SIGTERM and report the cycles it did complete.
  std::function<bool()> stop_requested;
};

struct CrashHarnessResult {
  int cycles_run = 0;
  int syncpoint_crashes = 0;
  int between_op_crashes = 0;
  long long ops_issued = 0;
  int failed_cycle = -1;
  bool interrupted = false;  // stopped early via stop_requested
  std::string failure;       // empty = every invariant held
  bool ok() const { return failure.empty(); }
};

class CrashHarness {
 public:
  explicit CrashHarness(const CrashHarnessOptions& opts)
      : opts_(opts), rnd_(opts.seed), crash_env_(PosixEnv(), opts.seed) {}

  CrashHarnessResult Run() {
    CrashHarnessResult result;
    Options options = MakeOptions();
    for (int cycle = 0; cycle < opts_.cycles; ++cycle) {
      if (opts_.stop_requested && opts_.stop_requested()) {
        result.interrupted = true;
        break;
      }
      if (cycle % opts_.fresh_db_period == 0) {
        crash_env_.ResetState();
        DestroyDB(options, opts_.dbname);
        model_ = CrashModel();
      }
      if (!RunCycle(options, cycle, &result)) {
        result.failed_cycle = cycle;
        return result;
      }
      ++result.cycles_run;
    }
    // Final reopen: the last crash's image must also check out.
    crash_env_.ResetState();
    std::unique_ptr<DB> db;
    Status s = DB::Open(options, opts_.dbname, &db);
    if (!s.ok()) {
      result.failure = "final reopen failed: " + s.ToString();
      return result;
    }
    std::string why;
    if (!CheckDb(db.get(), &why)) {
      result.failure = "final check: " + why;
      return result;
    }
    if (!CheckNoOrphanSstFiles(&why)) {
      result.failure = "final check: " + why;
      return result;
    }
    db.reset();
    DestroyDB(options, opts_.dbname);
    return result;
  }

 private:
  // Crash sites, grouped so every cycle exercises a named subsystem.
  struct CrashSite {
    const char* point;
    bool needs_flush;       // workload must call FlushMemTable to reach it
    bool needs_compaction;  // workload must call Compact* to reach it
  };
  static const std::vector<CrashSite>& Sites() {
    static const std::vector<CrashSite> sites = {
        {"DBImpl::Write:AfterWalAppend", false, false},
        {"DBImpl::Write:AfterWalSync", false, false},
        {"DBImpl::Write:BeforePublish", false, false},
        {"DBImpl::SwitchMemTable:AfterNewWal", true, false},
        {"DBImpl::BackgroundFlush:Start", true, false},
        {"DBImpl::BackgroundFlush:BuiltTables", true, false},
        {"DBImpl::BackgroundFlush:Installed", true, false},
        {"DBImpl::BackgroundFlush:ManifestCommitted", true, false},
        {"DBImpl::BackgroundFlush:WalsDeleted", true, false},
        {"WriteManifest:AfterTmpWrite", true, false},
        {"WriteManifest:AfterRename", true, false},
        {"PmPool::Allocate:BeforeCommit", true, false},
        {"DBImpl::InternalCompaction:Outputs", false, true},
        {"DBImpl::InternalCompaction:AfterManifest", false, true},
        // Subcompaction pipeline cuts: BeforeRun dies with victim claims
        // held but no output started, AfterRun with every slice output
        // sealed but none opened, OutputsOpened with the outputs opened and
        // stitched but the install/manifest commit not yet run. A crash at
        // any of them must recover with zero orphan .sst files and the
        // pre-compaction state intact.
        {"DBImpl::MajorCompaction:BeforeRun", false, true},
        {"DBImpl::MajorCompaction:AfterRun", false, true},
        {"DBImpl::MajorCompaction:OutputsOpened", false, true},
        {"DBImpl::MajorCompaction:AfterManifest", false, true},
        // Cuts around the background scheduler's job boundaries: BeforeJob
        // dies with work handed off but not started, AfterJob right after a
        // compaction (or its failure cleanup) finished. Flushes are what
        // feed the scheduler, so bias the workload toward them.
        {"CompactionScheduler::BeforeJob", true, false},
        {"CompactionScheduler::AfterJob", true, false},
    };
    return sites;
  }

  Options MakeOptions() {
    Options options;
    options.env = &crash_env_;
    options.raw_env = &crash_env_;  // major compaction I/O must die too
    options.memtable_bytes = 16 << 10;  // rotate often
    options.pm_pool_capacity = 64 << 20;
    options.pm_latency.inject_latency = false;
    options.l0_layout = opts_.l0_layout;
    options.pm_crash_sim = opts_.pm_crash_sim;
    options.partition_boundaries = {Key(kKeyspace / 3),
                                    Key(2 * kKeyspace / 3)};
    options.l0_table_trigger = 4;
    options.compaction_workers = opts_.compaction_workers;
    options.max_subcompactions = opts_.max_subcompactions;
    options.compaction_policy = opts_.compaction_policy;
    if (opts_.compaction_policy != "leveled") {
      // Tight Eq. 3 budgets so background evictions fire within a cycle's
      // few flushes and the run stacks — the thing a non-leveled policy run
      // is here to crash — actually form before the power cut.
      options.cost.tau_m = 8 << 10;
      options.cost.tau_t = 1 << 10;
    }
    if (opts_.max_subcompactions > 1) {
      // Multi-table sorted/level-1 runs so the split rule has boundaries to
      // cut at — otherwise every victim degenerates to one slice.
      options.internal_table_target_bytes = 8 << 10;
    }
    return options;
  }

  std::string Key(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%04d", i);
    return buf;
  }

  bool CheckDb(DB* db, std::string* why) {
    KvMap recovered;
    Status s = DumpDb(db, &recovered);
    if (!s.ok()) {
      *why = "dump failed: " + s.ToString();
      return false;
    }
    return model_.CheckRecovered(recovered, why);
  }

  // Right after a reopen the DB is quiescent (WAL replay never rotates the
  // memtable, so no background flush or compaction is in flight) and startup
  // GC has run: every .sst in the directory must be referenced by the
  // manifest. A file that isn't is an orphan a crashed flush or compaction
  // leaked.
  bool CheckNoOrphanSstFiles(std::string* why) {
    ManifestState state;
    Status s = ReadManifest(&crash_env_, opts_.dbname, &state);
    std::set<uint64_t> referenced;
    if (s.ok()) {
      for (const ManifestPartition& p : state.partitions) {
        referenced.insert(p.unsorted_file_numbers.begin(),
                          p.unsorted_file_numbers.end());
        referenced.insert(p.sorted_file_numbers.begin(),
                          p.sorted_file_numbers.end());
        for (const ManifestSsdRun& run : p.ssd_runs) {
          referenced.insert(run.file_numbers.begin(), run.file_numbers.end());
        }
      }
    } else if (!s.IsNotFound()) {  // no manifest yet: nothing is referenced
      *why = "manifest read failed: " + s.ToString();
      return false;
    }
    std::vector<std::string> children;
    s = crash_env_.GetChildren(opts_.dbname, &children);
    if (!s.ok()) {
      *why = "listing db dir failed: " + s.ToString();
      return false;
    }
    for (const std::string& child : children) {
      if (child.size() <= 4 ||
          child.compare(child.size() - 4, 4, ".sst") != 0) {
        continue;
      }
      const uint64_t number = strtoull(child.c_str(), nullptr, 10);
      if (referenced.count(number) == 0) {
        *why = "orphan sst after reopen: " + child;
        return false;
      }
    }
    return true;
  }

  bool RunCycle(const Options& options, int cycle,
                CrashHarnessResult* result) {
    crash_env_.ResetState();
    std::unique_ptr<DB> db;
    Status s = DB::Open(options, opts_.dbname, &db);
    if (!s.ok()) {
      result->failure = "reopen failed: " + s.ToString();
      return false;
    }
    std::string why;
    if (!CheckDb(db.get(), &why)) {
      result->failure = why;
      return false;
    }
    if (!CheckNoOrphanSstFiles(&why)) {
      result->failure = why;
      return false;
    }

    // ---- crash plan ----
    PowerCutOptions cut;
    cut.keep_unsynced = rnd_.Uniform(2) == 0;
    cut.tear_last_block = cut.keep_unsynced && rnd_.Uniform(2) == 0;
    const uint64_t pm_seed = rnd_.Next();
    const double pm_survival = rnd_.Uniform(3) * 0.5;  // 0, .5 or 1

#ifdef PMBLADE_SYNC_POINTS
    const bool use_syncpoint = rnd_.Uniform(10) < 6;
#else
    const bool use_syncpoint = false;  // release build: between-op cuts only
#endif
    const CrashSite* site = nullptr;
    std::atomic<int> countdown{0};
    std::atomic<bool> crash_fired{false};
    PmPool* pool = static_cast<DBImpl*>(db.get())->pm_pool();
    auto fire = [&] {
      if (crash_fired.exchange(true)) return;
      crash_env_.PowerCut(cut);
      if (opts_.pm_crash_sim) pool->SimulateCrash(pm_seed, pm_survival);
    };
#ifdef PMBLADE_SYNC_POINTS
    if (use_syncpoint) {
      site = &Sites()[rnd_.Uniform(static_cast<uint32_t>(Sites().size()))];
      countdown.store(static_cast<int>(rnd_.Uniform(4)));
      SyncPoint::GetInstance()->SetCallBack(site->point, [&](void*) {
        if (countdown.fetch_sub(1) <= 0) fire();
      });
      SyncPoint::GetInstance()->EnableProcessing();
    }
#endif
    const int planned_ops =
        1 + static_cast<int>(
                rnd_.Uniform(static_cast<uint32_t>(opts_.max_ops_per_cycle)));

    // ---- workload ----
    int op = 0;
    for (; op < planned_ops; ++op) {
      const uint32_t roll = rnd_.Uniform(100);
      Status op_status;
      bool mark_durable_on_ok = false;
      if (roll < 3 || (site != nullptr && site->needs_flush && roll < 15)) {
        op_status = db->FlushMemTable();
        mark_durable_on_ok = true;
      } else if (roll < 5 ||
                 (site != nullptr && site->needs_compaction && roll < 15)) {
        op_status = rnd_.Uniform(2) == 0
                        ? db->CompactLevel0()
                        : db->CompactToLevel1(rnd_.Uniform(2) == 0);
      } else {
        ModelBatch batch = RandomBatch();
        WriteBatch wb;
        for (const ModelOp& mop : batch) {
          if (mop.is_delete) {
            wb.Delete(mop.key);
          } else {
            wb.Put(mop.key, mop.value);
          }
        }
        WriteOptions wopts;
        wopts.sync = rnd_.Uniform(4) == 0;
        model_.RecordBatch(std::move(batch));
        op_status = db->Write(wopts, &wb);
        mark_durable_on_ok = wopts.sync;
      }
      ++result->ops_issued;
      if (op_status.ok()) {
        if (mark_durable_on_ok) model_.MarkDurable();
      } else if (crash_fired.load() || crash_env_.dead() ||
                 (opts_.pm_crash_sim && pool->crash_sim_dead())) {
        break;  // died mid-operation, as planned
      } else {
        result->failure = "unexpected op error (cycle " +
                          std::to_string(cycle) + ", op " +
                          std::to_string(op) + "): " + op_status.ToString();
        Teardown(&db);
        return false;
      }
    }

    // The sync-point may never have been reached; cut between ops instead.
    const bool was_syncpoint_crash = crash_fired.load();
    fire();
    if (was_syncpoint_crash) {
      ++result->syncpoint_crashes;
    } else {
      ++result->between_op_crashes;
    }
    if (opts_.verbose) {
      fprintf(stderr, "cycle %d: %s crash after %d/%d ops (%s)\n", cycle,
              was_syncpoint_crash ? "syncpoint" : "between-op", op,
              planned_ops, site != nullptr ? site->point : "-");
    }
    Teardown(&db);
    return true;
  }

  void Teardown(std::unique_ptr<DB>* db) {
    // Stop sync-point processing BEFORE joining the background thread (a
    // callback capturing this cycle's locals must never fire again), then
    // drop the callbacks once nothing can be running them.
#ifdef PMBLADE_SYNC_POINTS
    SyncPoint::GetInstance()->DisableProcessing();
#endif
    db->reset();
#ifdef PMBLADE_SYNC_POINTS
    SyncPoint::GetInstance()->Reset();
#endif
  }

  ModelBatch RandomBatch() {
    ModelBatch batch;
    const int n = rnd_.Uniform(5) == 0
                      ? 2 + static_cast<int>(rnd_.Uniform(7))
                      : 1;
    for (int i = 0; i < n; ++i) {
      ModelOp op;
      op.key = Key(static_cast<int>(rnd_.Uniform(kKeyspace)));
      op.is_delete = rnd_.Uniform(5) == 0;
      if (!op.is_delete) {
        op.value.assign(rnd_.Uniform(120) + 1,
                        static_cast<char>('a' + rnd_.Uniform(26)));
        // Tag with a nonce so overwrites are distinguishable.
        op.value += "#" + std::to_string(rnd_.Next() % 100000);
      }
      batch.push_back(std::move(op));
    }
    return batch;
  }

  static constexpr int kKeyspace = 400;

  CrashHarnessOptions opts_;
  Random rnd_;
  CrashEnv crash_env_;
  CrashModel model_;
};

}  // namespace test
}  // namespace pmblade

#endif  // PMBLADE_TESTS_CRASH_HARNESS_H_
