// Read-path acceleration tests: bloom filters must never produce a false
// negative across flush, internal compaction, major compaction and reopen
// (for every level-0 layout), absent-key probes must register bloom
// negatives, and the block cache's charge accounting must match its
// capacity through inserts, evictions and arbiter-style SetCapacity
// shrinks.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/db.h"
#include "core/db_impl.h"
#include "sstable/block.h"
#include "sstable/block_cache.h"
#include "sstable/format.h"
#include "util/coding.h"

namespace pmblade {
namespace {

class ReadPathTest : public ::testing::TestWithParam<L0Layout> {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_read_path_test";
    Options defaults;
    DestroyDB(defaults, dbname_);
    options_ = Options();
    options_.l0_layout = GetParam();
    options_.memtable_bytes = 64 << 10;
    options_.pm_pool_capacity = 64 << 20;
    options_.pm_latency.inject_latency = false;
    options_.partition_boundaries = {"key3", "key6"};
  }

  void TearDown() override {
    db_.reset();
    DestroyDB(options_, dbname_);
  }

  void Open() {
    db_.reset();
    std::unique_ptr<DB> db;
    Status s = DB::Open(options_, dbname_, &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_ = std::move(db);
  }

  static std::string Key(int i) { return "key" + std::to_string(i); }
  static std::string Value(int i) { return "value" + std::to_string(i); }

  void LoadKeys(int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i)).ok());
    }
  }

  /// Every loaded key must be found with its latest value — a bloom false
  /// negative would surface here as NOT_FOUND.
  void ExpectAllPresent(int n) {
    for (int i = 0; i < n; ++i) {
      std::string value;
      Status s = db_->Get(ReadOptions(), Key(i), &value);
      ASSERT_TRUE(s.ok()) << Key(i) << ": " << s.ToString();
      EXPECT_EQ(value, Value(i));
    }
  }

  uint64_t Property(const std::string& name) {
    uint64_t value = 0;
    EXPECT_TRUE(db_->GetProperty(name, &value)) << name;
    return value;
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_P(ReadPathTest, NoFalseNegativesAcrossLifecycle) {
  Open();
  const int n = 500;
  LoadKeys(n);

  // In the memtable.
  ExpectAllPresent(n);
  // In unsorted level-0 tables (flush builds the per-table filters).
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ExpectAllPresent(n);
  // In the sorted run (internal compaction rebuilds filters).
  ASSERT_TRUE(db_->CompactLevel0().ok());
  ExpectAllPresent(n);
  // On SSD level-1 (SSTable filter blocks).
  ASSERT_TRUE(db_->CompactToLevel1(false).ok());
  ExpectAllPresent(n);
  // After reopen (PM layouts rebuild their DRAM filters by table scan).
  Open();
  ExpectAllPresent(n);

  // Overwrites and deletes must stay visible through the filters too.
  ASSERT_TRUE(db_->Put(WriteOptions(), Key(1), "rewritten").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), Key(2)).ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), Key(1), &value).ok());
  EXPECT_EQ(value, "rewritten");
  EXPECT_TRUE(db_->Get(ReadOptions(), Key(2), &value).IsNotFound());
}

TEST_P(ReadPathTest, AbsentKeysRegisterBloomNegatives) {
  Open();
  const int n = 500;
  LoadKeys(n);
  ASSERT_TRUE(db_->FlushMemTable().ok());

  uint64_t checks_before = Property("pmblade.bloom-checks");
  uint64_t negatives_before = Property("pmblade.bloom-negatives");
  // Absent keys INTERIOR to the loaded key range ("keyN0z" sorts between
  // keyN0 and keyN1), so they pass the tables' min/max range check and the
  // rejection must come from the bloom filter itself.
  for (int i = 0; i < 200; ++i) {
    std::string value;
    EXPECT_TRUE(
        db_->Get(ReadOptions(), "key" + std::to_string(i) + "0z", &value)
            .IsNotFound());
  }
  EXPECT_GT(Property("pmblade.bloom-checks"), checks_before);
  // With 10 bits/key the false-positive rate is ~1%; 200 absent probes
  // must produce a healthy majority of bloom rejections.
  EXPECT_GE(Property("pmblade.bloom-negatives"), negatives_before + 150);
}

TEST_P(ReadPathTest, FiltersDisabledStillCorrect) {
  options_.bloom_bits_per_key = 0;  // the no-filter baseline
  Open();
  const int n = 200;
  LoadKeys(n);
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ExpectAllPresent(n);
  EXPECT_EQ(Property("pmblade.bloom-checks"), 0u);
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "absent", &value).IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(Layouts, ReadPathTest,
                         ::testing::Values(L0Layout::kPmTable,
                                           L0Layout::kArrayTable,
                                           L0Layout::kSnappyTable,
                                           L0Layout::kSstable),
                         [](const ::testing::TestParamInfo<L0Layout>& info) {
                           switch (info.param) {
                             case L0Layout::kPmTable:
                               return "PmTable";
                             case L0Layout::kArrayTable:
                               return "ArrayTable";
                             case L0Layout::kSnappyTable:
                               return "SnappyTable";
                             case L0Layout::kSnappyGroupTable:
                               return "SnappyGroupTable";
                             case L0Layout::kSstable:
                               return "Sstable";
                           }
                           return "Unknown";
                         });

// -- Block cache charge accounting -----------------------------------------

/// A minimal well-formed block: no entries, one restart slot, so Block's
/// parser accepts it while the test controls the charge exactly.
std::shared_ptr<Block> MakeBlock(size_t payload) {
  std::string raw(payload, 'x');
  PutFixed32(&raw, 0);  // restart[0]
  PutFixed32(&raw, 1);  // num_restarts
  char* heap = new char[raw.size()];
  memcpy(heap, raw.data(), raw.size());
  BlockContents contents;
  contents.data = Slice(heap, raw.size());
  contents.cachable = true;
  contents.heap_allocated = true;
  return std::make_shared<Block>(contents);
}

TEST(BlockCacheTest, ChargeNeverExceedsCapacityAfterEviction) {
  BlockCache cache(64 << 10);
  for (uint64_t i = 0; i < 64; ++i) {
    cache.Insert(1, i * 4096, MakeBlock(4000), 4096);
  }
  EXPECT_LE(cache.TotalCharge(), cache.capacity());
  EXPECT_GT(cache.TotalCharge(), 0u);
}

TEST(BlockCacheTest, LookupTracksHitsAndMisses) {
  BlockCache cache(64 << 10);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert(1, 0, MakeBlock(100), 128);
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(BlockCacheTest, SetCapacityShrinkEvictsToFit) {
  BlockCache cache(256 << 10);
  for (uint64_t i = 0; i < 32; ++i) {
    cache.Insert(1, i * 4096, MakeBlock(4000), 4096);
  }
  uint64_t charge_before = cache.TotalCharge();
  EXPECT_GT(charge_before, static_cast<uint64_t>(16 << 10));

  cache.SetCapacity(16 << 10);
  EXPECT_EQ(cache.capacity(), static_cast<size_t>(16 << 10));
  EXPECT_LE(cache.TotalCharge(), static_cast<size_t>(16 << 10));

  // Growing back re-admits new blocks without disturbing the survivors.
  cache.SetCapacity(256 << 10);
  for (uint64_t i = 0; i < 32; ++i) {
    cache.Insert(2, i * 4096, MakeBlock(4000), 4096);
  }
  EXPECT_LE(cache.TotalCharge(), cache.capacity());
}

TEST(BlockCacheTest, EvictTableDropsOnlyThatTable) {
  BlockCache cache(256 << 10);
  cache.Insert(1, 0, MakeBlock(100), 128);
  cache.Insert(2, 0, MakeBlock(100), 128);
  cache.EvictTable(1);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_NE(cache.Lookup(2, 0), nullptr);
}

}  // namespace
}  // namespace pmblade
