// Background compaction scheduler tests: Algorithm 1 must run OFF the flush
// thread (a stalled writer resumes as soon as the flush commits, not when a
// major compaction finishes), compaction failures must stay retryable
// (never poisoning the sticky background error), multi-victim installs must
// be all-or-nothing, failed runs must leave no orphan files, and failed WAL
// deletions must be retried. Plus unit tests for the scheduler itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/compaction_scheduler.h"
#include "core/db.h"
#include "obs/metrics.h"
#include "tests/fault_env.h"
#include "util/sync_point.h"

namespace pmblade {
namespace {

using test::FaultyEnv;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

uint64_t Prop(DB* db, const std::string& name) {
  uint64_t value = 0;
  EXPECT_TRUE(db->GetProperty(name, &value)) << name;
  return value;
}

std::vector<std::string> SstFiles(const std::string& dbname) {
  std::vector<std::string> children, ssts;
  if (!PosixEnv()->GetChildren(dbname, &children).ok()) return ssts;
  for (const auto& child : children) {
    if (child.size() > 4 &&
        child.compare(child.size() - 4, 4, ".sst") == 0) {
      ssts.push_back(child);
    }
  }
  return ssts;
}

std::vector<std::string> WalFiles(const std::string& dbname) {
  std::vector<std::string> children, wals;
  if (!PosixEnv()->GetChildren(dbname, &children).ok()) return wals;
  for (const auto& child : children) {
    if (child.compare(0, 4, "wal-") == 0) wals.push_back(child);
  }
  return wals;
}

// ---------------------------------------------------------------------------
// CompactionScheduler unit tests (no DB)
// ---------------------------------------------------------------------------

class SchedulerTest : public ::testing::Test {
 protected:
  void TearDown() override {
#ifdef PMBLADE_SYNC_POINTS
    SyncPoint::GetInstance()->Reset();
#endif
  }

  CompactionScheduler::Options SchedOptions() {
    CompactionScheduler::Options opts;
    opts.metrics = &metrics_;
    return opts;
  }

  obs::MetricsRegistry metrics_;
};

TEST_F(SchedulerTest, RetriesFailedChecksUpToLimitThenParks) {
  CompactionScheduler::Options opts = SchedOptions();
  opts.retry_limit = 2;
  CompactionScheduler sched(opts);

  std::atomic<int> attempts{0};
  std::atomic<int> succeed_after{2};  // fail twice, then succeed
  sched.set_check([&]() -> Status {
    int n = attempts.fetch_add(1);
    if (n < succeed_after.load()) return Status::IOError("boom");
    return Status::OK();
  });

  sched.ScheduleCheck();
  sched.WaitIdle();
  EXPECT_EQ(attempts.load(), 3);  // 1 scheduled + 2 self-retries
  EXPECT_EQ(sched.checks_failed(), 2u);
  EXPECT_EQ(sched.retries(), 2u);
  EXPECT_EQ(sched.checks_completed(), 1u);

  // A persistently failing check parks after the cap instead of hot-looping,
  // and the next external ScheduleCheck gets exactly one fresh attempt.
  attempts.store(0);
  succeed_after.store(1000);
  sched.ScheduleCheck();
  sched.WaitIdle();
  EXPECT_EQ(attempts.load(), 3);  // 1 + retry_limit, then parked
  int before = attempts.load();
  sched.ScheduleCheck();
  sched.WaitIdle();
  EXPECT_EQ(attempts.load(), before + 1);  // streak past cap: one attempt
}

TEST_F(SchedulerTest, RunExclusiveReturnsJobStatusAndAbortsAfterShutdown) {
  CompactionScheduler sched(SchedOptions());
  sched.set_check([] { return Status::OK(); });

  EXPECT_TRUE(sched.RunExclusive([] { return Status::OK(); }).ok());
  Status s = sched.RunExclusive([] { return Status::Corruption("bad"); });
  EXPECT_TRUE(s.IsCorruption());
  // Manual failures are the caller's problem, not a scheduler failure.
  EXPECT_EQ(sched.retries(), 0u);

  sched.Shutdown();
  EXPECT_TRUE(sched.RunExclusive([] { return Status::OK(); }).IsAborted());
  // Shutdown is idempotent.
  sched.Shutdown();
}

#ifdef PMBLADE_SYNC_POINTS
TEST_F(SchedulerTest, ScheduleCheckDeduplicatesQueuedChecks) {
  CompactionScheduler sched(SchedOptions());
  std::atomic<int> runs{0};
  sched.set_check([&] {
    ++runs;
    return Status::OK();
  });

  // Hold the worker inside the first check so follow-up ScheduleCheck calls
  // land while one check runs and (at most) one more sits queued.
  std::atomic<bool> in_job{false}, release{false};
  SyncPoint::GetInstance()->SetCallBack(
      "CompactionScheduler::BeforeJob", [&](void*) {
        if (in_job.exchange(true)) return;  // only hold the first job
        while (!release.load()) SleepMs(1);
      });
  SyncPoint::GetInstance()->EnableProcessing();

  sched.ScheduleCheck();
  while (!in_job.load()) SleepMs(1);
  for (int i = 0; i < 5; ++i) sched.ScheduleCheck();  // all dedup into one
  release.store(true);
  sched.WaitIdle();
  EXPECT_EQ(runs.load(), 2);  // the held check + the one deduped follow-up
  SyncPoint::GetInstance()->DisableProcessing();
}
#endif  // PMBLADE_SYNC_POINTS

// ---------------------------------------------------------------------------
// Engine-level tests
// ---------------------------------------------------------------------------

class CompactionSchedulingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_compaction_sched_test";
    options_ = Options();
    options_.memtable_bytes = 4096;
    options_.pm_pool_capacity = 64 << 20;
    options_.pm_latency.inject_latency = false;
    options_.enable_cost_model = false;  // deterministic trigger
    options_.l0_table_trigger = 2;
    DestroyDB(options_, dbname_);
  }

  void TearDown() override {
#ifdef PMBLADE_SYNC_POINTS
    SyncPoint::GetInstance()->DisableProcessing();
#endif
    db_.reset();
#ifdef PMBLADE_SYNC_POINTS
    SyncPoint::GetInstance()->Reset();
#endif
    DestroyDB(options_, dbname_);
  }

  void Open() {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
    db_ = std::move(db);
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
  // A fixture member (not a test-body local) so it outlives db_: the DB's
  // background threads and TearDown's DestroyDB still dereference the env.
  FaultyEnv faulty_{PosixEnv()};
};

#ifdef PMBLADE_SYNC_POINTS

// The bug this PR fixes: Algorithm 1 used to run on the flush thread before
// stalled writers were woken, so one major compaction extended every hard
// write stall by its full duration. Pin the major compaction at AfterRun
// and prove a writer that hard-stalled on a full memtable completes while
// the compaction is still running.
TEST_F(CompactionSchedulingTest, StalledWriterResumesWhileCompactionRuns) {
  Open();
  const std::string value(300, 'v');

  // One L0 table installed; below the trigger of 2, so no compaction yet.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "a" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  // Pin the next major compaction after its merge phase.
  std::atomic<bool> pin_armed{true}, pinned{false}, release{false};
  auto* sp = SyncPoint::GetInstance();
  sp->SetCallBack("DBImpl::MajorCompaction:AfterRun", [&](void*) {
    if (!pin_armed.load()) return;
    pin_armed.store(false);
    pinned.store(true);
    while (!release.load()) SleepMs(1);
  });
  sp->EnableProcessing();

  // Fill the memtable until it rotates again: the flush commits a second
  // table, reaches the trigger, and hands the major compaction to the
  // scheduler, which blocks at the pin.
  for (int i = 0; !pinned.load() && i < 1000; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "b" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(pinned.load());

  // Engineer a hard stall while the compaction is pinned: hold the NEXT
  // background flush until the writer is observed stalling on a full
  // memtable + full imm_.
  const uint64_t base_stalls = Prop(db_.get(), "pmblade.write-stalls");
  std::atomic<bool> hold_flush{true};
  sp->SetCallBack("DBImpl::BackgroundFlush:Start", [&](void*) {
    if (!hold_flush.load()) return;
    while (hold_flush.load() &&
           Prop(db_.get(), "pmblade.write-stalls") <= base_stalls) {
      SleepMs(1);
    }
  });

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    // > 2 memtables' worth: the second rotation finds imm_ still flushing
    // (held above) and hard-stalls until that flush commits.
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          db_->Put(WriteOptions(), "c" + std::to_string(i), value).ok());
    }
    writer_done.store(true);
  });
  writer.join();

  // The writer finished — and the compaction is STILL pinned at AfterRun.
  // Before the fix this join never returned: the stall only broke after the
  // flush thread finished running the compaction inline.
  EXPECT_TRUE(writer_done.load());
  EXPECT_FALSE(release.load());
  EXPECT_GT(Prop(db_.get(), "pmblade.write-stalls"), base_stalls);

  hold_flush.store(false);
  release.store(true);
  ASSERT_TRUE(db_->FlushMemTable().ok());  // drains the scheduler

  std::string got;
  EXPECT_TRUE(db_->Get(ReadOptions(), "a1", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "c39", &got).ok());
}

// Readers and writers keep making progress while a major compaction is
// in flight (pinned artificially long). Run under TSan in CI.
TEST_F(CompactionSchedulingTest, ReadersAndWritersProgressDuringCompaction) {
  options_.memtable_bytes = 32 << 10;
  Open();
  const std::string value(100, 'v');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "key" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  std::atomic<bool> pin_armed{true}, pinned{false}, release{false};
  auto* sp = SyncPoint::GetInstance();
  sp->SetCallBack("DBImpl::MajorCompaction:AfterRun", [&](void*) {
    if (!pin_armed.load()) return;
    pin_armed.store(false);
    pinned.store(true);
    while (!release.load()) SleepMs(1);
  });
  sp->EnableProcessing();

  // Rotate the memtable until the trigger fires and the compaction pins.
  for (int i = 0; !pinned.load() && i < 5000; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "fill" + std::to_string(i),
                         std::string(400, 'f'))
                    .ok());
  }
  ASSERT_TRUE(pinned.load());

  // 150 ms of foreground traffic with the compaction mid-flight.
  std::atomic<bool> stop{false};
  std::atomic<int> reads{0}, writes{0};
  std::vector<uint64_t> write_nanos;
  std::thread reader([&] {
    int i = 0;
    while (!stop.load()) {
      std::string got;
      Status s = db_->Get(ReadOptions(), "key" + std::to_string(i++ % 50),
                          &got);
      ASSERT_TRUE(s.ok() || s.IsNotFound());
      ++reads;
    }
  });
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      auto t0 = std::chrono::steady_clock::now();
      ASSERT_TRUE(
          db_->Put(WriteOptions(), "w" + std::to_string(i++), value).ok());
      write_nanos.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
      ++writes;
    }
  });
  SleepMs(150);
  stop.store(true);
  reader.join();
  writer.join();
  EXPECT_TRUE(pinned.load());
  EXPECT_FALSE(release.load());  // compaction was in flight the whole time

  release.store(true);
  ASSERT_TRUE(db_->FlushMemTable().ok());

  // Progress: both sides completed real work during the compaction, and no
  // single write sat anywhere near the compaction's (pinned, 150 ms+)
  // duration — the old inline behaviour parked writers for all of it.
  EXPECT_GE(reads.load(), 20);
  EXPECT_GE(writes.load(), 20);
  ASSERT_FALSE(write_nanos.empty());
  std::sort(write_nanos.begin(), write_nanos.end());
  uint64_t p99 = write_nanos[write_nanos.size() * 99 / 100];
  EXPECT_LT(p99, 100ull * 1000 * 1000) << "write p99 " << p99 << " ns";
}

// A multi-victim install must be all-or-nothing: when opening the outputs
// fails at victim >0, nothing may be installed, no input table destroyed,
// and no output file left behind; the scheduler's retry then lands the
// whole batch.
TEST_F(CompactionSchedulingTest, MultiVictimInstallIsAtomicWhenOpenFails) {
  options_.env = &faulty_;
  options_.partition_boundaries = {"m"};  // two partitions
  Open();

  const std::string value(300, 'v');
  auto put_both = [&](int round) {
    for (int i = 0; i < 4; ++i) {
      std::string suffix = std::to_string(round) + "_" + std::to_string(i);
      ASSERT_TRUE(db_->Put(WriteOptions(), "a" + suffix, value).ok());
      ASSERT_TRUE(db_->Put(WriteOptions(), "z" + suffix, value).ok());
    }
  };
  put_both(0);
  // Quiesce: the tiny memtable rotates every few puts, so flushes — and the
  // major compactions they trigger — already ran during the puts above.
  // FlushMemTable drains the scheduler; snapshot the settled state that the
  // upcoming FAILED attempt must leave byte-for-byte intact.
  ASSERT_TRUE(db_->FlushMemTable().ok());
  const uint64_t pre_l1 = Prop(db_.get(), "pmblade.l1-bytes");
  const std::vector<std::string> pre_ssts = SstFiles(dbname_);

  // First attempt: both partitions are victims (put_both interleaves keys on
  // each side of the boundary), the first output opens fine and the second
  // open fails. The retry sees a healthy env.
  std::atomic<bool> first_attempt{true};
  std::atomic<bool> hold{true}, holding{false};
  auto* sp = SyncPoint::GetInstance();
  sp->SetCallBack("DBImpl::MajorCompaction:AfterRun", [&](void*) {
    if (first_attempt.exchange(false)) {
      faulty_.random_opens_until_failure.store(1);
    } else {
      faulty_.random_opens_until_failure.store(-1);
    }
  });
  // Hold the scheduler BEFORE the retry so the failed attempt's state is
  // observable from here.
  sp->SetCallBack("CompactionScheduler::BeforeJob", [&](void*) {
    if (first_attempt.load() || !hold.load()) return;
    holding.store(true);
    while (hold.load()) SleepMs(1);
  });
  sp->EnableProcessing();

  // Trigger the compaction via a natural rotation (FlushMemTable would
  // block on the held scheduler).
  const uint64_t base_flushes = Prop(db_.get(), "pmblade.bg-flushes");
  put_both(1);
  for (int i = 0; Prop(db_.get(), "pmblade.bg-flushes") < base_flushes + 1 &&
                  i < 5000;
       ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "mfill" + std::to_string(i), value)
                    .ok());
  }
  for (int i = 0; !holding.load() && i < 5000; ++i) SleepMs(1);
  ASSERT_TRUE(holding.load());

  // Failed attempt, retry not yet run: NOTHING installed (level-1 and the
  // on-disk file set are exactly the pre-failure snapshot — in particular
  // the half-opened outputs were deleted, not leaked), inputs intact, every
  // key still readable.
  EXPECT_GE(Prop(db_.get(), "pmblade.compactions-failed"), 1u);
  EXPECT_EQ(Prop(db_.get(), "pmblade.l1-bytes"), pre_l1);
  EXPECT_EQ(SstFiles(dbname_), pre_ssts);
  EXPECT_GE(Prop(db_.get(), "pmblade.num-unsorted-tables"), 2u);
  std::string got;
  EXPECT_TRUE(db_->Get(ReadOptions(), "a0_0", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "z1_3", &got).ok());

  // Release the retry: the whole batch installs atomically.
  hold.store(false);
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_GT(Prop(db_.get(), "pmblade.l1-bytes"), pre_l1);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      std::string suffix = std::to_string(round) + "_" + std::to_string(i);
      EXPECT_TRUE(db_->Get(ReadOptions(), "a" + suffix, &got).ok());
      EXPECT_TRUE(db_->Get(ReadOptions(), "z" + suffix, &got).ok());
    }
  }
}

#endif  // PMBLADE_SYNC_POINTS

// A compaction I/O failure is retryable: it must never set the sticky
// background error (reserved for flush/WAL/manifest failures), must leave
// no orphan output files, and a later healthy check must succeed.
TEST_F(CompactionSchedulingTest, CompactionFailureDoesNotPoisonWrites) {
  options_.raw_env = &faulty_;  // faults hit ONLY compaction output I/O
  Open();

  const std::string value(300, 'v');
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "a" + std::to_string(i), value).ok());
  }
  // Quiesce (setup puts may already have compacted) and snapshot the state
  // the failed attempts must not disturb.
  ASSERT_TRUE(db_->FlushMemTable().ok());
  const uint64_t pre_l1 = Prop(db_.get(), "pmblade.l1-bytes");
  const std::vector<std::string> pre_ssts = SstFiles(dbname_);

  // Arm: every compaction output write fails, so every check triggered by
  // the next flushes fails (and its bounded retries with it).
  faulty_.writes_until_failure.store(0);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "b" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());  // WaitIdle: failed + retried + parked

  EXPECT_GE(Prop(db_.get(), "pmblade.compactions-failed"), 1u);
  // No assertion on pmblade.compaction-retries here: when a concurrent
  // flush has already queued a fresh check by the time a check fails, the
  // scheduler dedups instead of re-enqueueing (the queued check IS the
  // retry) — common under sanitizer slowdown. The retry counter's
  // semantics are pinned by SchedulerTest.RetriesFailedChecksUpToLimit-
  // ThenParks, where the scheduler is driven without competing flushes.
  // Failed runs left no orphan output files and installed nothing.
  EXPECT_EQ(SstFiles(dbname_), pre_ssts);
  EXPECT_EQ(Prop(db_.get(), "pmblade.l1-bytes"), pre_l1);

  // The DB is NOT poisoned: foreground writes and reads still work.
  ASSERT_TRUE(db_->Put(WriteOptions(), "after", "ok").ok());
  std::string got;
  EXPECT_TRUE(db_->Get(ReadOptions(), "after", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "a3", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "b3", &got).ok());

  // Disarm: the next flush-scheduled check succeeds and lands level-1.
  faulty_.writes_until_failure.store(-1);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "c" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_GT(Prop(db_.get(), "pmblade.l1-bytes"), pre_l1);
  EXPECT_TRUE(db_->Get(ReadOptions(), "a3", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "b3", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "c3", &got).ok());
}

// Flushed-WAL deletion failures are counted and retried after the next
// successful manifest commit instead of silently leaking the file forever.
TEST_F(CompactionSchedulingTest, FailedWalDeletionIsRetried) {
  options_.env = &faulty_;
  options_.l0_table_trigger = 100;  // no compactions in this test
  Open();

  const std::string value(300, 'v');
  ASSERT_TRUE(db_->Put(WriteOptions(), "k1", value).ok());
  faulty_.fail_removes.store(true);
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_GE(Prop(db_.get(), "pmblade.file-gc-failures"), 1u);
  size_t stuck_wals = WalFiles(dbname_).size();
  EXPECT_GE(stuck_wals, 2u);  // the undeletable flushed log + the active one

  faulty_.fail_removes.store(false);
  ASSERT_TRUE(db_->Put(WriteOptions(), "k2", value).ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());  // retries the pending deletion
  EXPECT_LT(WalFiles(dbname_).size(), stuck_wals + 1);
  std::string got;
  EXPECT_TRUE(db_->Get(ReadOptions(), "k1", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "k2", &got).ok());
}

}  // namespace
}  // namespace pmblade
