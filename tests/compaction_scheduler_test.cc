// Background compaction scheduler tests: Algorithm 1 must run OFF the flush
// thread (a stalled writer resumes as soon as the flush commits, not when a
// major compaction finishes), compaction failures must stay retryable
// (never poisoning the sticky background error), multi-victim installs must
// be all-or-nothing, failed runs must leave no orphan files, and failed WAL
// deletions must be retried. Plus unit tests for the scheduler itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/compaction_scheduler.h"
#include "core/db.h"
#include "obs/metrics.h"
#include "tests/fault_env.h"
#include "util/sync_point.h"

namespace pmblade {
namespace {

using test::FaultyEnv;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

uint64_t Prop(DB* db, const std::string& name) {
  uint64_t value = 0;
  EXPECT_TRUE(db->GetProperty(name, &value)) << name;
  return value;
}

std::vector<std::string> SstFiles(const std::string& dbname) {
  std::vector<std::string> children, ssts;
  if (!PosixEnv()->GetChildren(dbname, &children).ok()) return ssts;
  for (const auto& child : children) {
    if (child.size() > 4 &&
        child.compare(child.size() - 4, 4, ".sst") == 0) {
      ssts.push_back(child);
    }
  }
  return ssts;
}

std::vector<std::string> WalFiles(const std::string& dbname) {
  std::vector<std::string> children, wals;
  if (!PosixEnv()->GetChildren(dbname, &children).ok()) return wals;
  for (const auto& child : children) {
    if (child.compare(0, 4, "wal-") == 0) wals.push_back(child);
  }
  return wals;
}

// ---------------------------------------------------------------------------
// CompactionScheduler unit tests (no DB)
// ---------------------------------------------------------------------------

class SchedulerTest : public ::testing::Test {
 protected:
  void TearDown() override {
#ifdef PMBLADE_SYNC_POINTS
    SyncPoint::GetInstance()->Reset();
#endif
  }

  CompactionScheduler::Options SchedOptions() {
    CompactionScheduler::Options opts;
    opts.metrics = &metrics_;
    return opts;
  }

  obs::MetricsRegistry metrics_;
};

TEST_F(SchedulerTest, RetriesFailedChecksUpToLimitThenParks) {
  CompactionScheduler::Options opts = SchedOptions();
  opts.retry_limit = 2;
  CompactionScheduler sched(opts);

  std::atomic<int> attempts{0};
  std::atomic<int> succeed_after{2};  // fail twice, then succeed
  sched.set_check([&]() -> Status {
    int n = attempts.fetch_add(1);
    if (n < succeed_after.load()) return Status::IOError("boom");
    return Status::OK();
  });

  sched.ScheduleCheck();
  sched.WaitIdle();
  EXPECT_EQ(attempts.load(), 3);  // 1 scheduled + 2 self-retries
  EXPECT_EQ(sched.checks_failed(), 2u);
  EXPECT_EQ(sched.retries(), 2u);
  EXPECT_EQ(sched.checks_completed(), 1u);

  // A persistently failing check parks after the cap instead of hot-looping,
  // and the next external ScheduleCheck gets exactly one fresh attempt.
  attempts.store(0);
  succeed_after.store(1000);
  sched.ScheduleCheck();
  sched.WaitIdle();
  EXPECT_EQ(attempts.load(), 3);  // 1 + retry_limit, then parked
  int before = attempts.load();
  sched.ScheduleCheck();
  sched.WaitIdle();
  EXPECT_EQ(attempts.load(), before + 1);  // streak past cap: one attempt
}

// With `workers` = 4, independent checks genuinely overlap: hold every
// check on a latch and verify all four run at once (active() == 4) while a
// fifth stays queued until a slot frees up.
TEST_F(SchedulerTest, PoolRunsChecksConcurrently) {
  CompactionScheduler::Options opts = SchedOptions();
  opts.workers = 4;
  CompactionScheduler sched(opts);
  ASSERT_EQ(sched.workers(), 4);

  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
  sched.set_check([&]() -> Status {
    entered.fetch_add(1);
    while (!release.load()) SleepMs(1);
    return Status::OK();
  });

  // ScheduleCheck dedups only QUEUED checks, so waiting for each one to
  // start before scheduling the next lands one check per worker.
  for (int i = 0; i < 4; ++i) {
    sched.ScheduleCheck();
    for (int spin = 0; entered.load() < i + 1 && spin < 5000; ++spin) {
      SleepMs(1);
    }
    ASSERT_EQ(entered.load(), i + 1);
  }
  EXPECT_EQ(sched.active(), 4);

  // A fifth check queues but cannot start: every worker is busy.
  sched.ScheduleCheck();
  SleepMs(20);
  EXPECT_EQ(entered.load(), 4);
  EXPECT_EQ(sched.QueueDepth(), 5u);

  release.store(true);
  sched.WaitIdle();
  EXPECT_EQ(entered.load(), 5);
  EXPECT_EQ(sched.checks_completed(), 5u);
  EXPECT_EQ(sched.active(), 0);
}

// RunExclusive is a pool-wide barrier: it starts only after every in-flight
// check drains, and no queued check starts while it runs.
TEST_F(SchedulerTest, ManualJobIsPoolWideBarrier) {
  CompactionScheduler::Options opts = SchedOptions();
  opts.workers = 4;
  CompactionScheduler sched(opts);

  std::atomic<int> checks_entered{0};
  std::atomic<bool> release_checks{false};
  sched.set_check([&]() -> Status {
    checks_entered.fetch_add(1);
    while (!release_checks.load()) SleepMs(1);
    return Status::OK();
  });

  // Two checks in flight on two workers.
  for (int i = 0; i < 2; ++i) {
    sched.ScheduleCheck();
    for (int spin = 0; checks_entered.load() < i + 1 && spin < 5000; ++spin) {
      SleepMs(1);
    }
  }
  ASSERT_EQ(checks_entered.load(), 2);

  std::atomic<bool> manual_started{false}, release_manual{false};
  std::thread manual([&] {
    Status s = sched.RunExclusive([&]() -> Status {
      manual_started.store(true);
      while (!release_manual.load()) SleepMs(1);
      return Status::OK();
    });
    EXPECT_TRUE(s.ok());
  });

  // The manual job must wait for the running checks.
  SleepMs(30);
  EXPECT_FALSE(manual_started.load());

  release_checks.store(true);
  for (int spin = 0; !manual_started.load() && spin < 5000; ++spin) {
    SleepMs(1);
  }
  ASSERT_TRUE(manual_started.load());

  // While the manual job runs, a fresh check queues but must not start.
  int entered_before = checks_entered.load();
  sched.ScheduleCheck();
  SleepMs(30);
  EXPECT_EQ(checks_entered.load(), entered_before);

  release_manual.store(true);
  manual.join();
  sched.WaitIdle();
  EXPECT_EQ(checks_entered.load(), entered_before + 1);
}

// Shutdown with the whole pool busy joins every worker, and every queued
// manual waiter is unblocked with Aborted instead of hanging forever.
TEST_F(SchedulerTest, ShutdownDrainsAllWorkers) {
  CompactionScheduler::Options opts = SchedOptions();
  opts.workers = 4;
  CompactionScheduler sched(opts);

  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
  sched.set_check([&]() -> Status {
    entered.fetch_add(1);
    while (!release.load()) SleepMs(1);
    return Status::OK();
  });
  for (int i = 0; i < 4; ++i) {
    sched.ScheduleCheck();
    for (int spin = 0; entered.load() < i + 1 && spin < 5000; ++spin) {
      SleepMs(1);
    }
  }
  ASSERT_EQ(sched.active(), 4);

  // A manual job queued behind the busy pool: it must come back Aborted
  // once Shutdown drops the queue (it never gets to run).
  std::thread manual([&] {
    EXPECT_TRUE(sched.RunExclusive([] { return Status::OK(); }).IsAborted());
  });
  SleepMs(20);

  std::thread shutdown([&] { sched.Shutdown(); });
  SleepMs(20);
  release.store(true);  // in-flight checks finish; workers observe shutdown
  shutdown.join();
  manual.join();
  EXPECT_EQ(entered.load(), 4);
  EXPECT_EQ(sched.active(), 0);
  // Post-shutdown the pool stays safe to poke.
  sched.ScheduleCheck();
  EXPECT_TRUE(sched.RunExclusive([] { return Status::OK(); }).IsAborted());
}

// The failure streak belongs to the check CHAIN, not a worker: a success on
// any worker resets it, so an interleaved healthy check un-parks the chain.
TEST_F(SchedulerTest, AnySuccessResetsFailureStreak) {
  CompactionScheduler::Options opts = SchedOptions();
  opts.retry_limit = 2;
  opts.workers = 2;
  CompactionScheduler sched(opts);

  std::atomic<bool> fail{true};
  std::atomic<int> attempts{0};
  sched.set_check([&]() -> Status {
    attempts.fetch_add(1);
    return fail.load() ? Status::IOError("poisoned") : Status::OK();
  });

  sched.ScheduleCheck();
  sched.WaitIdle();
  EXPECT_EQ(attempts.load(), 3);  // 1 + retry_limit, then parked

  // One healthy check resets the streak...
  fail.store(false);
  sched.ScheduleCheck();
  sched.WaitIdle();
  EXPECT_EQ(sched.retries(), 2u);

  // ...so the next failing chain gets its full retry budget again.
  fail.store(true);
  attempts.store(0);
  sched.ScheduleCheck();
  sched.WaitIdle();
  EXPECT_EQ(attempts.load(), 3);
}

TEST_F(SchedulerTest, RunExclusiveReturnsJobStatusAndAbortsAfterShutdown) {
  CompactionScheduler sched(SchedOptions());
  sched.set_check([] { return Status::OK(); });

  EXPECT_TRUE(sched.RunExclusive([] { return Status::OK(); }).ok());
  Status s = sched.RunExclusive([] { return Status::Corruption("bad"); });
  EXPECT_TRUE(s.IsCorruption());
  // Manual failures are the caller's problem, not a scheduler failure.
  EXPECT_EQ(sched.retries(), 0u);

  sched.Shutdown();
  EXPECT_TRUE(sched.RunExclusive([] { return Status::OK(); }).IsAborted());
  // Shutdown is idempotent.
  sched.Shutdown();
}

#ifdef PMBLADE_SYNC_POINTS
TEST_F(SchedulerTest, ScheduleCheckDeduplicatesQueuedChecks) {
  CompactionScheduler sched(SchedOptions());
  std::atomic<int> runs{0};
  sched.set_check([&] {
    ++runs;
    return Status::OK();
  });

  // Hold the worker inside the first check so follow-up ScheduleCheck calls
  // land while one check runs and (at most) one more sits queued.
  std::atomic<bool> in_job{false}, release{false};
  SyncPoint::GetInstance()->SetCallBack(
      "CompactionScheduler::BeforeJob", [&](void*) {
        if (in_job.exchange(true)) return;  // only hold the first job
        while (!release.load()) SleepMs(1);
      });
  SyncPoint::GetInstance()->EnableProcessing();

  sched.ScheduleCheck();
  while (!in_job.load()) SleepMs(1);
  for (int i = 0; i < 5; ++i) sched.ScheduleCheck();  // all dedup into one
  release.store(true);
  sched.WaitIdle();
  EXPECT_EQ(runs.load(), 2);  // the held check + the one deduped follow-up
  SyncPoint::GetInstance()->DisableProcessing();
}
#endif  // PMBLADE_SYNC_POINTS

// ---------------------------------------------------------------------------
// Engine-level tests
// ---------------------------------------------------------------------------

class CompactionSchedulingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "pmblade_compaction_sched_test";
    options_ = Options();
    options_.memtable_bytes = 4096;
    options_.pm_pool_capacity = 64 << 20;
    options_.pm_latency.inject_latency = false;
    options_.enable_cost_model = false;  // deterministic trigger
    options_.l0_table_trigger = 2;
    DestroyDB(options_, dbname_);
  }

  void TearDown() override {
#ifdef PMBLADE_SYNC_POINTS
    SyncPoint::GetInstance()->DisableProcessing();
#endif
    db_.reset();
#ifdef PMBLADE_SYNC_POINTS
    SyncPoint::GetInstance()->Reset();
#endif
    DestroyDB(options_, dbname_);
  }

  void Open() {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db).ok());
    db_ = std::move(db);
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
  // A fixture member (not a test-body local) so it outlives db_: the DB's
  // background threads and TearDown's DestroyDB still dereference the env.
  FaultyEnv faulty_{PosixEnv()};
};

#ifdef PMBLADE_SYNC_POINTS

// The bug this PR fixes: Algorithm 1 used to run on the flush thread before
// stalled writers were woken, so one major compaction extended every hard
// write stall by its full duration. Pin the major compaction at AfterRun
// and prove a writer that hard-stalled on a full memtable completes while
// the compaction is still running.
TEST_F(CompactionSchedulingTest, StalledWriterResumesWhileCompactionRuns) {
  Open();
  const std::string value(300, 'v');

  // One L0 table installed; below the trigger of 2, so no compaction yet.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "a" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  // Pin the next major compaction after its merge phase.
  std::atomic<bool> pin_armed{true}, pinned{false}, release{false};
  auto* sp = SyncPoint::GetInstance();
  sp->SetCallBack("DBImpl::MajorCompaction:AfterRun", [&](void*) {
    if (!pin_armed.load()) return;
    pin_armed.store(false);
    pinned.store(true);
    while (!release.load()) SleepMs(1);
  });
  sp->EnableProcessing();

  // Fill the memtable until it rotates again: the flush commits a second
  // table, reaches the trigger, and hands the major compaction to the
  // scheduler, which blocks at the pin.
  for (int i = 0; !pinned.load() && i < 1000; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "b" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(pinned.load());

  // Engineer a hard stall while the compaction is pinned: hold the NEXT
  // background flush until the writer is observed stalling on a full
  // memtable + full imm_.
  const uint64_t base_stalls = Prop(db_.get(), "pmblade.write-stalls");
  std::atomic<bool> hold_flush{true};
  sp->SetCallBack("DBImpl::BackgroundFlush:Start", [&](void*) {
    if (!hold_flush.load()) return;
    while (hold_flush.load() &&
           Prop(db_.get(), "pmblade.write-stalls") <= base_stalls) {
      SleepMs(1);
    }
  });

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    // > 2 memtables' worth: the second rotation finds imm_ still flushing
    // (held above) and hard-stalls until that flush commits.
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          db_->Put(WriteOptions(), "c" + std::to_string(i), value).ok());
    }
    writer_done.store(true);
  });
  writer.join();

  // The writer finished — and the compaction is STILL pinned at AfterRun.
  // Before the fix this join never returned: the stall only broke after the
  // flush thread finished running the compaction inline.
  EXPECT_TRUE(writer_done.load());
  EXPECT_FALSE(release.load());
  EXPECT_GT(Prop(db_.get(), "pmblade.write-stalls"), base_stalls);

  hold_flush.store(false);
  release.store(true);
  ASSERT_TRUE(db_->FlushMemTable().ok());  // drains the scheduler

  std::string got;
  EXPECT_TRUE(db_->Get(ReadOptions(), "a1", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "c39", &got).ok());
}

// Readers and writers keep making progress while a major compaction is
// in flight (pinned artificially long). Run under TSan in CI.
TEST_F(CompactionSchedulingTest, ReadersAndWritersProgressDuringCompaction) {
  options_.memtable_bytes = 32 << 10;
  Open();
  const std::string value(100, 'v');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "key" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  std::atomic<bool> pin_armed{true}, pinned{false}, release{false};
  auto* sp = SyncPoint::GetInstance();
  sp->SetCallBack("DBImpl::MajorCompaction:AfterRun", [&](void*) {
    if (!pin_armed.load()) return;
    pin_armed.store(false);
    pinned.store(true);
    while (!release.load()) SleepMs(1);
  });
  sp->EnableProcessing();

  // Rotate the memtable until the trigger fires and the compaction pins.
  for (int i = 0; !pinned.load() && i < 5000; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "fill" + std::to_string(i),
                         std::string(400, 'f'))
                    .ok());
  }
  ASSERT_TRUE(pinned.load());

  // 150 ms of foreground traffic with the compaction mid-flight.
  std::atomic<bool> stop{false};
  std::atomic<int> reads{0}, writes{0};
  std::vector<uint64_t> write_nanos;
  std::thread reader([&] {
    int i = 0;
    while (!stop.load()) {
      std::string got;
      Status s = db_->Get(ReadOptions(), "key" + std::to_string(i++ % 50),
                          &got);
      ASSERT_TRUE(s.ok() || s.IsNotFound());
      ++reads;
    }
  });
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      auto t0 = std::chrono::steady_clock::now();
      ASSERT_TRUE(
          db_->Put(WriteOptions(), "w" + std::to_string(i++), value).ok());
      write_nanos.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
      ++writes;
    }
  });
  SleepMs(150);
  stop.store(true);
  reader.join();
  writer.join();
  EXPECT_TRUE(pinned.load());
  EXPECT_FALSE(release.load());  // compaction was in flight the whole time

  release.store(true);
  ASSERT_TRUE(db_->FlushMemTable().ok());

  // Progress: both sides completed real work during the compaction, and no
  // single write sat anywhere near the compaction's (pinned, 150 ms+)
  // duration — the old inline behaviour parked writers for all of it.
  EXPECT_GE(reads.load(), 20);
  EXPECT_GE(writes.load(), 20);
  ASSERT_FALSE(write_nanos.empty());
  std::sort(write_nanos.begin(), write_nanos.end());
  uint64_t p99 = write_nanos[write_nanos.size() * 99 / 100];
  EXPECT_LT(p99, 100ull * 1000 * 1000) << "write p99 " << p99 << " ns";
}

// A multi-victim install must be all-or-nothing: when opening the outputs
// fails at victim >0, nothing may be installed, no input table destroyed,
// and no output file left behind; the scheduler's retry then lands the
// whole batch.
TEST_F(CompactionSchedulingTest, MultiVictimInstallIsAtomicWhenOpenFails) {
  options_.env = &faulty_;
  options_.partition_boundaries = {"m"};  // two partitions
  Open();

  const std::string value(300, 'v');
  auto put_both = [&](int round) {
    for (int i = 0; i < 4; ++i) {
      std::string suffix = std::to_string(round) + "_" + std::to_string(i);
      ASSERT_TRUE(db_->Put(WriteOptions(), "a" + suffix, value).ok());
      ASSERT_TRUE(db_->Put(WriteOptions(), "z" + suffix, value).ok());
    }
  };
  put_both(0);
  // Quiesce: the tiny memtable rotates every few puts, so flushes — and the
  // major compactions they trigger — already ran during the puts above.
  // FlushMemTable drains the scheduler; snapshot the settled state that the
  // upcoming FAILED attempt must leave byte-for-byte intact.
  ASSERT_TRUE(db_->FlushMemTable().ok());
  const uint64_t pre_l1 = Prop(db_.get(), "pmblade.l1-bytes");
  const std::vector<std::string> pre_ssts = SstFiles(dbname_);

  // First attempt: both partitions are victims (put_both interleaves keys on
  // each side of the boundary), the first output opens fine and the second
  // open fails. The retry sees a healthy env.
  std::atomic<bool> first_attempt{true};
  std::atomic<bool> hold{true}, holding{false};
  auto* sp = SyncPoint::GetInstance();
  sp->SetCallBack("DBImpl::MajorCompaction:AfterRun", [&](void*) {
    if (first_attempt.exchange(false)) {
      faulty_.random_opens_until_failure.store(1);
    } else {
      faulty_.random_opens_until_failure.store(-1);
    }
  });
  // Hold the scheduler BEFORE the retry so the failed attempt's state is
  // observable from here.
  sp->SetCallBack("CompactionScheduler::BeforeJob", [&](void*) {
    if (first_attempt.load() || !hold.load()) return;
    holding.store(true);
    while (hold.load()) SleepMs(1);
  });
  sp->EnableProcessing();

  // Trigger the compaction via a natural rotation (FlushMemTable would
  // block on the held scheduler).
  const uint64_t base_flushes = Prop(db_.get(), "pmblade.bg-flushes");
  put_both(1);
  for (int i = 0; Prop(db_.get(), "pmblade.bg-flushes") < base_flushes + 1 &&
                  i < 5000;
       ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "mfill" + std::to_string(i), value)
                    .ok());
  }
  for (int i = 0; !holding.load() && i < 5000; ++i) SleepMs(1);
  ASSERT_TRUE(holding.load());

  // Failed attempt, retry not yet run: NOTHING installed (level-1 and the
  // on-disk file set are exactly the pre-failure snapshot — in particular
  // the half-opened outputs were deleted, not leaked), inputs intact, every
  // key still readable.
  EXPECT_GE(Prop(db_.get(), "pmblade.compactions-failed"), 1u);
  EXPECT_EQ(Prop(db_.get(), "pmblade.l1-bytes"), pre_l1);
  EXPECT_EQ(SstFiles(dbname_), pre_ssts);
  EXPECT_GE(Prop(db_.get(), "pmblade.num-unsorted-tables"), 2u);
  std::string got;
  EXPECT_TRUE(db_->Get(ReadOptions(), "a0_0", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "z1_3", &got).ok());

  // Release the retry: the whole batch installs atomically.
  hold.store(false);
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_GT(Prop(db_.get(), "pmblade.l1-bytes"), pre_l1);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      std::string suffix = std::to_string(round) + "_" + std::to_string(i);
      EXPECT_TRUE(db_->Get(ReadOptions(), "a" + suffix, &got).ok());
      EXPECT_TRUE(db_->Get(ReadOptions(), "z" + suffix, &got).ok());
    }
  }
}

// Claim exclusivity under a 4-worker pool: pin one check's major compaction
// mid-flight (its claim on the victim partition held the whole time) and
// prove that (1) a sibling worker compacts the OTHER partition during the
// overlap, and (2) no overlapping check ever claims the pinned partition.
TEST_F(CompactionSchedulingTest, SiblingWorkersClaimDisjointPartitions) {
  options_.compaction_workers = 4;
  options_.partition_boundaries = {"m"};  // partition 0: [..m), 1: [m..)
  Open();
  const std::string value(300, 'v');

  std::mutex mu;
  std::vector<uint64_t> pinned_ids;                      // guarded by mu
  std::vector<std::vector<uint64_t>> overlap_claims;     // guarded by mu
  std::atomic<bool> pinned{false}, release{false};
  auto* sp = SyncPoint::GetInstance();
  sp->SetCallBack("DBImpl::MajorCompaction:BeforeRun", [&](void* arg) {
    auto* ids = static_cast<std::vector<uint64_t>*>(arg);
    if (!pinned.exchange(true)) {
      {
        std::lock_guard<std::mutex> lock(mu);
        pinned_ids = *ids;
      }
      while (!release.load()) SleepMs(1);
    }
  });
  sp->SetCallBack("DBImpl::CompactionCheck:Claimed", [&](void* arg) {
    auto* ids = static_cast<std::vector<uint64_t>*>(arg);
    std::lock_guard<std::mutex> lock(mu);
    if (pinned.load() && !release.load() && !pinned_ids.empty()) {
      overlap_claims.push_back(*ids);
    }
  });
  sp->EnableProcessing();

  // Fill partition 0 until its major compaction pins.
  for (int i = 0; !pinned.load() && i < 5000; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "a" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(pinned.load());
  const uint64_t l1_during = Prop(db_.get(), "pmblade.l1-bytes");

  // With partition 0's claim held, fill partition 1: a sibling worker must
  // claim it (0 is filtered as held) and land its level-1 install while the
  // first check is still pinned.
  bool sibling_compacted = false;
  for (int i = 0; i < 20000 && !sibling_compacted; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "z" + std::to_string(i), value).ok());
    if (i % 16 == 0) {
      sibling_compacted = Prop(db_.get(), "pmblade.l1-bytes") > l1_during;
    }
  }
  EXPECT_TRUE(sibling_compacted);
  EXPECT_FALSE(release.load());  // the first check never finished

  release.store(true);
  ASSERT_TRUE(db_->FlushMemTable().ok());

  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_FALSE(pinned_ids.empty());
    ASSERT_FALSE(overlap_claims.empty());  // siblings really did claim
    for (const auto& ids : overlap_claims) {
      for (uint64_t id : ids) {
        for (uint64_t held : pinned_ids) {
          EXPECT_NE(id, held) << "overlapping check claimed a held partition";
        }
      }
    }
  }
  std::string got;
  EXPECT_TRUE(db_->Get(ReadOptions(), "a0", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "z0", &got).ok());
}

// Retry/park isolation: a partition whose compaction output writes always
// fail retries and parks its OWN chain, while a sibling worker lands the
// other partition's compaction during the overlap, foreground writes stay
// healthy (no sticky background error), and healing the env recovers the
// poisoned partition.
TEST_F(CompactionSchedulingTest, PoisonedPartitionDoesNotParkSiblings) {
  options_.compaction_workers = 2;
  options_.partition_boundaries = {"m"};  // partition 0: [..m), 1: [m..)
  options_.raw_env = &faulty_;  // faults hit ONLY compaction output I/O
  Open();
  const std::string value(300, 'v');

  // The first major of the fill pins at BeforeRun; only "a..." keys exist
  // yet, so its victim set identifies the to-be-poisoned partition (ids are
  // allocated by the engine, not position — don't hardcode one). On release
  // it arms the write fault, so that run — and every retry of the chain,
  // which re-fires BeforeRun with the poisoned partition in its victim set —
  // fails. Checks over the sibling alone disarm, so it runs clean.
  std::atomic<bool> heal{false};
  std::atomic<bool> pinned{false}, release{false};
  std::atomic<uint64_t> poisoned_id{UINT64_MAX};
  auto* sp = SyncPoint::GetInstance();
  sp->SetCallBack("DBImpl::MajorCompaction:BeforeRun", [&](void* arg) {
    auto* ids = static_cast<std::vector<uint64_t>*>(arg);
    if (!pinned.exchange(true)) {
      poisoned_id.store(ids->front());
      while (!release.load()) SleepMs(1);
      faulty_.writes_until_failure.store(0);
      return;
    }
    bool has_poisoned = std::find(ids->begin(), ids->end(),
                                  poisoned_id.load()) != ids->end();
    if (heal.load()) {
      faulty_.writes_until_failure.store(-1);
      return;
    }
    if (!has_poisoned) {
      // Clean sibling checks disarm only while the poison is still pinned;
      // once released, defusing here would race the poisoned run's output
      // writes (a sibling caught by the armed fault fails too — equally
      // retryable, and the assertions below only need SOME failure).
      if (!release.load()) faulty_.writes_until_failure.store(-1);
      return;
    }
    faulty_.writes_until_failure.store(0);
  });
  sp->EnableProcessing();

  // Fill partition 0 until its (to-be-poisoned) major pins.
  for (int i = 0; !pinned.load() && i < 5000; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "a" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(pinned.load());
  const uint64_t l1_before = Prop(db_.get(), "pmblade.l1-bytes");

  // Sibling progress while the poisoned chain is in flight.
  bool sibling_compacted = false;
  for (int i = 0; i < 20000 && !sibling_compacted; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "z" + std::to_string(i), value).ok());
    if (i % 16 == 0) {
      sibling_compacted = Prop(db_.get(), "pmblade.l1-bytes") > l1_before;
    }
  }
  EXPECT_TRUE(sibling_compacted);
  const uint64_t l1_sibling = Prop(db_.get(), "pmblade.l1-bytes");

  // Release the pin: partition 0's run now fails, and its bounded retries
  // fail with it until the chain parks.
  const uint64_t base_failed = Prop(db_.get(), "pmblade.compactions-failed");
  release.store(true);
  for (int i = 0;
       Prop(db_.get(), "pmblade.compactions-failed") <= base_failed &&
       i < 10000;
       ++i) {
    SleepMs(1);
  }
  EXPECT_GT(Prop(db_.get(), "pmblade.compactions-failed"), base_failed);

  // The DB is not poisoned: foreground traffic works, the sibling's install
  // stuck, and nothing of partition 0 was lost.
  ASSERT_TRUE(db_->Put(WriteOptions(), "after", "ok").ok());
  std::string got;
  EXPECT_TRUE(db_->Get(ReadOptions(), "after", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "a0", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "z0", &got).ok());
  EXPECT_GE(Prop(db_.get(), "pmblade.l1-bytes"), l1_sibling);

  // Heal: the next fresh check compacts partition 0 cleanly.
  heal.store(true);
  faulty_.writes_until_failure.store(-1);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "b" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_GT(Prop(db_.get(), "pmblade.l1-bytes"), l1_sibling);
  EXPECT_TRUE(db_->Get(ReadOptions(), "a0", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "b0", &got).ok());
}

#endif  // PMBLADE_SYNC_POINTS

// Gauge/counter consistency under concurrent scheduling — the single-worker
// scheduler read queued/running state without the lock in places; this
// hammers ScheduleCheck from several threads while polling the
// introspection surface, and then checks exact conservation. Run under
// TSan in CI.
TEST_F(SchedulerTest, GaugesStayConsistentUnderConcurrentScheduling) {
  CompactionScheduler::Options opts = SchedOptions();
  opts.workers = 2;
  CompactionScheduler sched(opts);

  std::atomic<int> runs{0};
  sched.set_check([&]() -> Status {
    runs.fetch_add(1);
    SleepMs(1);
    return Status::OK();
  });

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      // Each accessor takes the scheduler lock independently, so no
      // cross-call invariant holds from out here (a job can finish between
      // two reads); assert per-read bounds and let TSan watch the
      // internals the calls touch.
      int active = sched.active();
      EXPECT_GE(active, 0);
      EXPECT_LE(active, sched.workers());
      EXPECT_LE(sched.QueueDepth(), 200u + 2u);  // <= total scheduled + pool
      (void)sched.running();
    }
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        sched.ScheduleCheck();
        SleepMs(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  sched.WaitIdle();
  stop.store(true);
  poller.join();

  EXPECT_EQ(sched.QueueDepth(), 0u);
  EXPECT_EQ(sched.active(), 0);
  EXPECT_FALSE(sched.running());
  EXPECT_GE(runs.load(), 1);
  EXPECT_EQ(sched.checks_completed(), static_cast<uint64_t>(runs.load()));
  EXPECT_EQ(sched.checks_failed(), 0u);
}

// A compaction I/O failure is retryable: it must never set the sticky
// background error (reserved for flush/WAL/manifest failures), must leave
// no orphan output files, and a later healthy check must succeed.
TEST_F(CompactionSchedulingTest, CompactionFailureDoesNotPoisonWrites) {
  options_.raw_env = &faulty_;  // faults hit ONLY compaction output I/O
  Open();

  const std::string value(300, 'v');
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "a" + std::to_string(i), value).ok());
  }
  // Quiesce (setup puts may already have compacted) and snapshot the state
  // the failed attempts must not disturb.
  ASSERT_TRUE(db_->FlushMemTable().ok());
  const uint64_t pre_l1 = Prop(db_.get(), "pmblade.l1-bytes");
  const std::vector<std::string> pre_ssts = SstFiles(dbname_);

  // Arm: every compaction output write fails, so every check triggered by
  // the next flushes fails (and its bounded retries with it).
  faulty_.writes_until_failure.store(0);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "b" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());  // WaitIdle: failed + retried + parked

  EXPECT_GE(Prop(db_.get(), "pmblade.compactions-failed"), 1u);
  // No assertion on pmblade.compaction-retries here: when a concurrent
  // flush has already queued a fresh check by the time a check fails, the
  // scheduler dedups instead of re-enqueueing (the queued check IS the
  // retry) — common under sanitizer slowdown. The retry counter's
  // semantics are pinned by SchedulerTest.RetriesFailedChecksUpToLimit-
  // ThenParks, where the scheduler is driven without competing flushes.
  // Failed runs left no orphan output files and installed nothing.
  EXPECT_EQ(SstFiles(dbname_), pre_ssts);
  EXPECT_EQ(Prop(db_.get(), "pmblade.l1-bytes"), pre_l1);

  // The DB is NOT poisoned: foreground writes and reads still work.
  ASSERT_TRUE(db_->Put(WriteOptions(), "after", "ok").ok());
  std::string got;
  EXPECT_TRUE(db_->Get(ReadOptions(), "after", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "a3", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "b3", &got).ok());

  // Disarm: the next flush-scheduled check succeeds and lands level-1.
  faulty_.writes_until_failure.store(-1);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "c" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_GT(Prop(db_.get(), "pmblade.l1-bytes"), pre_l1);
  EXPECT_TRUE(db_->Get(ReadOptions(), "a3", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "b3", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "c3", &got).ok());
}

// Flushed-WAL deletion failures are counted and retried after the next
// successful manifest commit instead of silently leaking the file forever.
TEST_F(CompactionSchedulingTest, FailedWalDeletionIsRetried) {
  options_.env = &faulty_;
  options_.l0_table_trigger = 100;  // no compactions in this test
  Open();

  const std::string value(300, 'v');
  ASSERT_TRUE(db_->Put(WriteOptions(), "k1", value).ok());
  faulty_.fail_removes.store(true);
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_GE(Prop(db_.get(), "pmblade.file-gc-failures"), 1u);
  size_t stuck_wals = WalFiles(dbname_).size();
  EXPECT_GE(stuck_wals, 2u);  // the undeletable flushed log + the active one

  faulty_.fail_removes.store(false);
  ASSERT_TRUE(db_->Put(WriteOptions(), "k2", value).ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());  // retries the pending deletion
  EXPECT_LT(WalFiles(dbname_).size(), stuck_wals + 1);
  std::string got;
  EXPECT_TRUE(db_->Get(ReadOptions(), "k1", &got).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "k2", &got).ok());
}

}  // namespace
}  // namespace pmblade
