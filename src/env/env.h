// Filesystem abstraction (LevelDB-style Env): sequential / random-access /
// writable files plus directory operations. The engine talks only to Env, so
// the SSD latency model can be injected transparently (see sim_env.h).

#ifndef PMBLADE_ENV_ENV_H_
#define PMBLADE_ENV_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace pmblade {

/// Read-to-end file handle used by WAL/manifest replay.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes. `*result` points into `scratch` (which must have
  /// room for n bytes). A short/empty result at EOF is not an error.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

/// Positional-read file handle used by table readers. Thread-safe.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
};

/// Append-only file handle used by table builders, WAL and manifest writers.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  /// Durably persists everything appended so far.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  /// Recursively deletes a directory tree (test/bench convenience).
  Status RemoveDirRecursively(const std::string& dirname);
};

/// The process-wide POSIX Env; singleton. No latency injection.
Env* PosixEnv();

/// Convenience: reads the whole file into *data.
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

/// Convenience: writes (replaces) the file with `data`, syncing it.
Status WriteStringToFile(Env* env, const Slice& data,
                         const std::string& fname);

}  // namespace pmblade

#endif  // PMBLADE_ENV_ENV_H_
