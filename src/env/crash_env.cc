#include "env/crash_env.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>

namespace pmblade {

namespace {

// Damage is applied to the real on-disk files (the base env is POSIX-backed
// by contract), bypassing the Env interface so it works while the env is
// already marked dead.
void TruncateOnDisk(const std::string& fname, uint64_t size) {
  ::truncate(fname.c_str(), static_cast<off_t>(size));
}

void CorruptByteOnDisk(const std::string& fname, uint64_t offset,
                       char xor_mask) {
  int fd = ::open(fname.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return;
  char b = 0;
  if (::pread(fd, &b, 1, static_cast<off_t>(offset)) == 1) {
    b ^= xor_mask;
    ::pwrite(fd, &b, 1, static_cast<off_t>(offset));
  }
  ::close(fd);
}

}  // namespace

/// Write handle that forwards to the base file but flushes each append, so
/// the on-disk length always matches the tracked length and PowerCut can
/// truncate to any byte inside it.
class CrashEnv::CrashWritableFile final : public WritableFile {
 public:
  CrashWritableFile(std::string fname, std::unique_ptr<WritableFile> base,
                    CrashEnv* env)
      : fname_(std::move(fname)), base_(std::move(base)), env_(env) {}
  ~CrashWritableFile() override {
    if (base_ != nullptr) Close();
  }

  Status Append(const Slice& data) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->dead_) return env_->DeadError();
    PMBLADE_RETURN_IF_ERROR(base_->Append(data));
    // Push it to the kernel now: the base file's user-space buffer must stay
    // empty, otherwise a PowerCut truncation could be undone by a later
    // buffer flush from a closing handle.
    PMBLADE_RETURN_IF_ERROR(base_->Flush());
    env_->files_[fname_].size += data.size();
    return Status::OK();
  }

  Status Flush() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->dead_) return env_->DeadError();
    return base_->Flush();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->dead_) return env_->DeadError();
    PMBLADE_RETURN_IF_ERROR(base_->Sync());
    FileState& st = env_->files_[fname_];
    st.synced_size = st.size;
    return Status::OK();
  }

  Status Close() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    Status s = base_->Close();  // buffer is empty; releases the fd only
    base_.reset();
    return env_->dead_ ? env_->DeadError() : s;
  }

 private:
  std::string fname_;
  std::unique_ptr<WritableFile> base_;
  CrashEnv* env_;
};

CrashEnv::CrashEnv(Env* base, uint64_t seed) : base_(base), rnd_(seed) {}

void CrashEnv::PowerCut(const PowerCutOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return;
  dead_ = true;
  for (const auto& [fname, st] : files_) {
    uint64_t keep = st.synced_size;
    const uint64_t unsynced = st.size - st.synced_size;
    if (options.keep_unsynced && unsynced > 0) {
      keep += rnd_.Uniform(unsynced + 1);
    }
    TruncateOnDisk(fname, keep);
    if (options.tear_last_block && keep > st.synced_size) {
      // Partially-programmed final sector: scribble a few bytes of the kept
      // unsynced tail. Never touches the synced prefix.
      const uint64_t lo = std::max<uint64_t>(
          st.synced_size, keep > 512 ? keep - 512 : 0);
      const size_t n = 1 + rnd_.Uniform(options.tear_max_bytes);
      for (size_t i = 0; i < n; ++i) {
        const uint64_t off = lo + rnd_.Uniform(keep - lo);
        CorruptByteOnDisk(fname, off,
                          static_cast<char>(1 + rnd_.Uniform(255)));
      }
    }
  }
}

void CrashEnv::ResetState() {
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
  dead_ = false;
}

bool CrashEnv::dead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

uint64_t CrashEnv::SyncedSize(const std::string& fname) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(fname);
  return it != files_.end() ? it->second.synced_size : 0;
}

Status CrashEnv::NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) {
  return base_->NewSequentialFile(fname, result);
}

Status CrashEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  return base_->NewRandomAccessFile(fname, result);
}

Status CrashEnv::NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return DeadError();
  std::unique_ptr<WritableFile> base_file;
  PMBLADE_RETURN_IF_ERROR(base_->NewWritableFile(fname, &base_file));
  files_[fname] = FileState{};  // creation truncates
  result->reset(new CrashWritableFile(fname, std::move(base_file), this));
  return Status::OK();
}

bool CrashEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status CrashEnv::GetChildren(const std::string& dir,
                             std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status CrashEnv::RemoveFile(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return DeadError();
  PMBLADE_RETURN_IF_ERROR(base_->RemoveFile(fname));
  files_.erase(fname);  // metadata ops are journaled: durable immediately
  return Status::OK();
}

Status CrashEnv::CreateDir(const std::string& dirname) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return DeadError();
  return base_->CreateDir(dirname);
}

Status CrashEnv::RemoveDir(const std::string& dirname) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return DeadError();
  return base_->RemoveDir(dirname);
}

Status CrashEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status CrashEnv::RenameFile(const std::string& src,
                            const std::string& target) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return DeadError();
  PMBLADE_RETURN_IF_ERROR(base_->RenameFile(src, target));
  auto it = files_.find(src);
  if (it != files_.end()) {
    files_[target] = it->second;
    files_.erase(it);
  } else {
    files_.erase(target);
  }
  return Status::OK();
}

}  // namespace pmblade
