// SimEnv: an Env decorator that routes every file read/write through an
// SsdModel, so the whole engine experiences SSD-like timing and the model
// accumulates byte/latency statistics. Per-file I/O class tagging lets the
// compaction code mark its I/Os as IoClass::kCompaction while foreground
// reads count as clients.

#ifndef PMBLADE_ENV_SIM_ENV_H_
#define PMBLADE_ENV_SIM_ENV_H_

#include <memory>
#include <string>

#include "env/env.h"
#include "env/ssd_model.h"

namespace pmblade {

class SimEnv final : public Env {
 public:
  /// Neither pointer is owned; both must outlive the SimEnv.
  SimEnv(Env* base, SsdModel* model) : base_(base), model_(model) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;

  /// Variants that tag the file's I/Os with a specific class.
  Status NewRandomAccessFileWithClass(
      const std::string& fname, IoClass klass,
      std::unique_ptr<RandomAccessFile>* result);
  Status NewWritableFileWithClass(const std::string& fname, IoClass klass,
                                  std::unique_ptr<WritableFile>* result);

  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }

  SsdModel* model() const { return model_; }
  Env* base() const { return base_; }

 private:
  Env* base_;
  SsdModel* model_;
};

}  // namespace pmblade

#endif  // PMBLADE_ENV_SIM_ENV_H_
