// SsdModel: simulates an SSD's timing behaviour on top of real files.
//
// The paper's experiments depend on three device properties that a
// page-cached filesystem does not exhibit:
//   1. non-trivial per-I/O latency (tens of microseconds),
//   2. latency that grows with the instantaneous queue depth (Table III
//      shows 3.9 ms -> 10.9 ms as compaction threads go 1 -> 5),
//   3. measurable device busy/idle time (Fig. 9 reports I/O utilization).
//
// The model injects a computed service latency around every I/O and keeps
// the statistics the benches report. Latency model per operation:
//
//   latency = base(op) + bytes * per_byte(op) + queue_depth_before * penalty
//
// Two usage styles:
//   * Blocking: OnRead/OnWrite compute the latency and sleep for it (used by
//     the thread-based engines and the SimEnv file wrappers).
//   * Ticketed: BeginIo returns a completion deadline without blocking; the
//     coroutine scheduler suspends the issuing coroutine until the deadline
//     and then calls EndIo. Device-busy accounting covers [begin, end].

#ifndef PMBLADE_ENV_SSD_MODEL_H_
#define PMBLADE_ENV_SSD_MODEL_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/clock.h"
#include "util/histogram.h"

namespace pmblade {

namespace obs {
class EventBus;
class MetricsRegistry;
}  // namespace obs

/// Who issued the I/O; the coroutine scheduling policy (Section V-C) needs
/// live counts of compaction I/Os (q_comp) and client I/Os (q_cli).
enum class IoClass { kClient = 0, kCompaction = 1, kFlush = 2 };

struct SsdModelOptions {
  /// Per-operation base service times.
  uint64_t read_base_nanos = 25'000;    // ~25 us for a random read
  uint64_t write_base_nanos = 15'000;   // ~15 us to land a write
  /// Transfer cost: ~1 GB/s read, ~500 MB/s write.
  double read_nanos_per_byte = 1.0;
  double write_nanos_per_byte = 2.0;
  /// Extra latency per already-outstanding operation (queueing).
  uint64_t queue_penalty_nanos = 12'000;
  /// Fraction of the per-op base cost charged when a read continues exactly
  /// where the previous read on the same file ended (readahead/prefetch on
  /// sequential streams — compaction inputs, scans). Transfer cost is
  /// unaffected.
  double sequential_read_base_factor = 0.2;
  /// When false, latency is computed and recorded but not slept; benches
  /// that only need byte accounting can turn injection off for speed.
  bool inject_latency = true;

  Clock* clock = nullptr;  // defaults to SystemClock()
};

class SsdModel {
 public:
  explicit SsdModel(const SsdModelOptions& options = SsdModelOptions());

  /// Blocking: computes, records and (if enabled) sleeps the service latency
  /// for one read/write. Returns the modeled latency in nanoseconds.
  /// `sequential` applies the sequential-read base discount (the caller —
  /// typically a file wrapper — knows stream contiguity).
  uint64_t OnRead(size_t bytes, IoClass klass = IoClass::kClient,
                  bool sequential = false);
  uint64_t OnWrite(size_t bytes, IoClass klass = IoClass::kClient);

  /// Ticketed (non-blocking) API for the coroutine scheduler.
  struct Ticket {
    uint64_t complete_at_nanos = 0;
    uint64_t latency_nanos = 0;
    IoClass klass = IoClass::kClient;
    bool is_write = false;
  };
  Ticket BeginIo(bool is_write, size_t bytes, IoClass klass,
                 bool sequential = false);
  void EndIo(const Ticket& ticket);

  /// Live queue depths per class (q_comp / q_cli in the paper's policy).
  int InflightTotal() const {
    return inflight_[0].load(std::memory_order_relaxed) +
           inflight_[1].load(std::memory_order_relaxed) +
           inflight_[2].load(std::memory_order_relaxed);
  }
  int Inflight(IoClass klass) const {
    return inflight_[static_cast<int>(klass)].load(std::memory_order_relaxed);
  }

  /// Registers an I/O performed OUTSIDE the model — no latency injection, no
  /// byte/busy accounting, only the per-class inflight gauge — so q_cli in
  /// the io-gate policy sees live foreground pressure even when the engine's
  /// Env does not route its file I/O through this model (e.g. PosixEnv
  /// setups, where the gauge would otherwise read a constant 0).
  void BeginExternalOp(IoClass klass) {
    inflight_[static_cast<int>(klass)].fetch_add(1, std::memory_order_relaxed);
  }
  void EndExternalOp(IoClass klass) {
    inflight_[static_cast<int>(klass)].fetch_sub(1, std::memory_order_relaxed);
  }

  // ---- statistics ----
  uint64_t bytes_read() const { return bytes_read_.load(); }
  uint64_t bytes_written() const { return bytes_written_.load(); }
  uint64_t reads() const { return reads_.load(); }
  uint64_t writes() const { return writes_.load(); }

  /// Total time (ns) during which >= 1 operation was in flight (interval
  /// union). Utilization of a window = (BusyNanos at end - at start) / wall.
  uint64_t BusyNanos() const;

  /// Cumulative device service time (ns): per-op base + transfer cost,
  /// excluding queueing delay. service / wall is the device-utilization
  /// metric of the paper's Fig. 9(b): the same I/O work divided by a
  /// shorter wall clock means the device was kept busier.
  uint64_t ServiceNanos() const { return service_nanos_.load(); }

  /// Latency of individual operations (copy under lock).
  Histogram LatencySnapshot() const;

  /// Zeroes counters and the latency histogram (busy-time base included);
  /// also re-arms the queue-depth high-water mark.
  void ResetStats();

  /// Registers "pmblade.ssd.*" pull metrics (byte/op counters, per-class
  /// inflight gauges, the op-latency histogram). The model must outlive the
  /// registry's snapshots.
  void RegisterMetrics(obs::MetricsRegistry* registry);

  /// When set (and active), BeginIo emits an ssd_queue_depth event each time
  /// the total queue depth reaches a new high-water mark — transitions only,
  /// never per-I/O, so the hot path stays one relaxed load when idle.
  void set_event_bus(obs::EventBus* bus) {
    event_bus_.store(bus, std::memory_order_release);
  }

  Clock* clock() const { return clock_; }
  const SsdModelOptions& options() const { return options_; }

 private:
  uint64_t ComputeLatency(bool is_write, size_t bytes, int queue_before,
                          bool sequential) const;
  void NoteBegin();
  void NoteEnd();

  SsdModelOptions options_;
  Clock* clock_;

  std::atomic<int> inflight_[3];
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> service_nanos_{0};
  std::atomic<obs::EventBus*> event_bus_{nullptr};
  std::atomic<int> queue_high_water_{0};

  mutable std::mutex mu_;
  Histogram latency_hist_;       // guarded by mu_
  uint64_t busy_nanos_ = 0;      // guarded by mu_
  uint64_t busy_since_ = 0;      // guarded by mu_; valid when busy_count_ > 0
  int busy_count_ = 0;           // guarded by mu_
};

/// RAII form of Begin/EndExternalOp. A null model is a no-op, so call sites
/// can pass their (possibly absent) tracking handle unconditionally.
class ScopedExternalIo {
 public:
  ScopedExternalIo(SsdModel* model, IoClass klass)
      : model_(model), klass_(klass) {
    if (model_ != nullptr) model_->BeginExternalOp(klass_);
  }
  ~ScopedExternalIo() {
    if (model_ != nullptr) model_->EndExternalOp(klass_);
  }

  ScopedExternalIo(const ScopedExternalIo&) = delete;
  ScopedExternalIo& operator=(const ScopedExternalIo&) = delete;

 private:
  SsdModel* model_;
  IoClass klass_;
};

}  // namespace pmblade

#endif  // PMBLADE_ENV_SSD_MODEL_H_
