// CrashEnv: an Env decorator that simulates power failure.
//
// While "powered", every write is passed through to the base filesystem and
// the env records, per file, how many bytes have been made durable by Sync().
// PowerCut() then plays the role of the power failing and the machine
// rebooting:
//
//   * every file is truncated back to its synced prefix — data that was
//     appended (even Flush()ed or Close()d) but never Sync()ed is gone;
//   * optionally a random prefix of the unsynced tail survives instead
//     (`keep_unsynced`), cutting files mid-record the way a real device
//     does when some sectors of an in-flight write land and others do not;
//   * optionally the tail of the kept-but-unsynced region is torn
//     (`tear_last_block`): a few bytes are scribbled, modeling a sector that
//     was only partially programmed. Synced data is never damaged.
//
// After the cut the env is "dead": every mutating operation fails with
// IOError, like syscalls in a process that no longer exists. Directory
// metadata operations (create/rename/remove) are modeled as immediately
// durable, as on a journaling filesystem — so MANIFEST.tmp -> MANIFEST
// renames and WAL deletions take effect at the instant they are issued.
// ResetState() re-arms the env for the post-"reboot" reopen.
//
// The base env must be POSIX-backed (paths name real files): truncation and
// tearing are applied directly to the on-disk files.

#ifndef PMBLADE_ENV_CRASH_ENV_H_
#define PMBLADE_ENV_CRASH_ENV_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "env/env.h"
#include "util/random.h"

namespace pmblade {

struct PowerCutOptions {
  /// Keep a uniformly random prefix of each file's unsynced tail instead of
  /// dropping it entirely (this is what truncates WALs mid-record).
  bool keep_unsynced = false;
  /// Corrupt up to `tear_max_bytes` random bytes inside the final block of
  /// the kept unsynced region. No effect on synced bytes.
  bool tear_last_block = false;
  size_t tear_max_bytes = 8;
};

class CrashEnv final : public Env {
 public:
  /// `base` must outlive the CrashEnv. `seed` drives the keep/tear choices.
  explicit CrashEnv(Env* base, uint64_t seed = 0);

  // ---- crash control ----

  /// Simulates the power failing: applies the unsynced-data loss policy to
  /// every tracked file and marks the env dead. Idempotent (the second cut
  /// is a no-op). Thread-safe: may be called from a SyncPoint callback on
  /// an engine thread while other threads are mid-write.
  void PowerCut(const PowerCutOptions& options = PowerCutOptions());

  /// "Reboot": forgets all tracked state and revives the env. The current
  /// on-disk contents become the new baseline.
  void ResetState();

  bool dead() const;

  /// Bytes recorded as synced for `fname` (testing aid).
  uint64_t SyncedSize(const std::string& fname) const;

  // ---- Env interface ----
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;

 private:
  class CrashWritableFile;
  friend class CrashWritableFile;

  struct FileState {
    uint64_t size = 0;         // bytes appended through this env
    uint64_t synced_size = 0;  // durable prefix
  };

  Status DeadError() const {
    return Status::IOError("simulated power failure");
  }

  Env* base_;
  mutable std::mutex mu_;
  bool dead_ = false;
  Random rnd_;
  std::map<std::string, FileState> files_;
};

}  // namespace pmblade

#endif  // PMBLADE_ENV_CRASH_ENV_H_
