#include "env/ssd_model.h"

#include "obs/event.h"
#include "obs/metrics.h"

namespace pmblade {

SsdModel::SsdModel(const SsdModelOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : SystemClock()) {
  for (auto& c : inflight_) c.store(0, std::memory_order_relaxed);
}

uint64_t SsdModel::ComputeLatency(bool is_write, size_t bytes,
                                  int queue_before, bool sequential) const {
  double base = is_write ? options_.write_base_nanos
                         : options_.read_base_nanos;
  if (!is_write && sequential) {
    base *= options_.sequential_read_base_factor;
  }
  double per_byte = is_write ? options_.write_nanos_per_byte
                             : options_.read_nanos_per_byte;
  return static_cast<uint64_t>(base) +
         static_cast<uint64_t>(per_byte * static_cast<double>(bytes)) +
         static_cast<uint64_t>(queue_before) * options_.queue_penalty_nanos;
}

void SsdModel::NoteBegin() {
  std::lock_guard<std::mutex> lock(mu_);
  if (busy_count_ == 0) busy_since_ = clock_->NowNanos();
  ++busy_count_;
}

void SsdModel::NoteEnd() {
  std::lock_guard<std::mutex> lock(mu_);
  --busy_count_;
  if (busy_count_ == 0) busy_nanos_ += clock_->NowNanos() - busy_since_;
}

uint64_t SsdModel::OnRead(size_t bytes, IoClass klass, bool sequential) {
  Ticket t = BeginIo(/*is_write=*/false, bytes, klass, sequential);
  if (options_.inject_latency) clock_->SleepForNanos(t.latency_nanos);
  EndIo(t);
  return t.latency_nanos;
}

uint64_t SsdModel::OnWrite(size_t bytes, IoClass klass) {
  Ticket t = BeginIo(/*is_write=*/true, bytes, klass);
  if (options_.inject_latency) clock_->SleepForNanos(t.latency_nanos);
  EndIo(t);
  return t.latency_nanos;
}

SsdModel::Ticket SsdModel::BeginIo(bool is_write, size_t bytes,
                                   IoClass klass, bool sequential) {
  int queue_before = InflightTotal();
  inflight_[static_cast<int>(klass)].fetch_add(1, std::memory_order_relaxed);
  NoteBegin();

  obs::EventBus* bus = event_bus_.load(std::memory_order_acquire);
  if (bus != nullptr) {
    int depth = queue_before + 1;
    int high = queue_high_water_.load(std::memory_order_relaxed);
    // Only new high-water marks emit; the common case is one relaxed load.
    while (depth > high &&
           !queue_high_water_.compare_exchange_weak(
               high, depth, std::memory_order_relaxed)) {
    }
    if (depth > high && bus->active()) {
      bus->Emit(obs::Event(obs::EventType::kSsdQueueDepth, clock_->NowNanos())
                    .With("depth", depth)
                    .With("client", Inflight(IoClass::kClient))
                    .With("compaction", Inflight(IoClass::kCompaction))
                    .With("flush", Inflight(IoClass::kFlush)));
    }
  }

  Ticket t;
  t.is_write = is_write;
  t.klass = klass;
  t.latency_nanos = ComputeLatency(is_write, bytes, queue_before, sequential);
  t.complete_at_nanos = clock_->NowNanos() + t.latency_nanos;
  service_nanos_.fetch_add(ComputeLatency(is_write, bytes, 0, sequential),
                           std::memory_order_relaxed);

  if (is_write) {
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    writes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    reads_.fetch_add(1, std::memory_order_relaxed);
  }
  return t;
}

void SsdModel::EndIo(const Ticket& ticket) {
  inflight_[static_cast<int>(ticket.klass)].fetch_sub(
      1, std::memory_order_relaxed);
  NoteEnd();
  std::lock_guard<std::mutex> lock(mu_);
  latency_hist_.Add(ticket.latency_nanos);
}

uint64_t SsdModel::BusyNanos() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t busy = busy_nanos_;
  if (busy_count_ > 0) busy += clock_->NowNanos() - busy_since_;
  return busy;
}

Histogram SsdModel::LatencySnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latency_hist_;
}

void SsdModel::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterCounterCallback("pmblade.ssd.bytes_read",
                                    [this] { return bytes_read(); });
  registry->RegisterCounterCallback("pmblade.ssd.bytes_written",
                                    [this] { return bytes_written(); });
  registry->RegisterCounterCallback("pmblade.ssd.reads",
                                    [this] { return reads(); });
  registry->RegisterCounterCallback("pmblade.ssd.writes",
                                    [this] { return writes(); });
  registry->RegisterCounterCallback("pmblade.ssd.service_nanos",
                                    [this] { return ServiceNanos(); });
  registry->RegisterCounterCallback("pmblade.ssd.busy_nanos",
                                    [this] { return BusyNanos(); });
  registry->RegisterGaugeCallback("pmblade.ssd.inflight.client", [this] {
    return static_cast<double>(Inflight(IoClass::kClient));
  });
  registry->RegisterGaugeCallback("pmblade.ssd.inflight.compaction", [this] {
    return static_cast<double>(Inflight(IoClass::kCompaction));
  });
  registry->RegisterGaugeCallback("pmblade.ssd.inflight.flush", [this] {
    return static_cast<double>(Inflight(IoClass::kFlush));
  });
  registry->RegisterGaugeCallback("pmblade.ssd.queue_high_water", [this] {
    return static_cast<double>(
        queue_high_water_.load(std::memory_order_relaxed));
  });
  registry->RegisterHistogramCallback("pmblade.ssd.latency_nanos",
                                      [this] { return LatencySnapshot(); });
}

void SsdModel::ResetStats() {
  bytes_read_.store(0);
  bytes_written_.store(0);
  reads_.store(0);
  writes_.store(0);
  service_nanos_.store(0);
  queue_high_water_.store(0);
  std::lock_guard<std::mutex> lock(mu_);
  latency_hist_.Clear();
  busy_nanos_ = 0;
  if (busy_count_ > 0) busy_since_ = clock_->NowNanos();
}

}  // namespace pmblade
