#include "env/sim_env.h"
#include <atomic>

namespace pmblade {
namespace {

class SimSequentialFile final : public SequentialFile {
 public:
  SimSequentialFile(std::unique_ptr<SequentialFile> base, SsdModel* model,
                    IoClass klass)
      : base_(std::move(base)), model_(model), klass_(klass) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = base_->Read(n, result, scratch);
    if (s.ok() && !result->empty()) {
      // A SequentialFile is a sequential stream by construction; only the
      // first read pays the full seek cost.
      model_->OnRead(result->size(), klass_, /*sequential=*/!first_read_);
      first_read_ = false;
    }
    return s;
  }

  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  SsdModel* model_;
  IoClass klass_;
  bool first_read_ = true;
};

class SimRandomAccessFile final : public RandomAccessFile {
 public:
  SimRandomAccessFile(std::unique_ptr<RandomAccessFile> base, SsdModel* model,
                      IoClass klass)
      : base_(std::move(base)), model_(model), klass_(klass) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) {
      // Reads continuing exactly (or nearly — block trailers make table
      // scans read at small gaps) where the last one ended behave like a
      // prefetched sequential stream.
      uint64_t expected = last_end_.load(std::memory_order_relaxed);
      bool sequential =
          expected != 0 && offset >= expected && offset - expected <= 64;
      last_end_.store(offset + result->size(), std::memory_order_relaxed);
      model_->OnRead(result->size(), klass_, sequential);
    }
    return s;
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  SsdModel* model_;
  IoClass klass_;
  mutable std::atomic<uint64_t> last_end_{0};
};

class SimWritableFile final : public WritableFile {
 public:
  SimWritableFile(std::unique_ptr<WritableFile> base, SsdModel* model,
                  IoClass klass)
      : base_(std::move(base)), model_(model), klass_(klass) {}

  Status Append(const Slice& data) override {
    Status s = base_->Append(data);
    if (s.ok()) model_->OnWrite(data.size(), klass_);
    return s;
  }

  Status Flush() override { return base_->Flush(); }
  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  SsdModel* model_;
  IoClass klass_;
};

}  // namespace

Status SimEnv::NewSequentialFile(const std::string& fname,
                                 std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> base_file;
  PMBLADE_RETURN_IF_ERROR(base_->NewSequentialFile(fname, &base_file));
  result->reset(
      new SimSequentialFile(std::move(base_file), model_, IoClass::kClient));
  return Status::OK();
}

Status SimEnv::NewRandomAccessFile(const std::string& fname,
                                   std::unique_ptr<RandomAccessFile>* result) {
  return NewRandomAccessFileWithClass(fname, IoClass::kClient, result);
}

Status SimEnv::NewRandomAccessFileWithClass(
    const std::string& fname, IoClass klass,
    std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base_file;
  PMBLADE_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &base_file));
  result->reset(new SimRandomAccessFile(std::move(base_file), model_, klass));
  return Status::OK();
}

Status SimEnv::NewWritableFile(const std::string& fname,
                               std::unique_ptr<WritableFile>* result) {
  return NewWritableFileWithClass(fname, IoClass::kClient, result);
}

Status SimEnv::NewWritableFileWithClass(
    const std::string& fname, IoClass klass,
    std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> base_file;
  PMBLADE_RETURN_IF_ERROR(base_->NewWritableFile(fname, &base_file));
  result->reset(new SimWritableFile(std::move(base_file), model_, klass));
  return Status::OK();
}

}  // namespace pmblade
