#include "env/env.h"

namespace pmblade {

Status Env::RemoveDirRecursively(const std::string& dirname) {
  std::vector<std::string> children;
  Status s = GetChildren(dirname, &children);
  if (!s.ok()) return s;
  for (const auto& child : children) {
    if (child == "." || child == "..") continue;
    const std::string path = dirname + "/" + child;
    // Try as file first; fall back to directory.
    if (!RemoveFile(path).ok()) {
      PMBLADE_RETURN_IF_ERROR(RemoveDirRecursively(path));
    }
  }
  return RemoveDir(dirname);
}

Status ReadFileToString(Env* env, const std::string& fname,
                        std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  PMBLADE_RETURN_IF_ERROR(env->NewSequentialFile(fname, &file));
  static constexpr size_t kBufSize = 64 * 1024;
  std::string scratch(kBufSize, '\0');
  while (true) {
    Slice fragment;
    PMBLADE_RETURN_IF_ERROR(file->Read(kBufSize, &fragment, scratch.data()));
    if (fragment.empty()) break;
    data->append(fragment.data(), fragment.size());
  }
  return Status::OK();
}

Status WriteStringToFile(Env* env, const Slice& data,
                         const std::string& fname) {
  std::unique_ptr<WritableFile> file;
  PMBLADE_RETURN_IF_ERROR(env->NewWritableFile(fname, &file));
  PMBLADE_RETURN_IF_ERROR(file->Append(data));
  PMBLADE_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

}  // namespace pmblade
