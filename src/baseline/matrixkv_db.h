// MatrixKvDb: the MatrixKV-style comparison engine [9].
//
// MatrixKV places a *small* level-0 in PM, organized as a "matrix
// container": each flushed memtable becomes one row (here an array-based PM
// table); column compaction moves fine-grained slices of level-0 down to the
// leveled SSD store instead of compacting the whole level at once; reads
// search the rows newest-first (cross-hint search is approximated by the
// per-row binary search of the array layout).
//
// Reproduced properties relevant to the paper's comparison:
//   * small PM budget (8 GB default in the paper; scaled here) => frequent
//     column compactions and no hot-data retention in PM,
//   * matrix (row) construction overhead on every flush,
//   * multi-level write amplification below level-0.
//
// Simplification (documented in DESIGN.md): a "column" is realized as the
// oldest rows covering ~1/columns of the container's bytes, compacted fully
// into the leveled store. This preserves the fine-grained-compaction and
// no-retention behaviour without MatrixKV's intra-row paging.

#ifndef PMBLADE_BASELINE_MATRIXKV_DB_H_
#define PMBLADE_BASELINE_MATRIXKV_DB_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baseline/leveled_store.h"
#include "core/kv_engine.h"
#include "core/statistics.h"
#include "memtable/skiplist_memtable.h"
#include "memtable/wal.h"
#include "memtable/write_batch.h"
#include "pm/pm_pool.h"
#include "sstable/block_cache.h"
#include "util/bloom.h"

namespace pmblade {

struct MatrixKvOptions {
  Env* env = nullptr;
  size_t memtable_bytes = 4 << 20;
  /// PM budget for the matrix container (paper default: 8 GB; the benches
  /// also run an 80 GB-equivalent variant).
  uint64_t pm_budget_bytes = 8 << 20;
  /// Column granularity: one column compaction moves ~1/columns of the
  /// container.
  int columns = 8;
  std::string pm_pool_path;  // empty = "<dbname>/pool.pm"
  uint64_t pm_pool_capacity = 64ull << 20;
  PmLatencyOptions pm_latency;
  LeveledStoreOptions levels;
  size_t block_size = 4096;
  int bloom_bits_per_key = 10;
  size_t block_cache_bytes = 8 << 20;
  Clock* clock = nullptr;
};

class MatrixKvDb final : public KvEngine {
 public:
  static Status Open(const MatrixKvOptions& options, const std::string& dbname,
                     std::unique_ptr<MatrixKvDb>* db);
  ~MatrixKvDb() override;

  Status Put(const Slice& key, const Slice& value) override;
  Status Delete(const Slice& key) override;
  Status Get(const Slice& key, std::string* value) override;
  Iterator* NewScanIterator() override;
  Status Flush() override;
  std::string Name() const override { return "matrixkv"; }

  Status CompactAll();

  const DbStatistics& statistics() const { return stats_; }
  DbStatistics& statistics() { return stats_; }
  PmPool* pm_pool() { return pool_.get(); }
  uint64_t matrix_rows() const { return rows_.size(); }
  uint64_t matrix_bytes() const;

 private:
  MatrixKvDb(const MatrixKvOptions& options, const std::string& dbname);
  Status Init();
  Status WriteInternal(WriteBatch* batch);
  Status FlushLocked();
  /// Column compaction: move the oldest rows (~1/columns of the container)
  /// into the leveled store.
  Status ColumnCompactionLocked();

  MatrixKvOptions options_;
  std::string dbname_;
  Env* env_;
  Clock* clock_;
  InternalKeyComparator icmp_;
  std::unique_ptr<BloomFilterPolicy> filter_policy_;
  std::unique_ptr<BlockCache> block_cache_;
  std::unique_ptr<PmPool> pool_;
  std::unique_ptr<L0TableFactory> row_factory_;   // array tables on PM
  std::unique_ptr<L0TableFactory> sst_factory_;   // SSTables below
  std::unique_ptr<LeveledStore> store_;

  std::mutex mu_;
  MemTable* mem_ = nullptr;
  std::unique_ptr<WritableFile> wal_file_;
  std::unique_ptr<wal::Writer> wal_;
  uint64_t wal_number_ = 0;
  SequenceNumber last_sequence_ = 0;
  std::vector<L0TableRef> rows_;  // newest first

  DbStatistics stats_;
};

}  // namespace pmblade

#endif  // PMBLADE_BASELINE_MATRIXKV_DB_H_
