#include "baseline/matrixkv_db.h"

#include "compaction/merging_iterator.h"
#include "core/version.h"
#include "memtable/write_batch.h"

namespace pmblade {

namespace {
std::string WalName(const std::string& dbname, uint64_t number) {
  char buf[64];
  snprintf(buf, sizeof(buf), "/wal-%06llu.log",
           static_cast<unsigned long long>(number));
  return dbname + buf;
}
}  // namespace

Status MatrixKvDb::Open(const MatrixKvOptions& options,
                        const std::string& dbname,
                        std::unique_ptr<MatrixKvDb>* db) {
  db->reset();
  std::unique_ptr<MatrixKvDb> impl(new MatrixKvDb(options, dbname));
  PMBLADE_RETURN_IF_ERROR(impl->Init());
  *db = std::move(impl);
  return Status::OK();
}

MatrixKvDb::MatrixKvDb(const MatrixKvOptions& options,
                       const std::string& dbname)
    : options_(options), dbname_(dbname), icmp_(BytewiseComparator()) {}

MatrixKvDb::~MatrixKvDb() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_file_ != nullptr) wal_file_->Close();
  if (mem_ != nullptr) mem_->Unref();
}

Status MatrixKvDb::Init() {
  env_ = options_.env != nullptr ? options_.env : PosixEnv();
  clock_ = options_.clock != nullptr ? options_.clock : SystemClock();
  PMBLADE_RETURN_IF_ERROR(env_->CreateDir(dbname_));

  filter_policy_.reset(new BloomFilterPolicy(options_.bloom_bits_per_key));
  block_cache_.reset(new BlockCache(options_.block_cache_bytes));

  std::string pool_path = options_.pm_pool_path.empty()
                              ? dbname_ + "/pool.pm"
                              : options_.pm_pool_path;
  PmPoolOptions popts;
  popts.capacity = options_.pm_pool_capacity;
  popts.latency = options_.pm_latency;
  popts.clock = clock_;
  PMBLADE_RETURN_IF_ERROR(PmPool::Open(pool_path, popts, &pool_));

  L0FactoryOptions row_opts;
  row_opts.layout = L0Layout::kArrayTable;
  row_opts.icmp = &icmp_;
  row_factory_.reset(new L0TableFactory(row_opts, pool_.get(), env_));

  L0FactoryOptions sst_opts;
  sst_opts.layout = L0Layout::kSstable;
  sst_opts.icmp = &icmp_;
  sst_opts.filter_policy = filter_policy_.get();
  sst_opts.block_cache = block_cache_.get();
  sst_opts.block_size = options_.block_size;
  sst_opts.ssd_dir = dbname_;
  sst_factory_.reset(new L0TableFactory(sst_opts, pool_.get(), env_));

  store_.reset(new LeveledStore(options_.levels, &icmp_, sst_factory_.get()));

  mem_ = new MemTable(icmp_);
  mem_->Ref();

  wal_number_ = sst_factory_->NextFileNumber();
  PMBLADE_RETURN_IF_ERROR(
      env_->NewWritableFile(WalName(dbname_, wal_number_), &wal_file_));
  wal_.reset(new wal::Writer(wal_file_.get()));
  return Status::OK();
}

uint64_t MatrixKvDb::matrix_bytes() const {
  uint64_t total = 0;
  for (const auto& row : rows_) total += row->size_bytes();
  return total;
}

Status MatrixKvDb::Put(const Slice& key, const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return WriteInternal(&batch);
}

Status MatrixKvDb::Delete(const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return WriteInternal(&batch);
}

Status MatrixKvDb::WriteInternal(WriteBatch* batch) {
  const uint64_t start = clock_->NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  if (mem_->ApproximateMemoryUsage() >= options_.memtable_bytes) {
    PMBLADE_RETURN_IF_ERROR(FlushLocked());
  }
  batch->SetSequence(last_sequence_ + 1);
  last_sequence_ += batch->Count();
  PMBLADE_RETURN_IF_ERROR(wal_->AddRecord(batch->rep()));
  PMBLADE_RETURN_IF_ERROR(batch->InsertInto(mem_));
  stats_.RecordWrite(batch->ApproximateSize(), clock_->NowNanos() - start);
  return Status::OK();
}

Status MatrixKvDb::Get(const Slice& key, std::string* value) {
  const uint64_t start = clock_->NowNanos();
  MemTable* mem;
  std::vector<L0TableRef> rows;
  SequenceNumber snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = last_sequence_;
    mem = mem_;
    mem->Ref();
    rows = rows_;
  }
  LookupKey lkey(key, snapshot);
  Status result = Status::NotFound();
  ReadSource source = ReadSource::kNotFound;
  bool answered = false;
  std::string local;
  Status probe;

  if (mem->Get(lkey, &local, &probe)) {
    answered = true;
    source = ReadSource::kMemtable;
    result = probe;
  }
  if (!answered) {
    // Cross-hint search approximation: rows newest-first, binary search per
    // row (array layout's two PM accesses per probe).
    for (const auto& row : rows) {
      bool found = false;
      Status s = L0TableGet(*row, icmp_, lkey, &local, &found, &probe);
      if (!s.ok()) {
        mem->Unref();
        return s;
      }
      if (found) {
        answered = true;
        source = ReadSource::kPmLevel0;
        result = probe;
        break;
      }
    }
  }
  if (!answered) {
    std::lock_guard<std::mutex> lock(mu_);
    bool found = false;
    Status s = store_->Get(lkey, &local, &found, &probe);
    if (!s.ok()) {
      mem->Unref();
      return s;
    }
    if (found) {
      answered = true;
      source = ReadSource::kSsdLevel1;
      result = probe;
    }
  }
  mem->Unref();

  if (answered && result.ok()) {
    value->swap(local);
  } else {
    result = Status::NotFound();
    source = answered ? ReadSource::kNotFound : source;
  }
  stats_.RecordRead(source, clock_->NowNanos() - start);
  return result;
}

Iterator* MatrixKvDb::NewScanIterator() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Iterator*> children;
  children.push_back(mem_->NewIterator());
  for (const auto& row : rows_) children.push_back(row->NewIterator());
  store_->AppendIterators(&children);
  Iterator* merged = NewMergingIterator(&icmp_, std::move(children));
  return NewUserIterator(merged, &icmp_, last_sequence_);
}

Status MatrixKvDb::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status MatrixKvDb::FlushLocked() {
  if (mem_->num_entries() == 0) return Status::OK();

  std::unique_ptr<Iterator> it(mem_->NewIterator());
  it->SeekToFirst();
  L0TableRef row;
  PMBLADE_RETURN_IF_ERROR(row_factory_->BuildFrom(it.get(), &row));
  it.reset();
  if (row != nullptr) {
    rows_.insert(rows_.begin(), std::move(row));  // newest first
  }
  mem_->Unref();
  mem_ = new MemTable(icmp_);
  mem_->Ref();
  stats_.AddFlush();

  uint64_t old = wal_number_;
  wal_number_ = sst_factory_->NextFileNumber();
  std::unique_ptr<WritableFile> file;
  PMBLADE_RETURN_IF_ERROR(
      env_->NewWritableFile(WalName(dbname_, wal_number_), &file));
  wal_file_->Close();
  wal_file_ = std::move(file);
  wal_.reset(new wal::Writer(wal_file_.get()));
  env_->RemoveFile(WalName(dbname_, old));

  // Column compaction whenever the container exceeds the PM budget.
  while (matrix_bytes() > options_.pm_budget_bytes && !rows_.empty()) {
    PMBLADE_RETURN_IF_ERROR(ColumnCompactionLocked());
  }
  return Status::OK();
}

Status MatrixKvDb::ColumnCompactionLocked() {
  if (rows_.empty()) return Status::OK();
  // Oldest rows covering ~1/columns of the container.
  uint64_t quota = matrix_bytes() / std::max(options_.columns, 1);
  if (quota == 0) quota = 1;
  std::vector<L0TableRef> victims;
  uint64_t taken = 0;
  while (!rows_.empty() && taken < quota) {
    victims.push_back(rows_.back());
    taken += rows_.back()->size_bytes();
    rows_.pop_back();
  }
  std::vector<Iterator*> inputs;
  for (const auto& row : victims) inputs.push_back(row->NewIterator());
  PMBLADE_RETURN_IF_ERROR(
      store_->MergeIntoLevel1(std::move(inputs), kMaxSequenceNumber));
  for (auto& row : victims) row->Destroy();
  stats_.AddMajorCompaction(0);
  return Status::OK();
}

Status MatrixKvDb::CompactAll() {
  std::lock_guard<std::mutex> lock(mu_);
  PMBLADE_RETURN_IF_ERROR(FlushLocked());
  while (!rows_.empty()) {
    PMBLADE_RETURN_IF_ERROR(ColumnCompactionLocked());
  }
  return Status::OK();
}

}  // namespace pmblade
