#include "baseline/leveled_db.h"

#include "compaction/merging_iterator.h"
#include "core/version.h"
#include "memtable/write_batch.h"

namespace pmblade {

namespace {
std::string WalName(const std::string& dbname, uint64_t number) {
  char buf[64];
  snprintf(buf, sizeof(buf), "/wal-%06llu.log",
           static_cast<unsigned long long>(number));
  return dbname + buf;
}
}  // namespace

Status LeveledDb::Open(const LeveledDbOptions& options,
                       const std::string& dbname,
                       std::unique_ptr<LeveledDb>* db) {
  db->reset();
  std::unique_ptr<LeveledDb> impl(new LeveledDb(options, dbname));
  PMBLADE_RETURN_IF_ERROR(impl->Init());
  *db = std::move(impl);
  return Status::OK();
}

LeveledDb::LeveledDb(const LeveledDbOptions& options,
                     const std::string& dbname)
    : options_(options), dbname_(dbname), icmp_(BytewiseComparator()) {}

LeveledDb::~LeveledDb() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_file_ != nullptr) wal_file_->Close();
  if (mem_ != nullptr) mem_->Unref();
}

Status LeveledDb::Init() {
  env_ = options_.env != nullptr ? options_.env : PosixEnv();
  clock_ = options_.clock != nullptr ? options_.clock : SystemClock();
  PMBLADE_RETURN_IF_ERROR(env_->CreateDir(dbname_));

  filter_policy_.reset(new BloomFilterPolicy(options_.bloom_bits_per_key));
  block_cache_.reset(new BlockCache(options_.block_cache_bytes));

  L0FactoryOptions fopts;
  fopts.layout = L0Layout::kSstable;
  fopts.icmp = &icmp_;
  fopts.filter_policy = filter_policy_.get();
  fopts.block_cache = block_cache_.get();
  fopts.block_size = options_.block_size;
  fopts.ssd_dir = dbname_;
  factory_.reset(new L0TableFactory(fopts, nullptr, env_));

  store_.reset(new LeveledStore(options_.levels, &icmp_, factory_.get()));

  mem_ = new MemTable(icmp_);
  mem_->Ref();

  wal_number_ = factory_->NextFileNumber();
  PMBLADE_RETURN_IF_ERROR(
      env_->NewWritableFile(WalName(dbname_, wal_number_), &wal_file_));
  wal_.reset(new wal::Writer(wal_file_.get()));
  return Status::OK();
}

Status LeveledDb::Put(const Slice& key, const Slice& value) {
  const uint64_t start = clock_->NowNanos();
  WriteBatch batch;
  batch.Put(key, value);
  std::lock_guard<std::mutex> lock(mu_);
  if (mem_->ApproximateMemoryUsage() >= options_.memtable_bytes) {
    PMBLADE_RETURN_IF_ERROR(FlushLocked());
  }
  batch.SetSequence(last_sequence_ + 1);
  last_sequence_ += batch.Count();
  PMBLADE_RETURN_IF_ERROR(wal_->AddRecord(batch.rep()));
  PMBLADE_RETURN_IF_ERROR(batch.InsertInto(mem_));
  stats_.RecordWrite(batch.ApproximateSize(), clock_->NowNanos() - start);
  return Status::OK();
}

Status LeveledDb::Delete(const Slice& key) {
  const uint64_t start = clock_->NowNanos();
  WriteBatch batch;
  batch.Delete(key);
  std::lock_guard<std::mutex> lock(mu_);
  if (mem_->ApproximateMemoryUsage() >= options_.memtable_bytes) {
    PMBLADE_RETURN_IF_ERROR(FlushLocked());
  }
  batch.SetSequence(last_sequence_ + 1);
  last_sequence_ += batch.Count();
  PMBLADE_RETURN_IF_ERROR(wal_->AddRecord(batch.rep()));
  PMBLADE_RETURN_IF_ERROR(batch.InsertInto(mem_));
  stats_.RecordWrite(batch.ApproximateSize(), clock_->NowNanos() - start);
  return Status::OK();
}

Status LeveledDb::Get(const Slice& key, std::string* value) {
  const uint64_t start = clock_->NowNanos();
  MemTable* mem;
  std::vector<L0TableRef> l0;
  SequenceNumber snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = last_sequence_;
    mem = mem_;
    mem->Ref();
    l0 = l0_;
  }
  LookupKey lkey(key, snapshot);
  Status result = Status::NotFound();
  ReadSource source = ReadSource::kNotFound;
  bool answered = false;
  std::string local;
  Status probe;

  if (mem->Get(lkey, &local, &probe)) {
    answered = true;
    source = ReadSource::kMemtable;
    result = probe;
  }
  if (!answered) {
    for (const auto& table : l0) {
      bool found = false;
      Status s = L0TableGet(*table, icmp_, lkey, &local, &found, &probe);
      if (!s.ok()) {
        mem->Unref();
        return s;
      }
      if (found) {
        answered = true;
        source = ReadSource::kSsdLevel1;  // L0 is on the SSD here
        result = probe;
        break;
      }
    }
  }
  if (!answered) {
    std::lock_guard<std::mutex> lock(mu_);
    bool found = false;
    Status s = store_->Get(lkey, &local, &found, &probe);
    if (!s.ok()) {
      mem->Unref();
      return s;
    }
    if (found) {
      answered = true;
      source = ReadSource::kSsdLevel1;
      result = probe;
    }
  }
  mem->Unref();

  if (answered && result.ok()) {
    value->swap(local);
  } else {
    result = Status::NotFound();
    source = answered ? ReadSource::kNotFound : source;
  }
  stats_.RecordRead(source, clock_->NowNanos() - start);
  return result;
}

Iterator* LeveledDb::NewScanIterator() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Iterator*> children;
  children.push_back(mem_->NewIterator());
  for (const auto& table : l0_) children.push_back(table->NewIterator());
  store_->AppendIterators(&children);
  Iterator* merged = NewMergingIterator(&icmp_, std::move(children));
  return NewUserIterator(merged, &icmp_, last_sequence_);
}

Status LeveledDb::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status LeveledDb::FlushLocked() {
  if (mem_->num_entries() == 0) return Status::OK();

  std::unique_ptr<Iterator> it(mem_->NewIterator());
  it->SeekToFirst();
  L0TableRef table;
  PMBLADE_RETURN_IF_ERROR(factory_->BuildFrom(it.get(), &table));
  it.reset();
  if (table != nullptr) {
    l0_.insert(l0_.begin(), std::move(table));  // newest first
  }
  mem_->Unref();
  mem_ = new MemTable(icmp_);
  mem_->Ref();
  stats_.AddFlush();

  // Fresh WAL; old one is obsolete once the flush landed.
  uint64_t old = wal_number_;
  wal_number_ = factory_->NextFileNumber();
  std::unique_ptr<WritableFile> file;
  PMBLADE_RETURN_IF_ERROR(
      env_->NewWritableFile(WalName(dbname_, wal_number_), &file));
  wal_file_->Close();
  wal_file_ = std::move(file);
  wal_.reset(new wal::Writer(wal_file_.get()));
  env_->RemoveFile(WalName(dbname_, old));

  if (l0_.size() >= options_.l0_compaction_trigger) {
    PMBLADE_RETURN_IF_ERROR(CompactL0Locked());
  }
  return Status::OK();
}

Status LeveledDb::CompactL0Locked() {
  if (l0_.empty()) return Status::OK();
  std::vector<Iterator*> inputs;
  for (const auto& table : l0_) inputs.push_back(table->NewIterator());
  Status s = store_->MergeIntoLevel1(std::move(inputs), kMaxSequenceNumber);
  if (!s.ok()) return s;
  for (auto& table : l0_) table->Destroy();
  l0_.clear();
  stats_.AddMajorCompaction(0);
  return Status::OK();
}

Status LeveledDb::CompactAll() {
  std::lock_guard<std::mutex> lock(mu_);
  PMBLADE_RETURN_IF_ERROR(FlushLocked());
  return CompactL0Locked();
}

}  // namespace pmblade
