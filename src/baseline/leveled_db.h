// LeveledDb: the conventional DRAM-SSD leveled LSM the paper compares
// against as "RocksDB". Memtable in DRAM, level-0 as whole-memtable SSTable
// files on the SSD (overlapping, compaction triggered at 4 files —
// RocksDB's default), leveled L1..L6 below. No persistent memory anywhere.

#ifndef PMBLADE_BASELINE_LEVELED_DB_H_
#define PMBLADE_BASELINE_LEVELED_DB_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baseline/leveled_store.h"
#include "core/kv_engine.h"
#include "core/statistics.h"
#include "memtable/skiplist_memtable.h"
#include "memtable/wal.h"
#include "sstable/block_cache.h"
#include "util/bloom.h"

namespace pmblade {

struct LeveledDbOptions {
  Env* env = nullptr;  // typically a SimEnv; defaults to PosixEnv()
  size_t memtable_bytes = 4 << 20;
  /// Level-0 file count that triggers L0 -> L1 compaction (RocksDB: 4).
  uint32_t l0_compaction_trigger = 4;
  LeveledStoreOptions levels;
  size_t block_size = 4096;
  int bloom_bits_per_key = 10;
  size_t block_cache_bytes = 8 << 20;
  Clock* clock = nullptr;
};

class LeveledDb final : public KvEngine {
 public:
  static Status Open(const LeveledDbOptions& options,
                     const std::string& dbname,
                     std::unique_ptr<LeveledDb>* db);
  ~LeveledDb() override;

  Status Put(const Slice& key, const Slice& value) override;
  Status Delete(const Slice& key) override;
  Status Get(const Slice& key, std::string* value) override;
  Iterator* NewScanIterator() override;
  Status Flush() override;
  std::string Name() const override { return "leveled-lsm"; }

  /// Forces L0 down into the levels (bench convenience).
  Status CompactAll();

  const DbStatistics& statistics() const { return stats_; }
  DbStatistics& statistics() { return stats_; }
  uint64_t l0_files() const { return l0_.size(); }
  const LeveledStore& store() const { return *store_; }

 private:
  LeveledDb(const LeveledDbOptions& options, const std::string& dbname);
  Status Init();
  Status FlushLocked();
  Status CompactL0Locked();

  LeveledDbOptions options_;
  std::string dbname_;
  Env* env_;
  Clock* clock_;
  InternalKeyComparator icmp_;
  std::unique_ptr<BloomFilterPolicy> filter_policy_;
  std::unique_ptr<BlockCache> block_cache_;
  std::unique_ptr<L0TableFactory> factory_;
  std::unique_ptr<LeveledStore> store_;

  std::mutex mu_;
  MemTable* mem_ = nullptr;
  std::unique_ptr<WritableFile> wal_file_;
  std::unique_ptr<wal::Writer> wal_;
  uint64_t wal_number_ = 0;
  SequenceNumber last_sequence_ = 0;
  std::vector<L0TableRef> l0_;  // newest first, mutually overlapping

  DbStatistics stats_;
};

}  // namespace pmblade

#endif  // PMBLADE_BASELINE_LEVELED_DB_H_
