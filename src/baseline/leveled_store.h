// LeveledStore: the multi-level (L1..Lmax) SSD half of the baseline engines.
// Holds one sorted run of SSTables per level, merges incoming data into L1,
// and cascades size-triggered compactions downward (LevelDB/RocksDB-style
// leveled compaction with exponential level targets). This is where the
// conventional LSM's multi-level write amplification comes from.

#ifndef PMBLADE_BASELINE_LEVELED_STORE_H_
#define PMBLADE_BASELINE_LEVELED_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "compaction/minor_compaction.h"
#include "core/version.h"
#include "memtable/internal_key.h"
#include "pmtable/l0_table.h"

namespace pmblade {

struct LeveledStoreOptions {
  int max_levels = 6;                       // L1..L6
  uint64_t level1_target_bytes = 4ull << 20;
  double level_multiplier = 10.0;
  uint64_t target_file_bytes = 1ull << 20;  // output file size
};

class LeveledStore {
 public:
  /// `factory` must produce SSTables (L0Layout::kSstable) and is shared with
  /// the owner so file numbers never collide.
  LeveledStore(const LeveledStoreOptions& options,
               const InternalKeyComparator* icmp, L0TableFactory* factory);

  /// Merges `inputs` (newest sources first, each an internal-key iterator;
  /// ownership transferred) plus the current L1 into a new L1, then cascades
  /// overfull levels downward. `oldest_snapshot` gates version dropping.
  Status MergeIntoLevel1(std::vector<Iterator*> inputs,
                         SequenceNumber oldest_snapshot);

  /// Point lookup through the levels (top-down).
  Status Get(const LookupKey& lkey, std::string* value, bool* found,
             Status* result_status) const;

  /// One iterator per level run (newest level first), for merging with the
  /// caller's upper layers. Appends to `children`.
  void AppendIterators(std::vector<Iterator*>* children) const;

  uint64_t TotalBytes() const;
  uint64_t LevelBytes(int level) const;
  int NumLevels() const { return static_cast<int>(levels_.size()); }
  uint64_t NumFiles() const;

  /// Re-attaches recovered tables (level -> run, ascending keys).
  void InstallLevel(int level, std::vector<L0TableRef> run);
  const std::vector<std::vector<L0TableRef>>& levels() const {
    return levels_;
  }

 private:
  Status CascadeCompactions(SequenceNumber oldest_snapshot);
  Status CompactLevel(int level, SequenceNumber oldest_snapshot);
  uint64_t TargetBytes(int level) const;

  LeveledStoreOptions options_;
  const InternalKeyComparator* icmp_;
  L0TableFactory* factory_;
  /// levels_[0] is L1; each is a non-overlapping run, ascending key order.
  std::vector<std::vector<L0TableRef>> levels_;
  std::vector<size_t> compact_cursor_;  // round-robin pick per level
};

}  // namespace pmblade

#endif  // PMBLADE_BASELINE_LEVELED_STORE_H_
