#include "baseline/leveled_store.h"

#include <cmath>

#include "compaction/internal_compaction.h"
#include "compaction/merging_iterator.h"

namespace pmblade {

LeveledStore::LeveledStore(const LeveledStoreOptions& options,
                           const InternalKeyComparator* icmp,
                           L0TableFactory* factory)
    : options_(options), icmp_(icmp), factory_(factory) {
  levels_.resize(options_.max_levels);
  compact_cursor_.resize(options_.max_levels, 0);
}

uint64_t LeveledStore::TargetBytes(int level) const {
  // level is 0-based into levels_ (0 == L1).
  return static_cast<uint64_t>(
      options_.level1_target_bytes *
      std::pow(options_.level_multiplier, level));
}

uint64_t LeveledStore::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const auto& table : levels_[level]) total += table->size_bytes();
  return total;
}

uint64_t LeveledStore::TotalBytes() const {
  uint64_t total = 0;
  for (int level = 0; level < NumLevels(); ++level) {
    total += LevelBytes(level);
  }
  return total;
}

uint64_t LeveledStore::NumFiles() const {
  uint64_t total = 0;
  for (const auto& run : levels_) total += run.size();
  return total;
}

void LeveledStore::InstallLevel(int level, std::vector<L0TableRef> run) {
  levels_[level] = std::move(run);
}

Status LeveledStore::MergeIntoLevel1(std::vector<Iterator*> inputs,
                                     SequenceNumber oldest_snapshot) {
  // New data is newer than everything already in L1.
  std::vector<L0TableRef> old_l1 = levels_[0];
  inputs.push_back(NewRunIterator(icmp_, old_l1));

  // Reuse the internal-compaction merge machinery for the rewrite: it
  // dedupes by user key, honors the snapshot floor and splits the output
  // into target-sized files. Tombstones survive unless this store is empty
  // below L1.
  bool bottom = true;
  for (int level = 1; level < NumLevels(); ++level) {
    if (!levels_[level].empty()) {
      bottom = false;
      break;
    }
  }

  std::vector<L0TableRef> temp_tables;  // adapt iterators into the API
  InternalCompactionOptions copts;
  copts.target_table_bytes = options_.target_file_bytes;
  copts.drop_tombstones = bottom;
  copts.oldest_snapshot = oldest_snapshot;

  // RunInternalCompaction takes tables, not iterators; merge here instead
  // and drive the factory directly with the same dedup/segment helpers via
  // a local merged stream.
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(icmp_, std::move(inputs)));
  merged->SeekToFirst();

  std::vector<L0TableRef> outputs;
  std::string last_user_key;
  bool has_last = false;
  SequenceNumber last_visible = 0;

  while (merged->Valid()) {
    // Build one output file worth of deduplicated records.
    class FileSlice final : public Iterator {
     public:
      FileSlice(Iterator* base, const InternalKeyComparator* icmp,
                uint64_t limit_bytes, bool drop_tombstones,
                SequenceNumber snapshot_floor, std::string* last_user_key,
                bool* has_last, SequenceNumber* last_visible)
          : base_(base),
            icmp_(icmp),
            limit_(limit_bytes),
            drop_tombstones_(drop_tombstones),
            floor_(snapshot_floor),
            last_key_(last_user_key),
            has_last_(has_last),
            last_visible_(last_visible) {
        SkipObsolete();
      }

      bool Valid() const override {
        return base_->Valid() && emitted_ < limit_;
      }
      void SeekToFirst() override {}
      void SeekToLast() override {}
      void Seek(const Slice&) override {}
      void Prev() override {}
      void Next() override {
        emitted_ += base_->key().size() + base_->value().size();
        base_->Next();
        SkipObsolete();
      }
      Slice key() const override { return base_->key(); }
      Slice value() const override { return base_->value(); }
      Status status() const override { return base_->status(); }

     private:
      void SkipObsolete() {
        while (base_->Valid()) {
          ParsedInternalKey parsed;
          if (!ParseInternalKey(base_->key(), &parsed)) return;
          bool same = *has_last_ &&
                      icmp_->user_comparator()->Compare(
                          parsed.user_key, Slice(*last_key_)) == 0;
          if (same) {
            if (*last_visible_ <= floor_) {
              base_->Next();
              continue;
            }
            *last_visible_ = parsed.sequence;
            return;
          }
          last_key_->assign(parsed.user_key.data(), parsed.user_key.size());
          *has_last_ = true;
          *last_visible_ = parsed.sequence;
          if (drop_tombstones_ && parsed.type == kTypeDeletion &&
              parsed.sequence <= floor_) {
            base_->Next();
            continue;
          }
          return;
        }
      }

      Iterator* base_;
      const InternalKeyComparator* icmp_;
      uint64_t limit_;
      bool drop_tombstones_;
      SequenceNumber floor_;
      std::string* last_key_;
      bool* has_last_;
      SequenceNumber* last_visible_;
      uint64_t emitted_ = 0;
    };

    FileSlice slice(merged.get(), icmp_, options_.target_file_bytes,
                    copts.drop_tombstones, oldest_snapshot, &last_user_key,
                    &has_last, &last_visible);
    L0TableRef out;
    PMBLADE_RETURN_IF_ERROR(factory_->BuildFrom(&slice, &out));
    if (out == nullptr) break;  // everything left was obsolete
    outputs.push_back(std::move(out));
  }
  PMBLADE_RETURN_IF_ERROR(merged->status());
  merged.reset();

  levels_[0] = std::move(outputs);
  for (auto& table : old_l1) table->Destroy();

  return CascadeCompactions(oldest_snapshot);
}

Status LeveledStore::CascadeCompactions(SequenceNumber oldest_snapshot) {
  for (int level = 0; level + 1 < NumLevels(); ++level) {
    while (LevelBytes(level) > TargetBytes(level)) {
      PMBLADE_RETURN_IF_ERROR(CompactLevel(level, oldest_snapshot));
    }
  }
  return Status::OK();
}

Status LeveledStore::CompactLevel(int level, SequenceNumber oldest_snapshot) {
  if (levels_[level].empty()) return Status::OK();

  // Round-robin pick one file from `level`, plus all overlapping files in
  // level+1.
  size_t pick = compact_cursor_[level] % levels_[level].size();
  compact_cursor_[level] = pick + 1;
  L0TableRef input = levels_[level][pick];

  std::vector<L0TableRef> overlapping;
  std::vector<L0TableRef> next_keep;
  const Comparator* ucmp = icmp_->user_comparator();
  for (const auto& table : levels_[level + 1]) {
    bool overlaps =
        ucmp->Compare(ExtractUserKey(table->largest()),
                      ExtractUserKey(input->smallest())) >= 0 &&
        ucmp->Compare(ExtractUserKey(table->smallest()),
                      ExtractUserKey(input->largest())) <= 0;
    if (overlaps) {
      overlapping.push_back(table);
    } else {
      next_keep.push_back(table);
    }
  }

  bool bottom = true;
  for (int l = level + 2; l < NumLevels(); ++l) {
    if (!levels_[l].empty()) {
      bottom = false;
      break;
    }
  }

  std::vector<L0TableRef> inputs = {input};
  for (auto& table : overlapping) inputs.push_back(table);

  InternalCompactionOptions copts;
  copts.target_table_bytes = options_.target_file_bytes;
  copts.drop_tombstones = bottom;
  copts.oldest_snapshot = oldest_snapshot;

  std::vector<L0TableRef> outputs;
  InternalCompactionStats stats;
  PMBLADE_RETURN_IF_ERROR(RunInternalCompaction(copts, *icmp_, inputs,
                                                factory_, &outputs, &stats));

  // Remove the input from `level`.
  std::vector<L0TableRef> level_keep;
  for (const auto& table : levels_[level]) {
    if (table->id() != input->id()) level_keep.push_back(table);
  }
  levels_[level] = std::move(level_keep);

  // Merge outputs into level+1's run, keeping key order (outputs span the
  // input range, disjoint from next_keep).
  std::vector<L0TableRef> new_next;
  size_t out_idx = 0;
  for (const auto& table : next_keep) {
    while (out_idx < outputs.size() &&
           ucmp->Compare(ExtractUserKey(outputs[out_idx]->smallest()),
                         ExtractUserKey(table->smallest())) < 0) {
      new_next.push_back(outputs[out_idx++]);
    }
    new_next.push_back(table);
  }
  while (out_idx < outputs.size()) new_next.push_back(outputs[out_idx++]);
  levels_[level + 1] = std::move(new_next);

  input->Destroy();
  for (auto& table : overlapping) table->Destroy();
  return Status::OK();
}

Status LeveledStore::Get(const LookupKey& lkey, std::string* value,
                         bool* found, Status* result_status) const {
  *found = false;
  for (const auto& run : levels_) {
    PMBLADE_RETURN_IF_ERROR(
        RunGet(run, *icmp_, lkey, value, found, result_status));
    if (*found) return Status::OK();
  }
  return Status::OK();
}

void LeveledStore::AppendIterators(std::vector<Iterator*>* children) const {
  for (const auto& run : levels_) {
    if (!run.empty()) {
      children->push_back(NewRunIterator(icmp_, run));
    }
  }
}

}  // namespace pmblade
