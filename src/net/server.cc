#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "util/clock.h"

namespace pmblade {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + strerror(errno));
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// One epoll loop + its share of the connections. Only the worker thread
// touches its connection map; the acceptor communicates through
// pending_fds_ (mutex) + the eventfd.
class Server::Worker {
 public:
  Worker(Server* server, int index) : server_(server), index_(index) {}

  ~Worker() {
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (wake_fd_ >= 0) close(wake_fd_);
  }

  Status Start() {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return Errno("epoll_create1");
    wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) return Errno("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
      return Errno("epoll_ctl(wake)");
    }
    thread_ = std::thread([this] { Loop(); });
    return Status::OK();
  }

  /// Called from the acceptor thread.
  void AddConnection(int fd) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_fds_.push_back(fd);
    }
    Wake();
  }

  /// Called from Stop(): execute what is buffered, flush, close, exit.
  void BeginDrain() {
    draining_.store(true, std::memory_order_release);
    Wake();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  size_t num_connections() const {
    return num_connections_.load(std::memory_order_acquire);
  }

 private:
  struct Connection {
    int fd = -1;
    RespParser parser;
    CommandHandler::Session session;  // SCAN walk state (pinned snapshot)
    std::string out;
    size_t out_sent = 0;
    bool want_close = false;     // close once the reply buffer drains
    bool reading_paused = false; // EPOLLIN off: output cap exceeded
    bool want_write = false;     // EPOLLOUT armed

    size_t pending_out() const { return out.size() - out_sent; }

    explicit Connection(const RespParser::Limits& limits)
        : parser(limits) {}
  };

  void Wake() {
    uint64_t one = 1;
    ssize_t ignored = write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }

  void Loop() {
    epoll_event events[64];
    const uint64_t drain_deadline_slack =
        server_->options_.drain_timeout_millis * 1000000ull;
    uint64_t drain_deadline = 0;

    while (true) {
      const bool draining = draining_.load(std::memory_order_acquire);
      int timeout_ms = draining ? 20 : -1;
      int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
      if (n < 0 && errno != EINTR) break;

      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wake_fd_) {
          uint64_t drained;
          while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
          }
          continue;
        }
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        Connection& conn = it->second;
        if (conn.fd < 0) continue;  // closed earlier in this batch
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          Close(conn);
          continue;
        }
        if (events[i].events & EPOLLOUT) {
          FlushOutput(conn);
          if (conn.fd < 0) continue;  // closed during flush
        }
        if ((events[i].events & EPOLLIN) && !draining) {
          HandleReadable(conn);
        }
      }
      // Reap before adopting: a just-closed fd number may be reused by the
      // very next accept.
      ReapClosed();
      std::vector<int> adopted;
      {
        std::lock_guard<std::mutex> lock(mu_);
        adopted.swap(pending_fds_);
      }
      for (int fd : adopted) Adopt(fd);
      ReapClosed();

      if (draining) {
        if (drain_deadline == 0) {
          drain_deadline =
              server_->clock_->NowNanos() + drain_deadline_slack;
          DrainBufferedCommands();
        }
        for (auto& [fd, conn] : conns_) {
          (void)fd;
          if (conn.fd < 0) continue;
          FlushOutput(conn);
          if (conn.fd >= 0 && conn.pending_out() == 0) Close(conn);
        }
        ReapClosed();
        if (conns_.empty() ||
            server_->clock_->NowNanos() > drain_deadline) {
          break;
        }
      }
    }
    // Whatever is left (drain deadline blown, or stray pending adds) is
    // closed hard.
    std::vector<int> leftover;
    {
      std::lock_guard<std::mutex> lock(mu_);
      leftover.swap(pending_fds_);
    }
    for (int fd : leftover) {
      close(fd);
      server_->metrics_.connections_active->Add(-1);
      server_->metrics_.connections_closed->Inc();
    }
    for (auto& [fd, conn] : conns_) {
      (void)fd;
      if (conn.fd >= 0) Close(conn);
    }
    ReapClosed();
  }

  void Adopt(int fd) {
    SetNonBlocking(fd);
    auto [it, inserted] = conns_.emplace(
        fd, Connection(server_->options_.parser_limits));
    it->second.fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      conns_.erase(it);
      close(fd);
      server_->metrics_.connections_active->Add(-1);
      server_->metrics_.connections_closed->Inc();
      return;
    }
    num_connections_.store(conns_.size(), std::memory_order_release);
    if (draining_.load(std::memory_order_acquire)) {
      // Raced with shutdown: accepted but never served.
      Close(it->second);
    }
  }

  void UpdateEpoll(Connection& conn) {
    epoll_event ev{};
    ev.events = 0;
    if (!conn.reading_paused) ev.events |= EPOLLIN;
    if (conn.want_write) ev.events |= EPOLLOUT;
    ev.data.fd = conn.fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  /// Marks the connection dead and releases its fd. The map entry survives
  /// until ReapClosed() so iterators and references held by callers up the
  /// stack stay valid; every path re-checks `conn.fd < 0` after calls that
  /// may close.
  void Close(Connection& conn) {
    const int fd = conn.fd;
    if (fd < 0) return;
    // Release the SCAN walk's pinned snapshot promptly — the map entry
    // lingers until ReapClosed(), and an abandoned cursor must not keep a
    // snapshot (and the old versions it pins) alive with it.
    conn.session.Release();
    server_->metrics_.output_backlog->Add(
        -static_cast<int64_t>(conn.pending_out()));
    conn.fd = -1;
    conn.out.clear();
    conn.out_sent = 0;
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    close(fd);
    dead_.push_back(fd);
    server_->metrics_.connections_active->Add(-1);
    server_->metrics_.connections_closed->Inc();
  }

  void ReapClosed() {
    if (dead_.empty()) return;
    for (int fd : dead_) conns_.erase(fd);
    dead_.clear();
    num_connections_.store(conns_.size(), std::memory_order_release);
  }

  void HandleReadable(Connection& conn) {
    char buf[16 << 10];
    const size_t chunk =
        std::min(sizeof(buf), server_->options_.read_chunk_bytes);
    bool peer_closed = false;
    size_t total = 0;
    while (total < server_->options_.read_chunk_bytes) {
      ssize_t n = read(conn.fd, buf, chunk);
      if (n > 0) {
        total += static_cast<size_t>(n);
        server_->metrics_.bytes_in->Inc(static_cast<uint64_t>(n));
        conn.parser.Feed(buf, static_cast<size_t>(n));
        if (static_cast<size_t>(n) < chunk) break;
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      peer_closed = true;  // hard error: tear down after processing
      break;
    }

    ProcessParsedCommands(conn);
    if (conn.fd < 0) return;
    if (peer_closed) {
      // Flush whatever replies we owe, then close.
      conn.want_close = true;
    }
    FlushOutput(conn);
    if (conn.fd < 0) return;

    // Output-cap backpressure: a client that pipelines faster than it reads
    // stops being read until it catches up.
    if (!conn.reading_paused &&
        conn.pending_out() > server_->options_.max_output_buffer_bytes) {
      conn.reading_paused = true;
      server_->metrics_.read_pauses->Inc();
      UpdateEpoll(conn);
    }
    if (peer_closed && conn.fd >= 0 && conn.pending_out() == 0) {
      Close(conn);
    }
  }

  void ProcessParsedCommands(Connection& conn) {
    RespValue value;
    while (conn.fd >= 0) {
      RespParser::Result r = conn.parser.Next(&value);
      if (r == RespParser::Result::kNeedMore) break;
      if (r == RespParser::Result::kError) {
        server_->metrics_.parse_errors->Inc();
        // This -ERR counts as an error reply too: error_replies is the
        // census of every "-" line sent, parse_errors the subset that is
        // fatal to its connection.
        server_->metrics_.error_replies->Inc();
        const size_t before = conn.out.size();
        EncodeError("ERR Protocol error: " + conn.parser.error(),
                    &conn.out);
        server_->metrics_.output_backlog->Add(
            static_cast<int64_t>(conn.out.size() - before));
        conn.want_close = true;
        break;
      }
      const size_t before = conn.out.size();
      CommandHandler::Result res =
          server_->handler_->Execute(value, &conn.session, &conn.out);
      server_->metrics_.output_backlog->Add(
          static_cast<int64_t>(conn.out.size() - before));
      if (res.shutdown_server) server_->RequestShutdown();
      if (res.close_connection) {
        conn.want_close = true;
        break;
      }
    }
  }

  /// During drain: commands fully received before the shutdown are still
  /// executed ("finish in-flight") even though no new bytes are read.
  void DrainBufferedCommands() {
    for (auto& [fd, conn] : conns_) {
      (void)fd;
      if (conn.fd >= 0) ProcessParsedCommands(conn);
    }
  }

  void FlushOutput(Connection& conn) {
    while (conn.pending_out() > 0) {
      ssize_t n = write(conn.fd, conn.out.data() + conn.out_sent,
                        conn.pending_out());
      if (n > 0) {
        conn.out_sent += static_cast<size_t>(n);
        server_->metrics_.bytes_out->Inc(static_cast<uint64_t>(n));
        server_->metrics_.output_backlog->Add(-static_cast<int64_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn.want_write) {
          conn.want_write = true;
          UpdateEpoll(conn);
        }
        return;
      }
      Close(conn);  // broken pipe etc.
      return;
    }
    // Fully flushed.
    conn.out.clear();
    conn.out_sent = 0;
    bool update = false;
    if (conn.want_write) {
      conn.want_write = false;
      update = true;
    }
    if (conn.reading_paused &&
        conn.pending_out() <= server_->options_.max_output_buffer_bytes / 2) {
      conn.reading_paused = false;
      update = true;
    }
    if (conn.want_close) {
      Close(conn);
      return;
    }
    if (update) UpdateEpoll(conn);
  }

  Server* server_;
  int index_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;

  std::mutex mu_;
  std::vector<int> pending_fds_;
  std::atomic<bool> draining_{false};
  std::atomic<size_t> num_connections_{0};

  std::unordered_map<int, Connection> conns_;
  std::vector<int> dead_;  // closed this cycle, awaiting ReapClosed()
};

Server::Server(const ServerOptions& options, DB* db)
    : options_(options), db_(db) {
  logger_ = options_.logger != nullptr ? options_.logger : NullLogger();
  clock_ = options_.clock != nullptr ? options_.clock : SystemClock();
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load()) return Status::Busy("server already running");
  if (options_.num_workers < 1) options_.num_workers = 1;

  obs::MetricsRegistry* registry = options_.metrics != nullptr
                                       ? options_.metrics
                                       : db_->metrics_registry();
  metrics_.Register(registry);
  handler_.reset(
      new CommandHandler(db_, options_.handler, &metrics_, clock_));

  shutdown_event_fd_ = eventfd(0, EFD_CLOEXEC);
  accept_wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (shutdown_event_fd_ < 0 || accept_wake_fd_ < 0) {
    return Errno("eventfd");
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind " + options_.host + ":" +
                 std::to_string(options_.port));
  }
  if (listen(listen_fd_, options_.listen_backlog) < 0) {
    return Errno("listen");
  }
  SetNonBlocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  handler_->AddInfoLine("tcp_port", std::to_string(port_));
  handler_->AddInfoLine("io_threads", std::to_string(options_.num_workers));

  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(new Worker(this, i));
    Status s = workers_.back()->Start();
    if (!s.ok()) {
      Stop();
      return s;
    }
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  PMBLADE_INFO(logger_, "pmblade server listening on %s:%d (%d workers)",
               options_.host.c_str(), port_, options_.num_workers);
  return Status::OK();
}

void Server::AcceptLoop() {
  int epfd = epoll_create1(EPOLL_CLOEXEC);
  if (epfd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epfd, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.fd = accept_wake_fd_;
  epoll_ctl(epfd, EPOLL_CTL_ADD, accept_wake_fd_, &ev);

  epoll_event events[8];
  while (!accept_stop_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epfd, events, 8, -1);
    if (n < 0 && errno != EINTR) break;
    bool accept_ready = false;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == listen_fd_) accept_ready = true;
      if (events[i].data.fd == accept_wake_fd_) {
        uint64_t drained;
        while (read(accept_wake_fd_, &drained, sizeof(drained)) > 0) {
        }
      }
    }
    if (!accept_ready) continue;
    while (true) {
      int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN (or transient error): back to epoll
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      metrics_.connections_accepted->Inc();
      metrics_.connections_active->Add(1);
      const size_t target =
          next_worker_.fetch_add(1, std::memory_order_relaxed) %
          workers_.size();
      workers_[target]->AddConnection(fd);
    }
  }
  close(epfd);
}

void Server::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (shutdown_event_fd_ >= 0) {
    uint64_t one = 1;
    ssize_t ignored = write(shutdown_event_fd_, &one, sizeof(one));
    (void)ignored;
  }
}

void Server::WaitForShutdownRequest() {
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    uint64_t value;
    ssize_t n = read(shutdown_event_fd_, &value, sizeof(value));
    if (n < 0 && errno != EINTR) break;
  }
}

void Server::Stop() {
  if (stopped_.exchange(true)) return;

  // 1. Stop accepting.
  accept_stop_.store(true, std::memory_order_release);
  if (accept_wake_fd_ >= 0) {
    uint64_t one = 1;
    ssize_t ignored = write(accept_wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Drain workers: execute buffered commands, flush replies, close.
  for (auto& worker : workers_) worker->BeginDrain();
  for (auto& worker : workers_) worker->Join();
  workers_.clear();

  // 3. Settle the engine so a follow-up Open starts clean. Acked writes are
  // already WAL-durable; this just empties the memtable into level-0.
  if (options_.flush_on_drain && db_ != nullptr && running_.load()) {
    Status s = db_->FlushMemTable();
    if (!s.ok()) {
      PMBLADE_WARN(logger_, "drain flush: %s", s.ToString().c_str());
    }
  }
  running_.store(false, std::memory_order_release);

  if (accept_wake_fd_ >= 0) {
    close(accept_wake_fd_);
    accept_wake_fd_ = -1;
  }
  if (shutdown_event_fd_ >= 0) {
    // Unblock any WaitForShutdownRequest() stragglers first.
    RequestShutdown();
    close(shutdown_event_fd_);
    shutdown_event_fd_ = -1;
  }
  PMBLADE_INFO(logger_, "pmblade server stopped");
}

}  // namespace net
}  // namespace pmblade
