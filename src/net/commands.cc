#include "net/commands.h"

#include <algorithm>
#include <cctype>

#include "memtable/write_batch.h"

namespace pmblade {
namespace net {

namespace {

const char* kCommandNames[] = {
    "get",  "set",  "del",     "mget",   "mset", "exists",
    "scan", "dbsize", "ping",  "echo",   "info", "command",
    "select", "quit", "shutdown", "unknown",
};

std::string ToLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

CommandId LookupCommand(const std::string& lower_name) {
  for (size_t i = 0; i < static_cast<size_t>(CommandId::kUnknown); ++i) {
    if (lower_name == kCommandNames[i]) return static_cast<CommandId>(i);
  }
  return CommandId::kUnknown;
}

}  // namespace

const char* CommandName(CommandId id) {
  return kCommandNames[static_cast<size_t>(id)];
}

void ServerMetrics::Register(obs::MetricsRegistry* registry) {
  connections_accepted =
      registry->GetCounter("pmblade.server.connections_accepted");
  connections_closed =
      registry->GetCounter("pmblade.server.connections_closed");
  connections_active = registry->GetGauge("pmblade.server.connections");
  bytes_in = registry->GetCounter("pmblade.server.bytes_in");
  bytes_out = registry->GetCounter("pmblade.server.bytes_out");
  commands = registry->GetCounter("pmblade.server.commands");
  error_replies = registry->GetCounter("pmblade.server.error_replies");
  parse_errors = registry->GetCounter("pmblade.server.parse_errors");
  sheds = registry->GetCounter("pmblade.server.sheds");
  read_pauses = registry->GetCounter("pmblade.server.read_pauses");
  output_backlog = registry->GetGauge("pmblade.server.output_backlog_bytes");
  command_nanos = registry->GetHistogram("pmblade.server.command_nanos");
  per_command.resize(static_cast<size_t>(CommandId::kUnknown) + 1);
  for (size_t i = 0; i < per_command.size(); ++i) {
    per_command[i] = registry->GetCounter(
        std::string("pmblade.server.cmd.") +
        kCommandNames[i]);
  }
}

CommandHandler::CommandHandler(DB* db, const CommandHandlerOptions& options,
                               ServerMetrics* metrics, Clock* clock)
    : db_(db), options_(options), metrics_(metrics), clock_(clock) {
  if (!options_.pressure_probe) {
    options_.pressure_probe = [db](const Slice& key) {
      return db->GetWritePressure(key);
    };
  }
  if (options_.scan_default_count < 1) options_.scan_default_count = 1;
  if (options_.scan_max_count < options_.scan_default_count) {
    options_.scan_max_count = options_.scan_default_count;
  }
}

void CommandHandler::AddInfoLine(const std::string& key,
                                 const std::string& value) {
  info_lines_.emplace_back(key, value);
}

void CommandHandler::ReplyError(const std::string& msg, std::string* out) {
  metrics_->error_replies->Inc();
  EncodeError(msg, out);
}

void CommandHandler::WrongArity(const std::string& name, std::string* out) {
  ReplyError("ERR wrong number of arguments for '" + name + "' command",
             out);
}

void CommandHandler::ReplyStatus(const Status& status, std::string* out) {
  if (status.ok()) {
    EncodeSimpleString("OK", out);
  } else {
    ReplyError("ERR " + status.ToString(), out);
  }
}

bool CommandHandler::AdmitWrite(const std::vector<const std::string*>& keys,
                                std::string* out) {
  WritePressure pressure = WritePressure::kNone;
  for (const std::string* key : keys) {
    const WritePressure p = options_.pressure_probe(*key);
    if (static_cast<int>(p) > static_cast<int>(pressure)) pressure = p;
    if (pressure == WritePressure::kStall) break;
  }
  const bool shed =
      pressure == WritePressure::kStall ||
      (options_.shed_on_slowdown && pressure == WritePressure::kSlowdown);
  if (!shed) return true;
  metrics_->sheds->Inc();
  ReplyError(std::string("BUSY engine write pressure: ") +
                 WritePressureName(pressure) + "; retry later",
             out);
  return false;
}

CommandHandler::Result CommandHandler::Execute(const RespValue& command,
                                               Session* session,
                                               std::string* out) {
  Result result;
  if (command.type != RespValue::Type::kArray) {
    metrics_->parse_errors->Inc();
    ReplyError("ERR Protocol error: expected command array", out);
    result.close_connection = true;
    return result;
  }
  if (command.array.empty()) return result;  // stray inline newline
  // Commands are arrays of bulk strings; inline commands parse to the same
  // shape. Anything else in an argument position is a protocol error.
  std::vector<const std::string*> args;
  args.reserve(command.array.size());
  for (const RespValue& element : command.array) {
    if (element.type != RespValue::Type::kBulkString &&
        element.type != RespValue::Type::kSimpleString) {
      metrics_->parse_errors->Inc();
      ReplyError("ERR Protocol error: command arguments must be bulk "
                 "strings",
                 out);
      result.close_connection = true;
      return result;
    }
    args.push_back(&element.str);
  }

  const uint64_t start = clock_->NowNanos();
  result = DoExecute(args, session, out);
  metrics_->command_nanos->Observe(clock_->NowNanos() - start);
  return result;
}

CommandHandler::Result CommandHandler::DoExecute(
    const std::vector<const std::string*>& args, Session* session,
    std::string* out) {
  Result result;
  const std::string name = ToLower(*args[0]);
  const CommandId id = LookupCommand(name);
  metrics_->commands->Inc();
  metrics_->per_command[static_cast<size_t>(id)]->Inc();

  switch (id) {
    case CommandId::kPing:
      if (args.size() == 1) {
        EncodeSimpleString("PONG", out);
      } else if (args.size() == 2) {
        EncodeBulkString(*args[1], out);
      } else {
        WrongArity(name, out);
      }
      return result;

    case CommandId::kEcho:
      if (args.size() != 2) {
        WrongArity(name, out);
      } else {
        EncodeBulkString(*args[1], out);
      }
      return result;

    case CommandId::kGet: {
      if (args.size() != 2) {
        WrongArity(name, out);
        return result;
      }
      std::string value;
      Status s = db_->Get(ReadOptions(), *args[1], &value);
      if (s.ok()) {
        EncodeBulkString(value, out);
      } else if (s.IsNotFound()) {
        EncodeNullBulkString(out);
      } else {
        ReplyError("ERR " + s.ToString(), out);
      }
      return result;
    }

    case CommandId::kSet: {
      if (args.size() != 3) {
        WrongArity(name, out);
        return result;
      }
      if (!AdmitWrite({args[1]}, out)) return result;
      ReplyStatus(db_->Put(WriteOptions(), *args[1], *args[2]), out);
      return result;
    }

    case CommandId::kMSet: {
      if (args.size() < 3 || args.size() % 2 != 1) {
        WrongArity(name, out);
        return result;
      }
      std::vector<const std::string*> keys;
      for (size_t i = 1; i + 1 < args.size(); i += 2) keys.push_back(args[i]);
      if (!AdmitWrite(keys, out)) return result;
      WriteBatch batch;
      for (size_t i = 1; i + 1 < args.size(); i += 2) {
        batch.Put(*args[i], *args[i + 1]);
      }
      ReplyStatus(db_->Write(WriteOptions(), &batch), out);
      return result;
    }

    case CommandId::kDel: {
      if (args.size() < 2) {
        WrongArity(name, out);
        return result;
      }
      if (!AdmitWrite({args.begin() + 1, args.end()}, out)) return result;
      // Redis reports how many keys actually existed; probe first, then
      // delete everything in one atomic batch through group commit.
      int64_t removed = 0;
      WriteBatch batch;
      for (size_t i = 1; i < args.size(); ++i) {
        std::string value;
        if (db_->Get(ReadOptions(), *args[i], &value).ok()) ++removed;
        batch.Delete(*args[i]);
      }
      Status s = db_->Write(WriteOptions(), &batch);
      if (s.ok()) {
        EncodeInteger(removed, out);
      } else {
        ReplyError("ERR " + s.ToString(), out);
      }
      return result;
    }

    case CommandId::kExists: {
      if (args.size() < 2) {
        WrongArity(name, out);
        return result;
      }
      int64_t found = 0;
      for (size_t i = 1; i < args.size(); ++i) {
        std::string value;
        if (db_->Get(ReadOptions(), *args[i], &value).ok()) ++found;
      }
      EncodeInteger(found, out);
      return result;
    }

    case CommandId::kMGet: {
      if (args.size() < 2) {
        WrongArity(name, out);
        return result;
      }
      EncodeArrayHeader(args.size() - 1, out);
      for (size_t i = 1; i < args.size(); ++i) {
        std::string value;
        Status s = db_->Get(ReadOptions(), *args[i], &value);
        if (s.ok()) {
          EncodeBulkString(value, out);
        } else {
          EncodeNullBulkString(out);  // including read errors: per-key null
        }
      }
      return result;
    }

    case CommandId::kScan:
      Scan(args, session, out);
      return result;

    case CommandId::kDbSize: {
      if (args.size() != 1) {
        WrongArity(name, out);
        return result;
      }
      std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
      int64_t count = 0;
      for (it->SeekToFirst(); it->Valid(); it->Next()) ++count;
      if (!it->status().ok()) {
        ReplyError("ERR " + it->status().ToString(), out);
      } else {
        EncodeInteger(count, out);
      }
      return result;
    }

    case CommandId::kInfo:
      Info(args, out);
      return result;

    case CommandId::kCommand:
      // redis-cli sends COMMAND (or COMMAND DOCS) on connect; an empty
      // array keeps it happy without maintaining a command table.
      EncodeArrayHeader(0, out);
      return result;

    case CommandId::kSelect:
      // Single keyspace; accept any index for client compatibility.
      if (args.size() != 2) {
        WrongArity(name, out);
      } else {
        EncodeSimpleString("OK", out);
      }
      return result;

    case CommandId::kQuit:
      EncodeSimpleString("OK", out);
      result.close_connection = true;
      return result;

    case CommandId::kShutdown:
      // Matches Redis: a successful SHUTDOWN sends no reply; the connection
      // just closes as the server drains.
      result.close_connection = true;
      result.shutdown_server = true;
      return result;

    case CommandId::kUnknown:
      break;
  }

  ReplyError("ERR unknown command '" + *args[0] + "'", out);
  return result;
}

// SCAN cursor [MATCH glob] [COUNT n]
//
// Open an iterator, seek to the cursor, walk up to COUNT live keys. The
// returned cursor is the last key visited plus a NUL byte — the
// exclusive-successor key — so the next page resumes exactly where this
// one stopped regardless of concurrent writers, flushes or compactions in
// between (keys are totally ordered; a key can never move). Cursor "0"
// starts a walk, and "0" comes back when done. Like Redis, COUNT bounds
// keys *scanned*, so a MATCH page may return fewer (even zero) keys while
// the cursor still advances.
//
// With a session, cursor "0" pins one engine snapshot and every page of
// the walk reads that same point-in-time view; the pin is dropped when
// the walk completes, when a new walk starts, or when the cursor does not
// match the one we handed out (that page — and the rest of that foreign
// walk — reads latest, like the sessionless path). Without a session each
// page is an independent latest-snapshot read.
void CommandHandler::Scan(const std::vector<const std::string*>& args,
                          Session* session, std::string* out) {
  if (args.size() < 2) {
    WrongArity("scan", out);
    return;
  }
  std::string pattern;
  bool have_pattern = false;
  int64_t count = options_.scan_default_count;
  for (size_t i = 2; i < args.size(); i += 2) {
    if (i + 1 >= args.size()) {
      ReplyError("ERR syntax error", out);
      return;
    }
    const std::string option = ToLower(*args[i]);
    if (option == "match") {
      pattern = *args[i + 1];
      have_pattern = true;
    } else if (option == "count") {
      count = strtoll(args[i + 1]->c_str(), nullptr, 10);
      if (count < 1) {
        ReplyError("ERR syntax error", out);
        return;
      }
      count = std::min<int64_t>(count, options_.scan_max_count);
    } else {
      ReplyError("ERR syntax error", out);
      return;
    }
  }

  const std::string& cursor = *args[1];
  ReadOptions read_options;
  if (session != nullptr) {
    if (cursor == "0") {
      // New walk: re-pin, releasing any walk this connection abandoned.
      session->Release();
      session->db_ = db_;
      session->snapshot_ = db_->GetSnapshot();
      session->has_snapshot_ = true;
      read_options.snapshot = session->snapshot_;
    } else if (session->has_snapshot_ && cursor == session->expected_cursor_) {
      read_options.snapshot = session->snapshot_;
    } else {
      // A cursor we never handed out (client resumed across reconnects, or
      // interleaved walks): don't serve it stale state from an unrelated
      // walk.
      session->Release();
    }
  }
  std::unique_ptr<Iterator> it(db_->NewIterator(read_options));
  if (cursor == "0") {
    it->SeekToFirst();
  } else {
    it->Seek(cursor);
  }

  std::vector<std::string> keys;
  std::string next_cursor = "0";
  int64_t scanned = 0;
  for (; it->Valid() && scanned < count; it->Next()) {
    ++scanned;
    Slice key = it->key();
    if (!have_pattern || GlobMatch(pattern, key)) {
      keys.emplace_back(key.data(), key.size());
    }
    if (scanned == count) {
      // Resume after this key next page.
      next_cursor.assign(key.data(), key.size());
      next_cursor.push_back('\0');
    }
  }
  if (!it->status().ok()) {
    if (session != nullptr) session->Release();
    ReplyError("ERR " + it->status().ToString(), out);
    return;
  }
  if (!it->Valid()) next_cursor = "0";  // walk finished inside this page

  if (session != nullptr && session->has_snapshot_) {
    if (next_cursor == "0") {
      session->Release();
    } else {
      session->expected_cursor_ = next_cursor;
    }
  }

  EncodeArrayHeader(2, out);
  EncodeBulkString(next_cursor, out);
  EncodeArrayHeader(keys.size(), out);
  for (const std::string& key : keys) EncodeBulkString(key, out);
}

// INFO [server|engine|memory|lsm|shards]
//
// Built straight from the metrics registry snapshot — the single source of
// truth the JSON/Prometheus exporters read — never by re-parsing their
// output. Redis-style sections: "# Server" (static facts + connection
// state), "# Engine" (every pmblade.* counter/gauge; histograms as
// count/p50/p99), "# Memory" (the memory arbiter's budget split and
// pressure state, as one JSON document), "# Lsm" (the compaction policy
// plus per-level run/file/byte shape and the write-amp inputs), "# Shards"
// (per-shard pressure breakdown; only on a sharded engine).
void CommandHandler::Info(const std::vector<const std::string*>& args,
                          std::string* out) {
  bool want_server = true;
  bool want_engine = true;
  bool want_memory = true;
  bool want_lsm = true;
  bool want_shards = db_->num_shards() > 1;
  if (args.size() == 2) {
    const std::string section = ToLower(*args[1]);
    want_server = section == "server";
    want_engine = section == "engine";
    want_memory = section == "memory";
    want_lsm = section == "lsm";
    want_shards = want_shards && section == "shards";
    if (!want_server && !want_engine && !want_memory && !want_lsm &&
        !want_shards) {
      EncodeBulkString("", out);
      return;
    }
  } else if (args.size() > 2) {
    WrongArity("info", out);
    return;
  }

  std::string body;
  if (want_server) {
    body += "# Server\r\n";
    body += "engine:pmblade\r\n";
    body += "protocol:RESP2\r\n";
    for (const auto& [key, value] : info_lines_) {
      body += key + ":" + value + "\r\n";
    }
    body += "connected_clients:" +
            std::to_string(metrics_->connections_active->Value()) + "\r\n";
    body += "total_commands_processed:" +
            std::to_string(metrics_->commands->Value()) + "\r\n";
    body += "total_net_input_bytes:" +
            std::to_string(metrics_->bytes_in->Value()) + "\r\n";
    body += "total_net_output_bytes:" +
            std::to_string(metrics_->bytes_out->Value()) + "\r\n";
    body += "write_pressure:" +
            std::string(WritePressureName(db_->GetWritePressure())) + "\r\n";
  }
  if (want_shards) {
    if (!body.empty()) body += "\r\n";
    body += "# Shards\r\n";
    const uint32_t shards = db_->num_shards();
    body += "shard_count:" + std::to_string(shards) + "\r\n";
    for (uint32_t i = 0; i < shards; ++i) {
      body += "shard" + std::to_string(i) + ":write_pressure=" +
              WritePressureName(db_->GetShardWritePressure(i)) + "\r\n";
    }
  }
  if (want_engine) {
    if (!body.empty()) body += "\r\n";
    body += "# Engine\r\n";
    obs::MetricsSnapshot snapshot =
        db_->metrics_registry()->Snapshot(clock_->NowNanos());
    char line[160];
    for (const obs::MetricSample& sample : snapshot.samples) {
      if (sample.kind == obs::MetricKind::kHistogram) {
        snprintf(line, sizeof(line),
                 "%s:count=%llu,p50=%.0f,p99=%.0f\r\n", sample.name.c_str(),
                 static_cast<unsigned long long>(sample.hist.count()),
                 sample.hist.Percentile(50), sample.hist.Percentile(99));
      } else if (sample.value == static_cast<int64_t>(sample.value)) {
        snprintf(line, sizeof(line), "%s:%lld\r\n", sample.name.c_str(),
                 static_cast<long long>(sample.value));
      } else {
        snprintf(line, sizeof(line), "%s:%.6g\r\n", sample.name.c_str(),
                 sample.value);
      }
      body += line;
    }
  }
  if (want_memory) {
    if (!body.empty()) body += "\r\n";
    body += "# Memory\r\n";
    std::string mem_json;
    if (!db_->GetProperty("pmblade.mem.json", &mem_json)) {
      mem_json = "{\"enabled\": false}";
    }
    body += "mem_arbiter:" + mem_json + "\r\n";
  }
  if (want_lsm) {
    if (!body.empty()) body += "\r\n";
    body += "# Lsm\r\n";
    std::string policy;
    if (db_->GetProperty("pmblade.compaction-policy", &policy)) {
      body += "compaction_policy:" + policy + "\r\n";
    }
    uint64_t deepest = 0;
    db_->GetProperty("pmblade.max-ssd-level", &deepest);
    // Level 0 is the PM side; SSD levels follow up to the deepest occupied.
    for (uint64_t level = 0; level <= deepest; ++level) {
      const std::string prefix =
          "pmblade.lsm.level" + std::to_string(level) + ".";
      uint64_t runs = 0, files = 0, bytes = 0;
      if (!db_->GetProperty(prefix + "runs", &runs)) break;
      db_->GetProperty(prefix + "files", &files);
      db_->GetProperty(prefix + "bytes", &bytes);
      body += "level" + std::to_string(level) + ":runs=" +
              std::to_string(runs) + ",files=" + std::to_string(files) +
              ",bytes=" + std::to_string(bytes) + "\r\n";
    }
    uint64_t v = 0;
    if (db_->GetProperty("pmblade.ssd-user-bytes-written", &v)) {
      body += "ssd_user_bytes_written:" + std::to_string(v) + "\r\n";
    }
    if (db_->GetProperty("pmblade.ssd-bytes-written", &v)) {
      body += "ssd_bytes_written:" + std::to_string(v) + "\r\n";
    }
  }
  EncodeBulkString(body, out);
}

}  // namespace net
}  // namespace pmblade
