// RESP2 (REdis Serialization Protocol) wire codec: an incremental,
// pipelining-friendly parser plus reply encoders.
//
// The parser consumes a byte stream fed in arbitrary chunks (partial reads
// are the normal case under epoll) and yields complete RESP values one at a
// time, leaving any trailing partial value buffered for the next Feed().
// Both sides of the wire use it: the server parses client commands (arrays
// of bulk strings, or inline commands for hand-typed clients), the load
// generator and tests parse server replies (any RESP type, nested arrays
// included).
//
// Defenses, all configurable through RespParser::Limits: oversized bulk
// strings and arrays are rejected before any allocation of that size,
// inline lines are length-capped, and array nesting is depth-capped. A
// limit violation or malformed frame is a PROTOCOL error: the connection
// that produced it cannot be resynchronized and must be closed (Redis
// behaves the same way).

#ifndef PMBLADE_NET_RESP_H_
#define PMBLADE_NET_RESP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace pmblade {
namespace net {

/// One decoded RESP value. kNull is RESP2's null bulk string / null array
/// ("$-1\r\n" / "*-1\r\n").
struct RespValue {
  enum class Type {
    kSimpleString,
    kError,
    kInteger,
    kBulkString,
    kArray,
    kNull,
  };

  Type type = Type::kNull;
  std::string str;               // simple string, error, bulk string
  int64_t integer = 0;           // integer
  std::vector<RespValue> array;  // array

  bool IsError() const { return type == Type::kError; }
  bool IsNull() const { return type == Type::kNull; }
};

// ---- encoders (append to *out; cheap to chain for pipelined replies) ----
void EncodeSimpleString(const Slice& s, std::string* out);  // +s\r\n
void EncodeError(const Slice& msg, std::string* out);       // -msg\r\n
void EncodeInteger(int64_t value, std::string* out);        // :n\r\n
void EncodeBulkString(const Slice& s, std::string* out);    // $n\r\ns\r\n
void EncodeNullBulkString(std::string* out);                // $-1\r\n
/// Array header only; the caller appends the n elements afterwards.
void EncodeArrayHeader(size_t n, std::string* out);         // *n\r\n
/// Convenience: a full array of bulk strings (e.g. a command).
void EncodeBulkStringArray(const std::vector<std::string>& elems,
                           std::string* out);

class RespParser {
 public:
  struct Limits {
    /// Longest accepted bulk-string payload. Redis' default is 512 MiB; the
    /// engine serves KV pairs, so default far lower.
    size_t max_bulk_bytes = 64 << 20;
    /// Most elements in one array (commands are flat; replies may nest).
    size_t max_array_elements = 1 << 20;
    /// Longest accepted inline-command line.
    size_t max_inline_bytes = 64 << 10;
    /// Deepest accepted array nesting.
    int max_depth = 8;
  };

  RespParser() = default;
  explicit RespParser(const Limits& limits) : limits_(limits) {}

  /// Appends raw bytes from the wire.
  void Feed(const char* data, size_t n) { buffer_.append(data, n); }
  void Feed(const Slice& data) { Feed(data.data(), data.size()); }

  enum class Result {
    kValue,     // *value holds the next complete frame
    kNeedMore,  // the buffered bytes end mid-frame; Feed() more
    kError,     // protocol violation; error() says why. Unrecoverable:
                // the stream cannot be resynchronized.
  };

  /// Extracts the next complete value from the buffered bytes. Call in a
  /// loop to drain a pipelined burst. After kError every subsequent call
  /// returns kError.
  Result Next(RespValue* value);

  const std::string& error() const { return error_; }
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  Result ParseValue(size_t* pos, RespValue* value, int depth);
  Result ParseLine(size_t* pos, Slice* line);
  Result ParseInteger(const Slice& line, int64_t* out);
  Result ParseInline(size_t* pos, RespValue* value);
  Result Fail(const std::string& message);
  void Compact();

  Limits limits_;
  std::string buffer_;
  size_t consumed_ = 0;  // bytes of buffer_ already returned as values
  std::string error_;
  bool failed_ = false;
};

/// True when `text` matches the glob `pattern` ('*' any run, '?' any one
/// character, '\' escapes). SCAN's MATCH option.
bool GlobMatch(const Slice& pattern, const Slice& text);

}  // namespace net
}  // namespace pmblade

#endif  // PMBLADE_NET_RESP_H_
