// Server: the RESP network front-end of a pmblade::DB.
//
// Threading model
//   * One acceptor thread owns the listening socket: it accepts, sets
//     TCP_NODELAY, and hands each connection to a worker round-robin.
//   * N worker threads each run a private epoll loop over their share of
//     the connections: read -> incremental RESP parse (pipelining falls out
//     naturally — every complete frame in the buffer is dispatched before
//     the next epoll_wait) -> CommandHandler -> buffered write. Replies to
//     one connection are therefore strictly ordered by request order.
//   * Engine calls run ON the worker thread and may block (group commit
//     sleeps in slowdown/stall). That is deliberate — the engine's
//     backpressure must reach the client — but bounded: admission control
//     sheds write commands with "-BUSY" while the engine reports
//     WritePressure::kStall (see CommandHandlerOptions), so a stalled
//     engine degrades into fast rejections instead of a convoy of blocked
//     workers.
//
// Flow control
//   * Per-connection output cap: when a client pipelines faster than it
//     reads replies and its output buffer passes
//     ServerOptions::max_output_buffer_bytes, the worker STOPS READING that
//     socket (EPOLLIN off, "pmblade.server.read_pauses") until the buffer
//     half-drains. Slow consumers throttle themselves, not the server.
//
// Shutdown
//   * Stop() drains gracefully: stop accepting, execute every command
//     already received, flush all reply buffers (bounded by
//     drain_timeout_millis), close, then FlushMemTable() so the final
//     memtable reaches level-0. Every acknowledged write is durable at the
//     engine's WAL the moment its reply is queued, so a drained shutdown
//     never loses an acked write.
//   * SHUTDOWN (the command) and signal handlers funnel through
//     RequestShutdown(), which is async-signal-safe; the embedding program
//     observes it via WaitForShutdownRequest() and calls Stop().
//
// All instruments live under "pmblade.server.*" in the DB's own metrics
// registry, so "pmblade.stats.json"/"pmblade.stats.prometheus" and INFO
// expose engine and server state in one snapshot.

#ifndef PMBLADE_NET_SERVER_H_
#define PMBLADE_NET_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "net/commands.h"
#include "net/resp.h"
#include "util/logging.h"

namespace pmblade {
namespace net {

struct ServerOptions {
  /// Listen address. port 0 binds an ephemeral port; Server::port() reports
  /// the actual one (tests and the smoke job use this).
  std::string host = "127.0.0.1";
  int port = 6399;
  int num_workers = 2;
  int listen_backlog = 128;

  /// Per-connection reply backlog above which the worker stops reading the
  /// socket until the client catches up.
  size_t max_output_buffer_bytes = 4 << 20;
  /// Read syscall chunk size.
  size_t read_chunk_bytes = 64 << 10;

  RespParser::Limits parser_limits;
  CommandHandlerOptions handler;

  /// Graceful-drain bound: connections whose replies cannot be flushed
  /// within this budget are closed anyway.
  uint64_t drain_timeout_millis = 5000;
  /// Flush the memtable at the end of Stop() so a follow-up Open replays no
  /// WAL (purely an optimization — the WAL already covers acked writes).
  bool flush_on_drain = true;

  /// Registry for "pmblade.server.*"; defaults to db->metrics_registry().
  obs::MetricsRegistry* metrics = nullptr;
  Logger* logger = nullptr;  // defaults to NullLogger()
  Clock* clock = nullptr;    // defaults to SystemClock()
};

class Server {
 public:
  Server(const ServerOptions& options, DB* db);
  ~Server();  // Stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the acceptor + workers. Returns
  /// InvalidArgument/IOError on bad addresses or socket failures.
  Status Start();

  /// Graceful drain (see file comment). Idempotent; safe to call whether or
  /// not Start() succeeded. Must NOT be called from a worker thread — use
  /// RequestShutdown() there.
  void Stop();

  /// Flags a shutdown request and wakes WaitForShutdownRequest(). Safe from
  /// signal handlers and worker threads.
  void RequestShutdown();
  /// Blocks until RequestShutdown() (SHUTDOWN command, signal, or test)
  /// fires. Returns immediately if already requested.
  void WaitForShutdownRequest();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actual bound port (after Start with port 0).
  int port() const { return port_; }

  const ServerMetrics& metrics() const { return metrics_; }

 private:
  class Worker;
  friend class Worker;

  void AcceptLoop();

  ServerOptions options_;
  DB* db_;
  Logger* logger_;
  Clock* clock_;

  int listen_fd_ = -1;
  int accept_wake_fd_ = -1;    // eventfd: wakes the acceptor to exit
  int shutdown_event_fd_ = -1; // eventfd: RequestShutdown -> Wait...
  int port_ = 0;

  ServerMetrics metrics_;
  std::unique_ptr<CommandHandler> handler_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread accept_thread_;
  std::atomic<bool> accept_stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<uint64_t> next_worker_{0};
};

}  // namespace net
}  // namespace pmblade

#endif  // PMBLADE_NET_SERVER_H_
