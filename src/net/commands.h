// Command dispatch: maps parsed RESP commands onto the pmblade::DB API.
//
// One CommandHandler is shared by every server worker thread; it is
// stateless apart from cached metric instruments (lock-free counters), so
// concurrent Execute() calls are safe — the DB itself serializes what needs
// serializing (group commit, snapshots).
//
// Supported commands (RESP2, case-insensitive):
//   PING [msg] | ECHO msg                 liveness
//   GET k | MGET k...                     point reads
//   SET k v | MSET k v [k v ...]          writes (MSET is one atomic
//                                         WriteBatch through group commit)
//   DEL k... | EXISTS k...                deletes / existence probes
//   SCAN cursor [MATCH glob] [COUNT n]    cursor-paged keyspace walk over
//                                         DB::NewIterator (each page is an
//                                         independent snapshot read)
//   DBSIZE                                full key count (O(n) scan)
//   INFO [server|engine]                  exposition built straight from
//                                         the metrics registry snapshot
//   COMMAND [...]                         stub (client handshake compat)
//   SELECT n | QUIT | SHUTDOWN            session control
//
// Admission control: write commands consult the engine's WritePressure
// before dispatching. At kStall (and, when configured, kSlowdown) the
// command is shed with "-BUSY ..." instead of tying a worker thread up
// inside DB::Write — the client is expected to back off and retry. The
// probe is keyed: on a sharded engine each write is judged by the pressure
// of the shard(s) it actually routes to (the worst one for MSET/DEL), so a
// stalled shard never sheds traffic bound for idle shards.

#ifndef PMBLADE_NET_COMMANDS_H_
#define PMBLADE_NET_COMMANDS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/db.h"
#include "net/resp.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace pmblade {
namespace net {

/// The server's instruments, registered under "pmblade.server.*" in the
/// engine's MetricsRegistry so the existing JSON/Prometheus exporters (and
/// INFO) surface them with everything else.
struct ServerMetrics {
  void Register(obs::MetricsRegistry* registry);

  obs::Counter* connections_accepted = nullptr;
  obs::Counter* connections_closed = nullptr;
  obs::Gauge* connections_active = nullptr;
  obs::Counter* bytes_in = nullptr;
  obs::Counter* bytes_out = nullptr;
  obs::Counter* commands = nullptr;       // every dispatched command
  obs::Counter* error_replies = nullptr;  // -ERR/-BUSY replies sent
  obs::Counter* parse_errors = nullptr;   // protocol violations (fatal to
                                          // their connection)
  obs::Counter* sheds = nullptr;          // commands rejected by admission
  obs::Counter* read_pauses = nullptr;    // output-cap backpressure events
  obs::Gauge* output_backlog = nullptr;   // bytes queued to clients
  obs::HistogramMetric* command_nanos = nullptr;

  // Per-command counters, indexed by CommandId.
  std::vector<obs::Counter*> per_command;
};

enum class CommandId {
  kGet = 0,
  kSet,
  kDel,
  kMGet,
  kMSet,
  kExists,
  kScan,
  kDbSize,
  kPing,
  kEcho,
  kInfo,
  kCommand,
  kSelect,
  kQuit,
  kShutdown,
  kUnknown,  // must stay last
};

const char* CommandName(CommandId id);

struct CommandHandlerOptions {
  /// Shed write commands at kSlowdown too (default only at kStall).
  bool shed_on_slowdown = false;
  /// SCAN page size when the client sends no COUNT, and its upper bound.
  int scan_default_count = 10;
  int scan_max_count = 1000;
  /// Keyed admission probe; defaults to db->GetWritePressure(key) (the
  /// routed shard's pressure on a sharded engine, the global pressure on a
  /// single-shard one). Tests inject a fixed-pressure probe to pin shed
  /// behavior without a real stall.
  std::function<WritePressure(const Slice& key)> pressure_probe;
};

class CommandHandler {
 public:
  CommandHandler(DB* db, const CommandHandlerOptions& options,
                 ServerMetrics* metrics, Clock* clock);

  struct Result {
    bool close_connection = false;  // QUIT / SHUTDOWN
    bool shutdown_server = false;   // SHUTDOWN
  };

  /// Dispatches one parsed command, appending exactly one reply to *out
  /// (except SHUTDOWN, which sends nothing — matching Redis — and empty
  /// inline lines, which are ignored). `command` must be an array; anything
  /// else is answered with a protocol error and close_connection.
  Result Execute(const RespValue& command, std::string* out);

  /// Extra "key:value" lines prepended to INFO's "# Server" section
  /// (listen address, worker count — filled in by the server).
  void AddInfoLine(const std::string& key, const std::string& value);

 private:
  Result DoExecute(const std::vector<const std::string*>& args,
                   std::string* out);
  void Info(const std::vector<const std::string*>& args, std::string* out);
  void Scan(const std::vector<const std::string*>& args, std::string* out);
  /// True when the command may proceed; false = shed (reply appended).
  /// Probes every key the write touches and sheds on the WORST pressure,
  /// so a multi-shard MSET/DEL is admitted only when every target shard
  /// can absorb it.
  bool AdmitWrite(const std::vector<const std::string*>& keys,
                  std::string* out);
  void WrongArity(const std::string& name, std::string* out);
  void ReplyStatus(const Status& status, std::string* out);

  DB* db_;
  CommandHandlerOptions options_;
  ServerMetrics* metrics_;
  Clock* clock_;
  std::vector<std::pair<std::string, std::string>> info_lines_;
};

}  // namespace net
}  // namespace pmblade

#endif  // PMBLADE_NET_COMMANDS_H_
