// Command dispatch: maps parsed RESP commands onto the pmblade::DB API.
//
// One CommandHandler is shared by every server worker thread; it is
// stateless apart from cached metric instruments (lock-free counters), so
// concurrent Execute() calls are safe — the DB itself serializes what needs
// serializing (group commit, snapshots). Per-connection state (the SCAN
// walk's pinned snapshot) lives in a CommandHandler::Session owned by the
// connection, which the server releases on teardown so abandoned cursors
// never leak snapshot handles.
//
// Supported commands (RESP2, case-insensitive):
//   PING [msg] | ECHO msg                 liveness
//   GET k | MGET k...                     point reads
//   SET k v | MSET k v [k v ...]          writes (MSET is one atomic
//                                         WriteBatch through group commit)
//   DEL k... | EXISTS k...                deletes / existence probes
//   SCAN cursor [MATCH glob] [COUNT n]    cursor-paged keyspace walk over
//                                         DB::NewIterator (a session-held
//                                         walk pins one engine snapshot
//                                         from cursor "0" until the walk
//                                         finishes; sessionless calls read
//                                         each page independently)
//   DBSIZE                                full key count (O(n) scan)
//   INFO [server|engine]                  exposition built straight from
//                                         the metrics registry snapshot
//   COMMAND [...]                         stub (client handshake compat)
//   SELECT n | QUIT | SHUTDOWN            session control
//
// Admission control: write commands consult the engine's WritePressure
// before dispatching. At kStall (and, when configured, kSlowdown) the
// command is shed with "-BUSY ..." instead of tying a worker thread up
// inside DB::Write — the client is expected to back off and retry. The
// probe is keyed: on a sharded engine each write is judged by the pressure
// of the shard(s) it actually routes to (the worst one for MSET/DEL), so a
// stalled shard never sheds traffic bound for idle shards.

#ifndef PMBLADE_NET_COMMANDS_H_
#define PMBLADE_NET_COMMANDS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/db.h"
#include "net/resp.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace pmblade {
namespace net {

/// The server's instruments, registered under "pmblade.server.*" in the
/// engine's MetricsRegistry so the existing JSON/Prometheus exporters (and
/// INFO) surface them with everything else.
struct ServerMetrics {
  void Register(obs::MetricsRegistry* registry);

  obs::Counter* connections_accepted = nullptr;
  obs::Counter* connections_closed = nullptr;
  obs::Gauge* connections_active = nullptr;
  obs::Counter* bytes_in = nullptr;
  obs::Counter* bytes_out = nullptr;
  obs::Counter* commands = nullptr;       // every dispatched command
  obs::Counter* error_replies = nullptr;  // EVERY "-..." reply sent, exactly
                                          // once each (-ERR, -BUSY, protocol
                                          // errors included)
  obs::Counter* parse_errors = nullptr;   // protocol violations (fatal to
                                          // their connection); these replies
                                          // also count in error_replies
  obs::Counter* sheds = nullptr;          // commands rejected by admission
  obs::Counter* read_pauses = nullptr;    // output-cap backpressure events
  obs::Gauge* output_backlog = nullptr;   // bytes queued to clients
  obs::HistogramMetric* command_nanos = nullptr;

  // Per-command counters, indexed by CommandId.
  std::vector<obs::Counter*> per_command;
};

enum class CommandId {
  kGet = 0,
  kSet,
  kDel,
  kMGet,
  kMSet,
  kExists,
  kScan,
  kDbSize,
  kPing,
  kEcho,
  kInfo,
  kCommand,
  kSelect,
  kQuit,
  kShutdown,
  kUnknown,  // must stay last
};

const char* CommandName(CommandId id);

struct CommandHandlerOptions {
  /// Shed write commands at kSlowdown too (default only at kStall).
  bool shed_on_slowdown = false;
  /// SCAN page size when the client sends no COUNT, and its upper bound.
  int scan_default_count = 10;
  int scan_max_count = 1000;
  /// Keyed admission probe; defaults to db->GetWritePressure(key) (the
  /// routed shard's pressure on a sharded engine, the global pressure on a
  /// single-shard one). Tests inject a fixed-pressure probe to pin shed
  /// behavior without a real stall.
  std::function<WritePressure(const Slice& key)> pressure_probe;
};

class CommandHandler {
 public:
  CommandHandler(DB* db, const CommandHandlerOptions& options,
                 ServerMetrics* metrics, Clock* clock);

  struct Result {
    bool close_connection = false;  // QUIT / SHUTDOWN
    bool shutdown_server = false;   // SHUTDOWN
  };

  /// Per-connection command state. A SCAN walk started with cursor "0"
  /// pins one engine snapshot here so every page of the walk reads the
  /// same point-in-time view (on a sharded engine: consistent across
  /// shards). The snapshot is released when the walk returns cursor "0",
  /// when a new walk starts, when the client presents a cursor that does
  /// not match the pinned walk, and — the leak backstop — when the server
  /// tears the connection down (Release() from Worker::Close and the
  /// destructor).
  class Session {
   public:
    Session() = default;
    ~Session() { Release(); }
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    Session(Session&& other) noexcept { *this = std::move(other); }
    Session& operator=(Session&& other) noexcept {
      if (this != &other) {
        Release();
        db_ = other.db_;
        snapshot_ = other.snapshot_;
        has_snapshot_ = other.has_snapshot_;
        expected_cursor_ = std::move(other.expected_cursor_);
        other.db_ = nullptr;
        other.has_snapshot_ = false;
      }
      return *this;
    }

    /// Releases the pinned snapshot (if any). Safe to call repeatedly.
    void Release() {
      if (has_snapshot_ && db_ != nullptr) db_->ReleaseSnapshot(snapshot_);
      has_snapshot_ = false;
      db_ = nullptr;
      expected_cursor_.clear();
    }

    bool has_snapshot() const { return has_snapshot_; }

   private:
    friend class CommandHandler;
    DB* db_ = nullptr;
    uint64_t snapshot_ = 0;
    bool has_snapshot_ = false;
    /// The cursor we handed the client for the next page; a SCAN with any
    /// other cursor is treated as a new, unrelated walk.
    std::string expected_cursor_;
  };

  /// Dispatches one parsed command, appending exactly one reply to *out
  /// (except SHUTDOWN, which sends nothing — matching Redis — and empty
  /// inline lines, which are ignored). `command` must be an array; anything
  /// else is answered with a protocol error and close_connection.
  /// `session` may be nullptr (stateless: SCAN pages each read their own
  /// snapshot, as before sessions existed).
  Result Execute(const RespValue& command, Session* session,
                 std::string* out);
  Result Execute(const RespValue& command, std::string* out) {
    return Execute(command, nullptr, out);
  }

  /// Extra "key:value" lines prepended to INFO's "# Server" section
  /// (listen address, worker count — filled in by the server).
  void AddInfoLine(const std::string& key, const std::string& value);

 private:
  Result DoExecute(const std::vector<const std::string*>& args,
                   Session* session, std::string* out);
  void Info(const std::vector<const std::string*>& args, std::string* out);
  void Scan(const std::vector<const std::string*>& args, Session* session,
            std::string* out);
  /// True when the command may proceed; false = shed (reply appended).
  /// Probes every key the write touches and sheds on the WORST pressure,
  /// so a multi-shard MSET/DEL is admitted only when every target shard
  /// can absorb it.
  bool AdmitWrite(const std::vector<const std::string*>& keys,
                  std::string* out);
  void WrongArity(const std::string& name, std::string* out);
  void ReplyStatus(const Status& status, std::string* out);
  /// The single funnel for "-..." replies: bumps error_replies exactly
  /// once, then encodes. Every error path — engine errors, arity, syntax,
  /// sheds, protocol violations — goes through here so the counter is an
  /// exact census of error replies sent.
  void ReplyError(const std::string& msg, std::string* out);

  DB* db_;
  CommandHandlerOptions options_;
  ServerMetrics* metrics_;
  Clock* clock_;
  std::vector<std::pair<std::string, std::string>> info_lines_;
};

}  // namespace net
}  // namespace pmblade

#endif  // PMBLADE_NET_COMMANDS_H_
