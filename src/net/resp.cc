#include "net/resp.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace pmblade {
namespace net {

void EncodeSimpleString(const Slice& s, std::string* out) {
  out->push_back('+');
  out->append(s.data(), s.size());
  out->append("\r\n");
}

void EncodeError(const Slice& msg, std::string* out) {
  out->push_back('-');
  out->append(msg.data(), msg.size());
  out->append("\r\n");
}

void EncodeInteger(int64_t value, std::string* out) {
  char buf[32];
  int n = snprintf(buf, sizeof(buf), ":%lld\r\n",
                   static_cast<long long>(value));
  out->append(buf, n);
}

void EncodeBulkString(const Slice& s, std::string* out) {
  char buf[32];
  int n = snprintf(buf, sizeof(buf), "$%zu\r\n", s.size());
  out->append(buf, n);
  out->append(s.data(), s.size());
  out->append("\r\n");
}

void EncodeNullBulkString(std::string* out) { out->append("$-1\r\n"); }

void EncodeArrayHeader(size_t n, std::string* out) {
  char buf[32];
  int len = snprintf(buf, sizeof(buf), "*%zu\r\n", n);
  out->append(buf, len);
}

void EncodeBulkStringArray(const std::vector<std::string>& elems,
                           std::string* out) {
  EncodeArrayHeader(elems.size(), out);
  for (const std::string& e : elems) EncodeBulkString(e, out);
}

RespParser::Result RespParser::Fail(const std::string& message) {
  failed_ = true;
  error_ = message;
  return Result::kError;
}

// Reclaims consumed prefix once it dominates the buffer, so a long-lived
// pipelined connection does not grow its input buffer without bound.
void RespParser::Compact() {
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

RespParser::Result RespParser::ParseLine(size_t* pos, Slice* line) {
  // A line runs to CRLF. Tolerate a bare LF only for inline commands; typed
  // frames require CRLF (checked by the callers via the returned slice).
  size_t eol = buffer_.find('\n', *pos);
  if (eol == std::string::npos) {
    if (buffer_.size() - *pos > limits_.max_inline_bytes) {
      return Fail("line exceeds length limit");
    }
    return Result::kNeedMore;
  }
  size_t end = eol;
  if (end > *pos && buffer_[end - 1] == '\r') --end;
  if (end - *pos > limits_.max_inline_bytes) {
    return Fail("line exceeds length limit");
  }
  *line = Slice(buffer_.data() + *pos, end - *pos);
  *pos = eol + 1;
  return Result::kValue;
}

RespParser::Result RespParser::ParseInteger(const Slice& line, int64_t* out) {
  if (line.size() == 0) return Fail("empty integer");
  size_t i = 0;
  bool negative = false;
  if (line[0] == '-' || line[0] == '+') {
    negative = line[0] == '-';
    i = 1;
    if (line.size() == 1) return Fail("malformed integer");
  }
  int64_t value = 0;
  for (; i < line.size(); ++i) {
    char c = line[i];
    if (c < '0' || c > '9') return Fail("malformed integer");
    if (value > (INT64_MAX - (c - '0')) / 10) {
      return Fail("integer overflows");
    }
    value = value * 10 + (c - '0');
  }
  *out = negative ? -value : value;
  return Result::kValue;
}

// Inline command: a plain text line, split on spaces/tabs into an array of
// bulk strings ("PING\r\n" == "*1\r\n$4\r\nPING\r\n"). Redis accepts these
// so humans can talk to the server with netcat; so do we.
RespParser::Result RespParser::ParseInline(size_t* pos, RespValue* value) {
  Slice line;
  Result r = ParseLine(pos, &line);
  if (r != Result::kValue) return r;
  value->type = RespValue::Type::kArray;
  value->array.clear();
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) {
      RespValue word;
      word.type = RespValue::Type::kBulkString;
      word.str.assign(line.data() + start, i - start);
      value->array.push_back(std::move(word));
    }
  }
  // An empty line parses as an empty command; the dispatcher ignores it
  // (matches Redis, where stray newlines between inline commands are legal).
  return Result::kValue;
}

RespParser::Result RespParser::ParseValue(size_t* pos, RespValue* value,
                                          int depth) {
  if (depth > limits_.max_depth) return Fail("array nesting too deep");
  if (*pos >= buffer_.size()) return Result::kNeedMore;

  const char tag = buffer_[*pos];
  if (tag != '+' && tag != '-' && tag != ':' && tag != '$' && tag != '*') {
    // Not a typed frame. Only top-level bytes may be an inline command;
    // inside an array this is a framing error.
    if (depth > 0) return Fail("expected RESP type byte");
    return ParseInline(pos, value);
  }

  size_t p = *pos + 1;
  Slice line;
  Result r = ParseLine(&p, &line);
  if (r != Result::kValue) return r;

  switch (tag) {
    case '+':
      value->type = RespValue::Type::kSimpleString;
      value->str.assign(line.data(), line.size());
      *pos = p;
      return Result::kValue;
    case '-':
      value->type = RespValue::Type::kError;
      value->str.assign(line.data(), line.size());
      *pos = p;
      return Result::kValue;
    case ':': {
      int64_t n = 0;
      r = ParseInteger(line, &n);
      if (r != Result::kValue) return r;
      value->type = RespValue::Type::kInteger;
      value->integer = n;
      *pos = p;
      return Result::kValue;
    }
    case '$': {
      int64_t n = 0;
      r = ParseInteger(line, &n);
      if (r != Result::kValue) return r;
      if (n == -1) {
        value->type = RespValue::Type::kNull;
        *pos = p;
        return Result::kValue;
      }
      if (n < 0) return Fail("negative bulk length");
      if (static_cast<uint64_t>(n) > limits_.max_bulk_bytes) {
        return Fail("bulk string exceeds length limit");
      }
      const size_t need = static_cast<size_t>(n) + 2;  // payload + CRLF
      if (buffer_.size() - p < need) return Result::kNeedMore;
      if (buffer_[p + n] != '\r' || buffer_[p + n + 1] != '\n') {
        return Fail("bulk string missing CRLF terminator");
      }
      value->type = RespValue::Type::kBulkString;
      value->str.assign(buffer_.data() + p, static_cast<size_t>(n));
      *pos = p + need;
      return Result::kValue;
    }
    case '*': {
      int64_t n = 0;
      r = ParseInteger(line, &n);
      if (r != Result::kValue) return r;
      if (n == -1) {
        value->type = RespValue::Type::kNull;
        *pos = p;
        return Result::kValue;
      }
      if (n < 0) return Fail("negative array length");
      if (static_cast<uint64_t>(n) > limits_.max_array_elements) {
        return Fail("array exceeds element limit");
      }
      value->type = RespValue::Type::kArray;
      value->array.clear();
      value->array.reserve(static_cast<size_t>(
          std::min<int64_t>(n, 1024)));  // defensive: grow as parsed
      for (int64_t i = 0; i < n; ++i) {
        RespValue element;
        r = ParseValue(&p, &element, depth + 1);
        if (r != Result::kValue) return r;
        value->array.push_back(std::move(element));
      }
      *pos = p;
      return Result::kValue;
    }
  }
  return Fail("unreachable");
}

RespParser::Result RespParser::Next(RespValue* value) {
  if (failed_) return Result::kError;
  size_t pos = consumed_;
  Result r = ParseValue(&pos, value, 0);
  if (r == Result::kValue) {
    consumed_ = pos;
    Compact();
  }
  return r;
}

bool GlobMatch(const Slice& pattern, const Slice& text) {
  // Iterative glob with single backtrack point for '*' (classic two-pointer
  // matcher; linear in practice).
  size_t p = 0, t = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    bool matched = false;
    if (p < pattern.size()) {
      char pc = pattern[p];
      if (pc == '*') {
        star_p = p++;
        star_t = t;
        continue;
      }
      size_t advance = 1;
      bool escaped = false;
      if (pc == '\\' && p + 1 < pattern.size()) {
        pc = pattern[p + 1];
        advance = 2;
        escaped = true;
      }
      if ((!escaped && pc == '?') || pc == text[t]) {
        p += advance;
        ++t;
        matched = true;
      }
    }
    if (matched) continue;
    if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
      continue;
    }
    return false;
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace net
}  // namespace pmblade
