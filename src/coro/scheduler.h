// CoroScheduler: a single-threaded cooperative scheduler for compaction
// coroutines (Section V of the paper).
//
// Primitives:
//   * Spawn(Task)          — register a coroutine; it starts on Run().
//   * Yield()              — awaitable; requeue at the back of the ready
//                            queue (interleaves compaction coroutines).
//   * SleepUntil(nanos)    — awaitable; park until the clock reaches the
//                            deadline (how simulated I/O completions are
//                            awaited: BeginIo gives a completion time, the
//                            coroutine sleeps until it).
//   * Event                — awaitable condition with Notify()/NotifyAll();
//                            the flush coroutine parks on one until merge
//                            output arrives or shutdown is requested.
//
// Run() drives everything: resume ready coroutines; when none are ready,
// advance the clock to the earliest sleeper's deadline. Time spent inside
// coroutine frames is accumulated as CPU-busy time (resume slices), which is
// exactly the numerator of the paper's CPU-utilization metric (Fig. 9(a)).

#ifndef PMBLADE_CORO_SCHEDULER_H_
#define PMBLADE_CORO_SCHEDULER_H_

#include <coroutine>
#include <deque>
#include <queue>
#include <vector>

#include "coro/task.h"
#include "util/clock.h"

namespace pmblade {

class CoroScheduler {
 public:
  explicit CoroScheduler(Clock* clock = nullptr);
  ~CoroScheduler();

  CoroScheduler(const CoroScheduler&) = delete;
  CoroScheduler& operator=(const CoroScheduler&) = delete;

  /// Registers a coroutine; it becomes ready immediately.
  void Spawn(Task task);

  /// Runs until every spawned coroutine has completed.
  void Run();

  /// Total time spent executing coroutine frames (CPU-busy numerator).
  uint64_t cpu_busy_nanos() const { return cpu_busy_nanos_; }
  /// Wall time of the last Run() call.
  uint64_t wall_nanos() const { return wall_nanos_; }
  /// Coroutine resume slices executed (cumulative across Run() calls) —
  /// the context-switch count the observability layer reports.
  uint64_t resumes() const { return resumes_; }

  Clock* clock() const { return clock_; }

  // ---- awaitables ----

  struct YieldAwaiter {
    CoroScheduler* scheduler;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      scheduler->ready_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  YieldAwaiter Yield() { return YieldAwaiter{this}; }

  struct SleepAwaiter {
    CoroScheduler* scheduler;
    uint64_t wake_at_nanos;
    bool await_ready() const noexcept {
      return scheduler->clock_->NowNanos() >= wake_at_nanos;
    }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      scheduler->sleepers_.push(Sleeper{wake_at_nanos, h});
    }
    void await_resume() const noexcept {}
  };
  /// Parks the caller until the clock reaches `wake_at_nanos`.
  SleepAwaiter SleepUntil(uint64_t wake_at_nanos) {
    return SleepAwaiter{this, wake_at_nanos};
  }
  SleepAwaiter SleepFor(uint64_t nanos) {
    return SleepAwaiter{this, clock_->NowNanos() + nanos};
  }

  /// A cooperative condition: co_await parks until someone calls Notify.
  /// Spurious wakeups are possible (waiters recheck their condition).
  class Event {
   public:
    explicit Event(CoroScheduler* scheduler) : scheduler_(scheduler) {}

    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) noexcept {
        event->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    Awaiter operator co_await() noexcept { return Awaiter{this}; }

    /// Moves all waiters to the ready queue.
    void NotifyAll() {
      for (auto h : waiters_) scheduler_->ready_.push_back(h);
      waiters_.clear();
    }

    bool has_waiters() const { return !waiters_.empty(); }

   private:
    friend struct Awaiter;
    CoroScheduler* scheduler_;
    std::vector<std::coroutine_handle<>> waiters_;
  };

 private:
  friend struct YieldAwaiter;
  friend struct SleepAwaiter;

  struct Sleeper {
    uint64_t wake_at_nanos;
    std::coroutine_handle<> handle;
    bool operator>(const Sleeper& other) const {
      return wake_at_nanos > other.wake_at_nanos;
    }
  };

  Clock* clock_;
  std::deque<std::coroutine_handle<>> ready_;
  std::priority_queue<Sleeper, std::vector<Sleeper>, std::greater<Sleeper>>
      sleepers_;
  std::vector<std::coroutine_handle<Task::promise_type>> tasks_;
  uint64_t cpu_busy_nanos_ = 0;
  uint64_t wall_nanos_ = 0;
  uint64_t resumes_ = 0;
};

}  // namespace pmblade

#endif  // PMBLADE_CORO_SCHEDULER_H_
