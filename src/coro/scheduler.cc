#include "coro/scheduler.h"

#include <cassert>

namespace pmblade {

CoroScheduler::CoroScheduler(Clock* clock)
    : clock_(clock != nullptr ? clock : SystemClock()) {}

CoroScheduler::~CoroScheduler() {
  for (auto h : tasks_) {
    if (h) h.destroy();
  }
}

void CoroScheduler::Spawn(Task task) {
  auto handle = task.Release();
  assert(handle);
  handle.promise().scheduler = this;
  tasks_.push_back(handle);
  ready_.push_back(handle);
}

void CoroScheduler::Run() {
  const uint64_t run_start = clock_->NowNanos();
  while (true) {
    // Wake due sleepers.
    const uint64_t now = clock_->NowNanos();
    while (!sleepers_.empty() && sleepers_.top().wake_at_nanos <= now) {
      ready_.push_back(sleepers_.top().handle);
      sleepers_.pop();
    }

    if (!ready_.empty()) {
      auto h = ready_.front();
      ready_.pop_front();
      if (h.done()) continue;  // completed while parked (shouldn't happen)
      const uint64_t slice_start = clock_->NowNanos();
      h.resume();
      cpu_busy_nanos_ += clock_->NowNanos() - slice_start;
      ++resumes_;
      continue;
    }

    if (!sleepers_.empty()) {
      // Nothing runnable: advance to the earliest deadline. This models the
      // worker thread blocking on I/O completion.
      uint64_t wake = sleepers_.top().wake_at_nanos;
      uint64_t current = clock_->NowNanos();
      if (wake > current) clock_->SleepForNanos(wake - current);
      continue;
    }

    // No ready work and no sleepers: done if all tasks completed; stuck
    // (waiting on an Event nobody will notify) would be a caller bug.
    bool all_done = true;
    for (auto h : tasks_) {
      if (h && !h.done()) {
        all_done = false;
        break;
      }
    }
    assert(all_done && "scheduler idle with unfinished coroutines");
    break;
  }
  wall_nanos_ = clock_->NowNanos() - run_start;

  // Reap frames.
  for (auto& h : tasks_) {
    if (h) {
      assert(h.done());
      h.destroy();
      h = {};
    }
  }
  tasks_.clear();
}

}  // namespace pmblade
