// Task: a lazily started C++20 coroutine managed by CoroScheduler. Tasks are
// fire-and-forget from the scheduler's perspective: the scheduler resumes
// them until completion and destroys the frame at final suspend.

#ifndef PMBLADE_CORO_TASK_H_
#define PMBLADE_CORO_TASK_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

namespace pmblade {

class CoroScheduler;

class Task {
 public:
  struct promise_type {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    // Final suspend keeps the frame alive; the scheduler observes done() and
    // destroys it. This avoids resuming a destroyed handle.
    std::suspend_always final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }

    CoroScheduler* scheduler = nullptr;
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { Destroy(); }

  std::coroutine_handle<promise_type> handle() const { return handle_; }

  /// Releases ownership of the frame to the caller (the scheduler).
  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, {});
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace pmblade

#endif  // PMBLADE_CORO_TASK_H_
