// IoGate is header-only; anchor translation unit.
#include "coro/io_gate.h"

namespace pmblade {}
