// IoGate: the paper's coroutine I/O scheduling policy (Section V-C).
//
//   q_flush = max(q - q_comp - q_cli, 0)
//
// where q is the user-set maximum concurrent I/O budget, q_comp the live
// count of compaction read I/Os and q_cli the live count of client I/Os on
// the SSD. The flush coroutine may only have q_flush write I/Os in flight,
// so writes soak up idle device capacity and back off when foreground
// traffic needs it.
//
// q_cli is a LIVE gauge, not a configured constant: SimEnv file wrappers
// classify their I/O per class, and when the engine's Env bypasses the model
// (PosixEnv setups) DBImpl registers foreground WAL appends and L1/SSD reads
// via SsdModel::Begin/EndExternalOp. Either way, a gate polled during a
// background compaction sees the actual foreground pressure at that instant.

#ifndef PMBLADE_CORO_IO_GATE_H_
#define PMBLADE_CORO_IO_GATE_H_

#include <algorithm>

#include "env/ssd_model.h"
#include "obs/event.h"

namespace pmblade {

class IoGate {
 public:
  /// `max_concurrent` is q; typical value 4-8 depending on the device.
  /// When `bus` is set (and active), FlushBudget() emits an io_gate_change
  /// event whenever the computed budget differs from the previous call —
  /// that is exactly the q_flush trajectory the scheduling policy produces.
  IoGate(SsdModel* model, int max_concurrent, obs::EventBus* bus = nullptr)
      : model_(model), q_(max_concurrent), bus_(bus) {}

  /// How many additional flush (S3) I/Os may start right now.
  int FlushBudget() const {
    int q_comp = model_->Inflight(IoClass::kCompaction);
    int q_cli = model_->Inflight(IoClass::kClient);
    int q_flush_inflight = model_->Inflight(IoClass::kFlush);
    int allowed = std::max(q_ - q_comp - q_cli, 0);
    int budget = std::max(allowed - q_flush_inflight, 0);
    if (bus_ != nullptr && budget != last_budget_ && bus_->active()) {
      bus_->Emit(obs::Event(obs::EventType::kIoGateChange,
                            model_->clock()->NowNanos())
                     .With("q", q_)
                     .With("q_comp", q_comp)
                     .With("q_cli", q_cli)
                     .With("q_flush_inflight", q_flush_inflight)
                     .With("budget", budget));
    }
    last_budget_ = budget;
    return budget;
  }

  /// Whether a compaction read (S1) may start (bounded by q overall).
  bool ReadAllowed() const { return model_->InflightTotal() < q_; }

  int q() const { return q_; }
  SsdModel* model() const { return model_; }

 private:
  SsdModel* model_;
  int q_;
  obs::EventBus* bus_;
  mutable int last_budget_ = -1;
};

}  // namespace pmblade

#endif  // PMBLADE_CORO_IO_GATE_H_
