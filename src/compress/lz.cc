#include "compress/lz.h"

#include <cstring>

#include "util/coding.h"

namespace pmblade {
namespace lz {

// Format:
//   varint64: uncompressed length
//   sequence of tags:
//     literal: 0x00 | (len-1)<<1  as varint32, followed by len bytes
//     copy:    0x01 | (len)<<1    as varint32, then varint32 offset (>0)
// Matches are found with a 1-deep hash table over 4-byte sequences.

namespace {

constexpr int kHashBits = 13;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr size_t kMinMatch = 4;

inline uint32_t HashQuad(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return (v * 0x1e35a7bdu) >> (32 - kHashBits);
}

void EmitLiteral(const char* p, size_t len, std::string* out) {
  while (len > 0) {
    size_t run = len;
    PutVarint32(out, static_cast<uint32_t>(((run - 1) << 1) | 0));
    out->append(p, run);
    p += run;
    len -= run;
  }
}

void EmitCopy(size_t len, size_t offset, std::string* out) {
  PutVarint32(out, static_cast<uint32_t>((len << 1) | 1));
  PutVarint32(out, static_cast<uint32_t>(offset));
}

}  // namespace

size_t MaxCompressedLength(size_t n) {
  // Worst case: one literal covering everything + headers.
  return n + n / 128 + 32;
}

void Compress(const Slice& input, std::string* output) {
  PutVarint64(output, input.size());
  const char* base = input.data();
  const char* ip = base;
  const char* end = base + input.size();
  const char* literal_start = ip;

  if (input.size() >= kMinMatch + 4) {
    uint32_t table[kHashSize];
    memset(table, 0xff, sizeof(table));
    const char* match_limit = end - kMinMatch;

    while (ip <= match_limit) {
      uint32_t h = HashQuad(ip);
      uint32_t candidate = table[h];
      table[h] = static_cast<uint32_t>(ip - base);
      if (candidate != 0xffffffffu &&
          memcmp(base + candidate, ip, kMinMatch) == 0) {
        // Extend the match forward.
        const char* m = base + candidate + kMinMatch;
        const char* p = ip + kMinMatch;
        while (p < end && *m == *p) {
          ++m;
          ++p;
        }
        size_t match_len = p - ip;
        size_t offset = ip - (base + candidate);
        if (ip > literal_start) {
          EmitLiteral(literal_start, ip - literal_start, output);
        }
        EmitCopy(match_len, offset, output);
        ip += match_len;
        literal_start = ip;
        continue;
      }
      ++ip;
    }
  }
  if (end > literal_start) {
    EmitLiteral(literal_start, end - literal_start, output);
  }
}

Status Decompress(const Slice& input, std::string* output) {
  Slice in = input;
  uint64_t expected = 0;
  if (!GetVarint64(&in, &expected)) {
    return Status::Corruption("lz: bad length header");
  }
  const size_t out_base = output->size();
  output->reserve(out_base + expected);

  while (in.size() > 0) {
    uint32_t tag = 0;
    if (!GetVarint32(&in, &tag)) return Status::Corruption("lz: bad tag");
    if ((tag & 1) == 0) {
      // Literal run.
      size_t len = (tag >> 1) + 1;
      if (in.size() < len) return Status::Corruption("lz: short literal");
      output->append(in.data(), len);
      in.remove_prefix(len);
    } else {
      size_t len = tag >> 1;
      uint32_t offset = 0;
      if (!GetVarint32(&in, &offset) || offset == 0) {
        return Status::Corruption("lz: bad copy offset");
      }
      size_t produced = output->size() - out_base;
      if (offset > produced) return Status::Corruption("lz: offset too far");
      // Byte-by-byte copy supports overlapping matches (RLE-style).
      size_t src = output->size() - offset;
      for (size_t i = 0; i < len; ++i) {
        output->push_back((*output)[src + i]);
      }
    }
  }
  if (output->size() - out_base != expected) {
    return Status::Corruption("lz: length mismatch");
  }
  return Status::OK();
}

}  // namespace lz
}  // namespace pmblade
