#include "compress/prefix.h"

#include <cstring>

namespace pmblade {
namespace prefix {

size_t CommonPrefixLength(const Slice& a, const Slice& b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

size_t CommonPrefixLengthAll(const std::vector<Slice>& keys) {
  if (keys.empty()) return 0;
  // The common prefix of a sorted run equals the common prefix of its first
  // and last element; we don't assume sortedness here, so fold over all.
  size_t len = keys[0].size();
  for (size_t i = 1; i < keys.size() && len > 0; ++i) {
    size_t c = CommonPrefixLength(keys[0], keys[i]);
    if (c < len) len = c;
  }
  return len;
}

Slice TableIdComponent(const Slice& key) {
  const char* sep = static_cast<const char*>(
      memchr(key.data(), '|', key.size()));
  if (sep == nullptr) return Slice(key.data(), 0);
  // Include the separator so the remainder never starts with '|'.
  return Slice(key.data(), sep - key.data() + 1);
}

void FixedWidthSlot(const Slice& key, size_t width, char* out) {
  size_t n = std::min(width, key.size());
  memcpy(out, key.data(), n);
  if (n < width) memset(out + n, 0, width - n);
}

int CompareToSlot(const Slice& key, const char* slot, size_t width) {
  char buf[64];
  // Stack slot for common widths; heap never needed (width <= 64 enforced by
  // the PM table builder).
  FixedWidthSlot(key, width, buf);
  return memcmp(buf, slot, width);
}

}  // namespace prefix
}  // namespace pmblade
