// Byte-oriented LZ compressor in the spirit of Snappy: a stream of
// literal-run and back-reference (copy) tags with a greedy hash-table match
// finder. This stands in for the Snappy library in the Array-snappy /
// Array-snappy-group PM-table baselines (Fig. 6) and for optional SSTable
// block compression. It deliberately has Snappy's cost profile: cheap but
// non-trivial compression, and decompression that must run before any byte
// of the payload can be examined.

#ifndef PMBLADE_COMPRESS_LZ_H_
#define PMBLADE_COMPRESS_LZ_H_

#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace pmblade {
namespace lz {

/// Appends the compressed form of `input` to `*output`.
void Compress(const Slice& input, std::string* output);

/// Appends the decompressed form of `input` (as produced by Compress) to
/// `*output`. Returns Corruption on malformed input.
Status Decompress(const Slice& input, std::string* output);

/// Maximum possible size of the compressed form of `n` input bytes.
size_t MaxCompressedLength(size_t n);

}  // namespace lz
}  // namespace pmblade

#endif  // PMBLADE_COMPRESS_LZ_H_
