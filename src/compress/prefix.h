// Prefix-compression helpers shared by the PM table (meta-layer extraction,
// group common prefixes) and the SSTable restart-point encoding.

#ifndef PMBLADE_COMPRESS_PREFIX_H_
#define PMBLADE_COMPRESS_PREFIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/slice.h"

namespace pmblade {
namespace prefix {

/// Length of the longest common prefix of `a` and `b`.
size_t CommonPrefixLength(const Slice& a, const Slice& b);

/// Length of the longest common prefix across all of `keys` (0 if empty).
size_t CommonPrefixLengthAll(const std::vector<Slice>& keys);

/// Extracts the "table id" component of a database key. Keys produced by the
/// record/index codecs look like "<tableid>|rest..."; keys with no '|' have
/// an empty table-id. The returned Slice views into `key`.
Slice TableIdComponent(const Slice& key);

/// Pads/truncates the first `width` bytes of `key` into a fixed-width,
/// memcmp-comparable slot (zero padded; zero sorts first, matching byte
/// order for shorter keys).
void FixedWidthSlot(const Slice& key, size_t width, char* out);

/// Compares a probe key against a fixed-width slot: returns <0/0/>0 for the
/// ordering of `key`'s slot form vs `slot`. Exact tie on the slot does not
/// imply full-key equality (the slot is a truncation).
int CompareToSlot(const Slice& key, const char* slot, size_t width);

}  // namespace prefix
}  // namespace pmblade

#endif  // PMBLADE_COMPRESS_PREFIX_H_
