// Counters for simulated persistent-memory traffic. PM write amplification
// (Fig. 8(a), Fig. 11(a) report PM and SSD bytes separately) and read
// accounting come from here.

#ifndef PMBLADE_PM_PM_STATS_H_
#define PMBLADE_PM_PM_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace pmblade {

class PmStats {
 public:
  void AddRead(uint64_t bytes, uint64_t accesses) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_accesses_.fetch_add(accesses, std::memory_order_relaxed);
  }
  void AddWrite(uint64_t bytes) {
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void AddPersist() { persists_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t bytes_read() const { return bytes_read_.load(); }
  uint64_t bytes_written() const { return bytes_written_.load(); }
  uint64_t read_accesses() const { return read_accesses_.load(); }
  uint64_t persists() const { return persists_.load(); }

  void Reset() {
    bytes_read_.store(0);
    bytes_written_.store(0);
    read_accesses_.store(0);
    persists_.store(0);
  }

  std::string ToString() const;

 private:
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> read_accesses_{0};
  std::atomic<uint64_t> persists_{0};
};

}  // namespace pmblade

#endif  // PMBLADE_PM_PM_STATS_H_
