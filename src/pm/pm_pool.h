// PmPool: the simulated persistent-memory device.
//
// A PmPool is an mmap-backed arena with a persistent object directory, the
// substrate for PM-Blade's level-0. It provides:
//   * byte-addressable allocation of named, typed objects (PM tables),
//   * a Persist() primitive standing in for clwb+sfence,
//   * crash-consistent object registration (an object becomes visible only
//     once its directory entry is persisted in state kLive),
//   * recovery by directory scan,
//   * a latency model calibrated to Optane DCPMM behaviour (reads ~3x DRAM
//     latency, write bandwidth ~1/3 of read — Yang et al. [10]), and
//   * traffic statistics for write-amplification accounting.
//
// Free space lives in a DRAM-side extent map rebuilt from the directory at
// open; only object liveness is persistent state.

#ifndef PMBLADE_PM_PM_POOL_H_
#define PMBLADE_PM_PM_POOL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pm/pm_stats.h"
#include "util/clock.h"
#include "util/status.h"

namespace pmblade {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Timing model for the simulated PM device. Defaults follow the published
/// Optane DCPMM characteristics: ~300 ns random read (vs ~100 ns DRAM),
/// ~6 GB/s sequential read and ~2 GB/s write bandwidth per DIMM.
struct PmLatencyOptions {
  uint64_t read_access_nanos = 300;     // per random access (pointer chase)
  double read_nanos_per_byte = 0.15;    // sequential read bandwidth
  double write_nanos_per_byte = 1.0;    // write bandwidth (~1 GB/s/DIMM)
  uint64_t persist_nanos = 500;         // clwb + sfence round trip
  bool inject_latency = true;

  /// Device profiles. The paper's future work proposes applying PM-Blade's
  /// approach to other high-capacity memory tiers (CXL expanded memory);
  /// these presets let every experiment re-run under a different tier.
  static PmLatencyOptions Optane() { return PmLatencyOptions{}; }
  static PmLatencyOptions CxlMemory() {
    // CXL-attached DRAM: ~2-3x DRAM latency (lower than Optane), DRAM-class
    // bandwidth over the link, no persist barrier cost beyond a fence.
    PmLatencyOptions opts;
    opts.read_access_nanos = 200;
    opts.read_nanos_per_byte = 0.05;
    opts.write_nanos_per_byte = 0.1;
    opts.persist_nanos = 250;
    return opts;
  }
  static PmLatencyOptions LocalDram() {
    PmLatencyOptions opts;
    opts.read_access_nanos = 90;
    opts.read_nanos_per_byte = 0.02;
    opts.write_nanos_per_byte = 0.04;
    opts.persist_nanos = 100;
    return opts;
  }
};

struct PmPoolOptions {
  uint64_t capacity = 256ull << 20;  // 256 MiB default pool
  PmLatencyOptions latency;
  Clock* clock = nullptr;            // defaults to SystemClock()
  /// When false, Persist() skips msync (faster; the mapping is still
  /// eventually durable via the kernel). Tests exercising recovery leave
  /// this on.
  bool sync_on_persist = false;
  /// Crash-simulation mode: the pool maps its file MAP_PRIVATE, so ordinary
  /// stores NEVER reach the backing file — only Persist() copies the covered
  /// (8-byte-aligned) range through, modeling real PM where data is durable
  /// only after an explicit clwb+sfence of each cache line. Combined with
  /// SimulateCrash() this falsifies any code path that stores to PM and
  /// skips the persist barrier.
  bool crash_sim = false;
};

class PmPool {
 public:
  /// Metadata describing a live object in the pool.
  struct ObjectInfo {
    uint64_t id = 0;
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t kind = 0;
  };

  /// Opens (creating if absent) a pool backed by `path`. An existing pool's
  /// capacity must match `options.capacity`.
  static Status Open(const std::string& path, const PmPoolOptions& options,
                     std::unique_ptr<PmPool>* pool);

  ~PmPool();
  PmPool(const PmPool&) = delete;
  PmPool& operator=(const PmPool&) = delete;

  /// Allocates a `size`-byte object of type `kind`. On success the object is
  /// registered (crash-visible) and `*data` points at its bytes. The caller
  /// fills the bytes and calls Persist on them.
  Status Allocate(uint64_t size, uint32_t kind, ObjectInfo* info, char** data);

  /// Frees a live object; its space returns to the extent map.
  Status Free(uint64_t id);

  /// Pointer to a live object's bytes (nullptr if unknown id).
  char* DataFor(uint64_t id) const;

  /// All live objects, ascending id. Recovery entry point.
  std::vector<ObjectInfo> ListObjects() const;

  /// Persistence barrier for [addr, addr+len): injects the modeled persist
  /// cost and (optionally) msyncs the covering pages. In crash_sim mode this
  /// is the ONLY operation that makes bytes durable: it writes the covered
  /// range, widened to 8-byte alignment, through to the backing file.
  void Persist(const char* addr, size_t len);

  // ---- crash simulation (crash_sim mode only) ----

  /// Simulates power loss with persist-granularity semantics: every 8-byte
  /// word that was stored but never Persist()ed either survives (its cache
  /// line happened to be evicted before the cut) with probability
  /// `unpersisted_survival_prob`, or reverts to the last persisted value.
  /// Explicitly persisted words always survive. Afterwards the pool is dead:
  /// Allocate/Free fail and Persist is a no-op, like syscalls in a process
  /// that no longer exists. Reopen the path to get the post-crash image.
  /// No-op outside crash_sim mode.
  void SimulateCrash(uint64_t seed, double unpersisted_survival_prob = 0.5);

  /// True once SimulateCrash has fired.
  bool crash_sim_dead() const;

  // ---- latency hooks (called by PM table readers/writers) ----

  /// Models `accesses` dependent random reads touching `bytes` total.
  void InjectRead(size_t bytes, uint64_t accesses = 1);
  /// Models a streaming write of `bytes` (accounting only; allocation writes
  /// go through memcpy by the caller).
  void InjectWrite(size_t bytes);

  uint64_t capacity() const { return capacity_; }
  uint64_t UsedBytes() const;
  uint64_t FreeBytes() const;
  /// Largest single allocation currently possible (contiguity limit).
  uint64_t LargestFreeExtent() const;

  PmStats& stats() { return stats_; }

  /// Registers "pmblade.pm.*" pull metrics: capacity/used/free gauges plus
  /// the PmStats traffic counters. The pool must outlive the registry's
  /// snapshots.
  void RegisterMetrics(obs::MetricsRegistry* registry);

  const PmLatencyOptions& latency_options() const { return latency_; }
  /// Enable/disable latency injection at runtime (benches use this to make
  /// load phases fast and measurement phases accurate).
  void set_inject_latency(bool inject) { latency_.inject_latency = inject; }

 private:
  PmPool() = default;

  Status Init(const std::string& path, const PmPoolOptions& options);
  void RebuildFreeMap();
  Status AllocateExtent(uint64_t size, uint64_t* offset);
  void FreeExtent(uint64_t offset, uint64_t size);

  // Directory entry manipulation (slot layout is in pm_pool.cc).
  char* DirEntry(uint32_t slot) const;

  std::string path_;
  int fd_ = -1;
  char* base_ = nullptr;          // mmap base
  uint64_t mapped_size_ = 0;
  uint64_t capacity_ = 0;         // data area capacity
  uint64_t data_start_ = 0;       // offset of data area in the mapping
  uint32_t dir_slots_ = 0;

  PmLatencyOptions latency_;
  Clock* clock_ = nullptr;
  bool sync_on_persist_ = false;
  bool crash_sim_ = false;
  std::atomic<bool> dead_{false};  // set by SimulateCrash

  mutable std::mutex mu_;
  std::map<uint64_t, uint64_t> free_extents_;       // offset -> size
  std::map<uint64_t, ObjectInfo> objects_;          // id -> info
  std::map<uint64_t, uint32_t> slot_of_id_;         // id -> directory slot
  uint64_t next_id_ = 1;
  PmStats stats_;
};

}  // namespace pmblade

#endif  // PMBLADE_PM_PM_POOL_H_
