#include "pm/pm_stats.h"

#include <cstdio>

namespace pmblade {

std::string PmStats::ToString() const {
  char buf[160];
  snprintf(buf, sizeof(buf),
           "pm: read=%lluB (%llu accesses) written=%lluB persists=%llu",
           static_cast<unsigned long long>(bytes_read()),
           static_cast<unsigned long long>(read_accesses()),
           static_cast<unsigned long long>(bytes_written()),
           static_cast<unsigned long long>(persists()));
  return buf;
}

}  // namespace pmblade
