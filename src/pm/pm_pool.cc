#include "pm/pm_pool.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "util/sync_point.h"

namespace pmblade {

// On-media layout:
//   [header: 64 B]
//     0..7    magic "PMBLADE1"
//     8..15   fixed64 capacity (data area bytes)
//     16..19  fixed32 dir_slots
//     20..27  fixed64 next_id
//     28..31  fixed32 header crc (of bytes 0..27)
//   [directory: dir_slots * 32 B]
//     each slot:
//       0..7    fixed64 id          (0 = empty slot)
//       8..15   fixed64 offset      (relative to data area)
//       16..23  fixed64 size
//       24..27  fixed32 kind
//       28..31  fixed32 state       (1 = live, else free)
//   [data area: capacity bytes]
//
// A slot is claimed by writing all fields then persisting state=kLive last;
// an interrupted allocation leaves state != kLive and is garbage-collected
// by the free-map rebuild at open.

namespace {
constexpr char kMagic[8] = {'P', 'M', 'B', 'L', 'A', 'D', 'E', '1'};
constexpr uint64_t kHeaderSize = 64;
constexpr uint64_t kSlotSize = 32;
constexpr uint32_t kStateLive = 1;
constexpr uint64_t kAlign = 64;

uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) & ~(a - 1); }

uint32_t DirSlotsForCapacity(uint64_t capacity) {
  // One slot per 64 KiB of capacity, clamped to [1024, 1M] slots.
  uint64_t slots = capacity / (64 * 1024);
  if (slots < 1024) slots = 1024;
  if (slots > (1u << 20)) slots = 1u << 20;
  return static_cast<uint32_t>(slots);
}
}  // namespace

Status PmPool::Open(const std::string& path, const PmPoolOptions& options,
                    std::unique_ptr<PmPool>* pool) {
  std::unique_ptr<PmPool> p(new PmPool());
  PMBLADE_RETURN_IF_ERROR(p->Init(path, options));
  *pool = std::move(p);
  return Status::OK();
}

Status PmPool::Init(const std::string& path, const PmPoolOptions& options) {
  path_ = path;
  latency_ = options.latency;
  clock_ = options.clock != nullptr ? options.clock : SystemClock();
  sync_on_persist_ = options.sync_on_persist;
  crash_sim_ = options.crash_sim;
  capacity_ = AlignUp(options.capacity, kAlign);
  dir_slots_ = DirSlotsForCapacity(capacity_);
  data_start_ = AlignUp(kHeaderSize + uint64_t{dir_slots_} * kSlotSize, 4096);
  mapped_size_ = data_start_ + capacity_;

  bool existed = ::access(path.c_str(), F_OK) == 0;
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::IOError("pm pool open " + path + ": " + strerror(errno));
  }

  if (existed) {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError("pm pool stat: " + std::string(strerror(errno)));
    }
    if (st.st_size == 0) {
      existed = false;  // empty file: treat as fresh
    }
  }

  if (!existed) {
    if (::ftruncate(fd_, static_cast<off_t>(mapped_size_)) != 0) {
      return Status::IOError("pm pool truncate: " +
                             std::string(strerror(errno)));
    }
  }

  // crash_sim: MAP_PRIVATE makes every store volatile — only Persist()
  // copies bytes through to the file, exactly like a CPU cache in front of
  // real PM that loses everything not explicitly flushed.
  void* addr = ::mmap(nullptr, mapped_size_, PROT_READ | PROT_WRITE,
                      crash_sim_ ? MAP_PRIVATE : MAP_SHARED, fd_, 0);
  if (addr == MAP_FAILED) {
    return Status::IOError("pm pool mmap: " + std::string(strerror(errno)));
  }
  base_ = static_cast<char*>(addr);

  if (!existed) {
    // Format a fresh pool.
    memcpy(base_, kMagic, 8);
    EncodeFixed64(base_ + 8, capacity_);
    EncodeFixed32(base_ + 16, dir_slots_);
    EncodeFixed64(base_ + 20, next_id_);
    EncodeFixed32(base_ + 28, crc32c::Value(base_, 28));
    memset(base_ + kHeaderSize, 0, dir_slots_ * kSlotSize);
    Persist(base_, data_start_);
  } else {
    if (memcmp(base_, kMagic, 8) != 0) {
      return Status::Corruption("pm pool: bad magic in " + path);
    }
    uint64_t disk_capacity = DecodeFixed64(base_ + 8);
    uint32_t disk_slots = DecodeFixed32(base_ + 16);
    if (crc32c::Value(base_, 28) != DecodeFixed32(base_ + 28)) {
      return Status::Corruption("pm pool: header crc mismatch");
    }
    if (disk_capacity != capacity_ || disk_slots != dir_slots_) {
      return Status::InvalidArgument(
          "pm pool: capacity mismatch with existing pool");
    }
    next_id_ = DecodeFixed64(base_ + 20);
  }

  RebuildFreeMap();
  return Status::OK();
}

PmPool::~PmPool() {
  if (base_ != nullptr) {
    if (!dead_.load()) {
      // Persist the id high-water mark so recovered pools keep ids unique.
      EncodeFixed64(base_ + 20, next_id_);
      EncodeFixed32(base_ + 28, crc32c::Value(base_, 28));
      if (crash_sim_) {
        Persist(base_ + 16, 16);  // covers bytes 16..32 (next_id + crc)
      } else {
        ::msync(base_, data_start_, MS_SYNC);
      }
    }
    // After a simulated crash nothing more may reach the file: the process
    // is conceptually gone, and the mapping is private anyway.
    ::munmap(base_, mapped_size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

char* PmPool::DirEntry(uint32_t slot) const {
  return base_ + kHeaderSize + uint64_t{slot} * kSlotSize;
}

void PmPool::RebuildFreeMap() {
  std::lock_guard<std::mutex> lock(mu_);
  objects_.clear();
  slot_of_id_.clear();
  free_extents_.clear();

  // Collect live objects from the directory.
  for (uint32_t slot = 0; slot < dir_slots_; ++slot) {
    const char* e = DirEntry(slot);
    uint64_t id = DecodeFixed64(e);
    if (id == 0) continue;
    uint32_t state = DecodeFixed32(e + 28);
    if (state != kStateLive) continue;
    ObjectInfo info;
    info.id = id;
    info.offset = DecodeFixed64(e + 8);
    info.size = DecodeFixed64(e + 16);
    info.kind = DecodeFixed32(e + 24);
    objects_[id] = info;
    slot_of_id_[id] = slot;
    if (id >= next_id_) next_id_ = id + 1;
  }

  // Free space = complement of live extents, coalesced.
  uint64_t cursor = 0;
  std::map<uint64_t, uint64_t> live;  // offset -> aligned size
  for (const auto& [id, info] : objects_) {
    live[info.offset] = AlignUp(info.size, kAlign);
  }
  for (const auto& [off, size] : live) {
    if (off > cursor) free_extents_[cursor] = off - cursor;
    cursor = off + size;
  }
  if (cursor < capacity_) free_extents_[cursor] = capacity_ - cursor;
}

Status PmPool::AllocateExtent(uint64_t size, uint64_t* offset) {
  // First fit. mu_ held by caller.
  for (auto it = free_extents_.begin(); it != free_extents_.end(); ++it) {
    if (it->second >= size) {
      *offset = it->first;
      uint64_t remaining = it->second - size;
      uint64_t new_off = it->first + size;
      free_extents_.erase(it);
      if (remaining > 0) free_extents_[new_off] = remaining;
      return Status::OK();
    }
  }
  return Status::Busy("pm pool: out of space");
}

void PmPool::FreeExtent(uint64_t offset, uint64_t size) {
  // mu_ held by caller. Insert and coalesce with neighbors.
  auto [it, inserted] = free_extents_.emplace(offset, size);
  (void)inserted;
  // Merge with next.
  auto next = std::next(it);
  if (next != free_extents_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_extents_.erase(next);
  }
  // Merge with previous.
  if (it != free_extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_extents_.erase(it);
    }
  }
}

Status PmPool::Allocate(uint64_t size, uint32_t kind, ObjectInfo* info,
                        char** data) {
  if (size == 0) return Status::InvalidArgument("pm pool: zero-size object");
  if (dead_.load(std::memory_order_acquire)) {
    return Status::IOError("pm pool: simulated crash");
  }
  uint64_t aligned = AlignUp(size, kAlign);

  std::lock_guard<std::mutex> lock(mu_);
  uint64_t offset = 0;
  PMBLADE_RETURN_IF_ERROR(AllocateExtent(aligned, &offset));

  // Find a free directory slot.
  uint32_t slot = dir_slots_;
  for (uint32_t i = 0; i < dir_slots_; ++i) {
    const char* e = DirEntry(i);
    if (DecodeFixed64(e) == 0 || DecodeFixed32(e + 28) != kStateLive) {
      slot = i;
      break;
    }
  }
  if (slot == dir_slots_) {
    FreeExtent(offset, aligned);
    return Status::Busy("pm pool: directory full");
  }

  uint64_t id = next_id_++;
  char* e = DirEntry(slot);
  EncodeFixed64(e, id);
  EncodeFixed64(e + 8, offset);
  EncodeFixed64(e + 16, size);
  EncodeFixed32(e + 24, kind);
  Persist(e, 28);
  PMBLADE_SYNC_POINT("PmPool::Allocate:BeforeCommit");
  EncodeFixed32(e + 28, kStateLive);  // commit point
  Persist(e + 28, 4);

  info->id = id;
  info->offset = offset;
  info->size = size;
  info->kind = kind;
  objects_[id] = *info;
  slot_of_id_[id] = slot;
  *data = base_ + data_start_ + offset;
  return Status::OK();
}

Status PmPool::Free(uint64_t id) {
  if (dead_.load(std::memory_order_acquire)) {
    return Status::IOError("pm pool: simulated crash");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("pm pool: no such object");
  }
  uint32_t slot = slot_of_id_[id];
  char* e = DirEntry(slot);
  EncodeFixed32(e + 28, 0);  // not live
  Persist(e + 28, 4);
  EncodeFixed64(e, 0);       // release the slot
  Persist(e, 8);

  FreeExtent(it->second.offset, AlignUp(it->second.size, kAlign));
  slot_of_id_.erase(id);
  objects_.erase(it);
  return Status::OK();
}

char* PmPool::DataFor(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) return nullptr;
  return base_ + data_start_ + it->second.offset;
}

std::vector<PmPool::ObjectInfo> PmPool::ListObjects() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectInfo> out;
  out.reserve(objects_.size());
  for (const auto& [id, info] : objects_) out.push_back(info);
  return out;
}

void PmPool::Persist(const char* addr, size_t len) {
  stats_.AddPersist();
  if (latency_.inject_latency) {
    clock_->SleepForNanos(latency_.persist_nanos);
  }
  if (crash_sim_) {
    if (dead_.load(std::memory_order_acquire)) return;  // post-crash: lost
    // Write the covered range through to the file at the device's persist
    // granularity: widen to 8-byte alignment on both ends.
    uint64_t start = static_cast<uint64_t>(addr - base_) & ~uint64_t{7};
    uint64_t end = (static_cast<uint64_t>(addr - base_) + len + 7) &
                   ~uint64_t{7};
    if (end > mapped_size_) end = mapped_size_;
    if (start >= end) return;
    ::pwrite(fd_, base_ + start, end - start, static_cast<off_t>(start));
    return;
  }
  if (sync_on_persist_) {
    // msync requires page-aligned addresses.
    uintptr_t start = reinterpret_cast<uintptr_t>(addr) & ~uintptr_t{4095};
    uintptr_t end = reinterpret_cast<uintptr_t>(addr) + len;
    ::msync(reinterpret_cast<void*>(start), end - start, MS_SYNC);
  }
}

void PmPool::SimulateCrash(uint64_t seed, double unpersisted_survival_prob) {
  if (!crash_sim_) return;
  // Deliberately lock-free: setting dead_ turns every later Persist() into a
  // no-op, and crash callbacks may fire from inside pool operations that
  // already hold mu_ (e.g. the Allocate commit point). A store or persist
  // racing the scan is indistinguishable from one racing a real power cut.
  if (dead_.exchange(true)) return;

  // The file holds the persisted image; the private mapping holds every
  // store. For each 8-byte word that differs, the store was never flushed:
  // it survives the power cut only if its cache line happened to be evicted
  // beforehand.
  Random rnd(seed);
  std::vector<char> durable(1 << 16);
  for (uint64_t off = 0; off < mapped_size_; off += durable.size()) {
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(durable.size(),
                                               mapped_size_ - off));
    ssize_t got = ::pread(fd_, durable.data(), n, static_cast<off_t>(off));
    if (got < 0) got = 0;
    if (static_cast<size_t>(got) < n) {
      memset(durable.data() + got, 0, n - got);
    }
    if (memcmp(durable.data(), base_ + off, n) == 0) continue;
    for (size_t w = 0; w + 8 <= n; w += 8) {
      if (memcmp(durable.data() + w, base_ + off + w, 8) == 0) continue;
      if (rnd.NextDouble() < unpersisted_survival_prob) {
        ::pwrite(fd_, base_ + off + w, 8, static_cast<off_t>(off + w));
      }
    }
  }
}

bool PmPool::crash_sim_dead() const {
  return dead_.load(std::memory_order_acquire);
}

void PmPool::InjectRead(size_t bytes, uint64_t accesses) {
  stats_.AddRead(bytes, accesses);
  if (!latency_.inject_latency) return;
  uint64_t nanos =
      accesses * latency_.read_access_nanos +
      static_cast<uint64_t>(latency_.read_nanos_per_byte * bytes);
  clock_->SleepForNanos(nanos);
}

void PmPool::InjectWrite(size_t bytes) {
  stats_.AddWrite(bytes);
  if (!latency_.inject_latency) return;
  uint64_t nanos =
      static_cast<uint64_t>(latency_.write_nanos_per_byte * bytes);
  clock_->SleepForNanos(nanos);
}

uint64_t PmPool::UsedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t used = 0;
  for (const auto& [id, info] : objects_) used += AlignUp(info.size, kAlign);
  return used;
}

uint64_t PmPool::FreeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t free_bytes = 0;
  for (const auto& [off, size] : free_extents_) free_bytes += size;
  return free_bytes;
}

void PmPool::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterGaugeCallback("pmblade.pm.capacity_bytes", [this] {
    return static_cast<double>(capacity());
  });
  registry->RegisterGaugeCallback("pmblade.pm.used_bytes", [this] {
    return static_cast<double>(UsedBytes());
  });
  registry->RegisterGaugeCallback("pmblade.pm.free_bytes", [this] {
    return static_cast<double>(FreeBytes());
  });
  registry->RegisterGaugeCallback("pmblade.pm.largest_free_extent", [this] {
    return static_cast<double>(LargestFreeExtent());
  });
  registry->RegisterCounterCallback("pmblade.pm.bytes_read",
                                    [this] { return stats_.bytes_read(); });
  registry->RegisterCounterCallback("pmblade.pm.bytes_written", [this] {
    return stats_.bytes_written();
  });
  registry->RegisterCounterCallback("pmblade.pm.read_accesses", [this] {
    return stats_.read_accesses();
  });
  registry->RegisterCounterCallback("pmblade.pm.persists",
                                    [this] { return stats_.persists(); });
}

uint64_t PmPool::LargestFreeExtent() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t largest = 0;
  for (const auto& [off, size] : free_extents_) {
    if (size > largest) largest = size;
  }
  return largest;
}

}  // namespace pmblade
