#include "mem/memory_budget.h"

#include <cstdio>

namespace pmblade {
namespace mem {

const char* MemComponentName(int component) {
  switch (component) {
    case kMemtable:
      return "memtable";
    case kBlockCache:
      return "block_cache";
    case kKeepSet:
      return "keep_set";
  }
  return "unknown";
}

MemoryBudget::MemoryBudget(uint64_t total,
                           const uint64_t floors[kNumComponents],
                           const uint64_t initial[kNumComponents]) {
  uint64_t floor_sum = 0;
  for (int i = 0; i < kNumComponents; ++i) {
    floors_[i] = floors[i];
    floor_sum += floors[i];
  }
  // The budget must at least cover the floors; Options::Sanitize enforces
  // this for user configs, but stay safe against direct construction.
  if (total < floor_sum) total = floor_sum;
  total_ = total;

  uint64_t targets[kNumComponents];
  uint64_t assigned = 0;
  for (int i = 0; i < kNumComponents; ++i) {
    targets[i] = initial[i] > floors_[i] ? initial[i] : floors_[i];
    assigned += targets[i];
  }
  if (assigned < total_) {
    // Surplus goes to the keep-set: PM retention absorbs spare budget best.
    targets[kKeepSet] += total_ - assigned;
  } else if (assigned > total_) {
    // Deficit: shave components above their floor, largest headroom first,
    // until the split fits.
    uint64_t excess = assigned - total_;
    while (excess > 0) {
      int widest = -1;
      uint64_t headroom = 0;
      for (int i = 0; i < kNumComponents; ++i) {
        uint64_t h = targets[i] - floors_[i];
        if (h > headroom) {
          headroom = h;
          widest = i;
        }
      }
      if (widest < 0) break;  // everything at its floor (cannot happen:
                              // total_ >= floor_sum)
      uint64_t cut = excess < headroom ? excess : headroom;
      targets[widest] -= cut;
      excess -= cut;
    }
  }
  for (int i = 0; i < kNumComponents; ++i) {
    targets_[i].store(targets[i], std::memory_order_relaxed);
  }
}

uint64_t MemoryBudget::Transfer(int from, int to, uint64_t bytes) {
  if (from == to || bytes == 0) return 0;
  uint64_t from_target = target(from);
  uint64_t headroom =
      from_target > floors_[from] ? from_target - floors_[from] : 0;
  uint64_t moved = bytes < headroom ? bytes : headroom;
  if (moved == 0) return 0;
  targets_[from].store(from_target - moved, std::memory_order_relaxed);
  targets_[to].fetch_add(moved, std::memory_order_relaxed);
  return moved;
}

std::string MemoryBudget::ToJson() const {
  char buf[128];
  std::string out = "{\"total\":";
  snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(total_));
  out += buf;
  out += ",\"components\":[";
  for (int i = 0; i < kNumComponents; ++i) {
    snprintf(buf, sizeof(buf),
             "%s{\"name\":\"%s\",\"target\":%llu,\"floor\":%llu}",
             i == 0 ? "" : ",", MemComponentName(i),
             static_cast<unsigned long long>(target(i)),
             static_cast<unsigned long long>(floors_[i]));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace mem
}  // namespace pmblade
