#include "mem/arbiter.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace pmblade {
namespace mem {

namespace {

double Clamp01(double v) {
  if (v < 0.0) return 0.0;
  if (v > 1.0) return 1.0;
  return v;
}

ArbiterInputs Delta(const ArbiterInputs& now, const ArbiterInputs& prev) {
  auto sub = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
  ArbiterInputs d;
  d.reads = sub(now.reads, prev.reads);
  d.reads_ssd_l1 = sub(now.reads_ssd_l1, prev.reads_ssd_l1);
  d.writes = sub(now.writes, prev.writes);
  d.cache_hits = sub(now.cache_hits, prev.cache_hits);
  d.cache_misses = sub(now.cache_misses, prev.cache_misses);
  d.bloom_checks = sub(now.bloom_checks, prev.bloom_checks);
  d.bloom_negatives = sub(now.bloom_negatives, prev.bloom_negatives);
  d.bloom_false_positives =
      sub(now.bloom_false_positives, prev.bloom_false_positives);
  d.flushes = sub(now.flushes, prev.flushes);
  d.slowdowns = sub(now.slowdowns, prev.slowdowns);
  d.stalls = sub(now.stalls, prev.stalls);
  return d;
}

}  // namespace

MemoryArbiter::MemoryArbiter(const ArbiterOptions& options,
                             MemoryBudget* budget, InputsFn inputs_fn,
                             ApplyFn apply_fn)
    : opts_(options),
      budget_(budget),
      inputs_fn_(std::move(inputs_fn)),
      apply_fn_(std::move(apply_fn)) {
  if (opts_.clock == nullptr) opts_.clock = SystemClock();
  if (opts_.logger == nullptr) opts_.logger = NullLogger();
  if (opts_.interval_ms == 0) opts_.interval_ms = 1;
  if (opts_.step_fraction <= 0.0) opts_.step_fraction = 0.05;
  if (opts_.hysteresis < 1.0) opts_.hysteresis = 1.0;
  if (opts_.metrics != nullptr) {
    tick_counter_ = opts_.metrics->GetCounter("pmblade.mem.ticks");
    rebalance_counter_ = opts_.metrics->GetCounter("pmblade.mem.rebalances");
    skipped_counter_ =
        opts_.metrics->GetCounter("pmblade.mem.skipped_ticks");
    // Targets as gauges: the budget outlives the registry by DBImpl's
    // declaration-order discipline.
    MemoryBudget* b = budget_;
    opts_.metrics->RegisterGaugeCallback(
        "pmblade.mem.budget_total",
        [b] { return static_cast<double>(b->total()); });
    opts_.metrics->RegisterGaugeCallback(
        "pmblade.mem.memtable_target",
        [b] { return static_cast<double>(b->target(kMemtable)); });
    opts_.metrics->RegisterGaugeCallback(
        "pmblade.mem.block_cache_target",
        [b] { return static_cast<double>(b->target(kBlockCache)); });
    opts_.metrics->RegisterGaugeCallback(
        "pmblade.mem.keep_set_target",
        [b] { return static_cast<double>(b->target(kKeepSet)); });
  }
}

MemoryArbiter::~MemoryArbiter() { Stop(); }

void MemoryArbiter::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { ThreadLoop(); });
  running_ = true;
}

void MemoryArbiter::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  thread_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(thread_mu_);
  running_ = false;
}

void MemoryArbiter::ThreadLoop() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_requested_) {
    thread_cv_.wait_for(lock, std::chrono::milliseconds(opts_.interval_ms),
                        [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    RebalanceOnce();
    lock.lock();
  }
}

void MemoryArbiter::ScorePressures(const ArbiterInputs& d,
                                   double* out) const {
  const double ops = static_cast<double>(d.reads + d.writes);
  const double read_share = ops > 0.0 ? d.reads / ops : 0.0;
  const double write_share = ops > 0.0 ? d.writes / ops : 0.0;

  // Memtable: backpressure events per write. A stall is an order of
  // magnitude worse than a one-off slowdown; flush churn (rotations per
  // write) signals the quota is too small even before backpressure bites.
  double mem_rate = 0.0;
  if (d.writes > 0) {
    mem_rate = Clamp01(
        (static_cast<double>(d.slowdowns) + 10.0 * d.stalls +
         64.0 * d.flushes) /
        static_cast<double>(d.writes));
  }
  out[kMemtable] = write_share * mem_rate;

  // Block cache: miss ratio of the window's cache traffic.
  const uint64_t cache_ops = d.cache_hits + d.cache_misses;
  const double miss_ratio =
      cache_ops > 0 ? static_cast<double>(d.cache_misses) / cache_ops : 0.0;
  out[kBlockCache] = read_share * miss_ratio;

  // Keep set: fraction of reads that fell through to SSD level-1 — the
  // reads Eq. 3 retention on PM would have absorbed.
  const double ssd_rate =
      d.reads > 0 ? static_cast<double>(d.reads_ssd_l1) / d.reads : 0.0;
  out[kKeepSet] = read_share * ssd_rate;
}

bool MemoryArbiter::RebalanceOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  ticks_.fetch_add(1, std::memory_order_relaxed);
  if (tick_counter_ != nullptr) tick_counter_->Inc();

  ArbiterInputs now = inputs_fn_();
  if (!has_last_inputs_) {
    last_inputs_ = now;
    has_last_inputs_ = true;
    return false;
  }
  ArbiterInputs d = Delta(now, last_inputs_);
  last_inputs_ = now;

  if (d.reads + d.writes < opts_.min_ops_per_tick) {
    skipped_ticks_.fetch_add(1, std::memory_order_relaxed);
    if (skipped_counter_ != nullptr) skipped_counter_->Inc();
    return false;
  }

  double pressure[kNumComponents];
  ScorePressures(d, pressure);

  // Marginal utility: how much did the previous grant actually relieve its
  // component? Negative or zero gain decays that component's multiplier,
  // so budget stops flowing where it no longer buys anything.
  if (last_grant_ >= 0) {
    double gain = last_grant_pressure_ - pressure[last_grant_];
    ewma_gain_[last_grant_] =
        (1.0 - opts_.gain_ewma_alpha) * ewma_gain_[last_grant_] +
        opts_.gain_ewma_alpha * gain;
    last_grant_ = -1;
  }

  double score[kNumComponents];
  for (int i = 0; i < kNumComponents; ++i) {
    last_pressure_[i] = pressure[i];
    // A component with a positive marginal-gain history bids its pressure
    // up (it responds to budget); a negative history bids it down.
    score[i] = pressure[i] * Clamp01(1.0 + ewma_gain_[i]);
  }

  int winner = 0, loser = 0;
  for (int i = 1; i < kNumComponents; ++i) {
    if (score[i] > score[winner]) winner = i;
  }
  // Loser: the lowest score among components with headroom above floor.
  loser = -1;
  for (int i = 0; i < kNumComponents; ++i) {
    if (i == winner) continue;
    if (budget_->target(i) <= budget_->floor(i)) continue;
    if (loser < 0 || score[i] < score[loser]) loser = i;
  }
  if (loser < 0) return false;

  // Hysteresis: a balanced system must not oscillate, and a dead-calm
  // system (everything near zero pressure) must not drift.
  if (score[winner] < 0.01 ||
      score[winner] <= opts_.hysteresis * score[loser]) {
    return false;
  }

  uint64_t step = static_cast<uint64_t>(
      opts_.step_fraction * static_cast<double>(budget_->total()));
  if (step == 0) step = 1;
  uint64_t moved = budget_->Transfer(loser, winner, step);
  if (moved == 0) return false;

  last_grant_ = winner;
  last_grant_pressure_ = pressure[winner];
  last_from_ = loser;
  last_to_ = winner;
  last_moved_bytes_ = moved;
  rebalances_.fetch_add(1, std::memory_order_relaxed);
  if (rebalance_counter_ != nullptr) rebalance_counter_->Inc();

  apply_fn_(loser, budget_->target(loser));
  apply_fn_(winner, budget_->target(winner));

  if (opts_.events != nullptr && opts_.events->active()) {
    opts_.events->Emit(
        obs::Event(obs::EventType::kMemRebalance, opts_.clock->NowNanos())
            .With("from", static_cast<double>(loser))
            .With("to", static_cast<double>(winner))
            .With("bytes", static_cast<double>(moved))
            .With("p_memtable", pressure[kMemtable])
            .With("p_block_cache", pressure[kBlockCache])
            .With("p_keep_set", pressure[kKeepSet])
            .With("window_reads", static_cast<double>(d.reads))
            .With("window_writes", static_cast<double>(d.writes))
            .With("memtable_target",
                  static_cast<double>(budget_->target(kMemtable)))
            .With("block_cache_target",
                  static_cast<double>(budget_->target(kBlockCache)))
            .With("keep_set_target",
                  static_cast<double>(budget_->target(kKeepSet))));
  }
  PMBLADE_INFO(opts_.logger,
               "mem arbiter: %s -> %s (%llu B), pressures mem=%.3f "
               "cache=%.3f keep=%.3f",
               MemComponentName(loser), MemComponentName(winner),
               static_cast<unsigned long long>(moved), pressure[kMemtable],
               pressure[kBlockCache], pressure[kKeepSet]);
  return true;
}

std::string MemoryArbiter::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  char buf[256];
  std::string out = "{\"enabled\":true,\"budget\":";
  out += budget_->ToJson();
  snprintf(buf, sizeof(buf),
           ",\"ticks\":%llu,\"rebalances\":%llu,\"skipped_ticks\":%llu",
           static_cast<unsigned long long>(
               ticks_.load(std::memory_order_relaxed)),
           static_cast<unsigned long long>(
               rebalances_.load(std::memory_order_relaxed)),
           static_cast<unsigned long long>(
               skipped_ticks_.load(std::memory_order_relaxed)));
  out += buf;
  snprintf(buf, sizeof(buf),
           ",\"pressures\":{\"memtable\":%.6f,\"block_cache\":%.6f,"
           "\"keep_set\":%.6f}",
           last_pressure_[kMemtable], last_pressure_[kBlockCache],
           last_pressure_[kKeepSet]);
  out += buf;
  snprintf(buf, sizeof(buf),
           ",\"gain_ewma\":{\"memtable\":%.6f,\"block_cache\":%.6f,"
           "\"keep_set\":%.6f}",
           ewma_gain_[kMemtable], ewma_gain_[kBlockCache],
           ewma_gain_[kKeepSet]);
  out += buf;
  if (last_to_ >= 0) {
    snprintf(buf, sizeof(buf),
             ",\"last_move\":{\"from\":\"%s\",\"to\":\"%s\",\"bytes\":%llu}",
             MemComponentName(last_from_), MemComponentName(last_to_),
             static_cast<unsigned long long>(last_moved_bytes_));
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace mem
}  // namespace pmblade
