// MemoryArbiter: the feedback loop that re-divides the MemoryBudget.
//
// Policy (marginal-utility style):
//   * Every `interval_ms` the arbiter snapshots cumulative engine counters
//     (block-cache hits/misses, bloom checks/negatives/false positives,
//     flush count, write slowdowns/stalls, reads by source, write count)
//     and works on the WINDOW DELTAS, so decisions track the current
//     workload, not process-lifetime averages.
//   * Each component gets a pressure score in [0, 1] — its share-weighted
//     miss rate, i.e. how often the workload paid because that component
//     was too small:
//       memtable:    write_share · backpressure rate (slowdowns, stalls and
//                    flush churn per write)
//       block cache: read_share · cache miss ratio
//       keep set:    read_share · fraction of reads falling through to SSD
//                    level-1 (Eq. 3 retained too little on PM)
//   * The grant goes to the highest-scoring component, taken from the
//     lowest-scoring one, one `step_fraction` of the total per tick —
//     but only when the winner beats the loser by the `hysteresis` factor
//     (so a balanced system does not oscillate) and the window saw at
//     least `min_ops_per_tick` operations (so an idle system does not
//     drift on noise).
//   * Marginal utility: after each grant the arbiter measures whether the
//     winner's pressure actually dropped and keeps an EWMA of that gain
//     per component. The gain scales the component's future score, so
//     budget flows toward components whose last delta bought the most
//     misses avoided, and a component that stopped responding stops
//     attracting budget even while its raw pressure stays high.
//
// Every rebalance emits a kMemRebalance trace event carrying the inputs
// and the decision, increments pmblade.mem.rebalances, and pushes the new
// targets through the apply callback (atomic memtable quota,
// BlockCache::SetCapacity, CostModel::set_dynamic_tau_t).
//
// Threading: RebalanceOnce() is serialized by an internal mutex; the
// periodic thread is optional (tests drive RebalanceOnce directly). The
// inputs/apply callbacks must be safe to call from the arbiter thread —
// DBImpl wires them to atomics and internally synchronized structures
// only.

#ifndef PMBLADE_MEM_ARBITER_H_
#define PMBLADE_MEM_ARBITER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "mem/memory_budget.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/logging.h"

namespace pmblade {
namespace mem {

/// Cumulative engine counters the arbiter samples each tick (it diffs
/// consecutive snapshots itself).
struct ArbiterInputs {
  uint64_t reads = 0;           // total point reads
  uint64_t reads_ssd_l1 = 0;    // reads answered from SSD level-1
  uint64_t writes = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t bloom_checks = 0;
  uint64_t bloom_negatives = 0;
  uint64_t bloom_false_positives = 0;
  uint64_t flushes = 0;
  uint64_t slowdowns = 0;
  uint64_t stalls = 0;
};

struct ArbiterOptions {
  uint64_t interval_ms = 250;
  /// Fraction of the total budget moved per rebalance.
  double step_fraction = 0.05;
  /// The winner's score must exceed the loser's by this factor.
  double hysteresis = 1.3;
  /// Windows with fewer operations than this are skipped entirely.
  uint64_t min_ops_per_tick = 64;
  /// EWMA weight of the newest marginal-gain observation.
  double gain_ewma_alpha = 0.5;

  Clock* clock = nullptr;                    // required
  obs::MetricsRegistry* metrics = nullptr;   // optional
  obs::EventBus* events = nullptr;           // optional
  Logger* logger = nullptr;                  // optional
};

class MemoryArbiter {
 public:
  using InputsFn = std::function<ArbiterInputs()>;
  /// Called (from the arbiter thread or RebalanceOnce's caller) for each
  /// component whose target changed.
  using ApplyFn = std::function<void(int component, uint64_t target_bytes)>;

  /// `budget` must outlive the arbiter. Registers pmblade.mem.* metrics
  /// when a registry is supplied.
  MemoryArbiter(const ArbiterOptions& options, MemoryBudget* budget,
                InputsFn inputs_fn, ApplyFn apply_fn);
  ~MemoryArbiter();

  MemoryArbiter(const MemoryArbiter&) = delete;
  MemoryArbiter& operator=(const MemoryArbiter&) = delete;

  /// Starts the periodic thread. Idempotent.
  void Start();
  /// Stops and joins the thread. Idempotent; the destructor calls it.
  void Stop();

  /// One deterministic feedback tick: snapshot inputs, score pressures,
  /// maybe transfer one step. Returns true when budget moved. Exposed for
  /// tests; the periodic thread calls exactly this.
  bool RebalanceOnce();

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  uint64_t rebalances() const {
    return rebalances_.load(std::memory_order_relaxed);
  }

  const MemoryBudget* budget() const { return budget_; }

  /// Budget split + last window's pressures/decision, for
  /// DB::GetProperty("pmblade.mem.json") and the server INFO command.
  std::string ToJson() const;

 private:
  void ThreadLoop();
  /// Pressure scores for the window delta `d` (out[kNumComponents]).
  void ScorePressures(const ArbiterInputs& d, double* out) const;

  ArbiterOptions opts_;
  MemoryBudget* budget_;
  InputsFn inputs_fn_;
  ApplyFn apply_fn_;

  // Tick state (guarded by mu_).
  mutable std::mutex mu_;
  ArbiterInputs last_inputs_;
  bool has_last_inputs_ = false;
  double last_pressure_[kNumComponents] = {0.0, 0.0, 0.0};
  double ewma_gain_[kNumComponents] = {0.0, 0.0, 0.0};
  int last_grant_ = -1;           // component granted by the previous move
  double last_grant_pressure_ = 0.0;
  int last_from_ = -1, last_to_ = -1;
  uint64_t last_moved_bytes_ = 0;

  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> rebalances_{0};
  std::atomic<uint64_t> skipped_ticks_{0};

  obs::Counter* tick_counter_ = nullptr;
  obs::Counter* rebalance_counter_ = nullptr;
  obs::Counter* skipped_counter_ = nullptr;

  // Periodic thread.
  std::mutex thread_mu_;
  std::condition_variable thread_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
  bool running_ = false;
};

}  // namespace mem
}  // namespace pmblade

#endif  // PMBLADE_MEM_ARBITER_H_
