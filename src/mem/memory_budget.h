// MemoryBudget: the engine's single DRAM/PM budget, divided into
// per-component targets the MemoryArbiter retunes at runtime.
//
// Components (the engine's three tunable memory consumers):
//   * kMemtable   — the active memtable's byte quota (MakeRoomForWrite's
//                   rotation threshold; larger = fewer flushes, bigger
//                   group-commit batches absorb write bursts)
//   * kBlockCache — SST block cache capacity (larger = fewer SSD block
//                   reads on the cold-read path)
//   * kKeepSet    — the Eq. 3 keep-set budget τ_t (larger = more hot
//                   partitions retained on PM past major compaction, fewer
//                   reads falling through to SSD level-1)
//
// Targets are atomics: the arbiter thread writes them while the write path
// (memtable quota), read path (cache capacity) and compaction scheduler
// (τ_t) read them concurrently. Invariant: sum(targets) == total(), and
// every target >= its floor — Transfer() preserves both.

#ifndef PMBLADE_MEM_MEMORY_BUDGET_H_
#define PMBLADE_MEM_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace pmblade {
namespace mem {

enum MemComponent : int {
  kMemtable = 0,
  kBlockCache = 1,
  kKeepSet = 2,
  kNumComponents = 3,
};

const char* MemComponentName(int component);

class MemoryBudget {
 public:
  /// Seeds the split. Each initial target is clamped to its floor; any
  /// surplus or deficit against `total` is settled on the keep-set (the
  /// most elastic component), then proportionally if the floors force it.
  MemoryBudget(uint64_t total, const uint64_t floors[kNumComponents],
               const uint64_t initial[kNumComponents]);

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  uint64_t total() const { return total_; }
  uint64_t floor(int component) const { return floors_[component]; }
  uint64_t target(int component) const {
    return targets_[component].load(std::memory_order_relaxed);
  }

  /// Moves up to `bytes` from one component to another, never taking
  /// `from` below its floor. Returns the bytes actually moved (0 when
  /// `from` sits at its floor already). Only the arbiter calls this.
  uint64_t Transfer(int from, int to, uint64_t bytes);

  /// {"total":..,"components":[{"name":..,"target":..,"floor":..},..]}
  std::string ToJson() const;

 private:
  uint64_t total_;
  uint64_t floors_[kNumComponents];
  std::atomic<uint64_t> targets_[kNumComponents];
};

}  // namespace mem
}  // namespace pmblade

#endif  // PMBLADE_MEM_MEMORY_BUDGET_H_
