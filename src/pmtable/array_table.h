// ArrayTable: the uncompressed array-based PM table the paper compares
// against (MatrixKV-style [9]): a metadata array of fixed-width offsets plus
// a data array of sorted key-value pairs. A binary-search probe touches PM
// twice — once for the offset, once for the entry — which is exactly the
// access-count disadvantage the PM table's prefix layer removes.

#ifndef PMBLADE_PMTABLE_ARRAY_TABLE_H_
#define PMBLADE_PMTABLE_ARRAY_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "pm/pm_pool.h"
#include "pmtable/l0_table.h"

namespace pmblade {

class ArrayTable : public L0Table,
                   public std::enable_shared_from_this<ArrayTable> {
 public:
  static Status Open(PmPool* pool, uint64_t id,
                     std::shared_ptr<ArrayTable>* table);

  Iterator* NewIterator() const override;
  uint64_t num_entries() const override { return num_entries_; }
  uint64_t size_bytes() const override { return size_bytes_; }
  Slice smallest() const override { return smallest_; }
  Slice largest() const override { return largest_; }
  uint64_t id() const override { return id_; }
  Status Destroy() override {
    doomed_ = true;
    return Status::OK();
  }
  ~ArrayTable() override {
    if (doomed_) pool_->Free(id_);
  }

 private:
  friend class ArrayTableIter;
  friend class ArrayTableBuilder;
  ArrayTable() = default;

  Status Validate();

  /// Decodes entry `i`; returns false on corruption.
  bool DecodeEntry(uint32_t i, Slice* key, Slice* value) const;

  PmPool* pool_ = nullptr;
  uint64_t id_ = 0;
  bool doomed_ = false;  // free the pool object on destruction
  uint64_t size_bytes_ = 0;
  uint32_t num_entries_ = 0;
  const char* base_ = nullptr;
  const char* offsets_ = nullptr;  // num_entries fixed32 offsets
  const char* data_ = nullptr;
  const char* limit_ = nullptr;
  std::string smallest_;
  std::string largest_;
};

class ArrayTableBuilder {
 public:
  explicit ArrayTableBuilder(PmPool* pool);

  ArrayTableBuilder(const ArrayTableBuilder&) = delete;
  ArrayTableBuilder& operator=(const ArrayTableBuilder&) = delete;

  void Add(const Slice& internal_key, const Slice& value);
  Status Finish(std::shared_ptr<ArrayTable>* table);

  uint64_t num_entries() const { return offsets_.size(); }

 private:
  PmPool* pool_;
  std::vector<uint32_t> offsets_;
  std::string data_;
};

}  // namespace pmblade

#endif  // PMBLADE_PMTABLE_ARRAY_TABLE_H_
