// PmTable: the paper's compressed level-0 table (Section IV-A, Fig. 2(b)).
//
// Three-layer layout inside one PM-pool object:
//
//   [header 64 B]
//   [meta layer]   distinct "table id" key components (length-prefixed);
//                  extracted once per table instead of repeated per key
//   [prefix layer] one fixed-width slot per group: the first `prefix_width`
//                  bytes of the group's first key *remainder* (key with its
//                  meta component stripped), zero-padded, memcmp-comparable
//   [group index]  per group: entry-layer offset, entry count, meta id,
//                  common-prefix length (over remainders, <= prefix_width)
//   [entry layer]  per entry: varint suffix_len | varint value_len |
//                  suffix bytes | value bytes, where
//                  full_key = meta[group.meta_id] ++ slot[0:common_len] ++
//                             suffix
//
// Groups hold up to `group_size` entries (8 or 16) and never straddle a meta
// boundary, so slot order within one meta range equals full-key order.
//
// Point lookup (the paper's read path): binary-search the metas, then the
// prefix slots of that meta's group range (one PM access per probe — the
// array layout needs two), then sequentially scan <= group_size entries.

#ifndef PMBLADE_PMTABLE_PM_TABLE_H_
#define PMBLADE_PMTABLE_PM_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "pm/pm_pool.h"
#include "pmtable/l0_table.h"
#include "util/comparator.h"

namespace pmblade {

struct PmTableOptions {
  uint32_t group_size = 16;     // entries per group (paper: 8 or 16)
  uint32_t prefix_width = 8;    // fixed slot width in bytes, <= 64
};

class PmTable : public L0Table,
                public std::enable_shared_from_this<PmTable> {
 public:
  /// Opens a PM table stored as pool object `id`. Validates the header and
  /// caches boundary keys in DRAM.
  static Status Open(PmPool* pool, uint64_t id,
                     std::shared_ptr<PmTable>* table);

  Iterator* NewIterator() const override;
  uint64_t num_entries() const override { return num_entries_; }
  uint64_t size_bytes() const override { return size_bytes_; }
  Slice smallest() const override { return smallest_; }
  Slice largest() const override { return largest_; }
  uint64_t id() const override { return id_; }
  Status Destroy() override {
    doomed_ = true;
    return Status::OK();
  }
  ~PmTable() override {
    if (doomed_) pool_->Free(id_);
  }

  uint32_t num_groups() const { return num_groups_; }
  uint32_t num_metas() const { return num_metas_; }

 private:
  friend class PmTableIter;
  PmTable() = default;

  Status Validate();

  // Decoded layout pointers (into the pool mapping).
  const char* base_ = nullptr;
  const char* meta_layer_ = nullptr;
  const char* prefix_layer_ = nullptr;
  const char* group_index_ = nullptr;
  const char* entry_layer_ = nullptr;
  const char* limit_ = nullptr;

  PmPool* pool_ = nullptr;
  uint64_t id_ = 0;
  bool doomed_ = false;  // free the pool object on destruction
  uint64_t size_bytes_ = 0;
  uint32_t num_entries_ = 0;
  uint32_t num_groups_ = 0;
  uint32_t num_metas_ = 0;
  uint32_t group_size_ = 0;
  uint32_t prefix_width_ = 0;

  // DRAM-side caches built at open.
  std::vector<Slice> metas_;            // views into the meta layer
  std::vector<uint32_t> meta_group_begin_;  // first group of each meta (+end)
  std::string smallest_;
  std::string largest_;
};

}  // namespace pmblade

#endif  // PMBLADE_PMTABLE_PM_TABLE_H_
