#include "pmtable/pm_table.h"

#include <cstring>

#include "compress/prefix.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace pmblade {

// Header layout (64 bytes):
//   0..3   magic "PMT1"
//   4..7   fixed32 num_entries
//   8..11  fixed32 num_groups
//   12..15 fixed32 num_metas
//   16..19 fixed32 group_size
//   20..23 fixed32 prefix_width
//   24..27 fixed32 meta_layer offset     (from image start)
//   28..31 fixed32 prefix_layer offset
//   32..35 fixed32 group_index offset
//   36..39 fixed32 entry_layer offset
//   40..43 fixed32 total image size
//   44..47 fixed32 header crc (bytes 0..43)
//   48..63 reserved
// Group index entry (16 bytes):
//   0..3   fixed32 entry offset (relative to entry layer)
//   4..7   fixed32 entry count
//   8..11  fixed32 meta id
//   12..15 fixed32 common prefix length (over remainders)

namespace pmtable_format {
constexpr char kMagic[4] = {'P', 'M', 'T', '1'};
constexpr uint32_t kHeaderSize = 64;
constexpr uint32_t kGroupIndexEntrySize = 16;
}  // namespace pmtable_format

using namespace pmtable_format;  // NOLINT

Status PmTable::Open(PmPool* pool, uint64_t id,
                     std::shared_ptr<PmTable>* table) {
  char* data = pool->DataFor(id);
  if (data == nullptr) {
    return Status::NotFound("pm table: no such pool object");
  }
  std::shared_ptr<PmTable> t(new PmTable());
  t->pool_ = pool;
  t->id_ = id;
  t->base_ = data;
  PMBLADE_RETURN_IF_ERROR(t->Validate());
  *table = std::move(t);
  return Status::OK();
}

Status PmTable::Validate() {
  const char* h = base_;
  if (memcmp(h, kMagic, 4) != 0) {
    return Status::Corruption("pm table: bad magic");
  }
  if (crc32c::Value(h, 44) != DecodeFixed32(h + 44)) {
    return Status::Corruption("pm table: header crc mismatch");
  }
  num_entries_ = DecodeFixed32(h + 4);
  num_groups_ = DecodeFixed32(h + 8);
  num_metas_ = DecodeFixed32(h + 12);
  group_size_ = DecodeFixed32(h + 16);
  prefix_width_ = DecodeFixed32(h + 20);
  uint32_t meta_off = DecodeFixed32(h + 24);
  uint32_t prefix_off = DecodeFixed32(h + 28);
  uint32_t gindex_off = DecodeFixed32(h + 32);
  uint32_t entry_off = DecodeFixed32(h + 36);
  size_bytes_ = DecodeFixed32(h + 40);

  if (prefix_width_ == 0 || prefix_width_ > 64 || group_size_ == 0) {
    return Status::Corruption("pm table: bad geometry");
  }

  meta_layer_ = base_ + meta_off;
  prefix_layer_ = base_ + prefix_off;
  group_index_ = base_ + gindex_off;
  entry_layer_ = base_ + entry_off;
  limit_ = base_ + size_bytes_;

  // Decode the meta layer and the per-meta group ranges.
  metas_.clear();
  meta_group_begin_.clear();
  Slice meta_in(meta_layer_, prefix_layer_ - meta_layer_);
  for (uint32_t i = 0; i < num_metas_; ++i) {
    Slice m;
    if (!GetLengthPrefixedSlice(&meta_in, &m)) {
      return Status::Corruption("pm table: bad meta layer");
    }
    metas_.push_back(m);
  }
  // Group ranges: scan the group index once (DRAM-side cache).
  meta_group_begin_.assign(num_metas_ + 1, num_groups_);
  uint32_t prev_meta = UINT32_MAX;
  for (uint32_t g = 0; g < num_groups_; ++g) {
    const char* ge = group_index_ + uint64_t{g} * kGroupIndexEntrySize;
    uint32_t meta_id = DecodeFixed32(ge + 8);
    if (meta_id >= num_metas_) {
      return Status::Corruption("pm table: bad meta id in group index");
    }
    if (meta_id != prev_meta) {
      if (prev_meta != UINT32_MAX && meta_id < prev_meta) {
        return Status::Corruption("pm table: meta ids not ascending");
      }
      for (uint32_t m = (prev_meta == UINT32_MAX ? 0 : prev_meta + 1);
           m <= meta_id; ++m) {
        meta_group_begin_[m] = g;
      }
      prev_meta = meta_id;
    }
  }

  // Cache boundary keys.
  if (num_entries_ > 0) {
    std::unique_ptr<Iterator> it(NewIterator());
    it->SeekToFirst();
    if (!it->Valid()) return Status::Corruption("pm table: empty first");
    smallest_ = it->key().ToString();
    it->SeekToLast();
    if (!it->Valid()) return Status::Corruption("pm table: empty last");
    largest_ = it->key().ToString();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

class PmTableIter final : public Iterator {
 public:
  explicit PmTableIter(std::shared_ptr<const PmTable> table)
      : t_(std::move(table)) {}

  bool Valid() const override { return group_ < t_->num_groups_; }
  Status status() const override { return status_; }
  Slice key() const override { return key_; }
  Slice value() const override { return value_; }

  void SeekToFirst() override {
    if (t_->num_groups_ == 0) {
      group_ = t_->num_groups_;
      return;
    }
    LoadGroup(0);
    PositionAt(0);
  }

  void SeekToLast() override {
    if (t_->num_groups_ == 0) {
      group_ = t_->num_groups_;
      return;
    }
    LoadGroup(t_->num_groups_ - 1);
    PositionAt(static_cast<int>(entry_count_) - 1);
  }

  void Seek(const Slice& target) override {
    // Binary search on group first keys. Each probe reconstructs one first
    // key from the prefix slot + the group's first entry header — a single
    // dependent PM access (the prefix layer's selling point: one access per
    // probe vs two for the array layout). Full-key comparison keeps
    // internal-key order exact regardless of slot truncation ties.
    if (t_->num_groups_ == 0) {
      group_ = t_->num_groups_;
      return;
    }
    uint32_t probes = 0;
    std::string first_key;
    // Upper bound: first group whose first key > target.
    uint32_t lo = 0, hi = t_->num_groups_;
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      ++probes;
      if (!DecodeGroupFirstKey(mid, &first_key)) return;
      if (Compare(Slice(first_key), target) > 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    t_->pool_->InjectRead(probes * (t_->prefix_width_ + 16), probes);

    uint32_t candidate = (lo > 0) ? lo - 1 : 0;
    LoadGroup(candidate);
    for (size_t i = 0; i < entry_count_; ++i) {
      if (Compare(EntryKey(i), target) >= 0) {
        PositionAt(static_cast<int>(i));
        return;
      }
    }
    // Every entry of the candidate group < target: the answer is the first
    // entry of the next group (its first key > target by the search above).
    if (candidate + 1 < t_->num_groups_) {
      LoadGroup(candidate + 1);
      PositionAt(0);
    } else {
      group_ = t_->num_groups_;
    }
  }

  void Next() override {
    if (index_ + 1 < static_cast<int>(entry_count_)) {
      PositionAt(index_ + 1);
      return;
    }
    if (group_ + 1 >= t_->num_groups_) {
      group_ = t_->num_groups_;
      return;
    }
    LoadGroup(group_ + 1);
    PositionAt(0);
  }

  void Prev() override {
    if (index_ > 0) {
      PositionAt(index_ - 1);
      return;
    }
    if (group_ == 0) {
      group_ = t_->num_groups_;
      return;
    }
    LoadGroup(group_ - 1);
    PositionAt(static_cast<int>(entry_count_) - 1);
  }

 private:
  /// Reconstructed entries of the loaded group live as offset/length pairs
  /// into key_buf_ (one flat buffer reused across group loads), so decoding
  /// a group allocates nothing once the buffer has warmed up.
  struct EntryRef {
    uint32_t key_offset = 0;
    uint32_t key_len = 0;
    Slice value;
  };

  Slice EntryKey(size_t i) const {
    return Slice(key_buf_.data() + entries_[i].key_offset,
                 entries_[i].key_len);
  }

  int Compare(const Slice& a, const Slice& b) const {
    // Internal-key order: user key ascending, tag descending.
    int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r != 0) return r;
    uint64_t atag = ExtractTag(a), btag = ExtractTag(b);
    if (atag > btag) return -1;
    if (atag < btag) return +1;
    return 0;
  }

  /// Reconstructs group `g`'s first full key without decoding the whole
  /// group: meta ++ slot[0:common_len] ++ first entry's suffix.
  bool DecodeGroupFirstKey(uint32_t g, std::string* out) {
    const char* ge = t_->group_index_ + uint64_t{g} * 16;
    uint32_t entry_off = DecodeFixed32(ge);
    uint32_t meta_id = DecodeFixed32(ge + 8);
    uint32_t common_len = DecodeFixed32(ge + 12);
    const char* slot = t_->prefix_layer_ + uint64_t{g} * t_->prefix_width_;
    Slice meta = t_->metas_[meta_id];

    const char* p = t_->entry_layer_ + entry_off;
    uint32_t suffix_len = 0, value_len = 0;
    p = GetVarint32Ptr(p, t_->limit_, &suffix_len);
    if (p == nullptr) { Corrupt(); return false; }
    p = GetVarint32Ptr(p, t_->limit_, &value_len);
    if (p == nullptr || p + suffix_len > t_->limit_) {
      Corrupt();
      return false;
    }
    out->clear();
    out->reserve(meta.size() + common_len + suffix_len);
    out->append(meta.data(), meta.size());
    out->append(slot, common_len);
    out->append(p, suffix_len);
    return true;
  }

  /// Decodes all entries of group `g` into the flat key buffer + entry
  /// refs. Allocation-free once the buffers are warm. Injects the PM read
  /// cost of the group scan.
  void LoadGroup(uint32_t g) {
    group_ = g;
    const char* ge = t_->group_index_ + uint64_t{g} * 16;
    uint32_t entry_off = DecodeFixed32(ge);
    uint32_t count = DecodeFixed32(ge + 4);
    uint32_t meta_id = DecodeFixed32(ge + 8);
    uint32_t common_len = DecodeFixed32(ge + 12);
    const char* slot = t_->prefix_layer_ + uint64_t{g} * t_->prefix_width_;
    Slice meta = t_->metas_[meta_id];

    if (entries_.size() < count) entries_.resize(count);
    entry_count_ = count;
    key_buf_.clear();  // keeps capacity

    const char* p = t_->entry_layer_ + entry_off;
    const char* start = p;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t suffix_len = 0, value_len = 0;
      p = GetVarint32Ptr(p, t_->limit_, &suffix_len);
      if (p == nullptr) { Corrupt(); return; }
      p = GetVarint32Ptr(p, t_->limit_, &value_len);
      if (p == nullptr || p + suffix_len + value_len > t_->limit_) {
        Corrupt();
        return;
      }
      EntryRef& e = entries_[i];
      e.key_offset = static_cast<uint32_t>(key_buf_.size());
      key_buf_.append(meta.data(), meta.size());
      key_buf_.append(slot, common_len);
      key_buf_.append(p, suffix_len);
      e.key_len = static_cast<uint32_t>(key_buf_.size()) - e.key_offset;
      p += suffix_len;
      e.value = Slice(p, value_len);
      p += value_len;
    }
    // One sequential PM access covering the group's bytes.
    t_->pool_->InjectRead(static_cast<size_t>(p - start), 1);
  }

  void PositionAt(int i) {
    index_ = i;
    key_ = EntryKey(i);
    value_ = entries_[i].value;
  }

  void Corrupt() {
    status_ = Status::Corruption("pm table: bad entry encoding");
    group_ = t_->num_groups_;
    entry_count_ = 0;
  }

  std::shared_ptr<const PmTable> t_;
  uint32_t group_ = UINT32_MAX;
  int index_ = -1;
  uint32_t entry_count_ = 0;
  std::vector<EntryRef> entries_;
  std::string key_buf_;
  Slice key_;
  Slice value_;
  Status status_;
};

Iterator* PmTable::NewIterator() const {
  if (num_groups_ == 0) return NewEmptyIterator();
  return new PmTableIter(shared_from_this());
}

}  // namespace pmblade
