#include "pmtable/snappy_table.h"

#include <cstring>

#include "compress/lz.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace pmblade {

// Image layout:
//   0..3   magic "SNT1"
//   4..7   fixed32 num_entries
//   8..11  fixed32 num_groups
//   12..15 fixed32 group_size
//   16..19 fixed32 offsets area start
//   20..23 fixed32 data area start
//   24..27 fixed32 total size
//   28..31 fixed32 header crc (bytes 0..27)
//   [offsets]      num_groups+1 fixed32 (compressed group bounds, relative
//                  to data area)
//   [group counts] num_groups fixed32 entry counts
//   [data]         per group: LZ-compressed concatenation of
//                  (varint klen | varint vlen | key | value) records

namespace {
constexpr char kMagic[4] = {'S', 'N', 'T', '1'};
constexpr uint32_t kHeaderSize = 32;
}  // namespace

Status SnappyTable::Open(PmPool* pool, uint64_t id,
                         std::shared_ptr<SnappyTable>* table) {
  char* data = pool->DataFor(id);
  if (data == nullptr) {
    return Status::NotFound("snappy table: no such pool object");
  }
  std::shared_ptr<SnappyTable> t(new SnappyTable());
  t->pool_ = pool;
  t->id_ = id;
  t->base_ = data;
  PMBLADE_RETURN_IF_ERROR(t->Validate());
  *table = std::move(t);
  return Status::OK();
}

Status SnappyTable::Validate() {
  if (memcmp(base_, kMagic, 4) != 0) {
    return Status::Corruption("snappy table: bad magic");
  }
  if (crc32c::Value(base_, 28) != DecodeFixed32(base_ + 28)) {
    return Status::Corruption("snappy table: header crc mismatch");
  }
  num_entries_ = DecodeFixed32(base_ + 4);
  num_groups_ = DecodeFixed32(base_ + 8);
  group_size_ = DecodeFixed32(base_ + 12);
  offsets_ = base_ + DecodeFixed32(base_ + 16);
  data_ = base_ + DecodeFixed32(base_ + 20);
  size_bytes_ = DecodeFixed32(base_ + 24);
  limit_ = base_ + size_bytes_;

  if (num_entries_ > 0) {
    std::unique_ptr<Iterator> it(NewIterator());
    it->SeekToFirst();
    if (!it->Valid()) return Status::Corruption("snappy table: bad first");
    smallest_ = it->key().ToString();
    it->SeekToLast();
    if (!it->Valid()) return Status::Corruption("snappy table: bad last");
    largest_ = it->key().ToString();
  }
  return Status::OK();
}

Status SnappyTable::LoadGroup(uint32_t g, std::string* out,
                              uint32_t* count) const {
  if (g >= num_groups_) return Status::InvalidArgument("group out of range");
  uint32_t begin = DecodeFixed32(offsets_ + uint64_t{g} * 4);
  uint32_t end = DecodeFixed32(offsets_ + uint64_t{g + 1} * 4);
  const char* counts = offsets_ + uint64_t{num_groups_ + 1} * 4;
  *count = DecodeFixed32(counts + uint64_t{g} * 4);
  if (end < begin || data_ + end > limit_) {
    return Status::Corruption("snappy table: bad group bounds");
  }
  // PM read of the compressed bytes (one sequential access).
  pool_->InjectRead(end - begin, 1);
  out->clear();
  return lz::Decompress(Slice(data_ + begin, end - begin), out);
}

class SnappyTableIter final : public Iterator {
 public:
  explicit SnappyTableIter(std::shared_ptr<const SnappyTable> table)
      : t_(std::move(table)) {}

  bool Valid() const override { return group_ < t_->num_groups_; }
  Status status() const override { return status_; }
  Slice key() const override { return Slice(entries_[index_].key); }
  Slice value() const override { return Slice(entries_[index_].value); }

  void SeekToFirst() override {
    if (t_->num_groups_ == 0) { group_ = 0; Invalidate(); return; }
    if (!LoadGroup(0)) return;
    index_ = 0;
  }
  void SeekToLast() override {
    if (t_->num_groups_ == 0) { Invalidate(); return; }
    if (!LoadGroup(t_->num_groups_ - 1)) return;
    index_ = static_cast<int>(entries_.size()) - 1;
  }
  void Next() override {
    if (index_ + 1 < static_cast<int>(entries_.size())) { ++index_; return; }
    if (group_ + 1 >= t_->num_groups_) { Invalidate(); return; }
    if (!LoadGroup(group_ + 1)) return;
    index_ = 0;
  }
  void Prev() override {
    if (index_ > 0) { --index_; return; }
    if (group_ == 0) { Invalidate(); return; }
    if (!LoadGroup(group_ - 1)) return;
    index_ = static_cast<int>(entries_.size()) - 1;
  }

  void Seek(const Slice& target) override {
    // Binary search over groups; each probe decompresses a group to read its
    // first key (the cost the paper charges these layouts with).
    uint32_t lo = 0, hi = t_->num_groups_;
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (!LoadGroup(mid)) return;
      if (entries_.empty() ||
          CompareInternal(Slice(entries_[0].key), target) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    // Candidate group is lo-1 (its first key < target) unless lo == 0.
    uint32_t g = (lo == 0) ? 0 : lo - 1;
    while (g < t_->num_groups_) {
      if (!LoadGroup(g)) return;
      for (size_t i = 0; i < entries_.size(); ++i) {
        if (CompareInternal(Slice(entries_[i].key), target) >= 0) {
          index_ = static_cast<int>(i);
          return;
        }
      }
      ++g;
    }
    Invalidate();
  }

 private:
  struct Entry {
    std::string key;
    std::string value;
  };

  static int CompareInternal(const Slice& a, const Slice& b) {
    int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r != 0) return r;
    uint64_t atag = ExtractTag(a), btag = ExtractTag(b);
    if (atag > btag) return -1;
    if (atag < btag) return +1;
    return 0;
  }

  void Invalidate() { group_ = t_->num_groups_; }

  bool LoadGroup(uint32_t g) {
    std::string raw;
    uint32_t count = 0;
    Status s = t_->LoadGroup(g, &raw, &count);
    if (!s.ok()) {
      status_ = s;
      Invalidate();
      return false;
    }
    entries_.clear();
    Slice in(raw);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t klen = 0, vlen = 0;
      if (!GetVarint32(&in, &klen) || !GetVarint32(&in, &vlen) ||
          in.size() < klen + vlen) {
        status_ = Status::Corruption("snappy table: bad group records");
        Invalidate();
        return false;
      }
      Entry e;
      e.key.assign(in.data(), klen);
      in.remove_prefix(klen);
      e.value.assign(in.data(), vlen);
      in.remove_prefix(vlen);
      entries_.push_back(std::move(e));
    }
    group_ = g;
    return true;
  }

  std::shared_ptr<const SnappyTable> t_;
  uint32_t group_ = UINT32_MAX;
  int index_ = -1;
  std::vector<Entry> entries_;
  Status status_;
};

Iterator* SnappyTable::NewIterator() const {
  if (num_groups_ == 0) return NewEmptyIterator();
  return new SnappyTableIter(shared_from_this());
}

SnappyTableBuilder::SnappyTableBuilder(PmPool* pool, uint32_t group_size)
    : pool_(pool), group_size_(group_size == 0 ? 1 : group_size) {
  group_offsets_.push_back(0);
}

void SnappyTableBuilder::Add(const Slice& internal_key, const Slice& value) {
  PutVarint32(&pending_, static_cast<uint32_t>(internal_key.size()));
  PutVarint32(&pending_, static_cast<uint32_t>(value.size()));
  pending_.append(internal_key.data(), internal_key.size());
  pending_.append(value.data(), value.size());
  ++pending_count_;
  ++num_entries_;
  if (pending_count_ >= group_size_) SealGroup();
}

void SnappyTableBuilder::SealGroup() {
  if (pending_count_ == 0) return;
  lz::Compress(Slice(pending_), &data_);
  group_offsets_.push_back(static_cast<uint32_t>(data_.size()));
  group_counts_.push_back(pending_count_);
  pending_.clear();
  pending_count_ = 0;
}

Status SnappyTableBuilder::Finish(std::shared_ptr<SnappyTable>* table) {
  SealGroup();
  const uint32_t num_groups = static_cast<uint32_t>(group_counts_.size());
  const uint32_t offsets_start = kHeaderSize;
  const uint32_t data_start =
      offsets_start + (num_groups + 1) * 4 + num_groups * 4;
  const uint32_t total = data_start + static_cast<uint32_t>(data_.size());

  std::string image;
  image.reserve(total);
  image.resize(kHeaderSize, '\0');
  char* h = image.data();
  memcpy(h, kMagic, 4);
  EncodeFixed32(h + 4, num_entries_);
  EncodeFixed32(h + 8, num_groups);
  EncodeFixed32(h + 12, group_size_);
  EncodeFixed32(h + 16, offsets_start);
  EncodeFixed32(h + 20, data_start);
  EncodeFixed32(h + 24, total);
  EncodeFixed32(h + 28, crc32c::Value(h, 28));

  for (uint32_t off : group_offsets_) PutFixed32(&image, off);
  for (uint32_t count : group_counts_) PutFixed32(&image, count);
  image.append(data_);

  PmPool::ObjectInfo info;
  char* dst = nullptr;
  uint32_t kind =
      group_size_ > 1 ? kSnappyGroupTableObject : kSnappyTableObject;
  PMBLADE_RETURN_IF_ERROR(pool_->Allocate(image.size(), kind, &info, &dst));
  memcpy(dst, image.data(), image.size());
  pool_->InjectWrite(image.size());
  pool_->Persist(dst, image.size());

  return SnappyTable::Open(pool_, info.id, table);
}

}  // namespace pmblade
