#include "pmtable/array_table.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"

namespace pmblade {

// Image layout:
//   0..3   magic "ART1"
//   4..7   fixed32 num_entries
//   8..11  fixed32 offsets area start
//   12..15 fixed32 data area start
//   16..19 fixed32 total size
//   20..23 fixed32 header crc (bytes 0..19)
//   24..31 reserved
//   [offsets] num_entries fixed32 (entry start relative to data area)
//   [data]    per entry: varint klen | varint vlen | key | value

namespace {
constexpr char kMagic[4] = {'A', 'R', 'T', '1'};
constexpr uint32_t kHeaderSize = 32;
}  // namespace

Status ArrayTable::Open(PmPool* pool, uint64_t id,
                        std::shared_ptr<ArrayTable>* table) {
  char* data = pool->DataFor(id);
  if (data == nullptr) {
    return Status::NotFound("array table: no such pool object");
  }
  std::shared_ptr<ArrayTable> t(new ArrayTable());
  t->pool_ = pool;
  t->id_ = id;
  t->base_ = data;
  PMBLADE_RETURN_IF_ERROR(t->Validate());
  *table = std::move(t);
  return Status::OK();
}

Status ArrayTable::Validate() {
  if (memcmp(base_, kMagic, 4) != 0) {
    return Status::Corruption("array table: bad magic");
  }
  if (crc32c::Value(base_, 20) != DecodeFixed32(base_ + 20)) {
    return Status::Corruption("array table: header crc mismatch");
  }
  num_entries_ = DecodeFixed32(base_ + 4);
  offsets_ = base_ + DecodeFixed32(base_ + 8);
  data_ = base_ + DecodeFixed32(base_ + 12);
  size_bytes_ = DecodeFixed32(base_ + 16);
  limit_ = base_ + size_bytes_;

  if (num_entries_ > 0) {
    Slice k, v;
    if (!DecodeEntry(0, &k, &v)) {
      return Status::Corruption("array table: bad first entry");
    }
    smallest_ = k.ToString();
    if (!DecodeEntry(num_entries_ - 1, &k, &v)) {
      return Status::Corruption("array table: bad last entry");
    }
    largest_ = k.ToString();
  }
  return Status::OK();
}

bool ArrayTable::DecodeEntry(uint32_t i, Slice* key, Slice* value) const {
  if (i >= num_entries_) return false;
  uint32_t off = DecodeFixed32(offsets_ + uint64_t{i} * 4);
  const char* p = data_ + off;
  uint32_t klen = 0, vlen = 0;
  p = GetVarint32Ptr(p, limit_, &klen);
  if (p == nullptr) return false;
  p = GetVarint32Ptr(p, limit_, &vlen);
  if (p == nullptr || p + klen + vlen > limit_) return false;
  *key = Slice(p, klen);
  *value = Slice(p + klen, vlen);
  return true;
}

class ArrayTableIter final : public Iterator {
 public:
  explicit ArrayTableIter(std::shared_ptr<const ArrayTable> table)
      : t_(std::move(table)) {}

  bool Valid() const override { return pos_ < t_->num_entries_; }
  Status status() const override { return status_; }
  Slice key() const override { return key_; }
  Slice value() const override { return value_; }

  void SeekToFirst() override { Position(0); }
  void SeekToLast() override {
    Position(t_->num_entries_ > 0 ? t_->num_entries_ - 1 : t_->num_entries_);
  }
  void Next() override { Position(pos_ + 1); }
  void Prev() override {
    Position(pos_ == 0 ? t_->num_entries_ : pos_ - 1);
  }

  void Seek(const Slice& target) override {
    // Binary search; each probe costs two PM accesses (offset + entry).
    uint32_t lo = 0, hi = t_->num_entries_;
    uint32_t probes = 0;
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      Slice k, v;
      if (!t_->DecodeEntry(mid, &k, &v)) {
        status_ = Status::Corruption("array table: bad entry");
        pos_ = t_->num_entries_;
        return;
      }
      ++probes;
      if (CompareInternal(k, target) < 0) lo = mid + 1;
      else hi = mid;
    }
    t_->pool_->InjectRead(probes * 32, probes * 2);
    Position(lo);
  }

 private:
  static int CompareInternal(const Slice& a, const Slice& b) {
    int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r != 0) return r;
    uint64_t atag = ExtractTag(a), btag = ExtractTag(b);
    if (atag > btag) return -1;
    if (atag < btag) return +1;
    return 0;
  }

  void Position(uint32_t pos) {
    pos_ = pos;
    if (pos_ >= t_->num_entries_) return;
    Slice k, v;
    if (!t_->DecodeEntry(pos_, &k, &v)) {
      status_ = Status::Corruption("array table: bad entry");
      pos_ = t_->num_entries_;
      return;
    }
    key_ = k;
    value_ = v;
    t_->pool_->InjectRead(k.size() + v.size(), 1);
  }

  std::shared_ptr<const ArrayTable> t_;
  uint32_t pos_ = UINT32_MAX;
  Slice key_;
  Slice value_;
  Status status_;
};

Iterator* ArrayTable::NewIterator() const {
  if (num_entries_ == 0) return NewEmptyIterator();
  return new ArrayTableIter(shared_from_this());
}

ArrayTableBuilder::ArrayTableBuilder(PmPool* pool) : pool_(pool) {}

void ArrayTableBuilder::Add(const Slice& internal_key, const Slice& value) {
  offsets_.push_back(static_cast<uint32_t>(data_.size()));
  PutVarint32(&data_, static_cast<uint32_t>(internal_key.size()));
  PutVarint32(&data_, static_cast<uint32_t>(value.size()));
  data_.append(internal_key.data(), internal_key.size());
  data_.append(value.data(), value.size());
}

Status ArrayTableBuilder::Finish(std::shared_ptr<ArrayTable>* table) {
  const uint32_t offsets_start = kHeaderSize;
  const uint32_t data_start =
      offsets_start + static_cast<uint32_t>(offsets_.size()) * 4;
  const uint32_t total = data_start + static_cast<uint32_t>(data_.size());

  std::string image;
  image.reserve(total);
  image.resize(kHeaderSize, '\0');
  char* h = image.data();
  memcpy(h, kMagic, 4);
  EncodeFixed32(h + 4, static_cast<uint32_t>(offsets_.size()));
  EncodeFixed32(h + 8, offsets_start);
  EncodeFixed32(h + 12, data_start);
  EncodeFixed32(h + 16, total);
  EncodeFixed32(h + 20, crc32c::Value(h, 20));

  for (uint32_t off : offsets_) {
    PutFixed32(&image, off);
  }
  image.append(data_);

  PmPool::ObjectInfo info;
  char* dst = nullptr;
  PMBLADE_RETURN_IF_ERROR(
      pool_->Allocate(image.size(), kArrayTableObject, &info, &dst));
  memcpy(dst, image.data(), image.size());
  pool_->InjectWrite(image.size());
  pool_->Persist(dst, image.size());

  return ArrayTable::Open(pool_, info.id, table);
}

}  // namespace pmblade
