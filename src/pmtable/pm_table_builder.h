// PmTableBuilder: assembles the three-layer PM table image from a sorted
// internal-key entry stream and lands it in the PM pool with a single
// streaming write + persist (the flush path of minor compaction).

#ifndef PMBLADE_PMTABLE_PM_TABLE_BUILDER_H_
#define PMBLADE_PMTABLE_PM_TABLE_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "pm/pm_pool.h"
#include "pmtable/pm_table.h"

namespace pmblade {

class PmTableBuilder {
 public:
  PmTableBuilder(PmPool* pool, const PmTableOptions& options);

  PmTableBuilder(const PmTableBuilder&) = delete;
  PmTableBuilder& operator=(const PmTableBuilder&) = delete;

  /// Adds one entry; internal keys must arrive in ascending internal order.
  void Add(const Slice& internal_key, const Slice& value);

  /// Serializes the image, allocates a pool object, copies + persists it and
  /// opens the resulting table. Charges the PM write-bandwidth cost.
  Status Finish(std::shared_ptr<PmTable>* table);

  uint64_t num_entries() const { return num_entries_; }
  /// Uncompressed payload bytes added so far (keys + values).
  uint64_t raw_bytes() const { return raw_bytes_; }

 private:
  struct PendingEntry {
    std::string key;    // full internal key
    std::string value;
  };

  void SealGroup();

  PmPool* pool_;
  PmTableOptions options_;

  // Current (unsealed) group.
  std::vector<PendingEntry> group_entries_;
  uint32_t group_meta_id_ = 0;

  // Accumulated layers.
  std::vector<std::string> metas_;
  std::string prefix_layer_;
  std::string group_index_;
  std::string entry_layer_;
  uint32_t num_groups_ = 0;
  uint64_t num_entries_ = 0;
  uint64_t raw_bytes_ = 0;
  std::string last_key_;
};

}  // namespace pmblade

#endif  // PMBLADE_PMTABLE_PM_TABLE_BUILDER_H_
