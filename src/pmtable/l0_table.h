// L0Table: the uniform interface over level-0 table implementations.
//
// PM-Blade's level-0 is a set of tables flushed from the memtable. The
// engine supports several physical layouts behind this interface so the
// paper's configurations are all expressible:
//   * PmTable           — the paper's three-layer prefix-compressed layout
//   * ArrayTable        — uncompressed data+metadata arrays (MatrixKV-style)
//   * ArraySnappyTable  — per-pair LZ compression       (Fig. 6 baseline)
//   * ArraySnappyGroupTable — per-8-pair LZ compression (Fig. 6 baseline)
//   * SsdL0Table        — an SSTable on the simulated SSD (PMBlade-SSD)
//
// Entries are internal keys (user_key ⊕ seq ⊕ type) in ascending internal
// order; tables are immutable once built.
//
// Every table can carry a bloom filter over its user keys, consulted by
// L0TableGet before any PM scan or SSD block read. PM layouts hold a
// DRAM-resident whole-table filter (built at flush/compaction time by the
// L0TableFactory, rebuilt by a table scan on recovery — the PM media format
// is unchanged); SsdL0Table overrides MayContain with the SSTable's own
// per-block filter. One BloomFilterPolicy implementation serves both.

#ifndef PMBLADE_PMTABLE_L0_TABLE_H_
#define PMBLADE_PMTABLE_L0_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "memtable/internal_key.h"
#include "util/iterator.h"
#include "util/status.h"

namespace pmblade {

class BloomFilterPolicy;

/// Object kinds registered in the PM pool directory.
enum PmObjectKind : uint32_t {
  kPmTableObject = 1,
  kArrayTableObject = 2,
  kSnappyTableObject = 3,
  kSnappyGroupTableObject = 4,
};

class L0Table {
 public:
  virtual ~L0Table() = default;

  /// Iterator over (internal key, value); caller owns it. The iterator must
  /// keep the table alive independently of the caller's reference.
  virtual Iterator* NewIterator() const = 0;

  virtual uint64_t num_entries() const = 0;
  /// Storage footprint in bytes (PM object size or SSD file size).
  virtual uint64_t size_bytes() const = 0;

  /// Smallest/largest internal keys (cached at open; valid for the table's
  /// lifetime). Empty table => empty slices.
  virtual Slice smallest() const = 0;
  virtual Slice largest() const = 0;

  /// Monotonic creation id; among overlapping *unsorted* tables, larger id
  /// means newer data and must be consulted first.
  virtual uint64_t id() const = 0;

  /// Marks the underlying storage (PM object or SSD file) for release.
  /// Called once, when the table leaves the version. The actual free is
  /// deferred to the destructor, i.e. until the last L0TableRef drops, so
  /// concurrent readers and iterators still holding a ref never observe
  /// freed storage.
  virtual Status Destroy() = 0;

  // ---- bloom filter (read-path acceleration) ----

  /// Whether a filter is attached; when false, MayContain is vacuously true
  /// and probes should not be counted as bloom checks.
  virtual bool HasFilter() const { return !filter_.empty(); }

  /// Probes the filter with `lkey`'s user key. May return false positives,
  /// never false negatives for keys in the table. Filterless tables return
  /// true.
  virtual bool MayContain(const LookupKey& lkey) const;

  /// Attaches a DRAM-resident whole-table filter produced by
  /// `policy->CreateFilter` over the table's user keys. Must be called
  /// before the table is published to readers (build or recovery time);
  /// the filter is immutable afterwards.
  void InstallFilter(const BloomFilterPolicy* policy, std::string filter);

  /// Builds and installs the whole-table filter by scanning the table.
  /// Recovery path for PM layouts, whose on-media format carries no filter
  /// section. No-op when `policy` is nullptr.
  void BuildFilter(const BloomFilterPolicy* policy);

  /// DRAM bytes held by the attached filter (0 for SSTables, whose filter
  /// lives in the TableReader).
  size_t filter_bytes() const { return filter_.size(); }

 protected:
  const BloomFilterPolicy* filter_policy_ = nullptr;
  std::string filter_;  // immutable once the table is published
};

using L0TableRef = std::shared_ptr<L0Table>;

/// Read-path probe accounting, aggregated per Get by the engine and fed to
/// the pmblade.bloom.* counters and the memory arbiter.
struct ReadProbeStats {
  uint64_t tables_probed = 0;         // passed the key-range rejection
  uint64_t bloom_checks = 0;          // tables that had a filter to consult
  uint64_t bloom_negatives = 0;       // probes skipped by the filter
  uint64_t bloom_false_positives = 0; // filter passed but the key was absent

  void MergeFrom(const ReadProbeStats& other) {
    tables_probed += other.tables_probed;
    bloom_checks += other.bloom_checks;
    bloom_negatives += other.bloom_negatives;
    bloom_false_positives += other.bloom_false_positives;
  }
};

/// Generic point lookup over any L0Table. Searches for `lkey`'s user key at
/// its snapshot; on a value hit fills *value and returns found=true/OK; on a
/// tombstone returns found=true and NotFound status via *result_status.
/// Consults the table's bloom filter (if any) after the range rejection and
/// before opening an iterator; `probe` (optional) accumulates the filter
/// accounting.
Status L0TableGet(const L0Table& table, const InternalKeyComparator& icmp,
                  const LookupKey& lkey, std::string* value, bool* found,
                  Status* result_status, ReadProbeStats* probe = nullptr);

}  // namespace pmblade

#endif  // PMBLADE_PMTABLE_L0_TABLE_H_
