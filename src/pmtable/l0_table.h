// L0Table: the uniform interface over level-0 table implementations.
//
// PM-Blade's level-0 is a set of tables flushed from the memtable. The
// engine supports several physical layouts behind this interface so the
// paper's configurations are all expressible:
//   * PmTable           — the paper's three-layer prefix-compressed layout
//   * ArrayTable        — uncompressed data+metadata arrays (MatrixKV-style)
//   * ArraySnappyTable  — per-pair LZ compression       (Fig. 6 baseline)
//   * ArraySnappyGroupTable — per-8-pair LZ compression (Fig. 6 baseline)
//   * SsdL0Table        — an SSTable on the simulated SSD (PMBlade-SSD)
//
// Entries are internal keys (user_key ⊕ seq ⊕ type) in ascending internal
// order; tables are immutable once built.

#ifndef PMBLADE_PMTABLE_L0_TABLE_H_
#define PMBLADE_PMTABLE_L0_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "memtable/internal_key.h"
#include "util/iterator.h"
#include "util/status.h"

namespace pmblade {

/// Object kinds registered in the PM pool directory.
enum PmObjectKind : uint32_t {
  kPmTableObject = 1,
  kArrayTableObject = 2,
  kSnappyTableObject = 3,
  kSnappyGroupTableObject = 4,
};

class L0Table {
 public:
  virtual ~L0Table() = default;

  /// Iterator over (internal key, value); caller owns it. The iterator must
  /// keep the table alive independently of the caller's reference.
  virtual Iterator* NewIterator() const = 0;

  virtual uint64_t num_entries() const = 0;
  /// Storage footprint in bytes (PM object size or SSD file size).
  virtual uint64_t size_bytes() const = 0;

  /// Smallest/largest internal keys (cached at open; valid for the table's
  /// lifetime). Empty table => empty slices.
  virtual Slice smallest() const = 0;
  virtual Slice largest() const = 0;

  /// Monotonic creation id; among overlapping *unsorted* tables, larger id
  /// means newer data and must be consulted first.
  virtual uint64_t id() const = 0;

  /// Marks the underlying storage (PM object or SSD file) for release.
  /// Called once, when the table leaves the version. The actual free is
  /// deferred to the destructor, i.e. until the last L0TableRef drops, so
  /// concurrent readers and iterators still holding a ref never observe
  /// freed storage.
  virtual Status Destroy() = 0;
};

using L0TableRef = std::shared_ptr<L0Table>;

/// Generic point lookup over any L0Table. Searches for `lkey`'s user key at
/// its snapshot; on a value hit fills *value and returns found=true/OK; on a
/// tombstone returns found=true and NotFound status via *result_status.
Status L0TableGet(const L0Table& table, const InternalKeyComparator& icmp,
                  const LookupKey& lkey, std::string* value, bool* found,
                  Status* result_status);

}  // namespace pmblade

#endif  // PMBLADE_PMTABLE_L0_TABLE_H_
