#include "pmtable/l0_table.h"

namespace pmblade {

Status L0TableGet(const L0Table& table, const InternalKeyComparator& icmp,
                  const LookupKey& lkey, std::string* value, bool* found,
                  Status* result_status) {
  *found = false;
  // Fast range rejection on the cached boundaries.
  const Comparator* ucmp = icmp.user_comparator();
  if (table.num_entries() == 0) return Status::OK();
  if (ucmp->Compare(lkey.user_key(), ExtractUserKey(table.smallest())) < 0 ||
      ucmp->Compare(lkey.user_key(), ExtractUserKey(table.largest())) > 0) {
    return Status::OK();
  }

  std::unique_ptr<Iterator> it(table.NewIterator());
  it->Seek(lkey.internal_key());
  if (!it->Valid()) return it->status();

  ParsedInternalKey parsed;
  if (!ParseInternalKey(it->key(), &parsed)) {
    return Status::Corruption("l0 table: malformed internal key");
  }
  if (ucmp->Compare(parsed.user_key, lkey.user_key()) != 0) {
    return it->status();  // different user key: not present here
  }
  *found = true;
  if (parsed.type == kTypeDeletion) {
    *result_status = Status::NotFound();
  } else {
    value->assign(it->value().data(), it->value().size());
    *result_status = Status::OK();
  }
  return it->status();
}

}  // namespace pmblade
