#include "pmtable/l0_table.h"

#include <vector>

#include "util/bloom.h"

namespace pmblade {

bool L0Table::MayContain(const LookupKey& lkey) const {
  if (filter_.empty() || filter_policy_ == nullptr) return true;
  return filter_policy_->KeyMayMatch(lkey.user_key(), Slice(filter_));
}

void L0Table::InstallFilter(const BloomFilterPolicy* policy,
                            std::string filter) {
  filter_policy_ = policy;
  filter_ = std::move(filter);
}

void L0Table::BuildFilter(const BloomFilterPolicy* policy) {
  if (policy == nullptr) return;
  // Collect distinct user keys (versions of one key are adjacent in
  // internal order, so comparing against the last collected key dedupes).
  std::vector<std::string> keys;
  std::unique_ptr<Iterator> it(NewIterator());
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    Slice user = ExtractUserKey(it->key());
    if (keys.empty() || user.compare(Slice(keys.back())) != 0) {
      keys.emplace_back(user.data(), user.size());
    }
  }
  if (keys.empty() || !it->status().ok()) return;
  std::vector<Slice> slices;
  slices.reserve(keys.size());
  for (const auto& key : keys) slices.emplace_back(key);
  std::string filter;
  policy->CreateFilter(slices, &filter);
  InstallFilter(policy, std::move(filter));
}

Status L0TableGet(const L0Table& table, const InternalKeyComparator& icmp,
                  const LookupKey& lkey, std::string* value, bool* found,
                  Status* result_status, ReadProbeStats* probe) {
  *found = false;
  // Fast range rejection on the cached boundaries.
  const Comparator* ucmp = icmp.user_comparator();
  if (table.num_entries() == 0) return Status::OK();
  if (ucmp->Compare(lkey.user_key(), ExtractUserKey(table.smallest())) < 0 ||
      ucmp->Compare(lkey.user_key(), ExtractUserKey(table.largest())) > 0) {
    return Status::OK();
  }
  if (probe != nullptr) ++probe->tables_probed;

  // Bloom rejection before any PM scan or SSD block read.
  const bool filtered = table.HasFilter();
  if (filtered) {
    if (probe != nullptr) ++probe->bloom_checks;
    if (!table.MayContain(lkey)) {
      if (probe != nullptr) ++probe->bloom_negatives;
      return Status::OK();
    }
  }

  std::unique_ptr<Iterator> it(table.NewIterator());
  it->Seek(lkey.internal_key());
  if (!it->Valid()) {
    if (filtered && probe != nullptr) ++probe->bloom_false_positives;
    return it->status();
  }

  ParsedInternalKey parsed;
  if (!ParseInternalKey(it->key(), &parsed)) {
    return Status::Corruption("l0 table: malformed internal key");
  }
  if (ucmp->Compare(parsed.user_key, lkey.user_key()) != 0) {
    if (filtered && probe != nullptr) ++probe->bloom_false_positives;
    return it->status();  // different user key: not present here
  }
  *found = true;
  if (parsed.type == kTypeDeletion) {
    *result_status = Status::NotFound();
  } else {
    value->assign(it->value().data(), it->value().size());
    *result_status = Status::OK();
  }
  return it->status();
}

}  // namespace pmblade
