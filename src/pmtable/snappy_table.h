// Array-snappy and Array-snappy-group tables: the compressed baselines of
// Fig. 6. Both store an offsets array like ArrayTable, but the payload is
// LZ-compressed — per key-value pair (Array-snappy) or per group of eight
// pairs (Array-snappy-group). Every key comparison during binary search must
// first decompress the pair (or the whole group), which is exactly the read
// penalty the paper measures (~2.3x over Array-based).

#ifndef PMBLADE_PMTABLE_SNAPPY_TABLE_H_
#define PMBLADE_PMTABLE_SNAPPY_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "pm/pm_pool.h"
#include "pmtable/l0_table.h"

namespace pmblade {

/// Shared implementation: `group_size` == 1 gives Array-snappy; > 1 gives
/// Array-snappy-group.
class SnappyTable : public L0Table,
                    public std::enable_shared_from_this<SnappyTable> {
 public:
  static Status Open(PmPool* pool, uint64_t id,
                     std::shared_ptr<SnappyTable>* table);

  Iterator* NewIterator() const override;
  uint64_t num_entries() const override { return num_entries_; }
  uint64_t size_bytes() const override { return size_bytes_; }
  Slice smallest() const override { return smallest_; }
  Slice largest() const override { return largest_; }
  uint64_t id() const override { return id_; }
  Status Destroy() override {
    doomed_ = true;
    return Status::OK();
  }
  ~SnappyTable() override {
    if (doomed_) pool_->Free(id_);
  }

  uint32_t group_size() const { return group_size_; }
  uint32_t num_groups() const { return num_groups_; }

 private:
  friend class SnappyTableIter;
  SnappyTable() = default;

  Status Validate();

  /// Decompresses group `g` into *out as concatenated
  /// (varint klen | varint vlen | key | value) records; injects the PM read
  /// plus models the decompression CPU cost.
  Status LoadGroup(uint32_t g, std::string* out, uint32_t* count) const;

  PmPool* pool_ = nullptr;
  uint64_t id_ = 0;
  bool doomed_ = false;  // free the pool object on destruction
  uint64_t size_bytes_ = 0;
  uint32_t num_entries_ = 0;
  uint32_t num_groups_ = 0;
  uint32_t group_size_ = 0;
  const char* base_ = nullptr;
  const char* offsets_ = nullptr;  // num_groups+1 fixed32 offsets
  const char* data_ = nullptr;
  const char* limit_ = nullptr;
  std::string smallest_;
  std::string largest_;
};

class SnappyTableBuilder {
 public:
  /// `group_size` = 1 compresses each pair separately (Array-snappy);
  /// 8 matches the paper's Array-snappy-group.
  SnappyTableBuilder(PmPool* pool, uint32_t group_size);

  SnappyTableBuilder(const SnappyTableBuilder&) = delete;
  SnappyTableBuilder& operator=(const SnappyTableBuilder&) = delete;

  void Add(const Slice& internal_key, const Slice& value);
  Status Finish(std::shared_ptr<SnappyTable>* table);

 private:
  void SealGroup();

  PmPool* pool_;
  uint32_t group_size_;
  std::string pending_;       // uncompressed records of the open group
  uint32_t pending_count_ = 0;
  std::vector<uint32_t> group_offsets_;
  std::vector<uint32_t> group_counts_;
  std::string data_;
  uint32_t num_entries_ = 0;
};

}  // namespace pmblade

#endif  // PMBLADE_PMTABLE_SNAPPY_TABLE_H_
