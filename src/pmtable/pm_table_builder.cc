#include "pmtable/pm_table_builder.h"

#include <cassert>
#include <cstring>

#include "compress/prefix.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace pmblade {

namespace {
constexpr char kMagic[4] = {'P', 'M', 'T', '1'};
constexpr uint32_t kHeaderSize = 64;
}  // namespace

PmTableBuilder::PmTableBuilder(PmPool* pool, const PmTableOptions& options)
    : pool_(pool), options_(options) {
  if (options_.prefix_width == 0) options_.prefix_width = 8;
  if (options_.prefix_width > 64) options_.prefix_width = 64;
  if (options_.group_size == 0) options_.group_size = 16;
}

void PmTableBuilder::Add(const Slice& internal_key, const Slice& value) {
  assert(internal_key.size() >= 8);
  assert(last_key_.empty() ||
         ExtractUserKey(internal_key).compare(ExtractUserKey(last_key_)) > 0 ||
         (ExtractUserKey(internal_key) == ExtractUserKey(Slice(last_key_)) &&
          ExtractTag(internal_key) < ExtractTag(Slice(last_key_))));

  Slice user_key = ExtractUserKey(internal_key);
  Slice meta = prefix::TableIdComponent(user_key);

  // Metas arrive in ascending order because keys do.
  if (metas_.empty() || Slice(metas_.back()) != meta) {
    metas_.push_back(meta.ToString());
  }
  uint32_t meta_id = static_cast<uint32_t>(metas_.size() - 1);

  // Groups never straddle meta boundaries and hold <= group_size entries.
  if (!group_entries_.empty() &&
      (meta_id != group_meta_id_ ||
       group_entries_.size() >= options_.group_size)) {
    SealGroup();
  }
  group_meta_id_ = meta_id;
  group_entries_.push_back(
      PendingEntry{internal_key.ToString(), value.ToString()});
  ++num_entries_;
  raw_bytes_ += internal_key.size() + value.size();
  last_key_.assign(internal_key.data(), internal_key.size());
}

void PmTableBuilder::SealGroup() {
  if (group_entries_.empty()) return;

  const Slice meta(metas_[group_meta_id_]);
  const size_t meta_len = meta.size();

  // Remainders (keys with the meta component stripped).
  std::vector<Slice> remainders;
  remainders.reserve(group_entries_.size());
  for (const auto& e : group_entries_) {
    remainders.emplace_back(e.key.data() + meta_len,
                            e.key.size() - meta_len);
  }

  // Common prefix over the group's remainders, clamped to the slot width so
  // the prefix bytes are always recoverable from the slot.
  size_t common = prefix::CommonPrefixLengthAll(remainders);
  if (common > options_.prefix_width) common = options_.prefix_width;

  // Prefix slot: first remainder's leading bytes, zero padded.
  size_t slot_pos = prefix_layer_.size();
  prefix_layer_.resize(slot_pos + options_.prefix_width);
  prefix::FixedWidthSlot(remainders[0], options_.prefix_width,
                         prefix_layer_.data() + slot_pos);

  // Group index entry.
  PutFixed32(&group_index_, static_cast<uint32_t>(entry_layer_.size()));
  PutFixed32(&group_index_, static_cast<uint32_t>(group_entries_.size()));
  PutFixed32(&group_index_, group_meta_id_);
  PutFixed32(&group_index_, static_cast<uint32_t>(common));

  // Entries: suffix after the common prefix.
  for (size_t i = 0; i < group_entries_.size(); ++i) {
    Slice suffix(remainders[i].data() + common, remainders[i].size() - common);
    PutVarint32(&entry_layer_, static_cast<uint32_t>(suffix.size()));
    PutVarint32(&entry_layer_,
                static_cast<uint32_t>(group_entries_[i].value.size()));
    entry_layer_.append(suffix.data(), suffix.size());
    entry_layer_.append(group_entries_[i].value);
  }

  ++num_groups_;
  group_entries_.clear();
}

Status PmTableBuilder::Finish(std::shared_ptr<PmTable>* table) {
  SealGroup();

  // Meta layer bytes.
  std::string meta_layer;
  for (const auto& m : metas_) {
    PutLengthPrefixedSlice(&meta_layer, m);
  }

  const uint32_t meta_off = kHeaderSize;
  const uint32_t prefix_off =
      meta_off + static_cast<uint32_t>(meta_layer.size());
  const uint32_t gindex_off =
      prefix_off + static_cast<uint32_t>(prefix_layer_.size());
  const uint32_t entry_off =
      gindex_off + static_cast<uint32_t>(group_index_.size());
  const uint32_t total =
      entry_off + static_cast<uint32_t>(entry_layer_.size());

  std::string image;
  image.reserve(total);
  image.resize(kHeaderSize, '\0');
  char* h = image.data();
  memcpy(h, kMagic, 4);
  EncodeFixed32(h + 4, static_cast<uint32_t>(num_entries_));
  EncodeFixed32(h + 8, num_groups_);
  EncodeFixed32(h + 12, static_cast<uint32_t>(metas_.size()));
  EncodeFixed32(h + 16, options_.group_size);
  EncodeFixed32(h + 20, options_.prefix_width);
  EncodeFixed32(h + 24, meta_off);
  EncodeFixed32(h + 28, prefix_off);
  EncodeFixed32(h + 32, gindex_off);
  EncodeFixed32(h + 36, entry_off);
  EncodeFixed32(h + 40, total);
  EncodeFixed32(h + 44, crc32c::Value(h, 44));

  image.append(meta_layer);
  image.append(prefix_layer_);
  image.append(group_index_);
  image.append(entry_layer_);
  assert(image.size() == total);

  // Land in the PM pool: allocate, stream-copy, persist.
  PmPool::ObjectInfo info;
  char* dst = nullptr;
  PMBLADE_RETURN_IF_ERROR(
      pool_->Allocate(image.size(), kPmTableObject, &info, &dst));
  memcpy(dst, image.data(), image.size());
  pool_->InjectWrite(image.size());
  pool_->Persist(dst, image.size());

  return PmTable::Open(pool_, info.id, table);
}

}  // namespace pmblade
