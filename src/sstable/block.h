// Block: read-side counterpart of BlockBuilder, with a restart-point binary
// search iterator.

#ifndef PMBLADE_SSTABLE_BLOCK_H_
#define PMBLADE_SSTABLE_BLOCK_H_

#include <cstddef>
#include <cstdint>

#include "sstable/format.h"
#include "util/comparator.h"
#include "util/iterator.h"

namespace pmblade {

class Block {
 public:
  explicit Block(const BlockContents& contents);
  ~Block();

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return size_; }
  Iterator* NewIterator(const Comparator* comparator);

 private:
  class Iter;

  uint32_t NumRestarts() const;

  const char* data_;
  size_t size_;
  uint32_t restart_offset_;
  bool owned_;
};

}  // namespace pmblade

#endif  // PMBLADE_SSTABLE_BLOCK_H_
