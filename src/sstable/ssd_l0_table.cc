#include "sstable/ssd_l0_table.h"

namespace pmblade {

namespace {
// Iterator wrapper keeping the table handle alive.
class HoldingIterator final : public Iterator {
 public:
  HoldingIterator(std::shared_ptr<const SsdL0Table> table, Iterator* iter)
      : table_(std::move(table)), iter_(iter) {}
  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void SeekToLast() override { iter_->SeekToLast(); }
  void Seek(const Slice& t) override { iter_->Seek(t); }
  void Next() override { iter_->Next(); }
  void Prev() override { iter_->Prev(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::shared_ptr<const SsdL0Table> table_;
  std::unique_ptr<Iterator> iter_;
};
}  // namespace

Status SsdL0Table::Open(Env* env, const std::string& path, uint64_t id,
                        const TableReaderOptions& reader_options,
                        std::shared_ptr<SsdL0Table>* table) {
  uint64_t size = 0;
  PMBLADE_RETURN_IF_ERROR(env->GetFileSize(path, &size));
  std::unique_ptr<RandomAccessFile> file;
  PMBLADE_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &file));

  std::shared_ptr<SsdL0Table> t(new SsdL0Table());
  t->env_ = env;
  t->path_ = path;
  t->id_ = id;
  t->size_bytes_ = size;
  PMBLADE_RETURN_IF_ERROR(
      TableReader::Open(reader_options, std::move(file), size, &t->reader_));

  // Boundary keys + entry count by a bounded scan of first/last positions.
  std::unique_ptr<Iterator> it(t->reader_->NewIterator());
  it->SeekToFirst();
  if (it->Valid()) {
    t->smallest_ = it->key().ToString();
    it->SeekToLast();
    t->largest_ = it->key().ToString();
    // Entry count is not in the footer; approximate by a full scan only for
    // small tables, otherwise estimate from size (used for stats only).
    if (size < 1 << 20) {
      uint64_t n = 0;
      for (it->SeekToFirst(); it->Valid(); it->Next()) ++n;
      t->num_entries_ = n;
    } else {
      t->num_entries_ = size / 128;  // rough average entry estimate
    }
  }
  *table = std::move(t);
  return Status::OK();
}

Iterator* SsdL0Table::NewIterator() const {
  return new HoldingIterator(shared_from_this(), reader_->NewIterator());
}

bool SsdL0Table::HasFilter() const { return reader_->has_filter(); }

bool SsdL0Table::MayContain(const LookupKey& lkey) const {
  return reader_->KeyMayMatch(lkey.internal_key());
}

Status SsdL0Table::Destroy() {
  doomed_ = true;
  return Status::OK();
}

SsdL0Table::~SsdL0Table() {
  if (doomed_) env_->RemoveFile(path_);
}

}  // namespace pmblade
