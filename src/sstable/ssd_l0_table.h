// SsdL0Table: a level-0 table stored as an SSTable on the (simulated) SSD,
// behind the L0Table interface. This is what the paper's PMBlade-SSD
// configuration uses for level-0, and also how level-1 tables are held by
// the engine's version set.

#ifndef PMBLADE_SSTABLE_SSD_L0_TABLE_H_
#define PMBLADE_SSTABLE_SSD_L0_TABLE_H_

#include <memory>
#include <string>

#include "env/env.h"
#include "pmtable/l0_table.h"
#include "sstable/table_reader.h"

namespace pmblade {

class SsdL0Table : public L0Table,
                   public std::enable_shared_from_this<SsdL0Table> {
 public:
  /// Opens the SSTable at `path`. `id` orders L0 tables by recency;
  /// `env` is used for Destroy (file deletion) and must outlive the table.
  static Status Open(Env* env, const std::string& path, uint64_t id,
                     const TableReaderOptions& reader_options,
                     std::shared_ptr<SsdL0Table>* table);

  Iterator* NewIterator() const override;
  uint64_t num_entries() const override { return num_entries_; }
  uint64_t size_bytes() const override { return size_bytes_; }
  Slice smallest() const override { return smallest_; }
  Slice largest() const override { return largest_; }
  uint64_t id() const override { return id_; }
  /// SSTables carry their own per-block filter; probe it through the
  /// DRAM-resident index instead of a whole-table filter (no data-block
  /// read, no SSD I/O).
  bool HasFilter() const override;
  bool MayContain(const LookupKey& lkey) const override;
  Status Destroy() override;
  ~SsdL0Table() override;

  const std::string& path() const { return path_; }
  TableReader* reader() const { return reader_.get(); }

 private:
  SsdL0Table() = default;

  Env* env_ = nullptr;
  std::string path_;
  uint64_t id_ = 0;
  bool doomed_ = false;  // remove the file on destruction
  uint64_t size_bytes_ = 0;
  uint64_t num_entries_ = 0;
  std::unique_ptr<TableReader> reader_;
  std::string smallest_;
  std::string largest_;
};

}  // namespace pmblade

#endif  // PMBLADE_SSTABLE_SSD_L0_TABLE_H_
