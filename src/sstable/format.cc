#include "sstable/format.h"

#include "compress/lz.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace pmblade {

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset_);
  PutVarint64(dst, size_);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (GetVarint64(input, &offset_) && GetVarint64(input, &size_)) {
    return Status::OK();
  }
  return Status::Corruption("bad block handle");
}

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  metaindex_handle_.EncodeTo(dst);
  index_handle_.EncodeTo(dst);
  dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);  // padding
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber >> 32));
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  const uint32_t magic_lo = DecodeFixed32(magic_ptr);
  const uint32_t magic_hi = DecodeFixed32(magic_ptr + 4);
  const uint64_t magic =
      (static_cast<uint64_t>(magic_hi) << 32) | magic_lo;
  if (magic != kTableMagicNumber) {
    return Status::Corruption("not an sstable (bad magic number)");
  }
  Status result = metaindex_handle_.DecodeFrom(input);
  if (result.ok()) result = index_handle_.DecodeFrom(input);
  return result;
}

Status ReadBlock(RandomAccessFile* file, const BlockHandle& handle,
                 bool verify_checksums, BlockContents* result) {
  result->data = Slice();
  result->cachable = false;
  result->heap_allocated = false;

  const size_t n = static_cast<size_t>(handle.size());
  char* buf = new char[n + kBlockTrailerSize];
  Slice contents;
  Status s =
      file->Read(handle.offset(), n + kBlockTrailerSize, &contents, buf);
  if (!s.ok()) {
    delete[] buf;
    return s;
  }
  if (contents.size() != n + kBlockTrailerSize) {
    delete[] buf;
    return Status::Corruption("truncated block read");
  }

  const char* data = contents.data();
  if (verify_checksums) {
    const uint32_t crc = crc32c::Unmask(DecodeFixed32(data + n + 1));
    const uint32_t actual = crc32c::Value(data, n + 1);
    if (actual != crc) {
      delete[] buf;
      return Status::Corruption("block checksum mismatch");
    }
  }

  switch (data[n]) {
    case kNoCompression:
      if (data != buf) {
        // File returned memory it owns; no copy needed, not cachable.
        delete[] buf;
        result->data = Slice(data, n);
        result->cachable = false;
        result->heap_allocated = false;
      } else {
        result->data = Slice(buf, n);
        result->heap_allocated = true;
        result->cachable = true;
      }
      break;
    case kLzCompression: {
      auto* decompressed = new std::string();
      Status ds = lz::Decompress(Slice(data, n), decompressed);
      delete[] buf;
      if (!ds.ok()) {
        delete decompressed;
        return ds;
      }
      // Hand ownership to the caller via a heap char array.
      char* out = new char[decompressed->size()];
      memcpy(out, decompressed->data(), decompressed->size());
      result->data = Slice(out, decompressed->size());
      delete decompressed;
      result->heap_allocated = true;
      result->cachable = true;
      break;
    }
    default:
      delete[] buf;
      return Status::Corruption("unknown block compression type");
  }
  return Status::OK();
}

}  // namespace pmblade
