// On-disk SSTable format shared by builder and reader:
//
//   [data block 1] ... [data block N]
//   [filter block]                     (bloom filters, one per 2 KiB of data)
//   [metaindex block]                  (maps "filter.<policy>" -> handle)
//   [index block]                      (separator key -> data block handle)
//   [footer: metaindex handle, index handle, magic]   fixed 48 bytes
//
// Each block is stored as: contents | compression type (1 B) | crc32c (4 B).

#ifndef PMBLADE_SSTABLE_FORMAT_H_
#define PMBLADE_SSTABLE_FORMAT_H_

#include <cstdint>
#include <string>

#include "env/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace pmblade {

class BlockHandle {
 public:
  /// Maximum encoded length of a BlockHandle (two varint64s).
  static constexpr size_t kMaxEncodedLength = 10 + 10;

  uint64_t offset() const { return offset_; }
  void set_offset(uint64_t offset) { offset_ = offset; }
  uint64_t size() const { return size_; }
  void set_size(uint64_t size) { size_ = size; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  uint64_t offset_ = 0;
  uint64_t size_ = 0;
};

class Footer {
 public:
  static constexpr size_t kEncodedLength =
      2 * BlockHandle::kMaxEncodedLength + 8;

  const BlockHandle& metaindex_handle() const { return metaindex_handle_; }
  void set_metaindex_handle(const BlockHandle& h) { metaindex_handle_ = h; }
  const BlockHandle& index_handle() const { return index_handle_; }
  void set_index_handle(const BlockHandle& h) { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  BlockHandle metaindex_handle_;
  BlockHandle index_handle_;
};

constexpr uint64_t kTableMagicNumber = 0x706d626c61646531ull;  // "pmblade1"

enum CompressionType : uint8_t {
  kNoCompression = 0x0,
  kLzCompression = 0x1,
};

/// 1-byte compression type + 4-byte crc appended to every block.
constexpr size_t kBlockTrailerSize = 5;

struct BlockContents {
  Slice data;
  bool cachable = false;       // true if data is not backed by the file read
  bool heap_allocated = false; // true if caller owns data.data()
};

/// Reads a block (verifying the trailer CRC, decompressing if needed).
Status ReadBlock(RandomAccessFile* file, const BlockHandle& handle,
                 bool verify_checksums, BlockContents* result);

}  // namespace pmblade

#endif  // PMBLADE_SSTABLE_FORMAT_H_
