// Sharded LRU cache for uncompressed data blocks. Keyed by
// (table file number, block offset); charged by block byte size.

#ifndef PMBLADE_SSTABLE_BLOCK_CACHE_H_
#define PMBLADE_SSTABLE_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace pmblade {

class Block;

class BlockCache {
 public:
  /// `capacity` in bytes across all shards.
  explicit BlockCache(size_t capacity, int num_shards = 4);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Looks up the block for (file_number, offset); returns a shared handle
  /// keeping the block alive, or nullptr on miss.
  std::shared_ptr<Block> Lookup(uint64_t file_number, uint64_t offset);

  /// Inserts a block (taking shared ownership); evicts LRU entries to fit.
  void Insert(uint64_t file_number, uint64_t offset,
              std::shared_ptr<Block> block, size_t charge);

  /// Drops all entries for a table (called when its file is deleted).
  void EvictTable(uint64_t file_number);

  /// Re-divides a new total byte capacity across the shards, evicting LRU
  /// entries that no longer fit. Safe against concurrent Lookup/Insert; the
  /// memory arbiter calls this on every rebalance.
  void SetCapacity(size_t capacity);
  size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  size_t TotalCharge() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Shard;

  static uint64_t KeyOf(uint64_t file_number, uint64_t offset) {
    // Offsets are < 2^40 for any realistic table; fold the file number in.
    return (file_number << 40) ^ offset;
  }

  Shard* ShardFor(uint64_t key) const;

  std::unique_ptr<Shard[]> shards_;
  int num_shards_;
  std::atomic<size_t> capacity_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace pmblade

#endif  // PMBLADE_SSTABLE_BLOCK_CACHE_H_
