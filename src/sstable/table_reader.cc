#include "sstable/table_reader.h"

#include <string>

#include "memtable/internal_key.h"
#include "sstable/block.h"
#include "sstable/filter_block.h"
#include "sstable/format.h"
#include "util/bloom.h"
#include "util/coding.h"

namespace pmblade {

struct TableReader::Rep {
  TableReaderOptions options;
  std::unique_ptr<RandomAccessFile> file;
  Status status;

  std::unique_ptr<Block> index_block;
  std::unique_ptr<FilterBlockReader> filter;
  std::string filter_data;  // backing bytes for `filter`
  BlockHandle metaindex_handle;
};

Status TableReader::Open(const TableReaderOptions& options,
                         std::unique_ptr<RandomAccessFile> file,
                         uint64_t file_size,
                         std::unique_ptr<TableReader>* table) {
  table->reset();
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  PMBLADE_RETURN_IF_ERROR(
      file->Read(file_size - Footer::kEncodedLength, Footer::kEncodedLength,
                 &footer_input, footer_space));
  if (footer_input.size() != Footer::kEncodedLength) {
    return Status::Corruption("truncated footer read");
  }

  Footer footer;
  PMBLADE_RETURN_IF_ERROR(footer.DecodeFrom(&footer_input));

  // Index block.
  BlockContents index_contents;
  PMBLADE_RETURN_IF_ERROR(ReadBlock(file.get(), footer.index_handle(),
                                    options.verify_checksums,
                                    &index_contents));

  auto* rep = new Rep();
  rep->options = options;
  rep->file = std::move(file);
  rep->index_block.reset(new Block(index_contents));
  rep->metaindex_handle = footer.metaindex_handle();
  std::unique_ptr<TableReader> reader(new TableReader(rep));

  // Filter block (best-effort: a table without one still works).
  if (options.filter_policy != nullptr) {
    BlockContents meta_contents;
    if (ReadBlock(rep->file.get(), footer.metaindex_handle(),
                  options.verify_checksums, &meta_contents)
            .ok()) {
      Block meta_block(meta_contents);
      std::unique_ptr<Iterator> it(
          meta_block.NewIterator(BytewiseComparator()));
      it->Seek("filter.pmblade.BloomFilter");
      if (it->Valid() && it->key() == Slice("filter.pmblade.BloomFilter")) {
        Slice v = it->value();
        BlockHandle filter_handle;
        if (filter_handle.DecodeFrom(&v).ok()) {
          BlockContents filter_contents;
          if (ReadBlock(rep->file.get(), filter_handle,
                        options.verify_checksums, &filter_contents)
                  .ok()) {
            rep->filter_data.assign(filter_contents.data.data(),
                                    filter_contents.data.size());
            if (filter_contents.heap_allocated) {
              delete[] filter_contents.data.data();
            }
            rep->filter.reset(new FilterBlockReader(
                options.filter_policy, Slice(rep->filter_data)));
          }
        }
      }
    }
  }

  *table = std::move(reader);
  return Status::OK();
}

TableReader::TableReader(Rep* rep) : rep_(rep) {}

TableReader::~TableReader() = default;

Iterator* TableReader::NewBlockIterator(const Slice& index_value) const {
  Rep* r = rep_.get();
  BlockHandle handle;
  Slice input = index_value;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return NewErrorIterator(s);

  // Try the cache first.
  if (r->options.block_cache != nullptr) {
    std::shared_ptr<Block> cached =
        r->options.block_cache->Lookup(r->options.file_number,
                                       handle.offset());
    if (cached != nullptr) {
      // The iterator must keep the block alive: wrap in a holder.
      class CachedBlockIterator final : public Iterator {
       public:
        CachedBlockIterator(std::shared_ptr<Block> block,
                            const Comparator* cmp)
            : block_(std::move(block)),
              iter_(block_->NewIterator(cmp)) {}
        bool Valid() const override { return iter_->Valid(); }
        void SeekToFirst() override { iter_->SeekToFirst(); }
        void SeekToLast() override { iter_->SeekToLast(); }
        void Seek(const Slice& t) override { iter_->Seek(t); }
        void Next() override { iter_->Next(); }
        void Prev() override { iter_->Prev(); }
        Slice key() const override { return iter_->key(); }
        Slice value() const override { return iter_->value(); }
        Status status() const override { return iter_->status(); }

       private:
        std::shared_ptr<Block> block_;
        std::unique_ptr<Iterator> iter_;
      };
      return new CachedBlockIterator(std::move(cached),
                                     r->options.comparator);
    }
  }

  BlockContents contents;
  s = ReadBlock(r->file.get(), handle, r->options.verify_checksums,
                &contents);
  if (!s.ok()) return NewErrorIterator(s);

  if (r->options.block_cache != nullptr && contents.cachable) {
    auto block = std::make_shared<Block>(contents);
    size_t charge = block->size();
    r->options.block_cache->Insert(r->options.file_number, handle.offset(),
                                   block, charge);
    class CachedBlockIterator final : public Iterator {
     public:
      CachedBlockIterator(std::shared_ptr<Block> block, const Comparator* cmp)
          : block_(std::move(block)), iter_(block_->NewIterator(cmp)) {}
      bool Valid() const override { return iter_->Valid(); }
      void SeekToFirst() override { iter_->SeekToFirst(); }
      void SeekToLast() override { iter_->SeekToLast(); }
      void Seek(const Slice& t) override { iter_->Seek(t); }
      void Next() override { iter_->Next(); }
      void Prev() override { iter_->Prev(); }
      Slice key() const override { return iter_->key(); }
      Slice value() const override { return iter_->value(); }
      Status status() const override { return iter_->status(); }

     private:
      std::shared_ptr<Block> block_;
      std::unique_ptr<Iterator> iter_;
    };
    return new CachedBlockIterator(std::move(block), r->options.comparator);
  }

  // Uncached: iterator owns the block.
  class OwningBlockIterator final : public Iterator {
   public:
    OwningBlockIterator(Block* block, const Comparator* cmp)
        : block_(block), iter_(block_->NewIterator(cmp)) {}
    bool Valid() const override { return iter_->Valid(); }
    void SeekToFirst() override { iter_->SeekToFirst(); }
    void SeekToLast() override { iter_->SeekToLast(); }
    void Seek(const Slice& t) override { iter_->Seek(t); }
    void Next() override { iter_->Next(); }
    void Prev() override { iter_->Prev(); }
    Slice key() const override { return iter_->key(); }
    Slice value() const override { return iter_->value(); }
    Status status() const override { return iter_->status(); }

   private:
    std::unique_ptr<Block> block_;
    std::unique_ptr<Iterator> iter_;
  };
  return new OwningBlockIterator(new Block(contents), r->options.comparator);
}

namespace {

/// Two-level iterator: walks the index block; per index entry opens the data
/// block via the table's block-reader function.
class TwoLevelIterator final : public Iterator {
 public:
  using BlockFunction = Iterator* (*)(void* arg, const Slice& index_value);

  TwoLevelIterator(Iterator* index_iter, BlockFunction block_function,
                   void* arg)
      : index_iter_(index_iter), block_function_(block_function), arg_(arg) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyDataBlocksForward();
  }
  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyDataBlocksForward();
  }
  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToLast();
    SkipEmptyDataBlocksBackward();
  }
  void Next() override {
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }
  void Prev() override {
    data_iter_->Prev();
    SkipEmptyDataBlocksBackward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }
  Status status() const override {
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return status_;
  }

 private:
  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        SetDataIterator(nullptr);
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  void SkipEmptyDataBlocksBackward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        SetDataIterator(nullptr);
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToLast();
    }
  }

  void SetDataIterator(Iterator* iter) {
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      status_ = data_iter_->status();
    }
    data_iter_.reset(iter);
  }

  void InitDataBlock() {
    if (!index_iter_->Valid()) {
      SetDataIterator(nullptr);
      return;
    }
    Slice handle = index_iter_->value();
    if (data_iter_ != nullptr && handle == data_block_handle_) {
      return;  // already on this block
    }
    SetDataIterator(block_function_(arg_, handle));
    data_block_handle_.assign(handle.data(), handle.size());
  }

  std::unique_ptr<Iterator> index_iter_;
  BlockFunction block_function_;
  void* arg_;
  std::unique_ptr<Iterator> data_iter_;
  std::string data_block_handle_;
  Status status_;
};

}  // namespace

Iterator* TableReader::BlockReader(void* arg, const Slice& index_value) {
  return static_cast<TableReader*>(arg)->NewBlockIterator(index_value);
}

Iterator* TableReader::NewIterator() const {
  return new TwoLevelIterator(
      rep_->index_block->NewIterator(rep_->options.comparator),
      &TableReader::BlockReader, const_cast<TableReader*>(this));
}

Status TableReader::InternalGet(const Slice& key, void* arg,
                                void (*handle_result)(void*, const Slice&,
                                                      const Slice&)) {
  Rep* r = rep_.get();
  std::unique_ptr<Iterator> index_iter(
      r->index_block->NewIterator(r->options.comparator));
  index_iter->Seek(key);
  if (index_iter->Valid()) {
    Slice handle_value = index_iter->value();
    BlockHandle handle;
    if (r->filter != nullptr) {
      Slice hv = handle_value;
      // The filter indexes user keys (snapshot-independent).
      if (handle.DecodeFrom(&hv).ok() &&
          !r->filter->KeyMayMatch(handle.offset(), ExtractUserKey(key))) {
        return Status::OK();  // definitively absent
      }
    }
    std::unique_ptr<Iterator> block_iter(NewBlockIterator(handle_value));
    block_iter->Seek(key);
    if (block_iter->Valid()) {
      handle_result(arg, block_iter->key(), block_iter->value());
    }
    PMBLADE_RETURN_IF_ERROR(block_iter->status());
  }
  return index_iter->status();
}

bool TableReader::KeyMayMatch(const Slice& internal_key) const {
  Rep* r = rep_.get();
  if (r->filter == nullptr) return true;
  std::unique_ptr<Iterator> index_iter(
      r->index_block->NewIterator(r->options.comparator));
  index_iter->Seek(internal_key);
  if (!index_iter->Valid()) return true;  // boundary case: stay conservative
  Slice hv = index_iter->value();
  BlockHandle handle;
  if (!handle.DecodeFrom(&hv).ok()) return true;
  // The filter indexes user keys (snapshot-independent).
  return r->filter->KeyMayMatch(handle.offset(), ExtractUserKey(internal_key));
}

bool TableReader::has_filter() const { return rep_->filter != nullptr; }

uint64_t TableReader::ApproximateOffsetOf(const Slice& key) const {
  std::unique_ptr<Iterator> index_iter(
      rep_->index_block->NewIterator(rep_->options.comparator));
  index_iter->Seek(key);
  if (index_iter->Valid()) {
    BlockHandle handle;
    Slice input = index_iter->value();
    if (handle.DecodeFrom(&input).ok()) {
      return handle.offset();
    }
  }
  // Past the last key: approximate with the metaindex offset.
  return rep_->metaindex_handle.offset();
}

}  // namespace pmblade
