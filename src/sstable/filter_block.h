// FilterBlockBuilder/Reader: per-table bloom filter block. One filter is
// generated per 2 KiB window of data-block offsets so a point lookup can
// probe the filter for the block it would read.

#ifndef PMBLADE_SSTABLE_FILTER_BLOCK_H_
#define PMBLADE_SSTABLE_FILTER_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bloom.h"
#include "util/slice.h"

namespace pmblade {

class FilterBlockBuilder {
 public:
  explicit FilterBlockBuilder(const BloomFilterPolicy* policy);

  FilterBlockBuilder(const FilterBlockBuilder&) = delete;
  FilterBlockBuilder& operator=(const FilterBlockBuilder&) = delete;

  /// Called when a data block starts at `block_offset`.
  void StartBlock(uint64_t block_offset);
  void AddKey(const Slice& key);
  Slice Finish();

 private:
  void GenerateFilter();

  const BloomFilterPolicy* policy_;
  std::string keys_;             // flattened key bytes
  std::vector<size_t> start_;    // offset of each key in keys_
  std::string result_;           // accumulated filters
  std::vector<uint32_t> filter_offsets_;
};

class FilterBlockReader {
 public:
  /// `contents` must outlive the reader (it points into the table's filter
  /// block allocation).
  FilterBlockReader(const BloomFilterPolicy* policy, const Slice& contents);

  bool KeyMayMatch(uint64_t block_offset, const Slice& key) const;

 private:
  const BloomFilterPolicy* policy_;
  const char* data_ = nullptr;    // filter data start
  const char* offset_ = nullptr;  // offset array start
  size_t num_ = 0;
  size_t base_lg_ = 0;
};

}  // namespace pmblade

#endif  // PMBLADE_SSTABLE_FILTER_BLOCK_H_
