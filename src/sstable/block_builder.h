// BlockBuilder: builds a prefix-compressed key/value block with restart
// points. Keys share prefixes with their predecessor except at restart
// points, which anchor binary search in the reader.

#ifndef PMBLADE_SSTABLE_BLOCK_BUILDER_H_
#define PMBLADE_SSTABLE_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace pmblade {

class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  void Reset();

  /// Keys must be added in strictly increasing order (per the caller's
  /// comparator).
  void Add(const Slice& key, const Slice& value);

  /// Finishes the block and returns its full contents (valid until Reset).
  Slice Finish();

  /// Estimate of the current finished size.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  bool finished_ = false;
  std::string last_key_;
};

}  // namespace pmblade

#endif  // PMBLADE_SSTABLE_BLOCK_BUILDER_H_
