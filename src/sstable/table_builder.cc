#include "sstable/table_builder.h"

#include <cassert>
#include <string>
#include <vector>

#include "compress/lz.h"
#include "memtable/internal_key.h"
#include "sstable/block_builder.h"
#include "sstable/filter_block.h"
#include "util/bloom.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace pmblade {

struct TableBuilder::Rep {
  Rep(const TableBuilderOptions& opt, WritableFile* f)
      : options(opt),
        file(f),
        data_block(opt.block_restart_interval),
        index_block(1),
        filter_block(opt.filter_policy != nullptr
                         ? new FilterBlockBuilder(opt.filter_policy)
                         : nullptr) {}

  TableBuilderOptions options;
  WritableFile* file;
  uint64_t offset = 0;
  Status status;
  BlockBuilder data_block;
  BlockBuilder index_block;
  std::string last_key;
  uint64_t num_entries = 0;
  bool closed = false;
  std::unique_ptr<FilterBlockBuilder> filter_block;

  // Deferred index entry: after a block finishes we wait for the first key
  // of the next block so we can emit a short separator key.
  bool pending_index_entry = false;
  BlockHandle pending_handle;

  std::string compressed_output;
};

TableBuilder::TableBuilder(const TableBuilderOptions& options,
                           WritableFile* file)
    : rep_(new Rep(options, file)) {
  assert(options.comparator != nullptr);
  if (rep_->filter_block != nullptr) {
    rep_->filter_block->StartBlock(0);
  }
}

TableBuilder::~TableBuilder() = default;

void TableBuilder::Add(const Slice& key, const Slice& value) {
  Rep* r = rep_.get();
  assert(!r->closed);
  if (!r->status.ok()) return;
  if (r->num_entries > 0) {
    assert(r->options.comparator->Compare(key, Slice(r->last_key)) > 0);
  }

  if (r->pending_index_entry) {
    assert(r->data_block.empty());
    r->options.comparator->FindShortestSeparator(&r->last_key, key);
    std::string handle_encoding;
    r->pending_handle.EncodeTo(&handle_encoding);
    r->index_block.Add(r->last_key, Slice(handle_encoding));
    r->pending_index_entry = false;
  }

  if (r->filter_block != nullptr) {
    // Filter on the user key so probes are snapshot-independent.
    r->filter_block->AddKey(ExtractUserKey(key));
  }

  r->last_key.assign(key.data(), key.size());
  ++r->num_entries;
  r->data_block.Add(key, value);

  if (r->data_block.CurrentSizeEstimate() >= r->options.block_size) {
    Flush();
  }
}

void TableBuilder::Flush() {
  Rep* r = rep_.get();
  assert(!r->closed);
  if (!r->status.ok() || r->data_block.empty()) return;
  assert(!r->pending_index_entry);
  WriteBlock(&r->data_block, &r->pending_handle);
  if (r->status.ok()) {
    r->pending_index_entry = true;
    r->status = r->file->Flush();
  }
  if (r->filter_block != nullptr) {
    r->filter_block->StartBlock(r->offset);
  }
}

void TableBuilder::WriteBlock(BlockBuilder* block, BlockHandle* handle) {
  Rep* r = rep_.get();
  Slice raw = block->Finish();

  Slice block_contents;
  CompressionType type = r->options.compression;
  switch (type) {
    case kNoCompression:
      block_contents = raw;
      break;
    case kLzCompression: {
      r->compressed_output.clear();
      lz::Compress(raw, &r->compressed_output);
      if (r->compressed_output.size() < raw.size() - raw.size() / 8) {
        block_contents = Slice(r->compressed_output);
      } else {
        // Not compressible enough to be worth the decompression cost.
        block_contents = raw;
        type = kNoCompression;
      }
      break;
    }
  }
  WriteRawBlock(block_contents, type, handle);
  r->compressed_output.clear();
  block->Reset();
}

void TableBuilder::WriteRawBlock(const Slice& block_contents,
                                 CompressionType type, BlockHandle* handle) {
  Rep* r = rep_.get();
  handle->set_offset(r->offset);
  handle->set_size(block_contents.size());
  r->status = r->file->Append(block_contents);
  if (r->status.ok()) {
    char trailer[kBlockTrailerSize];
    trailer[0] = static_cast<char>(type);
    uint32_t crc = crc32c::Value(block_contents.data(), block_contents.size());
    crc = crc32c::Extend(crc, trailer, 1);
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    r->status = r->file->Append(Slice(trailer, kBlockTrailerSize));
    if (r->status.ok()) {
      r->offset += block_contents.size() + kBlockTrailerSize;
    }
  }
}

Status TableBuilder::Finish() {
  Rep* r = rep_.get();
  Flush();
  assert(!r->closed);
  r->closed = true;

  BlockHandle filter_block_handle, metaindex_block_handle, index_block_handle;

  // Filter block.
  if (r->status.ok() && r->filter_block != nullptr) {
    WriteRawBlock(r->filter_block->Finish(), kNoCompression,
                  &filter_block_handle);
  }

  // Metaindex block.
  if (r->status.ok()) {
    BlockBuilder meta_index_block(r->options.block_restart_interval);
    if (r->filter_block != nullptr) {
      std::string key = "filter.pmblade.BloomFilter";
      std::string handle_encoding;
      filter_block_handle.EncodeTo(&handle_encoding);
      meta_index_block.Add(key, Slice(handle_encoding));
    }
    WriteBlock(&meta_index_block, &metaindex_block_handle);
  }

  // Index block.
  if (r->status.ok()) {
    if (r->pending_index_entry) {
      r->options.comparator->FindShortSuccessor(&r->last_key);
      std::string handle_encoding;
      r->pending_handle.EncodeTo(&handle_encoding);
      r->index_block.Add(r->last_key, Slice(handle_encoding));
      r->pending_index_entry = false;
    }
    WriteBlock(&r->index_block, &index_block_handle);
  }

  // Footer.
  if (r->status.ok()) {
    Footer footer;
    footer.set_metaindex_handle(metaindex_block_handle);
    footer.set_index_handle(index_block_handle);
    std::string footer_encoding;
    footer.EncodeTo(&footer_encoding);
    r->status = r->file->Append(footer_encoding);
    if (r->status.ok()) {
      r->offset += footer_encoding.size();
    }
  }
  return r->status;
}

void TableBuilder::Abandon() {
  rep_->closed = true;
}

uint64_t TableBuilder::NumEntries() const { return rep_->num_entries; }
uint64_t TableBuilder::FileSize() const { return rep_->offset; }
Status TableBuilder::status() const { return rep_->status; }

}  // namespace pmblade
