#include "sstable/block_cache.h"

#include <atomic>

#include "sstable/block.h"

namespace pmblade {

struct BlockCache::Shard {
  struct Entry {
    uint64_t key;
    uint64_t file_number;
    std::shared_ptr<Block> block;
    size_t charge;
  };

  std::mutex mu;
  std::list<Entry> lru;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
  size_t capacity = 0;
  size_t usage = 0;

  void EvictToFit() {
    while (usage > capacity && !lru.empty()) {
      const Entry& victim = lru.back();
      usage -= victim.charge;
      index.erase(victim.key);
      lru.pop_back();
    }
  }
};

BlockCache::BlockCache(size_t capacity, int num_shards)
    : num_shards_(num_shards < 1 ? 1 : num_shards) {
  shards_.reset(new Shard[num_shards_]);
  SetCapacity(capacity);
}

void BlockCache::SetCapacity(size_t capacity) {
  capacity_.store(capacity, std::memory_order_relaxed);
  size_t per_shard = capacity / num_shards_;
  if (per_shard == 0) per_shard = 1;
  for (int i = 0; i < num_shards_; ++i) {
    Shard* shard = &shards_[i];
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->capacity = per_shard;
    shard->EvictToFit();
  }
}

BlockCache::~BlockCache() = default;

BlockCache::Shard* BlockCache::ShardFor(uint64_t key) const {
  // Mix before sharding so sequential offsets spread out.
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdull;
  return &shards_[key % num_shards_];
}

std::shared_ptr<Block> BlockCache::Lookup(uint64_t file_number,
                                          uint64_t offset) {
  uint64_t key = KeyOf(file_number, offset);
  Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->index.find(key);
  if (it == shard->index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Move to front.
  shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
  return it->second->block;
}

void BlockCache::Insert(uint64_t file_number, uint64_t offset,
                        std::shared_ptr<Block> block, size_t charge) {
  uint64_t key = KeyOf(file_number, offset);
  Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->index.find(key);
  if (it != shard->index.end()) {
    shard->usage -= it->second->charge;
    shard->lru.erase(it->second);
    shard->index.erase(it);
  }
  shard->lru.push_front(
      Shard::Entry{key, file_number, std::move(block), charge});
  shard->index[key] = shard->lru.begin();
  shard->usage += charge;
  shard->EvictToFit();
}

void BlockCache::EvictTable(uint64_t file_number) {
  for (int i = 0; i < num_shards_; ++i) {
    Shard* shard = &shards_[i];
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->file_number == file_number) {
        shard->usage -= it->charge;
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

size_t BlockCache::TotalCharge() const {
  size_t total = 0;
  for (int i = 0; i < num_shards_; ++i) {
    Shard* shard = &shards_[i];
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->usage;
  }
  return total;
}

}  // namespace pmblade
