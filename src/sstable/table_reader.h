// TableReader: opens an SSTable file and serves point lookups (through the
// bloom filter and block cache) and iteration (two-level iterator over the
// index block and data blocks).

#ifndef PMBLADE_SSTABLE_TABLE_READER_H_
#define PMBLADE_SSTABLE_TABLE_READER_H_

#include <cstdint>
#include <memory>

#include "env/env.h"
#include "sstable/block_cache.h"
#include "util/comparator.h"
#include "util/iterator.h"
#include "util/status.h"

namespace pmblade {

class BloomFilterPolicy;

struct TableReaderOptions {
  const Comparator* comparator = nullptr;
  const BloomFilterPolicy* filter_policy = nullptr;
  BlockCache* block_cache = nullptr;   // optional
  bool verify_checksums = true;
  /// Cache key namespace for this file in the block cache.
  uint64_t file_number = 0;
};

class TableReader {
 public:
  /// Takes ownership of `file`. `file_size` must be exact.
  static Status Open(const TableReaderOptions& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size, std::unique_ptr<TableReader>* table);

  ~TableReader();
  TableReader(const TableReader&) = delete;
  TableReader& operator=(const TableReader&) = delete;

  /// Iterator over (internal key, value) entries.
  Iterator* NewIterator() const;

  /// Point lookup: finds the first entry with key >= `key` in the candidate
  /// block (after the bloom filter check) and calls `handle_result` on it.
  Status InternalGet(const Slice& key, void* arg,
                     void (*handle_result)(void* arg, const Slice& k,
                                           const Slice& v));

  /// Bloom-only probe: locates `internal_key`'s candidate block through the
  /// DRAM-resident index and asks its filter about the user key, without
  /// reading any data block. False when the key is definitively absent;
  /// true otherwise (including tables without a filter block).
  bool KeyMayMatch(const Slice& internal_key) const;
  bool has_filter() const;

  uint64_t ApproximateOffsetOf(const Slice& key) const;

 private:
  struct Rep;
  explicit TableReader(Rep* rep);

  static Iterator* BlockReader(void* arg, const Slice& index_value);
  Iterator* NewBlockIterator(const Slice& index_value) const;

  std::unique_ptr<Rep> rep_;
};

}  // namespace pmblade

#endif  // PMBLADE_SSTABLE_TABLE_READER_H_
