// TableBuilder: streams sorted internal-key entries into an SSTable file.

#ifndef PMBLADE_SSTABLE_TABLE_BUILDER_H_
#define PMBLADE_SSTABLE_TABLE_BUILDER_H_

#include <cstdint>
#include <memory>

#include "env/env.h"
#include "sstable/format.h"
#include "util/comparator.h"
#include "util/slice.h"
#include "util/status.h"

namespace pmblade {

class BloomFilterPolicy;

struct TableBuilderOptions {
  const Comparator* comparator = nullptr;      // typically InternalKeyComparator
  const BloomFilterPolicy* filter_policy = nullptr;  // nullptr = no filter
  size_t block_size = 4096;
  int block_restart_interval = 16;
  CompressionType compression = kNoCompression;
};

class TableBuilder {
 public:
  /// Does not take ownership of `file`; the caller syncs/closes it after
  /// Finish().
  TableBuilder(const TableBuilderOptions& options, WritableFile* file);
  ~TableBuilder();

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  /// Keys must arrive in strictly increasing comparator order.
  void Add(const Slice& key, const Slice& value);

  /// Writes index/filter/footer. The builder is unusable afterwards.
  Status Finish();

  /// Abandons the build (no footer written).
  void Abandon();

  uint64_t NumEntries() const;
  /// Bytes written so far (== final file size after Finish()).
  uint64_t FileSize() const;
  Status status() const;

 private:
  struct Rep;

  void Flush();
  void WriteBlock(class BlockBuilder* block, BlockHandle* handle);
  void WriteRawBlock(const Slice& data, CompressionType type,
                     BlockHandle* handle);

  std::unique_ptr<Rep> rep_;
};

}  // namespace pmblade

#endif  // PMBLADE_SSTABLE_TABLE_BUILDER_H_
