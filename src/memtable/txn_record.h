// Logical WAL records for cross-shard two-phase commit.
//
// A shard's WAL normally carries WriteBatch reps, whose first 8 bytes are the
// group's base sequence number. Sequence numbers are bounded by
// kMaxSequenceNumber (2^56 - 1), so a rep can never begin with eight 0xFF
// bytes — that impossible prefix is the magic that marks a txn record. A
// reader that sees the magic dispatches on the 1-byte tag that follows:
//
//   prepare  : magic(8) | kPrepare(1)  | txn_id(8) | nparts(4) | part(4)...
//              | batch rep (to end of record)
//   commit   : magic(8) | kCommit(1)   | txn_id(8) | base_seq(8)
//   rollback : magic(8) | kRollback(1) | txn_id(8)
//
// The prepare payload is the participating shard list plus the shard-local
// sub-batch rep (base sequence still zero: sequences are assigned at commit).
// The commit record carries the base sequence the payload was published at so
// replay reproduces the exact same sequence assignment.
#ifndef PMBLADE_MEMTABLE_TXN_RECORD_H_
#define PMBLADE_MEMTABLE_TXN_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/slice.h"

namespace pmblade {

// Eight 0xFF bytes: > kMaxSequenceNumber, so no WriteBatch rep starts with it.
constexpr uint64_t kTxnRecordMagic = ~uint64_t{0};

enum class TxnRecordType : uint8_t {
  kPrepare = 1,
  kCommit = 2,
  kRollback = 3,
};

struct TxnRecord {
  TxnRecordType type = TxnRecordType::kPrepare;
  uint64_t txn_id = 0;
  std::vector<uint32_t> participants;  // prepare only
  Slice payload;                       // prepare only: sub-batch rep
  uint64_t base_seq = 0;               // commit only
};

// True iff `record` (a logical WAL record) is a txn record, not a batch rep.
bool IsTxnRecord(const Slice& record);

void EncodePrepareRecord(uint64_t txn_id,
                         const std::vector<uint32_t>& participants,
                         const Slice& batch_rep, std::string* out);
void EncodeCommitRecord(uint64_t txn_id, uint64_t base_seq, std::string* out);
void EncodeRollbackRecord(uint64_t txn_id, std::string* out);

// Decodes any of the three record kinds. `out->payload` aliases `record`.
Status DecodeTxnRecord(const Slice& record, TxnRecord* out);

}  // namespace pmblade

#endif  // PMBLADE_MEMTABLE_TXN_RECORD_H_
